package core

import "hohtx/internal/stm"

// Hand-over-hand window helpers (§4.1).
//
// A hand-over-hand operation splits its traversal into transactions of at
// most W node visits each. The first window's length is randomized
// ("scattered") so that threads starting from the same well-known node
// (the list head, the tree root) stagger their reservation points instead
// of all reserving the same node — the paper finds this matters most for
// RR-XO, where two threads reserving the same node conflict outright.

// Scatter returns the first-window budget: a value in [1, w] drawn from
// the transaction's private generator. Subsequent windows use w directly.
func Scatter(tx *stm.Tx, w int) int {
	if w <= 1 {
		return 1
	}
	return 1 + int(tx.Rand()%uint64(w))
}

// Window carries a fixed window size and whether scattering is enabled;
// the benchmarks' window-size and scatter ablations (Figure 4) sweep these.
type Window struct {
	// W is the maximum node visits per transaction. Zero or negative
	// means unbounded (every operation is a single transaction — the
	// paper's "HTM" baseline configuration).
	W int
	// NoScatter disables first-window randomization (ablation).
	NoScatter bool
}

// Unbounded reports whether traversals should never cut windows.
func (w Window) Unbounded() bool { return w.W <= 0 }

// First returns the budget for an operation's first window.
func (w Window) First(tx *stm.Tx) int {
	if w.Unbounded() {
		return int(^uint(0) >> 1)
	}
	if w.NoScatter {
		return w.W
	}
	return Scatter(tx, w.W)
}

// Next returns the budget for subsequent windows.
func (w Window) Next() int {
	if w.Unbounded() {
		return int(^uint(0) >> 1)
	}
	return w.W
}
