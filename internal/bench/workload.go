package bench

import (
	"math/rand"
	"sync"

	"hohtx/internal/sets"
)

// Workload describes one experimental condition, matching the paper's
// parameters: keys are drawn uniformly from a 2^KeyBits range, the set is
// pre-populated to 50% of the range, and each thread performs OpsPerThread
// operations of which LookupPct% are lookups and the rest split evenly
// between inserts and removes (§5.1).
type Workload struct {
	KeyBits      int
	LookupPct    int
	OpsPerThread int
}

// KeyRange is the number of distinct keys.
func (w Workload) KeyRange() uint64 { return 1 << w.KeyBits }

// splitmix64 advances a seed and returns a well-mixed value; each worker
// owns one so key streams are independent and allocation free.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Prefill inserts KeyRange/2 distinct random keys using up to `threads`
// workers. Keys are in [1, KeyRange] (0 is reserved by the structures).
func Prefill(s sets.Set, w Workload, threads int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	keys := rng.Perm(int(w.KeyRange()))
	target := keys[:w.KeyRange()/2]
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	chunk := (len(target) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		if lo >= len(target) {
			break
		}
		hi := lo + chunk
		if hi > len(target) {
			hi = len(target)
		}
		wg.Add(1)
		go func(tid int, part []int) {
			defer wg.Done()
			s.Register(tid)
			for _, k := range part {
				s.Insert(tid, uint64(k)+1)
			}
		}(t, target[lo:hi])
	}
	wg.Wait()
}

// op codes for the mixed phase.
const (
	opLookup = iota
	opInsert
	opRemove
)

// nextOp picks the next operation and key for a worker according to the
// mix. Inserts and removes split the non-lookup share evenly.
func nextOp(w Workload, state *uint64) (int, uint64) {
	r := splitmix64(state)
	key := r%w.KeyRange() + 1
	pick := (r >> 32) % 100
	switch {
	case pick < uint64(w.LookupPct):
		return opLookup, key
	case (r>>31)&1 == 0:
		return opInsert, key
	default:
		return opRemove, key
	}
}
