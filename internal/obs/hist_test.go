package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the log₂ bucket layout exactly: bucket 0 is
// {0} and bucket i is [2^(i-1), 2^i - 1].
func TestBucketBoundaries(t *testing.T) {
	if got := BucketOf(0); got != 0 {
		t.Fatalf("BucketOf(0) = %d, want 0", got)
	}
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if want := uint64(1) << uint(i-1); lo != want {
			t.Fatalf("BucketLower(%d) = %d, want %d", i, lo, want)
		}
		if i < 64 {
			if want := uint64(1)<<uint(i) - 1; hi != want {
				t.Fatalf("BucketUpper(%d) = %d, want %d", i, hi, want)
			}
		} else if hi != ^uint64(0) {
			t.Fatalf("BucketUpper(64) = %d, want max uint64", hi)
		}
		// Both edges and nothing beyond them map back to bucket i.
		if BucketOf(lo) != i || BucketOf(hi) != i {
			t.Fatalf("bucket %d edges map to %d/%d", i, BucketOf(lo), BucketOf(hi))
		}
		if BucketOf(lo-1) >= i {
			t.Fatalf("value below bucket %d's lower edge maps into it", i)
		}
		if i < 64 && BucketOf(hi+1) != i+1 {
			t.Fatalf("value above bucket %d's upper edge maps to %d", i, BucketOf(hi+1))
		}
	}
}

// TestQuantileWithinOneBucket checks the documented error bound: for any
// recorded distribution, Quantile(q) is ≥ the true q-quantile and ≤ the
// upper edge of the true quantile's bucket.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram("q", "ns")
	var vals []uint64
	for i := 0; i < 10000; i++ {
		// Mix of magnitudes so many buckets are populated.
		v := uint64(rng.Int63n(1 << uint(1+rng.Intn(30))))
		vals = append(vals, v)
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	sorted := append([]uint64(nil), vals...)
	sortUint64(sorted)
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		rank := int(q * float64(len(sorted)))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		truth := sorted[rank-1]
		got := s.Quantile(q)
		if got < truth {
			t.Errorf("Quantile(%g) = %d below true value %d", q, got, truth)
		}
		if got > BucketUpper(BucketOf(truth)) && got != s.Max {
			t.Errorf("Quantile(%g) = %d beyond bucket of true value %d (upper %d)",
				q, got, truth, BucketUpper(BucketOf(truth)))
		}
	}
	// The top quantile must report the true max, not the bucket edge.
	if got := s.Quantile(1.0); got != s.Max {
		t.Errorf("Quantile(1.0) = %d, want recorded max %d", got, s.Max)
	}
}

func sortUint64(v []uint64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// TestQuantileSingleValue pins behavior for degenerate distributions.
func TestQuantileSingleValue(t *testing.T) {
	h := NewHistogram("one", "ns")
	h.Record(100)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := s.Quantile(q); got != 100 {
			t.Fatalf("Quantile(%g) = %d, want 100 (the only value)", q, got)
		}
	}
	if s.P50 != 100 || s.P99 != 100 {
		t.Fatalf("precomputed quantiles %d/%d, want 100/100", s.P50, s.P99)
	}

	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean should be 0")
	}
}

// TestQuantileNotCollapsedToMax guards the top-bucket special case: only
// ranks landing in the highest populated bucket may report Max.
func TestQuantileNotCollapsedToMax(t *testing.T) {
	h := NewHistogram("bimodal", "ns")
	for i := 0; i < 99; i++ {
		h.Record(10) // bucket 4
	}
	h.Record(1 << 20) // single outlier
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != BucketUpper(BucketOf(10)) {
		t.Fatalf("p50 = %d, want bucket upper %d", got, BucketUpper(BucketOf(10)))
	}
	if got := s.Quantile(1.0); got != 1<<20 {
		t.Fatalf("p100 = %d, want the outlier max", got)
	}
}

// TestConcurrentMerge hammers one histogram from many goroutines and
// checks the merged snapshot accounts for every recording exactly once.
// Run under -race this also proves the recording path is race-free.
func TestConcurrentMerge(t *testing.T) {
	const workers = 8
	const perWorker = 20000
	h := NewHistogram("conc", "ns")
	var wg sync.WaitGroup
	sums := make([]uint64, workers)
	maxes := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				v := uint64(rng.Int63n(1 << 24))
				sums[w] += v
				if v > maxes[w] {
					maxes[w] = v
				}
				h.RecordAt(uint64(w), v)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var wantSum, wantMax uint64
	for w := 0; w < workers; w++ {
		wantSum += sums[w]
		if maxes[w] > wantMax {
			wantMax = maxes[w]
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != wantMax {
		t.Fatalf("max = %d, want %d", s.Max, wantMax)
	}
	var bucketTotal uint64
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestSnapshotMerge checks HistSnapshot.Merge against recording everything
// into one histogram.
func TestSnapshotMerge(t *testing.T) {
	a := NewHistogram("a", "ns")
	b := NewHistogram("b", "ns")
	all := NewHistogram("all", "ns")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 16))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	sa, sb, sAll := a.Snapshot(), b.Snapshot(), all.Snapshot()
	sa.Merge(sb)
	if sa.Count != sAll.Count || sa.Sum != sAll.Sum || sa.Max != sAll.Max {
		t.Fatalf("merge mismatch: %+v vs %+v", sa, sAll)
	}
	if sa.P50 != sAll.P50 || sa.P99 != sAll.P99 {
		t.Fatalf("merged quantiles %d/%d vs direct %d/%d", sa.P50, sa.P99, sAll.P50, sAll.P99)
	}
	if len(sa.Buckets) != len(sAll.Buckets) {
		t.Fatalf("merged bucket len %d vs %d", len(sa.Buckets), len(sAll.Buckets))
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != sAll.Buckets[i] {
			t.Fatalf("bucket %d: merged %d vs direct %d", i, sa.Buckets[i], sAll.Buckets[i])
		}
	}
}
