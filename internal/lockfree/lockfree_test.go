package lockfree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hohtx/internal/sets"
)

func lists(threads int) []*HarrisList {
	return []*HarrisList{
		NewHarrisList(ListConfig{Threads: threads}),
		NewHarrisList(ListConfig{Threads: threads, UseHazardPointers: true, ScanThreshold: 8}),
	}
}

func TestListSequential(t *testing.T) {
	for _, l := range lists(1) {
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			if l.Lookup(0, 3) || l.Remove(0, 3) {
				t.Fatal("empty list misbehaved")
			}
			for _, k := range []uint64{5, 2, 8, 1} {
				if !l.Insert(0, k) {
					t.Fatalf("insert %d", k)
				}
			}
			if l.Insert(0, 5) {
				t.Fatal("duplicate insert")
			}
			if !l.Lookup(0, 2) || l.Lookup(0, 3) {
				t.Fatal("lookup wrong")
			}
			if !l.Remove(0, 5) || l.Remove(0, 5) {
				t.Fatal("remove semantics")
			}
			if got := l.Snapshot(); !sets.KeysEqual(got, []uint64{1, 2, 8}) {
				t.Fatalf("snapshot = %v", got)
			}
			l.Finish(0)
		})
	}
}

func TestListSequentialVsModel(t *testing.T) {
	for _, l := range lists(1) {
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			rng := rand.New(rand.NewSource(3))
			model := map[uint64]bool{}
			for i := 0; i < 5000; i++ {
				key := uint64(rng.Intn(64)) + 1
				switch rng.Intn(3) {
				case 0:
					if got, want := l.Insert(0, key), !model[key]; got != want {
						t.Fatalf("Insert(%d) = %v want %v", key, got, want)
					}
					model[key] = true
				case 1:
					if got, want := l.Remove(0, key), model[key]; got != want {
						t.Fatalf("Remove(%d) = %v want %v", key, got, want)
					}
					delete(model, key)
				default:
					if got, want := l.Lookup(0, key), model[key]; got != want {
						t.Fatalf("Lookup(%d) = %v want %v", key, got, want)
					}
				}
			}
			l.Finish(0)
		})
	}
}

// TestLFHPRecyclesMemory: with hazard pointers, removed nodes are reused;
// with leak, they are not.
func TestLFHPRecyclesMemory(t *testing.T) {
	hp := NewHarrisList(ListConfig{Threads: 1, UseHazardPointers: true, ScanThreshold: 4})
	hp.Register(0)
	for round := 0; round < 50; round++ {
		for k := uint64(1); k <= 10; k++ {
			hp.Insert(0, k)
		}
		for k := uint64(1); k <= 10; k++ {
			hp.Remove(0, k)
		}
	}
	hp.Finish(0)
	if live := hp.LiveNodes(); live > 32 {
		t.Fatalf("LFHP live nodes = %d after churn; memory not recycled", live)
	}

	leak := NewHarrisList(ListConfig{Threads: 1})
	leak.Register(0)
	for round := 0; round < 50; round++ {
		for k := uint64(1); k <= 10; k++ {
			leak.Insert(0, k)
			leak.Remove(0, k)
		}
	}
	leak.Finish(0)
	if def := leak.DeferredNodes(); def != 500 {
		t.Fatalf("LFLeak deferred = %d, want 500 (every removed node leaks)", def)
	}
	if live := leak.LiveNodes(); live != 501 {
		t.Fatalf("LFLeak live = %d, want 501", live)
	}
}

func stressSet(t *testing.T, s sets.Set, threads, iters int, keyRange uint64) {
	t.Helper()
	var succIns, succRem atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Register(tid)
			rng := rand.New(rand.NewSource(int64(tid)*31337 + 5))
			for i := 0; i < iters; i++ {
				key := uint64(rng.Int63())%keyRange + 1
				switch rng.Intn(3) {
				case 0:
					if s.Insert(tid, key) {
						succIns.Add(1)
					}
				case 1:
					if s.Remove(tid, key) {
						succRem.Add(1)
					}
				default:
					s.Lookup(tid, key)
				}
			}
			s.Finish(tid)
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("snapshot not sorted")
		}
	}
	if int64(len(snap)) != succIns.Load()-succRem.Load() {
		t.Fatalf("balance violated: |set| = %d, inserts-removes = %d",
			len(snap), succIns.Load()-succRem.Load())
	}
}

func TestListConcurrentStress(t *testing.T) {
	const threads = 8
	for _, l := range lists(threads) {
		t.Run(l.Name(), func(t *testing.T) {
			stressSet(t, l, threads, 3000, 64)
		})
	}
}

// TestListHighContentionSameKey: all threads fight over one key.
func TestListHighContentionSameKey(t *testing.T) {
	for _, l := range lists(8) {
		t.Run(l.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			var ins, rem atomic.Int64
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					l.Register(tid)
					for i := 0; i < 2000; i++ {
						if l.Insert(tid, 7) {
							ins.Add(1)
						}
						if l.Remove(tid, 7) {
							rem.Add(1)
						}
					}
					l.Finish(tid)
				}(w)
			}
			wg.Wait()
			present := int64(len(l.Snapshot()))
			if ins.Load()-rem.Load() != present {
				t.Fatalf("balance: ins=%d rem=%d present=%d", ins.Load(), rem.Load(), present)
			}
		})
	}
}

func TestNMTreeSequential(t *testing.T) {
	tr := NewNMTree(NMConfig{Threads: 1})
	tr.Register(0)
	if tr.Lookup(0, 5) || tr.Remove(0, 5) {
		t.Fatal("empty tree misbehaved")
	}
	for _, k := range []uint64{50, 30, 70, 20, 40, 60, 80} {
		if !tr.Insert(0, k) {
			t.Fatalf("insert %d", k)
		}
	}
	if tr.Insert(0, 40) {
		t.Fatal("duplicate insert")
	}
	for _, k := range []uint64{20, 30, 40, 50, 60, 70, 80} {
		if !tr.Lookup(0, k) {
			t.Fatalf("lookup %d", k)
		}
	}
	if !tr.ValidateRouting() {
		t.Fatal("routing invalid")
	}
	for _, k := range []uint64{30, 50, 80} {
		if !tr.Remove(0, k) || tr.Lookup(0, k) {
			t.Fatalf("remove %d", k)
		}
	}
	if got := tr.Snapshot(); !sets.KeysEqual(got, []uint64{20, 40, 60, 70}) {
		t.Fatalf("snapshot = %v", got)
	}
	if !tr.ValidateRouting() {
		t.Fatal("routing invalid after removes")
	}
	if tr.DeferredNodes() != 6 {
		t.Fatalf("leaked = %d, want 6 (leaf+router per remove)", tr.DeferredNodes())
	}
}

func TestNMTreeSequentialVsModel(t *testing.T) {
	tr := NewNMTree(NMConfig{Threads: 1})
	tr.Register(0)
	rng := rand.New(rand.NewSource(11))
	model := map[uint64]bool{}
	for i := 0; i < 6000; i++ {
		key := uint64(rng.Intn(128)) + 1
		switch rng.Intn(3) {
		case 0:
			if got, want := tr.Insert(0, key), !model[key]; got != want {
				t.Fatalf("Insert(%d) = %v want %v", key, got, want)
			}
			model[key] = true
		case 1:
			if got, want := tr.Remove(0, key), model[key]; got != want {
				t.Fatalf("Remove(%d) = %v want %v", key, got, want)
			}
			delete(model, key)
		default:
			if got, want := tr.Lookup(0, key), model[key]; got != want {
				t.Fatalf("Lookup(%d) = %v want %v", key, got, want)
			}
		}
		if i%1000 == 0 && !tr.ValidateRouting() {
			t.Fatalf("routing invalid at op %d", i)
		}
	}
}

func TestNMTreeConcurrentStress(t *testing.T) {
	const threads = 8
	tr := NewNMTree(NMConfig{Threads: threads, YieldShift: 4})
	stressSet(t, tr, threads, 3000, 128)
	if !tr.ValidateRouting() {
		t.Fatal("routing invalid after stress")
	}
}

func TestNMTreeContentionSameKeys(t *testing.T) {
	const threads = 8
	tr := NewNMTree(NMConfig{Threads: threads, YieldShift: 4})
	var wg sync.WaitGroup
	var ins, rem atomic.Int64
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			tr.Register(tid)
			for i := 0; i < 1500; i++ {
				k := uint64(i%3) + 10
				if tr.Insert(tid, k) {
					ins.Add(1)
				}
				if tr.Remove(tid, k) {
					rem.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := ins.Load() - rem.Load(); got != int64(len(tr.Snapshot())) {
		t.Fatalf("balance: %d vs %d", got, len(tr.Snapshot()))
	}
	if !tr.ValidateRouting() {
		t.Fatal("routing invalid")
	}
}

func TestMarkHelpers(t *testing.T) {
	h := uint64(0x12345)
	if marked(h) {
		t.Fatal("clean handle reported marked")
	}
	if !marked(h | markBit) {
		t.Fatal("marked handle not detected")
	}
	if clearMark(h|markBit) != clearMark(h) {
		t.Fatal("clearMark broken")
	}
	raw := h | flagBit | tagBit
	if addrOf(raw) != clearMark(h) || !flagged(raw) || !tagged(raw) {
		t.Fatal("NM bit helpers broken")
	}
}
