package hohtx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hohtx"
)

// batchBuilders enumerates every public constructor for the batch
// conformance sweep.
func batchBuilders(threads int) map[string]func() hohtx.Set {
	cfg := hohtx.Config{Threads: threads}
	return map[string]func() hohtx.Set{
		"list":    func() hohtx.Set { return hohtx.NewListSet(cfg) },
		"dlist":   func() hohtx.Set { return hohtx.NewDoublyListSet(cfg) },
		"hash":    func() hohtx.Set { return hohtx.NewHashSet(cfg, 8) },
		"itree":   func() hohtx.Set { return hohtx.NewInternalTreeSet(cfg) },
		"etree":   func() hohtx.Set { return hohtx.NewExternalTreeSet(cfg) },
		"skip":    func() hohtx.Set { return hohtx.NewSkipListSet(cfg) },
		"sharded": func() hohtx.Set { return hohtx.NewShardedSet(2, func(int) hohtx.Set { return hohtx.NewListSet(cfg) }) },
	}
}

// TestApplyConformance checks Apply against a sequential model on every
// structure: results must match executing the ops one at a time, including
// same-key sequences inside one batch (insert→remove→insert, duplicate
// inserts) that exercise read-own-writes.
func TestApplyConformance(t *testing.T) {
	for name, build := range batchBuilders(2) {
		t.Run(name, func(t *testing.T) {
			s := build()
			s.Register(0)
			defer s.Finish(0)

			model := map[uint64]bool{}
			modelApply := func(op hohtx.Op) bool {
				switch op.Kind {
				case hohtx.OpInsert:
					if model[op.Key] {
						return false
					}
					model[op.Key] = true
					return true
				case hohtx.OpRemove:
					if !model[op.Key] {
						return false
					}
					delete(model, op.Key)
					return true
				default:
					return model[op.Key]
				}
			}

			// Directed same-key batch: exercises the in-batch state machine.
			directed := []hohtx.Op{
				{Kind: hohtx.OpInsert, Key: 5},
				{Kind: hohtx.OpLookup, Key: 5},
				{Kind: hohtx.OpRemove, Key: 5},
				{Kind: hohtx.OpLookup, Key: 5},
				{Kind: hohtx.OpInsert, Key: 5},
				{Kind: hohtx.OpInsert, Key: 5},
				{Kind: hohtx.OpInsert, Key: 3},
				{Kind: hohtx.OpRemove, Key: 4},
				{Kind: hohtx.OpInsert, Key: 4},
				{Kind: hohtx.OpRemove, Key: 3},
			}
			for i, got := range s.Apply(0, directed) {
				if want := modelApply(directed[i]); got != want {
					t.Fatalf("directed op %d (%+v) = %v, want %v", i, directed[i], got, want)
				}
			}

			// Randomized batches of varying size over a small key range.
			rng := rand.New(rand.NewSource(1))
			kinds := []hohtx.OpKind{hohtx.OpLookup, hohtx.OpInsert, hohtx.OpRemove}
			for round := 0; round < 50; round++ {
				n := 1 + rng.Intn(24)
				ops := make([]hohtx.Op, n)
				for i := range ops {
					ops[i] = hohtx.Op{
						Kind: kinds[rng.Intn(3)],
						Key:  1 + uint64(rng.Intn(12)),
					}
				}
				for i, got := range s.Apply(0, ops) {
					if want := modelApply(ops[i]); got != want {
						t.Fatalf("round %d op %d (%+v) = %v, want %v", round, i, ops[i], got, want)
					}
				}
			}

			// Empty batch is a no-op.
			if out := s.Apply(0, nil); len(out) != 0 {
				t.Fatalf("Apply(nil) returned %d results", len(out))
			}

			// Final state agrees with the model.
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			got := s.Snapshot()
			if fmt.Sprint(len(got)) != fmt.Sprint(len(want)) {
				t.Fatalf("snapshot has %d keys, model %d", len(got), len(want))
			}
			for _, k := range got {
				if !model[k] {
					t.Fatalf("snapshot key %d not in model", k)
				}
			}
		})
	}
}

// TestApplyPreciseReclamation checks the headline property survives
// batching: a batch that removes keys frees their nodes by the time Apply
// returns.
func TestApplyPreciseReclamation(t *testing.T) {
	for _, name := range []string{"list", "dlist", "hash", "itree", "etree", "skip"} {
		build := batchBuilders(2)[name]
		t.Run(name, func(t *testing.T) {
			s := build()
			mem := s.(hohtx.MemoryReporter)
			s.Register(0)
			defer s.Finish(0)
			base := mem.LiveNodes()

			const n = 64
			ins := make([]hohtx.Op, n)
			del := make([]hohtx.Op, n)
			for i := 0; i < n; i++ {
				ins[i] = hohtx.Op{Kind: hohtx.OpInsert, Key: uint64(i + 1)}
				del[i] = hohtx.Op{Kind: hohtx.OpRemove, Key: uint64(i + 1)}
			}
			for i, r := range s.Apply(0, ins) {
				if !r {
					t.Fatalf("batch insert %d failed", i)
				}
			}
			for i, r := range s.Apply(0, del) {
				if !r {
					t.Fatalf("batch remove %d failed", i)
				}
			}
			if live := mem.LiveNodes(); live != base {
				t.Fatalf("live nodes after batch removes = %d, want baseline %d", live, base)
			}
		})
	}
}
