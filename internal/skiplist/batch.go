package skiplist

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Batch execution: Apply runs the whole op slice inside ONE transaction,
// each op as a full uncut descent from the head (the window machinery
// splits transactions; a batch merges them). Insert heights are drawn
// before the transaction so retries relink identically; removals still
// Revoke the victim, so precise reclamation holds for batches. Oversized
// batches overflow the capacity and commit through the serial fallback,
// which stm.Stats.Batch records per batch-size bucket.

// Apply implements sets.Set.
func (s *SkipList) Apply(tid int, ops []sets.Op) []sets.Result {
	out := make([]sets.Result, len(ops))
	if len(ops) == 0 {
		return out
	}
	ts := &s.threads[tid]
	ts.ops += uint64(len(ops))
	heights := make([]int, len(ops))
	for i, op := range ops {
		if op.Kind == sets.OpInsert {
			heights[i] = s.randHeight(tid)
		}
	}
	s.rt.AtomicBatchT(tid, len(ops), func(tx *stm.Tx) {
		for i, op := range ops {
			switch op.Kind {
			case sets.OpInsert:
				out[i] = s.insertInTx(tx, tid, op.Key, heights[i])
			case sets.OpRemove:
				out[i] = s.removeInTx(tx, tid, op.Key)
			default:
				c := &searchCtx{tx: tx, tid: tid, curr: s.head, level: MaxHeight - 1}
				out[i] = s.run(c, op.Key, int(^uint(0)>>1), 0, 0) == advMatched
			}
		}
	})
	return out
}

// insertInTx is Insert's link phase with an uncut in-transaction descent.
func (s *SkipList) insertInTx(tx *stm.Tx, tid int, key uint64, h int) bool {
	c := &searchCtx{tx: tx, tid: tid, curr: s.head, level: MaxHeight - 1}
	unbounded := int(^uint(0) >> 1)
	if c.level >= h {
		switch s.run(c, key, unbounded, h, h) {
		case advMatched:
			return false
		case advStopped:
			c.level--
		}
	}
	var preds [MaxHeight]arena.Handle
	for l := h - 1; l > c.level; l-- {
		preds[l] = c.curr
	}
	if !s.collectPreds(c, key, arena.Nil, &preds) {
		return false
	}
	nh := s.ar.Alloc(tid)
	if s.he != nil {
		s.he.StampAlloc(nh)
	}
	tx.OnAbort(func() { s.ar.Free(tid, nh) })
	n := s.ar.At(nh)
	n.key.Store(tx, key)
	n.height.Store(tx, uint64(h))
	n.dead.Store(tx, 0)
	for l := 0; l < h; l++ {
		p := s.ar.At(preds[l])
		n.next[l].Store(tx, uint64(s.loadLink(tx, tid, preds[l], &p.next[l])))
		p.next[l].Store(tx, uint64(nh))
	}
	return true
}

// removeInTx is Remove with an uncut in-transaction descent: the first
// match is at the victim's top level, so the predecessors at every level
// collect in the same pass.
func (s *SkipList) removeInTx(tx *stm.Tx, tid int, key uint64) bool {
	c := &searchCtx{tx: tx, tid: tid, curr: s.head, level: MaxHeight - 1}
	if s.run(c, key, int(^uint(0)>>1), 0, 0) == advStopped {
		return false
	}
	victim := s.loadLink(tx, tid, c.curr, &s.ar.At(c.curr).next[c.level])
	if victim.IsNil() {
		// Poisoned link (doomed snapshot): abort and re-run the batch.
		tx.Restart()
	}
	v := s.ar.At(victim)
	vh := int(s.loadWord(tx, tid, victim, &v.height))
	if c.level != vh-1 {
		// Unreachable from an uncut descent unless the snapshot is doomed.
		tx.Restart()
	}
	var preds [MaxHeight]arena.Handle
	if !s.collectPreds(c, key, victim, &preds) {
		panic("skiplist: unreachable: duplicate key beside victim")
	}
	for l := 0; l < vh; l++ {
		s.ar.At(preds[l]).next[l].Store(tx, uint64(s.loadLink(tx, tid, victim, &v.next[l])))
	}
	switch s.mode {
	case ModeRR:
		s.rr.Revoke(tx, uint64(victim))
		tx.OnCommit(func() { s.ar.Free(tid, victim) })
	case ModeTMHE:
		v.dead.Store(tx, 1)
		stamp := s.threads[tid].ops
		tx.OnCommit(func() { s.he.Retire(tid, victim, stamp) })
	case ModeTMVBR:
		v.dead.Store(tx, 1)
		stamp := s.threads[tid].ops
		tx.OnCommit(func() { s.vbr.Retire(tid, victim, stamp) })
	default: // ModeHTM
		tx.OnCommit(func() { s.ar.Free(tid, victim) })
	}
	return true
}
