// Reclamation: watch precise and deferred reclamation diverge in real time.
//
// This example runs the same churn workload (insert/remove over a small
// key range) against three lists: the paper's contribution (RR-V:
// hand-over-hand transactions with revocable reservations), the deferred
// baseline (TMHP: hand-over-hand with hazard pointers, reclaiming in
// batches of 64), and the leaky lock-free list (LFLeak). Every 100ms it
// prints each structure's memory books. The churn goroutines outnumber
// each structure's worker slots and lease them in batches through a
// hohtx.LeasePool, the way a server front end would.
//
// Expected output shape: the RR column's "deferred" is always 0 and its
// "live" hugs the true set size; TMHP's deferred sawtooths up to the scan
// threshold; LFLeak's live count only ever grows. This is Figure 1's
// moral — a removed node is immediately reusable only under revocable
// reservations — made observable.
//
// Run with: go run ./examples/reclamation
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hohtx"
	"hohtx/internal/bench"
	"hohtx/internal/sets"
)

const (
	threads    = 4 // worker slots per structure
	churners   = 6 // goroutines per structure — more than slots
	leaseBatch = 256
	keyRange   = 256
	duration   = 2 * time.Second
)

// churn drives one structure from churners goroutines that lease the
// structure's threads worker slots in batches.
func churn(s sets.Set, pool *hohtx.LeasePool, stop *atomic.Bool, wg *sync.WaitGroup) {
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := pool.Handle()
			state := uint64(w)*77 + 1
			for !stop.Load() {
				_ = h.Do(context.Background(), func(tid int) {
					for i := 0; i < leaseBatch && !stop.Load(); i++ {
						state += 0x9e3779b97f4a7c15
						z := state
						z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
						key := (z^(z>>27))%keyRange + 1
						if z&(1<<40) == 0 {
							s.Insert(tid, key)
						} else {
							s.Remove(tid, key)
						}
					}
				})
			}
		}(w)
	}
}

func main() {
	rr := hohtx.NewListSet(hohtx.Config{Threads: threads})
	tmhp, err := bench.Build(bench.FamilySingly, bench.VariantSpec{Name: "TMHP"}, threads)
	if err != nil {
		panic(err)
	}
	leak, err := bench.Build(bench.FamilySingly, bench.VariantSpec{Name: "LFLeak"}, threads)
	if err != nil {
		panic(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var pools []*hohtx.LeasePool
	for _, s := range []sets.Set{rr, tmhp, leak} {
		pool := hohtx.NewLeasePool(s, hohtx.LeaseConfig{Slots: threads})
		pools = append(pools, pool)
		churn(s, pool, &stop, &wg)
	}

	fmt.Printf("%-8s %14s %14s %14s\n", "t(ms)", "RR-V live/def", "TMHP live/def", "LFLeak live/def")
	start := time.Now()
	for time.Since(start) < duration {
		time.Sleep(100 * time.Millisecond)
		r := rr.(sets.MemoryReporter)
		t := tmhp.(sets.MemoryReporter)
		l := leak.(sets.MemoryReporter)
		fmt.Printf("%-8d %8d/%-5d %8d/%-5d %8d/%-5d\n",
			time.Since(start).Milliseconds(),
			r.LiveNodes(), r.DeferredNodes(),
			t.LiveNodes(), t.DeferredNodes(),
			l.LiveNodes(), l.DeferredNodes())
	}
	stop.Store(true)
	wg.Wait()
	for _, pool := range pools {
		pool.Close() // flush every worker slot before the final accounting
	}

	fmt.Println()
	fmt.Printf("final: RR-V deferred=%d (precise), TMHP deferred=%d (batched), LFLeak deferred=%d (unbounded)\n",
		rr.(sets.MemoryReporter).DeferredNodes(),
		tmhp.(sets.MemoryReporter).DeferredNodes(),
		leak.(sets.MemoryReporter).DeferredNodes())
}
