package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"unsafe"
)

// Who-aborted-whom attribution. Committing (sampled) transactions record
// themselves as the last writer of each cell they wrote; an aborting
// transaction looks up the conflicting cell to name the probable owner
// and bumps the (victim, owner) edge counter. Attribution is inherently
// best-effort — the table is a fixed-size hash with overwrite-on-collision
// and the owner lookup races with later writers — but a skewed edge
// matrix still answers the postmortem question "who keeps killing t3"
// precisely enough to aim a fix.

// attrSlots sizes the cell→writer hash table (2^13 entries ≈ 128 KiB).
const attrSlots = 1 << 13

// attrTids is the attribution tid universe: tids 0..attrTids-2 are
// tracked individually, everything else (including unknown, encoded -1)
// folds into the final index.
const attrTids = 33

// attrEntry pairs a cell address with the last sampled writer's tid. The
// two fields are stored with independent atomics, so a racing pair of
// writers can mis-pair address and tid; the consumer (abort attribution)
// tolerates that by construction.
type attrEntry struct {
	cell atomic.Uintptr
	tid  atomic.Int32
}

// AttrTable is the who-aborted-whom attribution state.
type AttrTable struct {
	slots  [attrSlots]attrEntry
	counts [attrTids][attrTids]atomic.Uint64
}

// NewAttrTable creates an empty attribution table.
func NewAttrTable() *AttrTable { return &AttrTable{} }

// CellRef converts a cell's version-word pointer to the opaque reference
// recorded in events and used as the attribution key.
func CellRef(cell *atomic.Uint64) uint64 {
	return uint64(uintptr(unsafe.Pointer(cell)))
}

func attrIndex(ref uintptr) int {
	x := uint64(ref)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & (attrSlots - 1))
}

func clampTid(tid int) int {
	if tid < 0 || tid >= attrTids-1 {
		return attrTids - 1
	}
	return tid
}

// NoteWrite records tid as the last (sampled) writer of cell.
func (a *AttrTable) NoteWrite(cell *atomic.Uint64, tid int) {
	ref := uintptr(unsafe.Pointer(cell))
	e := &a.slots[attrIndex(ref)]
	e.cell.Store(ref)
	e.tid.Store(int32(tid))
}

// Owner returns the tid of the last sampled writer of cell, or -1 if the
// table holds no (or a colliding) entry for it.
func (a *AttrTable) Owner(cell *atomic.Uint64) int {
	ref := uintptr(unsafe.Pointer(cell))
	e := &a.slots[attrIndex(ref)]
	if e.cell.Load() != ref {
		return -1
	}
	return int(e.tid.Load())
}

// NoteAbort bumps the (victim, owner) edge. owner may be -1 (unknown).
func (a *AttrTable) NoteAbort(victim, owner int) {
	a.counts[clampTid(victim)][clampTid(owner)].Add(1)
}

// AttrEdge is one nonzero entry of the who-aborted-whom matrix: Owner's
// writes aborted Victim Count times. -1 means "unknown or out of range".
type AttrEdge struct {
	Victim int    `json:"victim"`
	Owner  int    `json:"owner"`
	Count  uint64 `json:"count"`
}

func edgeTid(i int) int {
	if i == attrTids-1 {
		return -1
	}
	return i
}

// Edges returns the nonzero attribution edges, largest count first.
func (a *AttrTable) Edges() []AttrEdge {
	var out []AttrEdge
	for v := 0; v < attrTids; v++ {
		for o := 0; o < attrTids; o++ {
			if c := a.counts[v][o].Load(); c != 0 {
				out = append(out, AttrEdge{Victim: edgeTid(v), Owner: edgeTid(o), Count: c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// DumpEdges writes the top n attribution edges to w.
func (a *AttrTable) DumpEdges(w io.Writer, n int) {
	edges := a.Edges()
	if len(edges) == 0 {
		fmt.Fprintln(w, "  (no aborts attributed)")
		return
	}
	if n > 0 && len(edges) > n {
		edges = edges[:n]
	}
	for _, e := range edges {
		owner := "?"
		if e.Owner >= 0 {
			owner = fmt.Sprintf("t%d", e.Owner)
		}
		victim := "?"
		if e.Victim >= 0 {
			victim = fmt.Sprintf("t%d", e.Victim)
		}
		fmt.Fprintf(w, "  %s aborted %s ×%d\n", owner, victim, e.Count)
	}
}
