// Command hohload is the load generator for cmd/hohserver. By default it
// runs closed-loop: a configurable number of connections, each keeping a
// fixed number of pipelined requests in flight, drawing keys uniformly
// from a range with a configurable read ratio. With -rate it runs
// open-loop instead: requests are scheduled on a fixed cadence summing to
// the target rate across connections, each connection's writer sends on
// schedule whether or not earlier replies have arrived, and latency is
// measured from each request's *intended* send time — so a server stall
// shows up as the queueing delay a real client would suffer, not as a
// conveniently paused load generator (the coordinated-omission trap).
//
// Either way it reports throughput and client-observed latency
// percentiles, samples the server's INFO line throughout the run to
// verify the live-node count stays flat (precise reclamation observed
// from outside the process), and can emit the same JSON shape as
// cmd/benchjson so server-mode numbers land in BENCH_<n>.json next to the
// in-process ones.
//
// Usage:
//
//	hohload -addr 127.0.0.1:7070 -conns 4 -depth 8 -reads 50 -ops 20000
//	hohload -addr 127.0.0.1:7070 -rate 20000 -ops 20000   # open loop, 20k req/s
//	hohload -addr 127.0.0.1:7070 -out BENCH_3.json
//	hohload -addr 127.0.0.1:7070 -out BENCH_4.json -append   # accumulate cells
//	hohload -addr 127.0.0.1:7070 -cmd 'SET 42;GET 42;LEN;DEL 42;LEN'
//
// The -cmd form is a one-shot client: it sends the semicolon-separated
// requests as one pipeline, prints each reply, and exits — the quickest
// way to poke at a running server without netcat.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	conns := flag.Int("conns", 4, "concurrent connections")
	depth := flag.Int("depth", 8, "pipelined requests in flight per connection")
	keys := flag.Uint64("keys", 1024, "key range (keys drawn uniformly from [1, keys])")
	reads := flag.Int("reads", 50, "percent of requests that are GET")
	ops := flag.Int("ops", 50_000, "requests per connection")
	rate := flag.Float64("rate", 0, "open-loop mode: target requests/sec across all connections (0 = closed loop)")
	seed := flag.Uint64("seed", 20170724, "workload seed")
	warmup := flag.Bool("warmup", true, "prefill half the key range before measuring (so the live-node envelope reflects steady state, not ramp-up)")
	out := flag.String("out", "", "write a BENCH_<n>.json summary here (empty = report only)")
	appendOut := flag.Bool("append", false, "append the cell to an existing -out file instead of overwriting it")
	cmd := flag.String("cmd", "", "one-shot mode: send these ';'-separated requests and print the replies")
	flag.Parse()

	if *cmd != "" {
		oneShot(*addr, *cmd)
		return
	}
	if *depth < 1 || *conns < 1 || *keys < 1 {
		fmt.Fprintln(os.Stderr, "hohload: -conns, -depth and -keys must be positive")
		os.Exit(2)
	}

	// A balanced SET/DEL mix holds the set near half the key range, so
	// prefilling every other key puts the structure at steady state
	// before the first measured request.
	if *warmup {
		if err := prefill(*addr, *keys); err != nil {
			fmt.Fprintln(os.Stderr, "hohload: warmup:", err)
			os.Exit(1)
		}
	}

	// Sample the server's INFO line for the whole run: variant and slot
	// count for the report, and the live-node envelope for the flatness
	// check.
	mon, err := startMonitor(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}

	hist := obs.NewHistogram("op_latency", "ns")
	var gets, sets, dels, hits atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	// Open loop: the request cadence is fixed before the first send, and
	// every connection schedules against the same origin — request i of
	// connection c is *due* at start + (i×conns + c)×interval, and that
	// intended time (not the moment the writer got around to the socket)
	// is the latency clock's zero.
	var interval time.Duration
	start := time.Now()
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
		start = start.Add(100 * time.Millisecond) // let every conn dial before the cadence begins
	}
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			var err error
			if *rate > 0 {
				err = runConnOpen(cid, *addr, *ops, *conns, interval, start, *keys, *reads, *seed,
					hist, &gets, &sets, &dels, &hits)
			} else {
				err = runConn(cid, *addr, *ops, *depth, *keys, *reads, *seed, hist,
					&gets, &sets, &dels, &hits)
			}
			if err != nil {
				errs <- fmt.Errorf("conn %d: %w", cid, err)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	info := mon.stop()

	total := uint64(*conns) * uint64(*ops)
	mops := float64(total) / elapsed.Seconds() / 1e6
	achieved := float64(total) / elapsed.Seconds()
	snap := hist.Snapshot()
	if *rate > 0 {
		fmt.Printf("hohload: %s (%d shard(s)), open loop at %.0f req/s, %d conns, %d%% reads, %d keys\n",
			info.variant, info.shards, *rate, *conns, *reads, *keys)
		fmt.Printf("  %d ops in %s: offered %.0f req/s, achieved %.0f req/s\n",
			total, elapsed.Round(time.Millisecond), *rate, achieved)
		fmt.Printf("  latency (from intended send) p50=%s p90=%s p99=%s max=%s\n",
			time.Duration(snap.P50), time.Duration(snap.P90), time.Duration(snap.P99), time.Duration(snap.Max))
	} else {
		fmt.Printf("hohload: %s (%d shard(s)), %d conns × depth %d, %d%% reads, %d keys\n",
			info.variant, info.shards, *conns, *depth, *reads, *keys)
		fmt.Printf("  %d ops in %s = %.4f Mops/s\n", total, elapsed.Round(time.Millisecond), mops)
		fmt.Printf("  latency p50=%s p90=%s p99=%s max=%s\n",
			time.Duration(snap.P50), time.Duration(snap.P90), time.Duration(snap.P99), time.Duration(snap.Max))
	}
	fmt.Printf("  mix: GET=%d (hit %.1f%%) SET=%d DEL=%d\n",
		gets.Load(), 100*float64(hits.Load())/float64(max64(gets.Load(), 1)), sets.Load(), dels.Load())
	fmt.Printf("  live nodes over run: [%d, %d] (spread %d, key range %d); deferred at end: %d\n",
		info.liveMin, info.liveMax, info.liveMax-info.liveMin, *keys, info.deferred)

	if *out == "" {
		return
	}
	cell := bench.Cell{
		Family:      "server",
		Variant:     info.variant,
		Threads:     info.slots,
		Mops:        mops,
		Conns:       *conns,
		ReadPct:     *reads,
		Shards:      info.shards,
		OpP50Ns:     snap.P50,
		OpP99Ns:     snap.P99,
		LiveMin:     info.liveMin,
		LiveMax:     info.liveMax,
		Deferred:    info.deferred,
		OfferedRps:  *rate,
		AchievedRps: achieved,
	}
	if *rate == 0 {
		cell.Depth = *depth
		cell.AchievedRps = 0
	}
	sum := bench.Summary{
		Bench:      bench.BenchNumber(*out),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   workloadDesc(*keys, *reads, *conns, *depth, *rate),
		Ops:        *ops,
		Trials:     1,
	}
	if *appendOut {
		if prev, err := os.ReadFile(*out); err == nil {
			var old bench.Summary
			if err := json.Unmarshal(prev, &old); err != nil {
				fmt.Fprintf(os.Stderr, "hohload: -append: %s is not a summary: %v\n", *out, err)
				os.Exit(1)
			}
			sum.Cells = old.Cells
			if old.Workload != "" {
				// Keep the first recording's description; per-cell fields
				// carry each run's own parameters.
				sum.Workload = old.Workload
			}
		}
	}
	sum.Cells = append(sum.Cells, cell)
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s (%d cells)\n", *out, len(sum.Cells))
}

// runConn drives one connection closed-loop: fill the pipeline to depth,
// then send one request per reply.
// workloadDesc names the recorded workload; open- and closed-loop runs
// read differently (rate vs. pipeline depth).
func workloadDesc(keys uint64, reads, conns, depth int, rate float64) string {
	if rate > 0 {
		return fmt.Sprintf("hohserver loopback: %d keys, %d%% reads, %d conns, open loop",
			keys, reads, conns)
	}
	return fmt.Sprintf("hohserver loopback: %d keys, %d%% reads, %d conns × depth %d",
		keys, reads, conns, depth)
}

func runConn(cid int, addr string, ops, depth int, keys uint64, reads int, seed uint64,
	hist *obs.Histogram, gets, sets, dels, hits *atomic.Uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 16<<10)

	rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
	sendTimes := make([]time.Time, depth)
	verbs := make([]byte, depth)
	var sent, recv int

	send := func() error {
		r := splitmix64(&rng)
		key := 1 + (r>>8)%keys
		var verb string
		var vb byte
		switch {
		case int(r%100) < reads:
			verb, vb = "GET", 'G'
		case r&(1<<40) == 0:
			verb, vb = "SET", 'S'
		default:
			verb, vb = "DEL", 'D'
		}
		sendTimes[sent%depth] = time.Now()
		verbs[sent%depth] = vb
		if _, err := fmt.Fprintf(bw, "%s %d\n", verb, key); err != nil {
			return err
		}
		sent++
		return bw.Flush()
	}
	for sent < depth && sent < ops {
		if err := send(); err != nil {
			return err
		}
	}
	for recv < ops {
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("after %d replies: %w", recv, err)
		}
		reply := strings.TrimRight(line, "\n")
		if strings.HasPrefix(reply, "ERR") {
			return fmt.Errorf("server: %s", reply)
		}
		hist.RecordAt(uint64(cid), uint64(time.Since(sendTimes[recv%depth])))
		switch verbs[recv%depth] {
		case 'G':
			gets.Add(1)
			if reply == "1" {
				hits.Add(1)
			}
		case 'S':
			sets.Add(1)
		default:
			dels.Add(1)
		}
		recv++
		if sent < ops {
			if err := send(); err != nil {
				return err
			}
		}
	}
	return nil
}

// runConnOpen drives one connection open-loop: a writer goroutine sends
// request i at its scheduled time start + (i×conns + cid)×interval — it
// never waits for replies, so a slow server accumulates in-flight
// requests instead of slowing the offered load — while the reader (this
// goroutine) measures each reply against that same intended send time.
// Reader and writer re-derive the identical deterministic request stream
// from the shared seed, so no per-request metadata crosses between them.
func runConnOpen(cid int, addr string, ops, conns int, interval time.Duration, start time.Time,
	keys uint64, reads int, seed uint64,
	hist *obs.Histogram, gets, sets, dels, hits *atomic.Uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)

	// verbOf classifies request i's random draw the same way runConn does,
	// so closed- and open-loop runs at the same seed issue the same ops.
	verbOf := func(r uint64) (string, byte) {
		switch {
		case int(r%100) < reads:
			return "GET", 'G'
		case r&(1<<40) == 0:
			return "SET", 'S'
		default:
			return "DEL", 'D'
		}
	}
	due := func(i int) time.Time {
		return start.Add(time.Duration(i*conns+cid) * interval)
	}

	writeErr := make(chan error, 1)
	go func() {
		rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
		for i := 0; i < ops; i++ {
			if d := time.Until(due(i)); d > 0 {
				// Push buffered requests out before going idle: nothing may
				// sit in the client buffer past its scheduled send time.
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
				time.Sleep(d)
			}
			r := splitmix64(&rng)
			verb, _ := verbOf(r)
			if _, err := fmt.Fprintf(bw, "%s %d\n", verb, 1+(r>>8)%keys); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Flush()
	}()

	// The reader re-derives the same stream to classify replies, and
	// clocks each one against the request's intended send time — if the
	// server (or the writer's socket) stalls, every queued request's
	// latency grows by the stall, exactly as a real open-loop client
	// population would experience it.
	rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
	for recv := 0; recv < ops; recv++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("after %d replies: %w", recv, err)
		}
		reply := strings.TrimRight(line, "\n")
		if strings.HasPrefix(reply, "ERR") {
			return fmt.Errorf("server: %s", reply)
		}
		r := splitmix64(&rng)
		_, vb := verbOf(r)
		lat := time.Since(due(recv))
		if lat < 0 {
			lat = 0 // clock skew guard: a reply cannot precede its request
		}
		hist.RecordAt(uint64(cid), uint64(lat))
		switch vb {
		case 'G':
			gets.Add(1)
			if reply == "1" {
				hits.Add(1)
			}
		case 'S':
			sets.Add(1)
		default:
			dels.Add(1)
		}
	}
	return <-writeErr
}

// prefill inserts every other key in [1, keys] through one pipelined
// connection, chunked so neither side's socket buffer can fill while the
// other waits.
func prefill(addr string, keys uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 16<<10)
	const chunk = 256
	pending := 0
	drain := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		for ; pending > 0; pending-- {
			if _, err := br.ReadString('\n'); err != nil {
				return err
			}
		}
		return nil
	}
	for k := uint64(1); k <= keys; k += 2 {
		if _, err := fmt.Fprintf(bw, "SET %d\n", k); err != nil {
			return err
		}
		if pending++; pending == chunk {
			if err := drain(); err != nil {
				return err
			}
		}
	}
	return drain()
}

// monitor samples INFO on its own connection every 50ms.
type monitor struct {
	br    *bufio.Reader // one reader for the connection's lifetime
	stopc chan struct{}
	done  chan struct{}
	info  serverInfo
}

type serverInfo struct {
	variant  string
	shards   int
	slots    int
	liveMin  uint64
	liveMax  uint64
	deferred uint64
}

func startMonitor(addr string) (*monitor, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	m := &monitor{br: bufio.NewReader(c), stopc: make(chan struct{}), done: make(chan struct{})}
	first, err := queryInfo(c, m.br)
	if err != nil {
		c.Close()
		return nil, err
	}
	m.info = first
	go func() {
		defer close(m.done)
		defer c.Close()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-m.stopc:
				if in, err := queryInfo(c, m.br); err == nil {
					m.merge(in)
				}
				return
			case <-tick.C:
				if in, err := queryInfo(c, m.br); err == nil {
					m.merge(in)
				}
			}
		}
	}()
	return m, nil
}

func (m *monitor) merge(in serverInfo) {
	if in.liveMin < m.info.liveMin {
		m.info.liveMin = in.liveMin
	}
	if in.liveMax > m.info.liveMax {
		m.info.liveMax = in.liveMax
	}
	m.info.deferred = in.deferred
}

func (m *monitor) stop() serverInfo {
	close(m.stopc)
	<-m.done
	return m.info
}

// queryInfo sends one INFO request and parses the reply.
func queryInfo(c net.Conn, br *bufio.Reader) (serverInfo, error) {
	if _, err := fmt.Fprintf(c, "INFO\n"); err != nil {
		return serverInfo{}, err
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return serverInfo{}, err
	}
	var in serverInfo
	for _, f := range strings.Fields(strings.TrimSpace(line)) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "variant":
			in.variant = v
		case "shards":
			in.shards, _ = strconv.Atoi(v)
		case "slots":
			in.slots, _ = strconv.Atoi(v)
		case "live":
			n, _ := strconv.ParseUint(v, 10, 64)
			in.liveMin, in.liveMax = n, n
		case "deferred":
			in.deferred, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	if in.variant == "" {
		return serverInfo{}, fmt.Errorf("malformed INFO reply %q", strings.TrimSpace(line))
	}
	return in, nil
}

// oneShot sends a ';'-separated request pipeline and prints the replies.
func oneShot(addr, script string) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	defer c.Close()
	var reqs []string
	for _, r := range strings.Split(script, ";") {
		if r = strings.TrimSpace(r); r != "" {
			reqs = append(reqs, r)
		}
	}
	bw := bufio.NewWriter(c)
	for _, r := range reqs {
		fmt.Fprintf(bw, "%s\n", r)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	br := bufio.NewReader(c)
	for _, r := range reqs {
		line, err := br.ReadString('\n')
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohload:", err)
			os.Exit(1)
		}
		fmt.Printf("%-12s -> %s", r, line)
	}
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
