package core

import (
	"sync"
	"testing"
	"testing/quick"

	"hohtx/internal/stm"
)

func multiImpls(threads, k int) []MultiReservation {
	return []MultiReservation{
		NewMultiFA(testCfg(threads), k),
		NewMultiV(testCfg(threads), k),
	}
}

func TestMultiReserveGetRelease(t *testing.T) {
	for _, m := range multiImpls(2, 3) {
		t.Run(m.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			m.Register(0)
			rt.Atomic(func(tx *stm.Tx) {
				m.Reserve(tx, 0, 10)
				m.Reserve(tx, 0, 20)
				m.Reserve(tx, 0, 30)
			})
			for _, ref := range []uint64{10, 20, 30} {
				ref := ref
				if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, 0, ref) }); got != ref {
					t.Fatalf("Get(%d) = %d", ref, got)
				}
			}
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, 0, 99) }); got != 0 {
				t.Fatal("Get of never-reserved ref succeeded")
			}
			rt.Atomic(func(tx *stm.Tx) { m.ReleaseRef(tx, 0, 20) })
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, 0, 20) }); got != 0 {
				t.Fatal("released ref still held")
			}
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, 0, 10) }); got != 10 {
				t.Fatal("release disturbed sibling reservation")
			}
			rt.Atomic(func(tx *stm.Tx) { m.ReleaseAll(tx, 0) })
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, 0, 10) }); got != 0 {
				t.Fatal("ReleaseAll left a reservation")
			}
		})
	}
}

func TestMultiCapacityPanics(t *testing.T) {
	for _, m := range multiImpls(1, 2) {
		t.Run(m.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			m.Register(0)
			rt.Atomic(func(tx *stm.Tx) {
				m.Reserve(tx, 0, 1)
				m.Reserve(tx, 0, 2)
				m.Reserve(tx, 0, 1) // idempotent, must not panic
			})
			defer func() {
				if recover() == nil {
					t.Fatal("overflowing the set did not panic")
				}
			}()
			rt.Atomic(func(tx *stm.Tx) { m.Reserve(tx, 0, 3) })
		})
	}
}

func TestMultiRevokeClearsEveryThread(t *testing.T) {
	const threads = 4
	for _, m := range multiImpls(threads, 3) {
		t.Run(m.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			for tid := 0; tid < threads; tid++ {
				m.Register(tid)
				tid := tid
				rt.Atomic(func(tx *stm.Tx) {
					m.Reserve(tx, tid, 7)
					m.Reserve(tx, tid, uint64(100+tid))
				})
			}
			rt.Atomic(func(tx *stm.Tx) { m.Revoke(tx, 7) })
			for tid := 0; tid < threads; tid++ {
				tid := tid
				if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, tid, 7) }); got != 0 {
					t.Fatalf("thread %d still holds revoked ref", tid)
				}
				if m.Strict() {
					want := uint64(100 + tid)
					if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, tid, want) }); got != want {
						t.Fatalf("strict: revoke disturbed unrelated reservation %d", want)
					}
				}
			}
		})
	}
}

// TestMultiQuickSpec drives random scripts against the Listing 1 set model.
func TestMultiQuickSpec(t *testing.T) {
	const threads = 3
	const capacity = 4
	for idx := range multiImpls(threads, capacity) {
		idx := idx
		name := multiImpls(threads, capacity)[idx].Name()
		t.Run(name, func(t *testing.T) {
			f := func(script []opCode) bool {
				m := multiImpls(threads, capacity)[idx]
				rt := stm.NewRuntime(stm.Profile{})
				model := make([]map[uint64]bool, threads)
				for i := range model {
					model[i] = map[uint64]bool{}
					m.Register(i)
				}
				for _, op := range script {
					tid := int(op.Tid) % threads
					ref := uint64(op.Ref%8) + 1
					switch op.Kind % 4 {
					case 0: // reserve (skip if model set full: impl would panic)
						if len(model[tid]) >= capacity && !model[tid][ref] {
							continue
						}
						rt.Atomic(func(tx *stm.Tx) { m.Reserve(tx, tid, ref) })
						model[tid][ref] = true
					case 1: // release
						rt.Atomic(func(tx *stm.Tx) { m.ReleaseRef(tx, tid, ref) })
						delete(model[tid], ref)
					case 2: // get
						got := stm.Run(rt, func(tx *stm.Tx) uint64 { return m.Get(tx, tid, ref) })
						if m.Strict() {
							want := uint64(0)
							if model[tid][ref] {
								want = ref
							}
							if got != want {
								return false
							}
						} else if got != 0 && !model[tid][ref] {
							return false
						}
					case 3: // revoke
						rt.Atomic(func(tx *stm.Tx) { m.Revoke(tx, ref) })
						for i := range model {
							delete(model[i], ref)
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMultiConcurrent hammers reserve/get/release with a concurrent
// revoker; after everything is revoked, no Get may succeed.
func TestMultiConcurrent(t *testing.T) {
	const threads = 3
	for _, m := range multiImpls(threads+1, 4) {
		t.Run(m.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					m.Register(tid)
					for i := 0; i < 400; i++ {
						a := uint64(tid*1000+i) + 1
						b := a + 500000
						rt.Atomic(func(tx *stm.Tx) {
							m.Reserve(tx, tid, a)
							m.Reserve(tx, tid, b)
						})
						rt.Atomic(func(tx *stm.Tx) {
							_ = m.Get(tx, tid, a)
							_ = m.Get(tx, tid, b)
						})
						rt.Atomic(func(tx *stm.Tx) { m.ReleaseAll(tx, tid) })
					}
				}(tid)
			}
			m.Register(threads)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 2000; i++ {
					ref := uint64(i%3000) + 1
					rt.Atomic(func(tx *stm.Tx) { m.Revoke(tx, ref) })
				}
			}()
			wg.Wait()
			<-done
		})
	}
}
