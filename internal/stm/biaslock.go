package stm

import (
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/pad"
)

// BRAVO-style distributed readers-writer lock for the serial-fallback path
// (Dice & Kogan, "BRAVO — Biased Locking for Reader-Writer Locks",
// USENIX ATC 2019, adapted).
//
// Every writing speculative commit used to take the reader side of a
// sync.RWMutex, which funnels all committers through one contended reader
// counter — exactly the kind of per-operation shared-cache-line traffic the
// paper argues must stay off the hot path. Here the common case touches
// only a per-transaction slot in a padded visible-readers table:
//
//   - reader (speculative commit): if the lock is reader-biased, CAS your
//     hashed slot from 0 to a nonzero claim and re-check the bias; on
//     success the entire acquisition touched one private cache line. If the
//     bias is revoked (or the slot is taken by a hash collision), fall back
//     to the underlying RWMutex's reader side.
//   - writer (serial-mode transaction): take the underlying mutex, revoke
//     the bias, then scan the visible-readers table and wait for every
//     claimed slot to drain. Readers that arrive after the revocation see
//     the cleared bias flag and queue on the underlying lock.
//
// The flag/re-check pairing makes the race safe under Go's sequentially
// consistent atomics: either the reader's re-check observes the revoked
// bias (and the reader retreats to the slow path), or the writer's table
// scan observes the reader's claimed slot (and waits for it).
//
// Bias is re-armed by slow-path readers once a cooldown proportional to
// the last revocation's cost has passed, so a serial-heavy phase (e.g. the
// capacity cliff of large HTM-profile transactions) settles into plain
// rwlock behavior instead of paying a table revocation per serial commit.
//
// Slots additionally double as the commit-publication table for the lazy
// clock policy: a fast-path committer overwrites its claim with its write
// version (see clock.go), so validation-driven clock advances can wait out
// in-flight write-backs. Claim values are odd (wv|1, or 1 before the write
// version is fixed); 0 means free.

const (
	// bravoSlotBits sizes the visible-readers table. 64 slots comfortably
	// cover the thread counts this repository benchmarks (1-16) with a low
	// collision rate; collisions only cost a slow-path acquisition.
	bravoSlotBits = 6
	bravoSlots    = 1 << bravoSlotBits

	// bravoInhibitMult scales the re-arming cooldown: after a revocation
	// that took D nanoseconds, readers may re-arm the bias only D*mult
	// nanoseconds later, bounding the fraction of writer time spent
	// revoking (the BRAVO paper's inhibition rule).
	bravoInhibitMult = 16

	// slotPending is a claimed slot whose write version is not yet fixed.
	slotPending = uint64(1)
)

// bravoSlot is one padded visible-reader entry.
type bravoSlot struct {
	v atomic.Uint64
	_ [pad.CacheLine - 8]byte
}

// bravoLock is the distributed serial-fallback lock. The zero value is NOT
// ready to use: call arm() once (NewRuntime does) to enable reader bias.
type bravoLock struct {
	rbias        atomic.Bool
	inhibitUntil atomic.Int64 // unix nanos before which re-arming is barred
	_            pad.Line
	slots        [bravoSlots]bravoSlot
	wmu          sync.RWMutex

	// Observability counters (surfaced through Runtime.Stats). Slow-path
	// reader acquisitions are counted transaction-locally (Tx.slowPaths)
	// to keep even the fallback path free of extra shared-line traffic.
	revocations atomic.Uint64 // writer-side bias revocations
	writerWaits atomic.Uint64 // spin-waits on claimed slots (revocation + clock drains)
}

func (b *bravoLock) arm() { b.rbias.Store(true) }

// rlockFast tries to acquire the reader side for one speculative commit on
// the biased fast path alone. h is the transaction's slot hash; the top
// bits index the table (Fibonacci hashing). It returns the claimed slot
// index, or -1 if the caller must fall back to rlockSlow. Small enough to
// inline into the commit path.
func (b *bravoLock) rlockFast(h uint64) int {
	if !b.rbias.Load() {
		return -1
	}
	i := int(h >> (64 - bravoSlotBits))
	if !b.slots[i].v.CompareAndSwap(0, slotPending) {
		return -1
	}
	if b.rbias.Load() {
		return i
	}
	// A writer revoked the bias between our claim and the re-check;
	// retreat so it does not wait on us needlessly.
	b.slots[i].v.Store(0)
	return -1
}

// rlockSlow acquires the reader side through the underlying rwlock after
// rlockFast failed. slow is the caller's slow-path counter, bumped (and
// used as a re-arm sampling source) on every fallback acquisition.
func (b *bravoLock) rlockSlow(slow *uint64) {
	b.wmu.RLock()
	*slow++
	// Probe for re-arming only every 64th of the caller's slow-path
	// acquisitions: the clock read is far too expensive to pay per commit,
	// and a serial-heavy phase (the whole point of the inhibition window)
	// keeps the lock on this path for long stretches, where each re-arm
	// buys the next serial writer a full table sweep. Holding the reader
	// side proves no writer is active, so re-arming cannot strand one
	// mid-revocation.
	if *slow&63 == 0 && !b.rbias.Load() &&
		time.Now().UnixNano() >= b.inhibitUntil.Load() {
		b.rbias.Store(true)
	}
}

// runlock releases the reader side claimed by rlock.
func (b *bravoLock) runlock(slot int) {
	if slot >= 0 {
		b.slots[slot].v.Store(0)
		return
	}
	b.wmu.RUnlock()
}

// lock acquires the exclusive (serial-mode) side: the underlying mutex,
// then — if readers are biased — a revocation sweep over the table.
func (b *bravoLock) lock() {
	b.wmu.Lock()
	if !b.rbias.Load() {
		return
	}
	b.rbias.Store(false)
	b.revocations.Add(1)
	start := time.Now()
	for i := range b.slots {
		if b.slots[i].v.Load() == 0 {
			continue
		}
		b.writerWaits.Add(1)
		for spins := 0; b.slots[i].v.Load() != 0; spins++ {
			pause(spins)
		}
	}
	d := time.Since(start).Nanoseconds()
	b.inhibitUntil.Store(time.Now().UnixNano() + d*bravoInhibitMult)
}

// unlock releases the exclusive side.
func (b *bravoLock) unlock() { b.wmu.Unlock() }

// drainBelow waits until no fast-path committer has a published write
// version at or below v. The lazy clock policy calls this before making v
// visible as a snapshot bound, so that a transaction starting at rv=v can
// never observe half of an in-flight write-back (see clock.go for the full
// protocol and its correctness argument). Slots still in the slotPending
// state are safe to skip: their owner re-checks the clock target after
// fixing a write version and retreats if it was overtaken.
func (b *bravoLock) drainBelow(v uint64) {
	for i := range b.slots {
		s := &b.slots[i]
		cur := s.v.Load()
		if cur <= slotPending || cur&^lockedBit > v {
			continue
		}
		b.writerWaits.Add(1)
		for spins := 0; ; spins++ {
			cur = s.v.Load()
			if cur <= slotPending || cur&^lockedBit > v {
				break
			}
			pause(spins)
		}
	}
}
