package serve_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hohtx/internal/serve"
	"hohtx/internal/sets"
)

// send writes the lines without reading anything back; read pulls n reply
// lines. MULTI framing is asymmetric (n+1 request lines, n replies), so
// the symmetric roundTrip helper does not fit.
func (cl *client) send(t *testing.T, lines ...string) {
	t.Helper()
	for _, l := range lines {
		cl.bw.WriteString(l)
		cl.bw.WriteByte('\n')
	}
	if err := cl.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func (cl *client) read(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		line, err := cl.br.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply %d/%d: %v", i+1, n, err)
		}
		out[i] = strings.TrimRight(line, "\n")
	}
	return out
}

// multi frames the ops as one MULTI batch and returns the n replies.
func (cl *client) multi(t *testing.T, ops ...string) []string {
	t.Helper()
	cl.send(t, append([]string{fmt.Sprintf("MULTI %d", len(ops))}, ops...)...)
	return cl.read(t, len(ops))
}

// startServerCfg is startServer with the batch knobs exposed.
func startServerCfg(t *testing.T, slots, maxBatch, autoBatch int) (*serve.Server, sets.Set, string) {
	t.Helper()
	set := newSet(t, slots)
	pool := serve.NewPool(set, serve.PoolConfig{Slots: slots})
	srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool, MaxBatch: maxBatch, AutoBatch: autoBatch})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, set, ln.Addr().String()
}

// TestMultiEndToEnd drives a single-shard MULTI through insert, in-batch
// read-own-writes, and removal, and checks precise reclamation holds for
// batched removes over the wire.
func TestMultiEndToEnd(t *testing.T) {
	srv, set, addr := startServer(t, 2)
	mem := set.(sets.MemoryReporter)
	baseline := mem.LiveNodes()
	cl := dialClient(t, addr)

	got := cl.multi(t, "SET 10", "SET 11", "GET 10", "SET 10", "DEL 12")
	want := []string{"1", "1", "1", "0", "0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch reply %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if srv.Len() != 2 {
		t.Fatalf("Len after batch = %d, want 2", srv.Len())
	}

	// Same-key sequence inside one batch: the transaction sees its own
	// writes, so insert→remove→lookup lands back at absent.
	got = cl.multi(t, "DEL 10", "GET 10", "SET 10", "DEL 10", "GET 10")
	want = []string{"1", "0", "1", "1", "0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-key reply %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}

	if r := cl.multi(t, "DEL 11")[0]; r != "1" {
		t.Fatalf("DEL 11 -> %q", r)
	}
	if live := mem.LiveNodes(); live != baseline {
		t.Fatalf("live nodes after batched removes = %d, want baseline %d", live, baseline)
	}
	if srv.Len() != 0 {
		t.Fatalf("Len = %d, want 0", srv.Len())
	}
}

// TestMultiMalformedCount checks every malformed count shape gets exactly
// one ERR line, executes nothing, and leaves the connection usable.
func TestMultiMalformedCount(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	for _, req := range []string{"MULTI", "MULTI x", "MULTI 0", "MULTI -3", "MULTI 1.5"} {
		cl.send(t, req)
		if got := cl.read(t, 1)[0]; !strings.HasPrefix(got, "ERR multi: bad count") {
			t.Errorf("%q -> %q, want ERR multi: bad count", req, got)
		}
	}
	// The connection survived; framing is intact.
	if r := cl.roundTrip(t, "SET 3", "GET 3")[1]; r != "1" {
		t.Fatalf("post-error GET -> %q, want 1", r)
	}
}

// TestMultiOversized checks a batch above MaxBatch is rejected with one
// ERR line, its body is drained so the connection stays in frame, and a
// batch beyond the drain bound drops the connection instead.
func TestMultiOversized(t *testing.T) {
	_, _, addr := startServerCfg(t, 2, 4, 0)
	cl := dialClient(t, addr)

	// 5 > MaxBatch=4: rejected, body consumed, nothing executed.
	cl.send(t, "MULTI 5", "SET 1", "SET 2", "SET 3", "SET 4", "SET 5")
	if got := cl.read(t, 1)[0]; !strings.HasPrefix(got, "ERR multi: batch of 5 exceeds max 4") {
		t.Fatalf("oversized -> %q", got)
	}
	// In frame: the next command is parsed as a command, not as body.
	if r := cl.roundTrip(t, "GET 1")[0]; r != "0" {
		t.Fatalf("GET 1 after rejected batch -> %q, want 0 (batch must not execute)", r)
	}

	// Beyond MaxBatch×drain-factor the server refuses to stream the body
	// and drops the connection after the ERR line.
	cl2 := dialClient(t, addr)
	cl2.send(t, "MULTI 1000")
	if got := cl2.read(t, 1)[0]; !strings.HasPrefix(got, "ERR multi: batch of 1000 exceeds max 4") {
		t.Fatalf("huge batch -> %q", got)
	}
	if _, err := cl2.br.ReadString('\n'); err == nil {
		t.Fatalf("connection survived an undrainable batch")
	}
}

// TestMultiBadBody checks a body line that fails to parse rejects the
// whole batch — no partial execution — while the remaining body is
// drained and the connection survives.
func TestMultiBadBody(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	cl.send(t, "MULTI 3", "SET 20", "LEN", "SET 21")
	if got := cl.read(t, 1)[0]; !strings.HasPrefix(got, "ERR multi: op 1:") {
		t.Fatalf("bad body -> %q", got)
	}
	// Neither the op before nor after the bad line executed.
	got := cl.roundTrip(t, "GET 20", "GET 21")
	if got[0] != "0" || got[1] != "0" {
		t.Fatalf("after rejected batch GET 20/21 -> %v, want all 0", got)
	}
}

// TestMultiInterleaved pipelines MULTI frames between plain verbs in one
// burst and checks the replies come back in request order.
func TestMultiInterleaved(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	cl.send(t,
		"SET 1",
		"MULTI 3", "SET 2", "GET 1", "DEL 1",
		"GET 1",
		"MULTI 2", "SET 3", "GET 2",
		"LEN",
	)
	got := cl.read(t, 8)
	want := []string{"1", "1", "1", "1", "0", "1", "1", "2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reply %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestMultiSharded spans a batch across both shards of a 2-shard server:
// every op still gets its reply in order, and INFO discloses the weaker
// cross-shard contract as multi=per-shard.
func TestMultiSharded(t *testing.T) {
	srv, _, addr := startShardedServer(t, 2, 2)
	if srv.Shards() != 2 {
		t.Fatalf("shards = %d", srv.Shards())
	}
	cl := dialClient(t, addr)

	// Keys 1..8 split across shards by ShardOf; the batch mixes them.
	var ops []string
	for k := 1; k <= 8; k++ {
		ops = append(ops, fmt.Sprintf("SET %d", k))
	}
	for i, r := range cl.multi(t, ops...) {
		if r != "1" {
			t.Fatalf("sharded batch SET %d -> %q", i+1, r)
		}
	}
	got := cl.multi(t, "GET 1", "DEL 2", "GET 2", "SET 2", "DEL 5", "GET 8")
	want := []string{"1", "1", "0", "1", "1", "1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed reply %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if srv.Len() != 7 {
		t.Fatalf("Len = %d, want 7", srv.Len())
	}

	info := cl.roundTrip(t, "INFO")[0]
	for _, wantField := range []string{"multi=per-shard", "maxbatch=", "commits=", "serial=", "aborts="} {
		if !strings.Contains(info, wantField) {
			t.Errorf("sharded INFO %q missing %q", info, wantField)
		}
	}
}

// TestMultiInfoAtomic checks a single-shard server advertises the strong
// contract.
func TestMultiInfoAtomic(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	info := cl.roundTrip(t, "INFO")[0]
	if !strings.Contains(info, "multi=atomic") {
		t.Fatalf("single-shard INFO %q missing multi=atomic", info)
	}
}

// TestMultiAutoBatch checks transparent coalescing is invisible at the
// protocol level: a server with AutoBatch set answers a pipelined burst
// of plain verbs exactly like an unbatched one, including interleaved
// non-key verbs and malformed lines, and the memory books still balance.
func TestMultiAutoBatch(t *testing.T) {
	srv, set, addr := startServerCfg(t, 2, 0, 4)
	mem := set.(sets.MemoryReporter)
	baseline := mem.LiveNodes()
	cl := dialClient(t, addr)

	const n = 50
	var reqs, want []string
	for k := 1; k <= n; k++ {
		reqs = append(reqs, fmt.Sprintf("SET %d", k))
		want = append(want, "1")
	}
	reqs = append(reqs, "LEN", "SET zero")
	want = append(want, fmt.Sprint(n), "ERR bad key \"zero\"")
	for k := 1; k <= n; k++ {
		reqs = append(reqs, fmt.Sprintf("DEL %d", k))
		want = append(want, "1")
	}
	got := cl.roundTrip(t, reqs...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("auto-batched reply %d (%q) = %q, want %q", i, reqs[i], got[i], want[i])
		}
	}
	if live := mem.LiveNodes(); live != baseline {
		t.Fatalf("live nodes after auto-batched storm = %d, want baseline %d", live, baseline)
	}
	if srv.Len() != 0 {
		t.Fatalf("Len = %d, want 0", srv.Len())
	}
}
