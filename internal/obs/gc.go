package obs

import (
	"math"
	"runtime/metrics"
)

// GC panel. The paper's repro is about *precise* reclamation — the arena
// keeps exact per-node books — so any Go GC activity on the serving path
// is measurement contamination, not background noise (DESIGN.md §15). The
// zero-allocation wire codec drives the steady state to no heap churn;
// this panel is the witness: a synthetic "runtime-gc" domain backed by
// runtime/metrics, appended to every Registry snapshot. Benchmark runs
// read it before and after the measured window, and the deltas
// (heap_allocs_objects → allocs_per_op, gc_cycles) land in bench cells.

// gcMetricNames are the runtime/metrics samples the panel reads. The
// pause histogram moved names in Go 1.22; readGC probes for whichever
// spelling this toolchain serves.
const (
	gcCyclesMetric  = "/gc/cycles/total:gc-cycles"
	gcAllocsObjects = "/gc/heap/allocs:objects"
	gcAllocsBytes   = "/gc/heap/allocs:bytes"
	gcPausesMetric  = "/sched/pauses/total/gc:seconds"
	gcPausesLegacy  = "/gc/pauses:seconds"
)

// GCStats is the scalar part of the panel, for callers (cmd/hohload's
// bench recording) that want deltas rather than an export surface.
type GCStats struct {
	Cycles       uint64 // completed GC cycles since process start
	AllocObjects uint64 // cumulative heap allocations, objects
	AllocBytes   uint64 // cumulative heap allocations, bytes
}

// ReadGCStats samples the runtime's cumulative GC counters.
func ReadGCStats() GCStats {
	samples := []metrics.Sample{
		{Name: gcCyclesMetric},
		{Name: gcAllocsObjects},
		{Name: gcAllocsBytes},
	}
	metrics.Read(samples)
	var st GCStats
	if samples[0].Value.Kind() == metrics.KindUint64 {
		st.Cycles = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		st.AllocObjects = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		st.AllocBytes = samples[2].Value.Uint64()
	}
	return st
}

// GCSnapshot renders the panel as a synthetic DomainSnapshot named
// "runtime-gc": three cumulative gauges plus the stop-the-world pause
// distribution mapped into the repo's log₂-nanosecond buckets. Mapping
// loses sub-bucket resolution (each runtime bucket's count lands at its
// upper edge, conservatively), but keeps every consumer — /metrics,
// /snapshot, benchjson folding — working off one histogram shape.
func GCSnapshot() DomainSnapshot {
	st := ReadGCStats()
	s := DomainSnapshot{
		Name: "runtime-gc",
		Gauges: []GaugeSnapshot{
			{Name: "gc_cycles", Value: st.Cycles},
			{Name: "heap_allocs_objects", Value: st.AllocObjects},
			{Name: "heap_allocs_bytes", Value: st.AllocBytes},
		},
	}
	if h, ok := readPauseHist(); ok {
		s.Histograms = append(s.Histograms, h)
	}
	return s
}

// readPauseHist reads the GC pause Float64Histogram (seconds) and folds
// it into a HistSnapshot in nanoseconds.
func readPauseHist() (HistSnapshot, bool) {
	samples := []metrics.Sample{{Name: gcPausesMetric}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		samples[0].Name = gcPausesLegacy
		metrics.Read(samples)
		if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
			return HistSnapshot{}, false
		}
	}
	fh := samples[0].Value.Float64Histogram()
	s := HistSnapshot{Name: "gc_pause", Unit: "ns", Buckets: make([]uint64, NumBuckets)}
	for i, c := range fh.Counts {
		if c == 0 {
			continue
		}
		// Bucket i spans [Buckets[i], Buckets[i+1]); charge its count at
		// the upper edge in ns (conservative, like Quantile's estimate).
		edge := fh.Buckets[i+1]
		if math.IsInf(edge, +1) {
			edge = fh.Buckets[i]
		}
		ns := uint64(edge * 1e9)
		b := BucketOf(ns)
		s.Buckets[b] += c
		s.Count += c
		s.Sum += ns * c
		if ns > s.Max {
			s.Max = ns
		}
	}
	last := 0
	for b := range s.Buckets {
		if s.Buckets[b] != 0 {
			last = b + 1
		}
	}
	s.Buckets = s.Buckets[:last]
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s, true
}
