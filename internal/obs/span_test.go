package obs

import (
	"math"
	"testing"
	"time"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestSpanLifecyclePanics pins the lifecycle discipline the torture
// harness relies on: a live span cannot be re-armed (a leaked span), and
// a span cannot finish twice (a double free of a pooled span).
func TestSpanLifecyclePanics(t *testing.T) {
	sp := NewSpan("GET")
	mustPanic(t, "Reset on live span", func() { sp.Reset("GET") })
	sp.Finish()
	mustPanic(t, "second Finish", func() { sp.Finish() })
	mustPanic(t, "Finish on never-started span", func() { new(Span).Finish() })

	// After a clean Finish, Reset re-arms and the cycle repeats.
	sp.Reset("SET")
	if sp.Verb() != "SET" {
		t.Fatalf("Verb after Reset = %q, want SET", sp.Verb())
	}
	sp.Finish()
}

// TestSpanFinishNetsInner checks that Finish subtracts the phases stamped
// by inner layers (attempts, serial, reclaim run *inside* the server's
// whole-op Lease stamp) out of Lease so the breakdown's slices are
// disjoint — and clamps at zero rather than underflowing.
func TestSpanFinishNetsInner(t *testing.T) {
	sp := NewSpan("GET")
	sp.Add(SpanLease, 100)
	sp.Add(SpanAttempts, 30)
	sp.Add(SpanSerial, 20)
	sp.Add(SpanReclaim, 10)
	sp.Finish()
	if got := sp.Phase(SpanLease); got != 40 {
		t.Errorf("Lease after netting = %d, want 40", got)
	}

	sp2 := NewSpan("GET")
	sp2.Add(SpanLease, 10)
	sp2.Add(SpanAttempts, 50)
	sp2.Finish()
	if got := sp2.Phase(SpanLease); got != 0 {
		t.Errorf("Lease underflow clamped = %d, want 0", got)
	}
	if got := sp2.Phase(SpanAttempts); got != 50 {
		t.Errorf("Attempts = %d, want 50 (netting must not touch inner phases)", got)
	}
}

// TestSpanBoundedCapture: keys past capacity truncate while the true
// count is kept, owners deduplicate into the bounded list, and cause
// ordinals tally under their stm-mirrored names.
func TestSpanBoundedCapture(t *testing.T) {
	sp := NewSpan("MULTI")
	for k := uint64(1); k <= 10; k++ {
		sp.AddKey(k)
	}
	keys, n := sp.Keys()
	if len(keys) != spanMaxKeys || n != 10 {
		t.Errorf("Keys() = %d retained, %d true; want %d, 10", len(keys), n, spanMaxKeys)
	}

	for i := 0; i < 3; i++ {
		sp.NoteAbort(3, 7) // write-lock, owner 7 each time
	}
	sp.NoteAbort(1, -1) // read-conflict, unknown owner
	for o := 10; o < 20; o++ {
		sp.NoteAbort(2, o) // validation, ten distinct owners
	}
	if got := sp.Aborts(); got != 14 {
		t.Errorf("Aborts() = %d, want 14", got)
	}
	owners := sp.Owners()
	if len(owners) != spanMaxOwners || owners[0] != 7 {
		t.Errorf("Owners() = %v, want %d entries led by 7", owners, spanMaxOwners)
	}
	causes := sp.Causes()
	want := map[string]uint32{"read-conflict": 1, "validation": 10, "write-lock": 3}
	if len(causes) != len(want) {
		t.Fatalf("Causes() = %v, want %v", causes, want)
	}
	for _, c := range causes {
		if want[c.Cause] != c.Count {
			t.Errorf("cause %s = %d, want %d", c.Cause, c.Count, want[c.Cause])
		}
	}

	sp.MarkShard(0)
	sp.MarkShard(2)
	sp.MarkShard(999) // clamps to the top bit rather than corrupting
	if got := sp.Shards(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 63 {
		t.Errorf("Shards() = %v, want [0 2 63]", got)
	}

	sp.Add(SpanWait, 5)
	sp.Add(SpanWrite, 9)
	if got := sp.WorstPhase(); got != SpanWrite {
		t.Errorf("WorstPhase = %v, want write", got)
	}
	sp.Finish()
}

// TestSpanTableBounds: arming outside the table (bad tid, nil domain,
// domain built without Threads) is a no-op, not a panic — unwired layers
// must cost one branch.
func TestSpanTableBounds(t *testing.T) {
	var nilDom *Domain
	nilDom.SetSpan(0, nil)
	if nilDom.SpanOf(0) != nil {
		t.Error("nil domain SpanOf != nil")
	}

	d := NewDomain(DomainConfig{Name: "t"}) // Threads unset: no span table
	sp := NewSpan("GET")
	d.SetSpan(0, sp)
	if d.SpanOf(0) != nil {
		t.Error("span table absent but SpanOf returned a span")
	}

	d2 := NewDomain(DomainConfig{Name: "t2", Threads: 2})
	d2.SetSpan(-1, sp)
	d2.SetSpan(2, sp)
	if d2.SpanOf(-1) != nil || d2.SpanOf(2) != nil {
		t.Error("out-of-range tid stored a span")
	}
	d2.SetSpan(1, sp)
	if d2.SpanOf(1) != sp {
		t.Error("in-range span not returned")
	}
	d2.SetSpan(1, nil)
	if d2.SpanOf(1) != nil {
		t.Error("cleared span still returned")
	}
	sp.Finish()
}

// slowSpan fabricates a finished span with a controlled total — internal
// tests drive the slowlog's value-based admission deterministically
// instead of sleeping real wall-clock durations.
func slowSpan(verb string, totalNs uint64) *Span {
	return &Span{verb: verb, totalNs: totalNs, finished: true}
}

// TestSlowlogAdmission: the log keeps the N slowest of a window sorted
// slowest-first, and once full the Nth-slowest total becomes the atomic
// admission floor that rejects faster requests without the mutex.
func TestSlowlogAdmission(t *testing.T) {
	s := NewSlowlog(3, time.Hour)
	for _, total := range []uint64{10, 30, 20, 40, 5} {
		s.Observe(slowSpan("GET", total))
	}
	got := s.Entries(0)
	if len(got) != 3 || got[0].TotalNs != 40 || got[1].TotalNs != 30 || got[2].TotalNs != 20 {
		t.Fatalf("Entries = %+v, want totals [40 30 20]", got)
	}
	if f := s.floor.v.Load(); f != 20 {
		t.Errorf("admission floor = %d, want 20", f)
	}
	s.Observe(slowSpan("GET", 15)) // below the floor: rejected on the fast path
	if n := len(s.Entries(0)); n != 3 {
		t.Errorf("below-floor observe changed the window: %d entries", n)
	}
	s.Observe(slowSpan("GET", 25)) // evicts the 20
	got = s.Entries(2)
	if len(got) != 2 || got[0].TotalNs != 40 || got[1].TotalNs != 30 {
		t.Errorf("Entries(2) = %+v, want totals [40 30]", got)
	}
	if f := s.floor.v.Load(); f != 25 {
		t.Errorf("floor after eviction = %d, want 25", f)
	}
}

// TestSlowlogRotation: an aged-out window moves to prev (a fresh rotation
// never serves an empty log), and two stale windows clear prev too.
func TestSlowlogRotation(t *testing.T) {
	s := NewSlowlog(4, time.Minute)
	s.Observe(slowSpan("GET", 100))
	s.mu.Lock()
	s.curStart = time.Now().Add(-90 * time.Second) // one window stale
	s.mu.Unlock()
	s.Observe(slowSpan("SET", 50))

	got := s.Entries(0)
	if len(got) != 2 || got[0].TotalNs != 100 || got[1].TotalNs != 50 {
		t.Fatalf("after rotation Entries = %+v, want old 100 in prev + new 50 in cur", got)
	}
	if f := s.floor.v.Load(); f != 0 {
		t.Errorf("floor after rotation = %d, want 0 (window restarts empty)", f)
	}

	s.mu.Lock()
	s.curStart = time.Now().Add(-3 * time.Minute) // two windows stale
	s.mu.Unlock()
	if got := s.Entries(0); len(got) != 0 {
		t.Errorf("two stale windows still served %d entries", len(got))
	}
}

// TestSlowlogEntrySnapshot: the entry freezes the span's breakdown and
// attribution at capture time.
func TestSlowlogEntrySnapshot(t *testing.T) {
	sp := NewSpan("MULTI")
	sp.AddKey(7)
	sp.AddKey(9)
	sp.MarkShard(1)
	sp.Add(SpanWait, 400)
	sp.Add(SpanLease, 100)
	sp.NoteAttempt(false)
	sp.NoteAttempt(true)
	sp.NoteAbort(3, 2)
	sp.Finish()
	e := entryFromSpan(sp)
	if e.Verb != "MULTI" || e.KeyN != 2 || len(e.Keys) != 2 || e.Keys[1] != 9 {
		t.Errorf("entry identity = %+v", e)
	}
	if e.WaitNs != 400 || e.WorstPhase != "wait" {
		t.Errorf("entry breakdown: wait=%d worst=%s, want 400/wait", e.WaitNs, e.WorstPhase)
	}
	if e.Attempts != 2 || e.SerialTxs != 1 {
		t.Errorf("entry attempts = %d/%d, want 2/1", e.Attempts, e.SerialTxs)
	}
	if len(e.Owners) != 1 || e.Owners[0] != 2 || len(e.Aborts) != 1 || e.Aborts[0].Cause != "write-lock" {
		t.Errorf("entry attribution = owners %v aborts %v", e.Owners, e.Aborts)
	}
}

// TestTopKSpaceSaving pins the space-saving sketch's semantics: an
// untracked key evicts the current minimum and inherits its count as an
// error bound, the guarantee true ∈ [Count−Err, Count] holds, and a key
// whose true weight exceeds N/k is always retained.
func TestTopKSpaceSaving(t *testing.T) {
	k := NewTopK(2)
	k.Add(1, 3)
	k.Add(2, 2)
	k.Add(3, 1) // evicts key 2 (min, count 2): key 3 reports 3 with err 2
	items := k.Items()
	if len(items) != 2 {
		t.Fatalf("Items = %+v, want 2 entries", items)
	}
	if items[0].Key != 1 || items[0].Count != 3 || items[0].Err != 0 {
		t.Errorf("retained key = %+v, want key 1 count 3 err 0", items[0])
	}
	if items[1].Key != 3 || items[1].Count != 3 || items[1].Err != 2 {
		t.Errorf("evictor = %+v, want key 3 count 3 err 2", items[1])
	}
	// True count of key 3 is 1: within [Count-Err, Count] = [1, 3].
	if lo := items[1].Count - items[1].Err; lo > 1 || items[1].Count < 1 {
		t.Errorf("error-bound guarantee broken: true 1 outside [%d, %d]", lo, items[1].Count)
	}

	// Heavy hitter: key 1's true weight (13 of N=19) far exceeds N/k; it
	// must still be present — and ranked first — after churn.
	for i := uint64(10); i < 20; i++ {
		k.Add(i, 1)
	}
	k.Add(1, 10)
	items = k.Items()
	if items[0].Key != 1 {
		t.Errorf("heavy hitter evicted: %+v", items)
	}
}

// TestRollupHot: per-shard sketches merge by summing counts and error
// bounds per key, sorted like a single sketch.
func TestRollupHot(t *testing.T) {
	a := NewHotKeys(4)
	b := NewHotKeys(4)
	a.Aborts.Add(1, 5)
	a.Latency.Add(1, 100)
	b.Aborts.Add(2, 9)
	b.Latency.Add(2, 50)
	r := RollupHot([]*HotKeys{a, nil, b})
	if r.Shard != -1 {
		t.Errorf("rollup shard = %d, want -1", r.Shard)
	}
	if len(r.ByAborts) != 2 || r.ByAborts[0].Key != 2 || r.ByAborts[0].Count != 9 {
		t.Errorf("rollup ByAborts = %+v, want key 2 (9) first", r.ByAborts)
	}
	if len(r.ByLatency) != 2 || r.ByLatency[0].Key != 1 || r.ByLatency[0].Count != 100 {
		t.Errorf("rollup ByLatency = %+v, want key 1 (100) first", r.ByLatency)
	}
}

// TestHistSnapshotEdgeCases: the quantile/mean paths that used to be able
// to divide by zero or feed NaN into a float→uint64 conversion.
func TestHistSnapshotEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Quantile(math.NaN()) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
	if m := empty.Mean(); m != 0 || math.IsNaN(m) {
		t.Errorf("empty snapshot Mean = %v, want 0", m)
	}

	h := NewHistogram("t", "ns")
	h.Record(5)
	h.Record(100)
	s := h.Snapshot()
	min := s.Quantile(0.01)
	for _, q := range []float64{0, -1, math.NaN()} {
		if got := s.Quantile(q); got != min {
			t.Errorf("Quantile(%v) = %d, want minimum rank %d", q, got, min)
		}
	}
	for _, q := range []float64{1, 2, math.Inf(1)} {
		if got := s.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %d, want recorded max 100", q, got)
		}
	}
	if m := s.Mean(); m != 52.5 {
		t.Errorf("Mean = %v, want 52.5 (exact, not bucketed)", m)
	}

	// Single-bucket population: every quantile lands in that bucket, and
	// the top bucket reports the true max rather than its 2^k edge.
	h1 := NewHistogram("t1", "ns")
	for i := 0; i < 10; i++ {
		h1.Record(70) // bucket (64, 128]
	}
	s1 := h1.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s1.Quantile(q); got != 70 {
			t.Errorf("single-bucket Quantile(%v) = %d, want true max 70", q, got)
		}
	}
}

// TestServeProbeHistograms: the probe's per-verb histograms are the
// domain-registered serve_*_ns instruments (recording through the probe
// is visible in the domain snapshot under the canonical names), and
// repeated probe construction returns the same instruments rather than
// forking the counts.
func TestServeProbeHistograms(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "srv", Threads: 2})
	p := d.ServeProbe()
	p.GetNs.RecordAt(0, 100)
	p.SetNs.RecordAt(1, 200)
	p.SetNs.RecordAt(0, 300)
	p.DelNs.Record(400)
	p.AscendNs.Record(500)

	want := map[string]uint64{
		HistServeGetNs:    1,
		HistServeSetNs:    2,
		HistServeDelNs:    1,
		HistServeAscendNs: 1,
		HistServeBatchNs:  0,
	}
	snap := d.Snapshot()
	seen := map[string]uint64{}
	for _, h := range snap.Histograms {
		seen[h.Name] = h.Count
	}
	for name, count := range want {
		got, ok := seen[name]
		if !ok {
			t.Errorf("domain snapshot missing %s", name)
			continue
		}
		if got != count {
			t.Errorf("%s count = %d, want %d", name, got, count)
		}
	}

	p2 := d.ServeProbe()
	if p2.GetNs != p.GetNs {
		t.Error("second ServeProbe forked a new serve_get_ns histogram")
	}
	p2.GetNs.Record(1)
	if got := p.GetNs.Snapshot().Count; got != 2 {
		t.Errorf("shared histogram count = %d, want 2", got)
	}
}
