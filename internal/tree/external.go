package tree

import (
	"fmt"

	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// External is the unbalanced external binary search tree: keys live in
// leaves, internal nodes are binary routers (left subtree < key ≤ right
// subtree). Initialization follows the standard sentinel arrangement (as
// in Natarajan–Mittal): a root router and an inner sentinel router with
// sentinel leaves, so every real leaf has a real router parent and a
// grandparent, and updates never touch the sentinels.
//
// Insert replaces a leaf with a (router, old leaf, new leaf) triple;
// Remove deletes a leaf and its parent router, promoting the sibling.
// Because removal is the only operation that takes nodes out of the tree
// and it removes exactly {leaf, parent router}, those two are the only
// nodes a remover must revoke — the paper's Figure 7 notes the absence of
// multi-revokes is why even the strict schemes fare better here than in
// the internal tree.
type External struct {
	*base
	root arena.Handle
}

var _ sets.Set = (*External)(nil)
var _ sets.MemoryReporter = (*External)(nil)

// NewExternal constructs an external-tree set.
func NewExternal(cfg Config) *External {
	cfg = cfg.withDefaults()
	b := newBase(cfg)
	t := &External{base: b}
	l0 := b.initNode(sent0, arena.Nil, arena.Nil)
	l1 := b.initNode(sent1, arena.Nil, arena.Nil)
	l2 := b.initNode(sent2, arena.Nil, arena.Nil)
	s := b.initNode(sent1, l0, l1)
	t.root = b.initNode(sent2, s, l2)
	return t
}

// Name implements sets.Set.
func (t *External) Name() string {
	switch t.mode {
	case ModeRR:
		return t.rr.Name()
	case ModeHTM:
		return "HTM"
	case ModeTMHP:
		return "TMHP"
	case ModeTMHE:
		return "TMHE"
	case ModeTMVBR:
		return "TMVBR"
	default:
		return fmt.Sprintf("etree-?%d", t.mode)
	}
}

// applyExt is the hand-over-hand window engine for the external tree.
// onLeaf runs in the terminal window with the reached leaf and its
// ancestor routers: gH (grandparent), pH (parent), with pH the pDir-child
// of gH and the leaf the lDir-child of pH. needsDepth is how many
// ancestors the operation requires (0 lookup, 1 insert, 2 remove); a
// resumed window that reaches the leaf with fewer restarts from the root.
func (t *External) applyExt(tid int, key uint64, needsDepth int,
	onLeaf func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool) bool {

	ts := &t.threads[tid]
	ts.ops++
	var res bool
	for {
		done := false
		t.rt.AtomicT(tid, func(tx *stm.Tx) {
			done = false
			res = false
			win := t.window()
			startH, held := t.windowStart(tx, tid, t.root)
			var budget int
			if held {
				budget = win.Next()
			} else {
				budget = win.First(tx)
			}
			gH, pH := arena.Nil, arena.Nil
			pDir, cDir := 0, 0
			currH := startH
			steps := 0
			for {
				n := t.ar.At(currH)
				if t.loadLink(tx, tid, currH, &n.left).IsNil() {
					// Reached a leaf.
					depth := 0
					if !pH.IsNil() {
						depth = 1
					}
					if !gH.IsNil() {
						depth = 2
					}
					if depth < needsDepth {
						t.dropHold(tx, tid, held)
						return // restart from the root next window
					}
					res = onLeaf(tx, gH, pH, currH, pDir, cDir)
					t.windowTerminal(tx, tid, held)
					done = true
					return
				}
				if steps >= budget {
					t.windowHold(tx, tid, held, currH)
					return
				}
				gH, pDir = pH, cDir
				pH = currH
				if key < t.loadWord(tx, tid, currH, &n.key) {
					currH = t.loadLink(tx, tid, currH, &n.left)
					cDir = 0
				} else {
					currH = t.loadLink(tx, tid, currH, &n.right)
					cDir = 1
				}
				if currH.IsNil() {
					// A router's children are never Nil; only a poisoned
					// link defuses to Nil. This attempt is doomed — drop
					// the hold and retry from the root.
					t.dropHold(tx, tid, held)
					return
				}
				steps++
			}
		})
		if done {
			return res
		}
	}
}

// Lookup implements sets.Set.
func (t *External) Lookup(tid int, key uint64) bool {
	return t.applyExt(tid, key, 0,
		func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool {
			return t.loadWord(tx, tid, leafH, &t.ar.At(leafH).key) == key
		},
	)
}

// Insert implements sets.Set.
func (t *External) Insert(tid int, key uint64) bool {
	if key > MaxKey {
		panic("tree: key out of range")
	}
	return t.applyExt(tid, key, 1,
		func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool {
			leafKey := t.loadWord(tx, tid, leafH, &t.ar.At(leafH).key)
			if leafKey == key {
				return false
			}
			newLeaf := t.allocNode(tx, tid, key, arena.Nil, arena.Nil)
			var router arena.Handle
			if key < leafKey {
				router = t.allocNode(tx, tid, leafKey, newLeaf, leafH)
			} else {
				router = t.allocNode(tx, tid, key, leafH, newLeaf)
			}
			child(t.ar.At(pH), lDir).Store(tx, uint64(router))
			return true
		},
	)
}

// Remove implements sets.Set: it unlinks the leaf and its parent router,
// promoting the sibling subtree to the grandparent.
func (t *External) Remove(tid int, key uint64) bool {
	return t.applyExt(tid, key, 2,
		func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool {
			if t.loadWord(tx, tid, leafH, &t.ar.At(leafH).key) != key {
				return false
			}
			sibling := uint64(t.loadLink(tx, tid, pH, child(t.ar.At(pH), 1-lDir)))
			child(t.ar.At(gH), pDir).Store(tx, sibling)
			t.reclaimNode(tx, tid, pH)
			t.reclaimNode(tx, tid, leafH)
			return true
		},
	)
}

// Snapshot implements sets.Set (quiescence required); sentinel leaves are
// excluded.
func (t *External) Snapshot() []uint64 {
	var out []uint64
	var walk func(h arena.Handle)
	walk = func(h arena.Handle) {
		if h.IsNil() {
			return
		}
		n := t.ar.At(h)
		l := arena.Handle(n.left.Raw())
		if l.IsNil() {
			if k := n.key.Raw(); k <= MaxKey {
				out = append(out, k)
			}
			return
		}
		walk(l)
		walk(arena.Handle(n.right.Raw()))
	}
	walk(t.root)
	return out
}

// ValidateRouting checks that every leaf is reachable under the routing
// invariant and every router has two children (test helper). Intervals are
// inclusive: a leaf under a router with key k satisfies key < k on the
// left and key >= k on the right.
func (t *External) ValidateRouting() bool {
	ok := true
	var walk func(h arena.Handle, lo, hi uint64)
	walk = func(h arena.Handle, lo, hi uint64) {
		if !ok || h.IsNil() {
			return
		}
		n := t.ar.At(h)
		k := n.key.Raw()
		l := arena.Handle(n.left.Raw())
		r := arena.Handle(n.right.Raw())
		if l.IsNil() {
			if !r.IsNil() || k < lo || k > hi {
				ok = false
			}
			return
		}
		if r.IsNil() || k < lo || k > hi {
			ok = false // router with one child or out-of-interval key
			return
		}
		walk(l, lo, k-1)
		walk(r, k, hi)
	}
	walk(t.root, 0, ^uint64(0))
	return ok
}
