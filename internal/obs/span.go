package obs

import (
	"time"
)

// SpanPhase indexes one slice of a request's phase breakdown. The phases
// partition where a slow request's time went: queued for a worker slot
// (Wait), executing the set operation outside the transaction machinery
// (Lease — navigation, allocation, reply marshalling inside the op),
// inside speculative transaction attempts (Attempts), inside the serial
// fallback (Serial), amortizing deferred reclamation scans (Reclaim), and
// writing the reply (Write). Phases are stamped at different layers — the
// lease pool, the server loop, the stm attempt loop, the reclamation
// schemes — which is the point: one Span ties them back to one request.
type SpanPhase uint8

const (
	SpanWait     SpanPhase = iota // queued in the lease pool for a worker slot
	SpanLease                     // holding the slot, outside tx attempts
	SpanAttempts                  // speculative transaction attempts
	SpanSerial                    // serial-fallback attempts (exclusive lock held)
	SpanReclaim                   // deferred-reclamation scan/drain amortization
	SpanWrite                     // reply marshalling and buffered write
	NumSpanPhases
)

// String returns the phase's snake_case label (the slowlog JSON field
// prefix: "wait" pairs with "wait_ns").
func (p SpanPhase) String() string {
	switch p {
	case SpanWait:
		return "wait"
	case SpanLease:
		return "lease"
	case SpanAttempts:
		return "attempts"
	case SpanSerial:
		return "serial"
	case SpanReclaim:
		return "reclaim"
	case SpanWrite:
		return "write"
	default:
		return "unknown"
	}
}

// Span capacity bounds. A span is a fixed-size value so tracing every
// request allocates nothing after the span itself: key and owner lists
// truncate (the true counts are kept) rather than grow.
const (
	spanMaxKeys   = 8 // keys retained per request (MULTI can exceed this)
	spanMaxOwners = 4 // distinct abort-owner tids retained
	spanMaxCauses = 8 // abort-cause ordinals counted (stm has 6 today)
)

// Span is the request-scoped trace record: one per wire request, created
// when the request line is parsed and finished after its reply is
// written. All stamping methods are called from the connection's own
// goroutine (the lease discipline guarantees the request executes there
// end to end), so the fields need no synchronization; only Finish hands
// the result to shared structures (slowlog, hot-key sketches).
//
// Spans bypass the sampling gate by design — the slowlog exists to catch
// outliers, and an outlier sampled away is a forensics hole — so every
// stamping site must stay allocation-free and O(1).
type Span struct {
	verb  string
	start time.Time

	keys   [spanMaxKeys]uint64
	nkeys  int // true key count; may exceed spanMaxKeys
	shards uint64

	phases   [NumSpanPhases]uint64
	attempts uint32 // transaction attempts, speculative + serial
	serial   uint32 // serial-fallback attempts among them
	causes   [spanMaxCauses]uint32
	owners   [spanMaxOwners]int32
	nowners  int

	totalNs  uint64
	finished bool
	live     bool // guards double-finish / reset-while-armed
}

// NewSpan creates a running span for one request.
func NewSpan(verb string) *Span {
	sp := &Span{}
	sp.Reset(verb)
	return sp
}

// Reset re-arms a finished (or fresh) span for a new request and restarts
// its clock. Resetting a live span panics: a pooled span that comes back
// unfinished was leaked by its request path, and the torture harness runs
// with spans armed precisely to make that path panic under -race.
func (sp *Span) Reset(verb string) {
	if sp.live {
		panic("obs: Span reset while still live (request path leaked a span)")
	}
	*sp = Span{verb: verb, start: time.Now(), live: true}
}

// Verb returns the protocol verb the span was created for.
func (sp *Span) Verb() string { return sp.verb }

// Start returns the span's creation time.
func (sp *Span) Start() time.Time { return sp.start }

// AddKey records a key the request touched (truncating past capacity; the
// true count is kept).
func (sp *Span) AddKey(k uint64) {
	if sp.nkeys < spanMaxKeys {
		sp.keys[sp.nkeys] = k
	}
	sp.nkeys++
}

// Keys returns the retained keys and the true key count.
func (sp *Span) Keys() ([]uint64, int) {
	n := sp.nkeys
	if n > spanMaxKeys {
		n = spanMaxKeys
	}
	return sp.keys[:n], sp.nkeys
}

// MarkShard records that the request touched shard i (i ≥ 64 collapses
// onto the top bit — shard counts that large are out of scope).
func (sp *Span) MarkShard(i int) {
	if i < 0 {
		return
	}
	if i > 63 {
		i = 63
	}
	sp.shards |= 1 << uint(i)
}

// Shards returns the touched shard indexes, ascending.
func (sp *Span) Shards() []int {
	if sp.shards == 0 {
		return nil
	}
	out := make([]int, 0, 4)
	for i := 0; i < 64; i++ {
		if sp.shards&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Add accumulates ns into phase p. Nil-safe so stamping sites can skip
// their own nil checks when convenient.
func (sp *Span) Add(p SpanPhase, ns uint64) {
	if sp == nil {
		return
	}
	sp.phases[p] += ns
}

// Phase returns the accumulated time in p.
func (sp *Span) Phase(p SpanPhase) uint64 { return sp.phases[p] }

// NoteAttempt counts one transaction attempt (serial marks the fallback).
func (sp *Span) NoteAttempt(serial bool) {
	if sp == nil {
		return
	}
	sp.attempts++
	if serial {
		sp.serial++
	}
}

// Attempts returns the attempt counts: total transaction attempts and how
// many of them ran serially.
func (sp *Span) Attempts() (total, serial uint32) { return sp.attempts, sp.serial }

// NoteAbort records one aborted attempt: its cause ordinal (stm.AbortCause
// numbering — obs mirrors it without the import, see causeNames) and the
// owning tid the attribution table blamed (-1 = unknown), deduplicated
// into the bounded owner list.
func (sp *Span) NoteAbort(cause uint8, owner int) {
	if sp == nil {
		return
	}
	if cause < spanMaxCauses {
		sp.causes[cause]++
	}
	if owner < 0 {
		return
	}
	for i := 0; i < sp.nowners; i++ {
		if sp.owners[i] == int32(owner) {
			return
		}
	}
	if sp.nowners < spanMaxOwners {
		sp.owners[sp.nowners] = int32(owner)
		sp.nowners++
	}
}

// Aborts returns the total aborted attempts.
func (sp *Span) Aborts() uint64 {
	var n uint64
	for _, c := range sp.causes {
		n += uint64(c)
	}
	return n
}

// CauseCount is one abort cause's tally within a span.
type CauseCount struct {
	Cause string `json:"cause"`
	Count uint32 `json:"count"`
}

// Causes returns the span's non-zero abort-cause tallies in ordinal order.
func (sp *Span) Causes() []CauseCount {
	var out []CauseCount
	for i, c := range sp.causes {
		if c != 0 {
			out = append(out, CauseCount{Cause: causeName(uint8(i)), Count: c})
		}
	}
	return out
}

// Owners returns the distinct abort-owner tids recorded (bounded).
func (sp *Span) Owners() []int32 {
	if sp.nowners == 0 {
		return nil
	}
	return append([]int32(nil), sp.owners[:sp.nowners]...)
}

// WorstPhase returns the phase that accumulated the most time (ties go to
// the earlier phase).
func (sp *Span) WorstPhase() SpanPhase {
	best := SpanPhase(0)
	for p := SpanPhase(1); p < NumSpanPhases; p++ {
		if sp.phases[p] > sp.phases[best] {
			best = p
		}
	}
	return best
}

// TotalNs returns the span's end-to-end time (0 until Finish).
func (sp *Span) TotalNs() uint64 { return sp.totalNs }

// Finish seals the span: it stamps the end-to-end total and nets the
// transaction-machinery phases (attempts/serial/reclaim, stamped by inner
// layers) out of the Lease phase the server stamped around the whole set
// operation, so the breakdown's slices are disjoint. Finishing twice
// panics — with pooled spans a double finish is a double free, and the
// harnesses run with spans armed to catch exactly that.
func (sp *Span) Finish() uint64 {
	if !sp.live || sp.finished {
		panic("obs: Span finished twice (or never started)")
	}
	sp.finished = true
	sp.live = false
	sp.totalNs = uint64(time.Since(sp.start))
	inner := sp.phases[SpanAttempts] + sp.phases[SpanSerial] + sp.phases[SpanReclaim]
	if sp.phases[SpanLease] > inner {
		sp.phases[SpanLease] -= inner
	} else {
		sp.phases[SpanLease] = 0
	}
	return sp.totalNs
}

// SetSpan arms sp as tid's active request span: SpanOf(tid) returns it
// until cleared with SetSpan(tid, nil). The table is written only by the
// goroutine holding tid's worker-slot lease (the same goroutine that runs
// the transactions consulting it), so a plain slot per tid suffices; it
// is nil-safe and bounds-checked so unwired layers cost one branch.
func (d *Domain) SetSpan(tid int, sp *Span) {
	if d == nil || tid < 0 || tid >= len(d.spans) {
		return
	}
	d.spans[tid].sp = sp
}

// SpanOf returns tid's active request span, or nil when tracing is off,
// the domain carries no span table, or no request is in flight on tid.
func (d *Domain) SpanOf(tid int) *Span {
	if d == nil || tid < 0 || tid >= len(d.spans) {
		return nil
	}
	return d.spans[tid].sp
}
