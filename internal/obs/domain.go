package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"hohtx/internal/pad"
)

// sampleShards spreads the sampling counters (power of two).
const sampleShards = 16

// DomainConfig parameterizes NewDomain.
type DomainConfig struct {
	// Name labels the domain in snapshots and metric exports (e.g.
	// "singly/TMHP"). Required for Serve; free-form otherwise.
	Name string
	// Threads sizes the flight recorder's per-thread rings. Zero means
	// recorder events from any tid share one overflow ring.
	Threads int
	// SampleShift sets the initial sampling rate: one in 2^shift events
	// is recorded (0 = every event). Negative disables recording
	// entirely; SetSampleShift changes it at runtime.
	SampleShift int
	// RingEvents is the per-thread flight-recorder capacity in events
	// (default 256).
	RingEvents int
}

// Domain is one observed component's instrument bundle: a sampling gate,
// named histograms, gauges, a flight recorder and an abort-attribution
// table. A data structure instance owns at most one Domain; a nil *Domain
// everywhere means "observability off" at the cost of a nil check.
type Domain struct {
	name  string
	shift atomic.Int32
	ctrs  [sampleShards]struct {
		n atomic.Uint64
		_ pad.Line
	}

	mu     sync.Mutex
	hists  []*Histogram
	gauges []gaugeEntry

	rec  *Recorder
	attr *AttrTable

	// spans is the per-tid request-span table (see span.go): the serving
	// layer arms tid's slot before running an operation, and the stm /
	// reclaim layers consult it to stamp their phases onto the request.
	// Sized by DomainConfig.Threads; empty means SpanOf is always nil.
	// Each slot is padded: set/clear runs on the request hot path.
	spans []paddedSpanSlot

	// slow and hot are the forensic sinks the serving layer attaches (see
	// slowlog.go, topk.go); the registry's /slowlog and /hotkeys handlers
	// read them. Written once at wiring time under mu.
	slow *Slowlog
	hot  []*HotKeys
}

type paddedSpanSlot struct {
	sp *Span
	_  pad.Line
}

type gaugeEntry struct {
	name string
	read func() uint64
}

// NewDomain creates a Domain.
func NewDomain(cfg DomainConfig) *Domain {
	d := &Domain{
		name: cfg.Name,
		rec:  NewRecorder(cfg.Threads, cfg.RingEvents),
		attr: NewAttrTable(),
	}
	if cfg.Threads > 0 {
		d.spans = make([]paddedSpanSlot, cfg.Threads)
	}
	d.shift.Store(int32(cfg.SampleShift))
	return d
}

// Name returns the domain's label.
func (d *Domain) Name() string { return d.name }

// SetSampleShift changes the sampling rate at runtime: one in 2^shift
// events is recorded; negative disables recording.
func (d *Domain) SetSampleShift(shift int) { d.shift.Store(int32(shift)) }

// SampleShift returns the current sampling shift.
func (d *Domain) SampleShift() int { return int(d.shift.Load()) }

// Sampled is the per-event gate every instrumented site consults. With
// sampling disabled (negative shift) the cost is one atomic load and one
// branch — the "disabled cost" the package comment promises. hint is any
// per-thread value (tid, slot hash) used to shard the sampling counters.
func (d *Domain) Sampled(hint uint64) bool {
	s := d.shift.Load()
	if s < 0 {
		return false
	}
	if s == 0 {
		return true
	}
	c := d.ctrs[hint&(sampleShards-1)].n.Add(1)
	return c&(1<<uint(s)-1) == 0
}

// Hist returns the domain's histogram with the given name, creating and
// registering it on first use. unit is a label for export ("ns", "ops").
func (d *Domain) Hist(name, unit string) *Histogram {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range d.hists {
		if h.name == name {
			return h
		}
	}
	h := NewHistogram(name, unit)
	d.hists = append(d.hists, h)
	return h
}

// Gauge registers a named gauge read through f at snapshot/export time.
// Re-registering a name replaces the reader.
func (d *Domain) Gauge(name string, f func() uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.gauges {
		if d.gauges[i].name == name {
			d.gauges[i].read = f
			return
		}
	}
	d.gauges = append(d.gauges, gaugeEntry{name: name, read: f})
}

// Recorder returns the domain's flight recorder.
func (d *Domain) Recorder() *Recorder { return d.rec }

// SetSlowlog attaches the domain's slowlog (the registry's /slowlog
// handler serves every attached one). Nil-safe.
func (d *Domain) SetSlowlog(s *Slowlog) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.slow = s
	d.mu.Unlock()
}

// SlowlogOf returns the attached slowlog, or nil.
func (d *Domain) SlowlogOf() *Slowlog {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.slow
}

// SetHotKeys attaches the per-shard hot-key sketches (index = shard; a
// single-shard server attaches one). Nil-safe.
func (d *Domain) SetHotKeys(hot []*HotKeys) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.hot = hot
	d.mu.Unlock()
}

// HotKeysOf returns the attached per-shard hot-key sketches, or nil.
func (d *Domain) HotKeysOf() []*HotKeys {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hot
}

// Attr returns the domain's abort-attribution table.
func (d *Domain) Attr() *AttrTable { return d.attr }

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// DomainSnapshot is the JSON-marshalable point-in-time state of a Domain
// (this is what obs.Snapshot merges into cmd/benchjson output).
type DomainSnapshot struct {
	Name        string          `json:"name"`
	SampleShift int             `json:"sample_shift"`
	Events      uint64          `json:"events_recorded"`
	Histograms  []HistSnapshot  `json:"histograms"`
	Gauges      []GaugeSnapshot `json:"gauges,omitempty"`
	Aborts      []AttrEdge      `json:"who_aborted_whom,omitempty"`
}

// Hist returns the named histogram snapshot, if present.
func (s DomainSnapshot) Hist(name string) (HistSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnapshot{}, false
}

// Snapshot captures the domain's histograms, gauges and attribution
// edges. Nil-safe: a nil domain yields a zero snapshot.
func (d *Domain) Snapshot() DomainSnapshot {
	if d == nil {
		return DomainSnapshot{}
	}
	d.mu.Lock()
	hists := append([]*Histogram(nil), d.hists...)
	gauges := append([]gaugeEntry(nil), d.gauges...)
	d.mu.Unlock()
	s := DomainSnapshot{
		Name:        d.name,
		SampleShift: int(d.shift.Load()),
		Events:      d.rec.seq.Load(),
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Value: g.read()})
	}
	s.Aborts = d.attr.Edges()
	return s
}

// DumpFlight writes a human-readable postmortem: the tail of the flight
// recorder followed by the top attribution edges. tailEvents ≤ 0 dumps
// everything.
func (d *Domain) DumpFlight(w io.Writer, tailEvents int) {
	if d == nil {
		return
	}
	fmt.Fprintf(w, "flight recorder (%s, sample shift %d):\n", d.name, d.shift.Load())
	d.rec.DumpTail(w, tailEvents)
	fmt.Fprintln(w, "who-aborted-whom:")
	d.attr.DumpEdges(w, 16)
}

// Standard histogram names, shared between the recording sites and the
// consumers that pull percentiles out of snapshots.
const (
	HistCommitNs   = "commit_latency_ns"
	HistBackoffNs  = "backoff_ns"
	HistHoldNs     = "reservation_hold_ns"
	HistReuseOps   = "free_reuse_dist_ops"
	HistReclaimOps = "reclaim_delay_ops"

	// Serving-layer names (internal/serve): how long an Acquire waited
	// for a worker slot, and whole-request service time per protocol
	// verb (parse → set operation → reply written).
	HistLeaseWaitNs = "lease_wait_ns"
	HistServeGetNs  = "serve_get_ns"
	HistServeSetNs  = "serve_set_ns"
	HistServeDelNs  = "serve_del_ns"

	// Batch names (internal/serve): whole-batch service time, executed
	// sub-transaction sizes in ops (after shard routing and capacity
	// splitting), and the number of sub-transactions each wire batch was
	// split into (1 = served whole).
	HistServeBatchNs = "serve_batch_ns"
	HistBatchOps     = "batch_tx_ops"
	HistBatchSplits  = "batch_splits"

	// Scan names: whole-ASCEND service time at the server (parse → merge
	// → END written), and per-scan cursor behavior at the structure —
	// window transactions per scan and how many of them had to
	// re-navigate by key because a concurrent writer revoked the held
	// position. Renavigations are the cursor-vs-writer interference the
	// scan benchmarks measure.
	HistServeAscendNs = "serve_ascend_ns"
	HistAscendWindows = "ascend_windows"
	HistAscendRenavs  = "ascend_renavigations"
)

// TxProbe bundles what the stm runtime records into. Obtained from a
// Domain once at wiring time so the hot path never takes the registry
// lock.
type TxProbe struct {
	D         *Domain
	CommitNs  *Histogram // whole-Atomic latency of committed transactions
	BackoffNs *Histogram // per-backoff delay between attempts
	Rec       *Recorder
	Attr      *AttrTable
}

// TxProbe builds the stm-facing probe.
func (d *Domain) TxProbe() *TxProbe {
	return &TxProbe{
		D:         d,
		CommitNs:  d.Hist(HistCommitNs, "ns"),
		BackoffNs: d.Hist(HistBackoffNs, "ns"),
		Rec:       d.rec,
		Attr:      d.attr,
	}
}

// AllocProbe bundles what the arena records into.
type AllocProbe struct {
	D         *Domain
	ReuseDist *Histogram // free→reuse distance in arena ops
	Rec       *Recorder
}

// AllocProbe builds the arena-facing probe.
func (d *Domain) AllocProbe() *AllocProbe {
	return &AllocProbe{D: d, ReuseDist: d.Hist(HistReuseOps, "ops"), Rec: d.rec}
}

// HoldProbe bundles what the reservation hold-time wrapper records into.
type HoldProbe struct {
	D      *Domain
	HoldNs *Histogram // reservation acquire→release/revoke wall time
}

// HoldProbe builds the core-facing probe.
func (d *Domain) HoldProbe() *HoldProbe {
	return &HoldProbe{D: d, HoldNs: d.Hist(HistHoldNs, "ns")}
}

// ReclaimProbe bundles what the deferred-reclamation schemes record into.
type ReclaimProbe struct {
	D        *Domain
	DelayOps *Histogram // retire→free distance in operation stamps
	Rec      *Recorder
}

// ReclaimProbe builds the reclaim-facing probe.
func (d *Domain) ReclaimProbe() *ReclaimProbe {
	return &ReclaimProbe{D: d, DelayOps: d.Hist(HistReclaimOps, "ops"), Rec: d.rec}
}

// ServeProbe bundles what the network serving layer records into: one
// service-time histogram per mutating/reading protocol verb, plus the
// batch-path histograms (MULTI and auto-batched bursts).
type ServeProbe struct {
	D        *Domain
	GetNs    *Histogram // GET service time
	SetNs    *Histogram // SET service time
	DelNs    *Histogram // DEL service time
	BatchNs  *Histogram // whole-batch service time (all sub-transactions)
	BatchOp  *Histogram // ops per executed sub-transaction
	Splits   *Histogram // sub-transactions per wire batch (1 = unsplit)
	AscendNs *Histogram // whole-ASCEND service time (merge + stream)
}

// ServeProbe builds the server-facing probe.
func (d *Domain) ServeProbe() *ServeProbe {
	return &ServeProbe{
		D:        d,
		GetNs:    d.Hist(HistServeGetNs, "ns"),
		SetNs:    d.Hist(HistServeSetNs, "ns"),
		DelNs:    d.Hist(HistServeDelNs, "ns"),
		BatchNs:  d.Hist(HistServeBatchNs, "ns"),
		BatchOp:  d.Hist(HistBatchOps, "ops"),
		Splits:   d.Hist(HistBatchSplits, "txs"),
		AscendNs: d.Hist(HistServeAscendNs, "ns"),
	}
}
