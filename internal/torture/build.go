package torture

import (
	"fmt"
	"sync"

	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/list"
	"hohtx/internal/lockfree"
	"hohtx/internal/obs"
	"hohtx/internal/reclaim"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
	"hohtx/internal/skiplist"
	"hohtx/internal/tree"
)

// Structure names accepted by Config.Structure.
const (
	StructSingly = "singly" // singly linked list
	StructDoubly = "doubly" // doubly linked list
	StructHash   = "hash"   // bucketed hash set
	StructITree  = "itree"  // internal BST
	StructETree  = "etree"  // external BST
	StructSkip   = "skip"   // skiplist
)

// Structures lists every structure the harness can torture.
func Structures() []string {
	return []string{StructSingly, StructDoubly, StructHash, StructITree, StructETree, StructSkip}
}

// Variants returns the mechanism labels defined for a structure: the six
// reservation kinds, the whole-operation HTM baseline, whichever of the
// deferred-reclamation comparators (TMHP, REF, ER) and lock-free
// baselines (Leak, LFHP) the paper defines for it, plus the extended
// reclamation matrix's TMHE and TMVBR (DESIGN.md §14) wherever the
// structure supports deferred modes.
func Variants(structure string) []string {
	var rr []string
	for _, k := range core.Kinds() {
		rr = append(rr, k.String())
	}
	switch structure {
	case StructSingly:
		return append(rr, "HTM", "TMHP", "TMHE", "TMVBR", "REF", "ER", "Leak", "LFHP")
	case StructDoubly:
		return append(rr, "HTM", "TMHP", "TMHE", "TMVBR")
	case StructHash:
		return append(rr, "HTM", "TMHP", "TMHE", "TMVBR", "REF", "ER")
	case StructITree:
		return append(rr, "HTM")
	case StructETree:
		return append(rr, "HTM", "TMHP", "TMHE", "TMVBR", "Leak")
	case StructSkip:
		return append(rr, "HTM", "TMHE", "TMVBR")
	default:
		return nil
	}
}

// guardCollector gathers use-after-free events reported by the arena so a
// violation fails the run with a reproducible seed instead of panicking
// mid-schedule.
type guardCollector struct {
	mu     sync.Mutex
	events []arena.GuardEvent
}

func (g *guardCollector) sink(ev arena.GuardEvent) {
	g.mu.Lock()
	g.events = append(g.events, ev)
	g.mu.Unlock()
}

func (g *guardCollector) take() []arena.GuardEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.events
}

// instance is a built structure plus the metadata the invariant checks
// need: how many arena nodes one key costs, the sentinel overhead, which
// reclamation discipline applies, and structure-specific validators.
type instance struct {
	set      sets.Set
	guard    *guardCollector // nil when the variant cannot run guarded
	obs      *obs.Domain     // flight recorder; nil for the lock-free baselines
	obsAll   []*obs.Domain   // sharded runs: one domain per shard
	perKey   uint64          // arena nodes per resident key
	baseLive uint64          // sentinel/bootstrap nodes (measured post-build)
	deferred bool            // uses a deferred scheme (TMHP/ER/Leak/LFHP)
	leak     bool            // never frees (Leak/LFLeak-style)
	canScan  bool            // Ascender-capable: the scan oracle engages
	// atomicBatch marks structures whose Apply runs a batch as one
	// transaction per shard (the TM-backed ones); the lock-free baselines
	// document Apply as per-op, so the batch-atomicity pin skips them.
	atomicBatch bool
	rounds      int // Finish rounds needed to drain (2 for hazard schemes)
	// strandBound: after one Finish round the leftovers are bounded by the
	// published-slot count (hazard-pointer schemes: one handle per slot).
	// Hazard Eras is rounds=2 but NOT strand-bound — one stale era
	// reservation covers every retiree whose [birth, del] interval contains
	// it, which is not proportional to the slot count.
	strandBound bool
	reclaim     func() reclaim.Stats
	validate    func() error
}

// domains returns every observability domain the instance carries: the
// per-shard list for sharded runs, the single domain otherwise, nothing
// for the uninstrumented lock-free baselines.
func (inst *instance) domains() []*obs.Domain {
	if len(inst.obsAll) > 0 {
		return inst.obsAll
	}
	if inst.obs != nil {
		return []*obs.Domain{inst.obs}
	}
	return nil
}

func zeroStats() reclaim.Stats { return reclaim.Stats{} }

// build constructs the instance for a run: one structure × variant ×
// policy instance, or — when cfg.Shards > 1 — that many of them behind
// the serve.Sharded routing facade.
func build(cfg Config) (*instance, error) {
	var guard *guardCollector
	if cfg.Guard {
		// One collector for the whole run: in a sharded run every shard's
		// arena reports into the same sink, so a violation anywhere fails
		// the run with the one repro line.
		guard = &guardCollector{}
	}
	var inst *instance
	var err error
	if cfg.Shards <= 1 {
		inst, err = buildOne(cfg, guard, cfg.Structure+"/"+cfg.Variant)
	} else {
		inst, err = buildSharded(cfg, guard)
	}
	if err != nil {
		return nil, err
	}
	inst.canScan = scanCapable(inst.set)
	return inst, nil
}

// scanCapable reports whether the built set supports the Ascender
// reservation cursor: it must implement the interface, and if it exposes
// a CanAscend capability probe (mode-gated structures, sharded facades)
// that must agree too.
func scanCapable(s sets.Set) bool {
	if _, ok := s.(sets.Ascender); !ok {
		return false
	}
	if c, ok := s.(interface{ CanAscend() bool }); ok {
		return c.CanAscend()
	}
	return true
}

// buildOne constructs a single structure × variant × policy instance,
// reporting guard events into the given collector (nil = unguarded) and
// naming its observability domain obsName.
func buildOne(cfg Config, guard *guardCollector, obsName string) (*instance, error) {
	inst := &instance{perKey: 1, rounds: 1, reclaim: zeroStats}
	var sink func(arena.GuardEvent)
	if guard != nil {
		sink = guard.sink
	}

	rrKind, isRR := kindByName(cfg.Variant)

	// Every TM-backed instance carries an always-sampled observability
	// domain so a failed run can dump its flight recorder next to the repro
	// line. The lock-free baselines return before it is attached.
	dom := obs.NewDomain(obs.DomainConfig{
		Name:       obsName,
		Threads:    cfg.Threads,
		RingEvents: 512,
	})

	switch cfg.Structure {
	case StructSingly, StructDoubly, StructHash:
		if cfg.Variant == "Leak" || cfg.Variant == "LFHP" {
			if cfg.Structure != StructSingly {
				return nil, fmt.Errorf("torture: %s is undefined for %s", cfg.Variant, cfg.Structure)
			}
			l := lockfree.NewHarrisList(lockfree.ListConfig{
				Threads:           cfg.Threads,
				UseHazardPointers: cfg.Variant == "LFHP",
				ArenaPolicy:       cfg.Policy,
			})
			inst.set = l
			inst.deferred = true
			inst.leak = cfg.Variant == "Leak"
			if cfg.Variant == "LFHP" {
				inst.rounds = 2
				inst.strandBound = true
			}
			inst.reclaim = l.ReclaimStats
			return measureBase(inst), nil
		}
		lcfg := list.Config{
			Threads:     cfg.Threads,
			Window:      core.Window{W: cfg.Window},
			ArenaPolicy: cfg.Policy,
			Guard:       cfg.Guard,
			GuardSink:   sink,
			Obs:         dom,
		}
		switch cfg.Variant {
		case "HTM":
			lcfg.Mode = list.ModeHTM
		case "TMHP":
			lcfg.Mode = list.ModeTMHP
			inst.deferred = true
			inst.rounds = 2
			inst.strandBound = true
		case "TMHE":
			lcfg.Mode = list.ModeTMHE
			inst.deferred = true
			inst.rounds = 2
		case "TMVBR":
			lcfg.Mode = list.ModeTMVBR
			inst.deferred = true // Flush provably drains, so one round suffices
		case "REF":
			if cfg.Structure == StructDoubly {
				return nil, fmt.Errorf("torture: REF is undefined for %s", cfg.Structure)
			}
			lcfg.Mode = list.ModeREF
		case "ER":
			if cfg.Structure == StructDoubly {
				return nil, fmt.Errorf("torture: ER is undefined for %s", cfg.Structure)
			}
			lcfg.Mode = list.ModeER
			inst.deferred = true
		default:
			if !isRR {
				return nil, fmt.Errorf("torture: unknown variant %q", cfg.Variant)
			}
			lcfg.Mode = list.ModeRR
			lcfg.RRKind = rrKind
		}
		inst.guard = guard
		switch cfg.Structure {
		case StructSingly:
			l := list.New(lcfg)
			inst.set = l
			inst.reclaim = l.ReclaimStats
		case StructDoubly:
			d := list.NewDoubly(lcfg)
			inst.set = d
			inst.reclaim = d.ReclaimStats
			inst.validate = func() error {
				if !d.ValidateLinks() {
					return fmt.Errorf("prev/next link symmetry violated")
				}
				return nil
			}
		case StructHash:
			h := list.NewHashTable(lcfg, cfg.Threads*4)
			inst.set = h
			inst.reclaim = h.ReclaimStats
		}

	case StructITree, StructETree:
		if cfg.Variant == "Leak" {
			if cfg.Structure != StructETree {
				return nil, fmt.Errorf("torture: Leak is undefined for %s", cfg.Structure)
			}
			t := lockfree.NewNMTree(lockfree.NMConfig{Threads: cfg.Threads})
			inst.set = t
			inst.perKey = 2
			inst.deferred = true
			inst.leak = true
			inst.validate = func() error {
				if !t.ValidateRouting() {
					return fmt.Errorf("NM-tree routing invariant violated")
				}
				return nil
			}
			return measureBase(inst), nil
		}
		tcfg := tree.Config{
			Threads:     cfg.Threads,
			Window:      core.Window{W: cfg.Window},
			ArenaPolicy: cfg.Policy,
			Guard:       cfg.Guard,
			GuardSink:   sink,
			Obs:         dom,
		}
		switch cfg.Variant {
		case "HTM":
			tcfg.Mode = tree.ModeHTM
		case "TMHP":
			if cfg.Structure == StructITree {
				return nil, fmt.Errorf("torture: TMHP is undefined for %s", cfg.Structure)
			}
			tcfg.Mode = tree.ModeTMHP
			inst.deferred = true
			inst.rounds = 2
			inst.strandBound = true
		case "TMHE":
			if cfg.Structure == StructITree {
				return nil, fmt.Errorf("torture: TMHE is undefined for %s", cfg.Structure)
			}
			tcfg.Mode = tree.ModeTMHE
			inst.deferred = true
			inst.rounds = 2
		case "TMVBR":
			if cfg.Structure == StructITree {
				return nil, fmt.Errorf("torture: TMVBR is undefined for %s", cfg.Structure)
			}
			tcfg.Mode = tree.ModeTMVBR
			inst.deferred = true
		default:
			if !isRR {
				return nil, fmt.Errorf("torture: unknown variant %q", cfg.Variant)
			}
			tcfg.Mode = tree.ModeRR
			tcfg.RRKind = rrKind
		}
		inst.guard = guard
		if cfg.Structure == StructITree {
			t := tree.NewInternal(tcfg)
			inst.set = t
			inst.reclaim = t.ReclaimStats
			inst.validate = func() error {
				if !t.ValidateBST() {
					return fmt.Errorf("BST ordering invariant violated")
				}
				return nil
			}
		} else {
			t := tree.NewExternal(tcfg)
			inst.set = t
			inst.perKey = 2
			inst.reclaim = t.ReclaimStats
			inst.validate = func() error {
				if !t.ValidateRouting() {
					return fmt.Errorf("external-tree routing invariant violated")
				}
				return nil
			}
		}

	case StructSkip:
		scfg := skiplist.Config{
			Threads:     cfg.Threads,
			Window:      core.Window{W: cfg.Window},
			ArenaPolicy: cfg.Policy,
			Guard:       cfg.Guard,
			GuardSink:   sink,
			Obs:         dom,
		}
		switch cfg.Variant {
		case "HTM":
			scfg.Mode = skiplist.ModeHTM
		case "TMHE":
			scfg.Mode = skiplist.ModeTMHE
			inst.deferred = true
			inst.rounds = 2
		case "TMVBR":
			scfg.Mode = skiplist.ModeTMVBR
			inst.deferred = true
		default:
			if !isRR {
				return nil, fmt.Errorf("torture: unknown variant %q", cfg.Variant)
			}
			scfg.Mode = skiplist.ModeRR
			scfg.RRKind = rrKind
		}
		s := skiplist.New(scfg)
		inst.set = s
		inst.guard = guard
		inst.reclaim = s.ReclaimStats
		inst.validate = func() error {
			if !s.ValidateLevels() {
				return fmt.Errorf("skiplist level invariant violated")
			}
			return nil
		}

	default:
		return nil, fmt.Errorf("torture: unknown structure %q", cfg.Structure)
	}

	inst.obs = dom
	inst.atomicBatch = true // every TM-backed Apply is one transaction
	return measureBase(inst), nil
}

// buildSharded constructs cfg.Shards independent instances and combines
// them behind serve.Sharded. The combined instance's invariant metadata
// aggregates the shards' (summed base nodes and reclamation counters,
// max drain rounds), and its validator descends into each shard: the
// structure-specific checks run per shard, and so does the exact memory
// book — live nodes in shard i must equal shard i's sentinels plus
// perKey × its resident keys, not just in aggregate, because two shards
// leaking in opposite directions would cancel in the sum.
func buildSharded(cfg Config, guard *guardCollector) (*instance, error) {
	subs := make([]*instance, cfg.Shards)
	parts := make([]sets.Set, cfg.Shards)
	for i := range subs {
		si, err := buildOne(cfg, guard, fmt.Sprintf("%s/%s#s%d", cfg.Structure, cfg.Variant, i))
		if err != nil {
			return nil, err
		}
		subs[i] = si
		parts[i] = si.set
	}
	first := subs[0]
	inst := &instance{
		set:         serve.NewSharded(parts),
		guard:       first.guard,
		obs:         first.obs,
		perKey:      first.perKey,
		deferred:    first.deferred,
		leak:        first.leak,
		atomicBatch: first.atomicBatch,
		rounds:      first.rounds,
		strandBound: first.strandBound,
	}
	for _, si := range subs {
		inst.baseLive += si.baseLive
		if si.obs != nil {
			inst.obsAll = append(inst.obsAll, si.obs)
		}
	}
	inst.reclaim = func() reclaim.Stats {
		var out reclaim.Stats
		for _, si := range subs {
			st := si.reclaim()
			out.Retired += st.Retired
			out.Freed += st.Freed
			out.Deferred += st.Deferred
			out.PeakDeferred += st.PeakDeferred // upper bound: peaks need not align
			out.Scans += st.Scans
			out.DelayOpsSum += st.DelayOpsSum
			out.Leftover += st.Leftover
		}
		return out
	}
	inst.validate = func() error {
		for i, si := range subs {
			if si.validate != nil {
				if err := si.validate(); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
			}
			mr, ok := si.set.(sets.MemoryReporter)
			if !ok {
				continue
			}
			live, def := mr.LiveNodes(), mr.DeferredNodes()
			expect := si.baseLive + si.perKey*uint64(len(si.set.Snapshot()))
			switch {
			case !si.deferred:
				if live != expect {
					return fmt.Errorf("shard %d: precise mode: live %d != expected %d", i, live, expect)
				}
				if def != 0 {
					return fmt.Errorf("shard %d: precise mode: %d deferred nodes", i, def)
				}
			case si.leak:
				if live != expect+def {
					return fmt.Errorf("shard %d: leak mode: live %d != %d expected + %d leaked", i, live, expect, def)
				}
			default:
				if def != 0 {
					return fmt.Errorf("shard %d: deferred mode: %d nodes still deferred after full drain", i, def)
				}
				if live != expect {
					return fmt.Errorf("shard %d: deferred mode after drain: live %d != expected %d", i, live, expect)
				}
			}
		}
		return nil
	}
	return inst, nil
}

// measureBase records the freshly built structure's sentinel/bootstrap node
// count, the constant term of the memory-accounting invariant.
func measureBase(inst *instance) *instance {
	if mr, ok := inst.set.(sets.MemoryReporter); ok {
		inst.baseLive = mr.LiveNodes()
	}
	return inst
}

// kindByName resolves a reservation-kind label.
func kindByName(name string) (core.Kind, bool) {
	for _, k := range core.Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
