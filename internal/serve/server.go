package serve

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/obs"
	"hohtx/internal/sets"
)

// drainGrace is how long a draining server lets connections finish the
// pipeline already in flight before their reads time out.
const drainGrace = 250 * time.Millisecond

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Set is the structure being served.
	Set sets.Set
	// Pool multiplexes connections onto the set's worker slots. Required.
	Pool *Pool
	// MaxKey bounds accepted keys to [1, MaxKey]. Zero defaults to the
	// tree sentinel bound (the tightest across the repo's structures).
	MaxKey uint64
	// Obs, when non-nil, receives per-verb service-time histograms and
	// the live/deferred/connection gauges.
	Obs *obs.Domain
}

// Server speaks the repository's line protocol over a sets.Set:
//
//	GET <key>\n  -> 1\n | 0\n          (membership)
//	SET <key>\n  -> 1\n | 0\n          (1 = inserted, 0 = already present)
//	DEL <key>\n  -> 1\n | 0\n          (1 = removed; memory is already free)
//	LEN\n        -> <n>\n              (keys currently present)
//	INFO\n       -> variant=… slots=… keys=… live=… deferred=… conns=…\n
//	anything else -> ERR <reason>\n    (connection stays open)
//
// Requests pipeline: a client may write any number of lines before
// reading; replies come back in order. Each connection runs one
// goroutine, which leases a worker slot only while buffered requests
// remain — an idle connection holds no slot, so connections can outnumber
// slots by orders of magnitude.
type Server struct {
	set    sets.Set
	pool   *Pool
	maxKey uint64
	dom    *obs.Domain
	probe  *obs.ServeProbe
	mem    sets.MemoryReporter // nil if the set has no memory books

	keys  atomic.Int64 // net successful SET − DEL through this server
	conns atomic.Int64

	mu       sync.Mutex
	open     map[net.Conn]struct{}
	ln       net.Listener
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewServer wires a server over cfg.Set/cfg.Pool.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		set:    cfg.Set,
		pool:   cfg.Pool,
		maxKey: cfg.MaxKey,
		dom:    cfg.Obs,
		open:   make(map[net.Conn]struct{}),
	}
	if s.maxKey == 0 {
		s.maxKey = ^uint64(0) - 3 // tree.MaxKey, the tightest structure bound
	}
	s.mem, _ = cfg.Set.(sets.MemoryReporter)
	if cfg.Obs != nil {
		s.probe = cfg.Obs.ServeProbe()
		cfg.Obs.Gauge("server_keys", func() uint64 { return uint64(s.keys.Load()) })
		cfg.Obs.Gauge("server_conns", func() uint64 { return uint64(s.conns.Load()) })
		if s.mem != nil {
			cfg.Obs.Gauge("live_nodes", s.mem.LiveNodes)
			cfg.Obs.Gauge("deferred_nodes", s.mem.DeferredNodes)
		}
	}
	return s
}

// Len returns the number of keys present (as counted by this server's
// successful SET/DEL balance).
func (s *Server) Len() int64 { return s.keys.Load() }

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		s.open[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Shutdown drains the server: stop accepting, give in-flight pipelines a
// grace period to finish, then wait for every connection goroutine (or
// force-close them when ctx ends first). The pool is closed last, which
// flushes every worker slot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	deadline := time.Now().Add(drainGrace)
	for c := range s.open {
		_ = c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.open {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	s.pool.Close()
	return err
}

// handle runs one connection: read a line, lease a slot (kept across a
// burst of buffered requests), execute, reply.
func (s *Server) handle(c net.Conn) {
	s.conns.Add(1)
	defer func() {
		s.conns.Add(-1)
		s.mu.Lock()
		delete(s.open, c)
		s.mu.Unlock()
		_ = c.Close()
		s.wg.Done()
	}()

	br := bufio.NewReaderSize(c, 4<<10)
	bw := bufio.NewWriterSize(c, 4<<10)
	h := s.pool.Handle()
	slot := -1
	release := func() {
		if slot >= 0 {
			h.Release(slot)
			slot = -1
		}
	}
	defer release()

	for {
		if s.draining.Load() && br.Buffered() == 0 {
			_ = bw.Flush()
			return
		}
		line, err := br.ReadString('\n')
		if err != nil {
			if line == "" {
				return
			}
			// final unterminated request: serve it, then drop the conn
		}
		if slot < 0 {
			var aerr error
			slot, aerr = h.Acquire(context.Background())
			if aerr != nil {
				bw.WriteString("ERR ")
				bw.WriteString(aerr.Error())
				bw.WriteByte('\n')
				_ = bw.Flush()
				return
			}
		}
		s.serveLine(slot, strings.TrimRight(line, "\r\n"), bw)
		if br.Buffered() == 0 {
			// Burst over: give the slot back before blocking on the
			// network, and push the replies out.
			release()
			if ferr := bw.Flush(); ferr != nil || err != nil {
				return
			}
		}
	}
}

// serveLine executes one request line on a leased slot and appends the
// reply to bw.
func (s *Server) serveLine(slot int, line string, bw *bufio.Writer) {
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "GET", "SET", "DEL":
		key, err := s.parseKey(rest)
		if err != nil {
			bw.WriteString("ERR ")
			bw.WriteString(err.Error())
			bw.WriteByte('\n')
			return
		}
		sampled := s.dom != nil && s.dom.Sampled(uint64(slot))
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		var ok bool
		switch verb {
		case "GET":
			ok = s.set.Lookup(slot, key)
		case "SET":
			if ok = s.set.Insert(slot, key); ok {
				s.keys.Add(1)
			}
		default:
			if ok = s.set.Remove(slot, key); ok {
				s.keys.Add(-1)
			}
		}
		if sampled {
			d := uint64(time.Since(t0))
			switch verb {
			case "GET":
				s.probe.GetNs.RecordAt(uint64(slot), d)
			case "SET":
				s.probe.SetNs.RecordAt(uint64(slot), d)
			default:
				s.probe.DelNs.RecordAt(uint64(slot), d)
			}
		}
		if ok {
			bw.WriteString("1\n")
		} else {
			bw.WriteString("0\n")
		}
	case "LEN":
		bw.WriteString(strconv.FormatInt(s.keys.Load(), 10))
		bw.WriteByte('\n')
	case "INFO":
		var live, deferred uint64
		if s.mem != nil {
			live, deferred = s.mem.LiveNodes(), s.mem.DeferredNodes()
		}
		fmt.Fprintf(bw, "variant=%s slots=%d keys=%d live=%d deferred=%d conns=%d\n",
			s.set.Name(), s.pool.Slots(), s.keys.Load(), live, deferred, s.conns.Load())
	case "":
		bw.WriteString("ERR empty command\n")
	default:
		bw.WriteString("ERR unknown command\n")
	}
}

// parseKey validates a decimal key in [1, maxKey].
func (s *Server) parseKey(arg string) (uint64, error) {
	if arg == "" {
		return 0, fmt.Errorf("missing key")
	}
	key, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q", arg)
	}
	if key < 1 || key > s.maxKey {
		return 0, fmt.Errorf("key %d out of range [1, %d]", key, s.maxKey)
	}
	return key, nil
}
