package tree

import (
	"math/rand"
	"sync"
	"testing"

	"hohtx/internal/core"
)

func TestMapBasics(t *testing.T) {
	for _, mode := range []Mode{ModeRR, ModeHTM} {
		m := NewMap(Config{Mode: mode, RRKind: core.KindV, Threads: 1, Window: core.Window{W: 4}})
		t.Run(m.Name(), func(t *testing.T) {
			m.Register(0)
			if _, ok := m.Get(0, 7); ok {
				t.Fatal("get on empty map")
			}
			if prev, existed := m.Put(0, 7, 700); existed || prev != 0 {
				t.Fatalf("first put: (%d,%v)", prev, existed)
			}
			if v, ok := m.Get(0, 7); !ok || v != 700 {
				t.Fatalf("get = (%d,%v)", v, ok)
			}
			if prev, existed := m.Put(0, 7, 701); !existed || prev != 700 {
				t.Fatalf("overwrite: (%d,%v)", prev, existed)
			}
			if v, ok := m.Get(0, 7); !ok || v != 701 {
				t.Fatalf("get after overwrite = (%d,%v)", v, ok)
			}
			if v, ok := m.Delete(0, 7); !ok || v != 701 {
				t.Fatalf("delete = (%d,%v)", v, ok)
			}
			if _, ok := m.Get(0, 7); ok {
				t.Fatal("get after delete")
			}
			if _, ok := m.Delete(0, 7); ok {
				t.Fatal("double delete")
			}
		})
	}
}

func TestMapVsModel(t *testing.T) {
	m := NewMap(Config{Mode: ModeRR, RRKind: core.KindXO, Threads: 1, Window: core.Window{W: 3}})
	m.Register(0)
	rng := rand.New(rand.NewSource(31))
	model := map[uint64]uint64{}
	for i := 0; i < 4000; i++ {
		key := uint64(rng.Intn(128)) + 1
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64() >> 1
			prev, existed := m.Put(0, key, val)
			mv, mok := model[key]
			if existed != mok || (mok && prev != mv) {
				t.Fatalf("op %d: Put(%d) = (%d,%v), model (%d,%v)", i, key, prev, existed, mv, mok)
			}
			model[key] = val
		case 1:
			got, ok := m.Delete(0, key)
			mv, mok := model[key]
			if ok != mok || (mok && got != mv) {
				t.Fatalf("op %d: Delete(%d) = (%d,%v), model (%d,%v)", i, key, got, ok, mv, mok)
			}
			delete(model, key)
		default:
			got, ok := m.Get(0, key)
			mv, mok := model[key]
			if ok != mok || (mok && got != mv) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, key, got, ok, mv, mok)
			}
		}
	}
	keys, vals := m.Entries()
	if len(keys) != len(model) {
		t.Fatalf("entries = %d, model = %d", len(keys), len(model))
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			t.Fatal("entries not sorted")
		}
		if model[k] != vals[i] {
			t.Fatalf("entry %d: val %d, model %d", k, vals[i], model[k])
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("Len = %d", m.Len())
	}
}

// TestMapConcurrentPerKeyMonotonic: writers publish increasing values per
// key; readers must never observe a value going backwards.
func TestMapConcurrentPerKeyMonotonic(t *testing.T) {
	const threads = 4
	const keys = 8
	m := NewMap(Config{Mode: ModeRR, RRKind: core.KindV, Threads: threads, Window: core.Window{W: 4}})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// One writer per key publishes val = round*keys + key (monotonic).
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(tid int) {
			defer writers.Done()
			m.Register(tid)
			for round := uint64(1); round <= 600; round++ {
				for k := uint64(0); k < keys; k++ {
					if int(k)%2 == tid {
						m.Put(tid, k+1, round*keys+k)
					}
				}
			}
		}(w)
	}
	var bad int
	readers.Add(1)
	go func(tid int) {
		defer readers.Done()
		m.Register(tid)
		lastSeen := make([]uint64, keys+1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := uint64(1); k <= keys; k++ {
				if v, ok := m.Get(tid, k); ok {
					if v < lastSeen[k] {
						bad++
						return
					}
					lastSeen[k] = v
				}
			}
		}
	}(2)
	writers.Wait()
	close(stop)
	readers.Wait()
	if bad != 0 {
		t.Fatal("a reader observed a value moving backwards")
	}
}
