package core

import (
	"hohtx/internal/pad"
	"hohtx/internal/stm"
)

// Relaxed implementations (§3.2). Get may return nil even though the
// thread's reference was never revoked — because an unrelated Revoke or
// Reserve collided under the hash — but it must never return a reference
// that *was* revoked. In exchange, Revoke is O(1) (XO, V) or O(A) (SO) and
// Reserve/Release touch little or no shared state.
//
// An important subtlety the paper leaves implicit: the per-thread R_t slot
// must roll back if the enclosing transaction aborts. Under HTM that is
// automatic (R_t is written transactionally). Here R_t is an stm.Word for
// the same reason: if an aborted Reserve left R_t pointing at r while the
// ownership write never committed, a later Get could validate r against
// metadata published by an *older* reservation that hashes to the same
// slot, and return a reference the thread does not actually hold.

// wordSlot is a padded per-thread transactional word.
type wordSlot struct {
	w stm.Word
	_ pad.Line
}

// ownTable is a padded hash-indexed array of transactional words, the
// shared metadata of XO/SO (thread ids + 1; 0 means "no owner", the
// paper's -1) and V (version counters).
type ownTable struct {
	cells []wordSlot
	mask  uint64
}

func newOwnTable(tableBits int) *ownTable {
	n := 1 << tableBits
	return &ownTable{cells: make([]wordSlot, n), mask: uint64(n - 1)}
}

func (t *ownTable) at(ref uint64) *stm.Word {
	return &t.cells[hashRef(ref, t.mask)].w
}

// XO is the exclusive-ownership relaxed scheme (Listing 3): a single table
// of owner ids. Reserving writes the caller's id over whatever was there,
// so at most one thread can hold a reservation on any given hash slot; a
// second Reserve acts like a Revoke of the first (progress, not
// correctness, is affected — §3.2).
type XO struct {
	own *ownTable
	rt  []wordSlot // R_t: per-thread reserved reference
}

// NewXO constructs an RR-XO reservation.
func NewXO(cfg Config) *XO {
	cfg = cfg.withDefaults()
	return &XO{own: newOwnTable(cfg.TableBits), rt: make([]wordSlot, cfg.Threads)}
}

// Register implements Reservation (ids are the tids themselves).
func (x *XO) Register(tid int) {}

// Reserve implements Reservation.
func (x *XO) Reserve(tx *stm.Tx, tid int, ref uint64) {
	x.rt[tid].w.Store(tx, ref)
	x.own.at(ref).Store(tx, uint64(tid)+1)
}

// Release implements Reservation. It touches only thread-local data: the
// ownership table entry is left behind and either reused by this thread's
// next Reserve or overwritten by someone else's.
func (x *XO) Release(tx *stm.Tx, tid int) {
	x.rt[tid].w.Store(tx, 0)
}

// Get implements Reservation.
func (x *XO) Get(tx *stm.Tx, tid int) uint64 {
	r := x.rt[tid].w.Load(tx)
	if r == 0 {
		return 0
	}
	if x.own.at(r).Load(tx) == uint64(tid)+1 {
		return r
	}
	return 0
}

// Revoke implements Reservation with a single constant-time write of
// "no owner".
func (x *XO) Revoke(tx *stm.Tx, ref uint64) {
	x.own.at(ref).Store(tx, 0)
}

// Strict implements Reservation.
func (x *XO) Strict() bool { return false }

// Name implements Reservation.
func (x *XO) Name() string { return KindXO.String() }

// SO is the shared-ownership relaxed scheme: A ownership tables, each
// thread assigned to one, so up to A threads can simultaneously hold a
// reservation on the same hash slot. Revoke writes "no owner" in all A
// tables.
type SO struct {
	tables []*ownTable
	rt     []wordSlot
}

// NewSO constructs an RR-SO reservation with cfg.Assoc tables.
func NewSO(cfg Config) *SO {
	cfg = cfg.withDefaults()
	tables := make([]*ownTable, cfg.Assoc)
	for i := range tables {
		tables[i] = newOwnTable(cfg.TableBits)
	}
	return &SO{tables: tables, rt: make([]wordSlot, cfg.Threads)}
}

func (s *SO) table(tid int) *ownTable { return s.tables[tid%len(s.tables)] }

// Register implements Reservation.
func (s *SO) Register(tid int) {}

// Reserve implements Reservation.
func (s *SO) Reserve(tx *stm.Tx, tid int, ref uint64) {
	s.rt[tid].w.Store(tx, ref)
	s.table(tid).at(ref).Store(tx, uint64(tid)+1)
}

// Release implements Reservation.
func (s *SO) Release(tx *stm.Tx, tid int) {
	s.rt[tid].w.Store(tx, 0)
}

// Get implements Reservation.
func (s *SO) Get(tx *stm.Tx, tid int) uint64 {
	r := s.rt[tid].w.Load(tx)
	if r == 0 {
		return 0
	}
	if s.table(tid).at(r).Load(tx) == uint64(tid)+1 {
		return r
	}
	return 0
}

// Revoke implements Reservation: O(A) writes.
func (s *SO) Revoke(tx *stm.Tx, ref uint64) {
	for _, t := range s.tables {
		t.at(ref).Store(tx, 0)
	}
}

// Strict implements Reservation.
func (s *SO) Strict() bool { return false }

// Name implements Reservation.
func (s *SO) Name() string { return KindSO.String() }

// V is the versioned relaxed scheme (Listing 4): the table holds counters
// that act like STM ownership-record versions. Reserve records the
// counter; Get checks it is unchanged; Revoke increments it. Any number of
// threads can reserve the same reference concurrently, and Reserve writes
// no shared state at all.
type V struct {
	vers *ownTable
	rt   []wordSlot // R_t: reserved reference
	vt   []wordSlot // V_t: counter observed at reserve time
}

// NewV constructs an RR-V reservation.
func NewV(cfg Config) *V {
	cfg = cfg.withDefaults()
	return &V{
		vers: newOwnTable(cfg.TableBits),
		rt:   make([]wordSlot, cfg.Threads),
		vt:   make([]wordSlot, cfg.Threads),
	}
}

// Register implements Reservation.
func (v *V) Register(tid int) {}

// Reserve implements Reservation: it reads (never writes) the shared
// counter, so concurrent Reserves of the same reference do not conflict.
func (v *V) Reserve(tx *stm.Tx, tid int, ref uint64) {
	v.rt[tid].w.Store(tx, ref)
	v.vt[tid].w.Store(tx, v.vers.at(ref).Load(tx))
}

// Release implements Reservation.
func (v *V) Release(tx *stm.Tx, tid int) {
	v.rt[tid].w.Store(tx, 0)
}

// Get implements Reservation.
func (v *V) Get(tx *stm.Tx, tid int) uint64 {
	r := v.rt[tid].w.Load(tx)
	if r == 0 {
		return 0
	}
	if v.vers.at(r).Load(tx) == v.vt[tid].w.Load(tx) {
		return r
	}
	return 0
}

// Revoke implements Reservation by bumping the reference's counter.
func (v *V) Revoke(tx *stm.Tx, ref uint64) {
	c := v.vers.at(ref)
	c.Store(tx, c.Load(tx)+1)
}

// Strict implements Reservation.
func (v *V) Strict() bool { return false }

// Name implements Reservation.
func (v *V) Name() string { return KindV.String() }
