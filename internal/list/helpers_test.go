package list

import "hohtx/internal/stm"

// profileWithCapacity builds the HTM-simulation profile used by the
// capacity-sensitive tests (lists use the paper's 2-attempt fallback).
func profileWithCapacity(c int) stm.Profile {
	return stm.Profile{Capacity: c, MaxAttempts: 2}
}

// capacityCause re-exports the abort cause index for test assertions.
func capacityCause() stm.AbortCause { return stm.CauseCapacity }
