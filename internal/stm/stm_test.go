package stm

import (
	"sync"
	"testing"
)

func newTestRuntime() *Runtime {
	return NewRuntime(Profile{})
}

func TestWordBasics(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	w.Init(7)
	got := Run(rt, func(tx *Tx) uint64 { return w.Load(tx) })
	if got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	rt.Atomic(func(tx *Tx) { w.Store(tx, 42) })
	if w.Raw() != 42 {
		t.Fatalf("Raw = %d, want 42", w.Raw())
	}
}

func TestReadOwnWrites(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	rt.Atomic(func(tx *Tx) {
		w.Store(tx, 5)
		if got := w.Load(tx); got != 5 {
			t.Errorf("read-own-write = %d, want 5", got)
		}
		w.Store(tx, 6)
		if got := w.Load(tx); got != 6 {
			t.Errorf("after second store = %d, want 6", got)
		}
	})
	if w.Raw() != 6 {
		t.Fatalf("committed value = %d, want 6", w.Raw())
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	w.Init(1)
	tries := 0
	rt.Atomic(func(tx *Tx) {
		tries++
		w.Store(tx, 99)
		if tries == 1 {
			tx.Restart()
		}
	})
	if tries != 2 {
		t.Fatalf("tries = %d, want 2", tries)
	}
	if w.Raw() != 99 {
		t.Fatalf("final = %d, want 99", w.Raw())
	}
}

func TestPtrCell(t *testing.T) {
	rt := newTestRuntime()
	type payload struct{ s string }
	var p Ptr[payload]
	if got := Run(rt, func(tx *Tx) *payload { return p.Load(tx) }); got != nil {
		t.Fatalf("zero Ptr loads %v, want nil", got)
	}
	val := &payload{s: "hello"}
	rt.Atomic(func(tx *Tx) {
		p.Store(tx, val)
		if got := p.Load(tx); got != val {
			t.Errorf("read-own-write Ptr = %v, want %v", got, val)
		}
	})
	if p.Raw() != val {
		t.Fatal("Ptr commit lost")
	}
}

func TestOnCommitOnAbort(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	var committed, aborted int
	tries := 0
	rt.Atomic(func(tx *Tx) {
		tries++
		w.Store(tx, uint64(tries))
		tx.OnCommit(func() { committed++ })
		tx.OnAbort(func() { aborted++ })
		if tries < 3 {
			tx.Restart()
		}
	})
	if committed != 1 {
		t.Errorf("commit hooks ran %d times, want 1", committed)
	}
	if aborted != 2 {
		t.Errorf("abort hooks ran %d times, want 2", aborted)
	}
}

// TestCounterSerializability hammers a single transactional counter from
// many goroutines; any lost update means the commit protocol is broken.
func TestCounterSerializability(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rt.Atomic(func(tx *Tx) {
					w.Store(tx, w.Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := w.Raw(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotConsistency maintains the invariant a+b == 100 under
// concurrent transfers and checks that read-only transactions never observe
// a torn state (opacity at the whole-transaction level).
func TestSnapshotConsistency(t *testing.T) {
	rt := newTestRuntime()
	var a, b Word
	a.Init(100)
	const iters = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				amt := uint64(i%3 + 1)
				rt.Atomic(func(tx *Tx) {
					av := a.Load(tx)
					if av >= amt {
						a.Store(tx, av-amt)
						b.Store(tx, b.Load(tx)+amt)
					} else {
						a.Store(tx, av+b.Load(tx))
						b.Store(tx, 0)
					}
				})
			}
		}(uint64(g))
	}

	var violations int
	var rwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum := Run(rt, func(tx *Tx) uint64 {
					return a.Load(tx) + b.Load(tx)
				})
				if sum != 100 {
					violations++
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if violations > 0 {
		t.Fatalf("observed %d torn snapshots (a+b != 100)", violations)
	}
	if got := a.Raw() + b.Raw(); got != 100 {
		t.Fatalf("final sum = %d, want 100", got)
	}
}

// TestWriteSkewPrevented checks full serializability (not just snapshot
// isolation): two transactions that each read both cells and write one must
// not both commit against the same snapshot.
func TestWriteSkewPrevented(t *testing.T) {
	rt := newTestRuntime()
	var x, y Word
	const iters = 3000
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rt.Atomic(func(tx *Tx) {
					// Invariant target: x+y <= 1 given both start 0 and
					// each tx sets its own cell only if the other is 0.
					xv, yv := x.Load(tx), y.Load(tx)
					if id == 0 {
						if yv == 0 {
							x.Store(tx, 1)
						} else {
							x.Store(tx, 0)
						}
					} else {
						if xv == 0 {
							y.Store(tx, 1)
						} else {
							y.Store(tx, 0)
						}
					}
					_ = xv
				})
				if x.Raw() == 1 && y.Raw() == 1 {
					// Racy observation: confirm transactionally.
					bad := Run(rt, func(tx *Tx) bool {
						return x.Load(tx) == 1 && y.Load(tx) == 1
					})
					if bad {
						t.Error("write skew: x == y == 1")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCapacityFallsBackToSerial(t *testing.T) {
	rt := NewRuntime(Profile{Capacity: 8, MaxAttempts: 4})
	words := make([]Word, 64)
	rt.Atomic(func(tx *Tx) {
		for i := range words {
			words[i].Store(tx, uint64(i))
		}
	})
	for i := range words {
		if words[i].Raw() != uint64(i) {
			t.Fatalf("words[%d] = %d", i, words[i].Raw())
		}
	}
	st := rt.Stats()
	if st.Aborts[CauseCapacity] == 0 {
		t.Error("expected at least one capacity abort")
	}
	if st.SerialCommits == 0 {
		t.Error("expected the transaction to commit serially")
	}
}

func TestSerialModeStillIsolated(t *testing.T) {
	// A serial transaction's writes must not be visible to concurrent
	// speculative readers until its commit point.
	rt := NewRuntime(Profile{Capacity: 4, MaxAttempts: 2})
	cells := make([]Word, 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var torn int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			vals := Run(rt, func(tx *Tx) [2]uint64 {
				return [2]uint64{cells[0].Load(tx), cells[15].Load(tx)}
			})
			if vals[0] != vals[1] {
				torn++
				return
			}
		}
	}()
	for round := uint64(1); round <= 500; round++ {
		rt.Atomic(func(tx *Tx) {
			for i := range cells {
				cells[i].Store(tx, round)
			}
		})
	}
	close(stop)
	wg.Wait()
	if torn > 0 {
		t.Fatalf("reader observed %d torn serial commits", torn)
	}
}

func TestStatsAccounting(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	for i := 0; i < 10; i++ {
		rt.Atomic(func(tx *Tx) { w.Store(tx, uint64(i)) })
	}
	st := rt.Stats()
	if st.Commits != 10 {
		t.Fatalf("commits = %d, want 10", st.Commits)
	}
	rt.ResetStats()
	if rt.Stats().Commits != 0 {
		t.Fatal("ResetStats did not zero commits")
	}
}

func TestRun2(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	w.Init(3)
	a, b := Run2(rt, func(tx *Tx) (uint64, bool) {
		v := w.Load(tx)
		return v, v == 3
	})
	if a != 3 || !b {
		t.Fatalf("Run2 = (%d,%v), want (3,true)", a, b)
	}
}

func TestUserPanicPropagates(t *testing.T) {
	rt := newTestRuntime()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("user panic did not propagate")
		}
		// The runtime must remain usable after a propagated panic.
		var w Word
		rt.Atomic(func(tx *Tx) { w.Store(tx, 1) })
		if w.Raw() != 1 {
			t.Fatal("runtime unusable after user panic")
		}
	}()
	rt.Atomic(func(tx *Tx) { panic("boom") })
}

func TestAbortCauseStrings(t *testing.T) {
	for c := CauseNone; c < numCauses; c++ {
		if c.String() == "unknown" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if AbortCause(200).String() != "unknown" {
		t.Error("out-of-range cause should be unknown")
	}
}
