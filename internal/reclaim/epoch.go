package reclaim

import (
	"sync/atomic"
	"time"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
)

// Epochs implements epoch-based deferred reclamation (the family the paper
// groups with RCU [9]: scalable, but with unbounded worst-case delay for an
// unbounded number of items). Threads bracket their data structure
// operations with Enter/Exit; a node retired in epoch e is freed once the
// global epoch reaches e+2, which requires every thread active at
// retirement time to have passed through a quiescent point.
type Epochs struct {
	observer
	global  atomic.Uint64
	_       pad.Line
	threads []epochThread
	stats   []threadStats
	free    FreeFunc
	// advanceEvery makes threads attempt an epoch advance every N
	// retirements, batching frees like an epoch allocator would.
	advanceEvery int
	// Guard, when set, makes Retire panic if the calling thread is not
	// inside an Enter/Exit bracket. An unbracketed retire is a protocol
	// violation: the retiring thread looks quiescent to tryAdvance, so the
	// epoch can advance past the retiree and free it under a concurrent
	// reader. Off by default (release builds pay no assertion cost beyond
	// one predictable branch); torture harnesses switch it on.
	Guard bool
}

// epochRetiree is a retired node stamped with its retirement epoch.
type epochRetiree struct {
	h     arena.Handle
	stamp uint64
	epoch uint64
}

type epochThread struct {
	// epoch is the thread's announced epoch; the low bit is the "active"
	// flag (set while inside an operation).
	epoch atomic.Uint64
	// pending is a FIFO of retired nodes in nondecreasing epoch order;
	// head indexes the first unfreed entry.
	pending      []epochRetiree
	head         int
	sinceAdvance int
	_            pad.Line
}

// NewEpochs creates an epoch domain for threads threads. advanceEvery
// controls how many retirements pass between epoch-advance attempts
// (default DefaultScanThreshold).
func NewEpochs(threads int, advanceEvery int, free FreeFunc) *Epochs {
	if advanceEvery <= 0 {
		advanceEvery = DefaultScanThreshold
	}
	return &Epochs{
		threads:      make([]epochThread, threads),
		stats:        make([]threadStats, threads),
		free:         free,
		advanceEvery: advanceEvery,
	}
}

// Name implements Scheme.
func (e *Epochs) Name() string { return "Epoch" }

// Enter marks the thread active in the current global epoch. Every data
// structure operation must be bracketed by Enter/Exit.
func (e *Epochs) Enter(tid int) {
	g := e.global.Load()
	e.threads[tid].epoch.Store(g<<1 | 1)
}

// Exit marks the thread quiescent.
func (e *Epochs) Exit(tid int) {
	t := &e.threads[tid]
	t.epoch.Store(t.epoch.Load() &^ 1)
}

// Protect is a no-op: epochs protect whole critical sections, not
// individual pointers.
func (e *Epochs) Protect(tid, slot int, h arena.Handle) arena.Handle { return h }

// ClearSlots is a no-op for epochs.
func (e *Epochs) ClearSlots(tid int) {}

// Retire implements Scheme. The caller must be between Enter and Exit.
func (e *Epochs) Retire(tid int, h arena.Handle, stamp uint64) {
	t := &e.threads[tid]
	if e.Guard && t.epoch.Load()&1 == 0 {
		panic("reclaim: Epochs.Retire outside an Enter/Exit bracket; the epoch can advance past this retiree and free it under a concurrent reader")
	}
	g := e.global.Load()
	t.pending = append(t.pending, epochRetiree{h: h, stamp: stamp, epoch: g})
	e.stats[tid].noteRetire()
	e.noteRetireEv(tid, h)
	t.sinceAdvance++
	if t.sinceAdvance >= e.advanceEvery {
		t.sinceAdvance = 0
		e.tryAdvance()
	}
	e.drain(tid, stamp)
}

// Flush implements Scheme: it attempts epoch advances and drains whatever
// becomes reclaimable. Nodes retired in the current or previous epoch
// remain deferred (that is the scheme's inherent imprecision).
func (e *Epochs) Flush(tid int, stamp uint64) {
	for i := 0; i < 3; i++ {
		e.tryAdvance()
	}
	e.drain(tid, stamp)
}

// tryAdvance advances the global epoch if every active thread has observed
// the current one.
func (e *Epochs) tryAdvance() {
	g := e.global.Load()
	for i := range e.threads {
		ep := e.threads[i].epoch.Load()
		if ep&1 == 1 && ep>>1 != g {
			return // someone is still active in an older epoch
		}
	}
	e.global.CompareAndSwap(g, g+1)
}

// drain frees the caller's retired nodes whose epoch is at least two
// behind the global epoch.
func (e *Epochs) drain(tid int, stamp uint64) {
	if sp := e.reclaimSpan(tid); sp != nil {
		t0 := time.Now()
		defer func() { sp.Add(obs.SpanReclaim, uint64(time.Since(t0))) }()
	}
	t := &e.threads[tid]
	g := e.global.Load()
	st := &e.stats[tid]
	freedAny := false
	for t.head < len(t.pending) && t.pending[t.head].epoch+2 <= g {
		r := t.pending[t.head]
		e.free(tid, r.h)
		st.noteFree(stamp - r.stamp)
		e.noteFreeEv(tid, stamp-r.stamp)
		t.head++
		freedAny = true
	}
	if freedAny {
		st.scans.Add(1)
	}
	if t.head == len(t.pending) {
		t.pending = t.pending[:0]
		t.head = 0
	} else if t.head > 4096 {
		t.pending = append(t.pending[:0], t.pending[t.head:]...)
		t.head = 0
	}
	st.leftover.Store(uint64(len(t.pending) - t.head))
}

// Stats implements Scheme.
func (e *Epochs) Stats() Stats { return sumStats(e.stats) }

var _ Scheme = (*Epochs)(nil)

// Leak is the no-reclamation scheme: Retire just counts. It approximates
// the best-case performance of deferred schemes (no reclamation work at
// all) with the worst-case memory behavior (unbounded growth), exactly the
// role the LFLeak baselines play in the paper's evaluation.
type Leak struct {
	observer
	stats []threadStats
}

// NewLeak creates a Leak domain for threads threads.
func NewLeak(threads int) *Leak {
	return &Leak{stats: make([]threadStats, threads)}
}

// Name implements Scheme.
func (l *Leak) Name() string { return "Leak" }

// Protect is a no-op: leaked nodes are always safe to read.
func (l *Leak) Protect(tid, slot int, h arena.Handle) arena.Handle { return h }

// ClearSlots is a no-op.
func (l *Leak) ClearSlots(tid int) {}

// Retire implements Scheme by leaking h.
func (l *Leak) Retire(tid int, h arena.Handle, stamp uint64) {
	l.stats[tid].noteRetire()
	l.noteRetireEv(tid, h)
}

// Flush is a no-op: nothing is ever freed.
func (l *Leak) Flush(tid int, stamp uint64) {}

// Stats implements Scheme.
func (l *Leak) Stats() Stats { return sumStats(l.stats) }

var _ Scheme = (*Leak)(nil)
