package bench

import (
	"fmt"
	"path/filepath"
	"sort"
)

// DiffOptions tunes the trend comparison cmd/benchdiff runs in CI.
type DiffOptions struct {
	// Tolerance is the fractional throughput drop always allowed before a
	// cell counts as regressed (0.25 = new may be up to 25% below old).
	// The per-cell band additionally widens by both snapshots' recorded
	// relative standard deviations, so noisy cells don't gate on noise.
	Tolerance float64
	// P99Tolerance, when positive, also gates client-observed p99 latency
	// growth on server-mode cells: new p99 may exceed old by this
	// fraction before the cell regresses.
	P99Tolerance float64
}

// CellDelta is the comparison of one cell identity across two snapshots.
type CellDelta struct {
	Key      string  // the shared cell identity
	OldMops  float64 // old snapshot's throughput
	NewMops  float64 // new snapshot's throughput
	Change   float64 // fractional change, (new-old)/old
	Allowed  float64 // the drop band this cell was allowed
	OldP99Ns uint64  // old p99 (server cells; 0 when absent)
	NewP99Ns uint64
	Why      string // non-empty iff Regressed
}

// Regressed reports whether this delta breaches its tolerance band.
func (d CellDelta) Regressed() bool { return d.Why != "" }

// cellIdentity is the join key for trend comparison: everything that
// determines what was measured, nothing that describes how it came out.
// The deferred-reclamation columns (PeakDeferred, the retire→free and
// free→reuse percentiles) are outcomes, like the forensics block: they
// stay out of the key, so BENCH_7 cells recorded with them gate cleanly
// against BENCH_5/6 cells recorded before they existed.
func cellIdentity(c Cell) string {
	shards := c.Shards
	if shards == 0 {
		shards = 1
	}
	return fmt.Sprintf("%s/%s clock=%s threads=%d window=%d conns=%d depth=%d reads=%d shards=%d rate=%g batch=%d scan=%d/%d",
		c.Family, c.Variant, c.Clock, c.Threads, c.Window, c.Conns, c.Depth, c.ReadPct, shards, c.OfferedRps, c.Batch,
		c.ScanPct, c.ScanLen)
}

// Diff joins two snapshots on cell identity and applies the tolerance
// bands. Cells present in only one snapshot are skipped — a new PR adds
// workloads and retires old ones freely; the gate only compares what both
// snapshots measured. The returned deltas are identity-sorted so output
// is stable.
func Diff(old, cur Summary, opt DiffOptions) []CellDelta {
	byKey := make(map[string]Cell, len(old.Cells))
	for _, c := range old.Cells {
		byKey[cellIdentity(c)] = c
	}
	var out []CellDelta
	for _, nc := range cur.Cells {
		key := cellIdentity(nc)
		oc, ok := byKey[key]
		if !ok {
			continue
		}
		d := CellDelta{
			Key:      key,
			OldMops:  oc.Mops,
			NewMops:  nc.Mops,
			Allowed:  opt.Tolerance + oc.RelStddev + nc.RelStddev,
			OldP99Ns: oc.OpP99Ns,
			NewP99Ns: nc.OpP99Ns,
		}
		if oc.Mops > 0 {
			d.Change = (nc.Mops - oc.Mops) / oc.Mops
			if d.Change < -d.Allowed {
				d.Why = fmt.Sprintf("throughput %.4f -> %.4f Mops (%+.1f%%, allowed -%.1f%%)",
					oc.Mops, nc.Mops, 100*d.Change, 100*d.Allowed)
			}
		}
		if d.Why == "" && opt.P99Tolerance > 0 && oc.OpP99Ns > 0 && nc.OpP99Ns > 0 {
			growth := float64(nc.OpP99Ns)/float64(oc.OpP99Ns) - 1
			if growth > opt.P99Tolerance {
				d.Why = fmt.Sprintf("p99 %dns -> %dns (%+.1f%%, allowed +%.1f%%)",
					oc.OpP99Ns, nc.OpP99Ns, 100*growth, 100*opt.P99Tolerance)
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// LatestPair finds the two highest-numbered BENCH_<n>.json files under
// dir — the pair cmd/benchdiff -auto gates on. Fewer than two snapshots
// is an error, not an empty diff: the trend gate exists to compare, and
// silently passing on a directory with nothing to compare (a typo'd path,
// a deleted snapshot) would disable it without anyone noticing.
func LatestPair(dir string) (older, newer string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", fmt.Errorf("scanning %s: %w", dir, err)
	}
	if len(paths) < 2 {
		return "", "", fmt.Errorf("found %d BENCH_<n>.json under %s; need two to diff", len(paths), dir)
	}
	sort.Slice(paths, func(i, j int) bool {
		return BenchNumber(paths[i]) < BenchNumber(paths[j])
	})
	return paths[len(paths)-2], paths[len(paths)-1], nil
}
