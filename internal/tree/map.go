package tree

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Map is an ordered key→value map over the external hand-over-hand tree:
// what a downstream user of this library typically wants instead of a bare
// set. Values are uint64 payloads stored in a transactional cell of the
// leaf, so Put's read-modify-write of an existing key is atomic with the
// traversal that found it, and Get returns the value that was current at
// its final window's snapshot.
//
// Routers never carry values; a leaf's value cell lives in the node's
// otherwise-unused dead Word (the external tree uses TMHP's dead flag only
// for routers/leaves under ModeTMHP, which the Map forbids — it requires a
// precise mode, keeping the value cell free).
type Map struct {
	t *External
}

// NewMap constructs an ordered map. cfg.Mode must be ModeRR or ModeHTM
// (the deferred-reclamation modes would alias the value storage and are
// not what a map user wants anyway).
func NewMap(cfg Config) *Map {
	if cfg.Mode == ModeTMHP || cfg.Mode == ModeTMHE || cfg.Mode == ModeTMVBR {
		panic("tree: Map requires ModeRR or ModeHTM")
	}
	return &Map{t: NewExternal(cfg)}
}

// Name labels the map.
func (m *Map) Name() string { return m.t.Name() + "/map" }

// Register must be called once per thread before its first operation.
func (m *Map) Register(tid int) { m.t.Register(tid) }

// Finish flushes per-thread state (no-op for precise modes).
func (m *Map) Finish(tid int) { m.t.Finish(tid) }

// valueCell returns the leaf's payload cell.
func valueCell(n *node) *stm.Word { return &n.dead }

// Put maps key to val, returning the previous value and whether the key
// was already present.
func (m *Map) Put(tid int, key, val uint64) (prev uint64, existed bool) {
	if key > MaxKey {
		panic("tree: key out of range")
	}
	t := m.t
	res := t.applyExt(tid, key, 1,
		func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool {
			leaf := t.ar.At(leafH)
			if leaf.key.Load(tx) == key {
				cell := valueCell(leaf)
				prev = cell.Load(tx)
				cell.Store(tx, val)
				return true
			}
			newLeaf := t.allocNode(tx, tid, key, arena.Nil, arena.Nil)
			valueCell(t.ar.At(newLeaf)).Store(tx, val)
			leafKey := leaf.key.Load(tx)
			var router arena.Handle
			if key < leafKey {
				router = t.allocNode(tx, tid, leafKey, newLeaf, leafH)
			} else {
				router = t.allocNode(tx, tid, key, leafH, newLeaf)
			}
			child(t.ar.At(pH), lDir).Store(tx, uint64(router))
			return false
		},
	)
	return prev, res
}

// Get returns the value mapped to key.
func (m *Map) Get(tid int, key uint64) (uint64, bool) {
	t := m.t
	var val uint64
	ok := t.applyExt(tid, key, 0,
		func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool {
			leaf := t.ar.At(leafH)
			if leaf.key.Load(tx) != key {
				return false
			}
			val = valueCell(leaf).Load(tx)
			return true
		},
	)
	return val, ok
}

// Delete removes key, returning its value and whether it was present. The
// leaf and its parent router are reclaimed before Delete returns (precise).
func (m *Map) Delete(tid int, key uint64) (uint64, bool) {
	t := m.t
	var val uint64
	ok := t.applyExt(tid, key, 2,
		func(tx *stm.Tx, gH, pH, leafH arena.Handle, pDir, lDir int) bool {
			leaf := t.ar.At(leafH)
			if leaf.key.Load(tx) != key {
				return false
			}
			val = valueCell(leaf).Load(tx)
			sibling := child(t.ar.At(pH), 1-lDir).Load(tx)
			child(t.ar.At(gH), pDir).Store(tx, sibling)
			t.reclaimNode(tx, tid, pH)
			t.reclaimNode(tx, tid, leafH)
			return true
		},
	)
	return val, ok
}

// Len counts entries (quiescence required).
func (m *Map) Len() int { return len(m.t.Snapshot()) }

// Entries returns the (key, value) pairs in ascending key order
// (quiescence required).
func (m *Map) Entries() (keys, vals []uint64) {
	t := m.t
	var walk func(h arena.Handle)
	walk = func(h arena.Handle) {
		if h.IsNil() {
			return
		}
		n := t.ar.At(h)
		l := arena.Handle(n.left.Raw())
		if l.IsNil() {
			if k := n.key.Raw(); k <= MaxKey {
				keys = append(keys, k)
				vals = append(vals, valueCell(n).Raw())
			}
			return
		}
		walk(l)
		walk(arena.Handle(n.right.Raw()))
	}
	walk(t.root)
	return keys, vals
}

// LiveNodes implements sets.MemoryReporter via the underlying tree.
func (m *Map) LiveNodes() uint64 { return m.t.LiveNodes() }

// DeferredNodes implements sets.MemoryReporter (always 0: precise modes).
func (m *Map) DeferredNodes() uint64 { return m.t.DeferredNodes() }

var _ sets.MemoryReporter = (*Map)(nil)
