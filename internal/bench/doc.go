// Package bench is the measurement harness that regenerates the paper's
// evaluation (Figures 2–7) and the repository's own performance trend.
//
// It owns four things:
//
//   - workload generation: key ranges, operation mixes and the 50% prefill
//     of §5.1 (Workload);
//   - the timed runner: trials, warmup, post-run invariant checks and the
//     memory-book reconciliation every run ends with (Run, Result);
//   - the variant registry: Build maps the series names — the paper's
//     (RR-V, RR-XO, …, HTM, TMHP, REF, ER, LFLeak, LFHP) plus the extended
//     reclamation matrix's TMHE and TMVBR (DESIGN.md §14) — times a
//     structure Family to a ready-to-run sets.Set — the single spelling of
//     that mapping, shared by cmd/benchfig, cmd/benchjson, cmd/hohserver
//     and the tests. Variants built with Observe expose their obs.Domain
//     via ObsReporter;
//   - the trend schema: Cell and Summary define the BENCH_<n>.json shape
//     that cmd/benchjson (in-process suite) and cmd/hohload (server mode)
//     both emit, so successive snapshots diff mechanically across PRs.
//
// The per-figure drivers (figures.go) print the TSV series each paper
// figure plots; cmd/figtable renders them as the markdown tables recorded
// in EXPERIMENTS.md.
package bench
