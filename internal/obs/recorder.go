package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"hohtx/internal/pad"
)

// EventKind enumerates the transaction-lifecycle events the flight
// recorder captures.
type EventKind uint8

const (
	// EvBegin is the start of a (sampled) transaction attempt; Aux is the
	// attempt number.
	EvBegin EventKind = iota
	// EvCommit is a successful commit; Aux is the write-set size.
	EvCommit
	// EvAbort is an aborted attempt; Cause is the stm abort cause, Ref is
	// the conflicting cell's address (0 if unknown) and Aux is the tid of
	// the last sampled writer of that cell (all-ones = unknown).
	EvAbort
	// EvSerial marks escalation to the exclusive serial fallback; Cause
	// is the abort cause that triggered it.
	EvSerial
	// EvRetire is a logical deletion handed to a deferred-reclamation
	// scheme; Ref is the arena handle.
	EvRetire
	// EvFree is a physical arena free; Ref is the arena handle.
	EvFree
	// EvReuse is an allocation that recycled a previously freed slot; Ref
	// is the new handle and Aux the free→reuse distance in arena ops.
	EvReuse
)

// String returns the event kind's short dump label.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvSerial:
		return "serial"
	case EvRetire:
		return "retire"
	case EvFree:
		return "free"
	case EvReuse:
		return "reuse"
	default:
		return fmt.Sprintf("ev?%d", uint8(k))
	}
}

// Event is one flight-recorder entry. Seq is drawn from a global counter
// at emit time, so merging per-thread rings by Seq reconstructs a total
// order of recorded events (the order of Seq assignment, which brackets
// the real interleaving closely enough for postmortems).
type Event struct {
	Seq   uint64
	Tid   int32
	Kind  EventKind
	Cause uint8  // stm.AbortCause ordinal for EvAbort/EvSerial
	Ref   uint64 // cell address or arena handle, kind-dependent
	Aux   uint64 // kind-dependent (see the kind constants)
}

// ring is one thread's event buffer. The owning thread is the only
// writer; the mutex exists so Dump can read a consistent prefix while the
// run is still live (uncontended in the single-writer steady state).
type ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	wrap   bool
	_      pad.Line
}

func (r *ring) push(e Event) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// snapshot returns the ring's events, oldest first.
func (r *ring) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	return append(out, r.events[:r.next]...)
}

// Recorder is the sampled per-thread ring-buffer flight recorder. Emit is
// cheap (one atomic Add for the sequence number plus an uncontended lock
// on the caller's own ring) but callers are expected to gate it behind
// Domain.Sampled.
type Recorder struct {
	seq   atomic.Uint64
	rings []ring
}

// NewRecorder creates a recorder with one ring of perThread events for
// each of threads tids, plus one shared overflow ring for events emitted
// without a tid.
func NewRecorder(threads, perThread int) *Recorder {
	if threads < 0 {
		threads = 0
	}
	if perThread <= 0 {
		perThread = 256
	}
	r := &Recorder{rings: make([]ring, threads+1)}
	for i := range r.rings {
		r.rings[i].events = make([]Event, perThread)
	}
	return r
}

// Emit records one event on tid's ring (events from unknown or
// out-of-range tids share the overflow ring).
func (r *Recorder) Emit(tid int, kind EventKind, cause uint8, ref, aux uint64) {
	i := len(r.rings) - 1
	if tid >= 0 && tid < i {
		i = tid
	}
	r.rings[i].push(Event{
		Seq: r.seq.Add(1), Tid: int32(tid), Kind: kind,
		Cause: cause, Ref: ref, Aux: aux,
	})
}

// Events returns the merged, Seq-ordered contents of every ring.
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.rings {
		out = append(out, r.rings[i].snapshot()...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// causeNames mirrors stm's AbortCause order without importing stm (obs
// sits below stm in the dependency order).
var causeNames = [...]string{"none", "read-conflict", "validation", "write-lock", "capacity", "explicit"}

func causeName(c uint8) string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause?%d", c)
}

func formatEvent(w io.Writer, e Event) {
	switch e.Kind {
	case EvBegin:
		fmt.Fprintf(w, "  [%7d] t%-2d begin   attempt=%d\n", e.Seq, e.Tid, e.Aux)
	case EvCommit:
		fmt.Fprintf(w, "  [%7d] t%-2d commit  writes=%d\n", e.Seq, e.Tid, e.Aux)
	case EvAbort:
		owner := "?"
		if int64(e.Aux) >= 0 {
			owner = fmt.Sprintf("t%d", int64(e.Aux))
		}
		fmt.Fprintf(w, "  [%7d] t%-2d abort   cause=%s cell=0x%x owner=%s\n",
			e.Seq, e.Tid, causeName(e.Cause), e.Ref, owner)
	case EvSerial:
		fmt.Fprintf(w, "  [%7d] t%-2d serial  after=%s\n", e.Seq, e.Tid, causeName(e.Cause))
	case EvRetire:
		fmt.Fprintf(w, "  [%7d] t%-2d retire  %s\n", e.Seq, e.Tid, handleString(e.Ref))
	case EvFree:
		fmt.Fprintf(w, "  [%7d] t%-2d free    %s\n", e.Seq, e.Tid, handleString(e.Ref))
	case EvReuse:
		fmt.Fprintf(w, "  [%7d] t%-2d reuse   %s dist=%d\n", e.Seq, e.Tid, handleString(e.Ref), e.Aux)
	default:
		fmt.Fprintf(w, "  [%7d] t%-2d %v ref=0x%x aux=%d\n", e.Seq, e.Tid, e.Kind, e.Ref, e.Aux)
	}
}

// handleString renders an arena.Handle's bits the way Handle.String does,
// without importing arena.
func handleString(h uint64) string {
	if h == 0 {
		return "hnil"
	}
	return fmt.Sprintf("h%d.g%d", uint32(h), uint32(h>>32)&0x3fffffff)
}

// Dump writes every recorded event, Seq-ordered, to w.
func (r *Recorder) Dump(w io.Writer) { r.dump(w, r.Events()) }

// DumpTail writes the last n recorded events (by Seq) to w — the form the
// torture harness appends to failure reports.
func (r *Recorder) DumpTail(w io.Writer, n int) {
	ev := r.Events()
	if n > 0 && len(ev) > n {
		fmt.Fprintf(w, "  ... %d earlier events elided ...\n", len(ev)-n)
		ev = ev[len(ev)-n:]
	}
	r.dump(w, ev)
}

func (r *Recorder) dump(w io.Writer, ev []Event) {
	if len(ev) == 0 {
		fmt.Fprintln(w, "  (no events recorded)")
		return
	}
	for _, e := range ev {
		formatEvent(w, e)
	}
}
