// Command torture runs the adversarial reclamation stress harness from the
// command line. It has two modes:
//
//	torture -structure=singly -variant=TMHP -seed=42 ...
//	    run one configuration (the repro mode: paste a failing repro line
//	    printed by the harness or CI to replay it)
//
//	torture -sweep -rounds=20 ...
//	    run every structure × variant × policy combination with -rounds
//	    distinct seeds each; failing repro lines are appended to the
//	    -failures file and the process exits nonzero
//
// See internal/torture for the invariants checked.
package main

import (
	"flag"
	"fmt"
	"os"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/torture"
)

func main() {
	var (
		structure = flag.String("structure", "singly", "structure to torture (singly|doubly|hash|itree|etree|skip)")
		variant   = flag.String("variant", "RR-List", "mechanism variant (see internal/torture.Variants)")
		policy    = flag.Int("policy", 0, "arena free-list policy (0=local magazines, 1=shared)")
		threads   = flag.Int("threads", 4, "worker thread count")
		ops       = flag.Int("ops", 2000, "operations per worker")
		keys      = flag.Uint64("keys", 128, "key-space size")
		lookup    = flag.Int("lookup", 20, "lookup percentage of the op mix")
		window    = flag.Int("window", 4, "hand-over-hand window size")
		seed      = flag.Uint64("seed", 1, "schedule seed")
		shards    = flag.Int("shards", 1, "partition keys across this many independent instances")
		batch     = flag.Int("batch", 1, "drive worker ops through Set.Apply in batches of this size (1 = per-op calls)")
		guard     = flag.Bool("guard", false, "enable the arena use-after-free sanitizer")
		sweep     = flag.Bool("sweep", false, "run the full structure × variant × policy matrix")
		rounds    = flag.Int("rounds", 1, "seeds per combination in sweep mode")
		failures  = flag.String("failures", "torture-failures.txt", "file to append failing repro lines to (sweep mode)")
		obsAddr   = flag.String("obs", "", "serve live metrics (/metrics, /snapshot, /flight, pprof) on this address, e.g. :8371")
	)
	flag.Parse()

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		addr, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "torture: obs endpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("obs endpoint on http://%s (/metrics, /snapshot, /flight, /debug/pprof)\n", addr)
	}

	if !*sweep {
		cfg := torture.Config{
			Structure: *structure, Variant: *variant, Policy: arena.Policy(*policy),
			Threads: *threads, Ops: *ops, Keys: *keys, LookupPct: *lookup,
			Window: *window, Seed: *seed, Shards: *shards, BatchOps: *batch,
			Guard: *guard, Registry: reg,
		}
		rep, err := torture.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ok: %s\n  size=%d inserts=%d removes=%d live=%d deferred=%d leftover=%d avg_delay_ops=%.1f poisonReads=%d violations=%d scans=%d\n",
			cfg, rep.Size, rep.Inserts, rep.Removes, rep.Live, rep.Deferred,
			rep.Leftover, rep.AvgDelayOps, rep.PoisonReads, rep.Violations, rep.ScanChecks)
		return
	}

	var failed []string
	combos, runs := 0, 0
	for _, st := range torture.Structures() {
		for _, v := range torture.Variants(st) {
			for _, pol := range []arena.Policy{arena.PolicyLocal, arena.PolicyShared} {
				combos++
				comboFailed := 0
				var last torture.Report
				for r := 0; r < *rounds; r++ {
					runs++
					cfg := torture.Config{
						Structure: st, Variant: v, Policy: pol,
						Threads: *threads + r%4, Ops: *ops, Keys: *keys,
						LookupPct: 10 + (combos*7+r*13)%40,
						Window:    2 + (combos+r)%6,
						Shards:    1 + ((combos+r)%2)*2,   // alternate 1 and 3 shards
						BatchOps:  1 + ((combos+r+1)%2)*7, // alternate per-op and batches of 8
						Seed:      *seed + uint64(runs),
						Guard:     true,
						Registry:  reg,
					}
					rep, err := torture.Run(cfg)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						failed = append(failed, cfg.String())
						comboFailed++
					}
					last = rep
				}
				polName := "local"
				if pol == arena.PolicyShared {
					polName = "shared"
				}
				fmt.Printf("%-7s %-7s %-6s rounds=%d failed=%d size=%d leftover=%d avg_delay_ops=%.1f\n",
					st, v, polName, *rounds, comboFailed, last.Size, last.Leftover, last.AvgDelayOps)
			}
		}
	}
	fmt.Printf("sweep: %d runs over %d combinations, %d failed\n", runs, combos, len(failed))
	if len(failed) > 0 {
		f, err := os.OpenFile(*failures, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			for _, line := range failed {
				fmt.Fprintln(f, line)
			}
			f.Close()
			fmt.Printf("repro lines appended to %s\n", *failures)
		}
		os.Exit(1)
	}
}
