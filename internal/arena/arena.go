// Package arena provides the explicit node allocator that underpins this
// repository's "precise memory reclamation" claims.
//
// The paper's data structures are written in C++, where a removed node can
// be handed to free() the instant the removing transaction commits, and
// where touching freed memory is a real (and catastrophic) bug. Go's
// garbage collector erases both properties, so this package restores them
// synthetically:
//
//   - Nodes live in slab pages owned by an Arena. Alloc returns a Handle —
//     a {generation, index} pair — and Free makes the slot immediately
//     available for reuse. "Memory in use" is therefore an exact, observable
//     quantity (Stats.Live), and reclamation delay is measurable in
//     operations rather than being whenever the GC feels like it.
//
//   - Every Free bumps the slot's generation, so a stale Handle is
//     *detectable*: Live reports whether a handle still names the object it
//     was created for, double frees panic deterministically, and handles
//     embedding generations make compare-and-swap on handles ABA-safe for
//     the lock-free comparator structures.
//
// Dereferencing a stale handle through At is deliberately memory-safe (the
// slot always exists); the transactional layer above guarantees any value
// read through a stale handle can never commit, which mirrors how the
// paper's HTM aborts a reader whose node is concurrently reclaimed.
//
// Because slots are recycled, objects containing stm cells must only be
// re-initialized with transactional stores once they have ever been
// reachable: a plain (non-transactional) write to a recycled cell would
// bypass version management and could leak an inconsistent value into a
// doomed-but-running reader. Freshly bump-allocated slots (never shared)
// may use stm's Init.
//
// Two free-list policies reproduce the allocator sensitivity study in the
// paper's Figure 5:
//
//   - PolicyLocal (Hoard-like): per-thread magazines absorb frees and serve
//     allocations; only magazine overflow/underflow touches the shared pool,
//     in batches.
//
//   - PolicyShared (the jemalloc pathology stand-in): every allocation and
//     free takes the global pool lock, so batched deferred reclamation
//     (e.g. a hazard-pointer scan freeing 64 nodes at once) stalls every
//     other thread.
package arena

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hohtx/internal/pad"
)

// Handle names an allocated slot. The zero Handle is "nil". Layout:
// bits 0..31 slot index, bits 32..61 generation (odd while live), bits
// 62..63 reserved for users (the lock-free structures pack mark/flag/tag
// bits there; the arena never sets them and rejects handles carrying them).
type Handle uint64

// Nil is the zero Handle.
const Nil Handle = 0

// UserBits is the mask of handle bits the arena leaves to its users.
const UserBits = uint64(3) << 62

const (
	idxBits   = 32
	idxMask   = (1 << idxBits) - 1
	genMask   = 0x3fffffff // 30 bits
	userBit   = UserBits
	genShift  = idxBits
	pageShift = 12 // 4096 slots per page
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// makeHandle packs an index and a (odd, live) generation.
func makeHandle(idx uint32, gen uint32) Handle {
	return Handle(uint64(gen&genMask)<<genShift | uint64(idx))
}

// Index returns the slot index the handle names.
func (h Handle) Index() uint32 { return uint32(h & idxMask) }

// Gen returns the generation the handle was created with.
func (h Handle) Gen() uint32 { return uint32(h>>genShift) & genMask }

// IsNil reports whether the handle is the nil handle.
func (h Handle) IsNil() bool { return h == Nil }

// String renders the handle for debugging.
func (h Handle) String() string {
	if h.IsNil() {
		return "hnil"
	}
	return fmt.Sprintf("h%d.g%d", h.Index(), h.Gen())
}

// Policy selects the free-list organization; see the package comment.
type Policy uint8

const (
	// PolicyLocal uses per-thread magazines with batched overflow to a
	// shared pool (Hoard-like).
	PolicyLocal Policy = iota
	// PolicyShared routes every allocation and free through one
	// lock-protected shared pool (the contended-allocator stand-in).
	PolicyShared
)

// String names the policy the way the paper's Figure 5 legend does:
// "H-" Hoard-like local magazines, "J-" the contended shared pool.
func (p Policy) String() string {
	switch p {
	case PolicyLocal:
		return "local(H)"
	case PolicyShared:
		return "shared(J)"
	default:
		return "unknown"
	}
}

// Config parameterizes an Arena.
type Config struct {
	// Policy selects the free-list organization. Default PolicyLocal.
	Policy Policy
	// Threads is the number of distinct thread ids that will call
	// Alloc/Free. Default 64.
	Threads int
	// MagazineSize caps a thread's private free list under PolicyLocal;
	// overflow flushes half to the shared pool. Default 128.
	MagazineSize int
	// Guard enables the use-after-free sanitizer: every Free overwrites
	// the slot payload with a sentinel (via Poison) and records a per-slot
	// audit trail (last alloc/free thread, transition counts), and the
	// arena accepts violation reports from the owning structure through
	// ReportUAF/AccessCheck. Off by default; when off, the only cost is
	// one predictable nil check in Alloc and Free.
	Guard bool
	// AccessCheck receives use-after-free violations reported via
	// ReportUAF: a committed transaction dereferenced a freed slot. Nil
	// means panic with the audit trail (the sanitizer's default). The
	// poison callback itself is generic over the slot type and therefore
	// installed separately, via Arena.SetPoison.
	AccessCheck func(GuardEvent)
}

type slot[T any] struct {
	gen atomic.Uint32 // odd = live, even = free; bumped on every transition
	val T
}

// page is one slab of slots. Pages are never released, which is what makes
// dereferencing stale handles memory-safe.
type page[T any] struct {
	slots []slot[T]
}

// PoisonWord is the sentinel guard-mode poisoners are expected to write
// into freed value words. Both reserved user bits are set, so it is never
// a valid arena handle, and it is far above the sets package's key range,
// so it is never a valid key — any committed read of it is evidence.
const PoisonWord uint64 = 0xDEADBEEFDEADBEEF

// slotAudit is the guard-mode per-slot audit trail (who touched the slot
// last, and how often it transitioned). Fields are atomics because Stats
// and violation reporters read them racily against the owning thread.
type slotAudit struct {
	lastAllocTid atomic.Int32
	lastFreeTid  atomic.Int32
	allocs       atomic.Uint32
	frees        atomic.Uint32
}

// auditPage parallels one slot page in guard mode.
type auditPage struct {
	slots []slotAudit
}

// SlotAudit is a point-in-time copy of a slot's guard audit trail.
type SlotAudit struct {
	LastAllocTid int32  // tid of the last Alloc that returned this slot
	LastFreeTid  int32  // tid of the last Free of this slot
	Allocs       uint32 // times the slot was handed out
	Frees        uint32 // times the slot was freed
	Gen          uint32 // current generation (odd = live)
}

// GuardEvent describes one use-after-free violation: a committed
// transaction on thread Tid dereferenced the slot named by H after it was
// freed.
type GuardEvent struct {
	H     Handle
	Tid   int
	Audit SlotAudit
}

// String renders the violation with its audit trail.
func (ev GuardEvent) String() string {
	return fmt.Sprintf(
		"use-after-free: tid %d committed a read of dead %v (slot gen %d, last alloc by tid %d, last free by tid %d, %d allocs / %d frees)",
		ev.Tid, ev.H, ev.Audit.Gen, ev.Audit.LastAllocTid, ev.Audit.LastFreeTid,
		ev.Audit.Allocs, ev.Audit.Frees)
}

// GuardStats counts guard-mode observations.
type GuardStats struct {
	// PoisonReads counts dereferences that observed a poisoned slot,
	// including the benign ones made by doomed transaction attempts that
	// subsequently aborted (see the package comment: such reads are
	// expected and harmless).
	PoisonReads uint64
	// Violations counts poison reads made by transactions that went on to
	// commit — true use-after-frees.
	Violations uint64
}

// guardState exists only when Config.Guard is set, so the disabled-mode
// cost is a nil check.
type guardState[T any] struct {
	audits      atomic.Pointer[[]*auditPage]
	poison      func(*T)
	accessCheck func(GuardEvent)
	poisonReads atomic.Uint64
	violations  atomic.Uint64
}

// magazine is a thread-private stack of free slot indices.
type magazine struct {
	free []uint32
	// Single-writer counters (the owning thread); read racily by Stats.
	allocs atomic.Uint64
	frees  atomic.Uint64
	_      pad.Line
}

// Arena is a slab allocator for values of type T. Methods taking a tid are
// safe for concurrent use as long as each concurrent caller passes a
// distinct tid in [0, Config.Threads).
type Arena[T any] struct {
	cfg Config

	pages atomic.Pointer[[]*page[T]] // grow-only vector of pages
	next  atomic.Uint32              // bump pointer for never-used slots
	_     pad.Line

	growMu sync.Mutex

	poolMu   sync.Mutex
	pool     []uint32 // shared free indices
	poolOps  atomic.Uint64
	grows    atomic.Uint64
	fresh    atomic.Uint64
	_pad2    pad.Line
	mags     []magazine
	magCap   int
	magFlush int

	// retire, when installed (SetRetire), runs on every Free after the
	// generation bump and before the slot reaches any free list. Owning
	// structures use it to lift the versions of the slot's transactional
	// cells past the current clock, so that transactions still holding
	// pre-free snapshots abort instead of reading the slot's next
	// incarnation (see stm.Word.Retire). Unlike the guard poisoner it is
	// not a debugging aid: it runs in every mode.
	retire func(*T)

	guard *guardState[T] // nil unless Config.Guard
	obsv  *obsState      // nil unless SetObserver attached a probe (obs.go)
}

// New creates an Arena with the given configuration.
func New[T any](cfg Config) *Arena[T] {
	if cfg.Threads <= 0 {
		cfg.Threads = 64
	}
	if cfg.MagazineSize <= 0 {
		cfg.MagazineSize = 128
	}
	a := &Arena[T]{
		cfg:      cfg,
		mags:     make([]magazine, cfg.Threads),
		magCap:   cfg.MagazineSize,
		magFlush: cfg.MagazineSize / 2,
	}
	empty := make([]*page[T], 0)
	a.pages.Store(&empty)
	if cfg.Guard {
		a.guard = &guardState[T]{accessCheck: cfg.AccessCheck}
		emptyAudits := make([]*auditPage, 0)
		a.guard.audits.Store(&emptyAudits)
	}
	return a
}

// Guarded reports whether the use-after-free sanitizer is enabled.
func (a *Arena[T]) Guarded() bool { return a.guard != nil }

// SetPoison installs the guard-mode poisoner: f overwrites a freed slot's
// payload with a recognizable sentinel (typically PoisonWord in every value
// word, stored atomically via stm.Word.Poison so racing doomed readers stay
// race-detector clean). Call once, before any Free; a no-op unless
// Config.Guard was set.
func (a *Arena[T]) SetPoison(f func(*T)) {
	if a.guard != nil {
		a.guard.poison = f
	}
}

// SetRetire installs the free-time retire callback: f is invoked for every
// freed slot while the slot is still unreachable (after the generation
// bump, before the index is pushed to a free list, and before the guard
// poisoner). Structures whose slots contain stm cells must install one
// that retires every cell's version (stm.Word.Retire); see that method for
// why recycling is unsound without it. Call once, before any Free.
func (a *Arena[T]) SetRetire(f func(*T)) { a.retire = f }

// Policy reports the arena's free-list policy.
func (a *Arena[T]) Policy() Policy { return a.cfg.Policy }

// At returns the object named by h. It never fails for any handle ever
// returned by Alloc, even after the slot was freed or recycled (see the
// package comment); it panics only on the nil handle, a foreign index, or a
// handle carrying the user (mark) bit.
func (a *Arena[T]) At(h Handle) *T {
	if h.IsNil() {
		panic("arena: At(Nil)")
	}
	if uint64(h)&userBit != 0 {
		panic("arena: At on handle with user bit set; strip marks first")
	}
	idx := h.Index()
	pages := *a.pages.Load()
	return &pages[idx>>pageShift].slots[idx&pageMask].val
}

// Live reports whether h still names the allocation it was created by,
// i.e. the slot has not been freed (or freed and recycled) since.
func (a *Arena[T]) Live(h Handle) bool {
	if h.IsNil() || uint64(h)&userBit != 0 {
		return false
	}
	idx := h.Index()
	pages := *a.pages.Load()
	if int(idx>>pageShift) >= len(pages) {
		return false
	}
	return pages[idx>>pageShift].slots[idx&pageMask].gen.Load()&genMask == h.Gen()
}

// Alloc returns a handle to a slot that is exclusively owned by the caller
// until freed. The slot's contents are whatever the previous owner left
// (recycled slots must be re-initialized transactionally; see the package
// comment).
func (a *Arena[T]) Alloc(tid int) Handle {
	m := &a.mags[tid]
	m.allocs.Add(1)
	var idx uint32
	var ok bool
	if a.cfg.Policy == PolicyLocal {
		if n := len(m.free); n > 0 {
			idx, ok = m.free[n-1], true
			m.free = m.free[:n-1]
		} else if a.refill(m) {
			n := len(m.free)
			idx, ok = m.free[n-1], true
			m.free = m.free[:n-1]
		}
	} else {
		idx, ok = a.popShared()
	}
	if !ok {
		idx = a.bumpAlloc()
		a.fresh.Add(1)
	}
	s := a.slotAt(idx)
	g := s.gen.Load() // even (free)
	s.gen.Store(g + 1)
	if a.guard != nil {
		au := a.auditAt(idx)
		au.lastAllocTid.Store(int32(tid))
		au.allocs.Add(1)
	}
	if o := a.obsv; o != nil {
		a.noteAlloc(o, tid, idx, g)
	}
	return makeHandle(idx, g+1)
}

// Free releases the slot named by h for immediate reuse. It panics if h is
// nil, stale, or being freed twice (the arena-level analog of a double
// free() aborting under a hardened allocator).
func (a *Arena[T]) Free(tid int, h Handle) {
	if h.IsNil() {
		panic("arena: Free(Nil)")
	}
	if uint64(h)&userBit != 0 {
		panic("arena: Free on handle with user bit set")
	}
	idx := h.Index()
	s := a.slotAt(idx)
	g := h.Gen()
	cur := s.gen.Load()
	if g&1 == 0 || cur&genMask != g || !s.gen.CompareAndSwap(cur, cur+1) {
		panic(fmt.Sprintf("arena: double free or stale handle %v", h))
	}
	if a.retire != nil {
		// Retire before poisoning: once the cell versions are lifted, no
		// pre-free snapshot can validate a read of the sentinel (or of the
		// slot's next incarnation) written below.
		a.retire(&s.val)
	}
	if a.guard != nil {
		// The slot is free but not yet on any free list, so no other
		// thread can re-allocate it while we poison: the sentinel is in
		// place before the index becomes reachable again.
		au := a.auditAt(idx)
		au.lastFreeTid.Store(int32(tid))
		au.frees.Add(1)
		if a.guard.poison != nil {
			a.guard.poison(&s.val)
		}
	}
	if o := a.obsv; o != nil {
		// Stamp while the slot is still unreachable, for the same reason
		// the poisoner runs here: the recycling Alloc must observe it.
		a.noteFree(o, tid, h)
	}
	m := &a.mags[tid]
	m.frees.Add(1)
	if a.cfg.Policy == PolicyLocal {
		m.free = append(m.free, idx)
		if len(m.free) > a.magCap {
			a.flush(m)
		}
		return
	}
	a.pushShared(idx)
}

// FreeBatch releases a batch of handles (used by the deferred-reclamation
// baselines, whose batched frees are exactly the allocator-contention
// trigger Figure 5 studies).
func (a *Arena[T]) FreeBatch(tid int, hs []Handle) {
	for _, h := range hs {
		a.Free(tid, h)
	}
}

func (a *Arena[T]) slotAt(idx uint32) *slot[T] {
	pages := *a.pages.Load()
	return &pages[idx>>pageShift].slots[idx&pageMask]
}

// refill moves up to magFlush indices from the shared pool into m.
func (a *Arena[T]) refill(m *magazine) bool {
	a.poolMu.Lock()
	a.poolOps.Add(1)
	n := a.magFlush
	if n > len(a.pool) {
		n = len(a.pool)
	}
	if n > 0 {
		m.free = append(m.free, a.pool[len(a.pool)-n:]...)
		a.pool = a.pool[:len(a.pool)-n]
	}
	a.poolMu.Unlock()
	return n > 0
}

// flush moves magFlush indices from m to the shared pool.
func (a *Arena[T]) flush(m *magazine) {
	a.poolMu.Lock()
	a.poolOps.Add(1)
	cut := len(m.free) - a.magFlush
	a.pool = append(a.pool, m.free[cut:]...)
	a.poolMu.Unlock()
	m.free = m.free[:cut]
}

func (a *Arena[T]) popShared() (uint32, bool) {
	a.poolMu.Lock()
	a.poolOps.Add(1)
	n := len(a.pool)
	if n == 0 {
		a.poolMu.Unlock()
		return 0, false
	}
	idx := a.pool[n-1]
	a.pool = a.pool[:n-1]
	a.poolMu.Unlock()
	return idx, true
}

func (a *Arena[T]) pushShared(idx uint32) {
	a.poolMu.Lock()
	a.poolOps.Add(1)
	a.pool = append(a.pool, idx)
	a.poolMu.Unlock()
}

// bumpAlloc hands out a never-used slot index, growing the page vector as
// needed. The index space is 32 bits; handing out the last index would
// wrap the bump pointer back to page 0 and silently alias live slots, so
// exhaustion panics instead (the final index, ^uint32(0), is sacrificed as
// the exhaustion sentinel).
func (a *Arena[T]) bumpAlloc() uint32 {
	for {
		n := a.next.Load()
		if n == ^uint32(0) {
			panic("arena: bump pointer exhausted the 32-bit slot index space; " +
				"wraparound would alias live slots (allocate fewer than 2^32 fresh slots, or recycle)")
		}
		pages := *a.pages.Load()
		if int(n) < len(pages)*pageSize {
			if a.next.CompareAndSwap(n, n+1) {
				return n
			}
			continue
		}
		a.grow(len(pages))
	}
}

// grow appends one page if no other thread has done so already.
func (a *Arena[T]) grow(seen int) {
	a.growMu.Lock()
	defer a.growMu.Unlock()
	cur := *a.pages.Load()
	if len(cur) != seen {
		return // someone else grew while we waited
	}
	next := make([]*page[T], len(cur)+1)
	copy(next, cur)
	next[len(cur)] = &page[T]{slots: make([]slot[T], pageSize)}
	if a.guard != nil {
		// Grow the audit shadow in lockstep (same growMu critical section).
		curAu := *a.guard.audits.Load()
		nextAu := make([]*auditPage, len(curAu)+1)
		copy(nextAu, curAu)
		nextAu[len(curAu)] = &auditPage{slots: make([]slotAudit, pageSize)}
		a.guard.audits.Store(&nextAu)
	}
	if o := a.obsv; o != nil {
		// Grow the stamp shadow before publishing the page: any index
		// reachable through the new pages vector then has a stamp cell.
		curSt := *o.stamps.Load()
		nextSt := make([]*stampPage, len(curSt)+1)
		copy(nextSt, curSt)
		nextSt[len(curSt)] = &stampPage{slots: make([]atomic.Uint64, pageSize)}
		o.stamps.Store(&nextSt)
	}
	a.pages.Store(&next)
	a.grows.Add(1)
}

// auditAt returns the guard audit record for a slot index (guard mode only).
func (a *Arena[T]) auditAt(idx uint32) *slotAudit {
	audits := *a.guard.audits.Load()
	return &audits[idx>>pageShift].slots[idx&pageMask]
}

// Audit returns a copy of the slot's guard audit trail. It panics unless
// guard mode is enabled.
func (a *Arena[T]) Audit(h Handle) SlotAudit {
	if a.guard == nil {
		panic("arena: Audit requires Config.Guard")
	}
	idx := h.Index()
	au := a.auditAt(idx)
	return SlotAudit{
		LastAllocTid: au.lastAllocTid.Load(),
		LastFreeTid:  au.lastFreeTid.Load(),
		Allocs:       au.allocs.Load(),
		Frees:        au.frees.Load(),
		Gen:          a.slotAt(idx).gen.Load(),
	}
}

// NotePoisonRead records that a transaction attempt dereferenced a
// poisoned (freed) slot. Most such reads are benign: a doomed attempt read
// through a stale handle and will abort at validation. The owning
// structure calls ReportUAF only if the attempt goes on to commit.
func (a *Arena[T]) NotePoisonRead(h Handle) {
	if a.guard != nil {
		a.guard.poisonReads.Add(1)
	}
}

// ReportUAF reports a true use-after-free: a transaction on thread tid
// dereferenced the freed slot named by h and then committed. The event is
// counted and handed to Config.AccessCheck; with no AccessCheck installed
// it panics with the slot's audit trail.
func (a *Arena[T]) ReportUAF(tid int, h Handle) {
	if a.guard == nil {
		return
	}
	a.guard.violations.Add(1)
	ev := GuardEvent{H: h, Tid: tid, Audit: a.Audit(h)}
	if a.guard.accessCheck != nil {
		a.guard.accessCheck(ev)
		return
	}
	panic("arena: " + ev.String())
}

// GuardStats returns the sanitizer's counters (zero when guard is off).
func (a *Arena[T]) GuardStats() GuardStats {
	if a.guard == nil {
		return GuardStats{}
	}
	return GuardStats{
		PoisonReads: a.guard.poisonReads.Load(),
		Violations:  a.guard.violations.Load(),
	}
}

// Stats is a point-in-time snapshot of allocator activity.
type Stats struct {
	Allocs   uint64 // total allocations
	Frees    uint64 // total frees
	Live     uint64 // Allocs - Frees (clamped at 0): objects currently allocated
	Fresh    uint64 // allocations served by the bump pointer (new memory)
	PoolOps  uint64 // shared-pool critical sections (contention proxy)
	Pages    uint64 // slab pages allocated from the Go heap
	Capacity uint64 // total slots backed by pages
}

// Stats aggregates per-thread counters. Totals may lag concurrent activity
// by a few counts.
func (a *Arena[T]) Stats() Stats {
	var st Stats
	for i := range a.mags {
		st.Allocs += a.mags[i].allocs.Load()
		st.Frees += a.mags[i].frees.Load()
	}
	// The per-magazine counters are read racily: a free can be observed
	// before the alloc it balances, making Frees momentarily exceed
	// Allocs. Unsigned subtraction would then report a near-2^64 Live;
	// compute signed and clamp at zero instead.
	if live := int64(st.Allocs) - int64(st.Frees); live > 0 {
		st.Live = uint64(live)
	}
	st.Fresh = a.fresh.Load()
	st.PoolOps = a.poolOps.Load()
	st.Pages = uint64(len(*a.pages.Load()))
	st.Capacity = st.Pages * pageSize
	return st
}
