package stm

import "sync/atomic"

// Cells.
//
// A cell is one transactionally-managed memory location: a version lock
// word plus an atomically accessed value word. The version lock encoding is
// TL2's: even values are commit timestamps, odd values mean "locked by a
// committing writer" and carry the pre-lock version in the remaining bits.
// Versions only ever increase, which is what makes recycling nodes that
// contain cells safe: a reused cell keeps its version history, so a
// transaction that read the cell before the recycle can never revalidate.

const lockedBit = uint64(1)

// Word is a transactional 64-bit cell. It is the workhorse cell type: data
// structure keys, link handles (arena.Handle values) and all revocable
// reservation metadata are stored in Words.
//
// The zero Word is ready to use and holds zero. Words must not be copied
// after first use.
type Word struct {
	m atomic.Uint64 // version lock
	v atomic.Uint64 // value
}

// Load returns the cell's value as of the transaction's snapshot, aborting
// the transaction (by panicking with an internal sentinel that Atomic
// intercepts) if a consistent value cannot be obtained.
func (w *Word) Load(tx *Tx) uint64 {
	if val, ok := tx.findWrite(&w.m); ok {
		return val
	}
	for spins := 0; ; spins++ {
		v1 := w.m.Load()
		if v1&lockedBit == 0 {
			if v1 > tx.rv {
				// The cell committed after our snapshot; try to slide the
				// snapshot forward instead of aborting. Spelled out (rather
				// than tx.extend(v1)) so the common validation inlines; the
				// lazy-clock advance is GV5-only.
				if newRv := tx.rt.now(); newRv >= v1 {
					tx.extendTo(newRv)
				} else {
					tx.extendTo(tx.advanceClock(v1))
				}
				continue
			}
			val := w.v.Load()
			if w.m.Load() == v1 {
				tx.recordRead(&w.m, v1)
				return val
			}
			// Changed underneath us; retry the double-check.
			continue
		}
		// Locked by a committing writer: wait briefly, then give up.
		if spins >= readLockSpins {
			tx.abort(CauseReadConflict)
		}
		pause(spins)
	}
}

// Store buffers a write of x to the cell; the write takes effect if and
// only if the transaction commits.
func (w *Word) Store(tx *Tx, x uint64) {
	tx.writeWord(&w.m, &w.v, x)
}

// Init sets the cell's value without any transaction. It must only be used
// before the cell is shared (e.g. while initializing a freshly allocated
// node that no other goroutine can reach yet).
func (w *Word) Init(x uint64) { w.v.Store(x) }

// Raw returns the cell's current value without transactional protection.
// It is intended for statistics, debug printing and single-threaded
// verification; the value may be mid-commit torn with respect to other
// cells.
func (w *Word) Raw() uint64 { return w.v.Load() }

// Ptr is a transactional typed pointer cell, provided for library users who
// want to attach arbitrary payloads (e.g. map values) to transactional
// structures. The repository's own data structures use Word cells holding
// arena handles instead.
//
// The zero Ptr holds nil. Ptrs must not be copied after first use.
type Ptr[T any] struct {
	m atomic.Uint64
	v atomic.Pointer[T]
}

// pendingPtr is the deferred write-back object for a Ptr store.
type pendingPtr[T any] struct {
	dst *atomic.Pointer[T]
	val *T
}

func (p *pendingPtr[T]) apply() { p.dst.Store(p.val) }

// Load returns the pointer stored in the cell as of the transaction's
// snapshot.
func (p *Ptr[T]) Load(tx *Tx) *T {
	if obj, ok := tx.findWriteObj(&p.m); ok {
		pp, _ := obj.(*pendingPtr[T])
		return pp.val
	}
	for spins := 0; ; spins++ {
		v1 := p.m.Load()
		if v1&lockedBit == 0 {
			if v1 > tx.rv {
				// As in Word.Load: inline the common extension path.
				if newRv := tx.rt.now(); newRv >= v1 {
					tx.extendTo(newRv)
				} else {
					tx.extendTo(tx.advanceClock(v1))
				}
				continue
			}
			val := p.v.Load()
			if p.m.Load() == v1 {
				tx.recordRead(&p.m, v1)
				return val
			}
			continue
		}
		if spins >= readLockSpins {
			tx.abort(CauseReadConflict)
		}
		pause(spins)
	}
}

// Store buffers a write of x to the cell.
func (p *Ptr[T]) Store(tx *Tx, x *T) {
	tx.writeObj(&p.m, &pendingPtr[T]{dst: &p.v, val: x})
}

// Init sets the cell without a transaction; see Word.Init.
func (p *Ptr[T]) Init(x *T) { p.v.Store(x) }

// Raw returns the current pointer without transactional protection.
func (p *Ptr[T]) Raw() *T { return p.v.Load() }
