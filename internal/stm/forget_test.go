package stm

import (
	"sync"
	"testing"
)

// TestForgetReleasesConflicts: a transaction that early-releases a read
// must survive a concurrent write to that location, while an identical
// transaction that retains the read must abort and retry.
func TestForgetReleasesConflicts(t *testing.T) {
	rt := newTestRuntime()
	var released, retained, out Word
	released.Init(1)
	retained.Init(2)

	// Interleave deterministically with channels: reader reads both cells,
	// then a writer commits to one of them, then the reader writes out and
	// tries to commit.
	for _, forgetIt := range []bool{true, false} {
		attempts := 0
		readerAt := make(chan struct{})
		writerDone := make(chan struct{})
		var once sync.Once
		go func() {
			<-readerAt
			rt.Atomic(func(tx *Tx) { released.Store(tx, released.Load(tx)+10) })
			close(writerDone)
		}()
		rt.Atomic(func(tx *Tx) {
			attempts++
			mark := tx.ReadMark()
			_ = released.Load(tx)
			if forgetIt {
				tx.ForgetReadsBefore(tx.ReadMark())
			}
			_ = mark
			_ = retained.Load(tx)
			once.Do(func() { close(readerAt) })
			<-writerDone
			out.Store(tx, 1) // make it a writing tx so commit validates
		})
		if forgetIt && attempts != 1 {
			t.Fatalf("released read still caused %d attempts", attempts)
		}
		if !forgetIt && attempts < 2 {
			t.Fatalf("retained read did not cause a retry (attempts=%d)", attempts)
		}
	}
}

// TestForgetPrefixSemantics: ForgetReadsBefore releases exactly the reads
// recorded before the mark.
func TestForgetPrefixSemantics(t *testing.T) {
	rt := newTestRuntime()
	cells := make([]Word, 8)
	var out Word
	hits := 0
	step := make(chan struct{}, 1)
	done := make(chan struct{}, 1)
	go func() {
		for range step {
			// Write to cells[0] (which the reader released) only.
			rt.Atomic(func(tx *Tx) { cells[0].Store(tx, cells[0].Load(tx)+1) })
			done <- struct{}{}
		}
	}()
	rt.Atomic(func(tx *Tx) {
		hits++
		_ = cells[0].Load(tx)
		mark := tx.ReadMark()
		_ = cells[1].Load(tx)
		tx.ForgetReadsBefore(mark) // releases cells[0], keeps cells[1]
		if hits == 1 {
			step <- struct{}{}
			<-done
		}
		out.Store(tx, 7)
	})
	close(step)
	if hits != 1 {
		t.Fatalf("tx retried %d times despite releasing the written cell", hits)
	}
}

// TestForgetCompaction drives enough forgets to trigger read-set
// compaction and checks retained reads still validate.
func TestForgetCompaction(t *testing.T) {
	rt := newTestRuntime()
	const n = 4096
	cells := make([]Word, n)
	var out Word
	rt.Atomic(func(tx *Tx) {
		for i := 0; i < n; i++ {
			_ = cells[i].Load(tx)
			if i > 4 {
				// Slide a 4-entry retention window (like an ER traversal).
				tx.ForgetReadsBefore(tx.rsBase + uint64(len(tx.rs)) - 4)
			}
		}
		out.Store(tx, 1)
	})
	if out.Raw() != 1 {
		t.Fatal("compacting transaction failed to commit")
	}
}

// TestForgetWithCapacity: released reads must not count against the
// HTM-simulation capacity (the HTM model is explicitly opted out of by
// using early release).
func TestForgetWithCapacity(t *testing.T) {
	rt := NewRuntime(Profile{Capacity: 16, MaxAttempts: 3})
	cells := make([]Word, 256)
	var out Word
	rt.Atomic(func(tx *Tx) {
		for i := range cells {
			_ = cells[i].Load(tx)
			tx.ForgetReadsBefore(tx.ReadMark() - 2) // keep last 2
		}
		out.Store(tx, 9)
	})
	if out.Raw() != 9 {
		t.Fatal("commit failed")
	}
	if got := rt.Stats().Aborts[CauseCapacity]; got != 0 {
		t.Fatalf("capacity aborts = %d despite early release", got)
	}
}

// TestForgetBoundsClamp: out-of-range marks must be harmless.
func TestForgetBoundsClamp(t *testing.T) {
	rt := newTestRuntime()
	var a, out Word
	rt.Atomic(func(tx *Tx) {
		tx.ForgetReadsBefore(0)        // before anything: no-op
		tx.ForgetReadsBefore(10000000) // far future: clamps to len(rs)
		_ = a.Load(tx)
		out.Store(tx, 1)
	})
	if out.Raw() != 1 {
		t.Fatal("commit failed after clamped forgets")
	}
}

// TestReadMarkMonotonic: marks grow with reads and survive compaction.
func TestReadMarkMonotonic(t *testing.T) {
	rt := newTestRuntime()
	cells := make([]Word, 1024)
	rt.Atomic(func(tx *Tx) {
		last := tx.ReadMark()
		for i := range cells {
			_ = cells[i].Load(tx)
			m := tx.ReadMark()
			if m <= last && i > 0 {
				t.Fatalf("mark went backwards: %d after %d", m, last)
			}
			last = m
			tx.ForgetReadsBefore(m - 1)
		}
	})
}
