package reclaim

import (
	"strings"
	"testing"

	"hohtx/internal/arena"
)

// TestFlushRescansAfterHazardMoves pins the Flush re-scan fix. Freeing one
// retiree can be exactly what lets a traversal move off a second retiree
// (modeled here by a FreeFunc that clears the foreign hazard): a
// single-scan Flush stranded the second node forever, because Flush is the
// thread's final drain.
func TestFlushRescansAfterHazardMoves(t *testing.T) {
	a := arena.New[node](arena.Config{Threads: 2})
	var hp *HazardPointers
	var hA, hB arena.Handle
	hp = NewHazardPointers(HPConfig{
		Threads: 2, ScanThreshold: 100,
		Free: func(tid int, h arena.Handle) {
			if h == hA {
				hp.ClearSlots(1) // thread 1's traversal moves off B
			}
			a.Free(tid, h)
		},
	})
	hA, hB = a.Alloc(0), a.Alloc(0)
	hp.Protect(1, 0, hB)
	hp.Retire(0, hA, 1)
	hp.Retire(0, hB, 2)

	hp.Flush(0, 3)

	if a.Live(hA) || a.Live(hB) {
		t.Fatalf("Flush stranded retirees: Live(A)=%v Live(B)=%v", a.Live(hA), a.Live(hB))
	}
	st := hp.Stats()
	if st.Deferred != 0 || st.Leftover != 0 {
		t.Fatalf("after full drain: deferred=%d leftover=%d, want 0/0", st.Deferred, st.Leftover)
	}
}

// TestFlushExposesLeftover: a retiree that stays hazardous through the
// whole Flush is kept (correct) and must be visible in Stats.Leftover so
// harnesses can assert the stranding is bounded.
func TestFlushExposesLeftover(t *testing.T) {
	a, s := newHarness(2, func(f FreeFunc) Scheme {
		return NewHazardPointers(HPConfig{Threads: 2, ScanThreshold: 100, Free: f})
	})
	hA, hB := a.Alloc(0), a.Alloc(0)
	s.Protect(1, 0, hB)
	s.Retire(0, hA, 1)
	s.Retire(0, hB, 2)

	s.Flush(0, 3)
	if a.Live(hA) {
		t.Fatal("unprotected retiree survived Flush")
	}
	if !a.Live(hB) {
		t.Fatal("hazardous retiree was freed under a live hazard")
	}
	if left := s.Stats().Leftover; left != 1 {
		t.Fatalf("Leftover = %d with one stranded retiree, want 1", left)
	}

	s.ClearSlots(1)
	s.Flush(0, 4)
	if a.Live(hB) {
		t.Fatal("retiree survived Flush after the hazard cleared")
	}
	if left := s.Stats().Leftover; left != 0 {
		t.Fatalf("Leftover = %d after full drain, want 0", left)
	}
}

// TestEpochRetireBracketGuard pins the guard-mode assertion: a Retire
// outside an Enter/Exit bracket looks quiescent to the epoch advancer, so
// the retiree can be freed under a concurrent reader. With Guard set this
// must panic; without it the (legacy, unchecked) behavior stands.
func TestEpochRetireBracketGuard(t *testing.T) {
	a := arena.New[node](arena.Config{Threads: 2})
	e := NewEpochs(2, 1, func(tid int, h arena.Handle) { a.Free(tid, h) })
	e.Guard = true

	e.Enter(0)
	e.Retire(0, a.Alloc(0), 1) // bracketed: fine
	e.Exit(0)

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("unbracketed Retire did not panic with Guard set")
			}
			if msg, _ := r.(string); !strings.Contains(msg, "Enter/Exit bracket") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		e.Retire(0, a.Alloc(0), 2)
	}()

	e.Guard = false
	e.Retire(0, a.Alloc(0), 3) // unguarded: tolerated for compatibility
}
