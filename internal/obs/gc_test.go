package obs

import (
	"runtime"
	"testing"
)

// TestReadGCStats checks the cumulative counters move when the program
// allocates and collects: the panel must reflect real runtime activity,
// not zero-valued placeholder gauges.
func TestReadGCStats(t *testing.T) {
	before := ReadGCStats()
	garbage := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		garbage = append(garbage, make([]byte, 1024))
	}
	_ = garbage
	runtime.GC()
	after := ReadGCStats()
	if after.Cycles <= before.Cycles {
		t.Errorf("gc cycles did not advance across runtime.GC(): %d -> %d", before.Cycles, after.Cycles)
	}
	if after.AllocObjects < before.AllocObjects+1024 {
		t.Errorf("alloc objects %d -> %d, want +1024 at least", before.AllocObjects, after.AllocObjects)
	}
	if after.AllocBytes < before.AllocBytes+1024*1024 {
		t.Errorf("alloc bytes %d -> %d, want +1MiB at least", before.AllocBytes, after.AllocBytes)
	}
}

// TestGCSnapshot checks the synthetic domain's shape: the three gauges in
// order, and (after a forced collection) a populated pause histogram in
// the repo's log₂-ns bucket layout.
func TestGCSnapshot(t *testing.T) {
	runtime.GC()
	s := GCSnapshot()
	if s.Name != "runtime-gc" {
		t.Fatalf("name = %q", s.Name)
	}
	want := []string{"gc_cycles", "heap_allocs_objects", "heap_allocs_bytes"}
	if len(s.Gauges) != len(want) {
		t.Fatalf("gauges = %+v, want %v", s.Gauges, want)
	}
	for i, g := range s.Gauges {
		if g.Name != want[i] {
			t.Errorf("gauge %d = %q, want %q", i, g.Name, want[i])
		}
		if g.Value == 0 {
			t.Errorf("gauge %s = 0 after runtime.GC()", g.Name)
		}
	}
	h, ok := s.Hist("gc_pause")
	if !ok {
		t.Fatalf("no gc_pause histogram in %+v", s.Histograms)
	}
	if h.Count == 0 || h.Unit != "ns" {
		t.Errorf("gc_pause count=%d unit=%q, want populated ns histogram", h.Count, h.Unit)
	}
	if h.P99 == 0 || h.P99 < h.P50 {
		t.Errorf("gc_pause quantiles p50=%d p99=%d", h.P50, h.P99)
	}
	// Sanity: a STW pause is under a second; a mapping bug (seconds kept
	// as seconds, or a 1e9 slip) would land buckets wildly off.
	if h.Max > uint64(10_000_000_000) {
		t.Errorf("gc_pause max = %dns, implausibly long", h.Max)
	}
}

// TestRegistrySnapshotsIncludeGC checks the panel rides along on the
// export surface even with no registered domains.
func TestRegistrySnapshotsIncludeGC(t *testing.T) {
	snaps := NewRegistry().Snapshots()
	for _, s := range snaps {
		if s.Name == "runtime-gc" {
			return
		}
	}
	t.Fatalf("runtime-gc missing from %d snapshots", len(snaps))
}
