package reclaim

import (
	"hohtx/internal/arena"
	"hohtx/internal/obs"
)

// observer is embedded in every scheme so SetObserver promotes uniformly.
// With no probe attached each instrumented site costs one nil check; the
// physical-free flight event is the arena's job (it sees every free), so
// the scheme layer contributes the retire events and the retire→free
// delay distribution that Stats.DelayOpsSum only aggregates.
type observer struct {
	probe *obs.ReclaimProbe
}

// SetObserver attaches an obs probe to the scheme (nil detaches). Wire it
// before the scheme is shared, as the data structure constructors do.
func (o *observer) SetObserver(p *obs.ReclaimProbe) { o.probe = p }

// noteRetireEv logs a sampled retirement.
func (o *observer) noteRetireEv(tid int, h arena.Handle) {
	if p := o.probe; p != nil && p.D.Sampled(uint64(tid)) {
		p.Rec.Emit(tid, obs.EvRetire, 0, uint64(h), 0)
	}
}

// noteFreeEv records a sampled retire→free delay (in operation stamps).
func (o *observer) noteFreeEv(tid int, delay uint64) {
	if p := o.probe; p != nil && p.D.Sampled(uint64(tid)) {
		p.DelayOps.RecordAt(uint64(tid), delay)
	}
}

// reclaimSpan returns the request span armed on tid, if the serving layer
// is tracing — the deferred schemes stamp their scan/drain time onto it
// as the Reclaim phase, so a request that happened to amortize a big
// reclamation batch shows that in its slowlog breakdown instead of the
// time being smeared into the operation. Unlike the flight events above,
// span stamping is not sampled: the slowlog must capture outliers.
func (o *observer) reclaimSpan(tid int) *obs.Span {
	if p := o.probe; p != nil {
		return p.D.SpanOf(tid)
	}
	return nil
}
