package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

// TestLineScannerShortLines checks the common path: lines inside the
// reader buffer come back trimmed, in order, aliasing the bufio buffer.
func TestLineScannerShortLines(t *testing.T) {
	src := "GET 1\nSET 2\r\nDEL 3\r\r\n\n"
	sc := NewLineScanner(bufio.NewReaderSize(strings.NewReader(src), 64))
	want := []string{"GET 1", "SET 2", "DEL 3", ""}
	for i, w := range want {
		line, err := sc.Line()
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if string(line) != w {
			t.Fatalf("line %d = %q, want %q", i, line, w)
		}
	}
	if _, err := sc.Line(); err != io.EOF {
		t.Fatalf("after end: err = %v, want EOF", err)
	}
}

// TestLineScannerGrowAndRetry drives lines far past the reader buffer
// through the grow-and-retry path and checks they parse identically to
// what bufio.ReadString would have produced.
func TestLineScannerGrowAndRetry(t *testing.T) {
	long := strings.Repeat("x", 5000)
	src := "short\n" + long + "\r\n" + "tail\n"
	sc := NewLineScanner(bufio.NewReaderSize(strings.NewReader(src), 64))
	for i, w := range []string{"short", long, "tail"} {
		line, err := sc.Line()
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if string(line) != w {
			t.Fatalf("line %d: got %d bytes (%q...), want %d", i, len(line), line[:min(16, len(line))], len(w))
		}
	}
}

// TestLineScannerUnterminatedTail mirrors the ReadString contract the
// serving loop relies on: a final line with no newline comes back with
// its data AND a non-nil error, so the server can answer the request
// before dropping the connection.
func TestLineScannerUnterminatedTail(t *testing.T) {
	for _, tail := range []string{"GET 7", strings.Repeat("9", 300)} {
		sc := NewLineScanner(bufio.NewReaderSize(strings.NewReader("LEN\n"+tail), 64))
		if line, err := sc.Line(); err != nil || string(line) != "LEN" {
			t.Fatalf("first line = %q, %v", line, err)
		}
		line, err := sc.Line()
		if err == nil {
			t.Fatalf("unterminated tail: want error, got nil (line %q)", line)
		}
		if string(line) != tail {
			t.Fatalf("unterminated tail = %q, want %q", line, tail)
		}
	}
}

func TestParseUintBytes(t *testing.T) {
	cases := []string{"0", "1", "007", "42", "18446744073709551615", // max uint64
		"", "-1", "+1", " 1", "1 ", "x", "12x", "18446744073709551616", "99999999999999999999"}
	for _, c := range cases {
		want, werr := strconv.ParseUint(c, 10, 64)
		got, ok := parseUintBytes([]byte(c))
		if ok != (werr == nil) || (ok && got != want) {
			t.Errorf("parseUintBytes(%q) = %d,%v; strconv = %d,%v", c, got, ok, want, werr)
		}
	}
}

func TestParseIntBytes(t *testing.T) {
	for _, c := range []string{"0", "1", "-3", "+3", "4096", "", "-", "x", "1.5"} {
		want, werr := strconv.Atoi(c)
		got, ok := parseIntBytes([]byte(c))
		if ok != (werr == nil) || (ok && got != want) {
			t.Errorf("parseIntBytes(%q) = %d,%v; strconv = %d,%v", c, got, ok, want, werr)
		}
	}
}

// TestWireErrMessages pins the rendered diagnoses byte-for-byte to the
// fmt.Errorf strings the protocol has always produced, so replacing the
// heap-allocated errors with value diagnoses is invisible on the wire.
func TestWireErrMessages(t *testing.T) {
	const maxKey = 9999
	cases := []struct {
		we   wireErr
		want string
	}{
		{wireErr{code: errMissingKey}, "missing key"},
		{wireErr{code: errBadKey, arg: []byte("zero")}, fmt.Sprintf("bad key %q", "zero")},
		{wireErr{code: errBadKey, arg: []byte("1\x00x")}, fmt.Sprintf("bad key %q", "1\x00x")},
		{wireErr{code: errKeyRange, key: 123456}, fmt.Sprintf("key %d out of range [1, %d]", 123456, maxKey)},
		{wireErr{code: errNotKeyOp}, "not a key op"},
	}
	for _, c := range cases {
		if got := string(appendWireErr(nil, c.we, maxKey)); got != c.want {
			t.Errorf("appendWireErr(%+v) = %q, want %q", c.we, got, c.want)
		}
	}
}

func TestCutSpace(t *testing.T) {
	if v, r := cutSpace([]byte("SET 42")); string(v) != "SET" || string(r) != "42" {
		t.Fatalf("cutSpace(SET 42) = %q, %q", v, r)
	}
	if v, r := cutSpace([]byte("LEN")); string(v) != "LEN" || r != nil {
		t.Fatalf("cutSpace(LEN) = %q, %v", v, r)
	}
	if v, r := cutSpace([]byte("ASCEND 1 8")); string(v) != "ASCEND" || string(r) != "1 8" {
		t.Fatalf("cutSpace = %q, %q", v, r)
	}
}

func TestTrimEOL(t *testing.T) {
	for in, want := range map[string]string{
		"a\n": "a", "a\r\n": "a", "a\r\r\n": "a", "a": "a", "\n": "", "": "",
	} {
		if got := string(trimEOL([]byte(in))); got != want {
			t.Errorf("trimEOL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestScannerMatchesReadString cross-checks the scanner against the old
// ReadString+TrimRight framing over a mixed stream, including a line that
// exactly fills the buffer (the off-by-one ErrBufferFull case).
func TestScannerMatchesReadString(t *testing.T) {
	var src bytes.Buffer
	for i := 0; i < 40; i++ {
		src.WriteString(strings.Repeat("k", i*7) + "\n")
	}
	src.WriteString(strings.Repeat("z", 64) + "\n") // exactly the buffer size with \n past it
	ref := bufio.NewReader(bytes.NewReader(src.Bytes()))
	sc := NewLineScanner(bufio.NewReaderSize(bytes.NewReader(src.Bytes()), 64))
	for {
		wantLine, wantErr := ref.ReadString('\n')
		line, err := sc.Line()
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("err mismatch: scanner %v, ReadString %v", err, wantErr)
		}
		if got, want := string(line), strings.TrimRight(wantLine, "\r\n"); got != want {
			t.Fatalf("line mismatch: %q vs %q", got, want)
		}
		if err != nil {
			break
		}
	}
}
