// Package sets defines the concurrent ordered-set abstraction shared by
// every data structure in this repository — the hand-over-hand
// transactional lists and trees, the single-transaction (HTM-baseline)
// variants, and the lock-free comparators — so the benchmark harness and
// the cross-implementation conformance tests can drive them uniformly.
package sets

import (
	"errors"
	"sort"
)

// Set is a concurrent set of uint64 keys. Keys must lie in [1, 1<<62);
// implementations reserve 0 and the topmost values for sentinels.
//
// Register must be called once per thread id before that thread's first
// operation; concurrent callers must use distinct tids in [0, threads).
// Finish must be called once per thread after its last operation (it
// flushes deferred reclamation so memory accounting converges).
type Set interface {
	Register(tid int)
	// Lookup reports whether key is present.
	Lookup(tid int, key uint64) bool
	// Insert adds key; it returns false if key was already present.
	Insert(tid int, key uint64) bool
	// Remove deletes key; it returns false if key was absent.
	Remove(tid int, key uint64) bool
	// Finish flushes the thread's deferred work (no-op for precise
	// reclamation variants).
	Finish(tid int)
	// Snapshot returns the current keys in ascending order. It is only
	// safe to call while no operations are in flight (tests and
	// benchmark verification).
	Snapshot() []uint64
	// Name is the variant's label in benchmark output (e.g. "RR-XO",
	// "HTM", "TMHP", "LFLeak").
	Name() string
	// Apply executes ops in order and returns one result per op, with the
	// same meaning as the corresponding single-op method. Transactional
	// implementations run the whole batch inside ONE transaction — one
	// snapshot, one commit — so the batch is atomic (all-or-nothing, and
	// later ops observe earlier ops' effects via read-own-writes). A batch
	// whose footprint exceeds the transaction capacity falls back to
	// serial-mode execution; it still commits atomically, just without
	// speculation. Non-transactional baselines (package lockfree) and the
	// sharded facade execute per-op / per-shard and document the weaker
	// guarantee; see ApplyEach and serve.Sharded.
	Apply(tid int, ops []Op) []Result
}

// ErrScanUnsupported is returned by Ascend when the variant cannot run a
// reservation cursor (the deferred-reclamation baselines have no revocable
// position to hold, so a hand-over-hand scan would dereference reclaimed
// nodes). Callers — the serve layer in particular — must treat it as a
// capability miss, not a crash: it replaces the panic that used to make a
// misconfigured variant remotely killable.
var ErrScanUnsupported = errors.New("sets: scan unsupported by this variant")

// Ascender is implemented by sets that support windowed ascending
// iteration with the cursor position held as a revocable reservation.
//
// Ascend visits keys ≥ from in ascending order until fn returns false or
// the set is exhausted. The iteration is weakly consistent, in the style
// of sync.Map.Range: it does NOT freeze a snapshot. Keys present for the
// whole scan are delivered exactly once; keys inserted or removed
// concurrently may or may not be delivered; delivered keys are strictly
// ascending (so nothing is delivered twice). If a concurrent writer
// revokes the cursor's reservation, the cursor re-navigates from its last
// delivered key — position is durable by key, not by node.
//
// Implementations that cannot scan return ErrScanUnsupported without
// calling fn.
type Ascender interface {
	Ascend(tid int, from uint64, fn func(key uint64) bool) error
}

// OpKind selects a batch operation.
type OpKind uint8

const (
	// OpLookup tests presence (wire verb GET).
	OpLookup OpKind = iota
	// OpInsert adds the key (wire verb SET).
	OpInsert
	// OpRemove deletes the key (wire verb DEL).
	OpRemove
)

// Op is one operation of a batch.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Result is one op's outcome, identical in meaning to the single-op
// methods' boolean return.
type Result = bool

// ApplyEach executes ops one at a time through the single-op methods. It
// is the non-atomic fallback for implementations without a batch
// transaction (the lock-free baselines): results are individually
// linearizable but the batch as a whole is not.
func ApplyEach(s Set, tid int, ops []Op) []Result {
	out := make([]Result, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			out[i] = s.Insert(tid, op.Key)
		case OpRemove:
			out[i] = s.Remove(tid, op.Key)
		default:
			out[i] = s.Lookup(tid, op.Key)
		}
	}
	return out
}

// MemoryReporter is implemented by variants whose node memory is
// observable (all arena-backed structures). LiveNodes counts allocated
// and not-yet-freed nodes, including any sentinels; DeferredNodes counts
// nodes logically deleted but not physically freed (zero for precise
// schemes, which is the paper's headline property).
type MemoryReporter interface {
	LiveNodes() uint64
	DeferredNodes() uint64
}

// KeysEqual reports whether got (already sorted) equals want (any order);
// it sorts a copy of want.
func KeysEqual(got, want []uint64) bool {
	if len(got) != len(want) {
		return false
	}
	w := append([]uint64(nil), want...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range got {
		if got[i] != w[i] {
			return false
		}
	}
	return true
}
