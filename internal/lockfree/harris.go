// Package lockfree implements the nonblocking comparator data structures
// the paper evaluates against: the Harris–Michael lock-free linked list
// (Harris DISC 2001, Michael SPAA 2002) in both leaky (LFLeak) and
// hazard-pointer (LFHP) flavors, and the Natarajan–Mittal lock-free
// external binary search tree (PPoPP 2014), which — as the paper notes of
// the SynchroBench version — leaks memory.
//
// Links are arena handles stored in atomic words; logical-deletion marks
// and the NM tree's flag/tag bits live in the handles' reserved user bits.
// Because handles embed slot generations, compare-and-swap on links is
// ABA-safe across node recycling.
package lockfree

import (
	"runtime"
	"sync/atomic"

	"hohtx/internal/arena"
	"hohtx/internal/pad"
	"hohtx/internal/reclaim"
	"hohtx/internal/sets"
)

// markBit flags a link whose source node is logically deleted
// (Harris-style). It is one of the arena's reserved user bits.
const markBit = uint64(1) << 63

func marked(raw uint64) bool { return raw&markBit != 0 }
func clearMark(raw uint64) arena.Handle {
	return arena.Handle(raw &^ markBit)
}

// lfNode is a list node. key is written once before the node is published
// and never changes while the node is reachable; hazard-pointer recycling
// guarantees no reader holds the node when it is reused.
type lfNode struct {
	key  uint64
	next atomic.Uint64
	_    pad.Line
}

// HarrisList is the lock-free sorted linked list. The reclamation scheme
// decides the variant: reclaim.Leak never frees removed nodes (the paper's
// LFLeak, approximating an ideal deferred reclaimer), reclaim.HazardPointers
// frees them once unprotected (LFHP).
type HarrisList struct {
	ar        *arena.Arena[lfNode]
	rec       reclaim.Scheme
	head      arena.Handle
	leak      bool
	yieldMask uint64 // nonzero enables simulated preemption in find
	ops       []opCounter
}

type opCounter struct {
	n uint64
	_ pad.Line
}

var _ sets.Set = (*HarrisList)(nil)
var _ sets.MemoryReporter = (*HarrisList)(nil)

// ListConfig parameterizes NewHarrisList.
type ListConfig struct {
	// Threads is the number of distinct tids. Required.
	Threads int
	// UseHazardPointers selects LFHP; otherwise the list leaks (LFLeak).
	UseHazardPointers bool
	// ScanThreshold is the hazard batch size (default 64, the paper's
	// best setting: "reclaim after 64 deletions").
	ScanThreshold int
	// ArenaPolicy selects the allocator free-list policy.
	ArenaPolicy arena.Policy
	// YieldShift enables simulated preemption: traversals yield the
	// processor every 1<<YieldShift node visits, so that lock-free
	// operations interleave on a single-core host the way they would on
	// the paper's multicore machine. Zero disables it.
	YieldShift uint8
}

// NewHarrisList constructs the list with a head sentinel.
func NewHarrisList(cfg ListConfig) *HarrisList {
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	l := &HarrisList{
		ar:   arena.New[lfNode](arena.Config{Threads: cfg.Threads, Policy: cfg.ArenaPolicy}),
		ops:  make([]opCounter, cfg.Threads),
		leak: !cfg.UseHazardPointers,
	}
	if cfg.YieldShift != 0 {
		l.yieldMask = 1<<cfg.YieldShift - 1
	}
	if cfg.UseHazardPointers {
		l.rec = reclaim.NewHazardPointers(reclaim.HPConfig{
			Threads:        cfg.Threads,
			SlotsPerThread: 3,
			ScanThreshold:  cfg.ScanThreshold,
			Free:           func(tid int, h arena.Handle) { l.ar.Free(tid, h) },
		})
	} else {
		l.rec = reclaim.NewLeak(cfg.Threads)
	}
	l.head = l.ar.Alloc(0)
	n := l.ar.At(l.head)
	n.key = 0
	n.next.Store(0)
	return l
}

// Name implements sets.Set.
func (l *HarrisList) Name() string {
	if l.leak {
		return "LFLeak"
	}
	return "LFHP"
}

// Register implements sets.Set.
func (l *HarrisList) Register(tid int) {}

// Finish implements sets.Set.
func (l *HarrisList) Finish(tid int) {
	l.rec.ClearSlots(tid)
	l.rec.Flush(tid, l.ops[tid].n)
}

// Apply implements sets.Set. The lock-free baseline has no transactions to
// merge into, so ops execute one at a time: results are individually
// linearizable but the batch is NOT atomic.
func (l *HarrisList) Apply(tid int, ops []sets.Op) []sets.Result {
	return sets.ApplyEach(l, tid, ops)
}

// find locates the first node with key >= key, physically unlinking any
// marked nodes it passes (Michael's helping). On return, curr (possibly
// Nil) is protected by hazard slot 1 and prev by slot 2, and
// *prevCell == currH held after both hazards were published.
func (l *HarrisList) find(tid int, key uint64) (prevCell *atomic.Uint64, currH arena.Handle, currKey uint64, found bool) {
	visits := uint64(tid)
retry:
	for {
		prevH := l.head
		l.rec.Protect(tid, 2, prevH)
		prevCell = &l.ar.At(prevH).next
		currRaw := prevCell.Load()
		for {
			visits++
			if l.yieldMask != 0 && visits&l.yieldMask == 0 {
				runtime.Gosched() // simulated preemption point
			}
			if marked(currRaw) {
				// prev itself was logically deleted: its next carries the
				// mark, so this edge must not be treated as clean.
				continue retry
			}
			currH = clearMark(currRaw)
			if currH.IsNil() {
				return prevCell, arena.Nil, 0, false
			}
			l.rec.Protect(tid, 1, currH)
			if prevCell.Load() != currRaw {
				continue retry // prev changed under us: restart
			}
			n := l.ar.At(currH)
			nextRaw := n.next.Load()
			if marked(nextRaw) {
				// curr is logically deleted: unlink it (helping).
				if !prevCell.CompareAndSwap(currRaw, uint64(clearMark(nextRaw))) {
					continue retry
				}
				l.retire(tid, currH)
				currRaw = uint64(clearMark(nextRaw))
				continue
			}
			ck := n.key
			if prevCell.Load() != currRaw {
				continue retry // curr may have been unlinked; revalidate
			}
			if ck >= key {
				return prevCell, currH, ck, ck == key
			}
			// Advance: curr becomes prev (move its hazard to slot 2).
			l.rec.Protect(tid, 2, currH)
			prevCell = &n.next
			currRaw = nextRaw
		}
	}
}

func (l *HarrisList) retire(tid int, h arena.Handle) {
	l.rec.Retire(tid, h, l.ops[tid].n)
}

// Lookup implements sets.Set.
func (l *HarrisList) Lookup(tid int, key uint64) bool {
	l.ops[tid].n++
	_, _, _, found := l.find(tid, key)
	l.rec.ClearSlots(tid)
	return found
}

// Insert implements sets.Set.
func (l *HarrisList) Insert(tid int, key uint64) bool {
	l.ops[tid].n++
	defer l.rec.ClearSlots(tid)
	var nh arena.Handle
	for {
		prevCell, currH, _, found := l.find(tid, key)
		if found {
			if !nh.IsNil() {
				l.ar.Free(tid, nh) // never published: free directly
			}
			return false
		}
		if nh.IsNil() {
			nh = l.ar.Alloc(tid)
			l.ar.At(nh).key = key
		}
		l.ar.At(nh).next.Store(uint64(currH))
		if prevCell.CompareAndSwap(uint64(currH), uint64(nh)) {
			return true
		}
	}
}

// Remove implements sets.Set: mark first (logical delete), then attempt
// the physical unlink, falling back to find's helping on failure.
func (l *HarrisList) Remove(tid int, key uint64) bool {
	l.ops[tid].n++
	defer l.rec.ClearSlots(tid)
	for {
		prevCell, currH, _, found := l.find(tid, key)
		if !found {
			return false
		}
		n := l.ar.At(currH)
		nextRaw := n.next.Load()
		if marked(nextRaw) {
			continue // someone else is deleting it; help via find
		}
		if !n.next.CompareAndSwap(nextRaw, nextRaw|markBit) {
			continue
		}
		// Logical delete succeeded; try to unlink, else find() will.
		if prevCell.CompareAndSwap(uint64(currH), nextRaw) {
			l.retire(tid, currH)
		} else {
			l.find(tid, key)
		}
		return true
	}
}

// Snapshot implements sets.Set (quiescence required).
func (l *HarrisList) Snapshot() []uint64 {
	var out []uint64
	for raw := l.ar.At(l.head).next.Load(); ; {
		h := clearMark(raw)
		if h.IsNil() {
			return out
		}
		n := l.ar.At(h)
		if !marked(n.next.Load()) {
			out = append(out, n.key)
		}
		raw = n.next.Load()
	}
}

// LiveNodes implements sets.MemoryReporter.
func (l *HarrisList) LiveNodes() uint64 { return l.ar.Stats().Live }

// DeferredNodes implements sets.MemoryReporter: for the leaky variant this
// is every node ever removed (the unbounded memory growth the paper
// contrasts with precise reclamation).
func (l *HarrisList) DeferredNodes() uint64 { return l.rec.Stats().Deferred }

// ReclaimStats exposes the reclamation counters.
func (l *HarrisList) ReclaimStats() reclaim.Stats { return l.rec.Stats() }

// PeakDeferred reports the deferred-node high-water mark.
func (l *HarrisList) PeakDeferred() uint64 { return l.rec.Stats().PeakDeferred }

// AvgReclaimDelayOps reports the mean operations between logical deletion
// and physical free (undefined/0 for the leaky variant, which never frees).
func (l *HarrisList) AvgReclaimDelayOps() float64 { return l.rec.Stats().AvgDelayOps() }
