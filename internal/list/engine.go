package list

import (
	"hohtx/internal/arena"
	"hohtx/internal/stm"
)

// The hand-over-hand window engine (Listing 5's Apply), shared by the
// singly and doubly linked lists. Each iteration of the outer loop runs
// one window transaction; the traversal position is carried across
// transactions by the mode's linking mechanism:
//
//	ModeRR    — a revocable reservation on the window-start node
//	ModeHTM   — never cuts (the whole operation is one transaction)
//	ModeTMHP  — a thread-local start handle + a published hazard pointer
//	ModeTMHE  — a thread-local start handle + a published era reservation
//	ModeTMVBR — a thread-local start handle, revalidated on resume
//	ModeREF   — a thread-local start handle + a transactional refcount
//
// TMHP's resume protocol deserves a note. A window ends by publishing a
// hazard on the new start node and *then* transactionally loading its
// dead flag. Atomics are sequentially consistent, so if a concurrent
// remover's hazard scan missed our publication, the scan (and hence the
// remover's commit, which precedes its retire) happened before our load —
// which must then observe a bumped version, fail snapshot extension
// against the unlink write we read past, and abort this window. Either
// the node is protected or we never resume from it.
//
// TMHE runs the same protocol with "hazard" read as "era reservation":
// the published era E satisfies birth <= E (the node was allocated before
// we observed it; eras only grow) and, when a remover's scan sees the
// publication, del >= E (the retire stamps an era at least as new), so E
// lies inside the retiree's lifetime interval and the scan keeps it.
// If the scan instead missed the publication, the TMHP ordering argument
// applies unchanged and the dead load kills the resume.
//
// TMVBR publishes nothing, so the held start node can be freed — and its
// arena slot recycled — between windows. Resume therefore revalidates:
// check arena generation liveness, transactionally load the dead flag,
// then re-check liveness. A free between the two checks either poisons
// the load's version (the retire fence lifts the cell above any read
// version that could still validate, so the transaction cannot commit a
// stale read) or is caught by the second liveness check before the
// traversal trusts a wrong-incarnation value. Once a live, not-dead read
// of the correct incarnation is pinned in the read set, any later free
// dooms the transaction at validation — the fence is what makes "no
// reservation at all" sound here, exactly as in VBR's checkpoint scheme.

// applyFn is a terminal-phase callback; prevH's successor is currH at the
// transaction's snapshot. For the found callback currH holds the key; for
// the not-found callback currH is the first node with a larger key (or
// Nil) and an insert belongs between prevH and currH.
type applyFn func(tx *stm.Tx, prevH, currH arena.Handle) bool

// apply runs one set operation. If reserveFound is true, a successful
// found-terminal leaves the operation's linking mechanism attached to
// currH instead of releasing it (phase one of the doubly linked list's
// two-transaction remove, §4.2) and returns currH as target.
func (l *List) apply(tid int, key uint64, reserveFound bool, onFound, onNotFound applyFn) (res bool, target arena.Handle) {
	return l.applyAt(tid, key, l.head, reserveFound, onFound, onNotFound)
}

// applyAt is apply with an explicit traversal root, letting one List's
// machinery serve many independent chains (the hash table's buckets).
func (l *List) applyAt(tid int, key uint64, head arena.Handle, reserveFound bool, onFound, onNotFound applyFn) (res bool, target arena.Handle) {
	ts := &l.threads[tid]
	ts.ops++
	if l.ep != nil {
		// ModeER: the whole operation is one epoch-protected critical
		// section, so nodes its released reads still point at cannot be
		// physically reclaimed underneath it.
		l.ep.Enter(tid)
		defer l.ep.Exit(tid)
	}
	for {
		done := false
		l.rt.AtomicT(tid, func(tx *stm.Tx) {
			// Reset per attempt: the closure re-runs on abort.
			done = false
			res = false
			target = arena.Nil

			win := l.window()
			startH, held := l.windowStart(tx, tid, head)
			var budget int
			if held {
				budget = win.Next()
			} else {
				startH = head
				budget = win.First(tx)
			}
			if l.mode == ModeER {
				// One unbounded transaction; W instead bounds the
				// retained read suffix (the rolling early release below).
				budget = int(^uint(0) >> 1)
			}

			prevH := startH
			currH := l.loadLink(tx, tid, prevH, &l.ar.At(prevH).next)
			steps := 0
			var k uint64
			for !currH.IsNil() {
				if l.mode == ModeER {
					// Keep only the last W spine nodes' reads under
					// conflict detection; everything older is released.
					w := len(ts.marks)
					if steps >= w {
						tx.ForgetReadsBefore(ts.marks[steps%w])
					}
					ts.marks[steps%w] = tx.ReadMark()
				}
				k = l.loadWord(tx, tid, currH, &l.ar.At(currH).key)
				if k >= key || steps >= budget {
					break
				}
				prevH = currH
				currH = l.loadLink(tx, tid, currH, &l.ar.At(currH).next)
				steps++
			}

			switch {
			case !currH.IsNil() && k == key:
				res = onFound(tx, prevH, currH)
				if reserveFound {
					l.windowHold(tx, tid, held, startH, currH)
					target = currH
				} else {
					l.windowTerminal(tx, tid, held, startH)
				}
				done = true
			case currH.IsNil() || k > key:
				res = onNotFound(tx, prevH, currH)
				l.windowTerminal(tx, tid, held, startH)
				done = true
			default:
				// Budget exhausted mid-traversal: hand over to the next
				// window at currH.
				l.windowHold(tx, tid, held, startH, currH)
			}
		})
		if done {
			return res, target
		}
	}
}

// windowStart resolves where this window begins and whether the thread is
// resuming with a live hold on that position.
func (l *List) windowStart(tx *stm.Tx, tid int, head arena.Handle) (arena.Handle, bool) {
	switch l.mode {
	case ModeRR:
		if r := l.rr.Get(tx, tid); r != 0 {
			return arena.Handle(r), true
		}
		// Nil, released, revoked, or (relaxed) spuriously lost: restart
		// from the head.
		return head, false
	case ModeTMHP:
		s := l.threads[tid].start
		if s.IsNil() {
			return head, false
		}
		if l.loadWord(tx, tid, s, &l.ar.At(s).dead) != 0 {
			// The start was removed since our last window; its memory is
			// still pinned by our hazard, so the flag is trustworthy.
			return head, false
		}
		return s, true
	case ModeTMHE:
		s := l.threads[tid].start
		if s.IsNil() {
			return head, false
		}
		if l.loadWord(tx, tid, s, &l.ar.At(s).dead) != 0 {
			// Removed since our last window; pinned by our era reservation,
			// so the flag is trustworthy (same argument as TMHP).
			return head, false
		}
		return s, true
	case ModeTMVBR:
		s := l.threads[tid].start
		if s.IsNil() || !l.ar.Live(s) {
			// Nothing pins the start between windows: it may have been
			// freed and its slot recycled. A generation mismatch means a
			// different incarnation lives there now — restart.
			return head, false
		}
		if l.loadWord(tx, tid, s, &l.ar.At(s).dead) != 0 {
			return head, false
		}
		if !l.ar.Live(s) {
			// Freed (and possibly recycled) between the liveness check and
			// the dead load: the value we read may belong to the new
			// incarnation, so it proves nothing about the node we held.
			return head, false
		}
		return s, true
	case ModeREF:
		s := l.threads[tid].start
		if s.IsNil() {
			return head, false
		}
		if l.loadWord(tx, tid, s, &l.ar.At(s).dead) != 0 {
			// Give back our count on the removed node and restart.
			l.refDecrement(tx, tid, s)
			return head, false
		}
		return s, true
	default: // ModeHTM
		return head, false
	}
}

// windowHold attaches the thread's linking mechanism to currH (releasing
// the previous hold) so the next transaction may resume there.
func (l *List) windowHold(tx *stm.Tx, tid int, held bool, startH, currH arena.Handle) {
	ts := &l.threads[tid]
	switch l.mode {
	case ModeRR:
		if held {
			l.rr.Release(tx, tid)
		}
		l.rr.Reserve(tx, tid, uint64(currH))
	case ModeTMHP:
		slot := ts.parity & 1
		l.hp.Protect(tid, slot, currH)
		// Ordering re-check; see the protocol note atop this file.
		_ = l.loadWord(tx, tid, currH, &l.ar.At(currH).dead)
		tx.OnCommitCall(l.holdHook, uint64(int64(tid)), uint64(currH), uint64(slot))
	case ModeTMHE:
		slot := ts.parity & 1
		l.he.Protect(tid, slot, currH)
		// Ordering re-check; see the protocol note atop this file.
		_ = l.loadWord(tx, tid, currH, &l.ar.At(currH).dead)
		tx.OnCommitCall(l.holdHook, uint64(int64(tid)), uint64(currH), uint64(slot))
	case ModeTMVBR:
		// No reservation to publish; windowStart revalidates on resume.
		tx.OnCommitCall(l.holdHook, uint64(int64(tid)), uint64(currH), 0)
	case ModeREF:
		n := l.ar.At(currH)
		n.rc.Store(tx, l.loadWord(tx, tid, currH, &n.rc)+1)
		if held {
			l.refDecrement(tx, tid, startH)
		}
		tx.OnCommitCall(l.holdHook, uint64(int64(tid)), uint64(currH), 0)
	default: // ModeHTM: unbounded windows never cut or hold
	}
}

// windowTerminal releases the thread's hold (if any) at operation end.
func (l *List) windowTerminal(tx *stm.Tx, tid int, held bool, startH arena.Handle) {
	switch l.mode {
	case ModeRR:
		if held {
			l.rr.Release(tx, tid)
		}
	case ModeTMHP, ModeTMHE, ModeTMVBR:
		tx.OnCommitCall(l.termHook, uint64(int64(tid)), 0, 0)
	case ModeREF:
		if held {
			l.refDecrement(tx, tid, startH)
		}
		tx.OnCommitCall(l.termHook, uint64(int64(tid)), 0, 0)
	}
}
