package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func cell(variant string, threads, shards int, mops, relStddev float64, p99 uint64) Cell {
	return Cell{
		Family: "server", Variant: variant, Threads: threads, Shards: shards,
		Conns: 4, Depth: 8, ReadPct: 50,
		Mops: mops, RelStddev: relStddev, OpP99Ns: p99,
	}
}

// TestDiffRegressionGate pins the tolerance-band semantics the CI trend
// gate relies on: drops inside tolerance+stddev pass, drops beyond it
// fail with an explanatory Why, and improvements never trip the gate.
func TestDiffRegressionGate(t *testing.T) {
	old := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 1.00, 0.05, 10_000),
		cell("RR-V", 4, 4, 1.00, 0.05, 10_000),
		cell("TMHP", 4, 1, 2.00, 0, 0),
	}}
	cur := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 0.85, 0.05, 10_000), // -15%, inside 0.10+0.05+0.05
		cell("RR-V", 4, 4, 0.50, 0.05, 10_000), // -50%: regression
		cell("TMHP", 4, 1, 2.60, 0, 0),         // +30%: improvement
	}}
	deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10})
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3", len(deltas))
	}
	var regressed []CellDelta
	for _, d := range deltas {
		if d.Regressed() {
			regressed = append(regressed, d)
		}
	}
	if len(regressed) != 1 {
		t.Fatalf("regressions = %+v, want exactly the shards=4 drop", regressed)
	}
	if !strings.Contains(regressed[0].Key, "shards=4") {
		t.Fatalf("wrong cell regressed: %s", regressed[0].Key)
	}
	if !strings.Contains(regressed[0].Why, "throughput") {
		t.Fatalf("Why missing throughput detail: %q", regressed[0].Why)
	}
}

// TestDiffSkipsUnmatched checks cells without a counterpart in the other
// snapshot are ignored — adding or retiring workloads must not gate.
func TestDiffSkipsUnmatched(t *testing.T) {
	old := Summary{Cells: []Cell{cell("RR-V", 4, 1, 1.0, 0, 0)}}
	cur := Summary{Cells: []Cell{
		cell("RR-V", 4, 2, 0.1, 0, 0), // new shard count: no counterpart
		cell("RR-V", 8, 1, 0.1, 0, 0), // new thread count: no counterpart
	}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 0 {
		t.Fatalf("unmatched cells compared: %+v", deltas)
	}
}

// TestDiffShardZeroOneEquivalent checks shards=0 (legacy snapshots) and
// shards=1 describe the same measurement.
func TestDiffShardZeroOneEquivalent(t *testing.T) {
	old := Summary{Cells: []Cell{cell("RR-V", 4, 0, 1.0, 0, 0)}}
	cur := Summary{Cells: []Cell{cell("RR-V", 4, 1, 1.0, 0, 0)}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 1 {
		t.Fatalf("shards 0 vs 1 did not join: %+v", deltas)
	}
}

// TestDiffBatchDimension checks batch joins the cell identity: the same
// workload at different batch sizes must not compare against each other,
// while batch=0 (legacy snapshots) and an explicit batch cell with the
// same size do join.
func TestDiffBatchDimension(t *testing.T) {
	withBatch := func(c Cell, b int) Cell { c.Batch = b; return c }
	old := Summary{Cells: []Cell{withBatch(cell("RR-V", 4, 1, 1.0, 0, 0), 1)}}
	cur := Summary{Cells: []Cell{withBatch(cell("RR-V", 4, 1, 0.1, 0, 0), 64)}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 0 {
		t.Fatalf("batch=1 compared against batch=64: %+v", deltas)
	}
	cur = Summary{Cells: []Cell{withBatch(cell("RR-V", 4, 1, 1.0, 0, 0), 1)}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 1 {
		t.Fatalf("identical batch=1 cells did not join: %+v", deltas)
	}
}

// TestDiffReclaimColumnsAreOutcomes pins that the extended-matrix
// deferral columns (PeakDeferred, retire→free and free→reuse
// percentiles) never join the cell identity: a BENCH_7-era cell that
// records them still compares against a BENCH_5/6-era cell that
// predates them, and differing values never split the join.
func TestDiffReclaimColumnsAreOutcomes(t *testing.T) {
	withReclaim := func(c Cell) Cell {
		c.PeakDeferred = 120
		c.ReclaimP50Ops = 40
		c.ReclaimP99Ops = 300
		c.ReclaimMaxOps = 900
		c.ReuseP50Ops = 8
		c.ReuseP99Ops = 64
		return c
	}
	old := Summary{Cells: []Cell{cell("TMHE", 2, 2, 1.0, 0, 0)}}
	cur := Summary{Cells: []Cell{withReclaim(cell("TMHE", 2, 2, 1.0, 0, 0))}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 1 {
		t.Fatalf("reclaim outcome columns split the identity join: %+v", deltas)
	}
}

// TestDiffGCColumnsAreOutcomes pins allocs_per_op and gc_cycles as
// outcome columns: a BENCH_8 cell recorded with GC telemetry must still
// join against a BENCH_7 cell recorded before the columns existed.
func TestDiffGCColumnsAreOutcomes(t *testing.T) {
	withGC := func(c Cell) Cell {
		c.AllocsPerOp = 0.02
		c.GCCycles = 3
		return c
	}
	old := Summary{Cells: []Cell{cell("RR-V", 2, 2, 1.0, 0, 0)}}
	cur := Summary{Cells: []Cell{withGC(cell("RR-V", 2, 2, 1.0, 0, 0))}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 1 {
		t.Fatalf("GC outcome columns split the identity join: %+v", deltas)
	}
}

// TestLatestPair pins the -auto pair selection: the two highest-numbered
// snapshots win (numeric, not lexicographic order), and fewer than two is
// an error with an actionable message, never a silent empty diff.
func TestLatestPair(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if _, _, err := LatestPair(dir); err == nil || !strings.Contains(err.Error(), "found 0 BENCH_<n>.json") {
		t.Fatalf("empty dir: err = %v, want found-0 message", err)
	}
	touch("BENCH_2.json")
	if _, _, err := LatestPair(dir); err == nil || !strings.Contains(err.Error(), "found 1 BENCH_<n>.json") {
		t.Fatalf("one file: err = %v, want found-1 message", err)
	}
	touch("BENCH_10.json") // numeric order: 10 > 2, lexicographic would say otherwise
	touch("BENCH_3.json")
	older, newer, err := LatestPair(dir)
	if err != nil {
		t.Fatalf("LatestPair: %v", err)
	}
	if filepath.Base(older) != "BENCH_3.json" || filepath.Base(newer) != "BENCH_10.json" {
		t.Fatalf("pair = (%s, %s), want (BENCH_3.json, BENCH_10.json)", older, newer)
	}
}

// TestDiffP99Gate checks the optional latency gate: growth beyond the
// band regresses, and cells without p99 data never do.
func TestDiffP99Gate(t *testing.T) {
	old := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 1.0, 0, 10_000),
		cell("TMHP", 4, 1, 1.0, 0, 0),
	}}
	cur := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 1.0, 0, 40_000), // 4× p99
		cell("TMHP", 4, 1, 1.0, 0, 0),
	}}
	deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10, P99Tolerance: 1.0})
	var regressed int
	for _, d := range deltas {
		if d.Regressed() {
			regressed++
			if !strings.Contains(d.Why, "p99") {
				t.Fatalf("Why missing p99 detail: %q", d.Why)
			}
		}
	}
	if regressed != 1 {
		t.Fatalf("p99 gate flagged %d cells, want 1", regressed)
	}
	// Without the opt-in, the same data passes.
	for _, d := range Diff(old, cur, DiffOptions{Tolerance: 0.10}) {
		if d.Regressed() {
			t.Fatalf("p99 gate fired without P99Tolerance: %+v", d)
		}
	}
}
