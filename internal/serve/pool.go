package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"hohtx/internal/obs"
	"hohtx/internal/sets"
)

var (
	// ErrSaturated is returned by Acquire when every slot is leased and
	// the FIFO wait queue is at its configured bound. Callers should shed
	// load (a server replies "try later", a batch job backs off).
	ErrSaturated = errors.New("serve: lease pool saturated")
	// ErrClosed is returned by Acquire after Close.
	ErrClosed = errors.New("serve: lease pool closed")
)

// PoolConfig parameterizes NewPool.
type PoolConfig struct {
	// Slots is the number of worker ids the pool leases out; it must
	// equal the Threads the underlying set was configured with. Zero
	// defaults to 8, matching the zero hohtx.Config.
	Slots int
	// MaxWaiters bounds the FIFO wait queue: with every slot leased, up
	// to MaxWaiters Acquires queue and any further Acquire fails
	// immediately with ErrSaturated. Zero picks a default (16×Slots, at
	// least 64); negative means unbounded.
	MaxWaiters int
	// Obs, when non-nil, receives the pool's lease-wait histogram
	// (obs.HistLeaseWaitNs) and backpressure gauges.
	Obs *obs.Domain
}

// PoolStats is a point-in-time snapshot of the pool's counters — the
// backpressure story of a run: how often callers had to wait, for how
// long, and how often the bounded queue pushed back.
type PoolStats struct {
	Leases       uint64 // granted leases
	Waits        uint64 // leases that had to queue first
	WaitNs       uint64 // total queued time across granted leases
	AffinityHits uint64 // leases granted the handle's previous slot
	Cancels      uint64 // waiters abandoned by context cancellation
	Rejections   uint64 // Acquires refused with ErrSaturated
	PeakWaiters  uint64 // wait-queue depth high-water mark
	Outstanding  int    // currently leased slots
	Waiting      int    // currently queued waiters
}

// waiter is one queued Acquire. The channel is buffered so the granter
// never blocks; canceled is written under the pool mutex, so grant and
// cancellation cannot race.
type waiter struct {
	ch       chan int
	enqueued time.Time
	canceled bool
}

// Pool multiplexes any number of goroutines onto the fixed worker ids of
// one set. All slots are registered with the set at construction; Close
// flushes them (set.Finish) once every lease has been returned.
//
// The pool is deliberately a mutex-guarded structure, not a lock-free
// one: a lease straddles a network round-trip or an operation batch, so
// the microseconds the critical sections cost are noise — and the mutex
// keeps grant, cancellation and close free of ABA subtleties.
type Pool struct {
	set        sets.Set
	slots      int
	maxWaiters int
	waitHist   *obs.Histogram // nil when unobserved

	mu     sync.Mutex
	idle   sync.Cond // signaled when closed && outstanding == 0
	free   []int     // LIFO stack of free slot ids (warm reuse)
	isFree []bool
	queue  []*waiter
	closed bool
	stats  PoolStats
}

// NewPool builds a pool over set. cfg.Slots must equal the set's
// configured thread count; every slot is registered here, so callers
// never touch Register/Finish themselves.
func NewPool(set sets.Set, cfg PoolConfig) *Pool {
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.MaxWaiters == 0 {
		cfg.MaxWaiters = 16 * cfg.Slots
		if cfg.MaxWaiters < 64 {
			cfg.MaxWaiters = 64
		}
	}
	p := &Pool{
		set:        set,
		slots:      cfg.Slots,
		maxWaiters: cfg.MaxWaiters,
		free:       make([]int, 0, cfg.Slots),
		isFree:     make([]bool, cfg.Slots),
	}
	p.idle.L = &p.mu
	for s := cfg.Slots - 1; s >= 0; s-- { // slot 0 on top of the stack
		set.Register(s)
		p.free = append(p.free, s)
		p.isFree[s] = true
	}
	if cfg.Obs != nil {
		p.waitHist = cfg.Obs.Hist(obs.HistLeaseWaitNs, "ns")
		cfg.Obs.Gauge("lease_outstanding", func() uint64 { return uint64(p.Stats().Outstanding) })
		cfg.Obs.Gauge("lease_waiting", func() uint64 { return uint64(p.Stats().Waiting) })
		cfg.Obs.Gauge("lease_rejections", func() uint64 { return p.Stats().Rejections })
	}
	return p
}

// Slots returns the number of worker ids the pool leases.
func (p *Pool) Slots() int { return p.slots }

// Acquire leases a slot, queueing FIFO behind other waiters when all
// slots are out. It fails with ErrSaturated when the wait queue is full,
// ErrClosed after Close, or ctx.Err() if ctx ends first.
func (p *Pool) Acquire(ctx context.Context) (int, error) { return p.acquire(ctx, -1, nil) }

// TryAcquire leases a slot only when one is free right now; it never
// queues. The false return means "would have to wait" (or the pool is
// closed — a following Acquire reports which). Multi-pool callers use it
// to keep a fast path that cannot participate in a lease cycle: try every
// pool you like while holding leases, but drop them all before blocking.
func (p *Pool) TryAcquire() (int, bool) { return p.tryAcquire(-1) }

// Release returns a leased slot. The slot goes to the oldest waiter if
// any, otherwise back on the free stack.
func (p *Pool) Release(slot int) {
	p.mu.Lock()
	p.stats.Outstanding--
	for len(p.queue) > 0 {
		w := p.queue[0]
		p.queue = p.queue[1:]
		p.stats.Waiting--
		if w.canceled {
			continue
		}
		d := uint64(time.Since(w.enqueued))
		p.stats.WaitNs += d
		p.stats.Leases++
		p.stats.Outstanding++
		if p.waitHist != nil {
			p.waitHist.RecordAt(uint64(slot), d)
		}
		w.ch <- slot // buffered: never blocks
		p.mu.Unlock()
		return
	}
	p.free = append(p.free, slot)
	p.isFree[slot] = true
	if p.closed && p.stats.Outstanding == 0 {
		p.idle.Signal()
	}
	p.mu.Unlock()
}

// tryAcquire implements TryAcquire; want ≥ 0 prefers a specific slot.
func (p *Pool) tryAcquire(want int) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.free) == 0 {
		return -1, false
	}
	slot := p.takeLocked(want)
	p.stats.Leases++
	p.stats.Outstanding++
	if slot == want {
		p.stats.AffinityHits++
	}
	if p.waitHist != nil {
		p.waitHist.RecordAt(uint64(slot), 0)
	}
	return slot, true
}

// acquire implements Acquire; want ≥ 0 asks for a specific free slot
// (handle affinity) and falls back to any free slot. A nil ctx means
// "wait forever" — it only matters on the queued path, and Do(nil, fn)
// is too convenient a call shape to let it panic there. A non-nil sp gets
// the queued time stamped as its Wait phase — measured waiter-side (time
// since enqueue, taken after the grant lands) so it agrees with what the
// lease_wait_ns histogram's granter-side measurement saw to within a
// scheduling quantum; the fast path's wait is genuinely zero and stamps
// nothing.
func (p *Pool) acquire(ctx context.Context, want int, sp *obs.Span) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return -1, ErrClosed
	}
	if len(p.free) > 0 {
		slot := p.takeLocked(want)
		p.stats.Leases++
		p.stats.Outstanding++
		if slot == want {
			p.stats.AffinityHits++
		}
		if p.waitHist != nil {
			p.waitHist.RecordAt(uint64(slot), 0)
		}
		p.mu.Unlock()
		return slot, nil
	}
	if p.maxWaiters > 0 && len(p.queue) >= p.maxWaiters {
		p.stats.Rejections++
		p.mu.Unlock()
		return -1, ErrSaturated
	}
	w := &waiter{ch: make(chan int, 1), enqueued: time.Now()}
	p.queue = append(p.queue, w)
	p.stats.Waits++
	p.stats.Waiting++
	if uint64(len(p.queue)) > p.stats.PeakWaiters {
		p.stats.PeakWaiters = uint64(len(p.queue))
	}
	p.mu.Unlock()

	select {
	case slot, ok := <-w.ch:
		if !ok {
			return -1, ErrClosed
		}
		if sp != nil {
			sp.Add(obs.SpanWait, uint64(time.Since(w.enqueued)))
		}
		return slot, nil
	case <-ctx.Done():
		p.mu.Lock()
		select {
		case slot, ok := <-w.ch:
			// Lost the race: a release (or Close) resolved the waiter
			// before the cancellation took hold. Hand the slot straight
			// back rather than keeping a lease the caller will never use.
			p.mu.Unlock()
			if ok {
				p.Release(slot)
			}
		default:
			w.canceled = true
			p.stats.Cancels++
			p.stats.Waiting--
			p.mu.Unlock()
		}
		return -1, ctx.Err()
	}
}

// takeLocked pops a free slot, honoring a specific request when that
// slot is free.
func (p *Pool) takeLocked(want int) int {
	if want >= 0 && want < p.slots && p.isFree[want] {
		for i := len(p.free) - 1; i >= 0; i-- {
			if p.free[i] == want {
				p.free = append(p.free[:i], p.free[i+1:]...)
				p.isFree[want] = false
				return want
			}
		}
	}
	slot := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.isFree[slot] = false
	return slot
}

// Do leases a slot for the duration of fn — the one-liner most callers
// want.
func (p *Pool) Do(ctx context.Context, fn func(tid int)) error {
	slot, err := p.Acquire(ctx)
	if err != nil {
		return err
	}
	defer p.Release(slot)
	fn(slot)
	return nil
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// FinishAll flushes every slot's deferred reclamation (set.Finish). The
// caller must be quiesced: no leases outstanding, no Acquires in flight.
// Deferred schemes may need two rounds to drain fully (a slot's retirees
// can be pinned by hazards that a later slot's Finish clears); precise
// schemes need none — Finish is a no-op for them, which is the point.
func (p *Pool) FinishAll() {
	for s := 0; s < p.slots; s++ {
		p.set.Finish(s)
	}
}

// Close rejects new Acquires, fails queued waiters with ErrClosed, waits
// for outstanding leases to be released, then flushes every slot.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		for p.stats.Outstanding > 0 {
			p.idle.Wait()
		}
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, w := range p.queue {
		if !w.canceled {
			close(w.ch)
		}
	}
	p.queue = nil
	p.stats.Waiting = 0
	for p.stats.Outstanding > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
	p.FinishAll()
}

// Handle is a pool client with slot affinity: Acquire prefers the slot
// this handle released last, so a long-lived client (one server
// connection, one worker goroutine) keeps hitting the same per-slot
// allocator magazines and reservation state. Handles are not safe for
// concurrent use; create one per goroutine.
type Handle struct {
	p    *Pool
	last int
}

// Handle creates an affinity handle.
func (p *Pool) Handle() *Handle { return &Handle{p: p, last: -1} }

// Acquire leases a slot, preferring this handle's previous one.
func (h *Handle) Acquire(ctx context.Context) (int, error) {
	return h.AcquireSpan(ctx, nil)
}

// AcquireSpan is Acquire with a request span: when the lease has to
// queue, the queued time is stamped as the span's Wait phase.
func (h *Handle) AcquireSpan(ctx context.Context, sp *obs.Span) (int, error) {
	slot, err := h.p.acquire(ctx, h.last, sp)
	if err == nil {
		h.last = slot
	}
	return slot, err
}

// TryAcquire leases a slot (preferring this handle's previous one) only
// when one is free right now; it never queues.
func (h *Handle) TryAcquire() (int, bool) {
	slot, ok := h.p.tryAcquire(h.last)
	if ok {
		h.last = slot
	}
	return slot, ok
}

// Release returns the slot to the pool.
func (h *Handle) Release(slot int) { h.p.Release(slot) }

// Do leases a slot (with affinity) for the duration of fn.
func (h *Handle) Do(ctx context.Context, fn func(tid int)) error {
	slot, err := h.Acquire(ctx)
	if err != nil {
		return err
	}
	defer h.Release(slot)
	fn(slot)
	return nil
}
