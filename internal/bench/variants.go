package bench

import (
	"fmt"
	"runtime"

	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/list"
	"hohtx/internal/lockfree"
	"hohtx/internal/obs"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
	"hohtx/internal/skiplist"
	"hohtx/internal/stm"
	"hohtx/internal/tree"
)

// Family identifies which data structure an experiment runs on.
type Family string

const (
	// FamilySingly is the singly linked list (Figure 2).
	FamilySingly Family = "singly"
	// FamilyDoubly is the doubly linked list (Figures 3 and 5).
	FamilyDoubly Family = "doubly"
	// FamilyInternalTree is the internal BST (Figure 6).
	FamilyInternalTree Family = "itree"
	// FamilyExternalTree is the external BST (Figure 7).
	FamilyExternalTree Family = "etree"
	// FamilySkipList is the skiplist (paper §6 future work; extension
	// benches only).
	FamilySkipList Family = "skip"
)

// VariantSpec fully determines how to build one series' data structure.
type VariantSpec struct {
	// Name is the series legend label: the paper's ("RR-XO", "HTM",
	// "TMHP", "REF", "LFLeak", "LFHP") plus the extended reclamation
	// matrix's "TMHE" and "TMVBR" (DESIGN.md §14).
	Name string
	// Window is the hand-over-hand window size W (ignored by HTM and the
	// lock-free variants). Zero means "use BestWindow for the family and
	// thread count".
	Window int
	// NoScatter disables the first-window randomization (Fig. 4 ablation).
	NoScatter bool
	// Policy selects the arena free-list policy (Fig. 5).
	Policy arena.Policy
	// Assoc overrides A for the set-associative schemes (ablations);
	// zero keeps the paper's A = 8.
	Assoc int
	// Capacity overrides the simulated HTM's tracked-cell capacity
	// (ablations; zero keeps the profile default).
	Capacity int
	// NoSimulatedPreemption disables the automatic yield injection on
	// single-core hosts (see SimYieldShift).
	NoSimulatedPreemption bool
	// LazyClock selects the GV5 lazy global-clock policy for the TM-based
	// variants (see stm.ClockPolicy). Ignored by the lock-free variants,
	// which have no version clock.
	LazyClock bool
	// Observe attaches a fresh observability domain (package obs) to the
	// structure; the runner pulls latency and reclamation percentiles out
	// of it through the ObsReporter interface. The lock-free variants have
	// no instrumented sites and ignore it.
	Observe bool
	// ObsName overrides the observability domain's label (default: Name).
	// BuildSharded uses it to register each shard's domain under a
	// distinct name on the same endpoint.
	ObsName string
}

// BenchSampleShift traces 1 in 2^4 transactions when Observe is set:
// enough samples for stable p99s at bench op counts while keeping the
// probe cost off the critical path.
const BenchSampleShift = 4

// obsDomain builds the per-instance domain an observed spec attaches.
func obsDomain(spec VariantSpec, threads int) *obs.Domain {
	if !spec.Observe {
		return nil
	}
	name := spec.ObsName
	if name == "" {
		name = spec.Name
	}
	return obs.NewDomain(obs.DomainConfig{
		Name:        name,
		Threads:     threads,
		SampleShift: BenchSampleShift,
	})
}

// clockOf maps the spec's clock knob to the stm policy.
func clockOf(spec VariantSpec) stm.ClockPolicy {
	if spec.LazyClock {
		return stm.ClockGV5
	}
	return stm.ClockGV1
}

// SimYieldShift is the yield-injection rate used to simulate preemptive
// interleaving when the host has a single CPU: every transactional access
// (or lock-free node visit) yields with probability 1/2^5. Without it, a
// one-core host runs each microsecond-scale transaction to completion
// between scheduler quanta and the conflict dynamics the paper's
// evaluation studies never occur; see EXPERIMENTS.md ("Concurrency
// simulation").
const SimYieldShift = 5

// simShift returns the yield shift to apply given the host's parallelism.
func simShift(disabled bool) uint8 {
	if disabled || runtime.GOMAXPROCS(0) > 1 {
		return 0
	}
	return SimYieldShift
}

// BestWindow returns the tuned window size for a family at a thread count,
// following the paper's findings: "Up to 4 threads, a window size of 16 is
// best. At 8 threads, the balance tips in favor of a window size of 8"
// (§5.2) for the lists; the trees favor larger windows at low thread
// counts (§5.4).
func BestWindow(f Family, threads int) int {
	switch f {
	case FamilySingly, FamilyDoubly:
		if threads <= 4 {
			return 16
		}
		return 8
	default:
		if threads <= 2 {
			return 32
		}
		return 16
	}
}

// rrKindByName maps legend labels to reservation kinds.
func rrKindByName(name string) (core.Kind, bool) {
	for _, k := range core.Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Build constructs the variant for a family at a thread count. It returns
// an error for combinations the paper does not define (e.g. REF on the
// doubly linked list).
func Build(f Family, spec VariantSpec, threads int) (sets.Set, error) {
	w := spec.Window
	if w == 0 {
		w = BestWindow(f, threads)
	}
	win := core.Window{W: w, NoScatter: spec.NoScatter}

	switch f {
	case FamilySingly, FamilyDoubly:
		cfg := list.Config{
			Threads:     threads,
			Window:      win,
			ArenaPolicy: spec.Policy,
			Assoc:       spec.Assoc,
			YieldShift:  simShift(spec.NoSimulatedPreemption),
			ClockPolicy: clockOf(spec),
			Obs:         obsDomain(spec, threads),
		}
		if spec.Capacity > 0 {
			cfg.Profile = stm.Profile{Capacity: spec.Capacity, MaxAttempts: 2}
		}
		switch spec.Name {
		case "HTM":
			cfg.Mode = list.ModeHTM
		case "TMHP":
			cfg.Mode = list.ModeTMHP
		case "TMHE":
			cfg.Mode = list.ModeTMHE
		case "TMVBR":
			cfg.Mode = list.ModeTMVBR
		case "REF":
			if f == FamilyDoubly {
				return nil, fmt.Errorf("bench: REF is undefined for the doubly linked list")
			}
			cfg.Mode = list.ModeREF
		case "ER":
			if f == FamilyDoubly {
				return nil, fmt.Errorf("bench: ER is undefined for the doubly linked list")
			}
			cfg.Mode = list.ModeER
		case "LFLeak", "LFHP":
			if f == FamilyDoubly {
				return nil, fmt.Errorf("bench: no lock-free doubly linked list (as in the paper)")
			}
			return lockfree.NewHarrisList(lockfree.ListConfig{
				Threads:           threads,
				UseHazardPointers: spec.Name == "LFHP",
				ArenaPolicy:       spec.Policy,
				YieldShift:        simShift(spec.NoSimulatedPreemption),
			}), nil
		default:
			k, ok := rrKindByName(spec.Name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown list variant %q", spec.Name)
			}
			cfg.Mode = list.ModeRR
			cfg.RRKind = k
		}
		if f == FamilyDoubly {
			return list.NewDoubly(cfg), nil
		}
		return list.New(cfg), nil

	case FamilyInternalTree, FamilyExternalTree:
		cfg := tree.Config{
			Threads:     threads,
			Window:      win,
			ArenaPolicy: spec.Policy,
			Assoc:       spec.Assoc,
			YieldShift:  simShift(spec.NoSimulatedPreemption),
			ClockPolicy: clockOf(spec),
			Obs:         obsDomain(spec, threads),
		}
		if spec.Capacity > 0 {
			cfg.Profile = stm.Profile{Capacity: spec.Capacity, MaxAttempts: 8}
		}
		switch spec.Name {
		case "HTM":
			cfg.Mode = tree.ModeHTM
		case "TMHP":
			if f == FamilyInternalTree {
				return nil, fmt.Errorf("bench: no internal tree with hazard pointers (as in the paper)")
			}
			cfg.Mode = tree.ModeTMHP
		case "TMHE":
			if f == FamilyInternalTree {
				return nil, fmt.Errorf("bench: the deferred schemes run on the external tree only")
			}
			cfg.Mode = tree.ModeTMHE
		case "TMVBR":
			if f == FamilyInternalTree {
				return nil, fmt.Errorf("bench: the deferred schemes run on the external tree only")
			}
			cfg.Mode = tree.ModeTMVBR
		case "LFLeak":
			if f == FamilyInternalTree {
				return nil, fmt.Errorf("bench: the lock-free comparator tree is external (as in the paper)")
			}
			return lockfree.NewNMTree(lockfree.NMConfig{
				Threads:    threads,
				YieldShift: simShift(spec.NoSimulatedPreemption),
			}), nil
		default:
			k, ok := rrKindByName(spec.Name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown tree variant %q", spec.Name)
			}
			cfg.Mode = tree.ModeRR
			cfg.RRKind = k
		}
		if f == FamilyInternalTree {
			return tree.NewInternal(cfg), nil
		}
		return tree.NewExternal(cfg), nil

	case FamilySkipList:
		cfg := skiplist.Config{
			Threads:     threads,
			Window:      win,
			ArenaPolicy: spec.Policy,
			Assoc:       spec.Assoc,
			YieldShift:  simShift(spec.NoSimulatedPreemption),
			ClockPolicy: clockOf(spec),
			Obs:         obsDomain(spec, threads),
		}
		if spec.Capacity > 0 {
			cfg.Profile = stm.Profile{Capacity: spec.Capacity, MaxAttempts: 8}
		}
		switch spec.Name {
		case "HTM":
			cfg.Mode = skiplist.ModeHTM
		case "TMHE":
			cfg.Mode = skiplist.ModeTMHE
		case "TMVBR":
			cfg.Mode = skiplist.ModeTMVBR
		default:
			k, ok := rrKindByName(spec.Name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown skiplist variant %q", spec.Name)
			}
			cfg.Mode = skiplist.ModeRR
			cfg.RRKind = k
		}
		return skiplist.New(cfg), nil
	}
	return nil, fmt.Errorf("bench: unknown family %q", f)
}

// BuildSharded constructs shards independent instances of a variant —
// each with its own STM runtime (global clock, serial-fallback lock),
// arena, and reclamation scheme — behind the serve.Sharded routing
// facade, all configured for the same per-shard thread count. The result
// still implements sets.Set, so benchmarks, the torture harness, and the
// lease pool drive it unchanged; front ends that want one lease pool per
// shard reach the underlying sets through Shard(i).
//
// Observed specs get one obs domain per shard, named "<ObsName|Name>-s<i>"
// so all of them can register on a single endpoint without colliding.
func BuildSharded(f Family, spec VariantSpec, threads, shards int) (*serve.Sharded, error) {
	if shards <= 0 {
		shards = 1
	}
	parts := make([]sets.Set, shards)
	for i := range parts {
		s := spec
		if s.Observe {
			base := s.ObsName
			if base == "" {
				base = s.Name
			}
			s.ObsName = fmt.Sprintf("%s-s%d", base, i)
		}
		set, err := Build(f, s, threads)
		if err != nil {
			return nil, err
		}
		parts[i] = set
	}
	return serve.NewSharded(parts), nil
}

// RRNames returns the six reservation series labels in the paper's order.
func RRNames() []string {
	var out []string
	for _, k := range core.Kinds() {
		out = append(out, k.String())
	}
	return out
}
