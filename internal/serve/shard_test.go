package serve_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hohtx/internal/serve"
	"hohtx/internal/sets"
)

// newSharded builds n RR-V singly-list shards behind the facade.
func newSharded(t *testing.T, n, threads int) *serve.Sharded {
	t.Helper()
	shards := make([]sets.Set, n)
	for i := range shards {
		shards[i] = newSet(t, threads)
	}
	return serve.NewSharded(shards)
}

// TestShardOfConsistent pins the routing contract: deterministic per
// (key, n), in range, and the degenerate shard counts collapse to 0.
func TestShardOfConsistent(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for key := uint64(1); key <= 1000; key++ {
			s := serve.ShardOf(key, n)
			if s < 0 || s >= n && n > 0 {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", key, n, s)
			}
			if s != serve.ShardOf(key, n) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", key, n)
			}
		}
	}
	if serve.ShardOf(42, 0) != 0 || serve.ShardOf(42, 1) != 0 {
		t.Fatal("ShardOf must collapse to shard 0 for n <= 1")
	}
}

// TestShardOfDistribution checks router distribution sanity: a dense
// uniform key range must land on every shard in near-equal proportion —
// no shard starved, none overloaded. The splitmix finalizer should keep
// each shard within ±25% of the ideal share.
func TestShardOfDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		counts := make([]int, n)
		const keys = 1 << 14
		for key := uint64(1); key <= keys; key++ {
			counts[serve.ShardOf(key, n)]++
		}
		ideal := keys / n
		for i, c := range counts {
			if c < ideal*3/4 || c > ideal*5/4 {
				t.Errorf("n=%d: shard %d got %d of %d keys (ideal %d)", n, i, c, keys, ideal)
			}
		}
	}
}

// TestShardedFacade drives the Sharded facade through a lease pool under
// concurrent churn and checks the aggregate views: the merged snapshot is
// sorted and complete, the summed memory books balance exactly (each
// shard is a precise-reclamation structure), and transaction statistics
// aggregate across the shards' independent runtimes.
func TestShardedFacade(t *testing.T) {
	const shards, threads, workers, opsEach = 3, 4, 8, 300
	sh := newSharded(t, shards, threads)
	baseline := sh.LiveNodes()

	pool := serve.NewPool(sh, serve.PoolConfig{Slots: threads})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := pool.Handle()
			for i := 0; i < opsEach; i++ {
				key := uint64(w*opsEach+i)%511 + 1
				_ = h.Do(context.Background(), func(tid int) {
					if sh.Insert(tid, key) {
						if !sh.Lookup(tid, key) {
							t.Errorf("key %d vanished between insert and lookup", key)
						}
						sh.Remove(tid, key)
					}
				})
			}
		}(w)
	}
	wg.Wait()
	pool.Close()

	snap := sh.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("merged snapshot not strictly sorted at %d: %d then %d", i, snap[i-1], snap[i])
		}
	}
	if live := sh.LiveNodes(); live != baseline+uint64(len(snap)) {
		t.Fatalf("live %d != baseline %d + %d resident keys", live, baseline, len(snap))
	}
	if def := sh.DeferredNodes(); def != 0 {
		t.Fatalf("precise shards reported %d deferred nodes", def)
	}
	if sh.TxCommits() == 0 {
		t.Fatal("aggregate TxCommits = 0 after a churn run")
	}
	if got, want := sh.Name(), "RR-V×3"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}

	// Per-shard books must balance individually, not just in sum: every
	// key the merged snapshot holds lives on exactly the shard the router
	// assigns it.
	for i := 0; i < sh.ShardCount(); i++ {
		onShard := 0
		for _, k := range snap {
			if sh.ShardFor(k) == i {
				onShard++
			}
		}
		shardSnap := sh.Shard(i).Snapshot()
		if len(shardSnap) != onShard {
			t.Fatalf("shard %d holds %d keys, router assigns it %d", i, len(shardSnap), onShard)
		}
	}
}

// startShardedServer builds an N-shard server, each shard with its own
// lease pool, listening on a loopback port.
func startShardedServer(t *testing.T, shards, slots int) (*serve.Server, *serve.Sharded, string) {
	t.Helper()
	sh := newSharded(t, shards, slots)
	backends := make([]serve.Backend, shards)
	for i := range backends {
		backends[i] = serve.Backend{
			Set:  sh.Shard(i),
			Pool: serve.NewPool(sh.Shard(i), serve.PoolConfig{Slots: slots}),
		}
	}
	srv := serve.NewServer(serve.ServerConfig{Shards: backends})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, sh, ln.Addr().String()
}

// parseInfo splits an INFO reply into its key=value fields.
func parseInfo(t *testing.T, line string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, f := range strings.Fields(line) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed INFO field %q in %q", f, line)
		}
		out[k] = v
	}
	return out
}

// TestShardedServerEndToEnd serves the unchanged protocol over 3 shards:
// point ops route by hash, LEN and INFO aggregate exactly, and after a
// DEL storm the summed live-node count is back at the baseline — precise
// reclamation per shard, observed through one front end.
func TestShardedServerEndToEnd(t *testing.T) {
	srv, sh, addr := startShardedServer(t, 3, 2)
	baseline := sh.LiveNodes()

	cl := dialClient(t, addr)
	const n = 120
	var setReqs, getReqs, delReqs []string
	for k := 1; k <= n; k++ {
		setReqs = append(setReqs, fmt.Sprintf("SET %d", k))
		getReqs = append(getReqs, fmt.Sprintf("GET %d", k))
		delReqs = append(delReqs, fmt.Sprintf("DEL %d", k))
	}
	for i, r := range cl.roundTrip(t, setReqs...) {
		if r != "1" {
			t.Fatalf("SET %d -> %q, want 1", i+1, r)
		}
	}
	for i, r := range cl.roundTrip(t, getReqs...) {
		if r != "1" {
			t.Fatalf("GET %d -> %q, want 1", i+1, r)
		}
	}
	if r := cl.roundTrip(t, "LEN")[0]; r != fmt.Sprint(n) {
		t.Fatalf("LEN -> %q, want %d", r, n)
	}

	info := parseInfo(t, cl.roundTrip(t, "INFO")[0])
	if info["shards"] != "3" {
		t.Fatalf("INFO shards = %q, want 3", info["shards"])
	}
	if info["keys"] != fmt.Sprint(n) {
		t.Fatalf("INFO keys = %q, want %d", info["keys"], n)
	}
	live, err := strconv.ParseUint(info["live"], 10, 64)
	if err != nil || live != sh.LiveNodes() {
		t.Fatalf("INFO live = %q, want the shard sum %d", info["live"], sh.LiveNodes())
	}
	if live != baseline+n {
		t.Fatalf("live %d != baseline %d + %d keys", live, baseline, n)
	}

	// Every shard must hold some of a dense 1..120 range (router sanity
	// over the wire, not just in the hash unit test).
	for i := 0; i < sh.ShardCount(); i++ {
		if len(sh.Shard(i).Snapshot()) == 0 {
			t.Fatalf("shard %d starved: 0 of %d keys", i, n)
		}
	}

	for i, r := range cl.roundTrip(t, delReqs...) {
		if r != "1" {
			t.Fatalf("DEL %d -> %q, want 1", i+1, r)
		}
	}
	if r := cl.roundTrip(t, "LEN")[0]; r != "0" {
		t.Fatalf("LEN after DEL storm -> %q, want 0", r)
	}
	if live := sh.LiveNodes(); live != baseline {
		t.Fatalf("live after DEL storm = %d, want baseline %d", live, baseline)
	}
	if srv.Len() != 0 {
		t.Fatalf("server Len = %d, want 0", srv.Len())
	}
}

// TestShardedServerConcurrentChurn runs cross-shard SET/DEL churn from
// several connections while another samples LEN and INFO, then checks the
// aggregates are exact once the churn quiesces. Sampled LEN must always
// be a plausible prefix state (0 ≤ len ≤ keyspace) and INFO must stay
// well-formed with deferred=0 throughout.
func TestShardedServerConcurrentChurn(t *testing.T) {
	_, sh, addr := startShardedServer(t, 4, 2)
	baseline := sh.LiveNodes()

	const conns, opsEach, span = 6, 80, 64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		cl := dialClient(t, addr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			replies := cl.roundTrip(t, "LEN", "INFO")
			n, err := strconv.Atoi(replies[0])
			if err != nil || n < 0 || n > conns*span {
				t.Errorf("mid-churn LEN %q out of bounds [0, %d]", replies[0], conns*span)
				return
			}
			info := parseInfo(t, replies[1])
			if info["shards"] != "4" || info["deferred"] != "0" {
				t.Errorf("mid-churn INFO %v: want shards=4 deferred=0", info)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for cid := 0; cid < conns; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			br, bw := bufio.NewReader(c), bufio.NewWriter(c)
			for i := 0; i < opsEach; i++ {
				key := cid*span + i%span + 1 // disjoint per connection
				fmt.Fprintf(bw, "SET %d\nDEL %d\n", key, key)
				if err := bw.Flush(); err != nil {
					t.Errorf("conn %d flush: %v", cid, err)
					return
				}
				for _, want := range []string{"1\n", "1\n"} {
					line, err := br.ReadString('\n')
					if err != nil || line != want {
						t.Errorf("conn %d key %d: reply %q err %v, want %q", cid, key, line, err, want)
						return
					}
				}
			}
		}(cid)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	cl := dialClient(t, addr)
	if r := cl.roundTrip(t, "LEN")[0]; r != "0" {
		t.Fatalf("LEN after churn -> %q, want 0", r)
	}
	if live := sh.LiveNodes(); live != baseline {
		t.Fatalf("live after churn = %d, want baseline %d", live, baseline)
	}
}

// TestShardedServerCrossShardNoDeadlock pins the lease-acquisition
// protocol: with one slot per shard and several connections pipelining
// bursts that straddle both shards, a server that held one shard's slot
// while queueing for the other's would deadlock (connection A holds
// shard 0 and waits on shard 1 while B holds 1 and waits on 0). The
// connection deadline turns a regression into a test failure instead of
// a hung suite.
func TestShardedServerCrossShardNoDeadlock(t *testing.T) {
	_, sh, addr := startShardedServer(t, 2, 1)
	// One key per shard, found by routing.
	var keys [2]uint64
	for k := uint64(1); keys[0] == 0 || keys[1] == 0; k++ {
		if s := sh.ShardFor(k); keys[s] == 0 {
			keys[s] = k
		}
	}
	const conns, bursts = 4, 100
	var wg sync.WaitGroup
	errc := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(20 * time.Second))
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(conn)
			for b := 0; b < bursts; b++ {
				// Alternate which shard each connection touches first, so
				// the hold-and-wait cycle forms immediately under a faulty
				// protocol.
				a, z := keys[cid%2], keys[1-cid%2]
				fmt.Fprintf(bw, "GET %d\nGET %d\nGET %d\nGET %d\n", a, z, a, z)
				if err := bw.Flush(); err != nil {
					errc <- err
					return
				}
				for i := 0; i < 4; i++ {
					if _, err := br.ReadString('\n'); err != nil {
						errc <- fmt.Errorf("conn %d burst %d: %w", cid, b, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
