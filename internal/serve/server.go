package serve

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/obs"
	"hohtx/internal/sets"
)

// drainGrace is how long a draining server lets connections finish the
// pipeline already in flight before their reads time out.
const drainGrace = 250 * time.Millisecond

// Backend is one shard behind the server: a set plus the lease pool
// multiplexing connections onto that set's worker slots. A single-shard
// server has exactly one backend.
type Backend struct {
	Set  sets.Set
	Pool *Pool
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Set is the structure being served; Pool multiplexes connections
	// onto its worker slots. This is the single-shard configuration —
	// exactly one of Set/Pool or Shards must be provided.
	Set  sets.Set
	Pool *Pool
	// Shards, when non-empty, runs the server sharded: keys route to
	// Shards[ShardOf(key, len(Shards))], each shard leasing from its own
	// pool, while LEN and INFO aggregate across all of them. The wire
	// protocol is identical either way.
	Shards []Backend
	// MaxKey bounds accepted keys to [1, MaxKey]. Zero defaults to the
	// tree sentinel bound (the tightest across the repo's structures).
	MaxKey uint64
	// Obs, when non-nil, receives per-verb service-time histograms and
	// the live/deferred/connection gauges.
	Obs *obs.Domain
}

// Server speaks the repository's line protocol over one or more shards:
//
//	GET <key>\n  -> 1\n | 0\n          (membership)
//	SET <key>\n  -> 1\n | 0\n          (1 = inserted, 0 = already present)
//	DEL <key>\n  -> 1\n | 0\n          (1 = removed; memory is already free)
//	LEN\n        -> <n>\n              (keys currently present, all shards)
//	INFO\n       -> variant=… shards=… slots=… keys=… live=… deferred=… conns=…\n
//	anything else -> ERR <reason>\n    (connection stays open)
//
// Requests pipeline: a client may write any number of lines before
// reading; replies come back in order. Each connection runs one
// goroutine, which leases a worker slot on a shard only while buffered
// requests route there — an idle connection holds no slot on any shard,
// so connections can outnumber slots by orders of magnitude.
//
// With several shards the key-indexed verbs route by ShardOf, so two
// writers on different shards commit against different global clocks and
// different serial-fallback locks; LEN and INFO are the only aggregate
// views, and both are exact (LEN is one server-level counter, INFO sums
// each shard's memory books).
type Server struct {
	shards []Backend
	maxKey uint64
	dom    *obs.Domain
	probe  *obs.ServeProbe
	mems   []sets.MemoryReporter // per shard; nil entries for bookless sets

	keys  atomic.Int64 // net successful SET − DEL through this server
	conns atomic.Int64

	mu       sync.Mutex
	open     map[net.Conn]struct{}
	ln       net.Listener
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewServer wires a server over cfg's backends.
func NewServer(cfg ServerConfig) *Server {
	shards := cfg.Shards
	if len(shards) == 0 {
		shards = []Backend{{Set: cfg.Set, Pool: cfg.Pool}}
	}
	s := &Server{
		shards: shards,
		maxKey: cfg.MaxKey,
		dom:    cfg.Obs,
		open:   make(map[net.Conn]struct{}),
	}
	if s.maxKey == 0 {
		s.maxKey = ^uint64(0) - 3 // tree.MaxKey, the tightest structure bound
	}
	s.mems = make([]sets.MemoryReporter, len(shards))
	anyMem := false
	for i, b := range shards {
		if mr, ok := b.Set.(sets.MemoryReporter); ok {
			s.mems[i] = mr
			anyMem = true
		}
	}
	if cfg.Obs != nil {
		s.probe = cfg.Obs.ServeProbe()
		cfg.Obs.Gauge("server_keys", func() uint64 { return uint64(s.keys.Load()) })
		cfg.Obs.Gauge("server_conns", func() uint64 { return uint64(s.conns.Load()) })
		cfg.Obs.Gauge("shard_count", func() uint64 { return uint64(len(s.shards)) })
		if anyMem {
			cfg.Obs.Gauge("live_nodes", func() uint64 { l, _ := s.memTotals(); return l })
			cfg.Obs.Gauge("deferred_nodes", func() uint64 { _, d := s.memTotals(); return d })
		}
	}
	return s
}

// memTotals sums the shards' memory books.
func (s *Server) memTotals() (live, deferred uint64) {
	for _, mr := range s.mems {
		if mr != nil {
			live += mr.LiveNodes()
			deferred += mr.DeferredNodes()
		}
	}
	return live, deferred
}

// Len returns the number of keys present across all shards (as counted by
// this server's successful SET/DEL balance).
func (s *Server) Len() int64 { return s.keys.Load() }

// Shards returns how many shards the server routes across.
func (s *Server) Shards() int { return len(s.shards) }

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		s.open[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Shutdown drains the server: stop accepting, give in-flight pipelines a
// grace period to finish, then wait for every connection goroutine (or
// force-close them when ctx ends first). The pools are closed last, which
// flushes every shard's worker slots.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	deadline := time.Now().Add(drainGrace)
	for c := range s.open {
		_ = c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.open {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	for _, b := range s.shards {
		b.Pool.Close()
	}
	return err
}

// connLeases tracks one connection's slot leases, at most one per shard,
// acquired lazily as requests route and all released when a burst ends.
type connLeases struct {
	handles []*Handle
	slots   []int
}

func newConnLeases(shards []Backend) *connLeases {
	l := &connLeases{
		handles: make([]*Handle, len(shards)),
		slots:   make([]int, len(shards)),
	}
	for i, b := range shards {
		l.handles[i] = b.Pool.Handle()
		l.slots[i] = -1
	}
	return l
}

// slot returns the lease on shard i, acquiring one if needed. The
// acquisition protocol is try-then-release-and-block: take shard i's
// slot immediately if one is free (keeping the burst's other leases
// warm), but when shard i is out of slots, give back every lease this
// connection holds before queueing. Blocking on one shard while holding
// another is the hold-and-wait half of a deadlock cycle — with one slot
// per shard, connection A holding shard 0 and waiting on shard 1 while
// connection B holds 1 and waits on 0 would stall the server for good.
func (l *connLeases) slot(i int) (int, error) {
	if l.slots[i] >= 0 {
		return l.slots[i], nil
	}
	if slot, ok := l.handles[i].TryAcquire(); ok {
		l.slots[i] = slot
		return slot, nil
	}
	l.releaseAll()
	slot, err := l.handles[i].Acquire(context.Background())
	if err != nil {
		return -1, err
	}
	l.slots[i] = slot
	return slot, nil
}

// releaseAll returns every held lease.
func (l *connLeases) releaseAll() {
	for i, slot := range l.slots {
		if slot >= 0 {
			l.handles[i].Release(slot)
			l.slots[i] = -1
		}
	}
}

// handle runs one connection: read a line, lease a slot on the target
// shard (kept across a burst of buffered requests), execute, reply.
func (s *Server) handle(c net.Conn) {
	s.conns.Add(1)
	defer func() {
		s.conns.Add(-1)
		s.mu.Lock()
		delete(s.open, c)
		s.mu.Unlock()
		_ = c.Close()
		s.wg.Done()
	}()

	br := bufio.NewReaderSize(c, 4<<10)
	bw := bufio.NewWriterSize(c, 4<<10)
	leases := newConnLeases(s.shards)
	defer leases.releaseAll()

	for {
		if s.draining.Load() && br.Buffered() == 0 {
			_ = bw.Flush()
			return
		}
		line, err := br.ReadString('\n')
		if err != nil {
			if line == "" {
				return
			}
			// final unterminated request: serve it, then drop the conn
		}
		if !s.serveLine(leases, strings.TrimRight(line, "\r\n"), bw) {
			_ = bw.Flush()
			return
		}
		if br.Buffered() == 0 {
			// Burst over: give the slots back before blocking on the
			// network, and push the replies out.
			leases.releaseAll()
			if ferr := bw.Flush(); ferr != nil || err != nil {
				return
			}
		}
	}
}

// serveLine executes one request line and appends the reply to bw. It
// returns false when the connection must drop (a lease could not be
// acquired — saturation or shutdown).
func (s *Server) serveLine(leases *connLeases, line string, bw *bufio.Writer) bool {
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "GET", "SET", "DEL":
		key, err := s.parseKey(rest)
		if err != nil {
			bw.WriteString("ERR ")
			bw.WriteString(err.Error())
			bw.WriteByte('\n')
			return true
		}
		shard := ShardOf(key, len(s.shards))
		slot, err := leases.slot(shard)
		if err != nil {
			bw.WriteString("ERR ")
			bw.WriteString(err.Error())
			bw.WriteByte('\n')
			return false
		}
		sampled := s.dom != nil && s.dom.Sampled(uint64(slot))
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		set := s.shards[shard].Set
		var ok bool
		switch verb {
		case "GET":
			ok = set.Lookup(slot, key)
		case "SET":
			if ok = set.Insert(slot, key); ok {
				s.keys.Add(1)
			}
		default:
			if ok = set.Remove(slot, key); ok {
				s.keys.Add(-1)
			}
		}
		if sampled {
			d := uint64(time.Since(t0))
			switch verb {
			case "GET":
				s.probe.GetNs.RecordAt(uint64(slot), d)
			case "SET":
				s.probe.SetNs.RecordAt(uint64(slot), d)
			default:
				s.probe.DelNs.RecordAt(uint64(slot), d)
			}
		}
		if ok {
			bw.WriteString("1\n")
		} else {
			bw.WriteString("0\n")
		}
	case "LEN":
		bw.WriteString(strconv.FormatInt(s.keys.Load(), 10))
		bw.WriteByte('\n')
	case "INFO":
		live, deferred := s.memTotals()
		fmt.Fprintf(bw, "variant=%s shards=%d slots=%d keys=%d live=%d deferred=%d conns=%d\n",
			s.shards[0].Set.Name(), len(s.shards), s.shards[0].Pool.Slots(),
			s.keys.Load(), live, deferred, s.conns.Load())
	case "":
		bw.WriteString("ERR empty command\n")
	default:
		bw.WriteString("ERR unknown command\n")
	}
	return true
}

// parseKey validates a decimal key in [1, maxKey].
func (s *Server) parseKey(arg string) (uint64, error) {
	if arg == "" {
		return 0, fmt.Errorf("missing key")
	}
	key, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q", arg)
	}
	if key < 1 || key > s.maxKey {
		return 0, fmt.Errorf("key %d out of range [1, %d]", key, s.maxKey)
	}
	return key, nil
}
