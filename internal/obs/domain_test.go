package obs

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestSamplingGate(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "gate", SampleShift: -1})
	for i := 0; i < 100; i++ {
		if d.Sampled(uint64(i)) {
			t.Fatal("negative shift must never sample")
		}
	}
	d.SetSampleShift(0)
	for i := 0; i < 100; i++ {
		if !d.Sampled(uint64(i)) {
			t.Fatal("shift 0 must always sample")
		}
	}
	d.SetSampleShift(3)
	hits := 0
	const n = 8000
	for i := 0; i < n; i++ {
		if d.Sampled(7) { // fixed hint: one counter, exact 1-in-8 cadence
			hits++
		}
	}
	if hits != n/8 {
		t.Fatalf("shift 3 sampled %d of %d, want exactly %d", hits, n, n/8)
	}
}

func TestDomainHistRegistry(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "reg"})
	h1 := d.Hist(HistCommitNs, "ns")
	h2 := d.Hist(HistCommitNs, "ns")
	if h1 != h2 {
		t.Fatal("Hist must return the same histogram for the same name")
	}
	h1.Record(5)
	var depth atomic.Uint64
	depth.Store(17)
	d.Gauge("deferred_depth", depth.Load)
	s := d.Snapshot()
	if s.Name != "reg" {
		t.Fatalf("snapshot name %q", s.Name)
	}
	hs, ok := s.Hist(HistCommitNs)
	if !ok || hs.Count != 1 {
		t.Fatalf("snapshot missing commit hist: %+v", s)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 17 {
		t.Fatalf("gauge snapshot %+v", s.Gauges)
	}
	var nilDom *Domain
	if got := nilDom.Snapshot(); got.Name != "" || len(got.Histograms) != 0 {
		t.Fatal("nil domain snapshot must be zero")
	}
}

func TestRecorderOrderAndWrap(t *testing.T) {
	r := NewRecorder(2, 4)
	// 6 events on tid 0's 4-slot ring: the first two fall off.
	for i := 0; i < 6; i++ {
		r.Emit(0, EvBegin, 0, 0, uint64(i))
	}
	r.Emit(1, EvCommit, 0, 0, 3)
	r.Emit(-1, EvFree, 0, 42, 0) // overflow ring
	ev := r.Events()
	if len(ev) != 6 { // 4 surviving begins + commit + free
		t.Fatalf("got %d events, want 6: %+v", len(ev), ev)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("events not Seq-ordered at %d: %+v", i, ev)
		}
	}
	if ev[0].Aux != 2 {
		t.Fatalf("oldest surviving begin should be attempt 2, got %d", ev[0].Aux)
	}
	last := ev[len(ev)-1]
	if last.Kind != EvFree || last.Tid != -1 {
		t.Fatalf("overflow event misrouted: %+v", last)
	}

	var b strings.Builder
	r.DumpTail(&b, 3)
	out := b.String()
	if !strings.Contains(out, "3 earlier events elided") {
		t.Fatalf("tail dump missing elision note:\n%s", out)
	}
	if !strings.Contains(out, "free") {
		t.Fatalf("tail dump missing free event:\n%s", out)
	}
}

func TestAttribution(t *testing.T) {
	a := NewAttrTable()
	var cell atomic.Uint64
	if got := a.Owner(&cell); got != -1 {
		t.Fatalf("empty table owner = %d, want -1", got)
	}
	a.NoteWrite(&cell, 5)
	if got := a.Owner(&cell); got != 5 {
		t.Fatalf("owner = %d, want 5", got)
	}
	a.NoteAbort(2, 5)
	a.NoteAbort(2, 5)
	a.NoteAbort(7, -1)
	edges := a.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %+v", edges)
	}
	if edges[0].Victim != 2 || edges[0].Owner != 5 || edges[0].Count != 2 {
		t.Fatalf("top edge %+v", edges[0])
	}
	if edges[1].Owner != -1 {
		t.Fatalf("unknown owner edge %+v", edges[1])
	}
	var b strings.Builder
	a.DumpEdges(&b, 10)
	if !strings.Contains(b.String(), "t5 aborted t2 ×2") {
		t.Fatalf("edge dump:\n%s", b.String())
	}
}

func TestPromExport(t *testing.T) {
	reg := NewRegistry()
	d := NewDomain(DomainConfig{Name: "singly/TMHP", Threads: 2})
	d.Hist(HistCommitNs, "ns").Record(100)
	d.Gauge("deferred_depth", func() uint64 { return 3 })
	reg.Register(d)
	var b strings.Builder
	reg.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE hohtx_singly_tmhp_commit_latency_ns histogram",
		`hohtx_singly_tmhp_commit_latency_ns_bucket{le="+Inf"} 1`,
		"hohtx_singly_tmhp_commit_latency_ns_sum 100",
		"hohtx_singly_tmhp_commit_latency_ns_count 1",
		"# TYPE hohtx_singly_tmhp_deferred_depth gauge",
		"hohtx_singly_tmhp_deferred_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	reg.Unregister(d)
	b.Reset()
	reg.WriteProm(&b)
	if strings.Contains(b.String(), "singly_tmhp") {
		t.Fatalf("unregistered domain still exported:\n%s", b.String())
	}
	// The synthetic GC panel survives an empty registry: it is appended
	// to every snapshot, not registered.
	if !strings.Contains(b.String(), "hohtx_runtime_gc_gc_cycles") {
		t.Fatalf("GC panel missing from empty registry:\n%s", b.String())
	}
}

func TestDumpFlight(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "dump", Threads: 2})
	d.Recorder().Emit(0, EvBegin, 0, 0, 1)
	d.Recorder().Emit(0, EvAbort, 1, 0xdead, ^uint64(0))
	d.Attr().NoteAbort(0, -1)
	var b strings.Builder
	d.DumpFlight(&b, 0)
	out := b.String()
	for _, want := range []string{"flight recorder (dump", "begin", "cause=read-conflict", "who-aborted-whom", "aborted t0"} {
		if !strings.Contains(out, want) {
			t.Errorf("flight dump missing %q:\n%s", want, out)
		}
	}
}
