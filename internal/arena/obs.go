package arena

import (
	"sync/atomic"

	"hohtx/internal/obs"
)

// Free→reuse distance measurement. The paper's precision claim is about
// *when* memory becomes reusable, so the interesting quantity is how many
// allocator operations pass between a slot's free and the allocation that
// recycles it. The arena keeps an op clock (one tick per Alloc/Free while
// an observer is attached and sampling enabled) and a shadow stamp page
// per slot page holding each slot's free-time clock value; the recycling
// Alloc reads the stamp and records the distance.

// stampPage parallels one slot page with free-time op-clock stamps.
type stampPage struct {
	slots []atomic.Uint64
}

// obsState exists only after SetObserver, so the detached-mode cost in
// Alloc and Free is one nil check (the same discipline as guardState).
type obsState struct {
	probe *obs.AllocProbe
	// clock is the arena op clock. It is a single shared counter — the
	// distance unit must be global operations, not per-thread ones — so it
	// only ticks while sampling is enabled; distances therefore count ops
	// observed since enablement, and the detached/disabled paths never
	// touch the shared line.
	clock  atomic.Uint64
	stamps atomic.Pointer[[]*stampPage]
}

// enabled reports whether the observer should pay per-op costs.
func (o *obsState) enabled() bool { return o.probe.D.SampleShift() >= 0 }

// stampAt returns the stamp cell for a slot index, or nil if the stamp
// shadow has not caught up with a concurrent grow (the caller just skips
// the measurement).
func (o *obsState) stampAt(idx uint32) *atomic.Uint64 {
	stamps := *o.stamps.Load()
	if int(idx>>pageShift) >= len(stamps) {
		return nil
	}
	return &stamps[idx>>pageShift].slots[idx&pageMask]
}

// SetObserver attaches an alloc probe (nil detaches). The stamp shadow is
// backfilled for already-grown pages, so wiring order relative to early
// allocations (e.g. a structure's head sentinel) does not matter; stamps
// then grow in lockstep with pages (see grow).
func (a *Arena[T]) SetObserver(p *obs.AllocProbe) {
	if p == nil {
		a.obsv = nil
		return
	}
	o := &obsState{probe: p}
	a.growMu.Lock()
	n := len(*a.pages.Load())
	stamps := make([]*stampPage, n)
	for i := range stamps {
		stamps[i] = &stampPage{slots: make([]atomic.Uint64, pageSize)}
	}
	o.stamps.Store(&stamps)
	a.obsv = o
	a.growMu.Unlock()
}

// noteAlloc records a recycling allocation's free→reuse distance. Called
// with the slot's pre-bump (even) generation: g > 0 means the slot has
// been freed before, so its stamp is meaningful.
func (a *Arena[T]) noteAlloc(o *obsState, tid int, idx uint32, g uint32) {
	if !o.enabled() {
		return
	}
	c := o.clock.Add(1)
	if g == 0 {
		return // fresh bump allocation: nothing was reused
	}
	st := o.stampAt(idx)
	if st == nil {
		return
	}
	s0 := st.Load()
	if s0 == 0 || c <= s0 {
		return // freed before the observer was enabled
	}
	if dist := c - s0; o.probe.D.Sampled(uint64(tid)) {
		o.probe.ReuseDist.RecordAt(uint64(tid), dist)
		o.probe.Rec.Emit(tid, obs.EvReuse, 0, uint64(makeHandle(idx, g+1)), dist)
	}
}

// noteFree stamps the freed slot with the current op clock.
func (a *Arena[T]) noteFree(o *obsState, tid int, h Handle) {
	if !o.enabled() {
		return
	}
	c := o.clock.Add(1)
	if st := o.stampAt(h.Index()); st != nil {
		st.Store(c)
	}
	if o.probe.D.Sampled(uint64(tid)) {
		o.probe.Rec.Emit(tid, obs.EvFree, 0, uint64(h), 0)
	}
}
