package core

import (
	"sync/atomic"

	"hohtx/internal/pad"
	"hohtx/internal/stm"
)

// Strict implementations (§3.1). These adhere exactly to the Listing 1
// specification: Get returns nil only if the thread's reference was
// released or revoked. Their Revoke must visit every location that might
// hold the reference, which costs O(T) (FA, DM) or O(A+T) (SA) and — more
// importantly for performance — conflicts with any concurrent Reserve or
// Release it reads past.

// faSlot is one thread's reservation cell, padded so that Reserve/Release/
// Get by different threads never share a cache line (the paper calls this
// out explicitly for RR-FA).
type faSlot struct {
	val        stm.Word
	registered atomic.Bool
	_          pad.Line
}

// FA is the fully associative scheme (Listing 2): one slot per thread, and
// Revoke scans all registered slots. The paper organizes the slots as a
// linked list a thread appends to at registration; a fixed slot array with
// a registered flag is the same object with the same conflict behavior
// (Revoke transactionally reads every registered thread's slot) and one
// less pointer hop.
type FA struct {
	slots []faSlot
}

// NewFA constructs an RR-FA reservation.
func NewFA(cfg Config) *FA {
	cfg = cfg.withDefaults()
	return &FA{slots: make([]faSlot, cfg.Threads)}
}

// Register implements Reservation.
func (f *FA) Register(tid int) { f.slots[tid].registered.Store(true) }

// Reserve implements Reservation.
func (f *FA) Reserve(tx *stm.Tx, tid int, ref uint64) {
	f.slots[tid].val.Store(tx, ref)
}

// Release implements Reservation.
func (f *FA) Release(tx *stm.Tx, tid int) {
	f.slots[tid].val.Store(tx, 0)
}

// Get implements Reservation.
func (f *FA) Get(tx *stm.Tx, tid int) uint64 {
	return f.slots[tid].val.Load(tx)
}

// Revoke implements Reservation: it transactionally reads every registered
// thread's slot and clears those holding ref. Those reads are what make a
// concurrent Reserve/Release by any thread a conflict for the revoker.
func (f *FA) Revoke(tx *stm.Tx, ref uint64) {
	for i := range f.slots {
		if !f.slots[i].registered.Load() {
			continue
		}
		if f.slots[i].val.Load(tx) == ref {
			f.slots[i].val.Store(tx, 0)
		}
	}
}

// Strict implements Reservation.
func (f *FA) Strict() bool { return true }

// Name implements Reservation.
func (f *FA) Name() string { return KindFA.String() }

// dmNode is one entry of a dmArray: thread nodes at indices [0,T), bucket
// sentinels at [T, T+B). Links are 1-based entry indices; 0 is nil. where
// is 1+bucket for a linked thread node, 0 when unlinked.
type dmNode struct {
	val   stm.Word
	prev  stm.Word
	next  stm.Word
	where stm.Word
	_     pad.Line
}

// dmArray is one hash-indexed array of unsorted doubly linked bucket lists,
// the building block of both RR-DM (one array) and RR-SA (A arrays). Each
// bucket owns a sentinel node so that inserts and removes deep in a bucket
// do not conflict with operations near the array itself (the contention
// note in §3.1).
type dmArray struct {
	entries []dmNode
	threads int
	mask    uint64
}

func newDMArray(threads, tableBits int) *dmArray {
	buckets := 1 << tableBits
	return &dmArray{
		entries: make([]dmNode, threads+buckets),
		threads: threads,
		mask:    uint64(buckets - 1),
	}
}

// sentinel returns the entry index of bucket b's sentinel.
func (d *dmArray) sentinel(b uint64) int { return d.threads + int(b) }

// insert links thread t's node at the head of bucket b.
func (d *dmArray) insert(tx *stm.Tx, t int, b uint64) {
	s := d.sentinel(b)
	n := &d.entries[t]
	first := d.entries[s].next.Load(tx)
	n.next.Store(tx, first)
	n.prev.Store(tx, uint64(s+1))
	if first != 0 {
		d.entries[first-1].prev.Store(tx, uint64(t+1))
	}
	d.entries[s].next.Store(tx, uint64(t+1))
	n.where.Store(tx, b+1)
}

// remove unlinks thread t's node from whatever bucket holds it.
func (d *dmArray) remove(tx *stm.Tx, t int) {
	n := &d.entries[t]
	p := n.prev.Load(tx)
	nx := n.next.Load(tx)
	d.entries[p-1].next.Store(tx, nx)
	if nx != 0 {
		d.entries[nx-1].prev.Store(tx, p)
	}
	n.where.Store(tx, 0)
}

// reserve implements the DM/SA Reserve for thread t: set the value, then
// make sure the node is linked in the bucket ref hashes to. Removal from a
// previously occupied bucket was deliberately deferred by release (the
// contention-avoiding optimization in §3.1), so it may happen here.
func (d *dmArray) reserve(tx *stm.Tx, t int, ref uint64) {
	b := hashRef(ref, d.mask)
	n := &d.entries[t]
	n.val.Store(tx, ref)
	w := n.where.Load(tx)
	if w == b+1 {
		return // already in the right bucket (lazy removal paid off)
	}
	if w != 0 {
		d.remove(tx, t)
	}
	d.insert(tx, t, b)
}

// release clears the value but leaves the node linked; the next reserve
// relocates it only if needed.
func (d *dmArray) release(tx *stm.Tx, t int) {
	d.entries[t].val.Store(tx, 0)
}

// get returns thread t's reserved value.
func (d *dmArray) get(tx *stm.Tx, t int) uint64 {
	return d.entries[t].val.Load(tx)
}

// revoke walks the bucket ref hashes to and clears every node holding ref.
func (d *dmArray) revoke(tx *stm.Tx, ref uint64) {
	b := hashRef(ref, d.mask)
	cur := d.entries[d.sentinel(b)].next.Load(tx)
	for cur != 0 {
		n := &d.entries[cur-1]
		if n.val.Load(tx) == ref {
			n.val.Store(tx, 0)
		}
		cur = n.next.Load(tx)
	}
}

// DM is the direct-mapped strict scheme: one array of bucket lists, so
// Revoke only scans threads whose reservations hash to ref's bucket, at
// the cost of Reserve/Release doing doubly-linked-list surgery that can
// conflict between threads.
type DM struct {
	arr *dmArray
}

// NewDM constructs an RR-DM reservation.
func NewDM(cfg Config) *DM {
	cfg = cfg.withDefaults()
	return &DM{arr: newDMArray(cfg.Threads, cfg.TableBits)}
}

// Register implements Reservation (the thread's node exists statically).
func (d *DM) Register(tid int) {}

// Reserve implements Reservation.
func (d *DM) Reserve(tx *stm.Tx, tid int, ref uint64) { d.arr.reserve(tx, tid, ref) }

// Release implements Reservation.
func (d *DM) Release(tx *stm.Tx, tid int) { d.arr.release(tx, tid) }

// Get implements Reservation.
func (d *DM) Get(tx *stm.Tx, tid int) uint64 { return d.arr.get(tx, tid) }

// Revoke implements Reservation.
func (d *DM) Revoke(tx *stm.Tx, ref uint64) { d.arr.revoke(tx, ref) }

// Strict implements Reservation.
func (d *DM) Strict() bool { return true }

// Name implements Reservation.
func (d *DM) Name() string { return KindDM.String() }

// SA is the set-associative strict scheme: A arrays of bucket lists, with
// each thread assigned to one array. Concurrent Reserves rarely touch the
// same list, but Revoke must scan ref's bucket in all A arrays (O(A+T)).
type SA struct {
	arrs []*dmArray
}

// NewSA constructs an RR-SA reservation with cfg.Assoc arrays.
func NewSA(cfg Config) *SA {
	cfg = cfg.withDefaults()
	arrs := make([]*dmArray, cfg.Assoc)
	for i := range arrs {
		arrs[i] = newDMArray(cfg.Threads, cfg.TableBits)
	}
	return &SA{arrs: arrs}
}

// array returns the dmArray thread tid is assigned to.
func (s *SA) array(tid int) *dmArray { return s.arrs[tid%len(s.arrs)] }

// Register implements Reservation.
func (s *SA) Register(tid int) {}

// Reserve implements Reservation.
func (s *SA) Reserve(tx *stm.Tx, tid int, ref uint64) { s.array(tid).reserve(tx, tid, ref) }

// Release implements Reservation.
func (s *SA) Release(tx *stm.Tx, tid int) { s.array(tid).release(tx, tid) }

// Get implements Reservation.
func (s *SA) Get(tx *stm.Tx, tid int) uint64 { return s.array(tid).get(tx, tid) }

// Revoke implements Reservation: every array may hold reservations of ref.
func (s *SA) Revoke(tx *stm.Tx, ref uint64) {
	for _, a := range s.arrs {
		a.revoke(tx, ref)
	}
}

// Strict implements Reservation.
func (s *SA) Strict() bool { return true }

// Name implements Reservation.
func (s *SA) Name() string { return KindSA.String() }
