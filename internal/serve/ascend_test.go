package serve_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
	"hohtx/internal/tree"
)

// sendLines writes raw request lines in one flush (no reply bookkeeping —
// scans have variable-length replies, so roundTrip does not fit).
func (cl *client) sendLines(t *testing.T, reqs ...string) {
	t.Helper()
	for _, r := range reqs {
		cl.bw.WriteString(r)
		cl.bw.WriteByte('\n')
	}
	if err := cl.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// readLine reads one reply line.
func (cl *client) readLine(t *testing.T) string {
	t.Helper()
	line, err := cl.br.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(line, "\n")
}

// readScan consumes one ASCEND reply: OK lines until the terminator (END,
// or an ERR line — the protocol's alternate scan terminator).
func (cl *client) readScan(t *testing.T) (keys []uint64, term string) {
	t.Helper()
	for {
		line := cl.readLine(t)
		if line == "END" || strings.HasPrefix(line, "ERR") {
			return keys, line
		}
		rest, ok := strings.CutPrefix(line, "OK ")
		if !ok {
			t.Fatalf("unexpected scan line %q", line)
		}
		k, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			t.Fatalf("bad scan key in %q: %v", line, err)
		}
		keys = append(keys, k)
	}
}

// ascend runs one ASCEND request and requires a clean END terminator.
func (cl *client) ascend(t *testing.T, lo uint64, n int) []uint64 {
	t.Helper()
	cl.sendLines(t, fmt.Sprintf("ASCEND %d %d", lo, n))
	keys, term := cl.readScan(t)
	if term != "END" {
		t.Fatalf("ASCEND %d %d terminated by %q, want END", lo, n, term)
	}
	return keys
}

func keysEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAscendWireSingleShard drives ASCEND end to end on a one-shard
// server: full scans, bounded scans, midpoint starts, and pipelining
// with point ops — each scan byte-identical to the quiescent snapshot
// range it covers.
func TestAscendWireSingleShard(t *testing.T) {
	_, set, addr := startServer(t, 2)
	cl := dialClient(t, addr)

	var setReqs []string
	for k := 3; k <= 300; k += 3 {
		setReqs = append(setReqs, fmt.Sprintf("SET %d", k))
	}
	cl.roundTrip(t, setReqs...)
	want := set.Snapshot() // quiescent: only this test talks to the server

	if got := cl.ascend(t, 1, 1000); !keysEq(got, want) {
		t.Fatalf("full scan = %v, want %v", got, want)
	}
	if got := cl.ascend(t, 100, 1000); !keysEq(got, want[33:]) {
		t.Fatalf("scan from 100 = %v, want %v", got, want[33:])
	}
	if got := cl.ascend(t, 1, 7); !keysEq(got, want[:7]) {
		t.Fatalf("bounded scan = %v, want %v", got, want[:7])
	}
	// Scans pipeline with point ops: replies come back in order.
	cl.sendLines(t, "SET 1", "ASCEND 1 2", "GET 1", "ASCEND 299 10", "DEL 1")
	if r := cl.readLine(t); r != "1" {
		t.Fatalf("pipelined SET -> %q", r)
	}
	if got, term := cl.readScan(t); term != "END" || !keysEq(got, []uint64{1, 3}) {
		t.Fatalf("pipelined scan -> %v %q", got, term)
	}
	if r := cl.readLine(t); r != "1" {
		t.Fatalf("pipelined GET -> %q", r)
	}
	if got, term := cl.readScan(t); term != "END" || !keysEq(got, []uint64{300}) {
		t.Fatalf("pipelined tail scan -> %v %q", got, term)
	}
	if r := cl.readLine(t); r != "1" {
		t.Fatalf("pipelined DEL -> %q", r)
	}
	// Malformed scans reject without dropping the connection.
	for _, req := range []string{"ASCEND", "ASCEND 1", "ASCEND 0 5", "ASCEND 1 0", "ASCEND x 5"} {
		cl.sendLines(t, req)
		if r := cl.readLine(t); !strings.HasPrefix(r, "ERR") {
			t.Fatalf("%q -> %q, want ERR", req, r)
		}
	}
	info := parseInfo(t, cl.roundTrip(t, "INFO")[0])
	if info["scan"] != "atomic-window" {
		t.Fatalf("INFO scan=%q, want atomic-window", info["scan"])
	}
}

// TestAscendWireSharded checks the cross-shard merge cursor: the streamed
// union of per-shard cursors must be byte-identical to the quiescent
// Sharded.Snapshot over the same range, on 2 and 3 shards.
func TestAscendWireSharded(t *testing.T) {
	for _, shards := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, sh, addr := startShardedServer(t, shards, 2)
			cl := dialClient(t, addr)
			var setReqs []string
			for k := 1; k <= 500; k += 2 {
				setReqs = append(setReqs, fmt.Sprintf("SET %d", k))
			}
			cl.roundTrip(t, setReqs...)
			want := sh.Snapshot()
			if got := cl.ascend(t, 1, 1000); !keysEq(got, want) {
				t.Fatalf("merged scan diverges from Snapshot: got %d keys, want %d", len(got), len(want))
			}
			if got := cl.ascend(t, 251, 1000); !keysEq(got, want[125:]) {
				t.Fatalf("merged scan from 251 = %v, want %v", got, want[125:])
			}
			// A bound under the chunk size exercises the capped pulls.
			if got := cl.ascend(t, 1, 13); !keysEq(got, want[:13]) {
				t.Fatalf("bounded merged scan = %v, want %v", got, want[:13])
			}
			info := parseInfo(t, cl.roundTrip(t, "INFO")[0])
			if info["scan"] != "merged" {
				t.Fatalf("INFO scan=%q, want merged", info["scan"])
			}
		})
	}
}

// TestAscendWireWeakConsistency runs wire scans against concurrent wire
// writers on 1- and 2-shard servers and asserts the contract: strictly
// ascending (hence exactly-once), every present-throughout key delivered,
// and nothing outside the live key space.
func TestAscendWireWeakConsistency(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var addr string
			if shards == 1 {
				_, _, addr = startServer(t, 4)
			} else {
				_, _, addr = startShardedServer(t, shards, 4)
			}
			scanner := dialClient(t, addr)
			var stableReqs []string
			for k := 1; k <= 99; k += 2 {
				stableReqs = append(stableReqs, fmt.Sprintf("SET %d", k))
			}
			scanner.roundTrip(t, stableReqs...)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c, err := net.Dial("tcp", addr)
					if err != nil {
						t.Errorf("writer dial: %v", err)
						return
					}
					defer c.Close()
					br, bw := bufio.NewReader(c), bufio.NewWriter(c)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := (i*2+w*4)%100 + 100 // churn keys 100..199
						fmt.Fprintf(bw, "SET %d\nDEL %d\n", k, k)
						if bw.Flush() != nil {
							return
						}
						for j := 0; j < 2; j++ {
							if _, err := br.ReadString('\n'); err != nil {
								return
							}
						}
					}
				}(w)
			}
			for round := 0; round < 20; round++ {
				got := scanner.ascend(t, 1, 10000)
				last, seen := uint64(0), 0
				for _, k := range got {
					if k <= last {
						t.Fatalf("round %d: not strictly ascending at %d", round, k)
					}
					last = k
					switch {
					case k <= 99 && k%2 == 1:
						seen++
					case k >= 100 && k <= 199: // in-flight churn key: allowed
					default:
						t.Fatalf("round %d: impossible key %d", round, k)
					}
				}
				if seen != 50 {
					t.Fatalf("round %d: saw %d of 50 stable keys", round, seen)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// startServerOn builds a single-shard server over an arbitrary set.
func startServerOn(t *testing.T, set sets.Set, slots int) string {
	t.Helper()
	pool := serve.NewPool(set, serve.PoolConfig{Slots: slots})
	srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestAscendWireUnsupported pins the never-panic contract: variants that
// cannot scan — whether they implement Ascender but refuse (TMHP list)
// or lack the interface outright (trees) — answer ERR scan unsupported,
// advertise scan=none, and keep the connection alive.
func TestAscendWireUnsupported(t *testing.T) {
	build := func(f bench.Family, name string) sets.Set {
		s, err := bench.Build(f, bench.VariantSpec{Name: name}, 2)
		if err != nil {
			t.Fatalf("build %s/%s: %v", f, name, err)
		}
		return s
	}
	for _, tc := range []struct {
		label string
		set   sets.Set
	}{
		{"tmhp-list", build(bench.FamilySingly, "TMHP")},
		{"rr-itree", build(bench.FamilyInternalTree, "RR-V")},
	} {
		t.Run(tc.label, func(t *testing.T) {
			addr := startServerOn(t, tc.set, 2)
			cl := dialClient(t, addr)
			cl.roundTrip(t, "SET 10", "SET 20")
			cl.sendLines(t, "ASCEND 1 10")
			if r := cl.readLine(t); r != "ERR scan unsupported" {
				t.Fatalf("ASCEND -> %q, want ERR scan unsupported", r)
			}
			// The connection survived and still serves point ops.
			if r := cl.roundTrip(t, "GET 10")[0]; r != "1" {
				t.Fatalf("GET after refused scan -> %q, want 1", r)
			}
			info := parseInfo(t, cl.roundTrip(t, "INFO")[0])
			if info["scan"] != "none" {
				t.Fatalf("INFO scan=%q, want none", info["scan"])
			}
		})
	}
}

// TestServerSaturationKeepsConnection pins the shedding contract from the
// client's side: with the only slot leased out-of-band and the wait queue
// full, GET / MULTI / ASCEND / auto-batched requests are answered with
// ERR lines — and the SAME connection keeps working once the pool frees
// up. Before this fix the server dropped the whole pipelined connection.
func TestServerSaturationKeepsConnection(t *testing.T) {
	set := newSet(t, 1)
	pool := serve.NewPool(set, serve.PoolConfig{Slots: 1, MaxWaiters: 1})
	srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool, AutoBatch: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	cl := dialClient(t, ln.Addr().String())
	if r := cl.roundTrip(t, "SET 7")[0]; r != "1" {
		t.Fatalf("warm-up SET -> %q", r)
	}

	saturate := func() (release func()) {
		t.Helper()
		slot, err := pool.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		waiterDone := make(chan struct{})
		go func() {
			defer close(waiterDone)
			s, err := pool.Acquire(context.Background())
			if err == nil {
				pool.Release(s)
			}
		}()
		for i := 0; pool.Stats().Waiting < 1; i++ {
			if i > 5000 {
				t.Fatal("waiter never queued")
			}
			time.Sleep(time.Millisecond)
		}
		return func() {
			pool.Release(slot)
			<-waiterDone
		}
	}

	// Plain verb: the request is shed, the connection is not.
	release := saturate()
	cl.sendLines(t, "GET 7")
	if r := cl.readLine(t); !strings.HasPrefix(r, "ERR") {
		t.Fatalf("saturated GET -> %q, want ERR", r)
	}
	release()
	if r := cl.roundTrip(t, "GET 7")[0]; r != "1" {
		t.Fatalf("GET after shed -> %q, want 1 on the same connection", r)
	}

	// Auto-batched burst: every un-executed op gets its own ERR reply.
	release = saturate()
	cl.sendLines(t, "GET 7", "GET 7", "GET 7")
	for i := 0; i < 3; i++ {
		if r := cl.readLine(t); !strings.HasPrefix(r, "ERR") {
			t.Fatalf("saturated burst reply %d -> %q, want ERR", i, r)
		}
	}
	release()

	// MULTI frame: one ERR line, no body replies, connection intact.
	release = saturate()
	cl.sendLines(t, "MULTI 2", "GET 7", "GET 7")
	if r := cl.readLine(t); !strings.HasPrefix(r, "ERR multi:") {
		t.Fatalf("saturated MULTI -> %q, want ERR multi:", r)
	}
	release()

	// ASCEND: the ERR line is the scan's terminator, not the connection's.
	release = saturate()
	cl.sendLines(t, "ASCEND 1 10")
	if _, term := cl.readScan(t); !strings.HasPrefix(term, "ERR") {
		t.Fatalf("saturated ASCEND terminated by %q, want ERR", term)
	}
	release()

	if got := cl.ascend(t, 1, 10); !keysEq(got, []uint64{7}) {
		t.Fatalf("post-shed scan = %v, want [7]", got)
	}
	if r := cl.roundTrip(t, "GET 7")[0]; r != "1" {
		t.Fatalf("final GET -> %q: connection should have survived everything", r)
	}
}

// TestServerMaxKeyDefault pins the default key bound to the exported
// tree.MaxKey constant (the hardcoded copy used to be able to drift).
func TestServerMaxKeyDefault(t *testing.T) {
	if tree.MaxKey != ^uint64(0)-3 {
		t.Fatalf("tree.MaxKey = %d, want %d", uint64(tree.MaxKey), ^uint64(0)-3)
	}
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	if r := cl.roundTrip(t, fmt.Sprintf("GET %d", uint64(tree.MaxKey)))[0]; r != "0" {
		t.Fatalf("GET tree.MaxKey -> %q, want 0 (in range)", r)
	}
	if r := cl.roundTrip(t, fmt.Sprintf("GET %d", uint64(tree.MaxKey)+1))[0]; !strings.HasPrefix(r, "ERR key") {
		t.Fatalf("GET tree.MaxKey+1 -> %q, want out-of-range ERR", r)
	}
}
