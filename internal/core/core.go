// Package core implements revocable reservations, the central contribution
// of the paper (§2–§3).
//
// A revocable reservation is a shared object with four operations, all
// invoked from within transactions (here: inside an stm.Runtime.Atomic
// closure):
//
//	Reserve(r)  add reference r to the calling thread's reservation
//	Get()       return the thread's reserved reference, or nil (0)
//	Release()   drop the thread's reservation
//	Revoke(r)   remove r from EVERY thread's reservation
//
// Hand-over-hand operations reserve their traversal position at the end of
// each window transaction and Get it back at the start of the next; a
// remover Revokes a node before freeing it, so no later window can resume
// from reclaimed memory. Because every method executes transactionally, a
// Revoke conflicts with concurrent uses of the same reservation, which is
// what lets memory be reclaimed *immediately* without a grace period.
//
// Six implementations are provided, exactly the paper's taxonomy:
//
//	strict  — Get returns nil only if the reference was released/revoked:
//	          FA (fully associative, Listing 2), DM (direct mapped),
//	          SA (set associative)
//	relaxed — Get may spuriously return nil after an unrelated Revoke or
//	          Reserve that collides under a hash:
//	          XO (exclusive ownership, Listing 3), SO (shared ownership),
//	          V (versioned, Listing 4)
//
// References are arena.Handle values transported as uint64; 0 means nil.
//
// The paper presents the algorithms with one reservation per thread and
// notes the extension to sets is straightforward; the data structures in
// this repository need exactly one (the window start), so one is what these
// implementations provide.
package core

import (
	"fmt"

	"hohtx/internal/stm"
)

// Reservation is the revocable reservation shared object (paper §2,
// Listing 1). All methods except Register must be called from within a
// transaction. tid identifies the calling thread and must be in
// [0, Config.Threads); concurrent callers must use distinct tids.
type Reservation interface {
	// Register announces that thread tid will use the object. It must be
	// called (once) before the thread's first transactional operation,
	// and is idempotent.
	Register(tid int)
	// Reserve records ref as tid's reservation, replacing any prior one.
	Reserve(tx *stm.Tx, tid int, ref uint64)
	// Release drops tid's reservation.
	Release(tx *stm.Tx, tid int)
	// Get returns tid's reserved reference, or 0 if it has none, released
	// it, or it was revoked (relaxed implementations may also return 0
	// spuriously; see Strict).
	Get(tx *stm.Tx, tid int) uint64
	// Revoke removes ref from every thread's reservation.
	Revoke(tx *stm.Tx, ref uint64)
	// Strict reports whether Get is precise: a non-spurious nil implies
	// the reference was truly released or revoked. The doubly linked
	// list's unlink-in-a-second-transaction optimization is only sound
	// for strict implementations (§4.2).
	Strict() bool
	// Name is the implementation's label as used in the paper's figures
	// (e.g. "RR-XO").
	Name() string
}

// Kind enumerates the six implementations.
type Kind uint8

const (
	// KindFA is the fully associative strict scheme (Listing 2).
	KindFA Kind = iota
	// KindDM is the direct-mapped strict scheme.
	KindDM
	// KindSA is the set-associative strict scheme.
	KindSA
	// KindXO is the exclusive-ownership relaxed scheme (Listing 3).
	KindXO
	// KindSO is the shared-ownership relaxed scheme.
	KindSO
	// KindV is the versioned relaxed scheme (Listing 4).
	KindV

	// NumKinds is the number of reservation implementations.
	NumKinds
)

// String returns the paper's name for the implementation.
func (k Kind) String() string {
	switch k {
	case KindFA:
		return "RR-FA"
	case KindDM:
		return "RR-DM"
	case KindSA:
		return "RR-SA"
	case KindXO:
		return "RR-XO"
	case KindSO:
		return "RR-SO"
	case KindV:
		return "RR-V"
	default:
		return fmt.Sprintf("RR-?%d", uint8(k))
	}
}

// Kinds returns all six kinds in the paper's presentation order.
func Kinds() []Kind {
	return []Kind{KindFA, KindDM, KindSA, KindXO, KindSO, KindV}
}

// Config parameterizes reservation construction.
type Config struct {
	// Threads is the number of distinct tids that will use the object.
	// Required.
	Threads int
	// TableBits sizes the hash-indexed metadata arrays (buckets for
	// DM/SA, ownership/version tables for XO/SO/V) at 1<<TableBits
	// entries. Default 14.
	TableBits int
	// Assoc is A, the number of arrays in the set-associative schemes
	// (SA and SO). Default 8, the value used in the paper's evaluation.
	Assoc int
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 64
	}
	if c.TableBits <= 0 {
		c.TableBits = 14
	}
	if c.Assoc <= 0 {
		c.Assoc = 8
	}
	return c
}

// New constructs a reservation of the given kind.
func New(k Kind, cfg Config) Reservation {
	switch k {
	case KindFA:
		return NewFA(cfg)
	case KindDM:
		return NewDM(cfg)
	case KindSA:
		return NewSA(cfg)
	case KindXO:
		return NewXO(cfg)
	case KindSO:
		return NewSO(cfg)
	case KindV:
		return NewV(cfg)
	default:
		panic(fmt.Sprintf("core: unknown reservation kind %d", k))
	}
}

// hashRef maps a reference to a table slot with a 64-bit finalizer
// (splitmix64). Arena handles differ in both index and generation bits;
// the mix spreads either.
func hashRef(ref uint64, mask uint64) uint64 {
	x := ref
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & mask
}
