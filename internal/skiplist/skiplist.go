// Package skiplist implements a concurrent skiplist set with hand-over-hand
// transactions and revocable reservations — one of the "other concurrent
// data structures, such as balanced trees and hash tables, for which
// existing scalable algorithms rely on deferred memory reclamation" that the
// paper's conclusion (§6) proposes as the technique's next applications.
// Probabilistic balancing makes the skiplist the natural stand-in for a
// balanced tree here: it gives O(log n) expected traversals with none of the
// rotation problem (a rotation moves subtrees across regions, which would
// force wide revocation; a skiplist removal disturbs exactly one node).
//
// Design. A node has a height h drawn geometrically and participates in h
// sorted chains. A traversal descends as usual: run right along level l
// while next.key < target, then drop a level. Hand-over-hand windows cut
// the traversal after W node inspections; the thread reserves the node it
// will resume from and remembers the level in thread-local state (the
// level needs no protection: if the reservation is still valid the node is
// still in every one of its chains with its key intact, so resuming the
// descent from (node, level) is exactly a sequential search step).
//
// Removal unlinks the victim from all of its levels inside the final
// transaction, revokes it once, and frees it at the commit point — precise
// reclamation, one Revoke per removal regardless of height. The correctness
// argument is the singly linked list's (§4.1), applied per level: unlinking
// never changes any surviving node's key or forward reachability, so the
// only resumption point a removal can invalidate is the removed node
// itself, which is exactly what Revoke clears.
package skiplist

import (
	"fmt"

	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
	"hohtx/internal/reclaim"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// MaxHeight bounds node heights; 2^20 expected keys per level-20 node is
// far beyond the benchmark sizes.
const MaxHeight = 20

// Mode selects the synchronization mechanism.
type Mode uint8

const (
	// ModeRR is hand-over-hand transactions with revocable reservations.
	ModeRR Mode = iota
	// ModeHTM runs each operation as a single transaction.
	ModeHTM
	// ModeTMHE is hand-over-hand with hazard-era deferred reclamation
	// (the TMHP window protocol with era reservations; DESIGN.md §14).
	ModeTMHE
	// ModeTMVBR is hand-over-hand with version-based reclamation: no
	// reservations at all, resumed positions revalidate (DESIGN.md §14).
	ModeTMVBR
)

// node is a skiplist element. height is immutable after the insert that
// published the node commits; next[0:height] are the forward links; dead
// is the deferred modes' logical-deletion mark.
type node struct {
	key    stm.Word
	height stm.Word
	dead   stm.Word
	next   [MaxHeight]stm.Word
	_      pad.Line
}

type threadState struct {
	level  int          // resume level for a held position
	start  arena.Handle // resume node for the deferred modes
	parity int          // era-slot parity (ModeTMHE)
	ops    uint64
	rng    uint64
	_      pad.Line
}

// Config parameterizes the skiplist.
type Config struct {
	// Mode selects the mechanism; default ModeRR.
	Mode Mode
	// RRKind selects the reservation scheme for ModeRR.
	RRKind core.Kind
	// Threads is the number of distinct tids. Required.
	Threads int
	// Window is the hand-over-hand window policy (node inspections per
	// transaction); ignored for ModeHTM.
	Window core.Window
	// Profile overrides the TM profile (default: the tree setting,
	// serial fallback after 8 attempts).
	Profile stm.Profile
	// ArenaPolicy selects the allocator policy.
	ArenaPolicy arena.Policy
	// YieldShift enables simulated preemption (see stm.Profile).
	YieldShift uint8
	// ClockPolicy selects the TM global-clock policy (see
	// stm.Profile.ClockPolicy); composes with the Profile like YieldShift.
	ClockPolicy stm.ClockPolicy
	// ScanThreshold is the retire batch size for the deferred modes
	// (ModeTMHE scans, ModeTMVBR self-tick cadence).
	ScanThreshold int
	// TableBits/Assoc size the reservation metadata.
	TableBits int
	Assoc     int
	// Guard enables the arena use-after-free sanitizer (see guard.go and
	// the identically named field in package list).
	Guard bool
	// GuardSink receives guard violations instead of the default panic.
	GuardSink func(arena.GuardEvent)
	// Obs, when non-nil, threads the observability domain through every
	// layer the skiplist owns (see the identically named field in package
	// list). Nil keeps every instrumented site at a single nil/branch
	// check.
	Obs *obs.Domain
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Profile == (stm.Profile{}) {
		c.Profile = stm.HTMProfile(8)
	}
	if c.YieldShift != 0 {
		c.Profile.YieldShift = c.YieldShift
	}
	if c.ClockPolicy != 0 {
		c.Profile.ClockPolicy = c.ClockPolicy
	}
	if c.Window.W == 0 && c.Mode != ModeHTM {
		c.Window.W = 16
	}
	if c.Mode == ModeHTM {
		c.Window = core.Window{}
	}
	if c.ScanThreshold <= 0 {
		c.ScanThreshold = reclaim.DefaultScanThreshold
	}
	return c
}

// SkipList is the concurrent set.
type SkipList struct {
	rt      *stm.Runtime
	ar      *arena.Arena[node]
	rr      core.Reservation
	he      *reclaim.HazardEras
	vbr     *reclaim.VBR
	mode    Mode
	win     core.Window
	head    arena.Handle // sentinel at full height, key 0
	threads []threadState
	guard   bool
	obs     *obs.Domain

	scanWindows *obs.Histogram // window txs per Ascend (nil without Obs)
	scanRenavs  *obs.Histogram // re-navigations per Ascend (nil without Obs)
}

var _ sets.Set = (*SkipList)(nil)
var _ sets.MemoryReporter = (*SkipList)(nil)

// New constructs a skiplist set.
func New(cfg Config) *SkipList {
	cfg = cfg.withDefaults()
	s := &SkipList{
		rt: stm.NewRuntime(cfg.Profile),
		ar: arena.New[node](arena.Config{
			Threads: cfg.Threads, Policy: cfg.ArenaPolicy,
			Guard: cfg.Guard, AccessCheck: cfg.GuardSink,
		}),
		mode:    cfg.Mode,
		win:     cfg.Window,
		threads: make([]threadState, cfg.Threads),
		guard:   cfg.Guard,
	}
	s.ar.SetRetire(func(n *node) { retireNode(n, s.rt.VersionFence()) })
	if cfg.Guard {
		s.ar.SetPoison(poisonNode)
	}
	switch cfg.Mode {
	case ModeRR:
		s.rr = core.New(cfg.RRKind, core.Config{
			Threads: cfg.Threads, TableBits: cfg.TableBits, Assoc: cfg.Assoc,
		})
	case ModeTMHE:
		s.he = reclaim.NewHazardEras(reclaim.HEConfig{
			Threads:        cfg.Threads,
			SlotsPerThread: 2,
			ScanThreshold:  cfg.ScanThreshold,
			Free:           func(tid int, h arena.Handle) { s.ar.Free(tid, h) },
		})
	case ModeTMVBR:
		s.vbr = reclaim.NewVBR(reclaim.VBRConfig{
			Threads:   cfg.Threads,
			TickEvery: cfg.ScanThreshold,
			Clock:     s.rt.VersionFence,
			Tick:      s.rt.TickVersionFence,
			Free:      func(tid int, h arena.Handle) { s.ar.Free(tid, h) },
		})
	}
	if cfg.Obs != nil {
		s.obs = cfg.Obs
		s.scanWindows = cfg.Obs.Hist(obs.HistAscendWindows, "txs")
		s.scanRenavs = cfg.Obs.Hist(obs.HistAscendRenavs, "navs")
		s.rt.SetObserver(cfg.Obs.TxProbe())
		s.ar.SetObserver(cfg.Obs.AllocProbe())
		if s.rr != nil {
			s.rr = core.Observed(s.rr, cfg.Obs.HoldProbe(), cfg.Threads)
		}
		if s.he != nil {
			s.he.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return s.he.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return s.he.Stats().PeakDeferred })
		}
		if s.vbr != nil {
			s.vbr.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return s.vbr.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return s.vbr.Stats().PeakDeferred })
		}
	}
	for i := range s.threads {
		s.threads[i].rng = uint64(i)*0x9e3779b97f4a7c15 + 0xdeadbeef
	}
	s.head = s.ar.Alloc(0)
	h := s.ar.At(s.head)
	h.key.Init(0)
	h.height.Init(MaxHeight)
	h.dead.Init(0)
	for l := 0; l < MaxHeight; l++ {
		h.next[l].Init(0)
	}
	return s
}

// Name implements sets.Set.
func (s *SkipList) Name() string {
	switch s.mode {
	case ModeRR:
		return s.rr.Name() + "/skip"
	case ModeHTM:
		return "HTM/skip"
	case ModeTMHE:
		return "TMHE/skip"
	case ModeTMVBR:
		return "TMVBR/skip"
	default:
		return fmt.Sprintf("skip-?%d", s.mode)
	}
}

// Register implements sets.Set.
func (s *SkipList) Register(tid int) {
	if s.rr != nil {
		s.rr.Register(tid)
	}
}

// Finish implements sets.Set: the deferred modes drain their retired
// lists (no-op for the precise modes).
func (s *SkipList) Finish(tid int) {
	if s.he != nil {
		s.he.ClearSlots(tid)
		s.he.Flush(tid, s.threads[tid].ops)
	}
	if s.vbr != nil {
		s.vbr.Flush(tid, s.threads[tid].ops)
	}
}

// Runtime exposes the TM runtime.
func (s *SkipList) Runtime() *stm.Runtime { return s.rt }

// ObsDomain returns the attached observability domain (nil when detached).
func (s *SkipList) ObsDomain() *obs.Domain { return s.obs }

// randHeight draws a geometric height in [1, MaxHeight] (p = 1/2).
func (s *SkipList) randHeight(tid int) int {
	ts := &s.threads[tid]
	x := ts.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ts.rng = x
	h := 1
	for x&1 == 1 && h < MaxHeight {
		h++
		x >>= 1
	}
	return h
}

// TxCommits, TxAborts, TxSerial report TM statistics.
func (s *SkipList) TxCommits() uint64 { return s.rt.Stats().Commits }
func (s *SkipList) TxAborts() uint64  { return s.rt.Stats().TotalAborts() }
func (s *SkipList) TxSerial() uint64  { return s.rt.Stats().SerialCommits }

// TMStats returns the full TM statistics snapshot (per-cause aborts,
// clock and commit-lock counters).
func (s *SkipList) TMStats() stm.Stats { return s.rt.Stats() }

// deferredScheme returns the deferred-reclamation scheme, nil for the
// precise modes.
func (s *SkipList) deferredScheme() reclaim.Scheme {
	switch {
	case s.he != nil:
		return s.he
	case s.vbr != nil:
		return s.vbr
	}
	return nil
}

// PeakDeferred reports the reclamation scheme's deferred high-water mark
// (zero for the precise modes).
func (s *SkipList) PeakDeferred() uint64 {
	if sc := s.deferredScheme(); sc != nil {
		return sc.Stats().PeakDeferred
	}
	return 0
}

// ReclaimStats exposes the deferred-reclamation counters (zero for the
// precise modes).
func (s *SkipList) ReclaimStats() reclaim.Stats {
	if sc := s.deferredScheme(); sc != nil {
		return sc.Stats()
	}
	return reclaim.Stats{}
}

// AvgReclaimDelayOps reports the mean operations between logical deletion
// and physical free (0 for the precise modes).
func (s *SkipList) AvgReclaimDelayOps() float64 {
	if sc := s.deferredScheme(); sc != nil {
		return sc.Stats().AvgDelayOps()
	}
	return 0
}

// LiveNodes implements sets.MemoryReporter.
func (s *SkipList) LiveNodes() uint64 { return s.ar.Stats().Live }

// DeferredNodes implements sets.MemoryReporter.
func (s *SkipList) DeferredNodes() uint64 {
	if sc := s.deferredScheme(); sc != nil {
		return sc.Stats().Deferred
	}
	return 0
}

// Snapshot implements sets.Set via the bottom level (quiescence required).
func (s *SkipList) Snapshot() []uint64 {
	var out []uint64
	for h := arena.Handle(s.ar.At(s.head).next[0].Raw()); !h.IsNil(); {
		n := s.ar.At(h)
		out = append(out, n.key.Raw())
		h = arena.Handle(n.next[0].Raw())
	}
	return out
}

// ValidateLevels checks that every level is sorted and a sub-sequence of
// the level below (test helper; quiescence required).
func (s *SkipList) ValidateLevels() bool {
	bottom := map[uint64]bool{}
	for _, k := range s.Snapshot() {
		bottom[k] = true
	}
	for l := 0; l < MaxHeight; l++ {
		prev := uint64(0)
		for h := arena.Handle(s.ar.At(s.head).next[l].Raw()); !h.IsNil(); {
			n := s.ar.At(h)
			k := n.key.Raw()
			if l > 0 && !bottom[k] {
				return false // node on level l missing from level 0
			}
			if k <= prev {
				return false // not strictly sorted
			}
			if int(n.height.Raw()) <= l {
				return false // linked above its own height
			}
			prev = k
			h = arena.Handle(n.next[l].Raw())
		}
	}
	return true
}
