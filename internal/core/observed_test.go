package core

import (
	"testing"

	"hohtx/internal/obs"
	"hohtx/internal/stm"
)

// TestObservedHoldLifecycle drives one reservation through
// reserve→get→release and reserve→revoke→get and checks a hold-time
// sample is recorded for each completed hold.
func TestObservedHoldLifecycle(t *testing.T) {
	rt := stm.NewRuntime(stm.Profile{})
	d := obs.NewDomain(obs.DomainConfig{Name: "core-test", Threads: 4})
	r := Observed(New(KindFA, Config{Threads: 4}), d.HoldProbe(), 4)
	r.Register(0)
	r.Register(1)

	holdCount := func() uint64 {
		hs, _ := d.Snapshot().Hist(obs.HistHoldNs)
		return hs.Count
	}

	// Hold 1: reserve then release.
	rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 0, 42) })
	rt.Atomic(func(tx *stm.Tx) {
		if got := r.Get(tx, 0); got != 42 {
			t.Fatalf("Get = %d", got)
		}
	})
	if holdCount() != 0 {
		t.Fatal("hold ended before release")
	}
	rt.Atomic(func(tx *stm.Tx) { r.Release(tx, 0) })
	if holdCount() != 1 {
		t.Fatalf("after release, %d holds recorded", holdCount())
	}

	// Hold 2: reserve, another thread revokes, owner observes via Get.
	rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 0, 77) })
	rt.Atomic(func(tx *stm.Tx) { r.Revoke(tx, 77) })
	if holdCount() != 1 {
		t.Fatal("revoke alone must not end the victim's timed hold")
	}
	rt.Atomic(func(tx *stm.Tx) {
		if got := r.Get(tx, 0); got != 0 {
			t.Fatalf("Get after revoke = %d", got)
		}
	})
	if holdCount() != 2 {
		t.Fatalf("after observed revoke, %d holds recorded", holdCount())
	}

	// Hold 3: a replacement Reserve ends the previous hold and starts a
	// new one.
	rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 1, 10) })
	rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 1, 11) })
	if holdCount() != 3 {
		t.Fatalf("replacement reserve: %d holds recorded", holdCount())
	}
	rt.Atomic(func(tx *stm.Tx) { r.Release(tx, 1) })
	if holdCount() != 4 {
		t.Fatalf("final release: %d holds recorded", holdCount())
	}
}

// TestObservedNilProbe checks the nil-probe fast path returns the
// underlying reservation untouched.
func TestObservedNilProbe(t *testing.T) {
	r := New(KindV, Config{Threads: 2})
	if got := Observed(r, nil, 2); got != r {
		t.Fatal("nil probe must return the reservation unwrapped")
	}
}

// TestObservedAbortLeavesNoTrace aborts a reserving transaction and
// checks no hold was started (hooks only run on commit).
func TestObservedAbortLeavesNoTrace(t *testing.T) {
	rt := stm.NewRuntime(stm.Profile{})
	d := obs.NewDomain(obs.DomainConfig{Name: "core-abort", Threads: 2})
	r := Observed(New(KindFA, Config{Threads: 2}), d.HoldProbe(), 2)
	r.Register(0)
	first := true
	rt.Atomic(func(tx *stm.Tx) {
		if first {
			first = false
			r.Reserve(tx, 0, 5)
			tx.Restart() // the reserve above must not start a hold
		}
	})
	rt.Atomic(func(tx *stm.Tx) { r.Release(tx, 0) })
	hs, ok := d.Snapshot().Hist(obs.HistHoldNs)
	if ok && hs.Count != 0 {
		t.Fatalf("aborted reserve leaked %d hold samples", hs.Count)
	}
}
