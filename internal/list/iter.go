package list

import (
	"hohtx/internal/arena"
	"hohtx/internal/stm"
)

// Ordered iteration.
//
// Ascend is a natural application of revocable reservations beyond point
// operations: the iterator's position *is* a reservation. Each step runs
// one window transaction that re-acquires the position via Get, emits up
// to W keys, and re-reserves where it stopped. If a concurrent Remove
// revokes the position (or a relaxed scheme loses it spuriously), the
// iterator re-navigates by key — it searches for the first key greater
// than the last one delivered — so iteration always makes progress and
// never touches freed memory, while removals remain free to reclaim
// immediately.
//
// The result is weakly consistent, like sync.Map.Range: each window sees
// a consistent snapshot, keys are delivered in ascending order exactly
// once, and a key is guaranteed to appear iff it was present for the whole
// iteration. This is the strongest guarantee hand-over-hand structures
// admit without giving up small transactions.

// Ascend calls fn for each key >= from, in ascending order, until fn
// returns false or the list is exhausted. Only ModeRR and ModeHTM lists
// support it (ModeHTM runs the whole scan as one transaction).
func (l *List) Ascend(tid int, from uint64, fn func(key uint64) bool) {
	if l.mode != ModeRR && l.mode != ModeHTM {
		panic("list: Ascend requires ModeRR or ModeHTM")
	}
	l.threads[tid].ops++
	last := from // next key to deliver must be >= last
	var batch []uint64
	for {
		done := false
		batch = batch[:0]
		l.rt.AtomicT(tid, func(tx *stm.Tx) {
			done = false
			batch = batch[:0]
			win := l.window()
			startH, held := l.windowStart(tx, tid, l.head)
			var budget int
			if held {
				budget = win.Next()
			} else {
				budget = win.First(tx)
			}
			if l.mode == ModeHTM {
				budget = int(^uint(0) >> 1)
			}
			// Navigate to the first key >= last (no-op when resuming at a
			// reserved node, whose key is < last by construction).
			prevH := startH
			currH := arena.Handle(l.ar.At(prevH).next.Load(tx))
			steps := 0
			for !currH.IsNil() {
				n := l.ar.At(currH)
				k := n.key.Load(tx)
				if k >= last {
					batch = append(batch, k)
				}
				prevH = currH
				currH = arena.Handle(n.next.Load(tx))
				steps++
				if steps >= budget {
					// Cut even with an empty batch: re-navigation after a
					// revocation must also stay windowed. The hold lands
					// on a node with key < last, and the next window
					// resumes the filtered walk from it.
					break
				}
			}
			if currH.IsNil() {
				// Reached the end: this window completes the scan.
				l.windowTerminal(tx, tid, held, startH)
				done = true
				return
			}
			// Hand over at prevH (the node holding the last batched key).
			l.windowHold(tx, tid, held, startH, prevH)
		})
		for _, k := range batch {
			if !fn(k) {
				// Consumer stopped early: drop the hold so the next
				// operation starts cleanly.
				l.dropHoldOutsideWindow(tid)
				return
			}
			last = k + 1
		}
		if done {
			return
		}
	}
}

// dropHoldOutsideWindow releases the iterator's reservation from outside
// any window transaction (early consumer termination).
func (l *List) dropHoldOutsideWindow(tid int) {
	if l.mode != ModeRR {
		return
	}
	l.rt.AtomicT(tid, func(tx *stm.Tx) {
		l.rr.Release(tx, tid)
	})
}
