package list

import (
	"math/rand"
	"testing"

	"hohtx/internal/core"
	"hohtx/internal/sets"
)

func hashVariants(threads int) []*HashTable {
	var out []*HashTable
	for _, k := range core.Kinds() {
		out = append(out, NewHashTable(Config{
			Mode: ModeRR, RRKind: k, Threads: threads, Window: core.Window{W: 4},
		}, 16))
	}
	out = append(out,
		NewHashTable(Config{Mode: ModeHTM, Threads: threads}, 16),
		NewHashTable(Config{Mode: ModeTMHP, Threads: threads, Window: core.Window{W: 4}, ScanThreshold: 8}, 16),
		NewHashTable(Config{Mode: ModeTMHE, Threads: threads, Window: core.Window{W: 4}, ScanThreshold: 8}, 16),
		NewHashTable(Config{Mode: ModeTMVBR, Threads: threads, Window: core.Window{W: 4}, ScanThreshold: 8}, 16),
	)
	return out
}

func TestHashTableSequential(t *testing.T) {
	for _, h := range hashVariants(1) {
		t.Run(h.Name(), func(t *testing.T) {
			h.Register(0)
			rng := rand.New(rand.NewSource(13))
			model := map[uint64]bool{}
			for i := 0; i < 4000; i++ {
				key := uint64(rng.Intn(512)) + 1
				switch rng.Intn(3) {
				case 0:
					if got, want := h.Insert(0, key), !model[key]; got != want {
						t.Fatalf("Insert(%d) = %v want %v", key, got, want)
					}
					model[key] = true
				case 1:
					if got, want := h.Remove(0, key), model[key]; got != want {
						t.Fatalf("Remove(%d) = %v want %v", key, got, want)
					}
					delete(model, key)
				default:
					if got, want := h.Lookup(0, key), model[key]; got != want {
						t.Fatalf("Lookup(%d) = %v want %v", key, got, want)
					}
				}
			}
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			if got := h.Snapshot(); !sets.KeysEqual(got, want) {
				t.Fatal("final snapshot mismatch")
			}
			h.Finish(0)
		})
	}
}

func TestHashTableBucketing(t *testing.T) {
	h := NewHashTable(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 1}, 9)
	if h.Buckets() != 16 {
		t.Fatalf("buckets = %d, want 16 (rounded up)", h.Buckets())
	}
	h.Register(0)
	for k := uint64(1); k <= 512; k++ {
		h.Insert(0, k)
	}
	sizes := h.BucketSizes()
	total, empty := 0, 0
	for _, n := range sizes {
		total += n
		if n == 0 {
			empty++
		}
	}
	if total != 512 {
		t.Fatalf("bucket sizes sum to %d, want 512", total)
	}
	if empty > 0 {
		t.Fatalf("%d of 16 buckets empty after 512 inserts: bad spread", empty)
	}
}

func TestHashTablePreciseReclamation(t *testing.T) {
	h := NewHashTable(Config{Mode: ModeRR, RRKind: core.KindXO, Threads: 1, Window: core.Window{W: 2}}, 8)
	h.Register(0)
	base := h.LiveNodes() // 8 sentinels
	if base != 8 {
		t.Fatalf("base live = %d, want 8 sentinels", base)
	}
	for k := uint64(1); k <= 200; k++ {
		h.Insert(0, k)
	}
	for k := uint64(1); k <= 200; k++ {
		h.Remove(0, k)
		if h.DeferredNodes() != 0 {
			t.Fatal("hash table deferred a free")
		}
	}
	if live := h.LiveNodes(); live != base {
		t.Fatalf("live = %d after emptying, want %d", live, base)
	}
}

func TestHashTableConcurrentStress(t *testing.T) {
	const threads = 8
	for _, h := range hashVariants(threads) {
		t.Run(h.Name(), func(t *testing.T) {
			runStress(t, h, threads, 1500, 1024, memAdapter{h})
		})
	}
}

// memAdapter corrects the sentinel count for the generic stress checker
// (runStress assumes 1 sentinel; the table has one per bucket).
type memAdapter struct{ h *HashTable }

func (m memAdapter) LiveNodes() uint64 {
	return m.h.LiveNodes() - uint64(m.h.Buckets()) + 1
}
func (m memAdapter) DeferredNodes() uint64 { return m.h.DeferredNodes() }
