// Command hohload is the load generator for cmd/hohserver. By default it
// runs closed-loop: a configurable number of connections, each keeping a
// fixed number of pipelined requests in flight, drawing keys uniformly
// from a range with a configurable read ratio. With -rate it runs
// open-loop instead: requests are scheduled on a fixed cadence summing to
// the target rate across connections, each connection's writer sends on
// schedule whether or not earlier replies have arrived, and latency is
// measured from each request's *intended* send time — so a server stall
// shows up as the queueing delay a real client would suffer, not as a
// conveniently paused load generator (the coordinated-omission trap).
//
// Either way it reports throughput and client-observed latency
// percentiles, samples the server's INFO line throughout the run to
// verify the live-node count stays flat (precise reclamation observed
// from outside the process), and can emit the same JSON shape as
// cmd/benchjson so server-mode numbers land in BENCH_<n>.json next to the
// in-process ones.
//
// Usage:
//
//	hohload -addr 127.0.0.1:7070 -conns 4 -depth 8 -reads 50 -ops 20000
//	hohload -addr 127.0.0.1:7070 -rate 20000 -ops 20000   # open loop, 20k req/s
//	hohload -addr 127.0.0.1:7070 -batch 64                # MULTI frames of 64 ops
//	hohload -addr 127.0.0.1:7070 -out BENCH_3.json
//	hohload -addr 127.0.0.1:7070 -out BENCH_4.json -append   # accumulate cells
//	hohload -addr 127.0.0.1:7070 -cmd 'SET 42;GET 42;LEN;DEL 42;LEN'
//
// With -batch N > 1 the same op stream is framed as MULTI batches of N
// ops each; -ops still counts ops, -depth counts frames in flight, and
// throughput stays per-op so batch sizes compare directly. Latency is
// reported both per batch and per op. In open-loop runs the cadence is
// still per-op (a frame is due when its last op is due) and each op's
// latency is measured from its own intended send time — an op that sat
// waiting for its frame to fill is charged that wait, so batching cannot
// hide queueing delay (the coordinated-omission trap, batch edition).
// The run also reports the server's serial-fallback and abort rates per
// op from INFO counter deltas — the measured face of the capacity cliff
// when sweeping -batch (see EXPERIMENTS.md).
//
// With -scanfrac P > 0 that percentage of the request stream becomes
// ASCEND scans of up to -scanlen keys each (drawn from the same key
// range), measuring range-scan/point-op interference. A scan's latency
// runs from its intended send time to its END terminator, so a scan that
// stalls the pipeline charges itself (and, open-loop, its queued
// successors) the full stall — coordinated-omission-safe in both loop
// modes. Scans require a server whose INFO advertises scan support and
// are incompatible with -batch. With -obsaddr pointing at the server's
// observability endpoint (hohserver -obs), the final summary cell also
// embeds the server-side histograms — including serve_ascend_ns,
// ascend_windows and ascend_renavigations — under domain-prefixed names.
//
// When the server runs with -obs it advertises the endpoint's bound
// address in INFO as obs=<addr>, and hohload auto-discovers it — an
// explicit -obsaddr is only needed to override. Either way the run's
// summary (and the -out cell) gains a tail-latency forensics block: the
// server-side slowlog's entry count, its worst request's total and
// dominant phase, and the key that caused the most aborts per the
// hot-key sketch rollup.
//
// The -cmd form is a one-shot client: it sends the semicolon-separated
// requests as one pipeline, prints each reply, and exits — the quickest
// way to poke at a running server without netcat. END-framed replies
// (ASCEND scans, SLOWLOG dumps) are streamed through their terminator.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/obs"
	"hohtx/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	conns := flag.Int("conns", 4, "concurrent connections")
	depth := flag.Int("depth", 8, "pipelined requests in flight per connection")
	keys := flag.Uint64("keys", 1024, "key range (keys drawn uniformly from [1, keys])")
	reads := flag.Int("reads", 50, "percent of requests that are GET")
	ops := flag.Int("ops", 50_000, "requests per connection")
	rate := flag.Float64("rate", 0, "open-loop mode: target ops/sec across all connections (0 = closed loop)")
	batch := flag.Int("batch", 1, "ops per MULTI frame (1 = plain single-key verbs)")
	scanfrac := flag.Int("scanfrac", 0, "percent of requests that are ASCEND range scans")
	scanlen := flag.Int("scanlen", 64, "keys per ASCEND scan (with -scanfrac)")
	obsAddr := flag.String("obsaddr", "", "server obs endpoint (hohserver -obs); embed its histograms in the -out cell")
	seed := flag.Uint64("seed", 20170724, "workload seed")
	warmup := flag.Bool("warmup", true, "prefill half the key range before measuring (so the live-node envelope reflects steady state, not ramp-up)")
	out := flag.String("out", "", "write a BENCH_<n>.json summary here (empty = report only)")
	appendOut := flag.Bool("append", false, "append the cell to an existing -out file instead of overwriting it")
	cmd := flag.String("cmd", "", "one-shot mode: send these ';'-separated requests and print the replies")
	flag.Parse()

	if *cmd != "" {
		oneShot(*addr, *cmd)
		return
	}
	if *depth < 1 || *conns < 1 || *keys < 1 || *batch < 1 {
		fmt.Fprintln(os.Stderr, "hohload: -conns, -depth, -keys and -batch must be positive")
		os.Exit(2)
	}
	if *batch > 1 && *ops / *batch < 1 {
		fmt.Fprintln(os.Stderr, "hohload: -ops must cover at least one -batch frame")
		os.Exit(2)
	}
	if *scanfrac < 0 || *scanfrac > 100 || (*scanfrac > 0 && *scanlen < 1) {
		fmt.Fprintln(os.Stderr, "hohload: -scanfrac must be in [0,100] and -scanlen positive")
		os.Exit(2)
	}
	if *scanfrac > 0 && *batch > 1 {
		// A MULTI frame's body admits only single-key verbs; a scan inside
		// a frame has no defined reply framing.
		fmt.Fprintln(os.Stderr, "hohload: -scanfrac is incompatible with -batch > 1")
		os.Exit(2)
	}
	// Whole frames only: trim the per-connection op count to a multiple of
	// the batch size so every frame carries exactly -batch ops.
	*ops = (*ops / *batch) * *batch

	// A balanced SET/DEL mix holds the set near half the key range, so
	// prefilling every other key puts the structure at steady state
	// before the first measured request.
	if *warmup {
		if err := prefill(*addr, *keys); err != nil {
			fmt.Fprintln(os.Stderr, "hohload: warmup:", err)
			os.Exit(1)
		}
	}

	// Sample the server's INFO line for the whole run: variant and slot
	// count for the report, and the live-node envelope for the flatness
	// check.
	mon, err := startMonitor(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}

	// GC-pressure baseline: sample the server's runtime-gc panel before
	// the first measured request, so the cell's allocs_per_op and
	// gc_cycles are deltas over exactly the measured window (warmup and
	// monitor-dial churn excluded).
	gcAddr := *obsAddr
	if gcAddr == "" {
		gcAddr = mon.base.obsAddr
	}
	var gcBase obs.GCStats
	gcOK := false
	if gcAddr != "" {
		if st, err := fetchGC(gcAddr); err == nil {
			gcBase, gcOK = st, true
		}
	}

	hist := obs.NewHistogram("op_latency", "ns")
	batchHist := obs.NewHistogram("batch_latency", "ns")
	scanHist := obs.NewHistogram("scan_latency", "ns")
	var gets, sets, dels, hits, scans atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	// Open loop: the request cadence is fixed before the first send, and
	// every connection schedules against the same origin — request i of
	// connection c is *due* at start + (i×conns + c)×interval, and that
	// intended time (not the moment the writer got around to the socket)
	// is the latency clock's zero.
	var interval time.Duration
	start := time.Now()
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
		start = start.Add(100 * time.Millisecond) // let every conn dial before the cadence begins
	}
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			var err error
			switch {
			case *batch > 1 && *rate > 0:
				err = runConnOpenBatch(cid, *addr, *ops, *conns, *batch, interval, start, *keys, *reads, *seed,
					hist, batchHist, &gets, &sets, &dels, &hits)
			case *batch > 1:
				err = runConnBatch(cid, *addr, *ops, *depth, *batch, *keys, *reads, *seed,
					hist, batchHist, &gets, &sets, &dels, &hits)
			case *rate > 0:
				err = runConnOpen(cid, *addr, *ops, *conns, interval, start, *keys, *reads, *scanfrac, *scanlen, *seed,
					hist, scanHist, &gets, &sets, &dels, &hits, &scans)
			default:
				err = runConn(cid, *addr, *ops, *depth, *keys, *reads, *scanfrac, *scanlen, *seed,
					hist, scanHist, &gets, &sets, &dels, &hits, &scans)
			}
			if err != nil {
				errs <- fmt.Errorf("conn %d: %w", cid, err)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	info := mon.stop()

	total := uint64(*conns) * uint64(*ops)
	mops := float64(total) / elapsed.Seconds() / 1e6
	achieved := float64(total) / elapsed.Seconds()
	snap := hist.Snapshot()
	if *rate > 0 {
		fmt.Printf("hohload: %s (%d shard(s)), open loop at %.0f op/s, %d conns, batch %d, %d%% reads, %d keys\n",
			info.variant, info.shards, *rate, *conns, *batch, *reads, *keys)
		fmt.Printf("  %d ops in %s: offered %.0f op/s, achieved %.0f op/s\n",
			total, elapsed.Round(time.Millisecond), *rate, achieved)
		fmt.Printf("  op latency (from intended send) p50=%s p90=%s p99=%s max=%s\n",
			time.Duration(snap.P50), time.Duration(snap.P90), time.Duration(snap.P99), time.Duration(snap.Max))
	} else {
		fmt.Printf("hohload: %s (%d shard(s)), %d conns × depth %d, batch %d, %d%% reads, %d keys\n",
			info.variant, info.shards, *conns, *depth, *batch, *reads, *keys)
		fmt.Printf("  %d ops in %s = %.4f Mops/s\n", total, elapsed.Round(time.Millisecond), mops)
		fmt.Printf("  op latency p50=%s p90=%s p99=%s max=%s\n",
			time.Duration(snap.P50), time.Duration(snap.P90), time.Duration(snap.P99), time.Duration(snap.Max))
	}
	bsnap := batchHist.Snapshot()
	if *batch > 1 {
		fmt.Printf("  batch latency p50=%s p90=%s p99=%s max=%s (%d frames of %d ops)\n",
			time.Duration(bsnap.P50), time.Duration(bsnap.P90), time.Duration(bsnap.P99),
			time.Duration(bsnap.Max), bsnap.Count, *batch)
	}
	ssnap := scanHist.Snapshot()
	if *scanfrac > 0 {
		fmt.Printf("  scan latency (to END) p50=%s p90=%s p99=%s max=%s (%d scans of <=%d keys)\n",
			time.Duration(ssnap.P50), time.Duration(ssnap.P90), time.Duration(ssnap.P99),
			time.Duration(ssnap.Max), scans.Load(), *scanlen)
	}
	var serialPerOp, abortsPerOp float64
	if dc, ds, da := info.commits-mon.base.commits, info.serial-mon.base.serial, info.aborts-mon.base.aborts; dc+ds > 0 {
		serialPerOp = float64(ds) / float64(total)
		abortsPerOp = float64(da) / float64(total)
		fmt.Printf("  server tx over run: commits=%d serial=%d aborts=%d (serial/op=%.4f aborts/op=%.4f)\n",
			dc, ds, da, serialPerOp, abortsPerOp)
	}
	fmt.Printf("  mix: GET=%d (hit %.1f%%) SET=%d DEL=%d SCAN=%d\n",
		gets.Load(), 100*float64(hits.Load())/float64(max64(gets.Load(), 1)), sets.Load(), dels.Load(), scans.Load())
	fmt.Printf("  live nodes over run: [%d, %d] (spread %d, key range %d); deferred at end: %d\n",
		info.liveMin, info.liveMax, info.liveMax-info.liveMin, *keys, info.deferred)

	// Tail-latency forensics: if the server advertised its obs endpoint in
	// INFO (hohserver -obs), use it even without an explicit -obsaddr, and
	// summarize the slowlog + hot-key sketches it captured over the run.
	if *obsAddr == "" && info.obsAddr != "" {
		*obsAddr = info.obsAddr
		fmt.Printf("  obs endpoint auto-discovered from INFO: %s\n", *obsAddr)
	}
	var fz forensics
	if *obsAddr != "" {
		var err error
		fz, err = fetchForensics(*obsAddr)
		if err != nil {
			// Forensics are best-effort decoration on a load report; a server
			// built before the slowlog existed should not fail the run.
			fmt.Fprintln(os.Stderr, "hohload: forensics:", err)
		} else if fz.slowCount > 0 {
			fmt.Printf("  slowlog: %d entries, worst %s (%s-dominated)",
				fz.slowCount, time.Duration(fz.slowWorstNs), fz.slowWorstPhase)
			if fz.hotKeyAborts > 0 {
				fmt.Printf("; hottest key by aborts: %d (%d aborts)", fz.hotKey, fz.hotKeyAborts)
			}
			fmt.Println()
		}
	}

	if *out == "" {
		return
	}
	cell := bench.Cell{
		Family:      "server",
		Variant:     info.variant,
		Threads:     info.slots,
		Mops:        mops,
		Conns:       *conns,
		ReadPct:     *reads,
		Shards:      info.shards,
		OpP50Ns:     snap.P50,
		OpP99Ns:     snap.P99,
		LiveMin:     info.liveMin,
		LiveMax:     info.liveMax,
		Deferred:    info.deferred,
		OfferedRps:  *rate,
		AchievedRps: achieved,
		SerialPerOp: serialPerOp,
		AbortsPerOp: abortsPerOp,
	}
	if *rate == 0 {
		cell.Depth = *depth
		cell.AchievedRps = 0
	}
	if *batch > 1 {
		cell.Batch = *batch
		cell.BatchP50Ns = bsnap.P50
		cell.BatchP99Ns = bsnap.P99
	}
	if *scanfrac > 0 {
		cell.ScanPct = *scanfrac
		cell.ScanLen = *scanlen
		cell.ScanP50Ns = ssnap.P50
		cell.ScanP99Ns = ssnap.P99
	}
	if *obsAddr != "" {
		snap, err := fetchObs(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohload: -obsaddr:", err)
			os.Exit(1)
		}
		cell.Obs = snap
		reclaimCellFields(&cell, snap)
		cell.SlowCount = fz.slowCount
		cell.SlowWorstNs = fz.slowWorstNs
		cell.SlowWorstPhase = fz.slowWorstPhase
		cell.HotKey = fz.hotKey
		cell.HotKeyAborts = fz.hotKeyAborts
	}
	if gcOK {
		if gcEnd, err := fetchGC(gcAddr); err == nil && total > 0 {
			cell.AllocsPerOp = float64(gcEnd.AllocObjects-gcBase.AllocObjects) / float64(total)
			cell.GCCycles = gcEnd.Cycles - gcBase.Cycles
			fmt.Printf("  server GC over run: %.3f allocs/op, %d cycles\n",
				cell.AllocsPerOp, cell.GCCycles)
		}
	}
	sum := bench.Summary{
		Bench:      bench.BenchNumber(*out),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   workloadDesc(*keys, *reads, *conns, *depth, *batch, *scanfrac, *scanlen, *rate),
		Ops:        *ops,
		Trials:     1,
	}
	if *appendOut {
		if prev, err := os.ReadFile(*out); err == nil {
			var old bench.Summary
			if err := json.Unmarshal(prev, &old); err != nil {
				fmt.Fprintf(os.Stderr, "hohload: -append: %s is not a summary: %v\n", *out, err)
				os.Exit(1)
			}
			sum.Cells = old.Cells
			if old.Workload != "" {
				// Keep the first recording's description; per-cell fields
				// carry each run's own parameters.
				sum.Workload = old.Workload
			}
		}
	}
	sum.Cells = append(sum.Cells, cell)
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s (%d cells)\n", *out, len(sum.Cells))
}

// runConn drives one connection closed-loop: fill the pipeline to depth,
// then send one request per reply.
// workloadDesc names the recorded workload; open- and closed-loop runs
// read differently (rate vs. pipeline depth).
func workloadDesc(keys uint64, reads, conns, depth, batch, scanfrac, scanlen int, rate float64) string {
	b := ""
	if batch > 1 {
		b = fmt.Sprintf(", MULTI batch %d", batch)
	}
	if scanfrac > 0 {
		b += fmt.Sprintf(", %d%% ASCEND scans of %d", scanfrac, scanlen)
	}
	if rate > 0 {
		return fmt.Sprintf("hohserver loopback: %d keys, %d%% reads, %d conns, open loop%s",
			keys, reads, conns, b)
	}
	return fmt.Sprintf("hohserver loopback: %d keys, %d%% reads, %d conns × depth %d%s",
		keys, reads, conns, depth, b)
}

func runConn(cid int, addr string, ops, depth int, keys uint64, reads, scanfrac, scanlen int, seed uint64,
	hist, scanHist *obs.Histogram, gets, sets, dels, hits, scans *atomic.Uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 16<<10)
	sc := serve.NewLineScanner(br)
	var req []byte

	rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
	sendTimes := make([]time.Time, depth)
	verbs := make([]byte, depth)
	var sent, recv int

	send := func() error {
		r := splitmix64(&rng)
		key := 1 + (r>>8)%keys
		// The scan decision draws on bits the point-op classification below
		// never touches, so a run at -scanfrac 0 issues exactly the same
		// point-op stream as one with scans mixed in — the interference
		// sweep changes only what is added, not what is compared.
		if scanfrac > 0 && int((r>>48)%100) < scanfrac {
			sendTimes[sent%depth] = time.Now()
			verbs[sent%depth] = 'A'
			if err := writeScanReq(bw, &req, key, scanlen); err != nil {
				return err
			}
			sent++
			return bw.Flush()
		}
		var verb string
		var vb byte
		switch {
		case int(r%100) < reads:
			verb, vb = "GET", 'G'
		case r&(1<<40) == 0:
			verb, vb = "SET", 'S'
		default:
			verb, vb = "DEL", 'D'
		}
		sendTimes[sent%depth] = time.Now()
		verbs[sent%depth] = vb
		if err := writeReq(bw, &req, verb, key); err != nil {
			return err
		}
		sent++
		return bw.Flush()
	}
	for sent < depth && sent < ops {
		if err := send(); err != nil {
			return err
		}
	}
	for recv < ops {
		if verbs[recv%depth] == 'A' {
			// A scan's reply is OK lines up to its END terminator; the
			// scan is charged from its send time to that terminator.
			if err := drainScan(sc); err != nil {
				return fmt.Errorf("scan after %d replies: %w", recv, err)
			}
			scanHist.RecordAt(uint64(cid), uint64(time.Since(sendTimes[recv%depth])))
			scans.Add(1)
		} else {
			reply, err := sc.Line()
			if err != nil {
				return fmt.Errorf("after %d replies: %w", recv, err)
			}
			if isErrLine(reply) {
				return fmt.Errorf("server: %s", reply)
			}
			hist.RecordAt(uint64(cid), uint64(time.Since(sendTimes[recv%depth])))
			switch verbs[recv%depth] {
			case 'G':
				gets.Add(1)
				if isOne(reply) {
					hits.Add(1)
				}
			case 'S':
				sets.Add(1)
			default:
				dels.Add(1)
			}
		}
		recv++
		if sent < ops {
			if err := send(); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainScan consumes one ASCEND reply — OK lines through the END
// terminator — and fails on an ERR terminator or malformed line. It runs
// over the shared reused-buffer scanner: a long scan used to allocate one
// string per OK line, on the measuring side of the experiment.
func drainScan(sc *serve.LineScanner) error {
	for {
		line, err := sc.Line()
		if err != nil {
			return err
		}
		switch {
		case string(line) == "END":
			return nil
		case isErrLine(line):
			return fmt.Errorf("server: %s", line)
		case len(line) < 3 || line[0] != 'O' || line[1] != 'K' || line[2] != ' ':
			return fmt.Errorf("malformed scan line %q", line)
		}
	}
}

// isErrLine reports whether a reply line is an ERR terminator, without
// materializing a string.
func isErrLine(b []byte) bool {
	return len(b) >= 3 && b[0] == 'E' && b[1] == 'R' && b[2] == 'R'
}

// isOne reports a "1" reply.
func isOne(b []byte) bool { return len(b) == 1 && b[0] == '1' }

// writeReq renders "<verb> <key>\n" through the caller's reused scratch.
// fmt.Fprintf here cost two heap objects per request (argument boxing),
// charged to the load generator's own measurement loop.
func writeReq(bw *bufio.Writer, buf *[]byte, verb string, key uint64) error {
	b := append((*buf)[:0], verb...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, key, 10)
	b = append(b, '\n')
	*buf = b
	_, err := bw.Write(b)
	return err
}

// writeScanReq renders "ASCEND <lo> <n>\n" the same way.
func writeScanReq(bw *bufio.Writer, buf *[]byte, lo uint64, n int) error {
	b := append((*buf)[:0], "ASCEND "...)
	b = strconv.AppendUint(b, lo, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '\n')
	*buf = b
	_, err := bw.Write(b)
	return err
}

// runConnOpen drives one connection open-loop: a writer goroutine sends
// request i at its scheduled time start + (i×conns + cid)×interval — it
// never waits for replies, so a slow server accumulates in-flight
// requests instead of slowing the offered load — while the reader (this
// goroutine) measures each reply against that same intended send time.
// Reader and writer re-derive the identical deterministic request stream
// from the shared seed, so no per-request metadata crosses between them.
func runConnOpen(cid int, addr string, ops, conns int, interval time.Duration, start time.Time,
	keys uint64, reads, scanfrac, scanlen int, seed uint64,
	hist, scanHist *obs.Histogram, gets, sets, dels, hits, scans *atomic.Uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	sc := serve.NewLineScanner(br)

	// verbOf classifies request i's random draw the same way runConn does,
	// so closed- and open-loop runs at the same seed issue the same ops.
	// 'A' (an ASCEND scan) draws on separate bits, leaving the point-op
	// substream untouched across scanfrac settings.
	verbOf := func(r uint64) (string, byte) {
		switch {
		case scanfrac > 0 && int((r>>48)%100) < scanfrac:
			return "ASCEND", 'A'
		case int(r%100) < reads:
			return "GET", 'G'
		case r&(1<<40) == 0:
			return "SET", 'S'
		default:
			return "DEL", 'D'
		}
	}
	due := func(i int) time.Time {
		return start.Add(time.Duration(i*conns+cid) * interval)
	}

	writeErr := make(chan error, 1)
	go func() {
		rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
		var req []byte
		for i := 0; i < ops; i++ {
			if d := time.Until(due(i)); d > 0 {
				// Push buffered requests out before going idle: nothing may
				// sit in the client buffer past its scheduled send time.
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
				time.Sleep(d)
			}
			r := splitmix64(&rng)
			verb, vb := verbOf(r)
			if vb == 'A' {
				if err := writeScanReq(bw, &req, 1+(r>>8)%keys, scanlen); err != nil {
					writeErr <- err
					return
				}
				continue
			}
			if err := writeReq(bw, &req, verb, 1+(r>>8)%keys); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Flush()
	}()

	// The reader re-derives the same stream to classify replies, and
	// clocks each one against the request's intended send time — if the
	// server (or the writer's socket) stalls, every queued request's
	// latency grows by the stall, exactly as a real open-loop client
	// population would experience it. A scan is clocked from its intended
	// send time to its END terminator, so a slow scan charges both itself
	// and (through the shared pipeline) the requests queued behind it.
	rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
	for recv := 0; recv < ops; recv++ {
		r := splitmix64(&rng)
		_, vb := verbOf(r)
		if vb == 'A' {
			if err := drainScan(sc); err != nil {
				return fmt.Errorf("scan after %d replies: %w", recv, err)
			}
			lat := time.Since(due(recv))
			if lat < 0 {
				lat = 0
			}
			scanHist.RecordAt(uint64(cid), uint64(lat))
			scans.Add(1)
			continue
		}
		reply, err := sc.Line()
		if err != nil {
			return fmt.Errorf("after %d replies: %w", recv, err)
		}
		if isErrLine(reply) {
			return fmt.Errorf("server: %s", reply)
		}
		lat := time.Since(due(recv))
		if lat < 0 {
			lat = 0 // clock skew guard: a reply cannot precede its request
		}
		hist.RecordAt(uint64(cid), uint64(lat))
		switch vb {
		case 'G':
			gets.Add(1)
			if isOne(reply) {
				hits.Add(1)
			}
		case 'S':
			sets.Add(1)
		default:
			dels.Add(1)
		}
	}
	return <-writeErr
}

// writeFrame appends one MULTI frame of batch ops to bw, drawing the next
// batch draws from rng, and returns the verb tags in frame order. buf is
// the caller's reused request scratch.
func writeFrame(bw *bufio.Writer, buf *[]byte, rng *uint64, batch int, keys uint64, reads int, tags []byte) error {
	b := append((*buf)[:0], "MULTI "...)
	b = strconv.AppendInt(b, int64(batch), 10)
	b = append(b, '\n')
	for j := 0; j < batch; j++ {
		r := splitmix64(rng)
		key := 1 + (r>>8)%keys
		var verb string
		switch {
		case int(r%100) < reads:
			verb, tags[j] = "GET", 'G'
		case r&(1<<40) == 0:
			verb, tags[j] = "SET", 'S'
		default:
			verb, tags[j] = "DEL", 'D'
		}
		b = append(b, verb...)
		b = append(b, ' ')
		b = strconv.AppendUint(b, key, 10)
		b = append(b, '\n')
	}
	*buf = b
	_, err := bw.Write(b)
	return err
}

// tallyReply classifies one batch reply line against its verb tag.
func tallyReply(reply []byte, tag byte, gets, sets, dels, hits *atomic.Uint64) {
	switch tag {
	case 'G':
		gets.Add(1)
		if isOne(reply) {
			hits.Add(1)
		}
	case 'S':
		sets.Add(1)
	default:
		dels.Add(1)
	}
}

// runConnBatch drives one connection closed-loop in batch mode: keep
// depth MULTI frames of batch ops in flight, send a new frame per frame
// of replies. Per-op latency is measured from the frame's send time to
// that op's reply line; whole-frame latency from send to the frame's last
// line.
func runConnBatch(cid int, addr string, ops, depth, batch int, keys uint64, reads int, seed uint64,
	opHist, batchHist *obs.Histogram, gets, sets, dels, hits *atomic.Uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)

	frames := ops / batch
	rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
	sendTimes := make([]time.Time, depth)
	tags := make([]byte, depth*batch)
	var req []byte
	var sent, recv int

	send := func() error {
		sendTimes[sent%depth] = time.Now()
		if err := writeFrame(bw, &req, &rng, batch, keys, reads, tags[(sent%depth)*batch:(sent%depth)*batch+batch]); err != nil {
			return err
		}
		sent++
		return bw.Flush()
	}
	for sent < depth && sent < frames {
		if err := send(); err != nil {
			return err
		}
	}
	sc := serve.NewLineScanner(br)
	for recv < frames {
		slot := recv % depth
		for j := 0; j < batch; j++ {
			reply, err := sc.Line()
			if err != nil {
				return fmt.Errorf("frame %d op %d: %w", recv, j, err)
			}
			if isErrLine(reply) {
				return fmt.Errorf("server: %s", reply)
			}
			opHist.RecordAt(uint64(cid), uint64(time.Since(sendTimes[slot])))
			tallyReply(reply, tags[slot*batch+j], gets, sets, dels, hits)
		}
		batchHist.RecordAt(uint64(cid), uint64(time.Since(sendTimes[slot])))
		recv++
		if sent < frames {
			if err := send(); err != nil {
				return err
			}
		}
	}
	return nil
}

// runConnOpenBatch drives one connection open-loop in batch mode. The
// cadence stays per-op: globally op k is due at start + k×interval, and a
// frame is due when its *last* op is due (a frame cannot leave until all
// its ops exist). Each op's latency is still measured from its own
// intended send time, so the first op of a frame is charged the
// (batch−1)×interval it spent waiting for the frame to fill — batching
// trades exactly that much intake latency for transaction amortization,
// and the measurement keeps the trade visible instead of hiding it.
func runConnOpenBatch(cid int, addr string, ops, conns, batch int, interval time.Duration, start time.Time,
	keys uint64, reads int, seed uint64,
	opHist, batchHist *obs.Histogram, gets, sets, dels, hits *atomic.Uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)

	frames := ops / batch
	// Frame f of this connection is global frame f×conns+cid; its op j is
	// global op (f×conns+cid)×batch + j.
	opDue := func(f, j int) time.Time {
		return start.Add(time.Duration((f*conns+cid)*batch+j) * interval)
	}

	writeErr := make(chan error, 1)
	go func() {
		rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
		tags := make([]byte, batch)
		var req []byte
		for f := 0; f < frames; f++ {
			if d := time.Until(opDue(f, batch-1)); d > 0 {
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
				time.Sleep(d)
			}
			if err := writeFrame(bw, &req, &rng, batch, keys, reads, tags); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Flush()
	}()

	// The reader re-derives the same op stream to classify replies.
	rng := seed + uint64(cid+1)*0x9e3779b97f4a7c15
	tagOf := func(r uint64) byte {
		switch {
		case int(r%100) < reads:
			return 'G'
		case r&(1<<40) == 0:
			return 'S'
		default:
			return 'D'
		}
	}
	sc := serve.NewLineScanner(br)
	for f := 0; f < frames; f++ {
		for j := 0; j < batch; j++ {
			reply, err := sc.Line()
			if err != nil {
				return fmt.Errorf("frame %d op %d: %w", f, j, err)
			}
			if isErrLine(reply) {
				return fmt.Errorf("server: %s", reply)
			}
			lat := time.Since(opDue(f, j))
			if lat < 0 {
				lat = 0
			}
			opHist.RecordAt(uint64(cid), uint64(lat))
			tallyReply(reply, tagOf(splitmix64(&rng)), gets, sets, dels, hits)
			if j == batch-1 {
				blat := time.Since(opDue(f, batch-1))
				if blat < 0 {
					blat = 0
				}
				batchHist.RecordAt(uint64(cid), uint64(blat))
			}
		}
	}
	return <-writeErr
}

// prefill inserts every other key in [1, keys] through one pipelined
// connection, chunked so neither side's socket buffer can fill while the
// other waits.
func prefill(addr string, keys uint64) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 16<<10)
	sc := serve.NewLineScanner(br)
	var req []byte
	const chunk = 256
	pending := 0
	drain := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		for ; pending > 0; pending-- {
			if _, err := sc.Line(); err != nil {
				return err
			}
		}
		return nil
	}
	for k := uint64(1); k <= keys; k += 2 {
		if err := writeReq(bw, &req, "SET", k); err != nil {
			return err
		}
		if pending++; pending == chunk {
			if err := drain(); err != nil {
				return err
			}
		}
	}
	return drain()
}

// fetchObs pulls the server's observability snapshot (hohserver -obs)
// and folds every domain's populated histograms into one DomainSnapshot
// under domain-prefixed names. Prefixing instead of merging keeps each
// histogram's buckets intact — summing per-shard log₂ buckets would
// still be sound, but percentile reconstruction across differently
// loaded shards is not, so the cell records them side by side.
func fetchObs(addr string) (*obs.DomainSnapshot, error) {
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /snapshot: %s", resp.Status)
	}
	var doms []obs.DomainSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&doms); err != nil {
		return nil, fmt.Errorf("decode /snapshot: %w", err)
	}
	merged := &obs.DomainSnapshot{Name: "server-export"}
	for _, d := range doms {
		merged.Events += d.Events
		for _, h := range d.Histograms {
			if h.Count == 0 {
				continue
			}
			h.Name = d.Name + "/" + h.Name
			merged.Histograms = append(merged.Histograms, h)
		}
		for _, g := range d.Gauges {
			g.Name = d.Name + "/" + g.Name
			merged.Gauges = append(merged.Gauges, g)
		}
	}
	return merged, nil
}

// fetchGC pulls just the runtime-gc panel's cumulative counters from the
// server's /snapshot (see obs.GCSnapshot). Sampled before and after the
// measured run, the deltas become the cell's GC-pressure columns.
func fetchGC(addr string) (obs.GCStats, error) {
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		return obs.GCStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.GCStats{}, fmt.Errorf("GET /snapshot: %s", resp.Status)
	}
	var doms []obs.DomainSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&doms); err != nil {
		return obs.GCStats{}, fmt.Errorf("decode /snapshot: %w", err)
	}
	var st obs.GCStats
	for _, d := range doms {
		if d.Name != "runtime-gc" {
			continue
		}
		for _, g := range d.Gauges {
			switch g.Name {
			case "gc_cycles":
				st.Cycles = g.Value
			case "heap_allocs_objects":
				st.AllocObjects = g.Value
			case "heap_allocs_bytes":
				st.AllocBytes = g.Value
			}
		}
		return st, nil
	}
	return st, fmt.Errorf("no runtime-gc domain in /snapshot")
}

// reclaimCellFields lifts the deferred-reclamation view out of the merged
// server snapshot into the cell's outcome columns: the worst shard's
// retire→free delay and free→reuse distance percentiles (sampled by the
// structure's ReclaimProbe/AllocProbe), and the peak deferred depth summed
// across shards — each shard's scheme defers independently, so the sum is
// the process-wide high-water mark's upper bound. Outcome fields only:
// none join the benchdiff cell identity, so BENCH_7 cells recorded with
// these columns still gate against BENCH_5/6 cells recorded without them.
func reclaimCellFields(cell *bench.Cell, snap *obs.DomainSnapshot) {
	for _, h := range snap.Histograms {
		switch {
		case strings.HasSuffix(h.Name, "/"+obs.HistReclaimOps):
			if h.P99 > cell.ReclaimP99Ops {
				cell.ReclaimP50Ops, cell.ReclaimP99Ops = h.P50, h.P99
			}
			if h.Max > cell.ReclaimMaxOps {
				cell.ReclaimMaxOps = h.Max
			}
		case strings.HasSuffix(h.Name, "/"+obs.HistReuseOps):
			if h.P99 > cell.ReuseP99Ops {
				cell.ReuseP50Ops, cell.ReuseP99Ops = h.P50, h.P99
			}
		}
	}
	for _, g := range snap.Gauges {
		if strings.HasSuffix(g.Name, "/peak_deferred") {
			cell.PeakDeferred += g.Value
		}
	}
}

// forensics is the slowlog/hot-key summary hohload embeds in the bench
// cell: how bad the worst request was, where its time went, and which key
// caused the most aborts.
type forensics struct {
	slowCount      int
	slowWorstNs    uint64
	slowWorstPhase string
	hotKey         uint64
	hotKeyAborts   uint64
}

// fetchForensics pulls /slowlog and /hotkeys from the server's obs
// endpoint. Entries are already slowest-first per domain; across domains
// (there is normally exactly one slowlog, on the server domain) the worst
// entry wins and counts sum. The hot key is the cross-shard rollup's top
// entry by aborts caused.
func fetchForensics(addr string) (forensics, error) {
	var fz forensics
	resp, err := http.Get("http://" + addr + "/slowlog")
	if err != nil {
		return fz, err
	}
	var slow []obs.SlowlogDump
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil {
		return fz, fmt.Errorf("decode /slowlog: %w", err)
	}
	for _, d := range slow {
		fz.slowCount += len(d.Entries)
		for _, e := range d.Entries {
			if e.TotalNs > fz.slowWorstNs {
				fz.slowWorstNs = e.TotalNs
				fz.slowWorstPhase = e.WorstPhase
			}
		}
	}
	resp, err = http.Get("http://" + addr + "/hotkeys")
	if err != nil {
		return fz, err
	}
	var hot []obs.HotKeysDump
	err = json.NewDecoder(resp.Body).Decode(&hot)
	resp.Body.Close()
	if err != nil {
		return fz, fmt.Errorf("decode /hotkeys: %w", err)
	}
	for _, d := range hot {
		if len(d.Rollup.ByAborts) > 0 && d.Rollup.ByAborts[0].Count > fz.hotKeyAborts {
			fz.hotKey = d.Rollup.ByAborts[0].Key
			fz.hotKeyAborts = d.Rollup.ByAborts[0].Count
		}
	}
	return fz, nil
}

// monitor samples INFO on its own connection every 50ms.
type monitor struct {
	br    *bufio.Reader // one reader for the connection's lifetime
	stopc chan struct{}
	done  chan struct{}
	info  serverInfo
	base  serverInfo // the first sample; tx counters diff against it
}

type serverInfo struct {
	variant  string
	shards   int
	slots    int
	liveMin  uint64
	liveMax  uint64
	deferred uint64
	commits  uint64
	serial   uint64
	aborts   uint64
	obsAddr  string // INFO obs=<addr>: the server's own advertisement of its obs endpoint
}

func startMonitor(addr string) (*monitor, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	m := &monitor{br: bufio.NewReader(c), stopc: make(chan struct{}), done: make(chan struct{})}
	first, err := queryInfo(c, m.br)
	if err != nil {
		c.Close()
		return nil, err
	}
	m.info = first
	m.base = first
	go func() {
		defer close(m.done)
		defer c.Close()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-m.stopc:
				if in, err := queryInfo(c, m.br); err == nil {
					m.merge(in)
				}
				return
			case <-tick.C:
				if in, err := queryInfo(c, m.br); err == nil {
					m.merge(in)
				}
			}
		}
	}()
	return m, nil
}

func (m *monitor) merge(in serverInfo) {
	if in.liveMin < m.info.liveMin {
		m.info.liveMin = in.liveMin
	}
	if in.liveMax > m.info.liveMax {
		m.info.liveMax = in.liveMax
	}
	m.info.deferred = in.deferred
	m.info.commits = in.commits
	m.info.serial = in.serial
	m.info.aborts = in.aborts
}

func (m *monitor) stop() serverInfo {
	close(m.stopc)
	<-m.done
	return m.info
}

// queryInfo sends one INFO request and parses the reply.
func queryInfo(c net.Conn, br *bufio.Reader) (serverInfo, error) {
	if _, err := fmt.Fprintf(c, "INFO\n"); err != nil {
		return serverInfo{}, err
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return serverInfo{}, err
	}
	var in serverInfo
	for _, f := range strings.Fields(strings.TrimSpace(line)) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "variant":
			in.variant = v
		case "shards":
			in.shards, _ = strconv.Atoi(v)
		case "slots":
			in.slots, _ = strconv.Atoi(v)
		case "live":
			n, _ := strconv.ParseUint(v, 10, 64)
			in.liveMin, in.liveMax = n, n
		case "deferred":
			in.deferred, _ = strconv.ParseUint(v, 10, 64)
		case "commits":
			in.commits, _ = strconv.ParseUint(v, 10, 64)
		case "serial":
			in.serial, _ = strconv.ParseUint(v, 10, 64)
		case "aborts":
			in.aborts, _ = strconv.ParseUint(v, 10, 64)
		case "obs":
			in.obsAddr = v
		}
	}
	if in.variant == "" {
		return serverInfo{}, fmt.Errorf("malformed INFO reply %q", strings.TrimSpace(line))
	}
	return in, nil
}

// oneShot sends a ';'-separated request pipeline and prints the replies.
// MULTI framing is understood: "MULTI n" consumes the next n requests as
// its body and yields n reply lines (the body lines get the replies, the
// MULTI line itself none).
func oneShot(addr, script string) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	defer c.Close()
	var reqs []string
	for _, r := range strings.Split(script, ";") {
		if r = strings.TrimSpace(r); r != "" {
			reqs = append(reqs, r)
		}
	}
	bw := bufio.NewWriter(c)
	for _, r := range reqs {
		fmt.Fprintf(bw, "%s\n", r)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "hohload:", err)
		os.Exit(1)
	}
	sc := serve.NewLineScanner(bufio.NewReader(c))
	read := func(r string) {
		line, err := sc.Line()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohload:", err)
			os.Exit(1)
		}
		fmt.Printf("%-12s -> %s\n", r, line)
	}
	for i := 0; i < len(reqs); i++ {
		if strings.HasPrefix(reqs[i], "ASCEND ") || strings.HasPrefix(reqs[i], "SLOWLOG") {
			// Both stream lines until END (or an ERR terminator): OK lines
			// for a scan, SLOW lines for a slowlog dump.
			fmt.Printf("%-12s    (stream)\n", reqs[i])
			for {
				line, err := sc.Line()
				if err != nil {
					fmt.Fprintln(os.Stderr, "hohload:", err)
					os.Exit(1)
				}
				fmt.Printf("%-12s -> %s\n", "", line)
				if string(line) == "END" || isErrLine(line) {
					break
				}
			}
			continue
		}
		arg, isMulti := strings.CutPrefix(reqs[i], "MULTI ")
		n := 0
		if isMulti {
			n, _ = strconv.Atoi(strings.TrimSpace(arg))
		}
		if !isMulti || n < 1 || i+n >= len(reqs) {
			read(reqs[i])
			continue
		}
		// A well-formed frame: one reply per body line, none for the header.
		fmt.Printf("%-12s    (batch of %d)\n", reqs[i], n)
		for j := 0; j < n; j++ {
			i++
			read(reqs[i])
		}
	}
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
