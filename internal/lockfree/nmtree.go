package lockfree

import (
	"runtime"
	"sync/atomic"

	"hohtx/internal/arena"
	"hohtx/internal/pad"
	"hohtx/internal/reclaim"
	"hohtx/internal/sets"
)

// Natarajan–Mittal lock-free external BST (PPoPP 2014). Deletion is
// edge-based: the deleting thread *injects* a flag on the edge from the
// parent router to the target leaf, then *cleans up* by tagging the
// sibling edge (freezing it) and swinging the ancestor's edge over the
// whole doomed subtree. Other operations that stumble on flagged or
// tagged edges help complete the cleanup. Removed nodes are never freed —
// the paper's LFLeak tree — but retirements are counted so the unbounded
// memory growth is measurable.

// Edge-word bits (the arena's reserved user bits).
const (
	flagBit = uint64(1) << 62 // edge target is being deleted
	tagBit  = uint64(1) << 63 // edge is frozen (sibling of a deletion)
)

func flagged(raw uint64) bool { return raw&flagBit != 0 }
func tagged(raw uint64) bool  { return raw&tagBit != 0 }
func addrOf(raw uint64) arena.Handle {
	return arena.Handle(raw &^ (flagBit | tagBit))
}

// NM sentinels; user keys must stay below nmSent0.
const (
	nmSent0 = ^uint64(0) - 2
	nmSent1 = ^uint64(0) - 1
	nmSent2 = ^uint64(0)
)

// NMMaxKey is the largest user key the tree accepts.
const NMMaxKey = nmSent0 - 1

// nmNode is a tree node; a node is a leaf iff its left edge is zero. The
// key is immutable after publication, and nodes are never recycled (the
// structure leaks by design), so plain reads of key are safe.
type nmNode struct {
	key   uint64
	left  atomic.Uint64
	right atomic.Uint64
	_     pad.Line
}

// NMTree is the lock-free external BST set.
type NMTree struct {
	ar        *arena.Arena[nmNode]
	leak      *reclaim.Leak
	root      arena.Handle // R sentinel router
	yieldMask uint64
	ops       []opCounter
}

var _ sets.Set = (*NMTree)(nil)
var _ sets.MemoryReporter = (*NMTree)(nil)

// NMConfig parameterizes NewNMTree.
type NMConfig struct {
	// Threads is the number of distinct tids. Required.
	Threads int
	// YieldShift enables simulated preemption (yield every
	// 1<<YieldShift descents); see lockfree.ListConfig.
	YieldShift uint8
}

// NewNMTree constructs the tree with the standard sentinel arrangement.
func NewNMTree(cfg NMConfig) *NMTree {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 8
	}
	t := &NMTree{
		ar:   arena.New[nmNode](arena.Config{Threads: threads}),
		leak: reclaim.NewLeak(threads),
		ops:  make([]opCounter, threads),
	}
	if cfg.YieldShift != 0 {
		t.yieldMask = 1<<cfg.YieldShift - 1
	}
	mk := func(key uint64, left, right arena.Handle) arena.Handle {
		h := t.ar.Alloc(0)
		n := t.ar.At(h)
		n.key = key
		n.left.Store(uint64(left))
		n.right.Store(uint64(right))
		return h
	}
	l0 := mk(nmSent0, arena.Nil, arena.Nil)
	l1 := mk(nmSent1, arena.Nil, arena.Nil)
	l2 := mk(nmSent2, arena.Nil, arena.Nil)
	s := mk(nmSent1, l0, l1)
	t.root = mk(nmSent2, s, l2)
	return t
}

// Name implements sets.Set.
func (t *NMTree) Name() string { return "LFLeak" }

// Register implements sets.Set.
func (t *NMTree) Register(tid int) {}

// Finish implements sets.Set.
func (t *NMTree) Finish(tid int) {}

// Apply implements sets.Set. The lock-free baseline has no transactions to
// merge into, so ops execute one at a time: results are individually
// linearizable but the batch is NOT atomic.
func (t *NMTree) Apply(tid int, ops []sets.Op) []sets.Result {
	return sets.ApplyEach(t, tid, ops)
}

// seekRecord captures a root-to-leaf traversal: leaf and its parent, plus
// the deepest ancestor whose edge toward the leaf's region was untagged
// (the edge a cleanup will swing).
type seekRecord struct {
	ancestor, successor, parent, leaf arena.Handle
}

// childField returns the parent's edge cell on key's side.
func (t *NMTree) childField(parentH arena.Handle, key uint64) *atomic.Uint64 {
	n := t.ar.At(parentH)
	if key < n.key {
		return &n.left
	}
	return &n.right
}

// seek descends from the root to the leaf in key's position (NM Alg. 2).
func (t *NMTree) seek(key uint64, s *seekRecord) {
	rootS := addrOf(t.ar.At(t.root).left.Load())
	s.ancestor = t.root
	s.successor = rootS
	s.parent = rootS
	parentField := t.ar.At(rootS).left.Load()
	s.leaf = addrOf(parentField)
	currentField := t.childField(s.leaf, key).Load()
	current := addrOf(currentField)
	visits := uint64(0)
	for !current.IsNil() {
		visits++
		if t.yieldMask != 0 && (visits+t.yieldMask>>1)&t.yieldMask == 0 {
			runtime.Gosched() // simulated preemption point
		}
		if !tagged(parentField) {
			s.ancestor = s.parent
			s.successor = s.leaf
		}
		s.parent = s.leaf
		s.leaf = current
		parentField = currentField
		currentField = t.childField(current, key).Load()
		current = addrOf(currentField)
	}
}

// Lookup implements sets.Set.
func (t *NMTree) Lookup(tid int, key uint64) bool {
	t.ops[tid].n++
	var s seekRecord
	t.seek(key, &s)
	return t.ar.At(s.leaf).key == key
}

// Insert implements sets.Set (NM Alg. 1).
func (t *NMTree) Insert(tid int, key uint64) bool {
	if key > NMMaxKey {
		panic("lockfree: key out of range")
	}
	t.ops[tid].n++
	var s seekRecord
	var newLeaf, newRouter arena.Handle
	for {
		t.seek(key, &s)
		leafKey := t.ar.At(s.leaf).key
		if leafKey == key {
			if !newLeaf.IsNil() {
				t.ar.Free(tid, newLeaf) // never published
				t.ar.Free(tid, newRouter)
			}
			return false
		}
		if newLeaf.IsNil() {
			newLeaf = t.ar.Alloc(tid)
			nl := t.ar.At(newLeaf)
			nl.key = key
			nl.left.Store(0)
			nl.right.Store(0)
			newRouter = t.ar.Alloc(tid)
		}
		r := t.ar.At(newRouter)
		if key < leafKey {
			r.key = leafKey
			r.left.Store(uint64(newLeaf))
			r.right.Store(uint64(s.leaf))
		} else {
			r.key = key
			r.left.Store(uint64(s.leaf))
			r.right.Store(uint64(newLeaf))
		}
		childAddr := t.childField(s.parent, key)
		if childAddr.CompareAndSwap(uint64(s.leaf), uint64(newRouter)) {
			return true
		}
		// Failed: if the edge still targets our leaf but is flagged or
		// tagged, help the pending deletion before retrying.
		raw := childAddr.Load()
		if addrOf(raw) == s.leaf && (flagged(raw) || tagged(raw)) {
			t.cleanup(tid, key, &s)
		}
	}
}

// Remove implements sets.Set (NM Alg. 3): injection then cleanup.
func (t *NMTree) Remove(tid int, key uint64) bool {
	t.ops[tid].n++
	var s seekRecord
	injecting := true
	var leaf arena.Handle
	for {
		t.seek(key, &s)
		childAddr := t.childField(s.parent, key)
		if injecting {
			leaf = s.leaf
			if t.ar.At(leaf).key != key {
				return false
			}
			if childAddr.CompareAndSwap(uint64(leaf), uint64(leaf)|flagBit) {
				injecting = false
				if t.cleanup(tid, key, &s) {
					return true
				}
			} else {
				raw := childAddr.Load()
				if addrOf(raw) == leaf && (flagged(raw) || tagged(raw)) {
					t.cleanup(tid, key, &s) // help whoever owns the edge
				}
			}
		} else {
			if s.leaf != leaf {
				return true // someone completed our cleanup for us
			}
			if t.cleanup(tid, key, &s) {
				return true
			}
		}
	}
}

// cleanup completes a pending deletion in key's position (NM Alg. 4):
// freeze the sibling edge with a tag, then swing the ancestor's edge from
// the successor to the sibling (preserving the sibling's flag, in case the
// sibling leaf is itself under deletion). Returns whether the final swing
// succeeded.
func (t *NMTree) cleanup(tid int, key uint64, s *seekRecord) bool {
	anc := t.ar.At(s.ancestor)
	var successorAddr *atomic.Uint64
	if key < anc.key {
		successorAddr = &anc.left
	} else {
		successorAddr = &anc.right
	}
	par := t.ar.At(s.parent)
	var childAddr, otherAddr *atomic.Uint64
	if key < par.key {
		childAddr, otherAddr = &par.left, &par.right
	} else {
		childAddr, otherAddr = &par.right, &par.left
	}
	doomedAddr, siblingAddr := childAddr, otherAddr
	if !flagged(childAddr.Load()) {
		// The flag is on the other edge: the leaf under deletion is the
		// sibling of key's position, so that is the edge to remove and
		// key's own edge is the survivor.
		doomedAddr, siblingAddr = otherAddr, childAddr
	}
	// Freeze the sibling edge (emulated bit-test-and-set).
	for {
		v := siblingAddr.Load()
		if tagged(v) {
			break
		}
		if siblingAddr.CompareAndSwap(v, v|tagBit) {
			break
		}
	}
	v := siblingAddr.Load()
	// Swing the ancestor's edge over the doomed parent+leaf, keeping the
	// sibling's flag bit (its own deletion, if any, must stay visible).
	if successorAddr.CompareAndSwap(uint64(s.successor), v&^tagBit) {
		// Exactly one thread performs this transition; it accounts for
		// the leaked router and leaf.
		stamp := t.ops[tid].n
		t.leak.Retire(tid, s.parent, stamp)
		doomed := doomedAddr.Load()
		if flagged(doomed) {
			t.leak.Retire(tid, addrOf(doomed), stamp)
		}
		return true
	}
	return false
}

// Snapshot implements sets.Set (quiescence required).
func (t *NMTree) Snapshot() []uint64 {
	var out []uint64
	var walk func(h arena.Handle)
	walk = func(h arena.Handle) {
		if h.IsNil() {
			return
		}
		n := t.ar.At(h)
		l := addrOf(n.left.Load())
		if l.IsNil() {
			if n.key <= NMMaxKey {
				out = append(out, n.key)
			}
			return
		}
		walk(l)
		walk(addrOf(n.right.Load()))
	}
	walk(t.root)
	return out
}

// ValidateRouting checks the routing invariant (test helper; quiescence
// required).
func (t *NMTree) ValidateRouting() bool {
	ok := true
	var walk func(h arena.Handle, lo, hi uint64)
	walk = func(h arena.Handle, lo, hi uint64) {
		if !ok || h.IsNil() {
			return
		}
		n := t.ar.At(h)
		l := addrOf(n.left.Load())
		r := addrOf(n.right.Load())
		if l.IsNil() {
			if !r.IsNil() || n.key < lo || n.key > hi {
				ok = false
			}
			return
		}
		if r.IsNil() || n.key < lo || n.key > hi || n.key == 0 {
			ok = false
			return
		}
		walk(l, lo, n.key-1)
		walk(r, n.key, hi)
	}
	walk(t.root, 0, ^uint64(0))
	return ok
}

// LiveNodes implements sets.MemoryReporter. For the leaky tree this only
// ever grows.
func (t *NMTree) LiveNodes() uint64 { return t.ar.Stats().Live }

// DeferredNodes implements sets.MemoryReporter: the leaked node count.
func (t *NMTree) DeferredNodes() uint64 { return t.leak.Stats().Deferred }

// PeakDeferred reports the leak high-water mark (equal to DeferredNodes:
// nothing is ever freed).
func (t *NMTree) PeakDeferred() uint64 { return t.leak.Stats().PeakDeferred }
