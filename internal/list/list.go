// Package list implements the paper's linked-list based concurrent sets
// (§4.1, §4.2): hand-over-hand transactional singly and doubly linked
// lists with revocable reservations, plus the three comparator modes the
// evaluation uses — whole-operation transactions (the HTM baseline),
// hand-over-hand with hazard-pointer deferred reclamation (TMHP), and
// hand-over-hand with transactional reference counting (REF) — and the
// post-2017 deferred comparators DESIGN.md §14 describes: hazard eras
// (TMHE) and version-based reclamation (TMVBR).
//
// All variants share one node layout and one arena, so differences in the
// figures come from the synchronization/reclamation mechanism, not from
// memory layout.
package list

import (
	"fmt"
	"sync/atomic"

	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
	"hohtx/internal/reclaim"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Mode selects the synchronization/reclamation mechanism.
type Mode uint8

const (
	// ModeRR is hand-over-hand transactions with revocable reservations
	// and immediate (precise) reclamation — the paper's contribution.
	ModeRR Mode = iota
	// ModeHTM performs each whole operation in a single transaction with
	// no reservations (the paper's "HTM" baseline).
	ModeHTM
	// ModeTMHP is hand-over-hand transactions with hazard pointers and
	// batched deferred reclamation (the paper's "TMHP" baseline).
	ModeTMHP
	// ModeREF is hand-over-hand transactions with transactional
	// reference counts on window boundary nodes (the paper's "REF"
	// baseline; singly linked list only).
	ModeREF
	// ModeER runs each operation as one transaction that early-releases
	// traversal reads more than W nodes behind the frontier (Herlihy et
	// al. [17]; the paper's §1 discusses this as the STM-only alternative
	// to hand-over-hand windows — it cannot run on real HTM, and it
	// cannot reclaim precisely, so removals defer reclamation through
	// epochs. Singly linked list only; provided as an extension
	// comparator, not one of the paper's measured series.)
	ModeER
	// ModeTMHE is hand-over-hand transactions with hazard-era deferred
	// reclamation (Ramalhete & Correia; DESIGN.md §14): the TMHP window
	// protocol verbatim, but the published reservation is an era, not a
	// pointer, so protection costs an epoch-style clock read while a
	// stalled reader strands only the nodes whose lifetime interval it
	// covers.
	ModeTMHE
	// ModeTMVBR is hand-over-hand transactions with version-based
	// reclamation (Sheffi, Herlihy & Petrank; DESIGN.md §14): no
	// reservations at all — retirees are freed once the STM's version
	// fence advances past their retire stamp, and a resumed traversal
	// revalidates its held node by arena generation + dead mark instead
	// of pinning it.
	ModeTMVBR
)

// node is the shared node layout. Every field is a transactional cell;
// recycled nodes are re-initialized with transactional stores only (see
// the arena package comment for why). The trailing pad keeps concurrent
// transactions on neighboring nodes from false-sharing version locks.
type node struct {
	key  stm.Word
	next stm.Word // arena.Handle bits; 0 = nil
	prev stm.Word // doubly linked list only
	dead stm.Word // TMHP/REF logical-deletion mark
	rc   stm.Word // REF reference count
	_    pad.Line
}

// threadState is per-thread traversal state for the deferred-reclamation
// modes plus the operation stamp used for reclamation-delay accounting.
type threadState struct {
	start  arena.Handle // TMHP/TMHE/TMVBR/REF resume position (Nil = start from head)
	parity int          // TMHP/TMHE hazard slot alternation
	ops    uint64
	marks  []uint64 // ModeER: read marks of the last W spine nodes

	// Grow-only batch scratch (see applyBatch): the result and visit-order
	// buffers are reused across this thread's batches, so steady-state
	// Apply allocates nothing.
	batchOut   []sets.Result
	batchOrder []int
	_          pad.Line
}

// Config parameterizes list construction.
type Config struct {
	// Mode selects the mechanism; default ModeRR.
	Mode Mode
	// RRKind selects the reservation implementation for ModeRR.
	RRKind core.Kind
	// Threads is the number of distinct tids that will operate on the
	// list. Required.
	Threads int
	// Window is the hand-over-hand window policy. The paper's best
	// settings are thread-count dependent (Figure 4); 8–16 are good
	// defaults. Ignored (unbounded) for ModeHTM.
	Window core.Window
	// Profile overrides the TM speculation profile. The zero value means
	// the paper's list setting: HTM simulation with serial fallback after
	// 2 failed attempts.
	Profile stm.Profile
	// ArenaPolicy selects the allocator free-list policy (Figure 5).
	ArenaPolicy arena.Policy
	// ScanThreshold is the hazard-pointer batch size for ModeTMHP;
	// default 64 (the paper's best-performing setting).
	ScanThreshold int
	// TableBits/Assoc size the reservation metadata (see core.Config).
	TableBits int
	Assoc     int
	// YieldShift enables simulated preemption inside transactions (see
	// stm.Profile.YieldShift); it composes with whatever Profile is in
	// effect.
	YieldShift uint8
	// ClockPolicy selects the TM global-clock policy (see
	// stm.Profile.ClockPolicy); like YieldShift it composes with whatever
	// Profile is in effect.
	ClockPolicy stm.ClockPolicy
	// Guard enables the arena use-after-free sanitizer: freed nodes are
	// poisoned and any *committed* read of a dead node is reported (see
	// guard.go). Off by default; the enabled-mode overhead is one
	// predictable branch per traversal load.
	Guard bool
	// GuardSink receives guard violations instead of the default panic
	// (torture harnesses collect events; tests assert on them). Only
	// meaningful with Guard set.
	GuardSink func(arena.GuardEvent)
	// Obs, when non-nil, threads the observability domain through every
	// layer the list owns: commit/backoff latency and abort attribution on
	// the TM runtime, free→reuse distances on the arena, hold times on the
	// reservation, retire→free delays and a deferred-depth gauge on the
	// deferred-reclamation scheme. Nil keeps every instrumented site at a
	// single nil/branch check.
	Obs *obs.Domain
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Profile == (stm.Profile{}) {
		c.Profile = stm.HTMProfile(2)
	}
	if c.YieldShift != 0 {
		c.Profile.YieldShift = c.YieldShift
	}
	if c.ClockPolicy != 0 {
		c.Profile.ClockPolicy = c.ClockPolicy
	}
	if c.Window.W == 0 && c.Mode != ModeHTM {
		c.Window.W = 8
	}
	if c.Mode == ModeHTM {
		c.Window = core.Window{} // unbounded: one transaction per op
	}
	if c.ScanThreshold <= 0 {
		c.ScanThreshold = reclaim.DefaultScanThreshold
	}
	return c
}

// List is the singly linked set (Listing 5).
type List struct {
	rt          *stm.Runtime
	ar          *arena.Arena[node]
	rr          core.Reservation // ModeRR only
	hp          *reclaim.HazardPointers
	ep          *reclaim.Epochs     // ModeER only
	he          *reclaim.HazardEras // ModeTMHE only
	vbr         *reclaim.VBR        // ModeTMVBR only
	mode        Mode
	win         core.Window
	winOverride atomic.Int32
	head        arena.Handle
	threads     []threadState
	guard       bool
	obs         *obs.Domain
	scanWindows *obs.Histogram // window txs per Ascend (nil without Obs)
	scanRenavs  *obs.Histogram // re-navigations per Ascend (nil without Obs)

	// Bound commit/abort hooks, created once here and registered on the
	// hot paths via stm.OnCommitCall/OnAbortCall with inline arguments.
	// A fresh closure per operation would heap-allocate on every
	// insert/remove — allocator traffic the arena's exact books never
	// see, and exactly the GC pressure the paper's Fig. 5 warns distorts
	// reclamation comparisons. Argument encoding: a = tid (two's
	// complement through uint64), b = arena handle, c = retire stamp or
	// hazard parity slot.
	freeHook   func(a, b, c uint64) // ar.Free(tid, handle)
	retireHook func(a, b, c uint64) // mode's deferred retire(tid, handle, stamp)
	holdHook   func(a, b, c uint64) // publish window hold: resume at handle b, parity slot c
	termHook   func(a, b, c uint64) // drop window hold at operation end
}

var _ sets.Set = (*List)(nil)
var _ sets.MemoryReporter = (*List)(nil)

// New constructs a singly linked list set.
func New(cfg Config) *List {
	cfg = cfg.withDefaults()
	l := &List{
		rt: stm.NewRuntime(cfg.Profile),
		ar: arena.New[node](arena.Config{
			Policy: cfg.ArenaPolicy, Threads: cfg.Threads,
			Guard: cfg.Guard, AccessCheck: cfg.GuardSink,
		}),
		mode:    cfg.Mode,
		win:     cfg.Window,
		threads: make([]threadState, cfg.Threads),
		guard:   cfg.Guard,
	}
	l.ar.SetRetire(func(n *node) { retireNode(n, l.rt.VersionFence()) })
	if cfg.Guard {
		l.ar.SetPoison(poisonNode)
	}
	switch cfg.Mode {
	case ModeRR:
		l.rr = core.New(cfg.RRKind, core.Config{
			Threads: cfg.Threads, TableBits: cfg.TableBits, Assoc: cfg.Assoc,
		})
	case ModeTMHP:
		l.hp = reclaim.NewHazardPointers(reclaim.HPConfig{
			Threads:        cfg.Threads,
			SlotsPerThread: 2,
			ScanThreshold:  cfg.ScanThreshold,
			Free:           func(tid int, h arena.Handle) { l.ar.Free(tid, h) },
		})
	case ModeER:
		l.ep = reclaim.NewEpochs(cfg.Threads, cfg.ScanThreshold,
			func(tid int, h arena.Handle) { l.ar.Free(tid, h) })
		l.ep.Guard = cfg.Guard
		for i := range l.threads {
			l.threads[i].marks = make([]uint64, cfg.Window.W)
		}
	case ModeTMHE:
		l.he = reclaim.NewHazardEras(reclaim.HEConfig{
			Threads:        cfg.Threads,
			SlotsPerThread: 2,
			ScanThreshold:  cfg.ScanThreshold,
			Free:           func(tid int, h arena.Handle) { l.ar.Free(tid, h) },
		})
	case ModeTMVBR:
		l.vbr = reclaim.NewVBR(reclaim.VBRConfig{
			Threads:   cfg.Threads,
			TickEvery: cfg.ScanThreshold,
			Clock:     l.rt.VersionFence,
			Tick:      l.rt.TickVersionFence,
			Free:      func(tid int, h arena.Handle) { l.ar.Free(tid, h) },
		})
	}
	l.freeHook = func(a, b, _ uint64) { l.ar.Free(int(int64(a)), arena.Handle(b)) }
	switch cfg.Mode {
	case ModeTMHP:
		l.retireHook = func(a, b, c uint64) { l.hp.Retire(int(int64(a)), arena.Handle(b), c) }
		l.holdHook = func(a, b, c uint64) {
			tid := int(int64(a))
			l.threads[tid].start = arena.Handle(b)
			l.hp.Protect(tid, int(c)^1, 0) // drop the previous window's hazard
			l.threads[tid].parity++
		}
		l.termHook = func(a, _, _ uint64) {
			tid := int(int64(a))
			l.threads[tid].start = arena.Nil
			l.hp.ClearSlots(tid)
		}
	case ModeTMHE:
		l.retireHook = func(a, b, c uint64) { l.he.Retire(int(int64(a)), arena.Handle(b), c) }
		l.holdHook = func(a, b, c uint64) {
			tid := int(int64(a))
			l.threads[tid].start = arena.Handle(b)
			l.he.Protect(tid, int(c)^1, 0) // drop the previous window's reservation
			l.threads[tid].parity++
		}
		l.termHook = func(a, _, _ uint64) {
			tid := int(int64(a))
			l.threads[tid].start = arena.Nil
			l.he.ClearSlots(tid)
		}
	case ModeTMVBR:
		l.retireHook = func(a, b, c uint64) { l.vbr.Retire(int(int64(a)), arena.Handle(b), c) }
		l.holdHook = func(a, b, _ uint64) { l.threads[int(int64(a))].start = arena.Handle(b) }
		l.termHook = func(a, _, _ uint64) { l.threads[int(int64(a))].start = arena.Nil }
	case ModeER:
		l.retireHook = func(a, b, c uint64) { l.ep.Retire(int(int64(a)), arena.Handle(b), c) }
	case ModeREF:
		l.holdHook = func(a, b, _ uint64) { l.threads[int(int64(a))].start = arena.Handle(b) }
		l.termHook = func(a, _, _ uint64) { l.threads[int(int64(a))].start = arena.Nil }
	}
	if cfg.Obs != nil {
		l.obs = cfg.Obs
		l.scanWindows = cfg.Obs.Hist(obs.HistAscendWindows, "txs")
		l.scanRenavs = cfg.Obs.Hist(obs.HistAscendRenavs, "navs")
		l.rt.SetObserver(cfg.Obs.TxProbe())
		l.ar.SetObserver(cfg.Obs.AllocProbe())
		if l.rr != nil {
			l.rr = core.Observed(l.rr, cfg.Obs.HoldProbe(), cfg.Threads)
		}
		if l.hp != nil {
			l.hp.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return l.hp.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return l.hp.Stats().PeakDeferred })
		}
		if l.ep != nil {
			l.ep.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return l.ep.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return l.ep.Stats().PeakDeferred })
		}
		if l.he != nil {
			l.he.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return l.he.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return l.he.Stats().PeakDeferred })
		}
		if l.vbr != nil {
			l.vbr.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return l.vbr.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return l.vbr.Stats().PeakDeferred })
		}
	}
	// The head sentinel is allocated fresh (never shared before init), so
	// non-transactional Init is safe here and only here.
	l.head = l.ar.Alloc(0)
	h := l.ar.At(l.head)
	h.key.Init(0)
	h.next.Init(0)
	h.prev.Init(0)
	h.dead.Init(0)
	h.rc.Init(0)
	return l
}

// Runtime exposes the list's TM runtime (statistics, ablation benches).
func (l *List) Runtime() *stm.Runtime { return l.rt }

// ObsDomain returns the observability domain wired at construction (nil
// when Config.Obs was nil).
func (l *List) ObsDomain() *obs.Domain { return l.obs }

// SetWindow changes the hand-over-hand window size at runtime (0 restores
// the configured value). The paper proposes contention-driven window
// tuning as future work; this is the knob that enables it (see
// examples/tuner). Safe to call concurrently with operations: in-flight
// windows finish at their old size.
func (l *List) SetWindow(w int) { l.winOverride.Store(int32(w)) }

// window returns the effective window policy for a new transaction.
func (l *List) window() core.Window {
	win := l.win
	if o := l.winOverride.Load(); o > 0 {
		win.W = int(o)
	}
	return win
}

// Name implements sets.Set.
func (l *List) Name() string {
	switch l.mode {
	case ModeRR:
		return l.rr.Name()
	case ModeHTM:
		return "HTM"
	case ModeTMHP:
		return "TMHP"
	case ModeREF:
		return "REF"
	case ModeER:
		return "ER"
	case ModeTMHE:
		return "TMHE"
	case ModeTMVBR:
		return "TMVBR"
	default:
		return fmt.Sprintf("list-?%d", l.mode)
	}
}

// Register implements sets.Set.
func (l *List) Register(tid int) {
	if l.rr != nil {
		l.rr.Register(tid)
	}
}

// Finish implements sets.Set: it flushes deferred reclamation.
func (l *List) Finish(tid int) {
	if l.hp != nil {
		l.hp.ClearSlots(tid)
		l.hp.Flush(tid, l.threads[tid].ops)
	}
	if l.ep != nil {
		l.ep.Flush(tid, l.threads[tid].ops)
	}
	if l.he != nil {
		l.he.ClearSlots(tid)
		l.he.Flush(tid, l.threads[tid].ops)
	}
	if l.vbr != nil {
		l.vbr.Flush(tid, l.threads[tid].ops)
	}
}

// Lookup implements sets.Set.
func (l *List) Lookup(tid int, key uint64) bool {
	res, _ := l.apply(tid, key, false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return true },
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
	)
	return res
}

// Insert implements sets.Set.
func (l *List) Insert(tid int, key uint64) bool {
	res, _ := l.apply(tid, key, false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
		func(tx *stm.Tx, prevH, currH arena.Handle) bool {
			nh := l.allocNode(tx, tid, key, currH, arena.Nil)
			l.ar.At(prevH).next.Store(tx, uint64(nh))
			return true
		},
	)
	return res
}

// Remove implements sets.Set.
func (l *List) Remove(tid int, key uint64) bool {
	res, _ := l.apply(tid, key, false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool {
			l.unlinkAndReclaim(tx, tid, prevH, currH)
			return true
		},
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
	)
	return res
}

// allocNode allocates and transactionally initializes a node holding key
// with successor nextH and (for the doubly linked list) predecessor prevH,
// returning its handle. If the transaction aborts the node is returned to
// the arena.
func (l *List) allocNode(tx *stm.Tx, tid int, key uint64, nextH, prevH arena.Handle) arena.Handle {
	nh := l.ar.Alloc(tid)
	if l.he != nil {
		// Birth-era stamp, before the node is published (an aborted alloc
		// leaves a stale entry; the slot's next incarnation restamps it).
		l.he.StampAlloc(nh)
	}
	tx.OnAbortCall(l.freeHook, uint64(int64(tid)), uint64(nh), 0)
	n := l.ar.At(nh)
	// Transactional stores: the slot may be recycled, and some doomed
	// reader may still hold a stale handle to it (see package arena).
	n.key.Store(tx, key)
	n.next.Store(tx, uint64(nextH))
	n.prev.Store(tx, uint64(prevH))
	n.dead.Store(tx, 0)
	n.rc.Store(tx, 0)
	return nh
}

// unlinkAndReclaim removes currH (whose predecessor is prevH) from the
// list and reclaims it according to the list's mode. For ModeRR this is
// Listing 5's λfound for Remove: unlink, Revoke, then free at the commit
// point — precise reclamation.
func (l *List) unlinkAndReclaim(tx *stm.Tx, tid int, prevH, currH arena.Handle) {
	curr := l.ar.At(currH)
	l.ar.At(prevH).next.Store(tx, uint64(l.loadLink(tx, tid, currH, &curr.next)))
	switch l.mode {
	case ModeRR:
		l.rr.Revoke(tx, uint64(currH))
		tx.OnCommitCall(l.freeHook, uint64(int64(tid)), uint64(currH), 0)
	case ModeHTM:
		// No reservations exist; no transaction ever resumes at a node.
		tx.OnCommitCall(l.freeHook, uint64(int64(tid)), uint64(currH), 0)
	case ModeTMHP, ModeTMHE, ModeTMVBR:
		curr.dead.Store(tx, 1)
		tx.OnCommitCall(l.retireHook, uint64(int64(tid)), uint64(currH), l.threads[tid].ops)
	case ModeREF:
		curr.dead.Store(tx, 1)
		if l.loadWord(tx, tid, currH, &curr.rc) == 0 {
			tx.OnCommitCall(l.freeHook, uint64(int64(tid)), uint64(currH), 0)
		}
		// Otherwise the last window-holder's decrement frees it.
	case ModeER:
		// Re-store the removed node's next (same value: a version bump
		// only). Writers that traversed through currH retain its next in
		// their (un-released) read suffix, so this write is what makes a
		// racing insert-after-currH or remove-of-successor abort even
		// though the writes to our predecessor were early-released.
		curr.next.Store(tx, uint64(l.loadLink(tx, tid, currH, &curr.next)))
		curr.dead.Store(tx, 1)
		tx.OnCommitCall(l.retireHook, uint64(int64(tid)), uint64(currH), l.threads[tid].ops)
	}
}

// refDecrement drops one reference count from h, freeing it at commit if
// it reaches zero on a logically deleted node (ModeREF).
func (l *List) refDecrement(tx *stm.Tx, tid int, h arena.Handle) {
	n := l.ar.At(h)
	v := l.loadWord(tx, tid, h, &n.rc) - 1
	n.rc.Store(tx, v)
	if v == 0 && l.loadWord(tx, tid, h, &n.dead) != 0 {
		tx.OnCommitCall(l.freeHook, uint64(int64(tid)), uint64(h), 0)
	}
}

// LiveNodes implements sets.MemoryReporter (includes the head sentinel).
func (l *List) LiveNodes() uint64 { return l.ar.Stats().Live }

// deferredScheme returns the list's deferred-reclamation scheme, nil for
// the precise modes.
func (l *List) deferredScheme() reclaim.Scheme {
	switch {
	case l.hp != nil:
		return l.hp
	case l.ep != nil:
		return l.ep
	case l.he != nil:
		return l.he
	case l.vbr != nil:
		return l.vbr
	}
	return nil
}

// DeferredNodes implements sets.MemoryReporter.
func (l *List) DeferredNodes() uint64 {
	if s := l.deferredScheme(); s != nil {
		return s.Stats().Deferred
	}
	return 0
}

// ReclaimStats exposes the deferred-reclamation counters (TMHP's hazard
// pointers, ER's epochs, TMHE's hazard eras, TMVBR's version clock; zero
// for the precise modes).
func (l *List) ReclaimStats() reclaim.Stats {
	if s := l.deferredScheme(); s != nil {
		return s.Stats()
	}
	return reclaim.Stats{}
}

// TxCommits reports committed transactions (benchmark statistics).
func (l *List) TxCommits() uint64 { return l.rt.Stats().Commits }

// TxAborts reports aborted transaction attempts.
func (l *List) TxAborts() uint64 { return l.rt.Stats().TotalAborts() }

// TxSerial reports serial-mode commits (HTM-fallback events).
func (l *List) TxSerial() uint64 { return l.rt.Stats().SerialCommits }

// TMStats returns the full TM statistics snapshot (per-cause aborts,
// clock and commit-lock counters).
func (l *List) TMStats() stm.Stats { return l.rt.Stats() }

// PeakDeferred reports the reclamation scheme's deferred high-water mark.
func (l *List) PeakDeferred() uint64 {
	if s := l.deferredScheme(); s != nil {
		return s.Stats().PeakDeferred
	}
	return 0
}

// AvgReclaimDelayOps reports the mean operations between logical deletion
// and physical free (0 for the precise modes).
func (l *List) AvgReclaimDelayOps() float64 {
	if s := l.deferredScheme(); s != nil {
		return s.Stats().AvgDelayOps()
	}
	return 0
}

// Snapshot implements sets.Set. Callers must ensure quiescence.
func (l *List) Snapshot() []uint64 {
	var out []uint64
	for h := arena.Handle(l.ar.At(l.head).next.Raw()); !h.IsNil(); {
		n := l.ar.At(h)
		out = append(out, n.key.Raw())
		h = arena.Handle(n.next.Raw())
	}
	return out
}
