package stm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newGV5Runtime() *Runtime {
	return NewRuntime(Profile{ClockPolicy: ClockGV5})
}

func TestClockPolicyString(t *testing.T) {
	if ClockGV1.String() != "gv1" || ClockGV5.String() != "gv5" {
		t.Fatalf("policy names = %q, %q", ClockGV1.String(), ClockGV5.String())
	}
}

// TestTickVersionFence checks the property reclaim.VBR's drain rule
// rests on: after a tick, VersionFence is strictly greater than every
// fence value observed before the tick — under both clock policies.
func TestTickVersionFence(t *testing.T) {
	for _, pol := range []ClockPolicy{ClockGV1, ClockGV5} {
		rt := NewRuntime(Profile{ClockPolicy: pol})
		before := rt.VersionFence()
		rt.TickVersionFence()
		after := rt.VersionFence()
		if after <= before {
			t.Fatalf("%s: fence %d -> %d after tick, want strict advance",
				pol, before, after)
		}
		if after%2 != 0 || before%2 != 0 {
			t.Fatalf("%s: fences must stay even: %d -> %d", pol, before, after)
		}
	}
}

// TestGV5LazyPublication checks the defining GV5 property: disjoint
// fast-path writers do not advance the published clock, and a subsequent
// reader advances it itself (counted in ClockCASes) before trusting the
// newer version.
func TestGV5LazyPublication(t *testing.T) {
	rt := newGV5Runtime()
	var w Word
	rt.Atomic(func(tx *Tx) { w.Store(tx, 7) })
	if got := rt.now(); got != 0 {
		t.Fatalf("published clock advanced to %d by a fast-path writer", got)
	}
	if got := Run(rt, func(tx *Tx) uint64 { return w.Load(tx) }); got != 7 {
		t.Fatalf("read back %d, want 7", got)
	}
	if rt.now() == 0 {
		t.Fatal("reader did not advance the published clock")
	}
	if st := rt.Stats(); st.ClockCASes == 0 {
		t.Fatalf("expected clock CASes in stats, got %+v", st)
	}
}

// TestGV1NoClockCASes pins the GV1 half of the stats contract: the Add-based
// policy never CASes the clock.
func TestGV1NoClockCASes(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	for i := 0; i < 100; i++ {
		rt.Atomic(func(tx *Tx) { w.Store(tx, w.Load(tx)+1) })
	}
	if st := rt.Stats(); st.ClockCASes != 0 {
		t.Fatalf("GV1 performed %d clock CASes", st.ClockCASes)
	}
}

// TestGV5CounterSerializability is TestCounterSerializability under the
// lazy clock: lost updates mean the commit protocol is broken.
func TestGV5CounterSerializability(t *testing.T) {
	rt := newGV5Runtime()
	var w Word
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rt.Atomic(func(tx *Tx) {
					w.Store(tx, w.Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := w.Raw(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestGV5SnapshotConsistency is the opacity test under the lazy clock. The
// naive GV5 formulation (write versions that can sit at or below an already
// published snapshot bound while their write-back is in flight) fails
// exactly this test: a reader mixes a committer's already-written cell with
// the stale value of its not-yet-written one.
func TestGV5SnapshotConsistency(t *testing.T) {
	rt := newGV5Runtime()
	var a, b Word
	a.Init(100)
	const iters = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				amt := uint64(i%3 + 1)
				rt.Atomic(func(tx *Tx) {
					av := a.Load(tx)
					if av >= amt {
						a.Store(tx, av-amt)
						b.Store(tx, b.Load(tx)+amt)
					} else {
						a.Store(tx, av+b.Load(tx))
						b.Store(tx, 0)
					}
				})
			}
		}()
	}

	var violations int
	var rwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum := Run(rt, func(tx *Tx) uint64 {
					return a.Load(tx) + b.Load(tx)
				})
				if sum != 100 {
					violations++
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if violations > 0 {
		t.Fatalf("observed %d torn snapshots (a+b != 100)", violations)
	}
	if got := a.Raw() + b.Raw(); got != 100 {
		t.Fatalf("final sum = %d, want 100", got)
	}
}

// TestGV5WriteSkewPrevented mirrors TestWriteSkewPrevented: full
// serializability must survive the loss of unique write versions.
func TestGV5WriteSkewPrevented(t *testing.T) {
	rt := newGV5Runtime()
	var x, y Word
	const iters = 3000
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rt.Atomic(func(tx *Tx) {
					xv, yv := x.Load(tx), y.Load(tx)
					if id == 0 {
						if yv == 0 {
							x.Store(tx, 1)
						} else {
							x.Store(tx, 0)
						}
					} else {
						if xv == 0 {
							y.Store(tx, 1)
						} else {
							y.Store(tx, 0)
						}
					}
					_ = xv
				})
				if x.Raw() == 1 && y.Raw() == 1 {
					bad := Run(rt, func(tx *Tx) bool {
						return x.Load(tx) == 1 && y.Load(tx) == 1
					})
					if bad {
						t.Error("write skew: x == y == 1")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGV5SerialMix drives capacity-bounded transactions so serial-mode
// (Add-based) and fast-path (lazy) write versions interleave on the same
// cells, checking the mixed-policy commit protocol end to end.
func TestGV5SerialMix(t *testing.T) {
	rt := NewRuntime(Profile{Capacity: 8, MaxAttempts: 2, ClockPolicy: ClockGV5})
	cells := make([]Word, 32)
	var wg sync.WaitGroup
	const rounds = 300
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if r%4 == 0 {
					// Overflows capacity -> serial commit.
					rt.Atomic(func(tx *Tx) {
						for i := range cells {
							cells[i].Store(tx, cells[i].Load(tx)+1)
						}
					})
				} else {
					i := (id*rounds + r) % len(cells)
					rt.Atomic(func(tx *Tx) {
						cells[i].Store(tx, cells[i].Load(tx)+1)
					})
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for i := range cells {
		total += cells[i].Raw()
	}
	// 4 goroutines * (75 full sweeps * 32 cells + 225 single increments).
	want := uint64(4 * (75*32 + 225))
	if total != want {
		t.Fatalf("total increments = %d, want %d", total, want)
	}
	if st := rt.Stats(); st.SerialCommits == 0 {
		t.Fatalf("expected serial commits, got %+v", st)
	}
}

// TestGV5ModelEquivalence replays random scripts against a shadow array
// under the lazy clock, as model_test.go does for the default profile.
func TestGV5ModelEquivalence(t *testing.T) {
	rt := newGV5Runtime()
	const ncells = 8
	cells := make([]Word, ncells)
	shadow := make([]uint64, ncells)

	check := func(script []uint16) bool {
		for _, op := range script {
			cell := int(op) % ncells
			val := uint64(op >> 4)
			if op%3 == 0 {
				rt.Atomic(func(tx *Tx) { cells[cell].Store(tx, val) })
				shadow[cell] = val
			} else {
				got := Run(rt, func(tx *Tx) uint64 { return cells[cell].Load(tx) })
				if got != shadow[cell] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(42)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
