package list

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// DList is the doubly linked set (§4.2). Traversals are identical to the
// singly linked list; insertions additionally maintain back links; and
// removal exploits them: because a node's predecessor and successor are
// both reachable from the node itself, a Remove can finish its traversal
// by merely *reserving* the found node, commit, and then unlink + revoke
// in a second, much smaller transaction. If that second transaction finds
// the reservation gone, a strict reservation proves a concurrent Remove
// took the same node (return false); a relaxed one cannot distinguish that
// from a spurious invalidation, so the whole operation retries (§4.2).
type DList struct {
	List
}

var _ sets.Set = (*DList)(nil)

// NewDoubly constructs a doubly linked list set. ModeREF is not supported
// (the paper drops reference counting after the singly linked list
// experiments).
func NewDoubly(cfg Config) *DList {
	if cfg.Mode == ModeREF || cfg.Mode == ModeER {
		panic("list: ModeREF and ModeER are only implemented for the singly linked list")
	}
	return &DList{List: *New(cfg)}
}

// Insert implements sets.Set, maintaining prev links.
func (d *DList) Insert(tid int, key uint64) bool {
	res, _ := d.apply(tid, key, false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
		func(tx *stm.Tx, prevH, currH arena.Handle) bool {
			nh := d.allocNode(tx, tid, key, currH, prevH)
			d.ar.At(prevH).next.Store(tx, uint64(nh))
			if !currH.IsNil() {
				d.ar.At(currH).prev.Store(tx, uint64(nh))
			}
			return true
		},
	)
	return res
}

// phase-2 outcomes of the two-transaction remove.
const (
	removedOp = iota
	lostOp
	retryOp
)

// Remove implements sets.Set.
func (d *DList) Remove(tid int, key uint64) bool {
	if d.mode == ModeHTM {
		// Single-transaction removal; the traversal and unlink commit
		// together, so no reservation is involved.
		res, _ := d.apply(tid, key, false,
			func(tx *stm.Tx, prevH, currH arena.Handle) bool {
				d.unlinkDoubly(tx, tid, currH)
				tx.OnCommit(func() { d.ar.Free(tid, currH) })
				return true
			},
			func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
		)
		return res
	}
	for {
		// Phase 1: locate the node and leave our hold attached to it.
		found, target := d.apply(tid, key, true,
			func(tx *stm.Tx, prevH, currH arena.Handle) bool { return true },
			func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
		)
		if !found {
			return false
		}
		var out int
		switch d.mode {
		case ModeRR:
			out = d.removePhase2RR(tid, target)
		case ModeTMHP:
			out = d.removePhase2TMHP(tid, target)
		case ModeTMHE:
			out = d.removePhase2TMHE(tid, target)
		case ModeTMVBR:
			out = d.removePhase2TMVBR(tid, target)
		}
		switch out {
		case removedOp:
			return true
		case lostOp:
			// A concurrent Remove of the same node committed first; this
			// operation linearizes immediately after it.
			return false
		}
		// retryOp: a relaxed reservation was spuriously invalidated —
		// retry the entire operation from the head.
	}
}

// removePhase2RR unlinks and revokes the reserved target in its own
// transaction.
func (d *DList) removePhase2RR(tid int, target arena.Handle) int {
	out := retryOp
	d.rt.AtomicT(tid, func(tx *stm.Tx) {
		out = retryOp
		r := d.rr.Get(tx, tid)
		if r == 0 {
			d.rr.Release(tx, tid)
			if d.rr.Strict() {
				// Strict: only Revoke(target) clears it, and only the
				// thread removing target revokes it.
				out = lostOp
			}
			return
		}
		// Get can only return what phase 1 reserved.
		h := arena.Handle(r)
		d.unlinkDoubly(tx, tid, h)
		d.rr.Revoke(tx, uint64(h))
		d.rr.Release(tx, tid)
		tx.OnCommit(func() { d.ar.Free(tid, h) })
		out = removedOp
	})
	return out
}

// removePhase2TMHP unlinks the hazard-protected target, using the dead
// flag where the strict reservation would have detected a racing remove.
func (d *DList) removePhase2TMHP(tid int, target arena.Handle) int {
	ts := &d.threads[tid]
	out := retryOp
	d.rt.AtomicT(tid, func(tx *stm.Tx) {
		out = retryOp
		curr := d.ar.At(target)
		if d.loadWord(tx, tid, target, &curr.dead) != 0 {
			out = lostOp
			return
		}
		d.unlinkDoubly(tx, tid, target)
		curr.dead.Store(tx, 1)
		stamp := ts.ops
		tx.OnCommit(func() {
			ts.start = arena.Nil
			d.hp.ClearSlots(tid)
			d.hp.Retire(tid, target, stamp)
		})
		out = removedOp
	})
	if out == lostOp {
		ts.start = arena.Nil
		d.hp.ClearSlots(tid)
	}
	return out
}

// removePhase2TMHE is removePhase2TMHP with an era reservation standing
// in for the hazard pointer; the dead flag plays the same role.
func (d *DList) removePhase2TMHE(tid int, target arena.Handle) int {
	ts := &d.threads[tid]
	out := retryOp
	d.rt.AtomicT(tid, func(tx *stm.Tx) {
		out = retryOp
		curr := d.ar.At(target)
		if d.loadWord(tx, tid, target, &curr.dead) != 0 {
			out = lostOp
			return
		}
		d.unlinkDoubly(tx, tid, target)
		curr.dead.Store(tx, 1)
		stamp := ts.ops
		tx.OnCommit(func() {
			ts.start = arena.Nil
			d.he.ClearSlots(tid)
			d.he.Retire(tid, target, stamp)
		})
		out = removedOp
	})
	if out == lostOp {
		ts.start = arena.Nil
		d.he.ClearSlots(tid)
	}
	return out
}

// removePhase2TMVBR unlinks the held target with nothing pinning it
// between the phases: like windowStart, the dead load is bracketed by
// arena-generation liveness checks so a free-and-recycle between phases
// reads as a lost race rather than a wrong-incarnation unlink.
func (d *DList) removePhase2TMVBR(tid int, target arena.Handle) int {
	ts := &d.threads[tid]
	out := retryOp
	d.rt.AtomicT(tid, func(tx *stm.Tx) {
		out = retryOp
		if !d.ar.Live(target) {
			out = lostOp
			return
		}
		curr := d.ar.At(target)
		if d.loadWord(tx, tid, target, &curr.dead) != 0 {
			out = lostOp
			return
		}
		if !d.ar.Live(target) {
			out = lostOp
			return
		}
		d.unlinkDoubly(tx, tid, target)
		curr.dead.Store(tx, 1)
		stamp := ts.ops
		tx.OnCommit(func() {
			ts.start = arena.Nil
			d.vbr.Retire(tid, target, stamp)
		})
		out = removedOp
	})
	if out == lostOp {
		ts.start = arena.Nil
	}
	return out
}

// unlinkDoubly splices currH out using its own links; the predecessor is
// always a real node (ultimately the head sentinel).
func (d *DList) unlinkDoubly(tx *stm.Tx, tid int, currH arena.Handle) {
	curr := d.ar.At(currH)
	p := d.loadLink(tx, tid, currH, &curr.prev)
	nx := d.loadLink(tx, tid, currH, &curr.next)
	if p.IsNil() {
		// Only a poisoned prev defuses to Nil (real predecessors bottom out
		// at the head sentinel); this attempt is doomed, skip the splice.
		return
	}
	d.ar.At(p).next.Store(tx, uint64(nx))
	if !nx.IsNil() {
		d.ar.At(nx).prev.Store(tx, uint64(p))
	}
}

// ValidateLinks checks prev/next symmetry over the whole list; it is a
// test helper and requires quiescence.
func (d *DList) ValidateLinks() bool {
	prev := d.head
	for h := arena.Handle(d.ar.At(d.head).next.Raw()); !h.IsNil(); {
		n := d.ar.At(h)
		if arena.Handle(n.prev.Raw()) != prev {
			return false
		}
		prev = h
		h = arena.Handle(n.next.Raw())
	}
	return true
}
