// Command benchfig regenerates the data series behind the paper's
// evaluation figures (Figures 2–7 of "Hand-Over-Hand Transactions with
// Precise Memory Reclamation", SPAA 2017), printing TSV to stdout.
//
// Usage:
//
//	benchfig -fig 2            # regenerate Figure 2's series
//	benchfig -fig all -quick   # fast smoke pass over every figure
//	benchfig -fig 6 -threads 1,2,4,8 -trials 5
//	benchfig -fig 2 -clock gv5 # same series under the lazy clock policy
//
// Column semantics: mops is total throughput (million operations per
// second, all threads combined); aborts_per_op and serial_per_op are TM
// conflict and serial-fallback rates; peak_deferred is the reclamation
// scheme's high-water mark of logically-deleted-but-unfreed nodes (always
// zero for the revocable reservation variants — the paper's point).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hohtx/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2..7 or 'all'")
	quick := flag.Bool("quick", false, "fast smoke mode (fewer ops/trials, 14-bit trees)")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	trials := flag.Int("trials", 0, "trials per cell (default: 3, or 1 with -quick)")
	seed := flag.Int64("seed", 0, "workload seed (default: fixed)")
	ops := flag.Int("ops", 0, "per-thread operations per trial (default: 200000, paper uses 1e6)")
	treebits := flag.Int("treebits", 0, "key bits for the big tree panels (default: 21 as in the paper)")
	clock := flag.String("clock", "gv1", "TM global-clock policy for all TM series: gv1 or gv5")
	flag.Parse()

	if *clock != "gv1" && *clock != "gv5" {
		fmt.Fprintf(os.Stderr, "benchfig: bad -clock %q (want gv1 or gv5)\n", *clock)
		os.Exit(2)
	}

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchfig: bad thread count %q\n", part)
			os.Exit(2)
		}
		ths = append(ths, n)
	}
	opts := bench.Opts{
		Quick: *quick, Threads: ths, Trials: *trials, Seed: *seed,
		OpsPerThread: *ops, TreeBits: *treebits, LazyClock: *clock == "gv5",
		Out: os.Stdout,
	}

	var figs []int
	if *fig == "all" {
		figs = []int{2, 3, 4, 5, 6, 7}
	} else {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: bad -fig %q\n", *fig)
			os.Exit(2)
		}
		figs = []int{n}
	}
	for _, n := range figs {
		fmt.Printf("# Figure %d%s\n", n, quickNote(*quick))
		if err := bench.Figure(n, opts); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: figure %d: %v\n", n, err)
			os.Exit(1)
		}
	}
}

func quickNote(q bool) string {
	if q {
		return " (quick mode: reduced ops/trials; 21-bit panels shrunk to 14-bit)"
	}
	return ""
}
