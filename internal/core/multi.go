package core

import (
	"sync/atomic"

	"hohtx/internal/pad"
	"hohtx/internal/stm"
)

// Multi-reservation objects.
//
// The specification (§2, Listing 1) defines refs(t) as a *set* per thread;
// the single-reservation algorithms in strict.go and relaxed.go are the
// specialization the paper's data structures need. This file provides the
// set extension the paper describes for both families:
//
//   - strict (§3.1): "we would replace the value field with a set. Then
//     Reserve would append to the set, Release would remove an element from
//     the set, and Get would test the set for membership. Revoke would
//     remove from each thread's set, potentially increasing asymptotic
//     complexity."
//
//   - relaxed (§3.2): "To support multiple reservations per thread, R_t can
//     be replaced with a set. Since R_t is only accessed by thread t, this
//     does not introduce new concurrency challenges."
//
// Sets have a fixed capacity K chosen at construction; reserving into a
// full set panics (a data structure that needs k concurrent reservations
// sizes the object accordingly, exactly as it would size hazard-pointer
// slots).

// MultiReservation is the per-thread-set form of the revocable reservation
// object. All methods except Register must run inside a transaction.
type MultiReservation interface {
	// Register announces thread tid (idempotent; call before first use).
	Register(tid int)
	// Reserve adds ref to tid's set. It panics if the set is full and
	// ref is not already present.
	Reserve(tx *stm.Tx, tid int, ref uint64)
	// ReleaseRef removes ref from tid's set (no-op if absent).
	ReleaseRef(tx *stm.Tx, tid int, ref uint64)
	// ReleaseAll empties tid's set.
	ReleaseAll(tx *stm.Tx, tid int)
	// Get returns ref if it is in tid's set, else 0. Relaxed
	// implementations may return 0 spuriously but never return a revoked
	// reference.
	Get(tx *stm.Tx, tid int, ref uint64) uint64
	// Revoke removes ref from every thread's set.
	Revoke(tx *stm.Tx, ref uint64)
	// Capacity is K, the per-thread set capacity.
	Capacity() int
	// Strict reports whether Get is precise (see Reservation.Strict).
	Strict() bool
	// Name labels the implementation.
	Name() string
}

// multiSlots is a thread's fixed-capacity set of reserved references,
// stored in transactional cells (0 = empty slot).
type multiSlots struct {
	refs []stm.Word
	_    pad.Line
}

// find returns the index holding ref, or -1.
func (s *multiSlots) find(tx *stm.Tx, ref uint64) int {
	for i := range s.refs {
		if s.refs[i].Load(tx) == ref {
			return i
		}
	}
	return -1
}

// put stores ref in an empty slot (idempotent if already present).
func (s *multiSlots) put(tx *stm.Tx, ref uint64, name string) int {
	free := -1
	for i := range s.refs {
		switch s.refs[i].Load(tx) {
		case ref:
			return i
		case 0:
			if free < 0 {
				free = i
			}
		}
	}
	if free < 0 {
		panic(name + ": per-thread reservation set is full")
	}
	s.refs[free].Store(tx, ref)
	return free
}

func newMultiSlots(threads, capacity int) []multiSlots {
	out := make([]multiSlots, threads)
	for i := range out {
		out[i].refs = make([]stm.Word, capacity)
	}
	return out
}

// MultiFA is the set extension of RR-FA: Revoke scans every registered
// thread's whole set, so its cost grows to O(T·K).
type MultiFA struct {
	slots []multiSlots
	regs  []regFlag
	cap   int
}

// regFlag is read by concurrent Revoke scans while the owning thread may
// still be registering, so the flag must be atomic.
type regFlag struct {
	on atomic.Bool
	_  pad.Line
}

// NewMultiFA builds a strict multi-reservation object with per-thread
// capacity k.
func NewMultiFA(cfg Config, k int) *MultiFA {
	cfg = cfg.withDefaults()
	if k <= 0 {
		k = 4
	}
	return &MultiFA{
		slots: newMultiSlots(cfg.Threads, k),
		regs:  make([]regFlag, cfg.Threads),
		cap:   k,
	}
}

// Register implements MultiReservation.
func (m *MultiFA) Register(tid int) { m.regs[tid].on.Store(true) }

// Reserve implements MultiReservation.
func (m *MultiFA) Reserve(tx *stm.Tx, tid int, ref uint64) {
	m.slots[tid].put(tx, ref, m.Name())
}

// ReleaseRef implements MultiReservation.
func (m *MultiFA) ReleaseRef(tx *stm.Tx, tid int, ref uint64) {
	if i := m.slots[tid].find(tx, ref); i >= 0 {
		m.slots[tid].refs[i].Store(tx, 0)
	}
}

// ReleaseAll implements MultiReservation.
func (m *MultiFA) ReleaseAll(tx *stm.Tx, tid int) {
	for i := range m.slots[tid].refs {
		if m.slots[tid].refs[i].Load(tx) != 0 {
			m.slots[tid].refs[i].Store(tx, 0)
		}
	}
}

// Get implements MultiReservation.
func (m *MultiFA) Get(tx *stm.Tx, tid int, ref uint64) uint64 {
	if ref == 0 {
		return 0
	}
	if m.slots[tid].find(tx, ref) >= 0 {
		return ref
	}
	return 0
}

// Revoke implements MultiReservation: O(T·K) transactional reads, the
// strict family's growing revoke cost the paper warns about.
func (m *MultiFA) Revoke(tx *stm.Tx, ref uint64) {
	for t := range m.slots {
		if !m.regs[t].on.Load() {
			continue
		}
		if i := m.slots[t].find(tx, ref); i >= 0 {
			m.slots[t].refs[i].Store(tx, 0)
		}
	}
}

// Capacity implements MultiReservation.
func (m *MultiFA) Capacity() int { return m.cap }

// Strict implements MultiReservation.
func (m *MultiFA) Strict() bool { return true }

// Name implements MultiReservation.
func (m *MultiFA) Name() string { return "RR-FA/multi" }

// MultiV is the set extension of RR-V: per-thread parallel arrays of
// (reference, observed counter) pairs over the same shared version table.
// Revoke stays O(1); Get revalidates the counter recorded at reserve time.
type MultiV struct {
	vers *ownTable
	rt   []multiSlots // reserved references
	vt   []multiSlots // counters observed at reserve time
	cap  int
}

// NewMultiV builds a relaxed multi-reservation object with per-thread
// capacity k.
func NewMultiV(cfg Config, k int) *MultiV {
	cfg = cfg.withDefaults()
	if k <= 0 {
		k = 4
	}
	return &MultiV{
		vers: newOwnTable(cfg.TableBits),
		rt:   newMultiSlots(cfg.Threads, k),
		vt:   newMultiSlots(cfg.Threads, k),
		cap:  k,
	}
}

// Register implements MultiReservation.
func (m *MultiV) Register(tid int) {}

// Reserve implements MultiReservation: records (ref, V[hash(ref)]).
// Because Revoke never touches R_t, slots whose recorded counter no longer
// matches the table hold dead reservations; Reserve reclaims them lazily
// (a purely thread-local check), so capacity counts only live holds.
func (m *MultiV) Reserve(tx *stm.Tx, tid int, ref uint64) {
	rt, vt := &m.rt[tid], &m.vt[tid]
	free := -1
	for i := range rt.refs {
		cur := rt.refs[i].Load(tx)
		switch {
		case cur == ref:
			// Refresh the counter: a re-reserve revalidates.
			vt.refs[i].Store(tx, m.vers.at(ref).Load(tx))
			return
		case cur == 0:
			if free < 0 {
				free = i
			}
		default:
			if free < 0 && m.vers.at(cur).Load(tx) != vt.refs[i].Load(tx) {
				free = i // invalidated slot: reclaim
			}
		}
	}
	if free < 0 {
		panic(m.Name() + ": per-thread reservation set is full")
	}
	rt.refs[free].Store(tx, ref)
	vt.refs[free].Store(tx, m.vers.at(ref).Load(tx))
}

// ReleaseRef implements MultiReservation.
func (m *MultiV) ReleaseRef(tx *stm.Tx, tid int, ref uint64) {
	if i := m.rt[tid].find(tx, ref); i >= 0 {
		m.rt[tid].refs[i].Store(tx, 0)
	}
}

// ReleaseAll implements MultiReservation.
func (m *MultiV) ReleaseAll(tx *stm.Tx, tid int) {
	for i := range m.rt[tid].refs {
		if m.rt[tid].refs[i].Load(tx) != 0 {
			m.rt[tid].refs[i].Store(tx, 0)
		}
	}
}

// Get implements MultiReservation.
func (m *MultiV) Get(tx *stm.Tx, tid int, ref uint64) uint64 {
	if ref == 0 {
		return 0
	}
	i := m.rt[tid].find(tx, ref)
	if i < 0 {
		return 0
	}
	if m.vers.at(ref).Load(tx) == m.vt[tid].refs[i].Load(tx) {
		return ref
	}
	return 0
}

// Revoke implements MultiReservation: still a single counter bump.
func (m *MultiV) Revoke(tx *stm.Tx, ref uint64) {
	c := m.vers.at(ref)
	c.Store(tx, c.Load(tx)+1)
}

// Capacity implements MultiReservation.
func (m *MultiV) Capacity() int { return m.cap }

// Strict implements MultiReservation.
func (m *MultiV) Strict() bool { return false }

// Name implements MultiReservation.
func (m *MultiV) Name() string { return "RR-V/multi" }

var (
	_ MultiReservation = (*MultiFA)(nil)
	_ MultiReservation = (*MultiV)(nil)
)
