package reclaim

import (
	"time"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
)

// vbrRetiree is one logically deleted node stamped with the version
// fence current at its retirement.
type vbrRetiree struct {
	h     arena.Handle
	rv    uint64
	stamp uint64
}

type vbrThread struct {
	// pending is a FIFO of retirees in nondecreasing fence order; head
	// indexes the first unfreed entry.
	pending   []vbrRetiree
	head      int
	sinceTick int
	_         pad.Line
}

// VBR implements version-based reclamation (Sheffi, Herlihy & Petrank —
// see PAPERS.md) on top of the STM's global version clock. Where the
// original scheme keeps a dedicated epoch counter that readers snapshot
// and writers bump on reuse, this runtime already has exactly that
// object: the version fence of stm.Runtime.VersionFence, the clock
// bound PR 2's stm.Word.Retire uses to kill zombie snapshots. Each
// retiree is stamped with the fence current at retirement and freed
// once the fence has *strictly advanced past* that stamp — by then
// every transaction whose read version could still validate a read of
// the node has either committed or is doomed (the retire fence lifts
// the freed node's cell versions above any such read version), which is
// VBR's "reclaim on epoch change" rule with the fence as the epoch.
//
// There are no per-node reservations: Protect is a no-op, like epochs.
// Unlike epochs, progress does not require every thread to pass a
// quiescent point — the clock is advanced by committing writers, by
// validating readers, and (so that read-heavy or idle periods cannot
// defer reclamation forever) by the scheme itself, which ticks the
// fence every TickEvery retirements via the Tick callback. A stalled
// reader therefore cannot pin retirees: its transaction is simply
// aborted by the retire fence when it next validates (the
// checkpoint-and-rollback face of VBR lives in the structures' resume
// protocol, which restarts from the head when a held node's arena
// generation or dead mark changed).
//
// Version comparisons are wraparound-safe (signed difference), pinning
// behavior if a clock ever cycles the 64-bit space.
type VBR struct {
	observer
	threads   []vbrThread
	stats     []threadStats
	free      FreeFunc
	clock     func() uint64
	tick      func()
	tickEvery int
}

// VBRConfig parameterizes NewVBR.
type VBRConfig struct {
	Threads int // number of participating threads (required)
	// Clock reads the current version fence (stm.Runtime.VersionFence).
	Clock func() uint64
	// Tick advances the fence (stm.Runtime.TickVersionFence); called
	// every TickEvery retirements and during Flush so drains terminate
	// even when no writer is advancing the clock.
	Tick func()
	// TickEvery is the retire count between self-ticks; default 64
	// (DefaultScanThreshold, matching the other schemes' batch sizes).
	TickEvery int
	Free      FreeFunc
}

// NewVBR creates a version-based-reclamation domain.
func NewVBR(cfg VBRConfig) *VBR {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = DefaultScanThreshold
	}
	return &VBR{
		threads:   make([]vbrThread, cfg.Threads),
		stats:     make([]threadStats, cfg.Threads),
		free:      cfg.Free,
		clock:     cfg.Clock,
		tick:      cfg.Tick,
		tickEvery: cfg.TickEvery,
	}
}

// Name implements Scheme.
func (v *VBR) Name() string { return "VBR" }

// Protect is a no-op: VBR readers are protected by version validation,
// not per-node reservations.
func (v *VBR) Protect(tid, slot int, h arena.Handle) arena.Handle { return h }

// ClearSlots is a no-op for VBR.
func (v *VBR) ClearSlots(tid int) {}

// Retire implements Scheme: h is stamped with the current fence and
// queued; the fence self-ticks every TickEvery retirements and the
// queue drains on every call.
func (v *VBR) Retire(tid int, h arena.Handle, stamp uint64) {
	t := &v.threads[tid]
	t.pending = append(t.pending, vbrRetiree{h: h, rv: v.clock(), stamp: stamp})
	v.stats[tid].noteRetire()
	v.noteRetireEv(tid, h)
	t.sinceTick++
	if t.sinceTick >= v.tickEvery {
		t.sinceTick = 0
		v.tick()
	}
	v.drain(tid, stamp)
}

// Flush implements Scheme: drain, tick the fence, drain again. The tick
// makes the second drain complete — after it the fence is strictly
// greater than every previously observed fence value, hence greater
// than every stamp in the queue — so a single Flush per thread leaves
// nothing deferred, under either clock policy.
func (v *VBR) Flush(tid int, stamp uint64) {
	v.drain(tid, stamp)
	v.tick()
	v.drain(tid, stamp)
}

// drain frees the caller's retirees whose fence stamp the clock has
// strictly passed. The comparison is a signed difference so a wrapped
// clock still orders correctly.
func (v *VBR) drain(tid int, stamp uint64) {
	if sp := v.reclaimSpan(tid); sp != nil {
		t0 := time.Now()
		defer func() { sp.Add(obs.SpanReclaim, uint64(time.Since(t0))) }()
	}
	t := &v.threads[tid]
	now := v.clock()
	st := &v.stats[tid]
	freedAny := false
	for t.head < len(t.pending) && int64(now-t.pending[t.head].rv) > 0 {
		r := t.pending[t.head]
		v.free(tid, r.h)
		st.noteFree(stamp - r.stamp)
		v.noteFreeEv(tid, stamp-r.stamp)
		t.head++
		freedAny = true
	}
	if freedAny {
		st.scans.Add(1)
	}
	if t.head == len(t.pending) {
		t.pending = t.pending[:0]
		t.head = 0
	} else if t.head > 4096 {
		t.pending = append(t.pending[:0], t.pending[t.head:]...)
		t.head = 0
	}
	st.leftover.Store(uint64(len(t.pending) - t.head))
}

// Stats implements Scheme.
func (v *VBR) Stats() Stats { return sumStats(v.stats) }

var _ Scheme = (*VBR)(nil)
