package bench

import (
	"fmt"
	"io"

	"hohtx/internal/arena"
	"hohtx/internal/sets"
)

// Opts controls a figure regeneration run.
type Opts struct {
	// Quick shrinks per-thread op counts, trial counts, and the 21-bit
	// tree panels (to 14-bit) for a fast smoke run; the output notes the
	// substitution.
	Quick bool
	// Threads are the thread counts to sweep; default {1, 2, 4, 8}.
	Threads []int
	// Trials per cell; default 3 (the paper averages 5).
	Trials int
	// Seed for workload generation.
	Seed int64
	// OpsPerThread overrides the per-thread operation count (the paper
	// uses 1M; the default here is 200k, which preserves every
	// steady-state effect at a fraction of the wall time).
	OpsPerThread int
	// TreeBits overrides the big tree panels' key-range bits (the paper
	// uses 21; single-core hosts may prefer 16-18 to bound prefill time).
	TreeBits int
	// LazyClock runs every TM-based series under the GV5 lazy clock policy
	// instead of the default GV1 (cmd/benchfig's -clock flag).
	LazyClock bool
	// Out receives the TSV rows.
	Out io.Writer
}

func (o Opts) withDefaults() Opts {
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8}
	}
	if o.Trials <= 0 {
		if o.Quick {
			o.Trials = 1
		} else {
			o.Trials = 3
		}
	}
	if o.Seed == 0 {
		o.Seed = 20170724 // SPAA'17's first day
	}
	return o
}

func (o Opts) ops(base int) int {
	if o.OpsPerThread > 0 {
		return o.OpsPerThread
	}
	if o.Quick {
		return base / 10
	}
	return base
}

func (o Opts) treeBits() int {
	if o.TreeBits > 0 {
		return o.TreeBits
	}
	if o.Quick {
		return 14
	}
	return 21
}

// header emits the TSV column header once per figure. The trailing four
// columns carry the reclamation-latency view: mean retire→free distance
// plus its sampled p50/p99/max (zero unless the cell ran observed).
func header(w io.Writer) {
	fmt.Fprintln(w, "figure\tpanel\tvariant\tthreads\twindow\tmops\trelstd\taborts_per_op\tserial_per_op\tpeak_deferred\tab_read\tab_valid\tab_wlock\tab_cap\tavg_delay\trec_p50\trec_p99\trec_max")
}

func emit(w io.Writer, fig, panel, variant string, window int, r Result) {
	fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%.4f\t%.3f\t%.4f\t%.5f\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.1f\t%d\t%d\t%d\n",
		fig, panel, variant, r.Threads, window, r.MopsPerSec, r.RelStddev,
		r.AbortsPerOp, r.SerialPerOp, r.DeferredPeak,
		r.ReadConflictsPerOp, r.ValidationsPerOp, r.WriteLocksPerOp, r.CapacityPerOp,
		r.AvgDelayOps, r.ReclaimP50Ops, r.ReclaimP99Ops, r.ReclaimMaxOps)
}

// runCell measures one (family, spec, workload, threads) cell and emits it.
func runCell(o Opts, fig, panel string, f Family, spec VariantSpec, wl Workload, threads int, label string) error {
	spec.LazyClock = o.LazyClock
	w := spec.Window
	if w == 0 {
		w = BestWindow(f, threads)
		spec.Window = w
	}
	var buildErr error
	mk := MakeSet(func(t int) sets.Set {
		s, err := Build(f, spec, t)
		if err != nil {
			buildErr = err
			return nil
		}
		return s
	})
	// Probe the build once so unsupported combinations surface as errors
	// rather than mid-measurement panics.
	if probe := mk(threads); probe == nil {
		return buildErr
	}
	res, err := Run(mk, wl, RunConfig{Threads: threads, Trials: o.Trials, Seed: o.Seed, Verify: true})
	if err != nil {
		return err
	}
	if label == "" {
		label = spec.Name
	}
	emit(o.Out, fig, panel, label, w, res)
	return nil
}

// Figure regenerates one of the paper's figures (2–7), writing TSV series
// to o.Out. It returns an error if any cell fails its post-run invariant
// check.
func Figure(n int, o Opts) error {
	o = o.withDefaults()
	header(o.Out)
	switch n {
	case 2:
		return figure2(o)
	case 3:
		return figure3(o)
	case 4:
		return figure4(o)
	case 5:
		return figure5(o)
	case 6:
		return figure6(o)
	case 7:
		return figure7(o)
	case 8:
		return figureDelay(o)
	default:
		return fmt.Errorf("bench: no figure %d (the paper's data figures are 2-7; 8 is this repo's reclamation-delay study)", n)
	}
}

// figureDelay is experiment E1, not a paper figure: it quantifies the
// reclamation behavior the paper describes qualitatively ("this workload
// experiences the longest reclamation delays for the hazard pointer and
// epoch-based reclamation strategies", §5.1) — peak deferred nodes and
// mean delete-to-free delay in operations, per scheme, on the singly
// linked list. The extended-matrix schemes TMHE and TMVBR (DESIGN.md §14)
// join the sweep so their deferral profiles are measured against the
// 2017 baselines.
func figureDelay(o Opts) error {
	for _, look := range []int{33, 80} {
		panel := fmt.Sprintf("10bit/%d%%", look)
		wl := Workload{KeyBits: 10, LookupPct: look, OpsPerThread: o.ops(200_000)}
		for _, name := range []string{"RR-V", "RR-FA", "TMHP", "TMHE", "TMVBR", "ER", "LFHP", "LFLeak"} {
			for _, th := range o.Threads {
				// Observed cells: the trailing TSV columns get real sampled
				// reclamation-delay percentiles, not just the mean.
				spec := VariantSpec{Name: name, Observe: true}
				if err := runCell(o, "fig8", panel, FamilySingly, spec, wl, th, ""); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// figure2: singly linked list, {6,10}-bit keys x {0,33,80}% lookups. The
// lock-free series appear only in the 10-bit panels, as in the paper.
func figure2(o Opts) error {
	for _, bits := range []int{6, 10} {
		for _, look := range []int{0, 33, 80} {
			panel := fmt.Sprintf("%dbit/%d%%", bits, look)
			wl := Workload{KeyBits: bits, LookupPct: look, OpsPerThread: o.ops(200_000)}
			names := append(RRNames(), "HTM", "TMHP", "REF")
			if bits == 10 {
				names = append(names, "LFLeak", "LFHP")
			}
			for _, name := range names {
				for _, th := range o.Threads {
					if err := runCell(o, "fig2", panel, FamilySingly, VariantSpec{Name: name}, wl, th, ""); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// figure3: doubly linked list, same grid minus REF and lock-free.
func figure3(o Opts) error {
	for _, bits := range []int{6, 10} {
		for _, look := range []int{0, 33, 80} {
			panel := fmt.Sprintf("%dbit/%d%%", bits, look)
			wl := Workload{KeyBits: bits, LookupPct: look, OpsPerThread: o.ops(200_000)}
			for _, name := range append(RRNames(), "HTM", "TMHP") {
				for _, th := range o.Threads {
					if err := runCell(o, "fig3", panel, FamilyDoubly, VariantSpec{Name: name}, wl, th, ""); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// figure4: window-size impact on the singly linked list, 10-bit keys, 33%
// lookups; RR-FA and RR-XO as the strict/relaxed representatives, plus the
// no-scatter ablation for RR-XO (the paper highlights scatter's importance
// for RR-XO).
func figure4(o Opts) error {
	wl := Workload{KeyBits: 10, LookupPct: 33, OpsPerThread: o.ops(200_000)}
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		panel := fmt.Sprintf("W=%d", w)
		for _, th := range o.Threads {
			if err := runCell(o, "fig4", panel, FamilySingly, VariantSpec{Name: "RR-FA", Window: w}, wl, th, ""); err != nil {
				return err
			}
			if err := runCell(o, "fig4", panel, FamilySingly, VariantSpec{Name: "RR-XO", Window: w}, wl, th, ""); err != nil {
				return err
			}
			if err := runCell(o, "fig4", panel, FamilySingly,
				VariantSpec{Name: "RR-XO", Window: w, NoScatter: true}, wl, th, "RR-XO/noscatter"); err != nil {
				return err
			}
		}
	}
	return nil
}

// figure5: allocator impact on the doubly linked list, 9-bit keys, {0,98}%
// lookups; TMHP vs RR-XO under the local ("H-", Hoard-like) and shared
// ("J-", contended) arena policies.
func figure5(o Opts) error {
	for _, look := range []int{0, 98} {
		panel := fmt.Sprintf("9bit/%d%%", look)
		wl := Workload{KeyBits: 9, LookupPct: look, OpsPerThread: o.ops(200_000)}
		for _, pol := range []arena.Policy{arena.PolicyLocal, arena.PolicyShared} {
			prefix := "H-"
			if pol == arena.PolicyShared {
				prefix = "J-"
			}
			for _, name := range []string{"TMHP", "RR-XO"} {
				for _, th := range o.Threads {
					if err := runCell(o, "fig5", panel, FamilyDoubly,
						VariantSpec{Name: name, Policy: pol}, wl, th, prefix+name); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// figure6: internal BST, {8,21}-bit keys x {0,50,80}% lookups; the six
// reservation schemes against single-transaction HTM. In quick mode the
// 21-bit panels shrink to 14-bit (noted in the panel label). The 21-bit
// panels additionally run "HTM*", the HTM baseline under a constrained
// effective capacity (112 tracked cells ≈ 7KB), modeling the
// hyperthreading-halved, associativity-pressured TSX capacity that causes
// the paper's >4-thread serialization cliff; see EXPERIMENTS.md.
func figure6(o Opts) error {
	for _, bits := range []int{8, o.treeBits()} {
		for _, look := range []int{0, 50, 80} {
			panel := fmt.Sprintf("%dbit/%d%%", bits, look)
			wl := Workload{KeyBits: bits, LookupPct: look, OpsPerThread: o.ops(200_000)}
			for _, name := range append(RRNames(), "HTM") {
				for _, th := range o.Threads {
					if err := runCell(o, "fig6", panel, FamilyInternalTree, VariantSpec{Name: name}, wl, th, ""); err != nil {
						return err
					}
				}
			}
			if bits > 8 {
				for _, th := range o.Threads {
					if err := runCell(o, "fig6", panel, FamilyInternalTree,
						VariantSpec{Name: "HTM", Capacity: 112}, wl, th, "HTM*"); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// figure7: external BST, 21-bit keys x {0,50,80}% lookups; the two best
// reservation schemes, HTM, TMHP and the lock-free Natarajan-Mittal tree
// (which leaks). The paper omits the weaker reservation schemes here; so
// do we.
func figure7(o Opts) error {
	bits := o.treeBits()
	for _, look := range []int{0, 50, 80} {
		panel := fmt.Sprintf("%dbit/%d%%", bits, look)
		wl := Workload{KeyBits: bits, LookupPct: look, OpsPerThread: o.ops(200_000)}
		for _, name := range []string{"RR-XO", "RR-V", "HTM", "TMHP", "LFLeak"} {
			for _, th := range o.Threads {
				if err := runCell(o, "fig7", panel, FamilyExternalTree, VariantSpec{Name: name}, wl, th, ""); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
