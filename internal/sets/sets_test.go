package sets

import "testing"

func TestKeysEqual(t *testing.T) {
	cases := []struct {
		got, want []uint64
		eq        bool
	}{
		{nil, nil, true},
		{[]uint64{1, 2, 3}, []uint64{3, 1, 2}, true}, // want may be unsorted
		{[]uint64{1, 2}, []uint64{1, 2, 3}, false},
		{[]uint64{1, 2, 4}, []uint64{1, 2, 3}, false},
		{[]uint64{}, nil, true},
	}
	for i, c := range cases {
		if got := KeysEqual(c.got, c.want); got != c.eq {
			t.Errorf("case %d: KeysEqual = %v, want %v", i, got, c.eq)
		}
	}
}

func TestKeysEqualDoesNotMutate(t *testing.T) {
	want := []uint64{3, 1, 2}
	KeysEqual([]uint64{1, 2, 3}, want)
	if want[0] != 3 || want[1] != 1 || want[2] != 2 {
		t.Fatal("KeysEqual mutated its argument")
	}
}
