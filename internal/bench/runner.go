package bench

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/obs"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Result is the measurement for one (variant, workload, threads) cell.
type Result struct {
	Variant string
	Threads int
	Window  int
	// MopsPerSec is total throughput in million operations per second,
	// averaged over trials.
	MopsPerSec float64
	// RelStddev is the relative standard deviation across trials (the
	// paper reports variance below 3%).
	RelStddev float64
	// AbortsPerOp and SerialPerOp characterize TM behavior (0 for the
	// lock-free variants).
	AbortsPerOp float64
	SerialPerOp float64
	// DeferredPeak is the reclamation scheme's peak deferred-node count
	// (0 for precise variants; the paper's reclamation-delay story).
	DeferredPeak uint64
	// AvgDelayOps is the mean number of operations between a node's
	// logical deletion and its physical free (0 for precise variants).
	AvgDelayOps float64
	// Per-cause abort breakdown (all per operation, 0 for the lock-free
	// variants): attributing commit-path changes to the conflict type they
	// move requires more than the AbortsPerOp total.
	ReadConflictsPerOp float64
	ValidationsPerOp   float64
	WriteLocksPerOp    float64
	CapacityPerOp      float64
	// ClockCASPerOp and BiasRevocations characterize the commit path's
	// shared-state traffic under the distributed lock and clock policies.
	ClockCASPerOp   float64
	BiasRevocations uint64
	// Sampled latency/distance percentiles, pulled from the structure's
	// observability domain when the spec attached one (VariantSpec.Observe);
	// all zero otherwise. Reclaim* quantify the deferred schemes' retire→free
	// distance in operation stamps — the per-scheme reclamation-latency view
	// the delay study tabulates.
	CommitP50Ns   uint64
	CommitP99Ns   uint64
	ReuseP50Ops   uint64
	ReuseP99Ops   uint64
	ReclaimP50Ops uint64
	ReclaimP99Ops uint64
	ReclaimMaxOps uint64
	// Obs is the final trial's full domain snapshot (nil when detached).
	Obs *obs.DomainSnapshot
}

// ObsReporter lets the runner pull a structure's observability domain.
type ObsReporter interface {
	ObsDomain() *obs.Domain
}

// DelayReporter lets the runner pull reclamation-delay averages.
type DelayReporter interface {
	AvgReclaimDelayOps() float64
}

// TxStatsReporter lets the runner pull TM abort statistics from
// transactional variants.
type TxStatsReporter interface {
	TxCommits() uint64
	TxAborts() uint64
	TxSerial() uint64
}

// TMStatsReporter lets the runner pull the full stm statistics snapshot
// (per-cause aborts, clock and commit-lock counters) from transactional
// variants.
type TMStatsReporter interface {
	TMStats() stm.Stats
}

// PeakReporter lets the runner pull the reclamation high-water mark.
type PeakReporter interface {
	PeakDeferred() uint64
}

// MakeSet constructs a fresh instance of a variant for the given thread
// count (a fresh instance per trial keeps trials independent, as the
// paper's 5-trial averages are).
type MakeSet func(threads int) sets.Set

// RunConfig controls a measurement.
type RunConfig struct {
	Threads int
	Trials  int
	Seed    int64
	// Verify enables the post-run balance check (snapshot size must equal
	// prefill + successful inserts − successful removes). It is cheap
	// relative to the run and on by default in the figure drivers.
	Verify bool
}

// Run measures one cell: Trials independent constructions, each prefilled
// to 50% and then hammered with the workload's mix from Threads workers.
func Run(mk MakeSet, w Workload, cfg RunConfig) (Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	var mops []float64
	var res Result
	res.Threads = cfg.Threads
	for trial := 0; trial < cfg.Trials; trial++ {
		s := mk(cfg.Threads)
		res.Variant = s.Name()
		Prefill(s, w, cfg.Threads, cfg.Seed+int64(trial))

		prefillCount := int64(w.KeyRange() / 2)
		var succIns, succRem atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				s.Register(tid)
				state := uint64(cfg.Seed) + uint64(tid)*0x1234567 + uint64(trial)*0xabcdef + 1
				var ins, rem int64
				for i := 0; i < w.OpsPerThread; i++ {
					op, key := nextOp(w, &state)
					switch op {
					case opLookup:
						s.Lookup(tid, key)
					case opInsert:
						if s.Insert(tid, key) {
							ins++
						}
					default:
						if s.Remove(tid, key) {
							rem++
						}
					}
				}
				s.Finish(tid)
				succIns.Add(ins)
				succRem.Add(rem)
			}(t)
		}
		wg.Wait()
		elapsed := time.Since(start)
		total := float64(w.OpsPerThread) * float64(cfg.Threads)
		mops = append(mops, total/elapsed.Seconds()/1e6)

		if cfg.Verify {
			want := prefillCount + succIns.Load() - succRem.Load()
			if got := int64(len(s.Snapshot())); got != want {
				return res, fmt.Errorf("%s: balance violated after trial %d: |set|=%d want %d",
					s.Name(), trial, got, want)
			}
		}
		if trial == cfg.Trials-1 {
			res.fillStats(s, total)
		}
	}
	res.MopsPerSec, res.RelStddev = meanRel(mops)
	return res, nil
}

func (r *Result) fillStats(s sets.Set, totalOps float64) {
	if tr, ok := s.(TxStatsReporter); ok && totalOps > 0 {
		r.AbortsPerOp = float64(tr.TxAborts()) / totalOps
		r.SerialPerOp = float64(tr.TxSerial()) / totalOps
	}
	if tm, ok := s.(TMStatsReporter); ok && totalOps > 0 {
		st := tm.TMStats()
		r.ReadConflictsPerOp = float64(st.Aborts[stm.CauseReadConflict]) / totalOps
		r.ValidationsPerOp = float64(st.Aborts[stm.CauseValidation]) / totalOps
		r.WriteLocksPerOp = float64(st.Aborts[stm.CauseWriteLock]) / totalOps
		r.CapacityPerOp = float64(st.Aborts[stm.CauseCapacity]) / totalOps
		r.ClockCASPerOp = float64(st.ClockCASes) / totalOps
		r.BiasRevocations = st.BiasRevocations
	}
	if pr, ok := s.(PeakReporter); ok {
		r.DeferredPeak = pr.PeakDeferred()
	}
	if dr, ok := s.(DelayReporter); ok {
		r.AvgDelayOps = dr.AvgReclaimDelayOps()
	}
	if or, ok := s.(ObsReporter); ok {
		if d := or.ObsDomain(); d != nil {
			snap := d.Snapshot()
			r.Obs = &snap
			if h, ok := snap.Hist(obs.HistCommitNs); ok {
				r.CommitP50Ns, r.CommitP99Ns = h.P50, h.P99
			}
			if h, ok := snap.Hist(obs.HistReuseOps); ok {
				r.ReuseP50Ops, r.ReuseP99Ops = h.P50, h.P99
			}
			if h, ok := snap.Hist(obs.HistReclaimOps); ok {
				r.ReclaimP50Ops, r.ReclaimP99Ops, r.ReclaimMaxOps = h.P50, h.P99, h.Max
			}
		}
	}
}

func meanRel(xs []float64) (mean, rel float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 || mean == 0 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss/float64(len(xs)-1)) / mean
}
