package stm

import "testing"

// TestRetirePreventsZombieSnapshot pins the recycling rule from the cell.go
// package comment with a deterministic interleaving. A read-only
// transaction reads a link cell (obtaining a path to a "node"), then a
// concurrent writer rewrites the link, retires the node's cell and
// reinitializes it with a new value (the recycle). The reader's subsequent
// first read of the node cell must not validate at the cell's stale
// version: read-only transactions skip commit-time validation, so without
// the retire step the reader would commit a snapshot pairing the old link
// with the recycled value — the zombie the torture harness's sanitizer
// caught on singly/TMHP. With the retire step, the read forces a snapshot
// extension that fails on the rewritten link, and the attempt re-executes
// against a consistent world.
func TestRetirePreventsZombieSnapshot(t *testing.T) {
	for _, pol := range []ClockPolicy{ClockGV1, ClockGV5} {
		t.Run(pol.String(), func(t *testing.T) {
			rt := NewRuntime(Profile{ClockPolicy: pol})
			var link, cell Word
			link.Init(1)  // "the node is linked in"
			cell.Init(42) // the node's payload

			recycled := make(chan struct{})
			freed := make(chan struct{})
			go func() {
				<-recycled
				rt.Atomic(func(tx *Tx) { link.Store(tx, 0) }) // unlink
				cell.Retire(rt.VersionFence())                // free...
				cell.Init(99)                                 // ...and recycle
				close(freed)
			}()

			attempts := 0
			var gotLink, gotCell uint64
			rt.Atomic(func(tx *Tx) {
				attempts++
				gotLink = link.Load(tx)
				if attempts == 1 {
					recycled <- struct{}{}
					<-freed
				}
				gotCell = cell.Load(tx)
			})

			if attempts < 2 {
				t.Fatalf("reader committed on the first attempt: zombie snapshot link=%d cell=%d",
					gotLink, gotCell)
			}
			if gotLink != 0 || gotCell != 99 {
				t.Fatalf("retry read link=%d cell=%d, want the post-recycle world 0/99",
					gotLink, gotCell)
			}
		})
	}
}
