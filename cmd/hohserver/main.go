// Command hohserver serves one of this repository's sets over TCP — the
// end-to-end demonstration that precise memory reclamation survives a
// real serving stack: any number of client connections multiplex onto the
// structure's fixed worker slots through the internal/serve lease pool,
// and the live-node gauge stays flat under sustained external churn.
//
// The protocol is one line per request, one line per reply, pipelined
// (see internal/serve): GET/SET/DEL <key>, LEN, INFO.
//
// Usage:
//
//	hohserver                                  # RR-V singly list on 127.0.0.1:7070
//	hohserver -family etree -variant TMHP      # any bench variant works
//	hohserver -addr :7070 -threads 8 -obs 127.0.0.1:6070
//
// With -obs the process also serves the observability endpoint
// (/metrics, /snapshot, /flight, /debug/pprof/) with the server's
// per-verb service-time histograms, the pool's lease-wait histogram and
// backpressure gauges, and the structure's own transaction-level domain.
// SIGINT/SIGTERM drain gracefully: accepting stops, in-flight pipelines
// finish, worker slots are flushed, and the final stats line prints.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hohtx"
	"hohtx/internal/bench"
	"hohtx/internal/obs"
	"hohtx/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "TCP listen address")
	family := flag.String("family", "singly", "structure family: singly, doubly, itree, etree, skip")
	variant := flag.String("variant", "RR-V", "variant: RR-V, RR-XO, RR-SO, RR-FA, RR-DM, RR-SA, HTM, TMHP, REF, ER, LFLeak, LFHP")
	threads := flag.Int("threads", 8, "worker slots (the set's Threads)")
	window := flag.Int("window", 0, "hand-over-hand window W (0 = tuned default)")
	waiters := flag.Int("waiters", 0, "lease wait-queue bound (0 = 16×slots, <0 = unbounded)")
	lazy := flag.Bool("lazy", false, "use the GV5 lazy global-clock policy")
	obsAddr := flag.String("obs", "", "observability endpoint address (empty = off)")
	flag.Parse()

	spec := bench.VariantSpec{
		Name:      *variant,
		Window:    *window,
		LazyClock: *lazy,
		// The per-transaction domain is only worth its sampling cost when
		// someone can look at it.
		Observe: *obsAddr != "",
	}
	set, err := bench.Build(bench.Family(*family), spec, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohserver:", err)
		os.Exit(2)
	}

	dom := obs.NewDomain(obs.DomainConfig{Name: "server", Threads: *threads})
	pool := serve.NewPool(set, serve.PoolConfig{Slots: *threads, MaxWaiters: *waiters, Obs: dom})
	srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool, MaxKey: hohtx.MaxKey, Obs: dom})

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(dom)
		if or, ok := set.(bench.ObsReporter); ok {
			reg.Register(or.ObsDomain())
		}
		bound, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohserver: obs:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "hohserver: obs endpoint on http://%s/metrics\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohserver:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "hohserver: %s/%s, %d worker slots, listening on %s\n",
		*family, set.Name(), *threads, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "hohserver: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hohserver: forced close:", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohserver:", err)
			os.Exit(1)
		}
	}

	st := pool.Stats()
	fmt.Fprintf(os.Stderr,
		"hohserver: drained; keys=%d leases=%d waits=%d avg_wait=%s affinity=%d rejections=%d peak_waiters=%d\n",
		srv.Len(), st.Leases, st.Waits, avgWait(st), st.AffinityHits, st.Rejections, st.PeakWaiters)
	if tx := hohtx.StatsOf(set); tx.Commits > 0 {
		fmt.Fprintf(os.Stderr, "hohserver: tx commits=%d aborts=%d serial=%d\n",
			tx.Commits, tx.Aborts, tx.Serial)
	}
}

func avgWait(st serve.PoolStats) time.Duration {
	if st.Waits == 0 {
		return 0
	}
	return time.Duration(st.WaitNs / st.Waits)
}
