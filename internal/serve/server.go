package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/obs"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
	"hohtx/internal/tree"
)

// drainGrace is how long a draining server lets connections finish the
// pipeline already in flight before their reads time out.
const drainGrace = 250 * time.Millisecond

// DefaultMaxBatch caps MULTI batch sizes when ServerConfig.MaxBatch is
// zero. A batch this large always executes through the serial fallback
// (the capacity cliff sits orders of magnitude lower); the cap exists to
// bound per-request memory, not to keep batches speculative.
const DefaultMaxBatch = 4096

// oversizeDrainFactor bounds how much body the server will consume to
// stay in frame after rejecting an oversized MULTI; counts beyond
// MaxBatch×oversizeDrainFactor drop the connection instead.
const oversizeDrainFactor = 16

// Backend is one shard behind the server: a set plus the lease pool
// multiplexing connections onto that set's worker slots. A single-shard
// server has exactly one backend.
type Backend struct {
	Set  sets.Set
	Pool *Pool
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Set is the structure being served; Pool multiplexes connections
	// onto its worker slots. This is the single-shard configuration —
	// exactly one of Set/Pool or Shards must be provided.
	Set  sets.Set
	Pool *Pool
	// Shards, when non-empty, runs the server sharded: keys route to
	// Shards[ShardOf(key, len(Shards))], each shard leasing from its own
	// pool, while LEN and INFO aggregate across all of them. The wire
	// protocol is identical either way.
	Shards []Backend
	// MaxKey bounds accepted keys to [1, MaxKey]. Zero defaults to the
	// tree sentinel bound (the tightest across the repo's structures).
	MaxKey uint64
	// MaxBatch caps the op count of a MULTI batch; zero means
	// DefaultMaxBatch. Oversized batches are rejected with an ERR line
	// (the connection survives).
	MaxBatch int
	// AutoBatch, when > 1, transparently coalesces a connection's
	// pipelined burst of consecutive single-key requests into batch
	// transactions of at most AutoBatch ops each — the capacity-aware
	// split threshold. Unlike MULTI, auto-batches carry no atomicity
	// contract (the client asked for single ops), which is exactly why
	// splitting them at the serial-fallback cliff is legal. Zero or one
	// disables coalescing. See DESIGN.md §11 for how to size it.
	AutoBatch int
	// Obs, when non-nil, receives per-verb service-time histograms, the
	// batch-path histograms (batch service time, sub-transaction sizes,
	// splits per batch), per-batch-size transaction gauges, and the
	// live/deferred/connection gauges. It also arms request tracing: every
	// request carries an obs.Span through lease acquisition, the STM
	// attempt loop and the reply write, feeding the slowlog (SLOWLOG verb,
	// /slowlog endpoint) and the per-shard hot-key sketches (/hotkeys).
	Obs *obs.Domain
	// ObsAddr, when set, is advertised in INFO as obs=<addr> so load
	// generators can discover the obs endpoint without a second flag.
	ObsAddr string
	// SlowlogSize caps how many slow requests each window retains (zero =
	// obs.DefaultSlowlogSize); SlowlogWindow is the rotation period (zero
	// = obs.DefaultSlowlogWindow). Ignored without Obs.
	SlowlogSize   int
	SlowlogWindow time.Duration
	// HotKeyK sizes the per-shard space-saving sketches (zero =
	// obs.DefaultTopK). Ignored without Obs.
	HotKeyK int
}

// Server speaks the repository's line protocol over one or more shards:
//
//	GET <key>\n  -> 1\n | 0\n          (membership)
//	SET <key>\n  -> 1\n | 0\n          (1 = inserted, 0 = already present)
//	DEL <key>\n  -> 1\n | 0\n          (1 = removed; memory is already free)
//	MULTI <n>\n  followed by n GET/SET/DEL lines -> n reply lines (one batch)
//	ASCEND <lo> <n>\n -> up to n "OK <k>" lines, keys ≥ lo ascending,
//	                terminated by END\n (or by an ERR line; see below)
//	SLOWLOG <n>\n -> up to n "SLOW …" lines (slowest requests, phase
//	                breakdowns as key=value fields), terminated by END\n
//	LEN\n        -> <n>\n              (keys currently present, all shards)
//	INFO\n       -> variant=… shards=… slots=… keys=… live=… deferred=… conns=…
//	                maxbatch=… autobatch=… multi=… scan=… commits=… serial=…
//	                aborts=… [obs=<addr>]\n
//	anything else -> ERR <reason>\n    (connection stays open)
//
// MULTI executes its n body ops as one transaction per shard touched
// (Set.Apply): on a single-shard server the whole batch is atomic — one
// snapshot, one commit, all-or-nothing — and on a sharded server each
// shard's sub-batch is atomic but the batch as a whole is not, which the
// INFO reply surfaces as multi=per-shard (vs multi=atomic). A MULTI whose
// body fails to parse, or whose count is malformed or exceeds the
// configured cap, is rejected with a single ERR line and executes nothing;
// the connection survives (the body of an oversized-but-bounded batch is
// drained to stay in frame).
//
// ASCEND streams keys ≥ lo in ascending order through the structures'
// reservation cursor (sets.Ascender): the cursor's position is itself a
// revocable reservation, so the scan is windowed and never blocks
// reclamation. The stream is weakly consistent in the sync.Map.Range
// style — keys present for the whole scan are delivered exactly once,
// keys churned during it may or may not appear, and delivered keys are
// strictly ascending. On a sharded server one cursor runs per shard,
// pulled one bounded chunk at a time under the same ascending-shard
// grouped-lease discipline as MULTI and interleaved through a streaming
// N-way merge — the online version of Sharded.Snapshot. A scan normally
// terminates with END; a mid-stream failure (pool saturation or
// shutdown) terminates it with an ERR line instead, so clients must
// treat ERR as the scan's alternate terminator. Variants whose
// reclamation scheme cannot hold a revocable cursor answer
// "ERR scan unsupported"; INFO advertises the capability as
// scan=atomic-window (one shard), scan=merged (cross-shard merge), or
// scan=none.
//
// Lease-pool saturation (ErrSaturated) is load shedding, never a
// connection error: the request that could not get a slot is answered
// with an ERR line and the connection — including the rest of its
// pipeline — stays open. Only pool shutdown and unrecoverable framing
// errors drop connections.
//
// Requests pipeline: a client may write any number of lines before
// reading; replies come back in order. Each connection runs one
// goroutine, which leases a worker slot on a shard only while buffered
// requests route there — an idle connection holds no slot on any shard,
// so connections can outnumber slots by orders of magnitude. With
// AutoBatch configured, consecutive single-key requests of a pipelined
// burst additionally coalesce into batch transactions of at most AutoBatch
// ops (replies are unchanged; only the transaction boundaries move).
//
// With several shards the key-indexed verbs route by ShardOf, so two
// writers on different shards commit against different global clocks and
// different serial-fallback locks; LEN and INFO are the only aggregate
// views, and both are exact (LEN is one server-level counter, INFO sums
// each shard's memory books).
type Server struct {
	shards    []Backend
	maxKey    uint64
	maxBatch  int
	autoBatch int
	dom       *obs.Domain
	probe     *obs.ServeProbe
	mems      []sets.MemoryReporter // per shard; nil entries for bookless sets
	scanOK    bool                  // every shard supports the reservation cursor
	scanCap   string                // INFO scan= field: atomic-window|merged|none
	obsAddr   string                // advertised obs endpoint (INFO obs=)

	// Request-tracing state (nil/empty without cfg.Obs). setDoms[i] is
	// shard i's structure-level obs domain when its set exposes one: the
	// span is armed there per slot so the shard's stm runtime and
	// reclamation scheme can stamp their phases.
	trace    bool
	slow     *obs.Slowlog
	hot      []*obs.HotKeys // per shard
	setDoms  []*obs.Domain  // per shard; nil entries for unobserved sets
	spanPool sync.Pool

	keys  atomic.Int64 // net successful SET − DEL through this server
	conns atomic.Int64

	mu       sync.Mutex
	open     map[net.Conn]struct{}
	ln       net.Listener
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewServer wires a server over cfg's backends.
func NewServer(cfg ServerConfig) *Server {
	shards := cfg.Shards
	if len(shards) == 0 {
		shards = []Backend{{Set: cfg.Set, Pool: cfg.Pool}}
	}
	s := &Server{
		shards:    shards,
		maxKey:    cfg.MaxKey,
		maxBatch:  cfg.MaxBatch,
		autoBatch: cfg.AutoBatch,
		dom:       cfg.Obs,
		open:      make(map[net.Conn]struct{}),
	}
	if s.maxKey == 0 {
		s.maxKey = tree.MaxKey // the tightest structure bound in the repo
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	s.mems = make([]sets.MemoryReporter, len(shards))
	anyMem := false
	for i, b := range shards {
		if mr, ok := b.Set.(sets.MemoryReporter); ok {
			s.mems[i] = mr
			anyMem = true
		}
	}
	s.scanOK, s.scanCap = scanCapability(shards)
	s.obsAddr = cfg.ObsAddr
	if cfg.Obs != nil {
		s.trace = true
		s.slow = obs.NewSlowlog(cfg.SlowlogSize, cfg.SlowlogWindow)
		cfg.Obs.SetSlowlog(s.slow)
		s.hot = make([]*obs.HotKeys, len(shards))
		for i := range s.hot {
			s.hot[i] = obs.NewHotKeys(cfg.HotKeyK)
		}
		cfg.Obs.SetHotKeys(s.hot)
		s.setDoms = make([]*obs.Domain, len(shards))
		for i, b := range shards {
			if or, ok := b.Set.(interface{ ObsDomain() *obs.Domain }); ok {
				s.setDoms[i] = or.ObsDomain()
			}
		}
		s.spanPool.New = func() any { return &obs.Span{} }
		s.probe = cfg.Obs.ServeProbe()
		cfg.Obs.Gauge("server_keys", func() uint64 { return uint64(s.keys.Load()) })
		cfg.Obs.Gauge("server_conns", func() uint64 { return uint64(s.conns.Load()) })
		cfg.Obs.Gauge("shard_count", func() uint64 { return uint64(len(s.shards)) })
		if anyMem {
			cfg.Obs.Gauge("live_nodes", func() uint64 { l, _ := s.memTotals(); return l })
			cfg.Obs.Gauge("deferred_nodes", func() uint64 { _, d := s.memTotals(); return d })
		}
		// Per-batch-size transaction gauges: the measured face of the
		// capacity cliff (aborts and serial fallbacks vs batch size).
		for b := 0; b < stm.BatchBuckets; b++ {
			b := b
			label := stm.BatchBucketLabel(b)
			cfg.Obs.Gauge("batch_txs_"+label, func() uint64 { return s.batchStat(b).Txs })
			cfg.Obs.Gauge("batch_aborts_"+label, func() uint64 { return s.batchStat(b).Aborts })
			cfg.Obs.Gauge("batch_serial_"+label, func() uint64 { return s.batchStat(b).Serial })
		}
	}
	return s
}

// scanCapability probes the shards for ASCEND support: every shard must
// implement sets.Ascender and, when it exposes a CanAscend capability
// check, report true (the list type implements the interface in every
// mode but can only run the cursor under RR/HTM — a misconfigured
// variant must be a capability miss at the wire, never a crash).
func scanCapability(shards []Backend) (bool, string) {
	for _, b := range shards {
		a, ok := b.Set.(sets.Ascender)
		if !ok {
			return false, "none"
		}
		if c, ok := a.(interface{ CanAscend() bool }); ok && !c.CanAscend() {
			return false, "none"
		}
	}
	if len(shards) > 1 {
		return true, "merged"
	}
	return true, "atomic-window"
}

// span starts a request span (nil when tracing is off — every stamping
// site nil-checks, so an untracing server pays one branch per site).
// Spans are pooled: Reset panics if a pooled span comes back unfinished,
// which turns a leaked span into a loud failure instead of a slow leak.
func (s *Server) span(verb string) *obs.Span {
	if !s.trace {
		return nil
	}
	sp := s.spanPool.Get().(*obs.Span)
	sp.Reset(verb)
	return sp
}

// finishSpan seals the span, offers it to the slowlog, feeds the per-key
// hot sketches, and returns it to the pool. Must be the last touch: the
// slowlog copies what it keeps and the pool will reuse the span.
func (s *Server) finishSpan(sp *obs.Span) {
	if sp == nil {
		return
	}
	total := sp.Finish()
	s.slow.Observe(sp)
	keys, _ := sp.Keys()
	aborts := sp.Aborts()
	for _, k := range keys {
		sh := ShardOf(k, len(s.shards))
		s.hot[sh].Latency.Add(k, total)
		if aborts > 0 {
			// Every key of the request is charged the request's aborts:
			// within one transaction there is no per-key attribution, and
			// for the sketch's purpose (which keys correlate with abort
			// churn) over-charging cold keys washes out while hot keys
			// accumulate exactly their conflict volume.
			s.hot[sh].Aborts.Add(k, aborts)
		}
	}
	s.spanPool.Put(sp)
}

// leaseFailed writes the ERR reply for a failed lease acquisition and
// reports whether the connection survives. Saturation is load shedding —
// reject this request, keep the pipeline — while anything else (the pool
// closing at shutdown) drops the connection.
func leaseFailed(bw *bufio.Writer, err error) bool {
	bw.WriteString("ERR ")
	bw.WriteString(err.Error())
	bw.WriteByte('\n')
	return errors.Is(err, ErrSaturated)
}

// batchStat sums one batch-size bucket's transaction counters across the
// shards' STM runtimes.
func (s *Server) batchStat(b int) stm.BatchStat {
	var out stm.BatchStat
	for _, bk := range s.shards {
		if r, ok := bk.Set.(interface{ TMStats() stm.Stats }); ok {
			st := r.TMStats().Batch[b]
			out.Txs += st.Txs
			out.Ops += st.Ops
			out.Aborts += st.Aborts
			out.Serial += st.Serial
		}
	}
	return out
}

// txTotals sums commit/serial/abort counters across the shards (the INFO
// fields the load generator derives serial-fallback rates from).
func (s *Server) txTotals() (commits, serial, aborts uint64) {
	for _, bk := range s.shards {
		if r, ok := bk.Set.(interface {
			TxCommits() uint64
			TxAborts() uint64
			TxSerial() uint64
		}); ok {
			commits += r.TxCommits()
			serial += r.TxSerial()
			aborts += r.TxAborts()
		}
	}
	return commits, serial, aborts
}

// memTotals sums the shards' memory books.
func (s *Server) memTotals() (live, deferred uint64) {
	for _, mr := range s.mems {
		if mr != nil {
			live += mr.LiveNodes()
			deferred += mr.DeferredNodes()
		}
	}
	return live, deferred
}

// Len returns the number of keys present across all shards (as counted by
// this server's successful SET/DEL balance).
func (s *Server) Len() int64 { return s.keys.Load() }

// Shards returns how many shards the server routes across.
func (s *Server) Shards() int { return len(s.shards) }

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		s.open[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Shutdown drains the server: stop accepting, give in-flight pipelines a
// grace period to finish, then wait for every connection goroutine (or
// force-close them when ctx ends first). The pools are closed last, which
// flushes every shard's worker slots.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	deadline := time.Now().Add(drainGrace)
	for c := range s.open {
		_ = c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.open {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	for _, b := range s.shards {
		b.Pool.Close()
	}
	return err
}

// connLeases tracks one connection's slot leases, at most one per shard,
// acquired lazily as requests route and all released when a burst ends.
type connLeases struct {
	handles []*Handle
	slots   []int
}

func newConnLeases(shards []Backend) *connLeases {
	l := &connLeases{
		handles: make([]*Handle, len(shards)),
		slots:   make([]int, len(shards)),
	}
	for i, b := range shards {
		l.handles[i] = b.Pool.Handle()
		l.slots[i] = -1
	}
	return l
}

// slot returns the lease on shard i, acquiring one if needed. The
// acquisition protocol is try-then-release-and-block: take shard i's
// slot immediately if one is free (keeping the burst's other leases
// warm), but when shard i is out of slots, give back every lease this
// connection holds before queueing. Blocking on one shard while holding
// another is the hold-and-wait half of a deadlock cycle — with one slot
// per shard, connection A holding shard 0 and waiting on shard 1 while
// connection B holds 1 and waits on 0 would stall the server for good.
// A non-nil sp gets any queued time stamped as its Wait phase.
func (l *connLeases) slot(i int, sp *obs.Span) (int, error) {
	if l.slots[i] >= 0 {
		return l.slots[i], nil
	}
	if slot, ok := l.handles[i].TryAcquire(); ok {
		l.slots[i] = slot
		return slot, nil
	}
	l.releaseAll()
	slot, err := l.handles[i].AcquireSpan(context.Background(), sp)
	if err != nil {
		return -1, err
	}
	l.slots[i] = slot
	return slot, nil
}

// releaseAll returns every held lease.
func (l *connLeases) releaseAll() {
	for i, slot := range l.slots {
		if slot >= 0 {
			l.handles[i].Release(slot)
			l.slots[i] = -1
		}
	}
}

// conn is one connection's serving state: the scanner, writer, leases,
// and — the point of this struct — the reused scratch buffers that make
// the steady-state request path free of heap allocations. Everything here
// is sized once (or grows to a high-water mark) per connection; per
// request nothing escapes. alloc_test.go pins the budget at zero.
type conn struct {
	srv    *Server
	br     *bufio.Reader
	bw     *bufio.Writer
	sc     *LineScanner
	leases *connLeases

	scratch  []byte        // reply/error rendering
	pend     []sets.Op     // auto-batch accumulation
	ops      []sets.Op     // MULTI body
	results  []sets.Result // execOps: per-op outcomes, op order
	executed []bool        // execOps: which ops ran before a lease failure
	idx      []int         // execOps: single-shard identity index
	subOps   [][]sets.Op   // execOps: per-shard op split
	subIdx   [][]int       // execOps: per-shard original positions
	cursors  []shardCursor // ASCEND merge state
}

// writeErr renders "ERR <diagnosis>\n".
func (c *conn) writeErr(we wireErr) {
	c.scratch = append(c.scratch[:0], "ERR "...)
	c.scratch = appendWireErr(c.scratch, we, c.srv.maxKey)
	c.scratch = append(c.scratch, '\n')
	c.bw.Write(c.scratch)
}

// handle runs one connection: read a line, lease a slot on the target
// shard (kept across a burst of buffered requests), execute, reply. With
// AutoBatch configured, consecutive single-key lines accumulate into a
// pending batch that executes (as capacity-split batch transactions) when
// the burst ends, a non-key verb arrives, or the split threshold fills.
func (s *Server) handle(nc net.Conn) {
	s.conns.Add(1)
	defer func() {
		s.conns.Add(-1)
		s.mu.Lock()
		delete(s.open, nc)
		s.mu.Unlock()
		_ = nc.Close()
		s.wg.Done()
	}()

	br := bufio.NewReaderSize(nc, 4<<10)
	c := &conn{
		srv:    s,
		br:     br,
		bw:     bufio.NewWriterSize(nc, 4<<10),
		sc:     NewLineScanner(br),
		leases: newConnLeases(s.shards),
	}
	defer c.leases.releaseAll()

	flush := func() bool {
		if len(c.pend) == 0 {
			return true
		}
		ok := c.execOps(c.pend, s.autoBatch, true)
		c.pend = c.pend[:0]
		return ok
	}
	for {
		if s.draining.Load() && br.Buffered() == 0 {
			_ = c.bw.Flush()
			return
		}
		line, err := c.sc.Line()
		if err != nil && len(line) == 0 {
			_ = flush()
			_ = c.bw.Flush()
			return
		}
		// err != nil with a non-empty line is a final unterminated
		// request: serve it, then drop the conn.
		coalesced := false
		if s.autoBatch > 1 {
			if op, we := s.parseOp(line); we.code == wireOK {
				c.pend = append(c.pend, op)
				coalesced = true
				if len(c.pend) >= s.autoBatch && !flush() {
					_ = c.bw.Flush()
					return
				}
			}
		}
		if !coalesced {
			// Anything that is not a clean single-key request (including
			// MULTI, LEN, INFO, and malformed keys) first drains the
			// pending batch so replies stay in order.
			if !flush() || !c.serveLine(line) {
				_ = c.bw.Flush()
				return
			}
		}
		if br.Buffered() == 0 {
			// Burst over: run what accumulated, give the slots back before
			// blocking on the network, and push the replies out.
			if !flush() {
				_ = c.bw.Flush()
				return
			}
			c.leases.releaseAll()
			if ferr := c.bw.Flush(); ferr != nil || err != nil {
				return
			}
		}
	}
}

// serveLine executes one request line and appends the reply to the
// writer. It returns false when the connection must drop (a lease could
// not be acquired — saturation or shutdown — or a MULTI frame was
// unrecoverable). The line aliases the scanner's buffer: everything that
// must outlive the next read is parsed or copied out here.
func (c *conn) serveLine(line []byte) bool {
	s := c.srv
	bw := c.bw
	verb, rest := cutSpace(line)
	switch string(verb) {
	case "GET", "SET", "DEL":
		key, we := s.parseKey(rest)
		if we.code != wireOK {
			c.writeErr(we)
			return true
		}
		var vs string
		switch verb[0] {
		case 'G':
			vs = "GET"
		case 'S':
			vs = "SET"
		default:
			vs = "DEL"
		}
		shard := ShardOf(key, len(s.shards))
		sp := s.span(vs)
		if sp != nil {
			sp.AddKey(key)
			sp.MarkShard(shard)
		}
		slot, err := c.leases.slot(shard, sp)
		if err != nil {
			// The span still finishes: a shed request is a tail-latency
			// event too (all wait, no work), and the slowlog should show it.
			s.finishSpan(sp)
			return leaseFailed(bw, err)
		}
		sampled := s.dom != nil && s.dom.Sampled(uint64(slot))
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		set := s.shards[shard].Set
		var dom *obs.Domain
		var opT0 time.Time
		if sp != nil {
			dom = s.setDoms[shard]
			dom.SetSpan(slot, sp)
			opT0 = time.Now()
		}
		var ok bool
		switch verb[0] {
		case 'G':
			ok = set.Lookup(slot, key)
		case 'S':
			if ok = set.Insert(slot, key); ok {
				s.keys.Add(1)
			}
		default:
			if ok = set.Remove(slot, key); ok {
				s.keys.Add(-1)
			}
		}
		if sp != nil {
			sp.Add(obs.SpanLease, uint64(time.Since(opT0)))
			dom.SetSpan(slot, nil)
		}
		if sampled {
			d := uint64(time.Since(t0))
			switch verb[0] {
			case 'G':
				s.probe.GetNs.RecordAt(uint64(slot), d)
			case 'S':
				s.probe.SetNs.RecordAt(uint64(slot), d)
			default:
				s.probe.DelNs.RecordAt(uint64(slot), d)
			}
		}
		var wT0 time.Time
		if sp != nil {
			wT0 = time.Now()
		}
		if ok {
			bw.WriteString("1\n")
		} else {
			bw.WriteString("0\n")
		}
		if sp != nil {
			sp.Add(obs.SpanWrite, uint64(time.Since(wT0)))
			s.finishSpan(sp)
		}
	case "MULTI":
		return c.serveMulti(rest)
	case "ASCEND":
		return c.serveAscend(rest)
	case "SLOWLOG":
		c.serveSlowlog(rest)
	case "LEN":
		c.scratch = strconv.AppendInt(c.scratch[:0], s.keys.Load(), 10)
		c.scratch = append(c.scratch, '\n')
		bw.Write(c.scratch)
	case "INFO":
		// INFO is the cold aggregate view (monitors poll it a few times a
		// second); fmt is fine here and keeps the field list readable.
		live, deferred := s.memTotals()
		multi := "atomic"
		if len(s.shards) > 1 {
			multi = "per-shard"
		}
		commits, serial, aborts := s.txTotals()
		fmt.Fprintf(bw, "variant=%s shards=%d slots=%d keys=%d live=%d deferred=%d conns=%d maxbatch=%d autobatch=%d multi=%s scan=%s commits=%d serial=%d aborts=%d",
			s.shards[0].Set.Name(), len(s.shards), s.shards[0].Pool.Slots(),
			s.keys.Load(), live, deferred, s.conns.Load(),
			s.maxBatch, s.autoBatch, multi, s.scanCap, commits, serial, aborts)
		if s.obsAddr != "" {
			fmt.Fprintf(bw, " obs=%s", s.obsAddr)
		}
		bw.WriteByte('\n')
	case "":
		bw.WriteString("ERR empty command\n")
	default:
		bw.WriteString("ERR unknown command\n")
	}
	return true
}

// serveAscend executes one ASCEND <lo> <n> request: stream up to n keys
// ≥ lo as "OK <k>" lines, terminated by END. Each shard's cursor is
// pulled one bounded chunk at a time; every pull is a self-contained
// sub-scan that drops its reservation hold before returning, so no
// cursor position is ever held while the connection's lease on that
// shard could be released and re-leased to another connection (a hold
// outliving its lease would make the slot's next owner resume from a
// stale position). A lease failure mid-stream terminates the scan with
// an ERR line — the scan's alternate terminator — and the connection
// survives iff the failure was saturation.
func (c *conn) serveAscend(args []byte) bool {
	s := c.srv
	bw := c.bw
	loArg, nArg := cutSpace(args)
	if nArg == nil {
		bw.WriteString("ERR ascend: want ASCEND <lo> <n>\n")
		return true
	}
	lo, we := s.parseKey(loArg)
	if we.code != wireOK {
		c.scratch = append(c.scratch[:0], "ERR ascend: "...)
		c.scratch = appendWireErr(c.scratch, we, s.maxKey)
		c.scratch = append(c.scratch, '\n')
		bw.Write(c.scratch)
		return true
	}
	n, nok := parseIntBytes(nArg)
	if !nok || n < 1 {
		c.scratch = append(c.scratch[:0], "ERR ascend: bad count "...)
		c.scratch = appendQuoted(c.scratch, nArg)
		c.scratch = append(c.scratch, '\n')
		bw.Write(c.scratch)
		return true
	}
	if !s.scanOK {
		bw.WriteString("ERR scan unsupported\n")
		return true
	}
	sp := s.span("ASCEND")
	if sp != nil {
		sp.AddKey(lo)
		defer s.finishSpan(sp)
	}
	sampled := s.dom != nil && s.dom.Sampled(lo)
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	if cap(c.cursors) < len(s.shards) {
		c.cursors = make([]shardCursor, len(s.shards))
	}
	cursors := c.cursors[:len(s.shards)]
	for i := range cursors {
		cursors[i] = shardCursor{next: lo}
	}
	emitted := 0
	for emitted < n {
		// Refill every empty, non-exhausted shard buffer (ascending shard
		// order — the MULTI grouped-lease discipline, so two scans can
		// never deadlock on each other's slots).
		for i := range cursors {
			cur := &cursors[i]
			if cur.done || len(cur.buf) > 0 {
				continue
			}
			if sp != nil {
				sp.MarkShard(i)
			}
			slot, err := c.leases.slot(i, sp)
			if err != nil {
				bw.WriteString("ERR ascend: ")
				bw.WriteString(err.Error())
				bw.WriteByte('\n')
				return errors.Is(err, ErrSaturated)
			}
			max := ascendChunk
			if rem := n - emitted; rem < max {
				max = rem
			}
			a, aok := s.shards[i].Set.(sets.Ascender)
			if !aok {
				bw.WriteString("ERR scan unsupported\n")
				return true
			}
			// Each chunk pull runs its window transactions with the span
			// armed on the shard's domain, so cursor commits and
			// renavigations stamp the tx phases; the pull itself counts as
			// Lease time (Finish nets the inner phases back out).
			var dom *obs.Domain
			var pullT0 time.Time
			if sp != nil {
				dom = s.setDoms[i]
				dom.SetSpan(slot, sp)
				pullT0 = time.Now()
			}
			err = cur.pull(a, slot, max)
			if sp != nil {
				sp.Add(obs.SpanLease, uint64(time.Since(pullT0)))
				dom.SetSpan(slot, nil)
			}
			if err != nil {
				// Defensive: capability was probed at construction, but a
				// variant may still refuse at run time.
				bw.WriteString("ERR scan unsupported\n")
				return true
			}
		}
		// Emit the smallest buffered key. Shards partition keys and each
		// shard's cursor is monotonic, so the merged stream is strictly
		// ascending and exactly-once for keys present throughout.
		best := -1
		for i := range cursors {
			if len(cursors[i].buf) == 0 {
				continue
			}
			if best < 0 || cursors[i].buf[0] < cursors[best].buf[0] {
				best = i
			}
		}
		if best < 0 {
			break // every shard exhausted
		}
		c.scratch = append(c.scratch[:0], "OK "...)
		c.scratch = strconv.AppendUint(c.scratch, cursors[best].buf[0], 10)
		c.scratch = append(c.scratch, '\n')
		bw.Write(c.scratch)
		cursors[best].buf = cursors[best].buf[1:]
		emitted++
	}
	var wT0 time.Time
	if sp != nil {
		wT0 = time.Now()
	}
	bw.WriteString("END\n")
	if sp != nil {
		sp.Add(obs.SpanWrite, uint64(time.Since(wT0)))
	}
	if sampled {
		s.probe.AscendNs.RecordAt(lo, uint64(time.Since(t0)))
	}
	return true
}

// serveSlowlog answers SLOWLOG <n>: up to n SLOW lines, slowest first,
// terminated by END (the ASCEND framing, so one-shot clients reuse the
// same reader). Each line is the wire rendering of one slowlog entry —
// total, phase breakdown, attempt/abort counts, keys, shards and abort
// owners as key=value fields, built with append into the connection's
// one scratch buffer (a fresh strings.Builder per field per entry was
// the old cost). Servers running without an obs domain have no slowlog
// and answer a single ERR line.
func (c *conn) serveSlowlog(countArg []byte) {
	s := c.srv
	n, nok := parseIntBytes(countArg)
	if !nok || n < 1 {
		c.scratch = append(c.scratch[:0], "ERR slowlog: bad count "...)
		c.scratch = appendQuoted(c.scratch, countArg)
		c.scratch = append(c.scratch, '\n')
		c.bw.Write(c.scratch)
		return
	}
	if !s.trace {
		c.bw.WriteString("ERR slowlog unavailable (server has no obs domain)\n")
		return
	}
	for rank, e := range s.slow.Entries(n) {
		b := append(c.scratch[:0], "SLOW rank="...)
		b = strconv.AppendInt(b, int64(rank+1), 10)
		b = append(b, " verb="...)
		b = append(b, e.Verb...)
		b = append(b, " total_ns="...)
		b = strconv.AppendUint(b, e.TotalNs, 10)
		b = append(b, " worst="...)
		b = append(b, e.WorstPhase...)
		b = append(b, " wait_ns="...)
		b = strconv.AppendUint(b, e.WaitNs, 10)
		b = append(b, " lease_ns="...)
		b = strconv.AppendUint(b, e.LeaseNs, 10)
		b = append(b, " attempts_ns="...)
		b = strconv.AppendUint(b, e.AttemptsNs, 10)
		b = append(b, " serial_ns="...)
		b = strconv.AppendUint(b, e.SerialNs, 10)
		b = append(b, " reclaim_ns="...)
		b = strconv.AppendUint(b, e.ReclaimNs, 10)
		b = append(b, " write_ns="...)
		b = strconv.AppendUint(b, e.WriteNs, 10)
		b = append(b, " attempts="...)
		b = strconv.AppendUint(b, uint64(e.Attempts), 10)
		b = append(b, " serial_txs="...)
		b = strconv.AppendUint(b, uint64(e.SerialTxs), 10)
		b = append(b, " keys="...)
		b = appendUints(b, e.Keys)
		b = append(b, " key_n="...)
		b = strconv.AppendInt(b, int64(e.KeyN), 10)
		b = append(b, " shards="...)
		b = appendInts(b, e.Shards)
		b = append(b, " owners="...)
		b = appendInt32s(b, e.Owners)
		b = append(b, '\n')
		c.scratch = b
		c.bw.Write(b)
	}
	c.bw.WriteString("END\n")
}

// appendUints renders a list as comma-separated decimals ("-" when
// empty, so the SLOW line's field count is stable for text tooling).
func appendUints(dst []byte, v []uint64) []byte {
	if len(v) == 0 {
		return append(dst, '-')
	}
	for i, x := range v {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, x, 10)
	}
	return dst
}

func appendInts(dst []byte, v []int) []byte {
	if len(v) == 0 {
		return append(dst, '-')
	}
	for i, x := range v {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return dst
}

func appendInt32s(dst []byte, v []int32) []byte {
	if len(v) == 0 {
		return append(dst, '-')
	}
	for i, x := range v {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return dst
}

// parseKey validates a decimal key in [1, maxKey], straight off the line
// bytes — no string materializes, and the three failure shapes are value
// diagnoses, not heap-allocated errors.
func (s *Server) parseKey(arg []byte) (uint64, wireErr) {
	if len(arg) == 0 {
		return 0, wireErr{code: errMissingKey}
	}
	key, ok := parseUintBytes(arg)
	if !ok {
		return 0, wireErr{code: errBadKey, arg: arg}
	}
	if key < 1 || key > s.maxKey {
		return 0, wireErr{code: errKeyRange, key: key}
	}
	return key, wireErr{}
}

// parseOp parses one single-key request line (GET/SET/DEL) into a set op.
// Everything else — other verbs, malformed keys — errors, which routes the
// line back to serveLine's per-verb handling.
func (s *Server) parseOp(line []byte) (sets.Op, wireErr) {
	verb, rest := cutSpace(line)
	var kind sets.OpKind
	switch string(verb) {
	case "GET":
		kind = sets.OpLookup
	case "SET":
		kind = sets.OpInsert
	case "DEL":
		kind = sets.OpRemove
	default:
		return sets.Op{}, wireErr{code: errNotKeyOp}
	}
	key, we := s.parseKey(rest)
	if we.code != wireOK {
		return sets.Op{}, we
	}
	return sets.Op{Kind: kind, Key: key}, wireErr{}
}

// writeMultiOversize renders serveMulti's oversized-batch rejection.
func (c *conn) writeMultiOversize(n int) {
	c.scratch = append(c.scratch[:0], "ERR multi: batch of "...)
	c.scratch = strconv.AppendInt(c.scratch, int64(n), 10)
	c.scratch = append(c.scratch, " exceeds max "...)
	c.scratch = strconv.AppendInt(c.scratch, int64(c.srv.maxBatch), 10)
	c.scratch = append(c.scratch, '\n')
	c.bw.Write(c.scratch)
}

// serveMulti reads and executes one MULTI frame: countArg body lines, each
// a GET/SET/DEL request, run as one batch transaction per shard touched.
// Any rejection is a single ERR line and executes nothing. To keep the
// connection usable after a rejection the body must still be consumed:
// a parse failure drains the remaining body lines, and an oversized count
// is drained only up to maxBatch×oversizeDrainFactor lines (beyond that
// the connection drops — false — rather than stream unbounded garbage).
// A malformed count is not drained at all: the client did not follow the
// grammar, so there is no body to be in frame with. Draining goes through
// the reused line scanner: a rejected frame used to re-allocate a string
// per drained line, which made garbage cheaper to send than to refuse.
func (c *conn) serveMulti(countArg []byte) bool {
	s := c.srv
	n, nok := parseIntBytes(countArg)
	if !nok || n < 1 {
		c.scratch = append(c.scratch[:0], "ERR multi: bad count "...)
		c.scratch = appendQuoted(c.scratch, countArg)
		c.scratch = append(c.scratch, '\n')
		c.bw.Write(c.scratch)
		return true
	}
	drain := func(k int) bool {
		for i := 0; i < k; i++ {
			if line, err := c.sc.Line(); err != nil && len(line) == 0 {
				return false
			}
		}
		return true
	}
	if n > s.maxBatch {
		if n > s.maxBatch*oversizeDrainFactor {
			c.writeMultiOversize(n)
			return false
		}
		ok := drain(n)
		c.writeMultiOversize(n)
		return ok
	}
	c.ops = c.ops[:0]
	for i := 0; i < n; i++ {
		line, err := c.sc.Line()
		if err != nil && len(line) == 0 {
			return false
		}
		op, we := s.parseOp(line)
		if we.code != wireOK {
			ok := drain(n - 1 - i)
			c.scratch = append(c.scratch[:0], "ERR multi: op "...)
			c.scratch = strconv.AppendInt(c.scratch, int64(i), 10)
			c.scratch = append(c.scratch, ": "...)
			c.scratch = appendWireErr(c.scratch, we, s.maxKey)
			c.scratch = append(c.scratch, '\n')
			c.bw.Write(c.scratch)
			return ok
		}
		c.ops = append(c.ops, op)
	}
	// Explicit MULTI is never capacity-split (split=0): the client asked
	// for atomicity, so an over-capacity batch takes the serial fallback
	// instead — that cliff is the measurement, not a failure.
	return c.execOps(c.ops, 0, false)
}

// execOps runs a batch of single-key ops and writes one 1/0 reply line per
// op, in op order. Ops group by shard (order preserved within a shard) and
// each shard's sub-batch executes through Set.Apply as one transaction —
// unless split > 0, in which case sub-batches chunk into transactions of
// at most split ops (the capacity-aware split used for auto-batching,
// where no atomicity was promised).
//
// A lease failure stops execution at that shard (shards already run keep
// their effects: atomicity is per-shard). How the failure is reported
// depends on where the ops came from. perOpErr=true is the auto-batch
// path — each op was an individual pipelined request owed its own reply
// line, so executed ops answer 1/0 and unexecuted ops answer ERR.
// perOpErr=false is the MULTI path — a rejected frame answers a single
// ERR line with no body replies, matching serveMulti's other rejections.
// Either way the return value follows the shedding contract: true (keep
// the connection) iff the failure was saturation.
func (c *conn) execOps(ops []sets.Op, split int, perOpErr bool) bool {
	s := c.srv
	bw := c.bw
	verb := "MULTI"
	if perOpErr {
		verb = "BATCH" // auto-batched pipelined burst
	}
	sp := s.span(verb)
	if sp != nil {
		for _, op := range ops {
			sp.AddKey(op.Key)
		}
	}
	sampled := s.dom != nil && s.dom.Sampled(uint64(len(ops)))
	var t0 time.Time
	txs := 0
	if sampled {
		t0 = time.Now()
	}
	if cap(c.results) < len(ops) {
		c.results = make([]sets.Result, len(ops))
		c.executed = make([]bool, len(ops))
	}
	results := c.results[:len(ops)]
	executed := c.executed[:len(ops)]
	for i := range executed {
		executed[i] = false
	}
	var leaseErr error
	run := func(shard int, sub []sets.Op, idx []int) bool {
		if sp != nil {
			sp.MarkShard(shard)
		}
		slot, err := c.leases.slot(shard, sp)
		if err != nil {
			leaseErr = err
			return false
		}
		set := s.shards[shard].Set
		var dom *obs.Domain
		var opT0 time.Time
		if sp != nil {
			dom = s.setDoms[shard]
			dom.SetSpan(slot, sp)
			opT0 = time.Now()
		}
		for len(sub) > 0 {
			chunk := sub
			if split > 0 && len(chunk) > split {
				chunk = chunk[:split]
			}
			txs++
			if sampled {
				s.probe.BatchOp.RecordAt(uint64(slot), uint64(len(chunk)))
			}
			for i, r := range set.Apply(slot, chunk) {
				results[idx[i]] = r
				executed[idx[i]] = true
				if r {
					switch chunk[i].Kind {
					case sets.OpInsert:
						s.keys.Add(1)
					case sets.OpRemove:
						s.keys.Add(-1)
					}
				}
			}
			sub = sub[len(chunk):]
			idx = idx[len(chunk):]
		}
		if sp != nil {
			sp.Add(obs.SpanLease, uint64(time.Since(opT0)))
			dom.SetSpan(slot, nil)
		}
		return true
	}
	if len(s.shards) == 1 {
		if cap(c.idx) < len(ops) {
			c.idx = make([]int, len(ops))
		}
		idx := c.idx[:len(ops)]
		for i := range idx {
			idx[i] = i
		}
		run(0, ops, idx)
	} else {
		if len(c.subOps) < len(s.shards) {
			c.subOps = make([][]sets.Op, len(s.shards))
			c.subIdx = make([][]int, len(s.shards))
		}
		subOps := c.subOps[:len(s.shards)]
		subIdx := c.subIdx[:len(s.shards)]
		for i := range subOps {
			subOps[i] = subOps[i][:0]
			subIdx[i] = subIdx[i][:0]
		}
		for i, op := range ops {
			sh := ShardOf(op.Key, len(s.shards))
			subOps[sh] = append(subOps[sh], op)
			subIdx[sh] = append(subIdx[sh], i)
		}
		for sh := range subOps {
			if len(subOps[sh]) == 0 {
				continue
			}
			if !run(sh, subOps[sh], subIdx[sh]) {
				break
			}
		}
		copy(c.subOps, subOps)
		copy(c.subIdx, subIdx)
	}
	if sampled {
		s.probe.BatchNs.RecordAt(uint64(len(ops)), uint64(time.Since(t0)))
		s.probe.Splits.RecordAt(uint64(len(ops)), uint64(txs))
	}
	var wT0 time.Time
	if sp != nil {
		wT0 = time.Now()
	}
	defer func() {
		if sp != nil {
			sp.Add(obs.SpanWrite, uint64(time.Since(wT0)))
			s.finishSpan(sp)
		}
	}()
	if leaseErr != nil && !perOpErr {
		bw.WriteString("ERR multi: ")
		bw.WriteString(leaseErr.Error())
		bw.WriteByte('\n')
		return errors.Is(leaseErr, ErrSaturated)
	}
	for i, r := range results {
		switch {
		case leaseErr != nil && !executed[i]:
			bw.WriteString("ERR ")
			bw.WriteString(leaseErr.Error())
			bw.WriteByte('\n')
		case r:
			bw.WriteString("1\n")
		default:
			bw.WriteString("0\n")
		}
	}
	if leaseErr != nil {
		return errors.Is(leaseErr, ErrSaturated)
	}
	return true
}
