// Package hohtx is the public API of this repository: concurrent ordered
// sets built from hand-over-hand transactions with revocable reservations,
// as introduced in "Hand-Over-Hand Transactions with Precise Memory
// Reclamation" (Zhou, Luchangco, Spear; SPAA 2017).
//
// # What you get
//
// Four set implementations over uint64 keys — singly and doubly linked
// lists and internal and external unbalanced binary search trees — that
// split long traversals into small transactions linked by *revocable
// reservations*. Removals reclaim node memory the instant the removing
// operation commits (precise reclamation): there is no grace period, no
// retire list, and the library can prove it (LiveNodes tracks allocation
// exactly).
//
// # Quick start
//
//	set := hohtx.NewListSet(hohtx.Config{Threads: 8})
//	set.Register(workerID)              // once per worker
//	set.Insert(workerID, 42)
//	ok := set.Lookup(workerID, 42)      // true
//	set.Remove(workerID, 42)            // node memory is free on return
//
// Each concurrent worker must use a distinct id in [0, Threads). Keys must
// be ≥ 1 and at most MaxKey.
//
// # More goroutines than worker ids
//
// Programs that cannot pin one goroutine per worker id — servers, worker
// fleets, anything with dynamic concurrency — lease ids from a pool
// instead of owning them:
//
//	pool := hohtx.NewLeasePool(set, hohtx.LeaseConfig{Slots: 8})
//	// from any number of goroutines:
//	pool.Do(ctx, func(tid int) { set.Insert(tid, 42) })
//	pool.Close() // waits for leases, flushes every worker id
//
// The pool handles Register/Finish, queues fairly under contention, and
// exposes backpressure statistics; cmd/hohserver builds a TCP front end
// on it. See the internal/serve package and DESIGN.md §9.
//
// # Choosing a reservation scheme
//
// The six schemes trade Revoke cost against Get precision (§3 of the
// paper). The relaxed schemes (XO, SO, V) revoke in O(1) and win nearly
// every benchmark; RRVersioned (RR-V) additionally lets any number of
// threads reserve the same node and is the best default together with
// RRExclusive. The strict schemes (FA, DM, SA) never spuriously lose a
// reservation, which makes one extra optimization sound in the doubly
// linked list, but their Revoke visits every thread.
package hohtx

import (
	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/list"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
	"hohtx/internal/skiplist"
	"hohtx/internal/stm"
	"hohtx/internal/tree"
)

// Set is a concurrent ordered set of uint64 keys; see the package comment
// for the threading contract.
type Set = sets.Set

// MemoryReporter is implemented by every Set in this package: LiveNodes
// is the exact count of allocated nodes, DeferredNodes the count of
// logically-deleted-but-unreclaimed ones (always 0 for the reservation
// mechanisms — that is the paper's point).
type MemoryReporter = sets.MemoryReporter

// Op is one operation of a batch passed to Set.Apply; a batch executes as
// a single transaction (one snapshot, one commit) on every Set this
// package constructs, making it atomic and roughly amortizing the commit
// cost across the ops. Batches whose read/write footprint exceeds the
// transaction capacity still commit atomically, via the serial fallback.
// On a ShardedSet, atomicity narrows to per-shard (see ShardedSet).
type Op = sets.Op

// OpKind selects a batch operation.
type OpKind = sets.OpKind

// Batch op kinds, mirroring the single-op methods.
const (
	OpLookup = sets.OpLookup
	OpInsert = sets.OpInsert
	OpRemove = sets.OpRemove
)

// MaxKey is the largest usable key (the trees reserve the top values for
// sentinels; the lists accept more but a uniform bound keeps code
// portable across structures).
const MaxKey = tree.MaxKey

// Reservation selects one of the paper's six revocable reservation
// implementations.
type Reservation int

const (
	// RRVersioned is RR-V: relaxed, O(1) revoke, unlimited concurrent
	// holders per node. The recommended default.
	RRVersioned Reservation = iota
	// RRExclusive is RR-XO: relaxed, O(1) revoke, one holder per hash
	// slot.
	RRExclusive
	// RRSharedOwner is RR-SO: relaxed, O(A) revoke, up to A holders.
	RRSharedOwner
	// RRFullyAssoc is RR-FA: strict, O(threads) revoke.
	RRFullyAssoc
	// RRDirectMapped is RR-DM: strict, revoke scans one hash bucket.
	RRDirectMapped
	// RRSetAssoc is RR-SA: strict, revoke scans one bucket in each of A
	// arrays.
	RRSetAssoc
)

// kind maps the public enum to the internal implementation registry.
func (r Reservation) kind() core.Kind {
	switch r {
	case RRExclusive:
		return core.KindXO
	case RRSharedOwner:
		return core.KindSO
	case RRFullyAssoc:
		return core.KindFA
	case RRDirectMapped:
		return core.KindDM
	case RRSetAssoc:
		return core.KindSA
	default:
		return core.KindV
	}
}

// String returns the paper's name for the scheme.
func (r Reservation) String() string { return r.kind().String() }

// Config tunes a set. The zero value is usable: 8 threads, RR-V
// reservations, a window of 8 (lists) or 16 (trees), scatter enabled.
type Config struct {
	// Threads is the number of distinct worker ids that will call into
	// the set concurrently.
	Threads int
	// Reservation selects the revocable reservation scheme.
	Reservation Reservation
	// Window is W, the maximum node visits per transaction. Smaller
	// windows abort less under contention, larger ones commit less
	// often; the paper's tuning is 16 up to 4 threads and 8 beyond for
	// lists (§5.2). Zero picks a sensible default.
	Window int
	// NoScatter disables randomizing the first window's length. Leave
	// scattering on unless you are reproducing the paper's ablation.
	NoScatter bool
	// SharedPool routes all node allocation through one contended pool
	// (the paper's "jemalloc-pathology" configuration, Figure 5) instead
	// of per-thread magazines. Only useful for experiments.
	SharedPool bool
	// SerialAfter is the number of failed speculative attempts before an
	// operation's transaction falls back to the serial path — a
	// distributed reader-bias lock, not a single global lock, so
	// speculative commits on other threads keep their fast path while a
	// serialized writer drains (see DESIGN.md "Scalable commit path").
	// Zero uses the paper's settings (2 for lists, 8 for trees).
	SerialAfter int
	// SimulatePreemption injects scheduler yields inside transactions so
	// that they interleave even on a single-core host. Leave it off on
	// real multicore machines; turn it on to study conflict behavior
	// (aborts, revocations, window tuning) where the hardware cannot
	// produce true parallelism.
	SimulatePreemption bool
	// Clock selects the TM global version clock policy. ClockDefault (and
	// ClockGV1) is classic TL2 — every writing commit increments a shared
	// clock; ClockGV5 is the lazy policy, which removes that shared
	// read-modify-write from the commit fast path at the cost of more
	// snapshot extensions on readers. See DESIGN.md ("Scalable commit
	// path") for the trade-off.
	Clock ClockPolicy
}

// ClockPolicy selects the TM global version clock policy; see Config.Clock.
type ClockPolicy int

const (
	// ClockDefault uses the package default, currently GV1.
	ClockDefault ClockPolicy = iota
	// ClockGV1 increments the shared clock on every writing commit (TL2).
	ClockGV1
	// ClockGV5 derives write versions lazily without a shared
	// read-modify-write per commit.
	ClockGV5
)

// stm maps the public enum to the internal policy.
func (c ClockPolicy) stm() stm.ClockPolicy {
	if c == ClockGV5 {
		return stm.ClockGV5
	}
	return stm.ClockGV1
}

func (c Config) listConfig(doubly bool) list.Config {
	out := list.Config{
		Mode:    list.ModeRR,
		RRKind:  c.Reservation.kind(),
		Threads: c.Threads,
		Window:  core.Window{W: c.Window, NoScatter: c.NoScatter},
	}
	if c.SharedPool {
		out.ArenaPolicy = arena.PolicyShared
	}
	if c.SerialAfter > 0 {
		out.Profile = stm.HTMProfile(c.SerialAfter)
	}
	if c.SimulatePreemption {
		out.YieldShift = 5
	}
	out.ClockPolicy = c.Clock.stm()
	return out
}

func (c Config) treeConfig() tree.Config {
	out := tree.Config{
		Mode:    tree.ModeRR,
		RRKind:  c.Reservation.kind(),
		Threads: c.Threads,
		Window:  core.Window{W: c.Window, NoScatter: c.NoScatter},
	}
	if c.SharedPool {
		out.ArenaPolicy = arena.PolicyShared
	}
	if c.SerialAfter > 0 {
		out.Profile = stm.HTMProfile(c.SerialAfter)
	}
	if c.SimulatePreemption {
		out.YieldShift = 5
	}
	out.ClockPolicy = c.Clock.stm()
	return out
}

// NewListSet returns a singly linked list set (best for small key ranges
// and teaching; O(n) operations).
func NewListSet(cfg Config) Set { return list.New(cfg.listConfig(false)) }

// NewDoublyListSet returns a doubly linked list set; removals unlink in a
// second, smaller transaction (§4.2), which reduces conflicts under
// write-heavy loads.
func NewDoublyListSet(cfg Config) Set { return list.NewDoubly(cfg.listConfig(true)) }

// NewInternalTreeSet returns an unbalanced internal BST set (§4.3).
func NewInternalTreeSet(cfg Config) Set { return tree.NewInternal(cfg.treeConfig()) }

// NewExternalTreeSet returns an unbalanced external BST set; keys live in
// leaves, making removals structurally simple (no successor swaps).
func NewExternalTreeSet(cfg Config) Set { return tree.NewExternal(cfg.treeConfig()) }

// NewHashSet returns a hash set of bucketed hand-over-hand chains — the
// structure the paper's conclusion proposes as the next application of
// revocable reservations. buckets is rounded up to a power of two; size it
// for a small expected load factor (e.g. expected keys / 4).
func NewHashSet(cfg Config, buckets int) Set {
	return list.NewHashTable(cfg.listConfig(false), buckets)
}

// NewSkipListSet returns a skiplist set — the probabilistically balanced
// answer to the paper's "balanced trees" future-work item: O(log n)
// expected operations, one Revoke per removal regardless of node height,
// and precise reclamation throughout.
func NewSkipListSet(cfg Config) Set {
	out := skiplist.Config{
		Threads: cfg.Threads,
		RRKind:  cfg.Reservation.kind(),
		Window:  core.Window{W: cfg.Window, NoScatter: cfg.NoScatter},
	}
	if cfg.SharedPool {
		out.ArenaPolicy = arena.PolicyShared
	}
	if cfg.SerialAfter > 0 {
		out.Profile = stm.HTMProfile(cfg.SerialAfter)
	}
	if cfg.SimulatePreemption {
		out.YieldShift = 5
	}
	out.ClockPolicy = cfg.Clock.stm()
	return skiplist.New(out)
}

// Ascender is implemented by sets that support ordered iteration
// (currently NewListSet, NewDoublyListSet, NewSkipListSet, and
// NewShardedSet over those; the hash set has no global order to
// iterate). Ascend calls fn for each key >= from in ascending order until
// fn returns false; the traversal is hand-over-hand (the iterator's
// position is itself a revocable reservation) and weakly consistent: keys
// present for the whole scan appear exactly once, in strictly ascending
// order, and concurrent removals still reclaim immediately. Variants
// whose reclamation scheme cannot hold a revocable cursor (TMHP, REF, ER
// and the lock-free baselines) return ErrScanUnsupported instead of
// iterating.
type Ascender = sets.Ascender

// ErrScanUnsupported is returned by Ascender.Ascend when the variant
// cannot run a reservation cursor; the serve layer maps it to an
// "ERR scan unsupported" reply instead of crashing.
var ErrScanUnsupported = sets.ErrScanUnsupported

// OrderedMap is an ordered uint64→uint64 map over the external
// hand-over-hand tree with precise reclamation; see NewOrderedMap.
type OrderedMap = tree.Map

// NewOrderedMap constructs an ordered map. It accepts the same Config as
// the sets (window, reservation scheme, allocator policy).
func NewOrderedMap(cfg Config) *OrderedMap {
	return tree.NewMap(cfg.treeConfig())
}

// Tunable is implemented by every Set built by this package: SetWindow
// adjusts the hand-over-hand window size W while the set is in use (0
// restores the configured value). The paper proposes contention-driven
// window tuning as future work; examples/tuner builds it on this knob and
// on StatsOf's abort counts.
type Tunable interface {
	SetWindow(w int)
}

// TxStats summarizes a set's transactional behavior.
type TxStats struct {
	Commits uint64 // committed transactions
	Aborts  uint64 // aborted speculative attempts
	Serial  uint64 // commits that needed the serial fallback

	// Per-cause abort breakdown (sums to Aborts together with the
	// explicit-restart aborts not listed here).
	ReadConflicts  uint64 // reads that hit a newer/locked cell and could not extend
	Validations    uint64 // commit-time read-set validation failures
	WriteLocks     uint64 // commit-time write-lock acquisition failures
	CapacityAborts uint64 // simulated-HTM footprint overflows

	// Commit-path traffic: clock CAS attempts (GV5 only), serial writers
	// that revoked the distributed lock's reader bias, and spin-waits on
	// commit slots. See DESIGN.md ("Scalable commit path").
	ClockCASes      uint64
	BiasRevocations uint64
	WriterWaits     uint64
}

// LeasePool multiplexes any number of goroutines onto a set's fixed
// worker ids: Acquire/Release (or the Do one-liner) lease ids with FIFO
// queueing, bounded waiting and per-Handle slot affinity, and the pool
// owns the Register/Finish lifecycle. See the internal/serve package
// documentation for the full semantics.
type LeasePool = serve.Pool

// LeaseHandle is a pool client with slot affinity; one per goroutine.
type LeaseHandle = serve.Handle

// LeaseConfig parameterizes NewLeasePool. Slots must equal the set's
// Config.Threads.
type LeaseConfig = serve.PoolConfig

// LeaseStats is the pool's backpressure counters.
type LeaseStats = serve.PoolStats

// Lease-pool failure modes, re-exported for errors.Is checks.
var (
	ErrLeaseSaturated = serve.ErrSaturated
	ErrLeaseClosed    = serve.ErrClosed
)

// NewLeasePool builds a worker-slot lease pool over a set constructed
// with cfg.Slots threads. The pool registers every worker id, so callers
// never call Register or Finish themselves; Close flushes all slots.
func NewLeasePool(s Set, cfg LeaseConfig) *LeasePool { return serve.NewPool(s, cfg) }

// ShardedSet hash-partitions keys across N fully independent Set
// instances — each with its own transactional runtime (global version
// clock, serial-fallback lock), allocator, and reclamation — behind the
// ordinary Set interface. Writes to different shards never contend on a
// shared cache line, so sharding scales the write path past the
// single-clock serialization a lone instance tops out at, while every
// per-instance property (opacity, precise reclamation, exact LiveNodes)
// holds per shard and the reported aggregates are exact sums. Snapshot
// merges the shards in ascending key order; Register and Finish fan out
// to every shard, so a worker id (or a LeasePool over the facade) works
// exactly as on a single instance. cmd/hohserver's -shards flag serves
// one of these.
type ShardedSet = serve.Sharded

// NewShardedSet builds a ShardedSet from shards instances produced by the
// build callback — typically closing over this package's constructors:
//
//	set := hohtx.NewShardedSet(4, func(int) hohtx.Set {
//	    return hohtx.NewListSet(hohtx.Config{Threads: 8})
//	})
//
// Every shard must be configured with the same thread count. The shard
// index is passed to build for instrumentation (e.g. naming per-shard
// observability domains); the returned sets must be freshly constructed
// and unshared.
func NewShardedSet(shards int, build func(shard int) Set) *ShardedSet {
	if shards < 1 {
		shards = 1
	}
	parts := make([]Set, shards)
	for i := range parts {
		parts[i] = build(i)
	}
	return serve.NewSharded(parts)
}

// StatsOf extracts transaction statistics from any Set built by this
// package (zero value for foreign implementations).
func StatsOf(s Set) TxStats {
	type reporter interface {
		TxCommits() uint64
		TxAborts() uint64
		TxSerial() uint64
	}
	var out TxStats
	if r, ok := s.(reporter); ok {
		out = TxStats{Commits: r.TxCommits(), Aborts: r.TxAborts(), Serial: r.TxSerial()}
	}
	if r, ok := s.(interface{ TMStats() stm.Stats }); ok {
		st := r.TMStats()
		out.ReadConflicts = st.Aborts[stm.CauseReadConflict]
		out.Validations = st.Aborts[stm.CauseValidation]
		out.WriteLocks = st.Aborts[stm.CauseWriteLock]
		out.CapacityAborts = st.Aborts[stm.CauseCapacity]
		out.ClockCASes = st.ClockCASes
		out.BiasRevocations = st.BiasRevocations
		out.WriterWaits = st.WriterWaits
	}
	return out
}
