// Command benchjson runs a fixed throughput suite and writes a
// machine-readable JSON summary, seeding the repository's performance
// trajectory: each PR that touches a hot path regenerates BENCH_<n>.json at
// the repo root so successive snapshots can be diffed mechanically.
//
// The suite is deliberately small — the singly linked list's 10-bit/33%
// panel (the paper's centerpiece workload) across a thread sweep, for the
// best reservation scheme under both clock policies plus the HTM and TMHP
// baselines. Full figure regeneration stays in cmd/benchfig; this tool is
// for trend tracking, so it favors a stable, fast, comparable cell set.
//
// Usage:
//
//	benchjson                     # writes BENCH_1.json in the cwd
//	benchjson -out BENCH_2.json -threads 1,2,4,8 -ops 100000 -trials 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/sets"
)

func main() {
	out := flag.String("out", "BENCH_1.json", "output path")
	threads := flag.String("threads", "1,2,4", "comma-separated thread counts")
	ops := flag.Int("ops", 50_000, "per-thread operations per trial")
	trials := flag.Int("trials", 2, "trials per cell")
	seed := flag.Int64("seed", 20170724, "workload seed")
	flag.Parse()

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchjson: bad thread count %q\n", part)
			os.Exit(2)
		}
		ths = append(ths, n)
	}

	wl := bench.Workload{KeyBits: 10, LookupPct: 33, OpsPerThread: *ops}
	sum := bench.Summary{
		Bench:      bench.BenchNumber(*out),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   "singly list, 10-bit keys, 33% lookups",
		Ops:        *ops,
		Trials:     *trials,
	}

	type series struct {
		name string
		lazy bool
	}
	suite := []series{
		{name: "RR-V"},
		{name: "RR-V", lazy: true},
		{name: "RR-XO"},
		{name: "RR-XO", lazy: true},
		{name: "HTM"},
		{name: "TMHP"},
		{name: "ER"},
	}
	for _, sr := range suite {
		for _, th := range ths {
			spec := bench.VariantSpec{Name: sr.name, LazyClock: sr.lazy, Observe: true}
			spec.Window = bench.BestWindow(bench.FamilySingly, th)
			var buildErr error
			mk := bench.MakeSet(func(t int) sets.Set {
				s, err := bench.Build(bench.FamilySingly, spec, t)
				if err != nil {
					buildErr = err
					return nil
				}
				return s
			})
			if probe := mk(th); probe == nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", buildErr)
				os.Exit(1)
			}
			res, err := bench.Run(mk, wl, bench.RunConfig{
				Threads: th, Trials: *trials, Seed: *seed, Verify: true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", sr.name, err)
				os.Exit(1)
			}
			c := bench.CellFromResult(bench.FamilySingly, clockName(sr.lazy), res)
			c.Window = spec.Window
			sum.Cells = append(sum.Cells, c)
			fmt.Fprintf(os.Stderr, "benchjson: %-5s %s %dT  %.4f Mops/s\n",
				sr.name, c.Clock, th, res.MopsPerSec)
		}
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d cells)\n", *out, len(sum.Cells))
}

func clockName(lazy bool) string {
	if lazy {
		return "gv5"
	}
	return "gv1"
}
