// Quickstart: the smallest useful program against the hohtx public API.
//
// It builds a hand-over-hand transactional set with RR-V reservations and
// drives it from twice as many goroutines as the set has worker slots —
// the situation every real program is in — by leasing slots from a
// hohtx.LeasePool instead of managing worker ids by hand. At the end it
// prints the set contents, the exact node memory accounting (precise
// reclamation means LiveNodes always equals the set size plus one
// sentinel), the transaction statistics, and the pool's backpressure
// statistics (how often a goroutine had to wait for a slot).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"sync"

	"hohtx"
)

func main() {
	const (
		slots   = 4 // worker ids the set is configured with
		workers = 8 // goroutines — more than slots, on purpose
	)
	set := hohtx.NewListSet(hohtx.Config{Threads: slots})
	pool := hohtx.NewLeasePool(set, hohtx.LeaseConfig{Slots: slots})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := pool.Handle() // affinity: tends to re-lease the same slot
			for i := 0; i < 100; i++ {
				key := uint64(w*100+i) + 1
				_ = h.Do(context.Background(), func(tid int) {
					set.Insert(tid, key)
					if i%2 == 0 {
						set.Remove(tid, key) // memory is reclaimed on return
					}
				})
			}
			_ = h.Do(context.Background(), func(tid int) {
				set.Insert(tid, 9999)
				set.Lookup(tid, 9999)
			})
		}(w)
	}
	wg.Wait()
	pool.Close() // waits for leases, flushes every worker slot

	snapshot := set.Snapshot()
	fmt.Printf("set holds %d keys; first few: %v\n", len(snapshot), snapshot[:5])

	mem := set.(hohtx.MemoryReporter)
	fmt.Printf("live nodes: %d (= %d keys + 1 sentinel), deferred: %d\n",
		mem.LiveNodes(), len(snapshot), mem.DeferredNodes())
	if mem.LiveNodes() != uint64(len(snapshot))+1 {
		panic("precise reclamation violated") // never happens
	}

	st := hohtx.StatsOf(set)
	fmt.Printf("transactions: %d committed, %d aborted attempts, %d serialized\n",
		st.Commits, st.Aborts, st.Serial)

	ps := pool.Stats()
	fmt.Printf("leases: %d granted (%d waited, %d affinity hits) over %d slots for %d goroutines\n",
		ps.Leases, ps.Waits, ps.AffinityHits, slots, workers)
}
