// tuner: the paper's future-work item, built on this library's knobs.
//
// Section 5.2 ends: "This experiment suggests future work in dynamic
// tuning of the window size. Doing so will entail hand-crafting the
// transactions ... GCC TM does not expose the fact of an abort, or its
// cause, to the programmer." This library *does* expose abort counts
// (hohtx.StatsOf) and a live window knob (hohtx.Tunable), so the tuner the
// paper could not build in 2017 is ~40 lines here.
//
// The controller samples the abort-per-commit ratio every interval and
// walks the window size W down when conflicts are high and up when they
// are rare (the paper's trade-off: big windows amortize transaction
// boundaries, small windows dodge conflicts). The program compares a
// deliberately oversized fixed window against the adaptive controller
// under the same contended workload and prints both throughputs and the
// window trajectory.
//
// Run with: go run ./examples/tuner
package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hohtx"
)

const (
	threads  = 8
	keyRange = 1 << 10 // the paper's 10-bit list panel
	phase    = 1500 * time.Millisecond
	tick     = 50 * time.Millisecond
)

// workload hammers the set with the paper's 33%-lookup mix until stop.
// Each goroutine leases a worker slot from the pool for the whole run —
// the degenerate (but common) case of slot leasing where goroutines and
// slots are in 1:1 balance and a lease is just a checked-out worker id.
func workload(set hohtx.Set, pool *hohtx.LeasePool, stop *atomic.Bool) uint64 {
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w)*101 + 7
			_ = pool.Do(context.Background(), func(tid int) {
				var n uint64
				for !stop.Load() {
					state += 0x9e3779b97f4a7c15
					z := state
					z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
					z ^= z >> 27
					key := z%keyRange + 1
					switch {
					case (z>>32)%100 < 33:
						set.Lookup(tid, key)
					case (z>>31)&1 == 0:
						set.Insert(tid, key)
					default:
						set.Remove(tid, key)
					}
					n++
				}
				ops.Add(n)
			})
		}(w)
	}
	wg.Wait()
	return ops.Load()
}

// tune runs the abort-feedback controller until stop, returning the
// window trajectory it walked.
func tune(set hohtx.Set, stop *atomic.Bool) []int {
	tunable := set.(hohtx.Tunable)
	w := 32 // start oversized, like the fixed baseline
	trajectory := []int{w}
	prev := hohtx.StatsOf(set)
	for !stop.Load() {
		time.Sleep(tick)
		cur := hohtx.StatsOf(set)
		commits := cur.Commits - prev.Commits
		aborts := cur.Aborts - prev.Aborts
		prev = cur
		if commits == 0 {
			continue
		}
		rate := float64(aborts) / float64(commits)
		switch {
		case rate > 0.08 && w > 1:
			w /= 2 // conflicts dominate: shrink windows
		case rate < 0.02 && w < 32:
			w *= 2 // conflict-free: amortize boundaries
		default:
			continue
		}
		tunable.SetWindow(w)
		trajectory = append(trajectory, w)
	}
	return trajectory
}

func run(name string, adaptive bool, clock hohtx.ClockPolicy) {
	set := hohtx.NewListSet(hohtx.Config{
		Threads: threads,
		Window:  32,
		Clock:   clock,
		// On a single-core host, transactions only conflict if they
		// interleave; simulate the preemption a multicore machine gets
		// for free.
		SimulatePreemption: runtime.GOMAXPROCS(0) == 1,
	})
	pool := hohtx.NewLeasePool(set, hohtx.LeaseConfig{Slots: threads})
	var stop atomic.Bool
	var trajectory []int
	var tunerWG sync.WaitGroup
	if adaptive {
		tunerWG.Add(1)
		go func() {
			defer tunerWG.Done()
			trajectory = tune(set, &stop)
		}()
	}
	start := time.Now()
	done := make(chan uint64, 1)
	go func() { done <- workload(set, pool, &stop) }()
	time.Sleep(phase)
	stop.Store(true)
	ops := <-done
	tunerWG.Wait()
	pool.Close() // flushes every worker slot (replaces per-goroutine Finish)
	elapsed := time.Since(start).Seconds()

	st := hohtx.StatsOf(set)
	fmt.Printf("%-18s %8.2f Kops/s   aborts/commit=%.3f (read=%d valid=%d wlock=%d)  clockCAS=%d revocations=%d\n",
		name, float64(ops)/elapsed/1e3, float64(st.Aborts)/float64(st.Commits),
		st.ReadConflicts, st.Validations, st.WriteLocks,
		st.ClockCASes, st.BiasRevocations)
	if adaptive {
		fmt.Printf("%-18s window trajectory: %v\n", "", trajectory)
	}
}

func main() {
	fmt.Printf("adaptive window tuning, %d threads, %d-key list, 33%% lookups\n\n", threads, keyRange)
	run("fixed W=32", false, hohtx.ClockDefault)
	run("adaptive", true, hohtx.ClockDefault)
	run("adaptive gv5", true, hohtx.ClockGV5)
	fmt.Println("\n(the adaptive runs should walk W down toward the paper's tuned value and beat the oversized fixed window;" +
		"\n the gv5 run trades writer clock increments for reader clock CASes — compare the clockCAS column)")
}
