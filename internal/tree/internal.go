package tree

import (
	"fmt"

	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Internal is the unbalanced internal binary search tree (§4.3): every
// node carries a value; a sentinel with key +∞ serves as the root so the
// first real node is always a left child and removal of the topmost real
// node needs no special case.
type Internal struct {
	*base
	root arena.Handle // sentinel; the tree hangs off its left child
}

var _ sets.Set = (*Internal)(nil)
var _ sets.MemoryReporter = (*Internal)(nil)

// NewInternal constructs an internal-tree set.
func NewInternal(cfg Config) *Internal {
	cfg = cfg.withDefaults()
	if cfg.Mode == ModeTMHP || cfg.Mode == ModeTMHE || cfg.Mode == ModeTMVBR {
		panic("tree: the deferred-reclamation modes are only implemented for the external tree")
	}
	b := newBase(cfg)
	return &Internal{base: b, root: b.initNode(sent2, arena.Nil, arena.Nil)}
}

// Name implements sets.Set.
func (t *Internal) Name() string {
	switch t.mode {
	case ModeRR:
		return t.rr.Name()
	case ModeHTM:
		return "HTM"
	default:
		return fmt.Sprintf("itree-?%d", t.mode)
	}
}

// child returns the dir-selected child cell of n (0 left, 1 right).
func child(n *node, dir int) *stm.Word {
	if dir == 0 {
		return &n.left
	}
	return &n.right
}

// apply is the hand-over-hand window engine for the internal tree. The
// found callback receives the matching node and its parent (with dir
// selecting which child of the parent it is); the missing callback
// receives the insertion point. needsParent makes a match at a resumed
// window's first node (whose parent is unknown — the paper's nodes store
// child-direction, not parent pointers) drop its hold and restart from
// the root; only Remove needs that.
func (t *Internal) apply(tid int, key uint64, needsParent bool,
	onFound func(tx *stm.Tx, parentH, currH arena.Handle, dir int) bool,
	onMissing func(tx *stm.Tx, parentH arena.Handle, dir int) bool) bool {

	ts := &t.threads[tid]
	ts.ops++
	var res bool
	for {
		done := false
		t.rt.AtomicT(tid, func(tx *stm.Tx) {
			done = false
			res = false
			win := t.window()
			startH, held := t.windowStart(tx, tid, t.root)
			var budget int
			if held {
				budget = win.Next()
			} else {
				budget = win.First(tx)
			}
			prevH, currH := arena.Nil, startH
			dir := 0
			steps := 0
			for {
				if currH.IsNil() {
					res = onMissing(tx, prevH, dir)
					t.windowTerminal(tx, tid, held)
					done = true
					return
				}
				n := t.ar.At(currH)
				ck := t.loadWord(tx, tid, currH, &n.key)
				if ck == key {
					if needsParent && prevH.IsNil() {
						// Matched at the resumed start: ancestors unknown.
						t.dropHold(tx, tid, held)
						return // done=false: restart from the root
					}
					res = onFound(tx, prevH, currH, dir)
					t.windowTerminal(tx, tid, held)
					done = true
					return
				}
				if steps >= budget {
					t.windowHold(tx, tid, held, currH)
					return // hand over to the next window at currH
				}
				prevH = currH
				if key < ck {
					currH = t.loadLink(tx, tid, currH, &n.left)
					dir = 0
				} else {
					currH = t.loadLink(tx, tid, currH, &n.right)
					dir = 1
				}
				steps++
			}
		})
		if done {
			return res
		}
	}
}

// Lookup implements sets.Set.
func (t *Internal) Lookup(tid int, key uint64) bool {
	return t.apply(tid, key, false,
		func(tx *stm.Tx, parentH, currH arena.Handle, dir int) bool { return true },
		func(tx *stm.Tx, parentH arena.Handle, dir int) bool { return false },
	)
}

// Insert implements sets.Set.
func (t *Internal) Insert(tid int, key uint64) bool {
	if key > MaxKey {
		panic("tree: key out of range")
	}
	return t.apply(tid, key, false,
		func(tx *stm.Tx, parentH, currH arena.Handle, dir int) bool { return false },
		func(tx *stm.Tx, parentH arena.Handle, dir int) bool {
			nh := t.allocNode(tx, tid, key, arena.Nil, arena.Nil)
			child(t.ar.At(parentH), dir).Store(tx, uint64(nh))
			return true
		},
	)
}

// Remove implements sets.Set. The two-children case swaps in the leftmost
// descendant of the right child and revokes the whole victim-to-successor
// path (see the package comment).
func (t *Internal) Remove(tid int, key uint64) bool {
	return t.apply(tid, key, true,
		func(tx *stm.Tx, parentH, vH arena.Handle, dir int) bool {
			t.removeFound(tx, tid, parentH, vH, dir)
			return true
		},
		func(tx *stm.Tx, parentH arena.Handle, dir int) bool { return false },
	)
}

// removeFound deletes the matched node vH (the dir-child of parentH),
// dispatching on its child count.
func (t *Internal) removeFound(tx *stm.Tx, tid int, parentH, vH arena.Handle, dir int) {
	v := t.ar.At(vH)
	lH := t.loadLink(tx, tid, vH, &v.left)
	rH := t.loadLink(tx, tid, vH, &v.right)
	switch {
	case lH.IsNil() && rH.IsNil():
		child(t.ar.At(parentH), dir).Store(tx, 0)
		t.reclaimNode(tx, tid, vH)
	case lH.IsNil():
		child(t.ar.At(parentH), dir).Store(tx, uint64(rH))
		t.reclaimNode(tx, tid, vH)
	case rH.IsNil():
		child(t.ar.At(parentH), dir).Store(tx, uint64(lH))
		t.reclaimNode(tx, tid, vH)
	default:
		t.removeTwoChildren(tx, tid, vH, rH)
	}
}

// removeTwoChildren overwrites vH's key with its successor's and extracts
// the successor node. Every node on the path from the victim through the
// successor — whose subtree regions are the only ones the upward key move
// invalidates — is revoked so resumed traversals in that region restart.
func (t *Internal) removeTwoChildren(tx *stm.Tx, tid int, vH, rH arena.Handle) {
	if t.mode == ModeRR {
		// The victim's key changes: reservations on it become unsafe.
		t.rr.Revoke(tx, uint64(vH))
	}
	// Walk to the leftmost descendant of the right child, revoking the
	// path as we go (this is the multi-Revoke cost Figure 6 studies).
	parentOfL := vH
	lH := rH
	for {
		if t.mode == ModeRR {
			t.rr.Revoke(tx, uint64(lH))
		}
		next := t.loadLink(tx, tid, lH, &t.ar.At(lH).left)
		if next.IsNil() {
			break
		}
		parentOfL = lH
		lH = next
	}
	l := t.ar.At(lH)
	// Move the successor's key up, then splice the successor out by
	// promoting its right child.
	t.ar.At(vH).key.Store(tx, t.loadWord(tx, tid, lH, &l.key))
	promoted := uint64(t.loadLink(tx, tid, lH, &l.right))
	if parentOfL == vH {
		t.ar.At(vH).right.Store(tx, promoted)
	} else {
		t.ar.At(parentOfL).left.Store(tx, promoted)
	}
	// The extracted node was already revoked in the walk above.
	switch t.mode {
	case ModeRR, ModeHTM:
		tx.OnCommit(func() { t.ar.Free(tid, lH) })
	}
}

// Snapshot implements sets.Set via an in-order walk (quiescence required).
func (t *Internal) Snapshot() []uint64 {
	var out []uint64
	var walk func(h arena.Handle)
	walk = func(h arena.Handle) {
		if h.IsNil() {
			return
		}
		n := t.ar.At(h)
		walk(arena.Handle(n.left.Raw()))
		out = append(out, n.key.Raw())
		walk(arena.Handle(n.right.Raw()))
	}
	walk(arena.Handle(t.ar.At(t.root).left.Raw()))
	return out
}

// ValidateBST checks the BST invariant over the whole tree (test helper;
// quiescence required).
func (t *Internal) ValidateBST() bool {
	ok := true
	var walk func(h arena.Handle, lo, hi uint64)
	walk = func(h arena.Handle, lo, hi uint64) {
		if h.IsNil() || !ok {
			return
		}
		n := t.ar.At(h)
		k := n.key.Raw()
		if k < lo || k >= hi {
			ok = false
			return
		}
		walk(arena.Handle(n.left.Raw()), lo, k)
		walk(arena.Handle(n.right.Raw()), k+1, hi)
	}
	walk(arena.Handle(t.ar.At(t.root).left.Raw()), 0, sent2)
	return ok
}
