#!/bin/sh
cd /root/repo/results
for f in 2 3 4 5 6 7; do
  /tmp/benchfig -fig $f -ops 25000 -trials 2 -treebits 18 -threads 1,4,8 > fig$f.tsv 2> fig$f.err
  echo "fig$f done $(date +%H:%M:%S)" >> progress.log
done
echo ALLDONE >> progress.log
