package list

import (
	"testing"

	"hohtx/internal/arena"
	"hohtx/internal/stm"
)

// guardHarness builds a guarded HTM-mode list holding {1,2,3} and then
// violates the reclamation protocol on purpose: node 2 is freed while still
// linked, exactly the bug class (premature free of a reachable node) the
// sanitizer exists to catch.
func guardHarness(t *testing.T, sink func(arena.GuardEvent)) (*List, arena.Handle) {
	t.Helper()
	l := New(Config{Mode: ModeHTM, Threads: 2, Guard: true, GuardSink: sink})
	l.Register(0)
	for _, k := range []uint64{1, 2, 3} {
		if !l.Insert(0, k) {
			t.Fatalf("setup insert %d failed", k)
		}
	}
	h1 := arena.Handle(l.ar.At(l.head).next.Raw())
	h2 := arena.Handle(l.ar.At(h1).next.Raw())
	l.ar.Free(0, h2) // deliberate use-after-free setup: node 2 is still linked
	return l, h2
}

// TestGuardDetectsCommittedUAF: a traversal that reads the freed node's
// poisoned key and then commits is a true use-after-free and must surface
// through the sink with the victim's audit trail.
func TestGuardDetectsCommittedUAF(t *testing.T) {
	var events []arena.GuardEvent
	l, h2 := guardHarness(t, func(ev arena.GuardEvent) { events = append(events, ev) })

	// The poisoned key reads as PoisonWord (≫ any real key), so the search
	// stops at node 2 and commits believing 3 is absent — a silent wrong
	// answer without the sanitizer.
	if l.Lookup(0, 3) {
		t.Fatal("lookup found 3 through a poisoned node")
	}
	if len(events) != 1 {
		t.Fatalf("sink received %d events, want 1", len(events))
	}
	if events[0].H != h2 || events[0].Audit.Frees != 1 {
		t.Fatalf("event %+v does not name the freed node %v", events[0], h2)
	}
	gs := l.GuardStats()
	if gs.Violations != 1 || gs.PoisonReads == 0 {
		t.Fatalf("guard stats %+v, want 1 violation backed by poison reads", gs)
	}
}

// TestGuardBenignDoomedReaderNotCounted: an attempt that reads poison but
// aborts is the expected doomed-reader pattern (see the arena package
// comment) and must count as a poison read, never as a violation.
func TestGuardBenignDoomedReaderNotCounted(t *testing.T) {
	l, h2 := guardHarness(t, func(ev arena.GuardEvent) {
		t.Errorf("benign doomed read reported as violation: %v", ev)
	})

	attempt := 0
	l.rt.Atomic(func(tx *stm.Tx) {
		attempt++
		if attempt == 1 {
			_ = l.loadWord(tx, 0, h2, &l.ar.At(h2).key) // doomed read
			tx.Restart()                                // ...that never commits
		}
	})
	gs := l.GuardStats()
	if gs.PoisonReads == 0 {
		t.Fatal("doomed poison read was not counted")
	}
	if gs.Violations != 0 {
		t.Fatalf("aborted attempt produced %d violations", gs.Violations)
	}
}

// TestGuardPoisonedLinkDefusesToNil: a link load that observes poison must
// yield arena.Nil rather than a handle with the poison's user bits set
// (which At would reject with a panic even for benign doomed readers).
func TestGuardPoisonedLinkDefusesToNil(t *testing.T) {
	l, h2 := guardHarness(t, func(arena.GuardEvent) {})
	attempt := 0
	l.rt.Atomic(func(tx *stm.Tx) {
		attempt++
		if attempt == 1 {
			if h := l.loadLink(tx, 0, h2, &l.ar.At(h2).next); !h.IsNil() {
				t.Errorf("poisoned link loaded as %v, want Nil", h)
			}
			tx.Restart()
		}
	})
}
