package stm

import "sync/atomic"

// Cells.
//
// A cell is one transactionally-managed memory location: a version lock
// word plus an atomically accessed value word. The version lock encoding is
// TL2's: even values are commit timestamps, odd values mean "locked by a
// committing writer" and carry the pre-lock version in the remaining bits.
// Versions only ever increase, and recycling nodes that contain cells is
// safe under two rules. First, a reused cell keeps its version history, so
// a transaction that read the cell before the recycle can never
// revalidate. Second — and easy to miss — the freeing code must *retire*
// each cell's version (Word.Retire) past the current clock before the slot
// can be reused: a transaction that merely holds a stale *path* to the
// node (it read the link that pointed there before the unlinking commit's
// write-back) has not read the node's cells yet, and a fresh first read at
// the cell's old version would validate against the stale snapshot. For a
// read-only transaction, which never revalidates its read set at commit,
// that fresh read would assemble a zombie snapshot out of the recycled
// node's raw-initialized values and commit it. Retiring the versions makes
// such a read force a snapshot extension, which fails on the bumped link
// cell and aborts the doomed reader — the software analog of the hardware
// conflict that would have aborted it under real HTM.

const lockedBit = uint64(1)

// Word is a transactional 64-bit cell. It is the workhorse cell type: data
// structure keys, link handles (arena.Handle values) and all revocable
// reservation metadata are stored in Words.
//
// The zero Word is ready to use and holds zero. Words must not be copied
// after first use.
type Word struct {
	m atomic.Uint64 // version lock
	v atomic.Uint64 // value
}

// Load returns the cell's value as of the transaction's snapshot, aborting
// the transaction (by panicking with an internal sentinel that Atomic
// intercepts) if a consistent value cannot be obtained.
func (w *Word) Load(tx *Tx) uint64 {
	if val, ok := tx.findWrite(&w.m); ok {
		return val
	}
	for spins := 0; ; spins++ {
		v1 := w.m.Load()
		if v1&lockedBit == 0 {
			if v1 > tx.rv {
				// The cell committed after our snapshot; try to slide the
				// snapshot forward instead of aborting. Spelled out (rather
				// than tx.extend(v1)) so the common validation inlines; the
				// lazy-clock advance is GV5-only.
				if newRv := tx.rt.now(); newRv >= v1 {
					tx.extendTo(newRv)
				} else {
					tx.extendTo(tx.advanceClock(v1))
				}
				continue
			}
			val := w.v.Load()
			if w.m.Load() == v1 {
				tx.recordRead(&w.m, v1)
				return val
			}
			// Changed underneath us; retry the double-check.
			continue
		}
		// Locked by a committing writer: wait briefly, then give up.
		if spins >= readLockSpins {
			tx.conflict = &w.m
			tx.abort(CauseReadConflict)
		}
		pause(spins)
	}
}

// Store buffers a write of x to the cell; the write takes effect if and
// only if the transaction commits.
func (w *Word) Store(tx *Tx, x uint64) {
	tx.writeWord(&w.m, &w.v, x)
}

// Init sets the cell's value without any transaction. It must only be used
// before the cell is shared (e.g. while initializing a freshly allocated
// node that no other goroutine can reach yet).
func (w *Word) Init(x uint64) { w.v.Store(x) }

// Raw returns the cell's current value without transactional protection.
// It is intended for statistics, debug printing and single-threaded
// verification; the value may be mid-commit torn with respect to other
// cells.
func (w *Word) Raw() uint64 { return w.v.Load() }

// Poison overwrites the cell's value with sentinel x without touching the
// version lock, for the arena's guard (use-after-free sanitizer) mode.
// Unlike Init, the cell may still be reachable through stale handles; the
// sentinel makes such a read *observable* to the sanitizer. Poison relies
// on the freeing code having already retired the cell (Retire): with the
// version lifted past every pre-free snapshot, a doomed reader's load of
// the sentinel cannot validate, so the only reads that can return it are
// made by transactions whose snapshot postdates the free — true
// use-after-frees, which the sanitizer reports. The store is atomic, so
// racing readers stay race-detector clean.
func (w *Word) Poison(x uint64) { w.v.Store(x) }

// Retire lifts the cell's version lock to at least ver without writing the
// value, where ver is an even fence obtained from Runtime.VersionFence.
// Freeing code calls it on every cell of a node leaving a structure, per
// the recycling rules in the package comment: a transaction whose snapshot
// predates the free then cannot take a fresh read of the dead cell — the
// read observes a version above its snapshot, forces an extension, and the
// extension fails on the (bumped) cell whose rewrite unlinked the node.
// Transactions that reach the slot's next incarnation legitimately are
// unaffected, because the commit that republishes it chooses a write
// version at or above the fence. If a committing writer transiently holds
// the cell's lock, Retire waits it out: any such writer reached the cell
// through the rewritten link, so it must fail its read-set validation and
// release.
func (w *Word) Retire(ver uint64) {
	for spins := 0; ; spins++ {
		cur := w.m.Load()
		if cur&lockedBit == 0 {
			if cur >= ver || w.m.CompareAndSwap(cur, ver) {
				return
			}
			continue
		}
		pause(spins)
	}
}

// Ptr is a transactional typed pointer cell, provided for library users who
// want to attach arbitrary payloads (e.g. map values) to transactional
// structures. The repository's own data structures use Word cells holding
// arena handles instead.
//
// The zero Ptr holds nil. Ptrs must not be copied after first use.
type Ptr[T any] struct {
	m atomic.Uint64
	v atomic.Pointer[T]
}

// pendingPtr is the deferred write-back object for a Ptr store.
type pendingPtr[T any] struct {
	dst *atomic.Pointer[T]
	val *T
}

func (p *pendingPtr[T]) apply() { p.dst.Store(p.val) }

// Load returns the pointer stored in the cell as of the transaction's
// snapshot.
func (p *Ptr[T]) Load(tx *Tx) *T {
	if obj, ok := tx.findWriteObj(&p.m); ok {
		pp, _ := obj.(*pendingPtr[T])
		return pp.val
	}
	for spins := 0; ; spins++ {
		v1 := p.m.Load()
		if v1&lockedBit == 0 {
			if v1 > tx.rv {
				// As in Word.Load: inline the common extension path.
				if newRv := tx.rt.now(); newRv >= v1 {
					tx.extendTo(newRv)
				} else {
					tx.extendTo(tx.advanceClock(v1))
				}
				continue
			}
			val := p.v.Load()
			if p.m.Load() == v1 {
				tx.recordRead(&p.m, v1)
				return val
			}
			continue
		}
		if spins >= readLockSpins {
			tx.conflict = &p.m
			tx.abort(CauseReadConflict)
		}
		pause(spins)
	}
}

// Store buffers a write of x to the cell.
func (p *Ptr[T]) Store(tx *Tx, x *T) {
	tx.writeObj(&p.m, &pendingPtr[T]{dst: &p.v, val: x})
}

// Init sets the cell without a transaction; see Word.Init.
func (p *Ptr[T]) Init(x *T) { p.v.Store(x) }

// Raw returns the current pointer without transactional protection.
func (p *Ptr[T]) Raw() *T { return p.v.Load() }
