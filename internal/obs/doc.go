// Package obs is the repository's zero-dependency observability layer:
// log₂-bucket latency histograms, a sampled per-thread flight recorder of
// transaction lifecycle events with who-aborted-whom attribution, gauge
// registration, and an export surface (JSON snapshots, Prometheus text
// format, pprof) served by Registry + Serve.
//
// The paper's claims are about distributions, not totals — how long a
// removed node's memory stays unreachable before reuse, how long
// reservations are held, where aborts cluster — so the aggregate counters
// in stm.Stats and reclaim.Stats are not enough. Everything here is
// compiled in unconditionally but sampling-gated: with no Domain attached
// the cost at an instrumented site is one nil check, and with a Domain
// attached but sampling disabled it is one atomic load and one branch per
// event (see Domain.Sampled and the before/after microbenchmark in
// internal/stm).
//
// Histogram names are package-level constants (HistCommitNs, HistRetireNs,
// …) so dashboards and tests can refer to them symbolically. Two probe
// layers exist: the transaction-level probes used by internal/stm and
// internal/reclaim, and the serving-level probes (ServeProbe, plus
// HistLeaseWaitNs) used by internal/serve for per-verb service times and
// lease-queue wait times.
//
// The package deliberately depends only on the standard library and
// internal/pad, so every runtime package (stm, arena, core, reclaim,
// serve) can import it without cycles.
package obs
