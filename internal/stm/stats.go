package stm

import (
	"fmt"
	"sync/atomic"

	"hohtx/internal/pad"
)

// statShards spreads counter updates across cache lines to keep statistics
// collection from becoming its own scalability bottleneck. Must stay a
// power of two: shard selection masks with statShards-1.
const statShards = 16

type statShard struct {
	commits       atomic.Uint64
	serialCommits atomic.Uint64
	extensions    atomic.Uint64
	clockCASes    atomic.Uint64
	commitSlow    atomic.Uint64
	aborts        [numCauses]atomic.Uint64
	batch         [BatchBuckets]batchShard
	_             pad.Line
}

type batchShard struct {
	txs    atomic.Uint64
	ops    atomic.Uint64
	aborts atomic.Uint64
	serial atomic.Uint64
}

type statCounters struct {
	shards [statShards]statShard
}

func (s *statCounters) shard(tx *Tx) *statShard {
	return &s.shards[tx.rng&(statShards-1)]
}

func (s *statCounters) record(tx *Tx, serial bool) {
	sh := s.shard(tx)
	sh.commits.Add(1)
	if serial {
		sh.serialCommits.Add(1)
	}
	s.flushTx(sh, tx)
}

// recordBatch attributes one committed batch transaction to its size
// bucket: the speculative attempts it burned before committing and
// whether it had to fall back to serial mode.
func (s *statCounters) recordBatch(tx *Tx, n int, aborted uint64, serial bool) {
	b := &s.shard(tx).batch[BatchBucket(n)]
	b.txs.Add(1)
	b.ops.Add(uint64(n))
	if aborted > 0 {
		b.aborts.Add(aborted)
	}
	if serial {
		b.serial.Add(1)
	}
}

func (s *statCounters) recordAbort(tx *Tx) {
	sh := s.shard(tx)
	sh.aborts[tx.cause].Add(1)
	s.flushTx(sh, tx)
}

// flushTx folds the transaction-local counters into the shard.
func (s *statCounters) flushTx(sh *statShard, tx *Tx) {
	if tx.extensions > 0 {
		sh.extensions.Add(tx.extensions)
		tx.extensions = 0
	}
	if tx.clockCASes > 0 {
		sh.clockCASes.Add(tx.clockCASes)
		tx.clockCASes = 0
	}
	if tx.slowPaths > 0 {
		sh.commitSlow.Add(tx.slowPaths)
		tx.slowPaths = 0
	}
}

// Stats is a consistent-enough snapshot of a runtime's transaction
// statistics (counters are read without mutual exclusion; totals may lag
// in-flight transactions by a few counts).
type Stats struct {
	Commits       uint64
	SerialCommits uint64
	Extensions    uint64
	Aborts        [int(numCauses)]uint64

	// ClockCASes counts CAS attempts on the global clock pair. Under GV1
	// it is always zero (writers use Add); under GV5 it measures how much
	// clock traffic validation-driven advances actually generate.
	ClockCASes uint64
	// BiasRevocations counts serial-mode writers that found the commit
	// lock reader-biased and had to revoke it (see biaslock.go).
	BiasRevocations uint64
	// WriterWaits counts spin-waits on claimed commit slots, from both
	// revocation sweeps and lazy-clock drains.
	WriterWaits uint64
	// CommitSlowPath counts speculative commits that fell through to the
	// underlying rwlock (bias revoked, or slot hash collision).
	CommitSlowPath uint64

	// Batch breaks batch transactions (AtomicBatchT) down by batch-size
	// bucket; Batch[i] covers sizes [2^i, 2^(i+1)) with the last bucket
	// open-ended. Single-op transactions do not appear here.
	Batch [BatchBuckets]BatchStat
}

// BatchBuckets is the number of log₂ batch-size buckets tracked by the
// runtime: 1, 2–3, 4–7, …, with the last bucket covering ≥ 2^(BatchBuckets-1).
const BatchBuckets = 9

// BatchBucket maps a batch size (≥ 1) to its bucket index: floor(log₂ n),
// capped at BatchBuckets-1.
func BatchBucket(n int) int {
	b := 0
	for n > 1 && b < BatchBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// BatchBucketLabel names bucket i by its lower bound ("1", "2", "4", …),
// usable directly in metric names.
func BatchBucketLabel(i int) string {
	return fmt.Sprint(1 << uint(i))
}

// BatchStat is the per-bucket slice of batch-transaction statistics.
type BatchStat struct {
	// Txs counts committed batch transactions in this size bucket.
	Txs uint64
	// Ops counts the operations those transactions carried.
	Ops uint64
	// Aborts counts the speculative attempts they burned before
	// committing (capacity overflows, conflicts, …).
	Aborts uint64
	// Serial counts the commits that needed the serial fallback — the
	// per-batch-size face of the capacity cliff.
	Serial uint64
}

// TotalAborts sums aborts across all causes.
func (s Stats) TotalAborts() uint64 {
	var t uint64
	for _, a := range s.Aborts {
		t += a
	}
	return t
}

// AbortRate returns aborted attempts per committed transaction.
func (s Stats) AbortRate() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Commits)
}

// String renders the snapshot compactly for logs and examples.
func (s Stats) String() string {
	return fmt.Sprintf(
		"commits=%d serial=%d extensions=%d aborts=%d (read=%d validate=%d wlock=%d capacity=%d explicit=%d) clockcas=%d revoke=%d wwait=%d slow=%d",
		s.Commits, s.SerialCommits, s.Extensions, s.TotalAborts(),
		s.Aborts[CauseReadConflict], s.Aborts[CauseValidation],
		s.Aborts[CauseWriteLock], s.Aborts[CauseCapacity], s.Aborts[CauseExplicit],
		s.ClockCASes, s.BiasRevocations, s.WriterWaits, s.CommitSlowPath)
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	var out Stats
	for i := range rt.stats.shards {
		sh := &rt.stats.shards[i]
		out.Commits += sh.commits.Load()
		out.SerialCommits += sh.serialCommits.Load()
		out.Extensions += sh.extensions.Load()
		out.ClockCASes += sh.clockCASes.Load()
		out.CommitSlowPath += sh.commitSlow.Load()
		for c := 0; c < int(numCauses); c++ {
			out.Aborts[c] += sh.aborts[c].Load()
		}
		for b := 0; b < BatchBuckets; b++ {
			out.Batch[b].Txs += sh.batch[b].txs.Load()
			out.Batch[b].Ops += sh.batch[b].ops.Load()
			out.Batch[b].Aborts += sh.batch[b].aborts.Load()
			out.Batch[b].Serial += sh.batch[b].serial.Load()
		}
	}
	out.BiasRevocations = rt.commitLock.revocations.Load()
	out.WriterWaits = rt.commitLock.writerWaits.Load()
	return out
}

// ResetStats zeroes the runtime's counters (benchmarks call this between
// measurement phases).
func (rt *Runtime) ResetStats() {
	for i := range rt.stats.shards {
		sh := &rt.stats.shards[i]
		sh.commits.Store(0)
		sh.serialCommits.Store(0)
		sh.extensions.Store(0)
		sh.clockCASes.Store(0)
		sh.commitSlow.Store(0)
		for c := 0; c < int(numCauses); c++ {
			sh.aborts[c].Store(0)
		}
		for b := 0; b < BatchBuckets; b++ {
			sh.batch[b].txs.Store(0)
			sh.batch[b].ops.Store(0)
			sh.batch[b].aborts.Store(0)
			sh.batch[b].serial.Store(0)
		}
	}
	rt.commitLock.revocations.Store(0)
	rt.commitLock.writerWaits.Store(0)
}
