package list

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hohtx/internal/core"
	"hohtx/internal/obs"
	"hohtx/internal/sets"
)

func TestAscendSequential(t *testing.T) {
	for _, k := range core.Kinds() {
		l := New(Config{Mode: ModeRR, RRKind: k, Threads: 1, Window: core.Window{W: 3}})
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			for key := uint64(2); key <= 40; key += 2 {
				l.Insert(0, key)
			}
			var got []uint64
			l.Ascend(0, 0, func(key uint64) bool {
				got = append(got, key)
				return true
			})
			if len(got) != 20 {
				t.Fatalf("ascend yielded %d keys, want 20", len(got))
			}
			for i, key := range got {
				if key != uint64(2*(i+1)) {
					t.Fatalf("key[%d] = %d", i, key)
				}
			}
			// From a midpoint.
			got = got[:0]
			l.Ascend(0, 21, func(key uint64) bool {
				got = append(got, key)
				return true
			})
			if len(got) != 10 || got[0] != 22 {
				t.Fatalf("ascend from 21: %v", got)
			}
			// Early stop.
			count := 0
			l.Ascend(0, 0, func(key uint64) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Fatalf("early stop delivered %d", count)
			}
			// The early stop must not leak a hold into the next op.
			if !l.Lookup(0, 2) {
				t.Fatal("lookup broken after early-stopped ascend")
			}
		})
	}
}

func TestAscendHTMMode(t *testing.T) {
	l := New(Config{Mode: ModeHTM, Threads: 1})
	l.Register(0)
	for key := uint64(1); key <= 10; key++ {
		l.Insert(0, key)
	}
	var n int
	l.Ascend(0, 0, func(uint64) bool { n++; return true })
	if n != 10 {
		t.Fatalf("HTM ascend yielded %d", n)
	}
}

// TestAscendUnsupportedModes pins the typed-error contract: the
// deferred-reclamation modes refuse to scan with sets.ErrScanUnsupported
// (they used to panic, which an ASCEND wire request could trigger
// remotely) and never call fn.
func TestAscendUnsupportedModes(t *testing.T) {
	for _, mode := range []Mode{ModeTMHP, ModeTMHE, ModeTMVBR, ModeREF, ModeER} {
		l := New(Config{Mode: mode, Threads: 1, Window: core.Window{W: 4}})
		l.Register(0)
		l.Insert(0, 1)
		called := false
		err := l.Ascend(0, 0, func(uint64) bool { called = true; return true })
		if !errors.Is(err, sets.ErrScanUnsupported) {
			t.Errorf("mode %d: Ascend err = %v, want ErrScanUnsupported", mode, err)
		}
		if called {
			t.Errorf("mode %d: fn called despite unsupported scan", mode)
		}
		if l.CanAscend() {
			t.Errorf("mode %d: CanAscend = true", mode)
		}
	}
	for _, mode := range []Mode{ModeRR, ModeHTM} {
		l := New(Config{Mode: mode, Threads: 1})
		if !l.CanAscend() {
			t.Errorf("mode %d: CanAscend = false", mode)
		}
	}
}

// TestAscendPanicReleasesHold is the hold-leak regression: a consumer
// that panics mid-scan must not leave the iterator's reservation behind.
// Before the deferred release, the leaked hold made the tid's next
// operation resume from the stale reserved node — Lookup of a smaller
// present key returned false — and the node stayed pinned in the
// reservation table.
func TestAscendPanicReleasesHold(t *testing.T) {
	l := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 2,
		Window: core.Window{W: 2, NoScatter: true}})
	l.Register(0)
	l.Register(1)
	baseline := l.LiveNodes()
	for k := uint64(1); k <= 20; k++ {
		l.Insert(0, k)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the consumer panic to propagate")
			}
		}()
		_ = l.Ascend(0, 0, func(k uint64) bool {
			if k == 6 {
				panic("consumer bug")
			}
			return true
		})
	}()
	// The genuinely failing property under the bug: the same tid's next
	// operation must start from a clean position, not the stale hold.
	if !l.Lookup(0, 1) {
		t.Fatal("Lookup(1) false after panicking scan: reservation hold leaked")
	}
	// And the held node must be reclaimable (the ISSUE's wording): every
	// key removes cleanly and memory returns to the baseline, precisely.
	for k := uint64(1); k <= 20; k++ {
		if !l.Remove(1, k) {
			t.Fatalf("Remove(%d) failed after panicking scan", k)
		}
	}
	if live := l.LiveNodes(); live != baseline {
		t.Fatalf("live nodes = %d after removing all, want baseline %d", live, baseline)
	}
}

// TestAscendRenavigation pins the cursor-revocation path: removing the
// node the iterator reserved forces the next window to re-navigate from
// the head by key, which the ascend_renavigations histogram counts.
func TestAscendRenavigation(t *testing.T) {
	dom := obs.NewDomain(obs.DomainConfig{Name: "iter-test", Threads: 2, SampleShift: 0})
	l := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 2,
		Window: core.Window{W: 2, NoScatter: true}, Obs: dom})
	l.Register(0)
	l.Register(1)
	for k := uint64(1); k <= 30; k++ {
		l.Insert(0, k)
	}
	// With W=2 and no scatter the first window batches keys 1,2 and lands
	// its hold on the node holding key 2. Removing that node from another
	// tid revokes the cursor mid-scan.
	var got []uint64
	if err := l.Ascend(0, 0, func(k uint64) bool {
		if k == 1 {
			if !l.Remove(1, 2) {
				t.Fatal("Remove(2) failed")
			}
		}
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	// Key 2 was batched (and so delivered) before its removal; everything
	// else was present throughout. Exactly-once, ascending, complete.
	if len(got) != 30 {
		t.Fatalf("delivered %d keys, want 30: %v", len(got), got)
	}
	for i, k := range got {
		if k != uint64(i+1) {
			t.Fatalf("got[%d] = %d, want %d", i, k, i+1)
		}
	}
	snap := dom.Snapshot()
	if h, ok := snap.Hist(obs.HistAscendRenavs); !ok || h.Sum < 1 {
		t.Fatalf("ascend_renavigations sum = %+v, want >= 1", h)
	}
	if h, ok := snap.Hist(obs.HistAscendWindows); !ok || h.Count != 1 || h.Sum < 2 {
		t.Fatalf("ascend_windows = %+v, want one scan of >= 2 windows", h)
	}
}

// TestAscendConcurrent checks the weak-consistency contract: keys present
// for the whole iteration are delivered exactly once, in order, while
// concurrent churn removes and reinserts other keys (with immediate
// reclamation putting their nodes back into circulation).
func TestAscendConcurrent(t *testing.T) {
	const stable = 50 // odd keys 1..99 stay put
	l := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 4, Window: core.Window{W: 2}})
	l.Register(0)
	for k := uint64(1); k <= 99; k += 2 {
		l.Insert(0, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= 3; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			l.Register(tid)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64((i*2+tid*4)%100) + 100 // churn keys 100..199
				l.Insert(tid, k)
				l.Remove(tid, k)
			}
		}(w)
	}
	var violations atomic.Int64
	for round := 0; round < 30; round++ {
		var got []uint64
		l.Ascend(0, 0, func(key uint64) bool {
			got = append(got, key)
			return true
		})
		seen := 0
		lastKey := uint64(0)
		for _, k := range got {
			if k <= lastKey {
				violations.Add(1) // out of order or duplicate
			}
			lastKey = k
			if k <= 99 && k%2 == 1 {
				seen++
			}
		}
		if seen != stable {
			t.Fatalf("round %d: saw %d of %d stable keys", round, seen, stable)
		}
	}
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d ordering violations", violations.Load())
	}
}
