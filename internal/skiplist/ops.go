package skiplist

import (
	"hohtx/internal/arena"
	"hohtx/internal/stm"
)

// Traversal engine.
//
// Searches descend from the head's top level, advancing right while the
// next key is smaller and dropping a level otherwise. Window cuts reserve
// the current node and stash the current level in thread-local state;
// resuming from a reserved node at a remembered level is a correct search
// continuation because the node is live (not revoked), its key is
// immutable, and every key greater than it is reachable from it.
//
// Updates need predecessor sets, which must be collected inside the
// transaction that performs the update: an insert of height h stops
// descending at level h so predecessor collection for levels h-1..0 runs
// in the final transaction, and a remove finishes the descent from its
// first match in one transaction. A remove that resumed *below* the
// victim's top level cannot see the predecessors above it; it restarts
// with a single uncut traversal (rare: it requires a window cut to have
// landed under the victim's tower).

// searchCtx carries one window transaction's traversal frame.
type searchCtx struct {
	tx    *stm.Tx
	tid   int
	curr  arena.Handle
	level int
	steps int
}

// advanceResult reports why a descent stopped.
type advanceResult uint8

const (
	// advMatched: the next node at the frame's level holds the key; the
	// frame points at its predecessor at that level.
	advMatched advanceResult = iota
	// advStopped: the frame is at the stop level and cannot advance
	// (next key is greater or nil). With stopLevel 0 this means absent.
	advStopped
	// advCut: the window budget is exhausted at a cuttable level.
	advCut
)

// run descends toward key until a terminal condition. The frame never
// drops below stopLevel, and never cuts below noCutBelow.
func (s *SkipList) run(c *searchCtx, key uint64, budget, noCutBelow, stopLevel int) advanceResult {
	for {
		n := s.ar.At(c.curr)
		nextH := s.loadLink(c.tx, c.tid, c.curr, &n.next[c.level])
		if !nextH.IsNil() {
			nk := s.loadWord(c.tx, c.tid, nextH, &s.ar.At(nextH).key)
			if nk == key {
				return advMatched
			}
			if nk < key {
				if c.steps >= budget && c.level >= noCutBelow {
					return advCut
				}
				c.curr = nextH
				c.steps++
				continue
			}
		}
		if c.level <= stopLevel {
			return advStopped
		}
		c.level--
	}
}

// windowStart resolves the traversal origin for one transaction; the
// resume protocols are the list engine's (see its protocol note).
func (s *SkipList) windowStart(tx *stm.Tx, tid int) (arena.Handle, int, bool) {
	switch s.mode {
	case ModeRR:
		if r := s.rr.Get(tx, tid); r != 0 {
			return arena.Handle(r), s.threads[tid].level, true
		}
	case ModeTMHE:
		st := s.threads[tid].start
		if !st.IsNil() && s.loadWord(tx, tid, st, &s.ar.At(st).dead) == 0 {
			return st, s.threads[tid].level, true
		}
	case ModeTMVBR:
		// Nothing pins the held start; bracket the dead load with
		// arena-generation checks (see the list engine's protocol note).
		st := s.threads[tid].start
		if !st.IsNil() && s.ar.Live(st) &&
			s.loadWord(tx, tid, st, &s.ar.At(st).dead) == 0 && s.ar.Live(st) {
			return st, s.threads[tid].level, true
		}
	}
	return s.head, MaxHeight - 1, false
}

// cutWindow attaches the frame's position to the thread for the next
// transaction to resume from.
func (s *SkipList) cutWindow(c *searchCtx, held bool) {
	ts := &s.threads[c.tid]
	curr, level := c.curr, c.level
	switch s.mode {
	case ModeRR:
		if held {
			s.rr.Release(c.tx, c.tid)
		}
		s.rr.Reserve(c.tx, c.tid, uint64(curr))
		c.tx.OnCommit(func() { ts.level = level })
	case ModeTMHE:
		slot := ts.parity & 1
		s.he.Protect(c.tid, slot, curr)
		// Ordering re-check; see the list engine's protocol note.
		_ = s.loadWord(c.tx, c.tid, curr, &s.ar.At(curr).dead)
		c.tx.OnCommit(func() {
			ts.start = curr
			ts.level = level
			s.he.Protect(c.tid, slot^1, 0)
			ts.parity++
		})
	case ModeTMVBR:
		c.tx.OnCommit(func() {
			ts.start = curr
			ts.level = level
		})
	}
}

// release drops the hold at operation end.
func (s *SkipList) release(c *searchCtx, held bool) {
	switch s.mode {
	case ModeRR:
		if held {
			s.rr.Release(c.tx, c.tid)
		}
	case ModeTMHE:
		tid := c.tid
		c.tx.OnCommit(func() {
			s.threads[tid].start = arena.Nil
			s.he.ClearSlots(tid)
		})
	case ModeTMVBR:
		tid := c.tid
		c.tx.OnCommit(func() { s.threads[tid].start = arena.Nil })
	}
}

// dropHold abandons a resumed position mid-transaction so the operation's
// next attempt restarts from the head.
func (s *SkipList) dropHold(c *searchCtx, held bool) {
	switch s.mode {
	case ModeRR:
		if held {
			s.rr.Release(c.tx, c.tid)
		}
	case ModeTMHE, ModeTMVBR:
		s.release(c, held)
	}
}

// budgetFor computes a window budget (unbounded for ModeHTM or when the
// operation demands a single uncut traversal).
func (s *SkipList) budgetFor(tx *stm.Tx, held, full bool) int {
	if s.mode == ModeHTM || full {
		return int(^uint(0) >> 1)
	}
	if held {
		return s.win.Next()
	}
	return s.win.First(tx)
}

// Lookup implements sets.Set.
func (s *SkipList) Lookup(tid int, key uint64) bool {
	s.threads[tid].ops++
	var res bool
	for {
		done := false
		s.rt.AtomicT(tid, func(tx *stm.Tx) {
			done, res = false, false
			start, level, held := s.windowStart(tx, tid)
			c := &searchCtx{tx: tx, tid: tid, curr: start, level: level}
			switch s.run(c, key, s.budgetFor(tx, held, false), 0, 0) {
			case advMatched:
				res = true
				s.release(c, held)
				done = true
			case advStopped:
				res = false
				s.release(c, held)
				done = true
			case advCut:
				s.cutWindow(c, held)
			}
		})
		if done {
			return res
		}
	}
}

// collectPreds advances the frame along each level from c.level down to 0,
// recording the final predecessor per level in preds. It returns false
// (duplicate found) if a node with the key is encountered; stopAt, when
// non-Nil, treats that node as the search boundary instead (the remove
// path, where the "duplicate" is the victim itself).
func (s *SkipList) collectPreds(c *searchCtx, key uint64, stopAt arena.Handle, preds *[MaxHeight]arena.Handle) bool {
	for l := c.level; l >= 0; l-- {
		c.level = l
		for {
			n := s.ar.At(c.curr)
			nextH := s.loadLink(c.tx, c.tid, c.curr, &n.next[l])
			if nextH.IsNil() || nextH == stopAt {
				break
			}
			nk := s.loadWord(c.tx, c.tid, nextH, &s.ar.At(nextH).key)
			if nk == key {
				if stopAt.IsNil() {
					return false // duplicate insert
				}
				break // defensive: distinct node with equal key cannot exist
			}
			if nk > key {
				break
			}
			c.curr = nextH
		}
		preds[l] = c.curr
	}
	return true
}

// Insert implements sets.Set. The new node's height is drawn before the
// traversal so window cuts can stop at the level where predecessor
// collection must begin.
func (s *SkipList) Insert(tid int, key uint64) bool {
	ts := &s.threads[tid]
	ts.ops++
	h := s.randHeight(tid)
	var res bool
	for {
		done := false
		s.rt.AtomicT(tid, func(tx *stm.Tx) {
			done, res = false, false
			start, level, held := s.windowStart(tx, tid)
			c := &searchCtx{tx: tx, tid: tid, curr: start, level: level}
			budget := s.budgetFor(tx, held, false)

			// Phase 1: hand-over-hand down to level h (cuts allowed, the
			// descent stops at level h so phase 2 owns h-1..0).
			if c.level >= h {
				switch s.run(c, key, budget, h, h) {
				case advMatched:
					res = false // key exists (met at a level >= h)
					s.release(c, held)
					done = true
					return
				case advCut:
					s.cutWindow(c, held)
					return
				case advStopped:
					c.level-- // step below the boundary into phase 2
				}
			}
			// Phase 2: collect predecessors for levels min(c.level, h-1)
			// down to 0 and link, all in this transaction.
			var preds [MaxHeight]arena.Handle
			for l := h - 1; l > c.level; l-- {
				// Resume level was already below h-1 (possible only on
				// the first window when h == MaxHeight): the untouched
				// upper levels' predecessor is the traversal origin.
				preds[l] = c.curr
			}
			if !s.collectPreds(c, key, arena.Nil, &preds) {
				res = false // duplicate at a level below h
				s.release(c, held)
				done = true
				return
			}
			nh := s.ar.Alloc(tid)
			if s.he != nil {
				s.he.StampAlloc(nh)
			}
			tx.OnAbort(func() { s.ar.Free(tid, nh) })
			n := s.ar.At(nh)
			n.key.Store(tx, key)
			n.height.Store(tx, uint64(h))
			n.dead.Store(tx, 0)
			for l := 0; l < h; l++ {
				p := s.ar.At(preds[l])
				n.next[l].Store(tx, uint64(s.loadLink(tx, tid, preds[l], &p.next[l])))
				p.next[l].Store(tx, uint64(nh))
			}
			res = true
			s.release(c, held)
			done = true
		})
		if done {
			return res
		}
	}
}

// Remove implements sets.Set. A fresh traversal first meets the victim at
// its top level, from which the victim's predecessors at every level are
// collected and the unlink + Revoke + free happen in one transaction (a
// single Revoke per removal, independent of height). A resumed traversal
// can meet the victim below its top; in that case the hold is dropped and
// the operation retries with one uncut traversal.
func (s *SkipList) Remove(tid int, key uint64) bool {
	s.threads[tid].ops++
	var res bool
	full := false
	for {
		done := false
		s.rt.AtomicT(tid, func(tx *stm.Tx) {
			done, res = false, false
			start, level, held := s.windowStart(tx, tid)
			if full {
				start, level, held = s.head, MaxHeight-1, false
			}
			c := &searchCtx{tx: tx, tid: tid, curr: start, level: level}
			switch s.run(c, key, s.budgetFor(tx, held, full), 0, 0) {
			case advStopped:
				res = false
				s.release(c, held)
				done = true
				return
			case advCut:
				s.cutWindow(c, held)
				return
			case advMatched:
			}
			victim := s.loadLink(tx, tid, c.curr, &s.ar.At(c.curr).next[c.level])
			if victim.IsNil() {
				// Only a poisoned link defuses to Nil after advMatched; this
				// attempt is doomed — restart with a full descent.
				s.dropHold(c, held)
				full = true
				return
			}
			v := s.ar.At(victim)
			vh := int(s.loadWord(tx, tid, victim, &v.height))
			if c.level != vh-1 {
				// Met the victim under its tower (resumed traversal):
				// restart with a full descent that sees its top.
				s.dropHold(c, held)
				full = true
				return // done=false: retry
			}
			var preds [MaxHeight]arena.Handle
			if !s.collectPreds(c, key, victim, &preds) {
				panic("skiplist: unreachable: duplicate key beside victim")
			}
			for l := 0; l < vh; l++ {
				s.ar.At(preds[l]).next[l].Store(tx, uint64(s.loadLink(tx, tid, victim, &v.next[l])))
			}
			switch s.mode {
			case ModeRR:
				s.rr.Revoke(tx, uint64(victim))
				tx.OnCommit(func() { s.ar.Free(tid, victim) })
			case ModeTMHE:
				v.dead.Store(tx, 1)
				stamp := s.threads[tid].ops
				tx.OnCommit(func() { s.he.Retire(tid, victim, stamp) })
			case ModeTMVBR:
				v.dead.Store(tx, 1)
				stamp := s.threads[tid].ops
				tx.OnCommit(func() { s.vbr.Retire(tid, victim, stamp) })
			default: // ModeHTM
				tx.OnCommit(func() { s.ar.Free(tid, victim) })
			}
			res = true
			s.release(c, held)
			done = true
		})
		if done {
			return res
		}
	}
}
