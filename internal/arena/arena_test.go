package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

type obj struct {
	a, b uint64
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	h := a.Alloc(0)
	if h.IsNil() {
		t.Fatal("Alloc returned Nil")
	}
	p := a.At(h)
	p.a, p.b = 1, 2
	if !a.Live(h) {
		t.Fatal("freshly allocated handle not live")
	}
	a.Free(0, h)
	if a.Live(h) {
		t.Fatal("freed handle still live")
	}
	st := a.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.Live != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecycleBumpsGeneration(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	h1 := a.Alloc(0)
	a.Free(0, h1)
	h2 := a.Alloc(0)
	if h2.Index() != h1.Index() {
		t.Fatalf("expected slot reuse: %v then %v", h1, h2)
	}
	if h2.Gen() == h1.Gen() {
		t.Fatal("recycled slot kept its generation")
	}
	if a.Live(h1) {
		t.Fatal("stale handle reports live after recycle")
	}
	if !a.Live(h2) {
		t.Fatal("new handle not live")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	h := a.Alloc(0)
	a.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(0, h)
}

func TestStaleFreePanics(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	h1 := a.Alloc(0)
	a.Free(0, h1)
	_ = a.Alloc(0) // recycles the slot
	defer func() {
		if recover() == nil {
			t.Fatal("free through stale handle did not panic")
		}
	}()
	a.Free(0, h1)
}

func TestNilHandle(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() == false")
	}
	if a.Live(Nil) {
		t.Fatal("Nil handle live")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At(Nil) did not panic")
		}
	}()
	_ = a.At(Nil)
}

func TestUserBitRejected(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	h := a.Alloc(0)
	marked := Handle(uint64(h) | userBit)
	if a.Live(marked) {
		t.Fatal("marked handle reported live")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At(marked) did not panic")
		}
	}()
	_ = a.At(marked)
}

func TestGrowthAcrossPages(t *testing.T) {
	a := New[obj](Config{Threads: 1})
	n := pageSize*2 + 3
	hs := make([]Handle, n)
	for i := range hs {
		hs[i] = a.Alloc(0)
		a.At(hs[i]).a = uint64(i)
	}
	for i := range hs {
		if got := a.At(hs[i]).a; got != uint64(i) {
			t.Fatalf("slot %d corrupted: %d", i, got)
		}
	}
	st := a.Stats()
	if st.Pages < 3 {
		t.Fatalf("expected >= 3 pages, got %d", st.Pages)
	}
	if st.Live != uint64(n) {
		t.Fatalf("live = %d, want %d", st.Live, n)
	}
}

func TestMagazineOverflowToShared(t *testing.T) {
	a := New[obj](Config{Threads: 2, MagazineSize: 8})
	var hs []Handle
	for i := 0; i < 64; i++ {
		hs = append(hs, a.Alloc(0))
	}
	for _, h := range hs {
		a.Free(0, h)
	}
	if a.Stats().PoolOps == 0 {
		t.Fatal("magazine never flushed to shared pool")
	}
	// A different thread must be able to reuse those slots.
	fresh := a.Stats().Fresh
	for i := 0; i < 32; i++ {
		_ = a.Alloc(1)
	}
	if a.Stats().Fresh != fresh {
		t.Fatal("thread 1 bump-allocated instead of reusing freed slots")
	}
}

func TestSharedPolicyReuses(t *testing.T) {
	a := New[obj](Config{Threads: 2, Policy: PolicyShared})
	h := a.Alloc(0)
	a.Free(0, h)
	h2 := a.Alloc(1)
	if h2.Index() != h.Index() {
		t.Fatal("shared policy did not reuse freed slot")
	}
	if a.Stats().PoolOps < 2 {
		t.Fatal("shared policy bypassed the pool lock")
	}
}

// TestConcurrentChurn hammers alloc/free from several goroutines and then
// checks the books balance and no two live handles alias a slot.
func TestConcurrentChurn(t *testing.T) {
	for _, pol := range []Policy{PolicyLocal, PolicyShared} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			const workers = 8
			const iters = 5000
			a := New[obj](Config{Threads: workers, Policy: pol, MagazineSize: 16})
			var wg sync.WaitGroup
			liveSets := make([][]Handle, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*2654435761 + 1
					var mine []Handle
					for i := 0; i < iters; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						if rng&1 == 0 || len(mine) == 0 {
							h := a.Alloc(tid)
							a.At(h).a = uint64(tid)<<32 | uint64(i)
							mine = append(mine, h)
						} else {
							k := int(rng % uint64(len(mine)))
							a.Free(tid, mine[k])
							mine[k] = mine[len(mine)-1]
							mine = mine[:len(mine)-1]
						}
					}
					liveSets[tid] = mine
				}(w)
			}
			wg.Wait()

			var live int
			seen := make(map[uint32]Handle)
			for tid, set := range liveSets {
				for _, h := range set {
					live++
					if !a.Live(h) {
						t.Fatalf("tid %d: live handle %v reports dead", tid, h)
					}
					if prev, dup := seen[h.Index()]; dup {
						t.Fatalf("two live handles alias slot %d: %v and %v", h.Index(), prev, h)
					}
					seen[h.Index()] = h
				}
			}
			st := a.Stats()
			if st.Live != uint64(live) {
				t.Fatalf("stats live = %d, actual %d", st.Live, live)
			}
		})
	}
}

func TestFreeBatch(t *testing.T) {
	a := New[obj](Config{Threads: 1, MagazineSize: 4})
	var hs []Handle
	for i := 0; i < 20; i++ {
		hs = append(hs, a.Alloc(0))
	}
	a.FreeBatch(0, hs)
	st := a.Stats()
	if st.Frees != 20 || st.Live != 0 {
		t.Fatalf("stats after batch free: %+v", st)
	}
	for _, h := range hs {
		if a.Live(h) {
			t.Fatal("batch-freed handle still live")
		}
	}
}

// TestHandleAlgebra property-checks pack/unpack round trips.
func TestHandleAlgebra(t *testing.T) {
	f := func(idx uint32, gen uint32) bool {
		gen |= 1 // live generations are odd
		h := makeHandle(idx, gen)
		return h.Index() == idx && h.Gen() == gen&genMask && !h.IsNil()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllocFreeSequences property-checks random alloc/free programs
// against a reference model of which handles should be live.
func TestQuickAllocFreeSequences(t *testing.T) {
	f := func(script []byte) bool {
		a := New[obj](Config{Threads: 1, MagazineSize: 4})
		model := make(map[Handle]bool)
		var order []Handle
		for _, b := range script {
			if b&1 == 0 || len(order) == 0 {
				h := a.Alloc(0)
				if model[h] {
					return false // duplicate live handle
				}
				model[h] = true
				order = append(order, h)
			} else {
				k := int(b>>1) % len(order)
				h := order[k]
				a.Free(0, h)
				delete(model, h)
				order = append(order[:k], order[k+1:]...)
			}
		}
		for h := range model {
			if !a.Live(h) {
				return false
			}
		}
		return a.Stats().Live == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHandleString(t *testing.T) {
	if Nil.String() != "hnil" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
	h := makeHandle(5, 3)
	if h.String() != "h5.g3" {
		t.Errorf("String() = %q, want h5.g3", h.String())
	}
	if PolicyLocal.String() == PolicyShared.String() {
		t.Error("policy names collide")
	}
}
