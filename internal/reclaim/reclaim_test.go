package reclaim

import (
	"sync"
	"testing"

	"hohtx/internal/arena"
)

type node struct{ v uint64 }

// harness wires a scheme to a real arena so frees are observable.
func newHarness(threads int, mk func(free FreeFunc) Scheme) (*arena.Arena[node], Scheme) {
	a := arena.New[node](arena.Config{Threads: threads})
	s := mk(func(tid int, h arena.Handle) { a.Free(tid, h) })
	return a, s
}

func TestHPDefersWhileProtected(t *testing.T) {
	a, s := newHarness(2, func(f FreeFunc) Scheme {
		return NewHazardPointers(HPConfig{Threads: 2, ScanThreshold: 1, Free: f})
	})
	h := a.Alloc(0)
	s.Protect(1, 0, h) // thread 1 holds a hazard on h
	s.Retire(0, h, 10) // threshold 1: scan runs immediately
	if !a.Live(h) {
		t.Fatal("protected node was freed")
	}
	st := s.Stats()
	if st.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", st.Deferred)
	}
	s.ClearSlots(1)
	s.Flush(0, 12)
	if a.Live(h) {
		t.Fatal("unprotected node survived flush")
	}
	st = s.Stats()
	if st.Freed != 1 || st.Deferred != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if st.DelayOpsSum != 2 {
		t.Fatalf("delay = %d, want 2 (stamp 12 - 10)", st.DelayOpsSum)
	}
}

func TestHPBatchesAtThreshold(t *testing.T) {
	a, s := newHarness(1, func(f FreeFunc) Scheme {
		return NewHazardPointers(HPConfig{Threads: 1, ScanThreshold: 8, Free: f})
	})
	var hs []arena.Handle
	for i := 0; i < 7; i++ {
		h := a.Alloc(0)
		hs = append(hs, h)
		s.Retire(0, h, uint64(i))
	}
	if s.Stats().Freed != 0 {
		t.Fatal("scan ran before threshold")
	}
	h := a.Alloc(0)
	s.Retire(0, h, 7) // 8th retirement triggers the scan
	st := s.Stats()
	if st.Freed != 8 || st.Scans != 1 {
		t.Fatalf("after threshold: %+v", st)
	}
	for _, h := range hs {
		if a.Live(h) {
			t.Fatal("retired node survived scan with no hazards")
		}
	}
	if st.PeakDeferred != 8 {
		t.Fatalf("peak deferred = %d, want 8", st.PeakDeferred)
	}
}

func TestHPConcurrentChurn(t *testing.T) {
	const workers = 4
	const iters = 3000
	a, s := newHarness(workers, func(f FreeFunc) Scheme {
		return NewHazardPointers(HPConfig{Threads: workers, ScanThreshold: 16, Free: f})
	})
	// Each worker allocates, publishes a hazard briefly, retires its own
	// nodes. The scheme must never free a slot twice (arena panics) and
	// books must balance after flush.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := a.Alloc(tid)
				s.Protect(tid, 0, h)
				s.ClearSlots(tid)
				s.Retire(tid, h, uint64(i))
			}
			s.Flush(tid, iters)
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Retired != workers*iters {
		t.Fatalf("retired = %d, want %d", st.Retired, workers*iters)
	}
	if st.Freed != st.Retired {
		t.Fatalf("freed = %d, retired = %d (leak after flush with no hazards)", st.Freed, st.Retired)
	}
	if got := a.Stats().Live; got != 0 {
		t.Fatalf("arena live = %d after full reclamation", got)
	}
}

func TestEpochsBasicLifecycle(t *testing.T) {
	a, _ := newHarness(2, func(f FreeFunc) Scheme { return NewLeak(2) })
	e := NewEpochs(2, 1, func(tid int, h arena.Handle) { a.Free(tid, h) })

	e.Enter(0)
	h := a.Alloc(0)
	e.Retire(0, h, 1)
	e.Exit(0)
	if !a.Live(h) {
		// Freeing instantly would be wrong: epoch must advance twice.
		t.Fatal("node freed in its retirement epoch")
	}
	// With all threads quiescent, flush can advance and drain.
	e.Flush(0, 5)
	if a.Live(h) {
		t.Fatal("node survived epoch flush with all threads quiescent")
	}
}

func TestEpochsPinnedByActiveReader(t *testing.T) {
	a, _ := newHarness(2, func(f FreeFunc) Scheme { return NewLeak(2) })
	e := NewEpochs(2, 1, func(tid int, h arena.Handle) { a.Free(tid, h) })

	e.Enter(1) // thread 1 is a long-running reader in epoch g
	e.Enter(0)
	h := a.Alloc(0)
	e.Retire(0, h, 1)
	e.Exit(0)
	e.Flush(0, 2)
	if a.Live(h) == false {
		t.Fatal("node freed while a reader from its epoch is still active")
	}
	if e.Stats().Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", e.Stats().Deferred)
	}
	e.Exit(1)
	e.Flush(0, 3)
	if a.Live(h) {
		t.Fatal("node survived after the pinning reader exited")
	}
}

func TestEpochsConcurrent(t *testing.T) {
	const workers = 4
	const iters = 2000
	a := arena.New[node](arena.Config{Threads: workers})
	e := NewEpochs(workers, 8, func(tid int, h arena.Handle) { a.Free(tid, h) })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e.Enter(tid)
				h := a.Alloc(tid)
				e.Retire(tid, h, uint64(i))
				e.Exit(tid)
			}
			e.Flush(tid, iters)
		}(w)
	}
	wg.Wait()
	// All threads quiescent: one more flush per thread drains everything.
	for w := 0; w < workers; w++ {
		e.Flush(w, iters+1)
	}
	st := e.Stats()
	if st.Retired != workers*iters {
		t.Fatalf("retired = %d", st.Retired)
	}
	if st.Deferred != 0 {
		t.Fatalf("deferred = %d after global quiescence, want 0", st.Deferred)
	}
	if a.Stats().Live != 0 {
		t.Fatalf("arena live = %d", a.Stats().Live)
	}
}

func TestLeakNeverFrees(t *testing.T) {
	a, s := newHarness(1, func(f FreeFunc) Scheme { return NewLeak(1) })
	h := a.Alloc(0)
	s.Retire(0, h, 1)
	s.Flush(0, 2)
	if !a.Live(h) {
		t.Fatal("Leak freed a node")
	}
	st := s.Stats()
	if st.Retired != 1 || st.Freed != 0 || st.Deferred != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchemeNames(t *testing.T) {
	names := map[string]bool{}
	a := arena.New[node](arena.Config{Threads: 1})
	free := func(tid int, h arena.Handle) { a.Free(tid, h) }
	var clk uint64
	for _, s := range []Scheme{
		NewHazardPointers(HPConfig{Threads: 1, Free: free}),
		NewEpochs(1, 0, free),
		NewLeak(1),
		NewHazardEras(HEConfig{Threads: 1, Free: free}),
		NewVBR(VBRConfig{Threads: 1, Free: free,
			Clock: func() uint64 { return clk }, Tick: func() { clk += 2 }}),
	} {
		if s.Name() == "" || names[s.Name()] {
			t.Fatalf("bad or duplicate scheme name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

func TestStatsAvgDelay(t *testing.T) {
	s := Stats{Freed: 4, DelayOpsSum: 8}
	if got := s.AvgDelayOps(); got != 2 {
		t.Fatalf("AvgDelayOps = %v, want 2", got)
	}
	if (Stats{}).AvgDelayOps() != 0 {
		t.Fatal("zero stats should have zero delay")
	}
}
