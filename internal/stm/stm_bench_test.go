package stm

import (
	"sync/atomic"
	"testing"
)

// Micro-benchmarks for the TM primitives themselves; the macro views are
// at the repository root (one per paper figure).

func BenchmarkReadOnlyTx(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			for j := range cells {
				_ = cells[j].Load(tx)
			}
		})
	}
}

func BenchmarkWriteTx(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			for j := range cells {
				cells[j].Store(tx, uint64(i))
			}
		})
	}
}

func BenchmarkReadWriteTx(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			s := uint64(0)
			for j := range cells {
				s += cells[j].Load(tx)
			}
			cells[i%8].Store(tx, s)
		})
	}
}

func BenchmarkContendedCounter(b *testing.B) {
	rt := NewRuntime(Profile{})
	var w Word
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rt.Atomic(func(tx *Tx) {
				w.Store(tx, w.Load(tx)+1)
			})
		}
	})
}

func BenchmarkEarlyReleaseTraversal(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			for j := range cells {
				_ = cells[j].Load(tx)
				if j > 8 {
					tx.ForgetReadsBefore(tx.ReadMark() - 8)
				}
			}
		})
	}
}

// Contended parallel benchmarks. The single-goroutine benchmarks above
// cannot see the commit path's shared cache lines (the global clock and the
// serial-fallback lock); these can. Run them with -cpu 4 (or higher) and
// compare policies with benchstat (see EXPERIMENTS.md). The gv1/gv5
// sub-benchmarks differ only in Profile.ClockPolicy; the distributed
// commit lock is active in both.

func benchPolicies(b *testing.B, prof Profile, run func(b *testing.B, rt *Runtime)) {
	for _, pol := range []ClockPolicy{ClockGV1, ClockGV5} {
		p := prof
		p.ClockPolicy = pol
		b.Run(pol.String(), func(b *testing.B) {
			run(b, NewRuntime(p))
		})
	}
}

// benchCells is a cache-line-padded group of cells so that disjoint
// parallel writers conflict only on commit-path metadata, never on data.
type benchCells struct {
	cells [4]Word
	_     [64]byte
}

// benchGoroutineID hands out distinct indices to RunParallel workers.
var benchGoroutineID atomic.Uint64

func BenchmarkParallelReadOnlyTx(b *testing.B) {
	benchPolicies(b, Profile{}, func(b *testing.B, rt *Runtime) {
		cells := make([]Word, 16)
		for i := range cells {
			cells[i].Init(uint64(i))
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rt.Atomic(func(tx *Tx) {
					for j := range cells {
						_ = cells[j].Load(tx)
					}
				})
			}
		})
	})
}

// BenchmarkParallelWriteTx is the headline commit-path benchmark: every
// worker writes its own padded cell group, so the only shared state is the
// clock and the commit lock.
func BenchmarkParallelWriteTx(b *testing.B) {
	benchPolicies(b, Profile{}, func(b *testing.B, rt *Runtime) {
		groups := make([]benchCells, 64)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			g := &groups[benchGoroutineID.Add(1)%uint64(len(groups))]
			i := uint64(0)
			for pb.Next() {
				i++
				rt.Atomic(func(tx *Tx) {
					for j := range g.cells {
						g.cells[j].Store(tx, i)
					}
				})
			}
		})
	})
}

func BenchmarkParallelReadWriteTx(b *testing.B) {
	benchPolicies(b, Profile{}, func(b *testing.B, rt *Runtime) {
		shared := make([]Word, 16)
		groups := make([]benchCells, 64)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			g := &groups[benchGoroutineID.Add(1)%uint64(len(groups))]
			i := uint64(0)
			for pb.Next() {
				i++
				rt.Atomic(func(tx *Tx) {
					s := uint64(0)
					for j := 0; j < 8; j++ {
						s += shared[(i+uint64(j))%16].Load(tx)
					}
					g.cells[0].Store(tx, s+i)
				})
			}
		})
	})
}

// BenchmarkParallelWindowTx models a hand-over-hand window walk: a chain
// traversal with early release plus a private write, with an occasional
// write to the shared chain so GV5's validation-driven clock advances and
// GV1's writer ticks both appear.
func BenchmarkParallelWindowTx(b *testing.B) {
	benchPolicies(b, Profile{}, func(b *testing.B, rt *Runtime) {
		chain := make([]Word, 256)
		groups := make([]benchCells, 64)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			id := benchGoroutineID.Add(1)
			g := &groups[id%uint64(len(groups))]
			i := uint64(0)
			for pb.Next() {
				i++
				start := int((id*31 + i*7) % uint64(len(chain)-16))
				rt.Atomic(func(tx *Tx) {
					for j := 0; j < 16; j++ {
						_ = chain[start+j].Load(tx)
						if j > 4 {
							tx.ForgetReadsBefore(tx.ReadMark() - 4)
						}
					}
					if i%64 == 0 {
						chain[start].Store(tx, i)
					}
					g.cells[0].Store(tx, i)
				})
			}
		})
	})
}

// BenchmarkParallelSerialPressure measures the revocation/re-arm cycle:
// most transactions commit speculatively, but a steady trickle escalates to
// serial mode and must revoke the reader bias.
func BenchmarkParallelSerialPressure(b *testing.B) {
	benchPolicies(b, Profile{MaxAttempts: 2}, func(b *testing.B, rt *Runtime) {
		groups := make([]benchCells, 64)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			g := &groups[benchGoroutineID.Add(1)%uint64(len(groups))]
			i := uint64(0)
			for pb.Next() {
				i++
				if i%128 == 0 {
					rt.Atomic(func(tx *Tx) {
						if !tx.Serial() {
							tx.Restart()
						}
						g.cells[0].Store(tx, i)
					})
				} else {
					rt.Atomic(func(tx *Tx) {
						g.cells[0].Store(tx, i)
					})
				}
			}
		})
	})
}

// TestPtrConcurrent hammers a Ptr cell from writers and snapshot readers.
func TestPtrConcurrent(t *testing.T) {
	rt := NewRuntime(Profile{})
	type pair struct{ a, b uint64 }
	var p Ptr[pair]
	p.Init(&pair{})
	done := make(chan struct{})
	var torn atomic.Int64
	go func() {
		defer close(done)
		for i := uint64(1); i <= 3000; i++ {
			v := &pair{a: i, b: i * 2}
			rt.Atomic(func(tx *Tx) { p.Store(tx, v) })
		}
	}()
	for {
		select {
		case <-done:
			if torn.Load() > 0 {
				t.Fatalf("%d torn pointer reads", torn.Load())
			}
			if got := p.Raw(); got.a != 3000 || got.b != 6000 {
				t.Fatalf("final = %+v", got)
			}
			return
		default:
		}
		got := Run(rt, func(tx *Tx) *pair { return p.Load(tx) })
		if got.b != got.a*2 {
			torn.Add(1)
		}
	}
}
