// Package reclaim implements the deferred memory-reclamation schemes the
// paper's revocable reservations are compared against. The paper's own
// 2017 baselines: hazard pointers (Michael, TPDS 2004), epoch-based
// reclamation (as in user-level RCU), and the "leak" non-scheme (never
// reclaim, approximating the best case of an epoch allocator or garbage
// collector, as the paper's LFLeak baselines do). The matrix then
// extends past the paper's publication date with two successors from
// PAPERS.md: hazard eras (HazardEras — era-interval reservations with
// the hazard-pointer protocol but epoch-like cost), and version-based
// reclamation (VBR — no reservations at all; the STM's version fence is
// the reclamation epoch).
//
// All schemes manage arena.Handle values and call back into the owning
// structure's allocator to perform the physical free. They also keep the
// bookkeeping needed to *quantify* the reclamation imprecision that
// revocable reservations eliminate: how many retired-but-unfreed objects
// exist right now, the high-water mark, and the total ops-weighted delay
// between logical retirement and physical reclamation.
package reclaim

import (
	"sync/atomic"

	"hohtx/internal/arena"
	"hohtx/internal/pad"
)

// FreeFunc physically releases a retired handle. tid identifies the calling
// thread for the arena's per-thread free lists.
type FreeFunc func(tid int, h arena.Handle)

// Stats quantifies a scheme's reclamation behavior.
type Stats struct {
	Retired      uint64 // logical deletions handed to the scheme
	Freed        uint64 // physical frees performed
	Deferred     uint64 // Retired - Freed right now
	PeakDeferred uint64 // high-water mark of Deferred
	Scans        uint64 // reclamation passes (HP scans / epoch flips)
	DelayOpsSum  uint64 // sum over freed nodes of (free stamp - retire stamp)
	// Leftover counts retirees still held back by the scheme after its
	// most recent reclamation pass per thread: nodes a scan or drain
	// looked at and could not free (hazard still published, epoch not yet
	// safe). Zero for Leak, which never scans — its deferral is by
	// design and fully counted in Deferred. Torture harnesses assert on
	// this to catch retirees stranded by an incomplete Flush.
	Leftover uint64
}

// AvgDelayOps is the mean number of caller-supplied "operation stamps"
// between a node's retirement and its physical free; zero for immediate
// schemes.
func (s Stats) AvgDelayOps() float64 {
	if s.Freed == 0 {
		return 0
	}
	return float64(s.DelayOpsSum) / float64(s.Freed)
}

// Scheme is the interface shared by the deferred-reclamation baselines.
//
// Protect/Clear manage per-thread hazard slots and are no-ops for schemes
// that do not use them. Retire logically deletes a handle; the scheme frees
// it once no concurrent reader can still hold it. stamp is a caller-chosen
// monotonic per-thread counter (typically the thread's operation count)
// used only for delay accounting.
type Scheme interface {
	// Protect publishes h in the thread's hazard slot i and returns h.
	// The caller must re-validate reachability after publishing (the
	// standard hazard-pointer protocol).
	Protect(tid, slot int, h arena.Handle) arena.Handle
	// ClearSlots resets all of the thread's hazard slots.
	ClearSlots(tid int)
	// Retire hands h to the scheme for eventual physical reclamation.
	Retire(tid int, h arena.Handle, stamp uint64)
	// Flush forces the thread's pending retirements to be scanned now
	// (benchmarks call it at teardown so books balance).
	Flush(tid int, stamp uint64)
	// Stats aggregates the scheme's counters.
	Stats() Stats
	// Name is the scheme's short label in benchmark output.
	Name() string
}

// threadStats carries per-thread counters, padded to avoid false sharing.
type threadStats struct {
	retired  atomic.Uint64
	freed    atomic.Uint64
	scans    atomic.Uint64
	delaySum atomic.Uint64
	deferred atomic.Uint64
	peak     atomic.Uint64
	leftover atomic.Uint64 // retirees surviving the thread's last pass
	_        pad.Line
}

func (t *threadStats) noteRetire() {
	t.retired.Add(1)
	d := t.deferred.Add(1)
	if d > t.peak.Load() {
		t.peak.Store(d)
	}
}

func (t *threadStats) noteFree(delay uint64) {
	t.freed.Add(1)
	t.deferred.Add(^uint64(0))
	t.delaySum.Add(delay)
}

func sumStats(ts []threadStats) Stats {
	var out Stats
	for i := range ts {
		out.Retired += ts[i].retired.Load()
		out.Freed += ts[i].freed.Load()
		out.Scans += ts[i].scans.Load()
		out.DelayOpsSum += ts[i].delaySum.Load()
		out.Deferred += ts[i].deferred.Load()
		out.Leftover += ts[i].leftover.Load()
		if p := ts[i].peak.Load(); p > out.PeakDeferred {
			out.PeakDeferred = p
		}
	}
	return out
}
