package obs

import (
	"sort"
	"sync"
)

// DefaultTopK is the sketch capacity when the serving layer does not
// configure one.
const DefaultTopK = 16

// TopKItem is one tracked key with its estimated count. The space-saving
// guarantee: the true count lies in [Count-Err, Count], and any key whose
// true count exceeds N/k (N = total weight added, k = capacity) is
// guaranteed to be present in the sketch.
type TopKItem struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"` // overestimate bound inherited at eviction
}

// TopK is a space-saving (Metwally et al.) top-K counter over uint64
// keys: at most k keys are tracked; an untracked key evicts the current
// minimum and inherits its count as its error bound. Adds take a mutex —
// the callers (the serving layer's per-request hot-key accounting) add at
// request granularity, not per memory access, and k is small enough that
// the linear min scan is cheaper than heap bookkeeping.
type TopK struct {
	k     int
	mu    sync.Mutex
	keys  []uint64   // tracked keys; parallel to slots, grow-once to k
	slots []topkSlot // counts + error bounds
}

type topkSlot struct {
	count uint64
	err   uint64
}

// NewTopK builds a sketch tracking at most k keys (≤ 0 picks the default).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = DefaultTopK
	}
	return &TopK{k: k, keys: make([]uint64, 0, k), slots: make([]topkSlot, 0, k)}
}

// Add adds weight w for key (w 0 is a no-op). Allocation-free after the
// sketch fills: the tracked set lives in two fixed parallel arrays, and
// eviction overwrites in place. (The earlier map-of-pointers layout
// allocated one slot per eviction — one heap object per request whenever
// the key space outruns k, which is the common case — and the serving
// layer's allocation budget, DESIGN.md §15, counts that as a leak.)
func (t *TopK) Add(key uint64, w uint64) {
	if t == nil || w == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.keys {
		if t.keys[i] == key {
			t.slots[i].count += w
			return
		}
	}
	if len(t.keys) < t.k {
		t.keys = append(t.keys, key)
		t.slots = append(t.slots, topkSlot{count: w})
		return
	}
	// Evict the minimum; the newcomer inherits its count as error.
	mi := 0
	for i := range t.slots {
		if t.slots[i].count < t.slots[mi].count {
			mi = i
		}
	}
	minCount := t.slots[mi].count
	t.keys[mi] = key
	t.slots[mi] = topkSlot{count: minCount + w, err: minCount}
}

// Items returns the tracked keys, highest estimated count first (ties by
// key for determinism).
func (t *TopK) Items() []TopKItem {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TopKItem, 0, len(t.keys))
	for i, k := range t.keys {
		out = append(out, TopKItem{Key: k, Count: t.slots[i].count, Err: t.slots[i].err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// HotKeys is one shard's pair of hot-key sketches: which keys cause
// transaction aborts, and which keys the request latency concentrates on.
// Two sketches because the rankings diverge — a key can be latency-hot
// without ever conflicting (large scans) and an aborts-ranked sketch
// would evict it.
type HotKeys struct {
	Aborts  *TopK // weight = aborted attempts of requests touching the key
	Latency *TopK // weight = request total ns attributed to the key
}

// NewHotKeys builds both sketches at capacity k.
func NewHotKeys(k int) *HotKeys {
	return &HotKeys{Aborts: NewTopK(k), Latency: NewTopK(k)}
}

// HotShard is the JSON face of one shard's sketches (Shard -1 = the
// cross-shard rollup).
type HotShard struct {
	Shard     int        `json:"shard"`
	ByAborts  []TopKItem `json:"by_aborts"`
	ByLatency []TopKItem `json:"by_latency_ns"`
}

// Snapshot captures one shard's sketches.
func (h *HotKeys) Snapshot(shard int) HotShard {
	return HotShard{Shard: shard, ByAborts: h.Aborts.Items(), ByLatency: h.Latency.Items()}
}

// RollupHot merges per-shard sketches into one cross-shard ranking:
// counts and error bounds sum per key (shards partition the key space, so
// a key's estimates come from exactly one shard and the sum is just the
// union — but the merge stays correct even for overlapping sketches),
// truncated to the largest per-shard capacity.
func RollupHot(shards []*HotKeys) HotShard {
	merge := func(pick func(h *HotKeys) *TopK) []TopKItem {
		acc := make(map[uint64]TopKItem)
		maxK := 0
		for _, h := range shards {
			if h == nil {
				continue
			}
			t := pick(h)
			if t != nil && t.k > maxK {
				maxK = t.k
			}
			for _, it := range t.Items() {
				a := acc[it.Key]
				a.Key = it.Key
				a.Count += it.Count
				a.Err += it.Err
				acc[it.Key] = a
			}
		}
		out := make([]TopKItem, 0, len(acc))
		for _, it := range acc {
			out = append(out, it)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Count != out[j].Count {
				return out[i].Count > out[j].Count
			}
			return out[i].Key < out[j].Key
		})
		if maxK > 0 && len(out) > maxK {
			out = out[:maxK]
		}
		return out
	}
	return HotShard{
		Shard:     -1,
		ByAborts:  merge(func(h *HotKeys) *TopK { return h.Aborts }),
		ByLatency: merge(func(h *HotKeys) *TopK { return h.Latency }),
	}
}
