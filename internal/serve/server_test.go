package serve_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
)

// startServer builds an RR-V singly list, a pool, and a listening server
// on a loopback port; the cleanup shuts everything down.
func startServer(t *testing.T, slots int) (*serve.Server, sets.Set, string) {
	t.Helper()
	set := newSet(t, slots)
	pool := serve.NewPool(set, serve.PoolConfig{Slots: slots})
	srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, set, ln.Addr().String()
}

// client is a test-side pipelined protocol client.
type client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return &client{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// roundTrip pipelines every request in one write and reads the replies.
func (cl *client) roundTrip(t *testing.T, reqs ...string) []string {
	t.Helper()
	for _, r := range reqs {
		cl.bw.WriteString(r)
		cl.bw.WriteByte('\n')
	}
	if err := cl.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out := make([]string, len(reqs))
	for i := range reqs {
		line, err := cl.br.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply %d/%d: %v", i+1, len(reqs), err)
		}
		out[i] = strings.TrimRight(line, "\n")
	}
	return out
}

// TestServerEndToEnd is the loopback smoke test CI runs under -race: a
// pipelined client inserts, queries, and then storms DEL; afterwards the
// precise-reclamation claim must hold over the wire — LiveNodes is back
// to the empty-set baseline before the last reply is read.
func TestServerEndToEnd(t *testing.T) {
	srv, set, addr := startServer(t, 4)
	mem := set.(sets.MemoryReporter)
	baseline := mem.LiveNodes()

	cl := dialClient(t, addr)
	const n = 100
	var sets, gets, dels []string
	for k := 1; k <= n; k++ {
		sets = append(sets, fmt.Sprintf("SET %d", k))
		gets = append(gets, fmt.Sprintf("GET %d", k))
		dels = append(dels, fmt.Sprintf("DEL %d", k))
	}
	for i, r := range cl.roundTrip(t, sets...) {
		if r != "1" {
			t.Fatalf("SET %d -> %q, want 1", i+1, r)
		}
	}
	if r := cl.roundTrip(t, "SET 1")[0]; r != "0" {
		t.Fatalf("duplicate SET -> %q, want 0", r)
	}
	for i, r := range cl.roundTrip(t, gets...) {
		if r != "1" {
			t.Fatalf("GET %d -> %q, want 1", i+1, r)
		}
	}
	if r := cl.roundTrip(t, "LEN")[0]; r != fmt.Sprint(n) {
		t.Fatalf("LEN -> %q, want %d", r, n)
	}
	if live := mem.LiveNodes(); live != baseline+n {
		t.Fatalf("live nodes with %d keys = %d, want %d", n, live, baseline+n)
	}

	// DEL storm: every reply must be 1, and node memory must return to
	// the baseline immediately — no grace period, no retire list.
	for i, r := range cl.roundTrip(t, dels...) {
		if r != "1" {
			t.Fatalf("DEL %d -> %q, want 1", i+1, r)
		}
	}
	if r := cl.roundTrip(t, "LEN")[0]; r != "0" {
		t.Fatalf("LEN after DEL storm -> %q, want 0", r)
	}
	if live := mem.LiveNodes(); live != baseline {
		t.Fatalf("live nodes after DEL storm = %d, want baseline %d", live, baseline)
	}
	if def := mem.DeferredNodes(); def != 0 {
		t.Fatalf("deferred nodes after DEL storm = %d, want 0", def)
	}
	if srv.Len() != 0 {
		t.Fatalf("server Len = %d, want 0", srv.Len())
	}
}

// TestServerManyConnections drives more concurrent connections than
// worker slots — the contract the lease pool exists to provide — and
// checks the memory books balance when the storm is over.
func TestServerManyConnections(t *testing.T) {
	_, set, addr := startServer(t, 2)
	mem := set.(sets.MemoryReporter)
	baseline := mem.LiveNodes()

	const conns, opsEach = 8, 60
	var wg sync.WaitGroup
	for cid := 0; cid < conns; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			br, bw := bufio.NewReader(c), bufio.NewWriter(c)
			for i := 0; i < opsEach; i++ {
				key := cid*opsEach + i + 1 // disjoint per connection
				fmt.Fprintf(bw, "SET %d\nGET %d\nDEL %d\n", key, key, key)
				if err := bw.Flush(); err != nil {
					t.Errorf("conn %d flush: %v", cid, err)
					return
				}
				for _, want := range []string{"1\n", "1\n", "1\n"} {
					line, err := br.ReadString('\n')
					if err != nil || line != want {
						t.Errorf("conn %d key %d: reply %q err %v, want %q", cid, key, line, err, want)
						return
					}
				}
			}
		}(cid)
	}
	wg.Wait()
	if live := mem.LiveNodes(); live != baseline {
		t.Fatalf("live nodes after storm = %d, want baseline %d", live, baseline)
	}
}

// TestServerProtocolErrors checks malformed requests get ERR replies and
// leave the connection usable.
func TestServerProtocolErrors(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	for _, tc := range []struct{ req, wantPrefix string }{
		{"BOGUS 1", "ERR unknown command"},
		{"", "ERR empty command"},
		{"SET", "ERR missing key"},
		{"SET zero", "ERR bad key"},
		{"SET 0", "ERR key 0 out of range"},
		{"GET 18446744073709551615", "ERR key 18446744073709551615 out of range"},
	} {
		got := cl.roundTrip(t, tc.req)[0]
		if !strings.HasPrefix(got, tc.wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", tc.req, got, tc.wantPrefix)
		}
	}
	// The connection survived all of that.
	if r := cl.roundTrip(t, "SET 7", "GET 7")[1]; r != "1" {
		t.Fatalf("post-error GET -> %q, want 1", r)
	}
}

// TestServerInfo checks the INFO line carries the variant and live
// memory the load generator samples for its flatness report.
func TestServerInfo(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	cl.roundTrip(t, "SET 1", "SET 2")
	info := cl.roundTrip(t, "INFO")[0]
	for _, want := range []string{"variant=RR-V", "slots=2", "keys=2", "live=", "deferred=0", "conns=1"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO %q missing %q", info, want)
		}
	}
}

// TestServerDrain checks Shutdown completes while a connection sits idle
// (the drain deadline unblocks its read) and that Serve returns nil.
func TestServerDrain(t *testing.T) {
	set := newSet(t, 2)
	pool := serve.NewPool(set, serve.PoolConfig{Slots: 2})
	srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	br, bw := bufio.NewReader(c), bufio.NewWriter(c)
	fmt.Fprintf(bw, "SET 5\n")
	bw.Flush()
	if line, _ := br.ReadString('\n'); line != "1\n" {
		t.Fatalf("SET -> %q", line)
	}
	// The connection now idles in a blocked read; drain must not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	if _, err := pool.Acquire(context.Background()); err != serve.ErrClosed {
		t.Fatalf("pool after Shutdown: %v, want serve.ErrClosed", err)
	}
}

// TestServerDeferredSchemesLoopback is the extended-matrix loopback smoke
// CI runs under -race: a server built on each of the post-2017 deferred
// schemes (TMHE, TMVBR — DESIGN.md §14) survives a concurrent SET/GET/DEL
// storm, and after shutdown two Finish rounds drain every deferred node so
// the arena books return exactly to the empty-set baseline — the same
// contract the precise schemes meet without the drain.
func TestServerDeferredSchemesLoopback(t *testing.T) {
	for _, tc := range []struct {
		family  bench.Family
		variant string
	}{
		{bench.FamilySingly, "TMHE"},
		{bench.FamilySingly, "TMVBR"},
		{bench.FamilySkipList, "TMHE"},
		{bench.FamilySkipList, "TMVBR"},
	} {
		t.Run(string(tc.family)+"/"+tc.variant, func(t *testing.T) {
			const slots = 2
			set, err := bench.Build(tc.family, bench.VariantSpec{Name: tc.variant}, slots)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			mem := set.(sets.MemoryReporter)
			baseline := mem.LiveNodes()

			pool := serve.NewPool(set, serve.PoolConfig{Slots: slots})
			srv := serve.NewServer(serve.ServerConfig{Set: set, Pool: pool})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			serveErr := make(chan error, 1)
			go func() { serveErr <- srv.Serve(ln) }()

			const conns, opsEach = 4, 40
			var wg sync.WaitGroup
			for cid := 0; cid < conns; cid++ {
				wg.Add(1)
				go func(cid int) {
					defer wg.Done()
					c, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					defer c.Close()
					br, bw := bufio.NewReader(c), bufio.NewWriter(c)
					for i := 0; i < opsEach; i++ {
						key := cid*opsEach + i + 1 // disjoint per connection
						fmt.Fprintf(bw, "SET %d\nGET %d\nDEL %d\n", key, key, key)
						if err := bw.Flush(); err != nil {
							t.Errorf("conn %d flush: %v", cid, err)
							return
						}
						for _, want := range []string{"1\n", "1\n", "1\n"} {
							line, err := br.ReadString('\n')
							if err != nil || line != want {
								t.Errorf("conn %d key %d: reply %q err %v, want %q", cid, key, line, err, want)
								return
							}
						}
					}
				}(cid)
			}
			wg.Wait()

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Fatalf("Serve: %v", err)
			}
			// Shutdown closed the pool (one Finish sweep); one more round
			// frees retirees the first sweep left pinned by era
			// reservations that later slots only cleared in their own
			// Finish.
			pool.FinishAll()
			if live := mem.LiveNodes(); live != baseline {
				t.Fatalf("live nodes after drain = %d, want baseline %d", live, baseline)
			}
			if def := mem.DeferredNodes(); def != 0 {
				t.Fatalf("deferred nodes after drain = %d, want 0", def)
			}
		})
	}
}
