package serve

import (
	"bufio"
	"io"
	"testing"

	"hohtx/internal/core"
	"hohtx/internal/list"
	"hohtx/internal/sets"
)

// The allocation-budget gate (DESIGN.md §15): steady-state request
// serving must cost ZERO heap allocations per operation, so the bench
// numbers measure the structures and not the Go garbage collector. The
// pins drive the real serving code (scanner → parse → lease → structure
// → reply render) in-process: testing.AllocsPerRun counts process-wide
// mallocs, so a socket with a client goroutine on the other end would
// charge the server for the client's allocations. CI runs these as the
// alloc-budget leg; a regression here fails the build, not a dashboard.

// loopReader replays a request script forever.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off = (r.off + n) % len(r.data)
	return n, nil
}

// newAllocConn wires a conn over a replaying script, exactly as handle()
// would build it for a socket.
func newAllocConn(t *testing.T, srv *Server, script string) *conn {
	t.Helper()
	br := bufio.NewReaderSize(&loopReader{data: []byte(script)}, 4<<10)
	c := &conn{
		srv:    srv,
		br:     br,
		bw:     bufio.NewWriterSize(io.Discard, 4<<10),
		sc:     NewLineScanner(br),
		leases: newConnLeases(srv.shards),
	}
	// Registered after the pool's Close, so it runs first (LIFO): Close
	// blocks until every lease is back.
	t.Cleanup(c.leases.releaseAll)
	return c
}

func newAllocServer(t *testing.T, slots int) *Server {
	t.Helper()
	set := list.New(list.Config{
		Mode: list.ModeRR, RRKind: core.KindV,
		Threads: slots, Window: core.Window{W: 8},
	})
	pool := NewPool(set, PoolConfig{Slots: slots})
	t.Cleanup(pool.Close)
	return NewServer(ServerConfig{Set: set, Pool: pool})
}

// pinZero runs one scripted request per iteration and fails on the first
// heap allocation. The script must be steady-state: every SET matched by
// a DEL, so the arena neither grows nor shrinks across iterations.
func pinZero(t *testing.T, name string, srv *Server, script string, linesPerIter int) {
	t.Helper()
	c := newAllocConn(t, srv, script)
	serve := func() {
		for i := 0; i < linesPerIter; i++ {
			line, err := c.sc.Line()
			if err != nil {
				t.Fatalf("%s: scan: %v", name, err)
			}
			if !c.serveLine(line) {
				t.Fatalf("%s: connection dropped", name)
			}
		}
	}
	serve() // prime: leases, scratch high-water marks, arena free lists
	if got := testing.AllocsPerRun(2000, serve); got != 0 {
		t.Errorf("%s: %.4f allocs/op, want 0", name, got)
	}
}

// TestServeAllocsPointOps pins the GET, SET and DEL serve paths at zero
// heap allocations per request.
func TestServeAllocsPointOps(t *testing.T) {
	srv := newAllocServer(t, 2)
	pinZero(t, "GET", srv, "GET 5\n", 1)
	pinZero(t, "SET+DEL", srv, "SET 6\nDEL 6\n", 2)
}

// TestServeAllocsMulti pins the single-shard MULTI frame — parse, batch
// transaction, per-op replies — at zero heap allocations per frame.
func TestServeAllocsMulti(t *testing.T) {
	srv := newAllocServer(t, 2)
	pinZero(t, "MULTI", srv, "MULTI 4\nSET 7\nGET 7\nDEL 7\nGET 8\n", 1)
}

// TestServeAllocsMalformed pins the malformed-input replies: sentinel
// diagnoses rendered into connection scratch, not fmt.Errorf chains, so
// a garbage flood cannot allocate its way past the budget. (The quoted
// bad-key token passes through a stack-allocated string conversion; the
// pin proves it stays on the stack.)
func TestServeAllocsMalformed(t *testing.T) {
	srv := newAllocServer(t, 2)
	pinZero(t, "bad-key", srv, "GET zero\n", 1)
	pinZero(t, "missing-key", srv, "SET\n", 1)
	pinZero(t, "out-of-range", srv, "GET 99999999999\n", 1)
	pinZero(t, "unknown-verb", srv, "FROB 1\n", 1)
}

// TestStructureAllocs pins the layer below the wire: single ops and batch
// Apply on the RR-V list allocate nothing once warm (bound reclamation
// hooks + per-thread batch scratch; see stm.OnCommitCall).
func TestStructureAllocs(t *testing.T) {
	set := list.New(list.Config{
		Mode: list.ModeRR, RRKind: core.KindV,
		Threads: 2, Window: core.Window{W: 8},
	})
	ops := make([]sets.Op, 0, 64)
	for i := 0; i < 32; i++ {
		ops = append(ops, sets.Op{Kind: sets.OpInsert, Key: uint64(100 + i)})
	}
	for i := 0; i < 32; i++ {
		ops = append(ops, sets.Op{Kind: sets.OpRemove, Key: uint64(100 + i)})
	}
	set.Apply(0, ops) // prime arena + scratch
	cases := []struct {
		name string
		f    func()
	}{
		{"lookup", func() { set.Lookup(0, 50) }},
		{"insert+remove", func() { set.Insert(0, 51); set.Remove(0, 51) }},
		{"apply-64", func() { set.Apply(0, ops) }},
	}
	for _, c := range cases {
		if got := testing.AllocsPerRun(500, c.f); got != 0 {
			t.Errorf("%s: %.4f allocs/op, want 0", c.name, got)
		}
	}
}
