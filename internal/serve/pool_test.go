package serve_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
)

// newSet builds the reference structure for pool tests: the singly linked
// list with RR-V reservations (precise reclamation, so the memory checks
// are exact).
func newSet(t *testing.T, threads int) sets.Set {
	t.Helper()
	s, err := bench.Build(bench.FamilySingly, bench.VariantSpec{Name: "RR-V"}, threads)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// TestLeaseContention multiplexes many more goroutines than slots and
// checks the invariant the pool exists for: no slot is ever leased twice
// at once, and every goroutine still gets its operations through.
func TestLeaseContention(t *testing.T) {
	const slots, goroutines, opsEach = 4, 32, 200
	set := newSet(t, slots)
	p := serve.NewPool(set, serve.PoolConfig{Slots: slots})

	var inUse [slots]atomic.Int32
	var ops atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := p.Handle()
			for i := 0; i < opsEach; i++ {
				err := h.Do(context.Background(), func(tid int) {
					if n := inUse[tid].Add(1); n != 1 {
						t.Errorf("slot %d leased %d times concurrently", tid, n)
					}
					key := uint64(g*opsEach+i)%512 + 1
					if set.Insert(tid, key) {
						set.Remove(tid, key)
					}
					ops.Add(1)
					inUse[tid].Add(-1)
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := ops.Load(); got != goroutines*opsEach {
		t.Fatalf("ops = %d, want %d", got, goroutines*opsEach)
	}
	st := p.Stats()
	if st.Leases != goroutines*opsEach {
		t.Fatalf("Leases = %d, want %d", st.Leases, goroutines*opsEach)
	}
	if st.Outstanding != 0 || st.Waiting != 0 {
		t.Fatalf("pool not quiesced: %+v", st)
	}
	if st.Waits == 0 {
		t.Fatalf("32 goroutines on 4 slots never waited; Stats = %+v", st)
	}
	p.Close()
	if _, err := p.Acquire(context.Background()); err != serve.ErrClosed {
		t.Fatalf("Acquire after Close = %v, want serve.ErrClosed", err)
	}
}

// TestAcquireContextCancel cancels a queued waiter and checks the pool
// stays healthy (the slot is not lost, later acquires work).
func TestAcquireContextCancel(t *testing.T) {
	set := newSet(t, 1)
	p := serve.NewPool(set, serve.PoolConfig{Slots: 1})

	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued Acquire = %v, want DeadlineExceeded", err)
	}
	if st := p.Stats(); st.Cancels != 1 || st.Waiting != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
	p.Release(slot)
	got, err := p.Acquire(context.Background())
	if err != nil || got != slot {
		t.Fatalf("post-cancel Acquire = (%d, %v), want (%d, nil)", got, err, slot)
	}
	p.Release(got)
	p.Close()
}

// TestHandleAffinity checks a handle is handed its previous slot back
// when that slot is free, even when other slots are also free.
func TestHandleAffinity(t *testing.T) {
	const slots = 4
	set := newSet(t, slots)
	p := serve.NewPool(set, serve.PoolConfig{Slots: slots})
	h := p.Handle()

	first, err := h.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Disturb the free stack: lease and return another slot so that slot,
	// not the handle's, sits on top — plain LIFO would hand it out.
	other, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("disturb Acquire: %v", err)
	}
	h.Release(first)
	p.Release(other)
	again, err := h.Acquire(context.Background())
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if again != first {
		t.Fatalf("affinity re-acquire got slot %d, want %d", again, first)
	}
	if st := p.Stats(); st.AffinityHits == 0 {
		t.Fatalf("AffinityHits = 0 after an affinity re-acquire; Stats = %+v", st)
	}
	h.Release(again)
	p.Close()
}

// TestAcquireSaturation checks the bounded FIFO queue rejects beyond its
// bound instead of queueing without limit.
func TestAcquireSaturation(t *testing.T) {
	set := newSet(t, 1)
	p := serve.NewPool(set, serve.PoolConfig{Slots: 1, MaxWaiters: 2})

	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = p.Acquire(ctx)
		}()
	}
	waitFor(t, func() bool { return p.Stats().Waiting == 2 })
	if _, err := p.Acquire(context.Background()); err != serve.ErrSaturated {
		t.Fatalf("Acquire over full queue = %v, want serve.ErrSaturated", err)
	}
	if st := p.Stats(); st.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", st.Rejections)
	}
	cancel()
	wg.Wait()
	p.Release(slot)
	p.Close()
}

// TestFIFOOrder checks queued waiters are granted strictly in arrival
// order.
func TestFIFOOrder(t *testing.T) {
	set := newSet(t, 1)
	p := serve.NewPool(set, serve.PoolConfig{Slots: 1})

	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	const waiters = 4
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := p.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			p.Release(s)
		}(i)
		waitFor(t, func() bool { return p.Stats().Waiting == i+1 })
	}
	p.Release(slot)
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d in position %d", got, want)
		}
		want++
	}
	p.Close()
}

// TestCloseFailsWaiters checks Close resolves queued waiters with
// serve.ErrClosed and still waits for outstanding leases before flushing.
func TestCloseFailsWaiters(t *testing.T) {
	set := newSet(t, 1)
	p := serve.NewPool(set, serve.PoolConfig{Slots: 1})

	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	waiterErr := make(chan error, 1)
	go func() {
		_, err := p.Acquire(context.Background())
		waiterErr <- err
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	if err := <-waiterErr; err != serve.ErrClosed {
		t.Fatalf("queued waiter got %v, want serve.ErrClosed", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a lease was outstanding")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(slot)
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the last release")
	}
}

// waitFor polls cond with a deadline (the pool has no test hooks; its
// observable state is Stats).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// A nil context on Acquire/Do must mean "wait forever", not panic when
// the caller happens to hit the queued path. The two goroutines force a
// queue hand-off with one slot.
func TestPoolNilContextQueues(t *testing.T) {
	p := serve.NewPool(newSet(t, 1), serve.PoolConfig{Slots: 1})
	defer p.Close()
	slot, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- p.Do(nil, func(tid int) {})
	}()
	time.Sleep(20 * time.Millisecond) // let the Do queue behind the lease
	p.Release(slot)
	if err := <-done; err != nil {
		t.Fatalf("queued Do with nil ctx: %v", err)
	}
}
