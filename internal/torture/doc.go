// Package torture is the adversarial stress harness that turns the
// repository's headline claim — precise memory reclamation with no grace
// period — from design prose into a checked property. A run hammers one
// (structure × variant × allocator-policy) instance with randomized
// concurrent operation mixes, then quiesces and checks every invariant the
// claim implies:
//
//   - the final snapshot is strictly sorted and in the key range;
//   - per-key presence matches an exact oracle (a successful insert or
//     remove toggles presence, so presence after quiesce equals prefill
//     presence + successful inserts − successful removes, independent of
//     interleaving);
//   - arena accounting balances: Live == sentinels + perKey·|set| for the
//     precise modes, with the deferred remainder explicitly accounted for
//     (and bounded) in the HP/epoch/leak modes;
//   - hazard-pointer leftovers drain to zero after a second Finish round
//     (the first round can strand retirees pinned by hazards of threads
//     that finished later);
//   - guard mode (arena use-after-free sanitizer) observed zero committed
//     reads of freed slots;
//   - structure-specific shape validators (link symmetry, BST ordering,
//     routing, skiplist levels) pass;
//   - no operation panicked (double frees, bump-pointer exhaustion and
//     guard violations without a sink all panic deterministically).
//
// Worker ids are not pinned: every run leases them through the
// internal/serve pool in short batches, so one logical op stream migrates
// across worker ids mid-run and per-slot state (reservations, hazard
// slots, allocator magazines) is exercised by multiple streams in
// sequence — the same id discipline a server front end imposes.
//
// Every failure message embeds the Config repro string, so a schedule-
// dependent bug becomes a reproducible failing seed.
package torture
