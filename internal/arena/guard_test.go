package arena

import (
	"strings"
	"testing"
)

// guarded builds a small guarded arena over a two-word payload with the
// canonical PoisonWord poisoner.
type twoWords struct {
	a, b uint64
}

func newGuarded(check func(GuardEvent)) *Arena[twoWords] {
	ar := New[twoWords](Config{Threads: 4, Guard: true, AccessCheck: check})
	ar.SetPoison(func(v *twoWords) {
		v.a = PoisonWord
		v.b = PoisonWord
	})
	return ar
}

func TestGuardPoisonOnFree(t *testing.T) {
	ar := newGuarded(nil)
	h := ar.Alloc(0)
	v := ar.At(h)
	v.a, v.b = 7, 8
	ar.Free(0, h)
	if v.a != PoisonWord || v.b != PoisonWord {
		t.Fatalf("freed slot not poisoned: %#x %#x", v.a, v.b)
	}
	// Re-allocation hands the poisoned slot back; the owner re-initializes.
	h2 := ar.Alloc(0)
	if h2.Index() != h.Index() {
		t.Fatalf("expected slot reuse, got %v then %v", h, h2)
	}
	if ar.At(h2).a != PoisonWord {
		t.Fatalf("recycled slot lost its poison before re-init")
	}
}

func TestGuardOffNoPoison(t *testing.T) {
	ar := New[twoWords](Config{Threads: 2})
	if ar.Guarded() {
		t.Fatal("guard enabled without Config.Guard")
	}
	h := ar.Alloc(0)
	ar.At(h).a = 7
	ar.Free(0, h)
	if ar.At(h).a != 7 {
		t.Fatalf("unguarded free modified the slot payload")
	}
	if gs := ar.GuardStats(); gs != (GuardStats{}) {
		t.Fatalf("unguarded arena reported guard stats %+v", gs)
	}
	ar.NotePoisonRead(h) // must be a safe no-op
	ar.ReportUAF(0, h)   // likewise: no guard, no panic, no count
}

func TestGuardAuditTrail(t *testing.T) {
	ar := newGuarded(nil)
	h := ar.Alloc(1)
	ar.Free(2, h)
	// PolicyLocal parks the slot in tid 2's magazine, so tid 2 gets it back.
	h2 := ar.Alloc(2)
	if h2.Index() != h.Index() {
		t.Fatalf("expected slot reuse, got %v then %v", h, h2)
	}
	au := ar.Audit(h2)
	if au.LastAllocTid != 2 || au.LastFreeTid != 2 {
		t.Fatalf("audit tids = alloc %d / free %d, want 2 / 2", au.LastAllocTid, au.LastFreeTid)
	}
	if au.Allocs != 2 || au.Frees != 1 {
		t.Fatalf("audit counts = %d allocs / %d frees, want 2 / 1", au.Allocs, au.Frees)
	}
	if au.Gen&1 != 1 {
		t.Fatalf("audit gen %d not odd for a live slot", au.Gen)
	}
}

func TestGuardReportUAFPanicsWithoutSink(t *testing.T) {
	ar := newGuarded(nil)
	h := ar.Alloc(0)
	ar.Free(0, h)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ReportUAF without an AccessCheck did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "use-after-free") || !strings.Contains(msg, "last free by tid 0") {
			t.Fatalf("panic message lacks the audit trail: %v", r)
		}
	}()
	ar.ReportUAF(1, h)
}

func TestGuardReportUAFSink(t *testing.T) {
	var events []GuardEvent
	ar := newGuarded(func(ev GuardEvent) { events = append(events, ev) })
	h := ar.Alloc(2)
	ar.Free(3, h)
	ar.NotePoisonRead(h)
	ar.NotePoisonRead(h)
	ar.ReportUAF(1, h)
	if len(events) != 1 {
		t.Fatalf("sink received %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.H != h || ev.Tid != 1 || ev.Audit.LastFreeTid != 3 {
		t.Fatalf("event %+v does not describe the violation", ev)
	}
	gs := ar.GuardStats()
	if gs.PoisonReads != 2 || gs.Violations != 1 {
		t.Fatalf("guard stats %+v, want 2 poison reads and 1 violation", gs)
	}
}

// TestStatsLiveUnderflowClamp pins the signed-arithmetic fix: per-magazine
// counters are read racily, so a snapshot can observe a free before the
// alloc it balances. The unsigned subtraction this replaces reported a
// near-2^64 Live count.
func TestStatsLiveUnderflowClamp(t *testing.T) {
	ar := New[uint64](Config{Threads: 2})
	h := ar.Alloc(0)
	ar.Free(0, h)
	// Simulate the torn read: one extra free visible, its alloc not yet.
	ar.mags[1].frees.Add(1)
	if live := ar.Stats().Live; live != 0 {
		t.Fatalf("Live = %d under a torn counter read, want clamp to 0", live)
	}
	ar.mags[1].allocs.Add(1)
	if live := ar.Stats().Live; live != 0 {
		t.Fatalf("Live = %d once balanced, want 0", live)
	}
}

// TestBumpAllocExhaustionPanics pins the wraparound fix: handing out the
// final 32-bit index would wrap the bump pointer to 0 and silently alias
// page-0 slots on the next fresh allocation.
func TestBumpAllocExhaustionPanics(t *testing.T) {
	ar := New[uint64](Config{Threads: 1})
	ar.next.Store(^uint32(0))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("bumpAlloc at index-space exhaustion did not panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "exhausted") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	ar.bumpAlloc()
}

// TestGenerationWraparound walks a slot's generation across the 30-bit
// mask boundary and checks that handle/slot comparisons keep working
// (liveness checks and double-free detection compare through genMask).
func TestGenerationWraparound(t *testing.T) {
	ar := New[uint64](Config{Threads: 1})
	seedH := ar.Alloc(0)
	ar.Free(0, seedH) // park the slot in the magazine
	// Age the parked slot to the last even generation before the mask rolls.
	ar.slotAt(seedH.Index()).gen.Store(genMask - 1)

	h := ar.Alloc(0) // gen becomes genMask (odd: the final pre-wrap value)
	if h.Gen() != genMask {
		t.Fatalf("handle gen %#x, want %#x", h.Gen(), uint32(genMask))
	}
	if !ar.Live(h) {
		t.Fatal("handle at the mask boundary not Live")
	}
	ar.Free(0, h) // raw gen genMask+1: masked generation wraps to 0
	if ar.Live(h) {
		t.Fatal("freed boundary handle still Live")
	}
	h2 := ar.Alloc(0) // masked gen 1: first post-wrap live generation
	if h2.Index() != h.Index() || h2.Gen() != 1 {
		t.Fatalf("post-wrap handle %v, want index %d gen 1", h2, h.Index())
	}
	if !ar.Live(h2) || ar.Live(h) {
		t.Fatalf("post-wrap liveness wrong: Live(h2)=%v Live(h)=%v", ar.Live(h2), ar.Live(h))
	}
	// The pre-wrap handle is stale; freeing it must panic, not corrupt.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Free of pre-wrap stale handle did not panic")
			}
		}()
		ar.Free(0, h)
	}()
	ar.Free(0, h2)
}

// TestFreeBatchDoubleFreePanics: a batch containing the same handle twice
// must trip the double-free check on the second occurrence.
func TestFreeBatchDoubleFreePanics(t *testing.T) {
	ar := New[uint64](Config{Threads: 1})
	h := ar.Alloc(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FreeBatch with a duplicate handle did not panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "double free") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	ar.FreeBatch(0, []Handle{h, h})
}
