package hohtx

import (
	"sync"
	"testing"
)

func constructors() map[string]func(Config) Set {
	return map[string]func(Config) Set{
		"list":  NewListSet,
		"dlist": NewDoublyListSet,
		"itree": NewInternalTreeSet,
		"etree": NewExternalTreeSet,
		"hash":  func(c Config) Set { return NewHashSet(c, 32) },
		"skip":  NewSkipListSet,
	}
}

func TestFacadeBasics(t *testing.T) {
	for name, mk := range constructors() {
		for r := RRVersioned; r <= RRSetAssoc; r++ {
			s := mk(Config{Threads: 2, Reservation: r})
			s.Register(0)
			if !s.Insert(0, 10) || !s.Lookup(0, 10) || s.Insert(0, 10) {
				t.Fatalf("%s/%s: insert/lookup broken", name, r)
			}
			if !s.Remove(0, 10) || s.Lookup(0, 10) {
				t.Fatalf("%s/%s: remove broken", name, r)
			}
			st := StatsOf(s)
			if st.Commits == 0 {
				t.Fatalf("%s/%s: no commits recorded", name, r)
			}
		}
	}
}

func TestFacadeMemoryReporting(t *testing.T) {
	s := NewListSet(Config{Threads: 1})
	mem, ok := s.(MemoryReporter)
	if !ok {
		t.Fatal("facade set does not report memory")
	}
	s.Register(0)
	base := mem.LiveNodes()
	s.Insert(0, 5)
	if mem.LiveNodes() != base+1 {
		t.Fatal("insert not visible in LiveNodes")
	}
	s.Remove(0, 5)
	if mem.LiveNodes() != base {
		t.Fatal("remove did not reclaim immediately")
	}
	if mem.DeferredNodes() != 0 {
		t.Fatal("precise variant reported deferred nodes")
	}
}

func TestFacadeConcurrent(t *testing.T) {
	const threads = 4
	for name, mk := range constructors() {
		t.Run(name, func(t *testing.T) {
			s := mk(Config{Threads: threads, Reservation: RRExclusive, Window: 4})
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					s.Register(tid)
					for i := 0; i < 2000; i++ {
						k := uint64(i%64) + 1
						s.Insert(tid, k)
						s.Lookup(tid, k)
						s.Remove(tid, k)
					}
					s.Finish(tid)
				}(w)
			}
			wg.Wait()
			snap := s.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i-1] >= snap[i] {
					t.Fatal("snapshot not sorted")
				}
			}
		})
	}
}

func TestReservationNames(t *testing.T) {
	want := map[Reservation]string{
		RRVersioned:    "RR-V",
		RRExclusive:    "RR-XO",
		RRSharedOwner:  "RR-SO",
		RRFullyAssoc:   "RR-FA",
		RRDirectMapped: "RR-DM",
		RRSetAssoc:     "RR-SA",
	}
	for r, name := range want {
		if r.String() != name {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), name)
		}
	}
}

func TestFacadeShardedSet(t *testing.T) {
	const threads, shards, keys = 2, 3, 200
	set := NewShardedSet(shards, func(int) Set {
		return NewListSet(Config{Threads: threads})
	})
	if got := set.ShardCount(); got != shards {
		t.Fatalf("ShardCount = %d, want %d", got, shards)
	}
	mem, ok := Set(set).(MemoryReporter)
	if !ok {
		t.Fatal("sharded set does not report memory")
	}
	base := mem.LiveNodes()

	// Churn through a lease pool over the facade from more goroutines
	// than slots, exactly as on a single instance.
	pool := NewLeasePool(set, LeaseConfig{Slots: threads})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(1); k <= keys; k++ {
				_ = pool.Do(nil, func(tid int) {
					set.Insert(tid, k)
					if (k+uint64(g))%3 == 0 {
						set.Remove(tid, k)
					}
					set.Insert(tid, k)
				})
			}
		}(g)
	}
	wg.Wait()
	pool.Close()

	snap := set.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("merged snapshot not strictly ascending at %d: %d then %d", i, snap[i-1], snap[i])
		}
	}
	for _, k := range snap {
		// Every key must be resident on exactly the shard the router picks.
		sh := set.Shard(set.ShardFor(k))
		sh.Register(0)
		if !sh.Lookup(0, k) {
			t.Fatalf("key %d not found on its routed shard", k)
		}
	}
	if live := mem.LiveNodes(); live != base+uint64(len(snap)) {
		t.Fatalf("live nodes %d != base %d + %d resident keys (precise reclamation per shard)",
			live, base, len(snap))
	}
	if d := mem.DeferredNodes(); d != 0 {
		t.Fatalf("%d deferred nodes on a precise sharded set", d)
	}
	if st := StatsOf(set); st.Commits == 0 {
		t.Fatal("aggregated stats show no commits")
	}
}
