package stm

import "sync/atomic"

// Global version clock policies.
//
// TL2-family TMs differ in how writers interact with the shared version
// clock; the original TL2 paper names the variants GV1/GV4/GV5/GV6. GV1 —
// one atomic Add per writing commit — is simple and gives every commit a
// unique write version, but the clock's cache line ping-pongs between every
// committing core. GV5 removes the writer-side increment entirely: writers
// derive a write version from the clock without modifying it, and the clock
// is advanced lazily, by readers, only when validation actually observes a
// newer version. Disjoint writers then share a read-mostly clock line and
// the commit fast path performs no shared read-modify-write at all.
//
// The naive GV5 formulation ("publish rv+2") is unsound in combination
// with this runtime's read-version extension and precise reclamation:
// write-version collisions break the invariant "rv >= v implies every
// version-v write-back has completed", so a reader could mix a committer's
// already-written cells with stale values of its not-yet-written cells — a
// zombie snapshot that data-structure code may follow into freed arena
// memory. The implementation therefore uses a two-counter protocol that
// keeps the lazy property while restoring that invariant:
//
//   - clockTarget is the version frontier. Fast-path writers read it and
//     use target+2 as their write version without any RMW; serial and
//     slow-path writers (which are invisible to the drain mechanism below)
//     advance it with a plain Add, as in GV1.
//   - clock (the published clock) is the only value transactions use as a
//     snapshot bound (Tx.rv). It trails clockTarget and is advanced by
//     readers in Tx.extend.
//
// Soundness hinges on three ordered steps. A fast-path writer, after
// locking its write set, (1) loads clockTarget, (2) publishes its chosen
// write version in its BRAVO commit slot, and (3) re-loads clockTarget; if
// the target has reached its write version it retries with a fresh, larger
// one (bounded, then falls back to an Add). A reader advancing the clock to
// v does the mirror image: (1) lift clockTarget to at least v, (2) scan the
// commit-slot table and wait out any committer whose published write
// version is <= v, (3) lift the published clock to v. Sequential
// consistency of Go atomics gives the usual flag/re-check guarantee:
// either the writer's re-load observes the lifted target (writer retreats),
// or the reader's scan observes the published slot (reader waits for the
// write-back to finish). Either way, by the time clock == v every
// write-back with version <= v is complete, so rv = clock is always a safe
// snapshot bound. Writers that commit through the rwlock slow path or in
// serial mode never publish a slot; they take unique versions from
// clockTarget with an Add, and the same invariant holds for them because a
// reader can only learn of such a version by observing a cell the writer
// has already released.
//
// One residual difference from GV1: write versions are no longer unique,
// so commit write-back bumps a cell's new version above its previous one
// when they would collide (keeping per-cell versions strictly increasing),
// and the TL2 "wv == rv+2 implies no validation needed" fast path is
// GV1-only.

// ClockPolicy selects how writing commits interact with the global version
// clock. The zero value is ClockGV1.
type ClockPolicy uint8

const (
	// ClockGV1 is classic TL2: every writing commit advances the shared
	// clock with an atomic Add and uses the result as its unique write
	// version.
	ClockGV1 ClockPolicy = iota
	// ClockGV5 is the lazy policy described above: fast-path writers derive
	// a write version from the clock without a shared read-modify-write,
	// and the published clock advances only when a reader's validation
	// observes a newer version.
	ClockGV5
)

// String returns the short policy name ("gv1", "gv5").
func (p ClockPolicy) String() string {
	if p == ClockGV5 {
		return "gv5"
	}
	return "gv1"
}

// lazyWvRetries bounds how many times a fast-path GV5 committer re-derives
// its write version after being overtaken by a clock advance before giving
// up and taking a unique version with an Add.
const lazyWvRetries = 3

// writeVersion chooses the commit's write version after the write set is
// locked. slot is the BRAVO commit slot held by a fast-path speculative
// commit, or -1 for slow-path and serial commits.
func (tx *Tx) writeVersion(slot int) uint64 {
	rt := tx.rt
	if rt.prof.ClockPolicy != ClockGV5 {
		return rt.clock.Add(2)
	}
	if slot >= 0 {
		for try := 0; try < lazyWvRetries; try++ {
			wv := rt.clockTarget.Load() + 2
			// Publish before the re-check; advancers scan after lifting
			// the target (see the protocol note above).
			rt.commitLock.slots[slot].v.Store(wv | lockedBit)
			if rt.clockTarget.Load() < wv {
				return wv
			}
		}
	}
	return rt.clockTarget.Add(2)
}

// advanceClock lifts the published clock to at least v — waiting out any
// in-flight fast-path write-back with a version <= v first — and returns
// the resulting published clock. Only the GV5 policy ever reaches it with
// clock < v; under GV1 every cell version is <= clock by construction.
func (tx *Tx) advanceClock(v uint64) uint64 {
	rt := tx.rt
	casMax(&rt.clockTarget, v, &tx.clockCASes)
	rt.commitLock.drainBelow(v)
	return casMax(&rt.clock, v, &tx.clockCASes)
}

// VersionFence returns an even version v with two properties: every write
// version whose commit write-back has completed is <= v, and every write
// version chosen after VersionFence returns is >= v. Under GV1 the
// published clock itself is such a bound; under GV5 the published clock can
// trail completed write versions, so the fence is derived from the version
// frontier instead. Reclamation code retires a freed node's cell versions
// to a fence (stm.Word.Retire) so that transactions still holding pre-free
// snapshots cannot take fresh reads of the dead cells at stale versions.
func (rt *Runtime) VersionFence() uint64 {
	if rt.prof.ClockPolicy == ClockGV5 {
		return rt.clockTarget.Load() + 2
	}
	return rt.clock.Load()
}

// TickVersionFence advances the version frontier so that the next
// VersionFence result is strictly greater than every fence observed
// before the call. Version-based reclamation (reclaim.VBR) uses the
// fence as its reclamation epoch: a retiree stamped with fence f is
// freeable once the fence has moved past f, and under workloads whose
// commits do not advance the clock on their own (read-heavy GV5 runs)
// the scheme ticks the fence itself to bound deferral. The GV1 arm is a
// plain clock Add, identical to a writing commit; the GV5 arm advances
// clockTarget, which is exactly what serial and slow-path writers do, so
// the two-counter protocol's invariants (see the note at the top of this
// file) are untouched.
func (rt *Runtime) TickVersionFence() {
	if rt.prof.ClockPolicy == ClockGV5 {
		rt.clockTarget.Add(2)
		return
	}
	rt.clock.Add(2)
}

// casMax lifts c to at least v, counting CAS attempts into *n, and returns
// the final observed value (>= v).
func casMax(c *atomic.Uint64, v uint64, n *uint64) uint64 {
	cur := c.Load()
	for cur < v {
		*n++
		if c.CompareAndSwap(cur, v) {
			return v
		}
		cur = c.Load()
	}
	return cur
}
