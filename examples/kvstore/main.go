// kvstore: an ordered in-memory index service built on the public API.
//
// This is the kind of workload the paper's introduction motivates: a
// shared pointer-based index under a mixed read/write load, where
// operation latency matters (so traversals should not be one giant
// transaction) and memory must be returned to the allocator immediately
// (so the index can run at a fixed footprint under churn).
//
// The program models a session index: writers admit and expire sessions,
// readers authenticate them. Service goroutines outnumber the set's
// worker slots — as they would in a server — so each one leases a slot
// from a hohtx.LeasePool for a batch of operations at a time rather than
// owning a worker id outright. It runs the same service twice — once on
// the external hand-over-hand tree with RR-V reservations, once on the
// single-transaction (HTM-baseline) tree — and reports throughput,
// conflict behavior, and the memory high-water mark of each.
//
// Run with: go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hohtx"
)

const (
	readers    = 4
	writers    = 2
	slots      = 4 // fewer worker slots than the 6 service goroutines
	leaseBatch = 128
	sessionCap = 1 << 14
	runFor     = 1500 * time.Millisecond
)

type counters struct {
	auths   atomic.Uint64
	admits  atomic.Uint64
	expires atomic.Uint64
}

func runService(name string, set hohtx.Set) {
	pool := hohtx.NewLeasePool(set, hohtx.LeaseConfig{Slots: slots})
	var c counters
	var stop atomic.Bool
	var wg sync.WaitGroup
	var peakLive atomic.Uint64

	// Writers: admit new sessions and expire old ones, keeping the index
	// near half capacity (a steady-state churn).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := pool.Handle()
			state := uint64(w)*13 + 5
			for !stop.Load() {
				_ = h.Do(context.Background(), func(tid int) {
					for i := 0; i < leaseBatch && !stop.Load(); i++ {
						state += 0x9e3779b97f4a7c15
						z := state
						z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
						id := (z^(z>>27))%sessionCap + 1
						if z&(1<<41) == 0 {
							if set.Insert(tid, id) {
								c.admits.Add(1)
							}
						} else {
							if set.Remove(tid, id) {
								c.expires.Add(1)
							}
						}
					}
				})
			}
		}(w)
	}
	// Readers: authenticate random session ids.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := pool.Handle()
			state := uint64(writers+r)*31 + 3
			for !stop.Load() {
				_ = h.Do(context.Background(), func(tid int) {
					for i := 0; i < leaseBatch && !stop.Load(); i++ {
						state += 0x9e3779b97f4a7c15
						z := state
						z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
						set.Lookup(tid, (z^(z>>27))%sessionCap+1)
						c.auths.Add(1)
					}
				})
			}
		}(r)
	}
	// Monitor: track the memory high-water mark while the service runs.
	mem := set.(hohtx.MemoryReporter)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if live := mem.LiveNodes(); live > peakLive.Load() {
				peakLive.Store(live)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	start := time.Now()
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	pool.Close()
	elapsed := time.Since(start).Seconds()

	st := hohtx.StatsOf(set)
	ps := pool.Stats()
	total := c.auths.Load() + c.admits.Load() + c.expires.Load()
	fmt.Printf("%-22s %8.2f Kops/s  (auth %d, admit %d, expire %d)\n",
		name, float64(total)/elapsed/1e3, c.auths.Load(), c.admits.Load(), c.expires.Load())
	fmt.Printf("%-22s aborts/commit=%.3f serial/commit=%.5f peak-live-nodes=%d deferred-now=%d\n",
		"", float64(st.Aborts)/float64(st.Commits), float64(st.Serial)/float64(st.Commits),
		peakLive.Load(), mem.DeferredNodes())
	fmt.Printf("%-22s leases=%d waited=%d affinity=%d (6 goroutines on %d slots)\n\n",
		"", ps.Leases, ps.Waits, ps.AffinityHits, slots)
}

func main() {
	fmt.Println("session index service: hand-over-hand RR-V vs single-transaction baseline")
	fmt.Println()
	runService("hand-over-hand RR-V",
		hohtx.NewExternalTreeSet(hohtx.Config{Threads: slots}))
	// The baseline: window 0 is not expressible through the facade (it
	// always uses hand-over-hand); a giant window approximates the
	// single-transaction behavior for comparison.
	runService("near-single-tx (W=4096)",
		hohtx.NewExternalTreeSet(hohtx.Config{Threads: slots, Window: 4096}))
}
