// Command benchjson runs a fixed throughput suite and writes a
// machine-readable JSON summary, seeding the repository's performance
// trajectory: each PR that touches a hot path regenerates BENCH_<n>.json at
// the repo root so successive snapshots can be diffed mechanically.
//
// The suite is deliberately small — the singly linked list's 10-bit/33%
// panel (the paper's centerpiece workload) across a thread sweep, for the
// best reservation scheme under both clock policies plus the HTM and TMHP
// baselines. Full figure regeneration stays in cmd/benchfig; this tool is
// for trend tracking, so it favors a stable, fast, comparable cell set.
//
// Usage:
//
//	benchjson                     # writes BENCH_1.json in the cwd
//	benchjson -out BENCH_2.json -threads 1,2,4,8 -ops 100000 -trials 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/obs"
	"hohtx/internal/sets"
)

// Cell is one measured (variant, clock, threads) point.
type Cell struct {
	Family    string  `json:"family"`
	Variant   string  `json:"variant"`
	Clock     string  `json:"clock"`
	Threads   int     `json:"threads"`
	Window    int     `json:"window"`
	Mops      float64 `json:"mops"`
	RelStddev float64 `json:"rel_stddev"`

	AbortsPerOp float64 `json:"aborts_per_op"`
	SerialPerOp float64 `json:"serial_per_op"`
	Aborts      struct {
		ReadConflict float64 `json:"read_conflict"`
		Validation   float64 `json:"validation"`
		WriteLock    float64 `json:"write_lock"`
		Capacity     float64 `json:"capacity"`
	} `json:"aborts"`

	ClockCASPerOp   float64 `json:"clock_cas_per_op"`
	BiasRevocations uint64  `json:"bias_revocations"`
	PeakDeferred    uint64  `json:"peak_deferred"`

	// Sampled observability percentiles (1 in 2^bench.BenchSampleShift
	// transactions traced): commit latency, allocator free→reuse distance,
	// and — for the deferred schemes — retire→free reclamation delay.
	CommitP50Ns   uint64 `json:"commit_p50_ns"`
	CommitP99Ns   uint64 `json:"commit_p99_ns"`
	ReuseP50Ops   uint64 `json:"reuse_p50_ops"`
	ReuseP99Ops   uint64 `json:"reuse_p99_ops"`
	ReclaimP50Ops uint64 `json:"reclaim_p50_ops,omitempty"`
	ReclaimP99Ops uint64 `json:"reclaim_p99_ops,omitempty"`
	ReclaimMaxOps uint64 `json:"reclaim_max_ops,omitempty"`
	// Obs is the final trial's full domain snapshot (log2-bucket histograms,
	// gauges, abort-attribution edges); nil for the lock-free variants.
	Obs *obs.DomainSnapshot `json:"obs,omitempty"`
}

// Summary is the file's top-level shape.
type Summary struct {
	Bench      int    `json:"bench"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workload   string `json:"workload"`
	Ops        int    `json:"ops_per_thread"`
	Trials     int    `json:"trials"`
	Cells      []Cell `json:"cells"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output path")
	threads := flag.String("threads", "1,2,4", "comma-separated thread counts")
	ops := flag.Int("ops", 50_000, "per-thread operations per trial")
	trials := flag.Int("trials", 2, "trials per cell")
	seed := flag.Int64("seed", 20170724, "workload seed")
	flag.Parse()

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchjson: bad thread count %q\n", part)
			os.Exit(2)
		}
		ths = append(ths, n)
	}

	wl := bench.Workload{KeyBits: 10, LookupPct: 33, OpsPerThread: *ops}
	sum := Summary{
		Bench:      benchNumber(*out),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   "singly list, 10-bit keys, 33% lookups",
		Ops:        *ops,
		Trials:     *trials,
	}

	type series struct {
		name string
		lazy bool
	}
	suite := []series{
		{name: "RR-V"},
		{name: "RR-V", lazy: true},
		{name: "RR-XO"},
		{name: "RR-XO", lazy: true},
		{name: "HTM"},
		{name: "TMHP"},
		{name: "ER"},
	}
	for _, sr := range suite {
		for _, th := range ths {
			spec := bench.VariantSpec{Name: sr.name, LazyClock: sr.lazy, Observe: true}
			spec.Window = bench.BestWindow(bench.FamilySingly, th)
			var buildErr error
			mk := bench.MakeSet(func(t int) sets.Set {
				s, err := bench.Build(bench.FamilySingly, spec, t)
				if err != nil {
					buildErr = err
					return nil
				}
				return s
			})
			if probe := mk(th); probe == nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", buildErr)
				os.Exit(1)
			}
			res, err := bench.Run(mk, wl, bench.RunConfig{
				Threads: th, Trials: *trials, Seed: *seed, Verify: true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", sr.name, err)
				os.Exit(1)
			}
			c := Cell{
				Family:          string(bench.FamilySingly),
				Variant:         sr.name,
				Clock:           clockName(sr.lazy),
				Threads:         th,
				Window:          spec.Window,
				Mops:            res.MopsPerSec,
				RelStddev:       res.RelStddev,
				AbortsPerOp:     res.AbortsPerOp,
				SerialPerOp:     res.SerialPerOp,
				ClockCASPerOp:   res.ClockCASPerOp,
				BiasRevocations: res.BiasRevocations,
				PeakDeferred:    res.DeferredPeak,
			}
			c.Aborts.ReadConflict = res.ReadConflictsPerOp
			c.Aborts.Validation = res.ValidationsPerOp
			c.Aborts.WriteLock = res.WriteLocksPerOp
			c.Aborts.Capacity = res.CapacityPerOp
			c.CommitP50Ns, c.CommitP99Ns = res.CommitP50Ns, res.CommitP99Ns
			c.ReuseP50Ops, c.ReuseP99Ops = res.ReuseP50Ops, res.ReuseP99Ops
			c.ReclaimP50Ops, c.ReclaimP99Ops, c.ReclaimMaxOps = res.ReclaimP50Ops, res.ReclaimP99Ops, res.ReclaimMaxOps
			c.Obs = res.Obs
			sum.Cells = append(sum.Cells, c)
			fmt.Fprintf(os.Stderr, "benchjson: %-5s %s %dT  %.4f Mops/s\n",
				sr.name, c.Clock, th, res.MopsPerSec)
		}
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d cells)\n", *out, len(sum.Cells))
}

func clockName(lazy bool) string {
	if lazy {
		return "gv5"
	}
	return "gv1"
}

// benchNumber extracts the <n> from a BENCH_<n>.json path, defaulting to 1.
func benchNumber(path string) int {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
	if n, err := strconv.Atoi(base); err == nil && n > 0 {
		return n
	}
	return 1
}
