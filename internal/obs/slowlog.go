package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/pad"
)

// paddedFloor keeps the admission threshold on its own cache line: every
// request loads it, and it must not false-share with the mutex the
// admitted few contend on.
type paddedFloor struct {
	v atomic.Uint64
	_ pad.Line
}

// DefaultSlowlogSize is the per-window entry capacity when the serving
// layer does not configure one.
const DefaultSlowlogSize = 32

// DefaultSlowlogWindow is the rotation period when unconfigured.
const DefaultSlowlogWindow = 10 * time.Second

// SlowEntry is one captured slow request: everything a postmortem needs
// to explain the latency without re-running the workload — the verb and
// keys identify the request, the shard set and phase breakdown localize
// the time, and the abort causes/owners name the who-aborted-whom chain.
type SlowEntry struct {
	Seq     uint64   `json:"seq"`     // capture order, process-wide per slowlog
	UnixNs  int64    `json:"unix_ns"` // wall-clock capture time
	Verb    string   `json:"verb"`
	Keys    []uint64 `json:"keys,omitempty"`
	KeyN    int      `json:"key_n"` // true key count (Keys truncates)
	Shards  []int    `json:"shards,omitempty"`
	TotalNs uint64   `json:"total_ns"`

	WaitNs     uint64 `json:"wait_ns"`
	LeaseNs    uint64 `json:"lease_ns"`
	AttemptsNs uint64 `json:"attempts_ns"`
	SerialNs   uint64 `json:"serial_ns"`
	ReclaimNs  uint64 `json:"reclaim_ns"`
	WriteNs    uint64 `json:"write_ns"`
	WorstPhase string `json:"worst_phase"`

	Attempts  uint32       `json:"attempts"`
	SerialTxs uint32       `json:"serial_txs"`
	Aborts    []CauseCount `json:"aborts,omitempty"`
	Owners    []int32      `json:"abort_owners,omitempty"`
}

// entryFromSpan freezes a finished span into a slowlog entry.
func entryFromSpan(sp *Span) SlowEntry {
	keys, keyN := sp.Keys()
	attempts, serial := sp.Attempts()
	return SlowEntry{
		UnixNs:     time.Now().UnixNano(),
		Verb:       sp.Verb(),
		Keys:       append([]uint64(nil), keys...),
		KeyN:       keyN,
		Shards:     sp.Shards(),
		TotalNs:    sp.TotalNs(),
		WaitNs:     sp.Phase(SpanWait),
		LeaseNs:    sp.Phase(SpanLease),
		AttemptsNs: sp.Phase(SpanAttempts),
		SerialNs:   sp.Phase(SpanSerial),
		ReclaimNs:  sp.Phase(SpanReclaim),
		WriteNs:    sp.Phase(SpanWrite),
		WorstPhase: sp.WorstPhase().String(),
		Attempts:   attempts,
		SerialTxs:  serial,
		Aborts:     sp.Causes(),
		Owners:     sp.Owners(),
	}
}

// Slowlog keeps the N slowest requests per time window, plus the previous
// window so a fresh rotation never serves an empty log. It deliberately
// sits outside the sampling gate: the gate throws away 1-in-2^k events
// uniformly, which is exactly wrong for outliers — the slowlog's
// admission is value-based instead (is this request slower than the
// window's current N-th slowest?), so the worst requests always capture.
//
// The admission fast path is one atomic load against that N-th-slowest
// floor; requests below it — the overwhelming majority, by construction —
// never touch the mutex that guards the (small, bounded) entry lists.
type Slowlog struct {
	cap    int
	window time.Duration
	floor  paddedFloor // admission threshold: 0 until the window fills

	mu       sync.Mutex
	seq      uint64
	curStart time.Time
	cur      []SlowEntry // sorted slowest-first, ≤ cap
	prev     []SlowEntry
}

// NewSlowlog builds a slowlog holding the size slowest requests per
// rotation window (≤ 0 picks the defaults).
func NewSlowlog(size int, window time.Duration) *Slowlog {
	if size <= 0 {
		size = DefaultSlowlogSize
	}
	if window <= 0 {
		window = DefaultSlowlogWindow
	}
	return &Slowlog{cap: size, window: window}
}

// Observe offers a finished span to the log. It must be called before the
// span is pooled for reuse (the entry copies what it keeps).
func (s *Slowlog) Observe(sp *Span) {
	if s == nil || sp == nil {
		return
	}
	total := sp.TotalNs()
	if total < s.floor.v.Load() {
		return // fast path: not in this window's top N
	}
	e := entryFromSpan(sp)
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.rotateLocked(now)
	if s.curStart.IsZero() {
		s.curStart = now
	}
	// Re-check under the lock: the floor may have moved past us.
	if len(s.cur) == s.cap && total < s.cur[len(s.cur)-1].TotalNs {
		return
	}
	s.seq++
	e.Seq = s.seq
	i := sort.Search(len(s.cur), func(i int) bool { return s.cur[i].TotalNs < total })
	s.cur = append(s.cur, SlowEntry{})
	copy(s.cur[i+1:], s.cur[i:])
	s.cur[i] = e
	if len(s.cur) > s.cap {
		s.cur = s.cur[:s.cap]
	}
	if len(s.cur) == s.cap {
		s.floor.v.Store(s.cur[len(s.cur)-1].TotalNs)
	}
}

// rotateLocked retires the current window once it ages out. Two stale
// windows in a row clear the previous one too (nothing slow happened
// recently — say so rather than serving ancient outliers as current).
func (s *Slowlog) rotateLocked(now time.Time) {
	if s.curStart.IsZero() || now.Sub(s.curStart) < s.window {
		return
	}
	if now.Sub(s.curStart) >= 2*s.window {
		s.prev = nil
	} else {
		s.prev = s.cur
	}
	s.cur = nil
	s.curStart = now
	s.floor.v.Store(0)
}

// Entries returns up to n entries, slowest first, merged across the
// current and previous windows (n ≤ 0 returns everything retained).
func (s *Slowlog) Entries(n int) []SlowEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.rotateLocked(time.Now())
	merged := make([]SlowEntry, 0, len(s.cur)+len(s.prev))
	merged = append(merged, s.cur...)
	merged = append(merged, s.prev...)
	s.mu.Unlock()
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].TotalNs > merged[j].TotalNs })
	if n > 0 && len(merged) > n {
		merged = merged[:n]
	}
	return merged
}

// Window returns the rotation period.
func (s *Slowlog) Window() time.Duration { return s.window }

// Cap returns the per-window entry capacity.
func (s *Slowlog) Cap() int { return s.cap }
