package stm

import (
	"sync/atomic"
	"testing"
)

// Micro-benchmarks for the TM primitives themselves; the macro views are
// at the repository root (one per paper figure).

func BenchmarkReadOnlyTx(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			for j := range cells {
				_ = cells[j].Load(tx)
			}
		})
	}
}

func BenchmarkWriteTx(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			for j := range cells {
				cells[j].Store(tx, uint64(i))
			}
		})
	}
}

func BenchmarkReadWriteTx(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			s := uint64(0)
			for j := range cells {
				s += cells[j].Load(tx)
			}
			cells[i%8].Store(tx, s)
		})
	}
}

func BenchmarkContendedCounter(b *testing.B) {
	rt := NewRuntime(Profile{})
	var w Word
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rt.Atomic(func(tx *Tx) {
				w.Store(tx, w.Load(tx)+1)
			})
		}
	})
}

func BenchmarkEarlyReleaseTraversal(b *testing.B) {
	rt := NewRuntime(Profile{})
	cells := make([]Word, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Atomic(func(tx *Tx) {
			for j := range cells {
				_ = cells[j].Load(tx)
				if j > 8 {
					tx.ForgetReadsBefore(tx.ReadMark() - 8)
				}
			}
		})
	}
}

// TestPtrConcurrent hammers a Ptr cell from writers and snapshot readers.
func TestPtrConcurrent(t *testing.T) {
	rt := NewRuntime(Profile{})
	type pair struct{ a, b uint64 }
	var p Ptr[pair]
	p.Init(&pair{})
	done := make(chan struct{})
	var torn atomic.Int64
	go func() {
		defer close(done)
		for i := uint64(1); i <= 3000; i++ {
			v := &pair{a: i, b: i * 2}
			rt.Atomic(func(tx *Tx) { p.Store(tx, v) })
		}
	}()
	for {
		select {
		case <-done:
			if torn.Load() > 0 {
				t.Fatalf("%d torn pointer reads", torn.Load())
			}
			if got := p.Raw(); got.a != 3000 || got.b != 6000 {
				t.Fatalf("final = %+v", got)
			}
			return
		default:
		}
		got := Run(rt, func(tx *Tx) *pair { return p.Load(tx) })
		if got.b != got.a*2 {
			torn.Add(1)
		}
	}
}
