package hohtx_test

import (
	"fmt"

	"hohtx"
)

// The simplest possible use: one worker, one list.
func ExampleNewListSet() {
	set := hohtx.NewListSet(hohtx.Config{Threads: 1})
	set.Register(0)
	set.Insert(0, 7)
	fmt.Println(set.Lookup(0, 7))
	fmt.Println(set.Remove(0, 7))
	fmt.Println(set.Lookup(0, 7))
	// Output:
	// true
	// true
	// false
}

// Precise reclamation is observable: node memory tracks the set size
// exactly, with nothing deferred.
func ExampleMemoryReporter() {
	set := hohtx.NewExternalTreeSet(hohtx.Config{Threads: 1})
	set.Register(0)
	for k := uint64(1); k <= 100; k++ {
		set.Insert(0, k)
	}
	for k := uint64(1); k <= 100; k++ {
		set.Remove(0, k)
	}
	mem := set.(hohtx.MemoryReporter)
	// 5 sentinels remain; every removed node was freed before Remove
	// returned.
	fmt.Println(mem.LiveNodes(), mem.DeferredNodes())
	// Output:
	// 5 0
}

// Choosing a reservation scheme and window size explicitly.
func ExampleConfig() {
	set := hohtx.NewDoublyListSet(hohtx.Config{
		Threads:     4,
		Reservation: hohtx.RRExclusive, // RR-XO: O(1) revoke
		Window:      16,                // the paper's <=4-thread tuning
	})
	set.Register(0)
	set.Insert(0, 1)
	st := hohtx.StatsOf(set)
	fmt.Println(st.Commits > 0, st.Serial)
	// Output:
	// true 0
}

// Ordered maps carry values; Put/Get/Delete are atomic hand-over-hand
// operations with precise reclamation.
func ExampleNewOrderedMap() {
	m := hohtx.NewOrderedMap(hohtx.Config{Threads: 1})
	m.Register(0)
	m.Put(0, 3, 300)
	prev, existed := m.Put(0, 3, 301)
	fmt.Println(prev, existed)
	v, ok := m.Get(0, 3)
	fmt.Println(v, ok)
	v, ok = m.Delete(0, 3)
	fmt.Println(v, ok, m.Len())
	// Output:
	// 300 true
	// 301 true
	// 301 true 0
}

// Ordered iteration: the iterator's position is a revocable reservation.
func ExampleAscender() {
	set := hohtx.NewListSet(hohtx.Config{Threads: 1, Window: 2})
	set.Register(0)
	for _, k := range []uint64{5, 1, 9, 3} {
		set.Insert(0, k)
	}
	var got []uint64
	set.(hohtx.Ascender).Ascend(0, 2, func(k uint64) bool {
		got = append(got, k)
		return true
	})
	fmt.Println(got)
	// Output:
	// [3 5 9]
}

// The window knob can be turned while the set is live (the paper's
// future-work adaptive tuning builds on this; see examples/tuner).
func ExampleTunable() {
	set := hohtx.NewListSet(hohtx.Config{Threads: 1, Window: 32})
	set.Register(0)
	set.(hohtx.Tunable).SetWindow(4) // takes effect for the next window
	set.Insert(0, 9)
	fmt.Println(set.Lookup(0, 9))
	// Output:
	// true
}
