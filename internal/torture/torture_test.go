package torture

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"hohtx/internal/arena"
)

var seedFlag = flag.Uint64("torture.seed", 0, "override the sweep's base seed")

// sweepParams sizes a run so the full matrix fits the CI budget in -short
// mode while still interleaving aggressively (small key space, several
// threads), and stretches out for nightly runs.
func sweepParams(short bool) (threads, ops int, keys uint64) {
	if short {
		return 4, 400, 64
	}
	return 8, 5000, 256
}

// TestTortureSweep drives every structure × variant × allocator-policy
// combination through the harness. Guard mode is enabled wherever the
// variant supports it, so this is simultaneously a correctness sweep and a
// use-after-free sanitizer sweep. Failures print a repro command line.
func TestTortureSweep(t *testing.T) {
	threads, ops, keys := sweepParams(testing.Short())
	baseSeed := *seedFlag
	if baseSeed == 0 {
		baseSeed = 0x5eed
	}
	combo := uint64(0)
	for _, structure := range Structures() {
		for _, variant := range Variants(structure) {
			for _, policy := range []arena.Policy{arena.PolicyLocal, arena.PolicyShared} {
				combo++
				cfg := Config{
					Structure: structure,
					Variant:   variant,
					Policy:    policy,
					Threads:   threads + int(combo%3), // 4..6 (short)
					Ops:       ops,
					Keys:      keys,
					LookupPct: 10 + int(combo*7%40), // 10..49
					Window:    2 + int(combo%6),     // 2..7
					Shards:    1 + int(combo%2),     // alternate unsharded / 2-shard
					Seed:      baseSeed + combo,
					Guard:     true, // ignored by variants without an arena guard
				}
				name := fmt.Sprintf("%s/%s/%s/s%d", structure, variant, policyName(policy), cfg.Shards)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rep, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Inserts == 0 || rep.Removes == 0 {
						t.Fatalf("degenerate run: %d inserts, %d removes (repro: %s)",
							rep.Inserts, rep.Removes, cfg)
					}
				})
			}
		}
	}
}

func policyName(p arena.Policy) string {
	if p == arena.PolicyShared {
		return "shared"
	}
	return "local"
}

// TestTortureRejectsUnknown ensures the builder reports undefined
// combinations instead of silently testing the wrong thing.
func TestTortureRejectsUnknown(t *testing.T) {
	for _, cfg := range []Config{
		{Structure: "singly", Variant: "nope"},
		{Structure: "ring", Variant: "HTM"},
		{Structure: "doubly", Variant: "REF"},
		{Structure: "itree", Variant: "TMHP"},
		{Structure: "skip", Variant: "Leak"},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%s/%s) accepted an undefined combination", cfg.Structure, cfg.Variant)
		}
	}
}

// TestTortureFailureDumpsFlightRecorder injects a validator failure into a
// built instance and checks the error carries both the repro line and the
// flight-recorder dump (lifecycle events + abort attribution).
func TestTortureFailureDumpsFlightRecorder(t *testing.T) {
	cfg := Config{Structure: StructSingly, Variant: "RR-FA", Threads: 2, Ops: 200, Keys: 32}
	cfg = cfg.withDefaults()
	inst, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.obs == nil {
		t.Fatal("TM-backed instance built without an observability domain")
	}
	inst.validate = func() error { return fmt.Errorf("injected failure") }
	_, err = runOn(cfg, inst)
	if err == nil {
		t.Fatal("injected validator failure did not fail the run")
	}
	msg := err.Error()
	for _, want := range []string{
		"repro: " + cfg.String(),
		"injected failure",
		"flight recorder (singly/RR-FA",
		"who-aborted-whom:",
		"begin", // at least one lifecycle event made it into the dump
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message missing %q:\n%s", want, msg)
		}
	}
}

// TestTortureBatchOps drives the oracle mix through Set.Apply and checks
// the pair-atomicity observer engages on TM-backed variants: every batch
// is all-or-nothing per shard, so the insert-both/remove-both toggler's
// pair must never be seen half-applied. The lockfree variant documents
// per-op application, so its run must skip the pin (PairChecks == 0).
func TestTortureBatchOps(t *testing.T) {
	for _, tc := range []struct {
		variant   string
		shards    int
		wantPairs bool
	}{
		{"RR-V", 1, true},
		{"TMHP", 2, true},
		{"LFHP", 1, false},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/s%d", tc.variant, tc.shards), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Structure: StructSingly, Variant: tc.variant,
				Threads: 4, Ops: 600, Keys: 64, Window: 4,
				Shards: tc.shards, BatchOps: 8, Seed: 0xba7c4,
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Inserts == 0 || rep.Removes == 0 {
				t.Fatalf("degenerate batch run: %d inserts, %d removes (repro: %s)",
					rep.Inserts, rep.Removes, cfg)
			}
			if tc.wantPairs && rep.PairChecks == 0 {
				t.Fatalf("pair-atomicity observer never ran (repro: %s)", cfg)
			}
			if !tc.wantPairs && rep.PairChecks != 0 {
				t.Fatalf("pair pin ran %d checks on a variant that documents per-op Apply (repro: %s)",
					rep.PairChecks, cfg)
			}
		})
	}
}

// TestTortureScanOracle checks the concurrent scan oracle arms on every
// Ascender-capable shape — singly/skip, RR and HTM, unsharded and behind
// the merged sharded cursor — and stays off where scanning is undefined
// (deferred-reclamation variants, trees), with the run's other invariants
// (exact oracle, memory books) undisturbed by the fixture keys either way.
func TestTortureScanOracle(t *testing.T) {
	for _, tc := range []struct {
		structure, variant string
		shards             int
		wantScans          bool
	}{
		{StructSingly, "RR-V", 1, true},
		{StructSingly, "HTM", 1, true},
		{StructSingly, "RR-FA", 3, true}, // merged cross-shard cursor
		{StructSkip, "RR-V", 2, true},
		{StructSingly, "TMHP", 1, false}, // Ascender but CanAscend() == false
		{StructITree, "HTM", 1, false},   // no Ascender at all
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/%s/s%d", tc.structure, tc.variant, tc.shards), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Structure: tc.structure, Variant: tc.variant,
				Threads: 4, Ops: 800, Keys: 64, Window: 3,
				Shards: tc.shards, Seed: 0x5ca9, Guard: true,
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantScans && rep.ScanChecks == 0 {
				t.Fatalf("scan oracle never ran on an Ascender variant (repro: %s)", cfg)
			}
			if !tc.wantScans && rep.ScanChecks != 0 {
				t.Fatalf("scan oracle ran %d checks on a variant without scan support (repro: %s)",
					rep.ScanChecks, cfg)
			}
		})
	}
}

// TestTortureBatchReproString pins the -batch suffix cmd/torture parses back.
func TestTortureBatchReproString(t *testing.T) {
	cfg := Config{
		Structure: "singly", Variant: "RR-V",
		Threads: 4, Ops: 600, Keys: 64, LookupPct: 20, Window: 4,
		Seed: 7, BatchOps: 8,
	}
	want := "torture -structure=singly -variant=RR-V -policy=0 -threads=4 -ops=600 -keys=64 -lookup=20 -window=4 -seed=7 -batch=8"
	if got := cfg.String(); got != want {
		t.Fatalf("batch repro string drifted:\n got %s\nwant %s", got, want)
	}
}

// TestTortureReproString pins the repro line format the failure messages
// and cmd/torture rely on.
func TestTortureReproString(t *testing.T) {
	cfg := Config{
		Structure: "etree", Variant: "TMHP", Policy: arena.PolicyShared,
		Threads: 6, Ops: 1000, Keys: 64, LookupPct: 30, Window: 5,
		Seed: 42, Guard: true,
	}
	want := "torture -structure=etree -variant=TMHP -policy=1 -threads=6 -ops=1000 -keys=64 -lookup=30 -window=5 -seed=42 -guard"
	if got := cfg.String(); got != want {
		t.Fatalf("repro string drifted:\n got %s\nwant %s", got, want)
	}
	cfg.Shards = 4
	want = "torture -structure=etree -variant=TMHP -policy=1 -threads=6 -ops=1000 -keys=64 -lookup=30 -window=5 -seed=42 -shards=4 -guard"
	if got := cfg.String(); got != want {
		t.Fatalf("sharded repro string drifted:\n got %s\nwant %s", got, want)
	}
}

// TestTortureSharded exercises the sharded build path at a shard count
// above the sweep's: a 4-shard precise variant and a 4-shard hazard
// variant, checking the per-shard memory books engage (the validator
// descends into every shard) and the per-key oracle holds across the
// routing facade.
func TestTortureSharded(t *testing.T) {
	for _, variant := range []string{"RR-V", "TMHP"} {
		t.Run(variant, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Structure: StructSingly, Variant: variant,
				Threads: 4, Ops: 600, Keys: 96, Window: 4,
				Shards: 4, Seed: 0xbeef, Guard: true,
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Inserts == 0 || rep.Removes == 0 {
				t.Fatalf("degenerate run: %d inserts, %d removes (repro: %s)",
					rep.Inserts, rep.Removes, cfg)
			}
			if rep.Deferred != 0 {
				t.Fatalf("%d deferred nodes after full drain (repro: %s)", rep.Deferred, cfg)
			}
		})
	}
}

// TestTortureShardedBuild checks the combined instance's metadata: one
// obs domain per shard (each under its own name, so a live registry or a
// failure dump shows all of them), summed sentinel baseline, and a clean
// run through runOn with the per-shard validator engaged.
func TestTortureShardedBuild(t *testing.T) {
	single, err := build(Config{Structure: StructSingly, Variant: "RR-V"}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Structure: StructSingly, Variant: "RR-V",
		Threads: 2, Ops: 200, Keys: 64, Shards: 3,
	}
	cfg = cfg.withDefaults()
	inst, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.obsAll); got != 3 {
		t.Fatalf("sharded instance carries %d obs domains, want 3", got)
	}
	if want := 3 * single.baseLive; inst.baseLive != want {
		t.Fatalf("sharded baseLive %d != 3 × single %d", inst.baseLive, single.baseLive)
	}
	if got := inst.set.Name(); got != "RR-V×3" {
		t.Fatalf("sharded set name %q, want RR-V×3", got)
	}
	if inst.validate == nil {
		t.Fatal("sharded instance has no per-shard validator")
	}
	if _, err := runOn(cfg, inst); err != nil {
		t.Fatalf("clean sharded run failed: %v", err)
	}
}
