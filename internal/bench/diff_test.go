package bench

import (
	"strings"
	"testing"
)

func cell(variant string, threads, shards int, mops, relStddev float64, p99 uint64) Cell {
	return Cell{
		Family: "server", Variant: variant, Threads: threads, Shards: shards,
		Conns: 4, Depth: 8, ReadPct: 50,
		Mops: mops, RelStddev: relStddev, OpP99Ns: p99,
	}
}

// TestDiffRegressionGate pins the tolerance-band semantics the CI trend
// gate relies on: drops inside tolerance+stddev pass, drops beyond it
// fail with an explanatory Why, and improvements never trip the gate.
func TestDiffRegressionGate(t *testing.T) {
	old := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 1.00, 0.05, 10_000),
		cell("RR-V", 4, 4, 1.00, 0.05, 10_000),
		cell("TMHP", 4, 1, 2.00, 0, 0),
	}}
	cur := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 0.85, 0.05, 10_000), // -15%, inside 0.10+0.05+0.05
		cell("RR-V", 4, 4, 0.50, 0.05, 10_000), // -50%: regression
		cell("TMHP", 4, 1, 2.60, 0, 0),         // +30%: improvement
	}}
	deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10})
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3", len(deltas))
	}
	var regressed []CellDelta
	for _, d := range deltas {
		if d.Regressed() {
			regressed = append(regressed, d)
		}
	}
	if len(regressed) != 1 {
		t.Fatalf("regressions = %+v, want exactly the shards=4 drop", regressed)
	}
	if !strings.Contains(regressed[0].Key, "shards=4") {
		t.Fatalf("wrong cell regressed: %s", regressed[0].Key)
	}
	if !strings.Contains(regressed[0].Why, "throughput") {
		t.Fatalf("Why missing throughput detail: %q", regressed[0].Why)
	}
}

// TestDiffSkipsUnmatched checks cells without a counterpart in the other
// snapshot are ignored — adding or retiring workloads must not gate.
func TestDiffSkipsUnmatched(t *testing.T) {
	old := Summary{Cells: []Cell{cell("RR-V", 4, 1, 1.0, 0, 0)}}
	cur := Summary{Cells: []Cell{
		cell("RR-V", 4, 2, 0.1, 0, 0), // new shard count: no counterpart
		cell("RR-V", 8, 1, 0.1, 0, 0), // new thread count: no counterpart
	}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 0 {
		t.Fatalf("unmatched cells compared: %+v", deltas)
	}
}

// TestDiffShardZeroOneEquivalent checks shards=0 (legacy snapshots) and
// shards=1 describe the same measurement.
func TestDiffShardZeroOneEquivalent(t *testing.T) {
	old := Summary{Cells: []Cell{cell("RR-V", 4, 0, 1.0, 0, 0)}}
	cur := Summary{Cells: []Cell{cell("RR-V", 4, 1, 1.0, 0, 0)}}
	if deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10}); len(deltas) != 1 {
		t.Fatalf("shards 0 vs 1 did not join: %+v", deltas)
	}
}

// TestDiffP99Gate checks the optional latency gate: growth beyond the
// band regresses, and cells without p99 data never do.
func TestDiffP99Gate(t *testing.T) {
	old := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 1.0, 0, 10_000),
		cell("TMHP", 4, 1, 1.0, 0, 0),
	}}
	cur := Summary{Cells: []Cell{
		cell("RR-V", 4, 1, 1.0, 0, 40_000), // 4× p99
		cell("TMHP", 4, 1, 1.0, 0, 0),
	}}
	deltas := Diff(old, cur, DiffOptions{Tolerance: 0.10, P99Tolerance: 1.0})
	var regressed int
	for _, d := range deltas {
		if d.Regressed() {
			regressed++
			if !strings.Contains(d.Why, "p99") {
				t.Fatalf("Why missing p99 detail: %q", d.Why)
			}
		}
	}
	if regressed != 1 {
		t.Fatalf("p99 gate flagged %d cells, want 1", regressed)
	}
	// Without the opt-in, the same data passes.
	for _, d := range Diff(old, cur, DiffOptions{Tolerance: 0.10}) {
		if d.Regressed() {
			t.Fatalf("p99 gate fired without P99Tolerance: %+v", d)
		}
	}
}
