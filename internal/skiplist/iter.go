package skiplist

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Ordered iteration.
//
// The skiplist cursor is the list cursor (see internal/list/iter.go)
// plus a descent: each window resumes from the reserved node at the
// stashed level, runs right while the next key is below the resume
// point, drops to level 0, and then collects keys along the bottom
// chain until the budget is exhausted. Cuts reserve the current node
// exactly as point operations do, so a concurrent Remove revokes the
// cursor with the same single Revoke it already pays, and the next
// window re-navigates from the head by key — O(log n) expected, the
// same cost that makes the skiplist the stand-in for a balanced tree.

// Ascend implements sets.Ascender: it calls fn for each key >= from, in
// ascending order, until fn returns false or the skiplist is exhausted.
// Both skiplist modes support it (ModeHTM runs the whole scan as one
// transaction). The iteration is weakly consistent in the
// sync.Map.Range style documented on sets.Ascender, and the reservation
// hold is released on every exit path — exhaustion, early fn → false,
// or a panicking consumer.
func (s *SkipList) Ascend(tid int, from uint64, fn func(key uint64) bool) error {
	s.threads[tid].ops++
	last := from // next key to deliver must be >= last
	var batch []uint64
	holding := false
	windows, renavs := 0, 0
	defer func() {
		if holding {
			s.dropHoldOutsideWindow(tid)
		}
		if s.scanWindows != nil {
			s.scanWindows.Record(uint64(windows))
			s.scanRenavs.Record(uint64(renavs))
		}
	}()
	for {
		done := false
		resumed := false
		batch = batch[:0]
		s.rt.AtomicT(tid, func(tx *stm.Tx) {
			done = false
			batch = batch[:0]
			start, level, held := s.windowStart(tx, tid)
			resumed = held
			budget := s.budgetFor(tx, held, false)
			c := &searchCtx{tx: tx, tid: tid, curr: start, level: level}
			for {
				n := s.ar.At(c.curr)
				nextH := s.loadLink(tx, tid, c.curr, &n.next[c.level])
				if nextH.IsNil() {
					if c.level == 0 {
						// End of the bottom chain: the scan is complete.
						s.release(c, held)
						done = true
						return
					}
					c.level--
					continue
				}
				nk := s.loadWord(tx, tid, nextH, &s.ar.At(nextH).key)
				if nk >= last {
					if c.level > 0 {
						// Descend: the first key >= last is below us.
						c.level--
						continue
					}
					// Bottom chain: deliver (keys here ascend, so every
					// subsequent key also clears last).
					batch = append(batch, nk)
				}
				// Advance rightward (toward the resume point above level 0,
				// collecting along the bottom at level 0). Only rightward
				// steps consume budget, matching run().
				c.curr = nextH
				c.steps++
				if c.steps >= budget {
					// Cut even with an empty batch: re-navigation after a
					// revocation stays windowed. When the batch is
					// non-empty the hold lands on the node holding its
					// last key, which is < the next window's resume key.
					s.cutWindow(c, held)
					return
				}
			}
		})
		windows++
		if windows > 1 && !resumed {
			// The previous hold was revoked (or spuriously lost): this
			// window had to re-navigate from the head by key.
			renavs++
		}
		holding = !done
		for _, k := range batch {
			if !fn(k) {
				return nil
			}
			last = k + 1
		}
		if done {
			return nil
		}
	}
}

// CanAscend reports that the skiplist supports the windowed cursor in
// every mode (the serve layer advertises scan capability through it):
// the deferred modes resume exactly like point operations, via the
// dead-checked start handle instead of a reservation.
func (s *SkipList) CanAscend() bool { return true }

// dropHoldOutsideWindow releases the iterator's reservation from outside
// any window transaction (early consumer termination or a consumer
// panic).
func (s *SkipList) dropHoldOutsideWindow(tid int) {
	switch s.mode {
	case ModeRR:
		s.rt.AtomicT(tid, func(tx *stm.Tx) {
			s.rr.Release(tx, tid)
		})
	case ModeTMHE:
		s.threads[tid].start = arena.Nil
		s.he.ClearSlots(tid)
	case ModeTMVBR:
		s.threads[tid].start = arena.Nil
	}
}

var _ sets.Ascender = (*SkipList)(nil)
