package stm

import (
	"time"

	"hohtx/internal/obs"
)

// Atomic executes fn as a transaction, retrying on conflicts until it
// commits. Per the runtime's profile, after MaxAttempts speculative
// failures — or immediately after a capacity overflow — the transaction is
// re-run in serial mode under an exclusive lock, where it cannot fail.
//
// fn may be executed multiple times and must therefore be free of side
// effects other than through transactional cells, Tx.OnCommit and
// Tx.OnAbort. fn must not start nested Atomic transactions on any runtime.
//
// A panic in fn (other than the internal abort signal) propagates to the
// caller after locks are released and abort hooks run.
func (rt *Runtime) Atomic(fn func(*Tx)) { rt.AtomicT(-1, fn) }

// AtomicT is Atomic with the caller's thread id, which flows into the
// observability layer (flight-recorder events and abort attribution carry
// it). tid -1 means unknown; the transaction semantics are identical.
func (rt *Runtime) AtomicT(tid int, fn func(*Tx)) { rt.atomicT(tid, 0, fn) }

// AtomicBatchT is AtomicT for a batch entry point: fn carries n logical
// operations in one transaction. n does not change the execution — it
// flows into the per-batch-size statistics (log₂ buckets of aborts and
// serial fallbacks, see Stats.Batch) so the capacity cliff is measurable
// as a function of batch size rather than inferred from aggregates.
func (rt *Runtime) AtomicBatchT(tid, n int, fn func(*Tx)) { rt.atomicT(tid, n, fn) }

func (rt *Runtime) atomicT(tid, batch int, fn func(*Tx)) {
	tx := rt.txPool.Get().(*Tx)
	defer rt.txPool.Put(tx)
	tx.tid = int32(tid)

	// One sampling decision per transaction: a sampled transaction is
	// traced and timed end to end. With no probe attached this is one nil
	// check; with sampling disabled, one atomic load and a branch.
	p := rt.obs
	sampled := p != nil && p.D.Sampled(tx.slotHash)
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	// The request span, when the serving layer armed one on this tid,
	// deliberately sits outside the sampling gate: the slowlog it feeds
	// exists to catch outliers, which uniform sampling throws away. With
	// no span armed the cost is one bounds check and one pointer load.
	var sp *obs.Span
	if p != nil {
		sp = p.D.SpanOf(tid)
	}

	serial := false
	aborted := uint64(0)
	for attempt := 0; ; attempt++ {
		tx.reset(serial)
		if sampled {
			p.Rec.Emit(tid, obs.EvBegin, 0, 0, uint64(attempt))
		}
		var committed bool
		if sp == nil {
			committed = tx.runAttempt(fn)
		} else {
			a0 := time.Now()
			committed = tx.runAttempt(fn)
			ph := obs.SpanAttempts
			if serial {
				ph = obs.SpanSerial
			}
			sp.Add(ph, uint64(time.Since(a0)))
			sp.NoteAttempt(serial)
		}
		if committed {
			rt.stats.record(tx, serial)
			if batch > 0 {
				rt.stats.recordBatch(tx, batch, aborted, serial)
			}
			if sampled {
				tx.noteCommit(p, t0)
			}
			runHooks(tx.commitHooks)
			return
		}
		aborted++
		rt.stats.recordAbort(tx)
		if sp != nil {
			// Stamp the abort cause and the owner the attribution table
			// blames onto the request — even unsampled, so a slow request's
			// abort chain is never a forensics hole. Owner lookups only read
			// the table; NoteWrite stays sampled, so the blame can be -1
			// (unknown) when the owning transaction was not sampled.
			owner := -1
			if tx.conflict != nil {
				owner = p.Attr.Owner(tx.conflict)
			}
			sp.NoteAbort(uint8(tx.cause), owner)
		}
		if sampled {
			tx.noteAbort(p)
		}
		runHooks(tx.abortHooks)
		if serial {
			// Serial commits cannot fail; reaching here means fn itself
			// aborted (Restart) even in serial mode. Honor it and retry
			// serially: the structure's own logic asked for re-execution.
			continue
		}
		if tx.cause == CauseCapacity || attempt+1 >= rt.prof.MaxAttempts {
			serial = true
			if sampled {
				p.Rec.Emit(tid, obs.EvSerial, uint8(tx.cause), 0, 0)
			}
			continue
		}
		if sampled {
			b0 := time.Now()
			backoff(tx, attempt)
			p.BackoffNs.RecordAt(tx.slotHash, uint64(time.Since(b0)))
		} else {
			backoff(tx, attempt)
		}
	}
}

// runAttempt executes fn once and tries to commit, converting the internal
// abort panic into a false return. Serial attempts hold the exclusive
// serial lock for their entire duration.
func (tx *Tx) runAttempt(fn func(*Tx)) (committed bool) {
	if tx.serial {
		tx.rt.commitLock.lock()
		defer tx.rt.commitLock.unlock()
		// Take the snapshot after acquiring the lock so no commit can
		// intervene between snapshot and execution.
		tx.rv = tx.rt.now()
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSig); ok {
				committed = false
				return
			}
			panic(r)
		}
	}()
	fn(tx)
	return tx.commit()
}

func runHooks(hooks []txHook) {
	for i := range hooks {
		hooks[i].run()
	}
}

// backoff delays a conflicted transaction before its next attempt, with
// exponentially growing bounded jitter.
func backoff(tx *Tx, attempt int) {
	if attempt > 8 {
		attempt = 8
	}
	limit := uint64(tx.rt.prof.SpinBase) << uint(attempt)
	n := tx.nextRand() % (limit + 1)
	for i := uint64(0); i < n; i++ {
		pause(int(i & 7))
	}
}

// Run executes fn transactionally and returns its result; it is Atomic for
// closures that produce a value.
func Run[T any](rt *Runtime, fn func(*Tx) T) T {
	var out T
	rt.Atomic(func(tx *Tx) {
		out = fn(tx)
	})
	return out
}

// Run2 executes fn transactionally and returns both results.
func Run2[A, B any](rt *Runtime, fn func(*Tx) (A, B)) (A, B) {
	var a A
	var b B
	rt.Atomic(func(tx *Tx) {
		a, b = fn(tx)
	})
	return a, b
}
