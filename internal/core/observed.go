package core

import (
	"time"

	"hohtx/internal/obs"
	"hohtx/internal/pad"
	"hohtx/internal/stm"
)

// Reservation hold-time measurement. A "hold" starts when a thread's
// Reserve of a nonzero reference commits and ends when the owning thread
// commits a Release, commits a replacement Reserve, or observes (via a
// committed Get) that the reservation is gone — the revoked case, timed
// from the victim's side because the revoker cannot know which threads it
// hit. The distribution of hold times bounds how long a reservation can
// fence another thread's reclamation, which is the quantity the paper's
// immediacy argument (§3) is about.
//
// All bookkeeping runs in OnCommit hooks, so aborted attempts leave no
// trace, and each slot is touched only by its owning thread's hooks
// (commit hooks run sequentially per thread), so the slots need no
// atomics.

// holdSlot is one thread's in-progress timed hold.
type holdSlot struct {
	t0 time.Time // start of the timed hold; zero = none in progress
	_  pad.Line
}

// observed decorates a Reservation with hold-time measurement. Register,
// Revoke, Strict and Name pass through via embedding. The hooks are bound
// function values built once at construction and scheduled with
// OnCommitCall (tid and the reserved ref travel in the argument slots),
// so a hold's bookkeeping costs no per-call closure — the measurement
// must not itself allocate on the path whose budget it verifies.
type observed struct {
	Reservation
	p           *obs.HoldProbe
	holds       []holdSlot
	reserveHook func(a, b, c uint64) // a=tid, b=ref: close the old hold, maybe start timing
	endHook     func(a, b, c uint64) // a=tid: close the hold
}

// Observed wraps r so that reservation hold times are recorded into p's
// histogram (sampled per hold, at Reserve time). A nil probe returns r
// unchanged. threads must cover every tid that will use the reservation.
func Observed(r Reservation, p *obs.HoldProbe, threads int) Reservation {
	if p == nil {
		return r
	}
	if threads <= 0 {
		threads = 64
	}
	o := &observed{Reservation: r, p: p, holds: make([]holdSlot, threads)}
	o.reserveHook = func(a, b, _ uint64) {
		tid := int(int64(a))
		o.end(tid)
		if b != 0 && o.p.D.Sampled(uint64(tid)) {
			o.holds[tid].t0 = time.Now()
		}
	}
	o.endHook = func(a, _, _ uint64) { o.end(int(int64(a))) }
	return o
}

func (o *observed) Reserve(tx *stm.Tx, tid int, ref uint64) {
	o.Reservation.Reserve(tx, tid, ref)
	if o.p.D.SampleShift() < 0 && o.holds[tid].t0.IsZero() {
		return // disabled and nothing to close out: skip the hook entirely
	}
	tx.OnCommitCall(o.reserveHook, uint64(int64(tid)), ref, 0)
}

func (o *observed) Release(tx *stm.Tx, tid int) {
	o.Reservation.Release(tx, tid)
	if !o.holds[tid].t0.IsZero() {
		tx.OnCommitCall(o.endHook, uint64(int64(tid)), 0, 0)
	}
}

func (o *observed) Get(tx *stm.Tx, tid int) uint64 {
	ref := o.Reservation.Get(tx, tid)
	if ref == 0 && !o.holds[tid].t0.IsZero() {
		// The reservation is gone (revoked, or spuriously lost under a
		// relaxed scheme — either way the hold is over if this commits).
		tx.OnCommitCall(o.endHook, uint64(int64(tid)), 0, 0)
	}
	return ref
}

// end closes tid's timed hold, if one is in progress.
func (o *observed) end(tid int) {
	if t0 := o.holds[tid].t0; !t0.IsZero() {
		o.holds[tid].t0 = time.Time{}
		o.p.HoldNs.RecordAt(uint64(tid), uint64(time.Since(t0)))
	}
}
