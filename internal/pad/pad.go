// Package pad provides cache-line padding helpers shared by the
// concurrency-sensitive packages in this repository.
//
// False sharing between per-thread metadata slots is one of the effects the
// paper explicitly designs around ("As long as each thread's node is in a
// separate cache line, these methods should not experience false transaction
// conflicts", §3.1), so every array of per-thread state in this repository
// pads its elements to a cache-line multiple.
package pad

// CacheLine is the assumed size in bytes of one CPU cache line. 64 bytes is
// correct for every x86-64 and most ARM server parts; being wrong in either
// direction affects only performance, never correctness.
const CacheLine = 64

// Line is an unused spacer sized to one cache line. Embed it between hot
// fields, or after the fields of an element stored in a per-thread array.
type Line [CacheLine]byte
