package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hohtx/internal/core"
	"hohtx/internal/sets"
)

func variants(threads, w int) []*SkipList {
	var out []*SkipList
	for _, k := range core.Kinds() {
		out = append(out, New(Config{Mode: ModeRR, RRKind: k, Threads: threads, Window: core.Window{W: w}}))
	}
	out = append(out,
		New(Config{Mode: ModeHTM, Threads: threads}),
		New(Config{Mode: ModeTMHE, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 8}),
		New(Config{Mode: ModeTMVBR, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 8}),
	)
	return out
}

func TestSequentialSemantics(t *testing.T) {
	for _, s := range variants(1, 4) {
		t.Run(s.Name(), func(t *testing.T) {
			s.Register(0)
			if s.Lookup(0, 5) || s.Remove(0, 5) {
				t.Fatal("empty skiplist misbehaved")
			}
			for _, k := range []uint64{50, 10, 90, 30, 70} {
				if !s.Insert(0, k) {
					t.Fatalf("insert %d", k)
				}
			}
			if s.Insert(0, 30) {
				t.Fatal("duplicate insert")
			}
			for _, k := range []uint64{10, 30, 50, 70, 90} {
				if !s.Lookup(0, k) {
					t.Fatalf("lookup %d", k)
				}
			}
			if s.Lookup(0, 40) {
				t.Fatal("phantom key")
			}
			if !s.Remove(0, 50) || s.Remove(0, 50) {
				t.Fatal("remove semantics")
			}
			if got := s.Snapshot(); !sets.KeysEqual(got, []uint64{10, 30, 70, 90}) {
				t.Fatalf("snapshot = %v", got)
			}
			if !s.ValidateLevels() {
				t.Fatal("level structure invalid")
			}
		})
	}
}

func TestSequentialVsModel(t *testing.T) {
	for _, s := range variants(1, 3) {
		t.Run(s.Name(), func(t *testing.T) {
			s.Register(0)
			rng := rand.New(rand.NewSource(21))
			model := map[uint64]bool{}
			for i := 0; i < 4000; i++ {
				key := uint64(rng.Intn(256)) + 1
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Insert(0, key), !model[key]; got != want {
						t.Fatalf("op %d: Insert(%d) = %v want %v", i, key, got, want)
					}
					model[key] = true
				case 1:
					if got, want := s.Remove(0, key), model[key]; got != want {
						t.Fatalf("op %d: Remove(%d) = %v want %v", i, key, got, want)
					}
					delete(model, key)
				default:
					if got, want := s.Lookup(0, key), model[key]; got != want {
						t.Fatalf("op %d: Lookup(%d) = %v want %v", i, key, got, want)
					}
				}
				if i%1000 == 0 && !s.ValidateLevels() {
					t.Fatalf("levels invalid at op %d", i)
				}
			}
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			if got := s.Snapshot(); !sets.KeysEqual(got, want) {
				t.Fatal("final snapshot mismatch")
			}
		})
	}
}

func TestPreciseReclamation(t *testing.T) {
	s := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 1, Window: core.Window{W: 4}})
	s.Register(0)
	for k := uint64(1); k <= 300; k++ {
		s.Insert(0, k)
	}
	if live := s.LiveNodes(); live != 301 {
		t.Fatalf("live = %d, want 301", live)
	}
	for k := uint64(1); k <= 300; k++ {
		if !s.Remove(0, k) {
			t.Fatalf("remove %d", k)
		}
		if s.DeferredNodes() != 0 {
			t.Fatal("skiplist deferred a free")
		}
	}
	if live := s.LiveNodes(); live != 1 {
		t.Fatalf("live = %d after emptying, want 1 (sentinel)", live)
	}
}

func TestHeightDistribution(t *testing.T) {
	s := New(Config{Mode: ModeHTM, Threads: 1})
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[s.randHeight(0)]++
	}
	if counts[1] < 8000 || counts[1] > 12000 {
		t.Fatalf("P(h=1) skewed: %d/20000", counts[1])
	}
	if counts[2] < 3500 || counts[2] > 6500 {
		t.Fatalf("P(h=2) skewed: %d/20000", counts[2])
	}
	for h := range counts {
		if h < 1 || h > MaxHeight {
			t.Fatalf("height %d out of range", h)
		}
	}
}

func TestConcurrentStress(t *testing.T) {
	const threads = 8
	for _, s := range variants(threads, 4) {
		t.Run(s.Name(), func(t *testing.T) {
			var succIns, succRem atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					s.Register(tid)
					rng := rand.New(rand.NewSource(int64(tid)*4241 + 3))
					for i := 0; i < 1200; i++ {
						key := uint64(rng.Intn(256)) + 1
						switch rng.Intn(3) {
						case 0:
							if s.Insert(tid, key) {
								succIns.Add(1)
							}
						case 1:
							if s.Remove(tid, key) {
								succRem.Add(1)
							}
						default:
							s.Lookup(tid, key)
						}
					}
					s.Finish(tid)
				}(w)
			}
			wg.Wait()
			snap := s.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i-1] >= snap[i] {
					t.Fatal("snapshot not sorted")
				}
			}
			if int64(len(snap)) != succIns.Load()-succRem.Load() {
				t.Fatalf("balance: |set|=%d ins-rem=%d", len(snap), succIns.Load()-succRem.Load())
			}
			if !s.ValidateLevels() {
				t.Fatal("levels invalid after stress")
			}
			// Deferred covers retirees stranded by a racing thread's still-
			// published reservation at Finish time (bounded; zero for the
			// precise modes).
			if live, want := s.LiveNodes(), uint64(len(snap))+1+s.DeferredNodes(); live != want {
				t.Fatalf("memory books: live=%d want=%d", live, want)
			}
		})
	}
}

// TestRemoveTallTowers forces removals of tall nodes whose unlink touches
// many levels, including via resumed traversals (tiny window).
func TestRemoveTallTowers(t *testing.T) {
	s := New(Config{Mode: ModeRR, RRKind: core.KindXO, Threads: 2, Window: core.Window{W: 1}})
	s.Register(0)
	s.Register(1)
	// Insert enough keys that some towers are 5+ levels tall.
	for k := uint64(1); k <= 2000; k++ {
		s.Insert(0, k)
	}
	// Remove every key with W=1 windows (maximal cut/resume churn).
	for k := uint64(1); k <= 2000; k++ {
		if !s.Remove(1, k) {
			t.Fatalf("remove %d", k)
		}
	}
	if !s.ValidateLevels() {
		t.Fatal("levels invalid")
	}
	if live := s.LiveNodes(); live != 1 {
		t.Fatalf("live = %d, want 1", live)
	}
}
