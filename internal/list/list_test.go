package list

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// variants returns one list per mechanism under test, singly linked.
func variants(threads int, w int) []*List {
	var out []*List
	for _, k := range core.Kinds() {
		out = append(out, New(Config{Mode: ModeRR, RRKind: k, Threads: threads, Window: core.Window{W: w}}))
	}
	out = append(out,
		New(Config{Mode: ModeHTM, Threads: threads}),
		New(Config{Mode: ModeTMHP, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 8}),
		New(Config{Mode: ModeTMHE, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 8}),
		New(Config{Mode: ModeTMVBR, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 8}),
		New(Config{Mode: ModeREF, Threads: threads, Window: core.Window{W: w}}),
		New(Config{Mode: ModeER, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 8}),
	)
	return out
}

func TestSequentialSemantics(t *testing.T) {
	for _, l := range variants(1, 3) {
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			if l.Lookup(0, 5) {
				t.Fatal("lookup on empty list")
			}
			if !l.Insert(0, 5) || !l.Insert(0, 3) || !l.Insert(0, 9) {
				t.Fatal("insert of new key failed")
			}
			if l.Insert(0, 5) {
				t.Fatal("duplicate insert succeeded")
			}
			if !l.Lookup(0, 3) || !l.Lookup(0, 5) || !l.Lookup(0, 9) {
				t.Fatal("lookup of present key failed")
			}
			if l.Lookup(0, 4) || l.Lookup(0, 100) {
				t.Fatal("lookup of absent key succeeded")
			}
			if !l.Remove(0, 5) {
				t.Fatal("remove of present key failed")
			}
			if l.Remove(0, 5) {
				t.Fatal("remove of absent key succeeded")
			}
			if got := l.Snapshot(); !sets.KeysEqual(got, []uint64{3, 9}) {
				t.Fatalf("snapshot = %v, want [3 9]", got)
			}
			l.Finish(0)
		})
	}
}

// TestSequentialVsModel drives each variant with a long random script and
// compares every return value against a map model.
func TestSequentialVsModel(t *testing.T) {
	for _, l := range variants(1, 4) {
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			rng := rand.New(rand.NewSource(42))
			model := map[uint64]bool{}
			for i := 0; i < 4000; i++ {
				key := uint64(rng.Intn(64)) + 1
				switch rng.Intn(3) {
				case 0:
					if got, want := l.Insert(0, key), !model[key]; got != want {
						t.Fatalf("op %d: Insert(%d) = %v, want %v", i, key, got, want)
					}
					model[key] = true
				case 1:
					if got, want := l.Remove(0, key), model[key]; got != want {
						t.Fatalf("op %d: Remove(%d) = %v, want %v", i, key, got, want)
					}
					delete(model, key)
				case 2:
					if got, want := l.Lookup(0, key), model[key]; got != want {
						t.Fatalf("op %d: Lookup(%d) = %v, want %v", i, key, got, want)
					}
				}
			}
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			if got := l.Snapshot(); !sets.KeysEqual(got, want) {
				t.Fatalf("final snapshot mismatch: %v vs model %v", got, want)
			}
			l.Finish(0)
		})
	}
}

// TestPreciseReclamation checks the paper's headline property for the RR
// variants: a removed node's memory is free the moment Remove returns, so
// live-node accounting exactly tracks the set size (plus the sentinel).
func TestPreciseReclamation(t *testing.T) {
	for _, k := range core.Kinds() {
		l := New(Config{Mode: ModeRR, RRKind: k, Threads: 1, Window: core.Window{W: 4}})
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			for key := uint64(1); key <= 100; key++ {
				l.Insert(0, key)
			}
			if live := l.LiveNodes(); live != 101 {
				t.Fatalf("live = %d, want 101", live)
			}
			for key := uint64(1); key <= 100; key += 2 {
				l.Remove(0, key)
				if l.DeferredNodes() != 0 {
					t.Fatal("precise variant deferred a free")
				}
			}
			if live := l.LiveNodes(); live != 51 {
				t.Fatalf("live after removes = %d, want 51", live)
			}
		})
	}
}

// TestTMHPDefersReclamation checks the contrast case: hazard-pointer
// reclamation leaves retired nodes unfreed until a scan.
func TestTMHPDefersReclamation(t *testing.T) {
	l := New(Config{Mode: ModeTMHP, Threads: 1, Window: core.Window{W: 4}, ScanThreshold: 1000})
	l.Register(0)
	for key := uint64(1); key <= 50; key++ {
		l.Insert(0, key)
	}
	for key := uint64(1); key <= 50; key++ {
		l.Remove(0, key)
	}
	if def := l.DeferredNodes(); def != 50 {
		t.Fatalf("deferred = %d, want 50 (threshold not reached)", def)
	}
	if live := l.LiveNodes(); live != 51 {
		t.Fatalf("live = %d, want 51 (50 deferred + sentinel)", live)
	}
	l.Finish(0)
	if def := l.DeferredNodes(); def != 0 {
		t.Fatalf("deferred after flush = %d", def)
	}
	if live := l.LiveNodes(); live != 1 {
		t.Fatalf("live after flush = %d, want 1", live)
	}
}

// TestFigure1Scenario replays the execution of the paper's Figure 1 at the
// list level: T2 reserves the node holding 30 at a window boundary; T4
// removes 30 (revoking T2's reservation and freeing the node immediately);
// T2's next window finds its reservation gone, restarts from the head, and
// still computes the correct answer.
func TestFigure1Scenario(t *testing.T) {
	for _, k := range core.Kinds() {
		l := New(Config{Mode: ModeRR, RRKind: k, Threads: 5, Window: core.Window{W: 4}})
		t.Run(l.Name(), func(t *testing.T) {
			for tid := 0; tid < 5; tid++ {
				l.Register(tid)
			}
			for _, key := range []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90} {
				l.Insert(0, key)
			}
			// Locate the node holding 30.
			var h30 arena.Handle
			for h := arena.Handle(l.ar.At(l.head).next.Raw()); !h.IsNil(); h = arena.Handle(l.ar.At(h).next.Raw()) {
				if l.ar.At(h).key.Raw() == 30 {
					h30 = h
					break
				}
			}
			if h30.IsNil() {
				t.Fatal("node 30 not found")
			}
			// T2's first window ends reserving node 30 (as in the figure).
			l.rt.Atomic(func(tx *stm.Tx) { l.rr.Reserve(tx, 2, uint64(h30)) })
			// T4 removes 30: revokes all reservations of it and frees it
			// before Remove returns.
			if !l.Remove(4, 30) {
				t.Fatal("Remove(30) failed")
			}
			if l.ar.Live(h30) {
				t.Fatal("node 30 still allocated after Remove returned (not precise)")
			}
			// T2's next transaction must see its reservation revoked …
			got := stm.Run(l.rt, func(tx *stm.Tx) uint64 { return l.rr.Get(tx, 2) })
			if got != 0 {
				t.Fatalf("T2's reservation survived the revoke: %d", got)
			}
			// … and a full operation by T2 restarts from the head and is
			// still correct.
			if !l.Lookup(2, 70) {
				t.Fatal("Lookup(70) after revocation returned false")
			}
			if l.Lookup(2, 30) {
				t.Fatal("Lookup(30) found a removed key")
			}
		})
	}
}

// runStress hammers a set with mixed operations and verifies the
// operation-count balance invariant, snapshot sortedness, and memory
// accounting.
func runStress(t *testing.T, s sets.Set, threads, iters int, keyRange uint64, mem sets.MemoryReporter) {
	t.Helper()
	var succIns, succRem atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Register(tid)
			rng := rand.New(rand.NewSource(int64(tid)*7919 + 1))
			for i := 0; i < iters; i++ {
				key := uint64(rng.Int63())%keyRange + 1
				switch rng.Intn(3) {
				case 0:
					if s.Insert(tid, key) {
						succIns.Add(1)
					}
				case 1:
					if s.Remove(tid, key) {
						succRem.Add(1)
					}
				default:
					s.Lookup(tid, key)
				}
			}
			s.Finish(tid)
		}(w)
	}
	wg.Wait()

	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("snapshot not strictly sorted at %d: %v >= %v", i, snap[i-1], snap[i])
		}
	}
	if int64(len(snap)) != succIns.Load()-succRem.Load() {
		t.Fatalf("balance violated: |set| = %d, inserts-removes = %d",
			len(snap), succIns.Load()-succRem.Load())
	}
	if mem != nil {
		if live, want := mem.LiveNodes(), uint64(len(snap))+1+mem.DeferredNodes(); live != want {
			t.Fatalf("memory books: live = %d, want %d (set+sentinel+deferred)", live, want)
		}
	}
}

func TestConcurrentStressSingly(t *testing.T) {
	const threads = 8
	for _, l := range variants(threads, 4) {
		t.Run(l.Name(), func(t *testing.T) {
			runStress(t, l, threads, 1500, 64, l)
		})
	}
}

func TestConcurrentStressWindowOne(t *testing.T) {
	// W=1 maximizes window cuts and reservation traffic.
	l := New(Config{Mode: ModeRR, RRKind: core.KindXO, Threads: 4, Window: core.Window{W: 1}})
	runStress(t, l, 4, 800, 32, l)
}

func TestConcurrentStressTinyCapacity(t *testing.T) {
	// A tiny HTM capacity forces frequent serial fallbacks; correctness
	// must be unaffected.
	l := New(Config{
		Mode: ModeRR, RRKind: core.KindV, Threads: 4,
		Window:  core.Window{W: 8},
		Profile: stm.Profile{Capacity: 24, MaxAttempts: 2},
	})
	runStress(t, l, 4, 600, 64, l)
	if l.Runtime().Stats().SerialCommits == 0 {
		t.Fatal("expected serial fallbacks with capacity 24")
	}
}

func TestDoublySequential(t *testing.T) {
	for _, mode := range []Mode{ModeRR, ModeHTM, ModeTMHP, ModeTMHE, ModeTMVBR} {
		cfg := Config{Mode: mode, RRKind: core.KindFA, Threads: 1, Window: core.Window{W: 3}}
		d := NewDoubly(cfg)
		t.Run(d.Name(), func(t *testing.T) {
			d.Register(0)
			for _, k := range []uint64{5, 1, 9, 3, 7} {
				if !d.Insert(0, k) {
					t.Fatalf("insert %d failed", k)
				}
			}
			if !d.ValidateLinks() {
				t.Fatal("prev links broken after inserts")
			}
			if !d.Remove(0, 5) || d.Remove(0, 5) {
				t.Fatal("remove semantics wrong")
			}
			if !d.ValidateLinks() {
				t.Fatal("prev links broken after remove")
			}
			if got := d.Snapshot(); !sets.KeysEqual(got, []uint64{1, 3, 7, 9}) {
				t.Fatalf("snapshot = %v", got)
			}
			d.Finish(0)
		})
	}
}

func TestDoublyRemoveRace(t *testing.T) {
	// All threads try to remove the same key; exactly one must win. The
	// strict variants decide via lostOp, the relaxed ones via retry.
	for _, k := range []core.Kind{core.KindFA, core.KindXO, core.KindV} {
		d := NewDoubly(Config{Mode: ModeRR, RRKind: k, Threads: 8, Window: core.Window{W: 2}})
		t.Run(d.Name(), func(t *testing.T) {
			for round := 0; round < 50; round++ {
				d.Register(0)
				if !d.Insert(0, 500) {
					t.Fatal("setup insert failed")
				}
				var wins atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						d.Register(tid)
						if d.Remove(tid, 500) {
							wins.Add(1)
						}
					}(w)
				}
				wg.Wait()
				if wins.Load() != 1 {
					t.Fatalf("round %d: %d winners removing one key", round, wins.Load())
				}
			}
		})
	}
}

func TestDoublyConcurrentStress(t *testing.T) {
	const threads = 8
	kinds := core.Kinds()
	var all []*DList
	for _, k := range kinds {
		all = append(all, NewDoubly(Config{Mode: ModeRR, RRKind: k, Threads: threads, Window: core.Window{W: 4}}))
	}
	all = append(all,
		NewDoubly(Config{Mode: ModeHTM, Threads: threads}),
		NewDoubly(Config{Mode: ModeTMHP, Threads: threads, Window: core.Window{W: 4}, ScanThreshold: 8}),
		NewDoubly(Config{Mode: ModeTMHE, Threads: threads, Window: core.Window{W: 4}, ScanThreshold: 8}),
		NewDoubly(Config{Mode: ModeTMVBR, Threads: threads, Window: core.Window{W: 4}, ScanThreshold: 8}),
	)
	for _, d := range all {
		t.Run(d.Name(), func(t *testing.T) {
			runStress(t, d, threads, 1200, 64, d)
			if !d.ValidateLinks() {
				t.Fatal("prev links broken after stress")
			}
		})
	}
}

func TestDoublyRejectsREF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDoubly(ModeREF) did not panic")
		}
	}()
	NewDoubly(Config{Mode: ModeREF, Threads: 1})
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range variants(1, 4) {
		if l.Name() == "" || seen[l.Name()] {
			t.Fatalf("bad or duplicate name %q", l.Name())
		}
		seen[l.Name()] = true
	}
}

// TestSetWindowLive flips the window size while operations are in flight;
// correctness must be unaffected (the knob only changes cut frequency).
func TestSetWindowLive(t *testing.T) {
	const threads = 4
	l := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: threads, Window: core.Window{W: 16}})
	stop := make(chan struct{})
	go func() {
		w := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.SetWindow(w)
			w = w%32 + 1
		}
	}()
	runStress(t, l, threads, 1000, 64, l)
	close(stop)
}

func TestEmptyAndSingleton(t *testing.T) {
	l := New(Config{Mode: ModeRR, RRKind: core.KindXO, Threads: 1, Window: core.Window{W: 1}})
	l.Register(0)
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("empty snapshot = %v", got)
	}
	if l.Remove(0, 1) {
		t.Fatal("remove on empty list")
	}
	if !l.Insert(0, 1) || !l.Remove(0, 1) {
		t.Fatal("singleton insert/remove")
	}
	if l.LiveNodes() != 1 {
		t.Fatalf("live = %d after emptying, want 1 (sentinel)", l.LiveNodes())
	}
}
