package reclaim

import (
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
)

// DefaultEraFreq is how many retirements pass between global-era
// advances. Hazard Eras increments its clock on (a fraction of)
// retirements so that reader reservations go stale and retirees whose
// lifetime the stale eras do not intersect become freeable; once per
// retirement is the canonical setting and the retire path's only shared
// write, so the default keeps it.
const DefaultEraFreq = 1

// heRetiree is one logically deleted node stamped with its lifetime
// interval: the era it was allocated in and the era it was retired in.
type heRetiree struct {
	h     arena.Handle
	birth uint64
	del   uint64
	stamp uint64
}

// heThread is one thread's hazard-era state.
type heThread struct {
	slots        []atomic.Uint64 // published era reservations (0 = empty)
	retired      []heRetiree
	sinceAdvance int
	_            pad.Line
}

// eraPageSize is the birth-table page length; pages are allocated lazily
// as the arena grows, and never freed, so readers index without locks.
const eraPageSize = 1024

// eraTable records the birth era of every arena slot, indexed by
// Handle.Index. Slot reuse overwrites the entry (StampAlloc runs before
// the new node is published, and the old entry is dead by then: a slot
// is only reallocated after its previous incarnation was freed, which
// removed it from every retired list). Grow-only paged layout: the page
// vector is copy-on-grow behind an atomic pointer, so the hot read path
// (Retire) is two loads and no locks.
type eraTable struct {
	mu    sync.Mutex
	pages atomic.Pointer[[]*[eraPageSize]atomic.Uint64]
}

func (t *eraTable) get(idx uint32) uint64 {
	pages := t.pages.Load()
	p := int(idx) / eraPageSize
	if pages == nil || p >= len(*pages) {
		return 0 // never stamped: treat as born at era 0 (conservative)
	}
	return (*pages)[p][int(idx)%eraPageSize].Load()
}

func (t *eraTable) set(idx uint32, era uint64) {
	p := int(idx) / eraPageSize
	pages := t.pages.Load()
	if pages == nil || p >= len(*pages) {
		t.grow(p)
		pages = t.pages.Load()
	}
	(*pages)[p][int(idx)%eraPageSize].Store(era)
}

func (t *eraTable) grow(p int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.pages.Load()
	n := 0
	if old != nil {
		n = len(*old)
	}
	if p < n {
		return // another grower got there first
	}
	grown := make([]*[eraPageSize]atomic.Uint64, p+1)
	if old != nil {
		copy(grown, *old)
	}
	for i := n; i <= p; i++ {
		grown[i] = new([eraPageSize]atomic.Uint64)
	}
	t.pages.Store(&grown)
}

// HazardEras implements the Hazard Eras scheme (Ramalhete & Correia,
// SPAA 2017 — see PAPERS.md): hazard-pointer-shaped reservations that
// publish an *era* instead of a pointer. A global era clock advances
// every EraFreq retirements; readers republish the current era in their
// slot at each protection point; each retiree carries its lifetime
// interval [birth era, delete era] and is freed once no published
// reservation falls inside that interval. One stale reservation
// therefore blocks only the nodes whose lifetime it intersects — nodes
// born after the stalled reader's era stay freeable, which is the
// robustness property separating HE from plain epochs (and the property
// the stalled-reader unit tests pin).
//
// Era reservations protect node *ranges*, not single nodes, so the
// structure-side protocol is exactly the hazard-pointer one (publish
// with an SC store, then transactionally re-check reachability): any
// scanner either observes the published era or the node was already
// unreachable when the reader re-validated. Birth eras live in a
// side table indexed by arena slot (eraTable) written by StampAlloc;
// structures call it immediately after arena Alloc.
type HazardEras struct {
	observer
	era       atomic.Uint64
	_         pad.Line
	threads   []heThread
	stats     []threadStats
	birth     eraTable
	free      FreeFunc
	threshold int
	eraFreq   int
	perThread int
}

// HEConfig parameterizes NewHazardEras.
type HEConfig struct {
	Threads        int // number of participating threads (required)
	SlotsPerThread int // era slots per thread; default 2 (traversal parity pair)
	ScanThreshold  int // retired-list length that triggers a scan; default 64
	EraFreq        int // retirements between era advances; default 1
	Free           FreeFunc
}

// NewHazardEras creates a hazard-era domain.
func NewHazardEras(cfg HEConfig) *HazardEras {
	if cfg.SlotsPerThread <= 0 {
		cfg.SlotsPerThread = 2
	}
	if cfg.ScanThreshold <= 0 {
		cfg.ScanThreshold = DefaultScanThreshold
	}
	if cfg.EraFreq <= 0 {
		cfg.EraFreq = DefaultEraFreq
	}
	he := &HazardEras{
		threads:   make([]heThread, cfg.Threads),
		stats:     make([]threadStats, cfg.Threads),
		free:      cfg.Free,
		threshold: cfg.ScanThreshold,
		eraFreq:   cfg.EraFreq,
		perThread: cfg.SlotsPerThread,
	}
	he.era.Store(1) // era 0 means "empty reservation" in the slots
	for i := range he.threads {
		he.threads[i].slots = make([]atomic.Uint64, cfg.SlotsPerThread)
	}
	return he
}

// Name implements Scheme.
func (he *HazardEras) Name() string { return "HE" }

// Era returns the current global era (exposed for tests and gauges).
func (he *HazardEras) Era() uint64 { return he.era.Load() }

// StampAlloc records the current era as h's birth era. Structures call
// it immediately after allocating h, before the node is published; a
// slot that was never stamped reads birth 0, which every reservation's
// interval check treats as "alive since forever" (conservative: the
// node is only freed once no reservation at all covers eras <= its
// delete era).
func (he *HazardEras) StampAlloc(h arena.Handle) {
	he.birth.set(h.Index(), he.era.Load())
}

// Protect publishes the *current era* in the caller's slot and returns
// h; h == 0 clears the slot instead (the hazard-pointer calling
// convention for "drop this protection"). As with hazard pointers the
// store is sequentially consistent, so a scanner is guaranteed to
// observe the reservation — or the node was already retired when the
// caller re-validates, in which case its delete era precedes the
// published one and the reservation was never needed.
func (he *HazardEras) Protect(tid, slot int, h arena.Handle) arena.Handle {
	if h == 0 {
		he.threads[tid].slots[slot].Store(0)
		return h
	}
	he.threads[tid].slots[slot].Store(he.era.Load())
	return h
}

// ClearSlots implements Scheme.
func (he *HazardEras) ClearSlots(tid int) {
	t := &he.threads[tid]
	for i := range t.slots {
		t.slots[i].Store(0)
	}
}

// Retire implements Scheme: h is queued with its [birth, delete] era
// interval, the global era advances every EraFreq retirements, and a
// scan runs once the thread has accumulated ScanThreshold retirements.
func (he *HazardEras) Retire(tid int, h arena.Handle, stamp uint64) {
	t := &he.threads[tid]
	del := he.era.Load()
	t.retired = append(t.retired, heRetiree{
		h: h, birth: he.birth.get(h.Index()), del: del, stamp: stamp,
	})
	he.stats[tid].noteRetire()
	he.noteRetireEv(tid, h)
	t.sinceAdvance++
	if t.sinceAdvance >= he.eraFreq {
		t.sinceAdvance = 0
		he.era.CompareAndSwap(del, del+1)
	}
	if len(t.retired) >= he.threshold {
		he.scan(tid, stamp)
	}
}

// Flush implements Scheme. Like HazardPointers.Flush it rescans until
// the retired list stops shrinking: freeing one retiree can be what
// lets another traversal move off its era (clearing the reservation
// that covered a second retiree), and this is the thread's final drain.
func (he *HazardEras) Flush(tid int, stamp uint64) {
	t := &he.threads[tid]
	for len(t.retired) > 0 {
		before := len(t.retired)
		he.scan(tid, stamp)
		if len(t.retired) == before {
			break
		}
	}
}

// scan frees every retiree whose lifetime interval contains no
// published era reservation.
func (he *HazardEras) scan(tid int, stamp uint64) {
	if sp := he.reclaimSpan(tid); sp != nil {
		t0 := time.Now()
		defer func() { sp.Add(obs.SpanReclaim, uint64(time.Since(t0))) }()
	}
	st := &he.stats[tid]
	st.scans.Add(1)
	reserved := make([]uint64, 0, len(he.threads)*he.perThread)
	for i := range he.threads {
		for j := range he.threads[i].slots {
			if e := he.threads[i].slots[j].Load(); e != 0 {
				reserved = append(reserved, e)
			}
		}
	}
	t := &he.threads[tid]
	kept := t.retired[:0]
	for _, r := range t.retired {
		if intervalReserved(reserved, r.birth, r.del) {
			kept = append(kept, r)
			continue
		}
		he.free(tid, r.h)
		st.noteFree(stamp - r.stamp)
		he.noteFreeEv(tid, stamp-r.stamp)
	}
	t.retired = kept
	st.leftover.Store(uint64(len(kept)))
}

// intervalReserved reports whether any published era falls inside
// [birth, del] — i.e. some reader may still hold a reference from the
// retiree's lifetime.
func intervalReserved(reserved []uint64, birth, del uint64) bool {
	for _, e := range reserved {
		if birth <= e && e <= del {
			return true
		}
	}
	return false
}

// Stats implements Scheme.
func (he *HazardEras) Stats() Stats { return sumStats(he.stats) }

var _ Scheme = (*HazardEras)(nil)
