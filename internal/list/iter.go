package list

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Ordered iteration.
//
// Ascend is a natural application of revocable reservations beyond point
// operations: the iterator's position *is* a reservation. Each step runs
// one window transaction that re-acquires the position via Get, emits up
// to W keys, and re-reserves where it stopped. If a concurrent Remove
// revokes the position (or a relaxed scheme loses it spuriously), the
// iterator re-navigates by key — it searches for the first key greater
// than the last one delivered — so iteration always makes progress and
// never touches freed memory, while removals remain free to reclaim
// immediately.
//
// The result is weakly consistent, like sync.Map.Range: each window sees
// a consistent snapshot, keys are delivered in ascending order exactly
// once, and a key is guaranteed to appear iff it was present for the whole
// iteration. This is the strongest guarantee hand-over-hand structures
// admit without giving up small transactions.

// Ascend implements sets.Ascender: it calls fn for each key >= from, in
// ascending order, until fn returns false or the list is exhausted. Only
// ModeRR and ModeHTM support it (ModeHTM runs the whole scan as one
// transaction); the deferred-reclamation modes return
// sets.ErrScanUnsupported — they have no revocable cursor position, so a
// windowed scan could dereference reclaimed nodes.
//
// The reservation hold is released no matter how the scan ends: clean
// exhaustion, an early fn → false, or a panicking consumer (the release
// runs in a defer, so the panic propagates with no hold left behind — a
// leaked hold would make the holder's next operation resume from a stale
// position and skip smaller keys).
func (l *List) Ascend(tid int, from uint64, fn func(key uint64) bool) error {
	if l.mode != ModeRR && l.mode != ModeHTM {
		return sets.ErrScanUnsupported
	}
	l.threads[tid].ops++
	last := from // next key to deliver must be >= last
	var batch []uint64
	holding := false // a reservation survives outside the current window
	windows, renavs := 0, 0
	defer func() {
		if holding {
			l.dropHoldOutsideWindow(tid)
		}
		if l.scanWindows != nil {
			l.scanWindows.Record(uint64(windows))
			l.scanRenavs.Record(uint64(renavs))
		}
	}()
	for {
		done := false
		resumed := false
		batch = batch[:0]
		l.rt.AtomicT(tid, func(tx *stm.Tx) {
			done = false
			batch = batch[:0]
			win := l.window()
			startH, held := l.windowStart(tx, tid, l.head)
			resumed = held
			var budget int
			if held {
				budget = win.Next()
			} else {
				budget = win.First(tx)
			}
			if l.mode == ModeHTM {
				budget = int(^uint(0) >> 1)
			}
			// Navigate to the first key >= last (no-op when resuming at a
			// reserved node, whose key is < last by construction).
			prevH := startH
			currH := arena.Handle(l.ar.At(prevH).next.Load(tx))
			steps := 0
			for !currH.IsNil() {
				n := l.ar.At(currH)
				k := n.key.Load(tx)
				if k >= last {
					batch = append(batch, k)
				}
				prevH = currH
				currH = arena.Handle(n.next.Load(tx))
				steps++
				if steps >= budget {
					// Cut even with an empty batch: re-navigation after a
					// revocation must also stay windowed. The hold lands
					// on a node with key < last, and the next window
					// resumes the filtered walk from it.
					break
				}
			}
			if currH.IsNil() {
				// Reached the end: this window completes the scan.
				l.windowTerminal(tx, tid, held, startH)
				done = true
				return
			}
			// Hand over at prevH (the node holding the last batched key).
			l.windowHold(tx, tid, held, startH, prevH)
		})
		windows++
		if windows > 1 && !resumed {
			// This window did not find the previous hold: a writer revoked
			// it (or a relaxed reservation lost it), and the cursor had to
			// re-navigate from the head by key.
			renavs++
		}
		holding = !done
		for _, k := range batch {
			if !fn(k) {
				return nil
			}
			last = k + 1
		}
		if done {
			return nil
		}
	}
}

// CanAscend reports whether this list's mode supports the reservation
// cursor (the serve layer advertises scan capability through it).
func (l *List) CanAscend() bool { return l.mode == ModeRR || l.mode == ModeHTM }

// dropHoldOutsideWindow releases the iterator's reservation from outside
// any window transaction (early consumer termination or a consumer
// panic).
func (l *List) dropHoldOutsideWindow(tid int) {
	if l.mode != ModeRR {
		return
	}
	l.rt.AtomicT(tid, func(tx *stm.Tx) {
		l.rr.Release(tx, tid)
	})
}
