// Package tree implements the paper's unbalanced binary search trees
// (§4.3): an internal tree (values in every node) and an external tree
// (values in leaves, routers inside), both with hand-over-hand
// transactions and revocable reservations, plus the whole-operation
// transaction baseline (HTM) and — for the external tree, as in the
// paper's Figure 7 — a hazard-pointer variant (TMHP). The external tree
// additionally supports the post-2017 deferred schemes of the extended
// reclamation matrix (DESIGN.md §14): hazard eras (TMHE) and
// version-based reclamation (TMVBR).
//
// The delicate part is the internal tree's removal of a node with two
// children: the victim's value is overwritten with its successor l (the
// leftmost descendant of its right child) and the successor's node is
// extracted. Because l's value moves *upward*, any traversal that reserved
// a node on the path from the victim to l could resume below l's new
// position and wrongly conclude l is absent; the remover therefore revokes
// every node on that path (victim and extracted node included), forcing
// those traversals to restart from the root (§4.3, last paragraph).
package tree

import (
	"sync/atomic"

	"hohtx/internal/arena"
	"hohtx/internal/core"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
	"hohtx/internal/reclaim"
	"hohtx/internal/stm"
)

// Mode selects the synchronization/reclamation mechanism.
type Mode uint8

const (
	// ModeRR is hand-over-hand transactions with revocable reservations.
	ModeRR Mode = iota
	// ModeHTM performs each operation in one transaction.
	ModeHTM
	// ModeTMHP is hand-over-hand with hazard pointers (external tree
	// only; the paper knows of no internal trees using hazard pointers).
	ModeTMHP
	// ModeTMHE is hand-over-hand with hazard eras (external tree only,
	// like TMHP, whose window protocol it shares).
	ModeTMHE
	// ModeTMVBR is hand-over-hand with version-based reclamation
	// (external tree only); no reservations, resumes revalidate.
	ModeTMVBR
)

// sentinel keys; user keys must be below sent0.
const (
	sent0 = ^uint64(0) - 2 // external tree: initial empty leaf
	sent1 = ^uint64(0) - 1 // external tree: inner sentinel router/leaf
	sent2 = ^uint64(0)     // roots
)

// MaxKey is the largest user key the trees accept.
const MaxKey = sent0 - 1

// node is the shared node layout for both trees. In the external tree a
// node is a leaf iff its left child is Nil.
type node struct {
	key   stm.Word
	left  stm.Word // arena.Handle bits
	right stm.Word
	dead  stm.Word // TMHP logical-deletion mark
	_     pad.Line
}

type threadState struct {
	start  arena.Handle
	parity int
	ops    uint64
	_      pad.Line
}

// Config parameterizes tree construction.
type Config struct {
	// Mode selects the mechanism; default ModeRR.
	Mode Mode
	// RRKind selects the reservation implementation for ModeRR.
	RRKind core.Kind
	// Threads is the number of distinct tids. Required.
	Threads int
	// Window is the hand-over-hand window policy; ignored for ModeHTM.
	Window core.Window
	// Profile overrides the TM profile; the zero value uses the paper's
	// tree setting (serial fallback after 8 attempts, §5).
	Profile stm.Profile
	// ArenaPolicy selects the allocator free-list policy.
	ArenaPolicy arena.Policy
	// ScanThreshold is the retire batch size for the deferred modes
	// (ModeTMHP/ModeTMHE scans, ModeTMVBR self-tick cadence).
	ScanThreshold int
	// TableBits/Assoc size the reservation metadata (see core.Config).
	TableBits int
	Assoc     int
	// YieldShift enables simulated preemption inside transactions (see
	// stm.Profile.YieldShift); it composes with whatever Profile is in
	// effect.
	YieldShift uint8
	// ClockPolicy selects the TM global-clock policy (see
	// stm.Profile.ClockPolicy); composes with the Profile like YieldShift.
	ClockPolicy stm.ClockPolicy
	// Guard enables the arena use-after-free sanitizer (see guard.go and
	// the identically named field in package list).
	Guard bool
	// GuardSink receives guard violations instead of the default panic.
	GuardSink func(arena.GuardEvent)
	// Obs, when non-nil, threads the observability domain through every
	// layer the tree owns (see the identically named field in package
	// list). Nil keeps every instrumented site at a single nil/branch
	// check.
	Obs *obs.Domain
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Profile == (stm.Profile{}) {
		c.Profile = stm.HTMProfile(8)
	}
	if c.YieldShift != 0 {
		c.Profile.YieldShift = c.YieldShift
	}
	if c.ClockPolicy != 0 {
		c.Profile.ClockPolicy = c.ClockPolicy
	}
	if c.Window.W == 0 && c.Mode != ModeHTM {
		c.Window.W = 16
	}
	if c.Mode == ModeHTM {
		c.Window = core.Window{}
	}
	if c.ScanThreshold <= 0 {
		c.ScanThreshold = reclaim.DefaultScanThreshold
	}
	return c
}

// base carries the machinery shared by the internal and external trees.
type base struct {
	rt          *stm.Runtime
	ar          *arena.Arena[node]
	rr          core.Reservation
	hp          *reclaim.HazardPointers
	he          *reclaim.HazardEras
	vbr         *reclaim.VBR
	mode        Mode
	win         core.Window
	winOverride atomic.Int32
	threads     []threadState
	guard       bool
	obs         *obs.Domain
}

func newBase(cfg Config) *base {
	b := &base{
		rt: stm.NewRuntime(cfg.Profile),
		ar: arena.New[node](arena.Config{
			Policy: cfg.ArenaPolicy, Threads: cfg.Threads,
			Guard: cfg.Guard, AccessCheck: cfg.GuardSink,
		}),
		mode:    cfg.Mode,
		win:     cfg.Window,
		threads: make([]threadState, cfg.Threads),
		guard:   cfg.Guard,
	}
	b.ar.SetRetire(func(n *node) { retireNode(n, b.rt.VersionFence()) })
	if cfg.Guard {
		b.ar.SetPoison(poisonNode)
	}
	switch cfg.Mode {
	case ModeRR:
		b.rr = core.New(cfg.RRKind, core.Config{
			Threads: cfg.Threads, TableBits: cfg.TableBits, Assoc: cfg.Assoc,
		})
	case ModeTMHP:
		b.hp = reclaim.NewHazardPointers(reclaim.HPConfig{
			Threads:        cfg.Threads,
			SlotsPerThread: 2,
			ScanThreshold:  cfg.ScanThreshold,
			Free:           func(tid int, h arena.Handle) { b.ar.Free(tid, h) },
		})
	case ModeTMHE:
		b.he = reclaim.NewHazardEras(reclaim.HEConfig{
			Threads:        cfg.Threads,
			SlotsPerThread: 2,
			ScanThreshold:  cfg.ScanThreshold,
			Free:           func(tid int, h arena.Handle) { b.ar.Free(tid, h) },
		})
	case ModeTMVBR:
		b.vbr = reclaim.NewVBR(reclaim.VBRConfig{
			Threads:   cfg.Threads,
			TickEvery: cfg.ScanThreshold,
			Clock:     b.rt.VersionFence,
			Tick:      b.rt.TickVersionFence,
			Free:      func(tid int, h arena.Handle) { b.ar.Free(tid, h) },
		})
	}
	if cfg.Obs != nil {
		b.obs = cfg.Obs
		b.rt.SetObserver(cfg.Obs.TxProbe())
		b.ar.SetObserver(cfg.Obs.AllocProbe())
		if b.rr != nil {
			b.rr = core.Observed(b.rr, cfg.Obs.HoldProbe(), cfg.Threads)
		}
		if b.hp != nil {
			b.hp.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return b.hp.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return b.hp.Stats().PeakDeferred })
		}
		if b.he != nil {
			b.he.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return b.he.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return b.he.Stats().PeakDeferred })
		}
		if b.vbr != nil {
			b.vbr.SetObserver(cfg.Obs.ReclaimProbe())
			cfg.Obs.Gauge("deferred_depth", func() uint64 { return b.vbr.Stats().Deferred })
			cfg.Obs.Gauge("peak_deferred", func() uint64 { return b.vbr.Stats().PeakDeferred })
		}
	}
	return b
}

// ObsDomain returns the attached observability domain (nil when detached).
func (b *base) ObsDomain() *obs.Domain { return b.obs }

// initNode allocates a sentinel-phase node with non-transactional Init
// (construction only: the node has never been shared).
func (b *base) initNode(key uint64, left, right arena.Handle) arena.Handle {
	h := b.ar.Alloc(0)
	n := b.ar.At(h)
	n.key.Init(key)
	n.left.Init(uint64(left))
	n.right.Init(uint64(right))
	n.dead.Init(0)
	return h
}

// allocNode allocates and transactionally initializes a node (recycled
// slots require transactional stores; see package arena).
func (b *base) allocNode(tx *stm.Tx, tid int, key uint64, left, right arena.Handle) arena.Handle {
	h := b.ar.Alloc(tid)
	if b.he != nil {
		b.he.StampAlloc(h)
	}
	tx.OnAbort(func() { b.ar.Free(tid, h) })
	n := b.ar.At(h)
	n.key.Store(tx, key)
	n.left.Store(tx, uint64(left))
	n.right.Store(tx, uint64(right))
	n.dead.Store(tx, 0)
	return h
}

// Runtime exposes the tree's TM runtime.
func (b *base) Runtime() *stm.Runtime { return b.rt }

// SetWindow changes the hand-over-hand window size at runtime (0 restores
// the configured value); see the identically named method in package list.
func (b *base) SetWindow(w int) { b.winOverride.Store(int32(w)) }

// window returns the effective window policy for a new transaction.
func (b *base) window() core.Window {
	win := b.win
	if o := b.winOverride.Load(); o > 0 {
		win.W = int(o)
	}
	return win
}

// Register implements part of sets.Set.
func (b *base) Register(tid int) {
	if b.rr != nil {
		b.rr.Register(tid)
	}
}

// Finish implements part of sets.Set.
func (b *base) Finish(tid int) {
	if b.hp != nil {
		b.hp.ClearSlots(tid)
		b.hp.Flush(tid, b.threads[tid].ops)
	}
	if b.he != nil {
		b.he.ClearSlots(tid)
		b.he.Flush(tid, b.threads[tid].ops)
	}
	if b.vbr != nil {
		b.vbr.Flush(tid, b.threads[tid].ops)
	}
}

// TxCommits reports committed transactions (benchmark statistics).
func (b *base) TxCommits() uint64 { return b.rt.Stats().Commits }

// TxAborts reports aborted transaction attempts.
func (b *base) TxAborts() uint64 { return b.rt.Stats().TotalAborts() }

// TxSerial reports serial-mode commits (HTM-fallback events).
func (b *base) TxSerial() uint64 { return b.rt.Stats().SerialCommits }

// TMStats returns the full TM statistics snapshot (per-cause aborts,
// clock and commit-lock counters).
func (b *base) TMStats() stm.Stats { return b.rt.Stats() }

// deferredScheme returns the tree's deferred-reclamation scheme, nil for
// the precise modes.
func (b *base) deferredScheme() reclaim.Scheme {
	switch {
	case b.hp != nil:
		return b.hp
	case b.he != nil:
		return b.he
	case b.vbr != nil:
		return b.vbr
	}
	return nil
}

// PeakDeferred reports the reclamation scheme's deferred high-water mark.
func (b *base) PeakDeferred() uint64 {
	if s := b.deferredScheme(); s != nil {
		return s.Stats().PeakDeferred
	}
	return 0
}

// ReclaimStats exposes the deferred-reclamation counters (zero for the
// precise modes).
func (b *base) ReclaimStats() reclaim.Stats {
	if s := b.deferredScheme(); s != nil {
		return s.Stats()
	}
	return reclaim.Stats{}
}

// AvgReclaimDelayOps reports the mean operations between logical deletion
// and physical free (0 for the precise modes).
func (b *base) AvgReclaimDelayOps() float64 {
	if s := b.deferredScheme(); s != nil {
		return s.Stats().AvgDelayOps()
	}
	return 0
}

// LiveNodes implements sets.MemoryReporter.
func (b *base) LiveNodes() uint64 { return b.ar.Stats().Live }

// DeferredNodes implements sets.MemoryReporter.
func (b *base) DeferredNodes() uint64 {
	if s := b.deferredScheme(); s != nil {
		return s.Stats().Deferred
	}
	return 0
}

// windowStart resolves the window's starting node; see the identically
// named helper in package list for the protocol discussion.
func (b *base) windowStart(tx *stm.Tx, tid int, root arena.Handle) (arena.Handle, bool) {
	switch b.mode {
	case ModeRR:
		if r := b.rr.Get(tx, tid); r != 0 {
			return arena.Handle(r), true
		}
		return root, false
	case ModeTMHP, ModeTMHE:
		s := b.threads[tid].start
		if s.IsNil() {
			return root, false
		}
		if b.loadWord(tx, tid, s, &b.ar.At(s).dead) != 0 {
			return root, false
		}
		return s, true
	case ModeTMVBR:
		// Nothing pins the held start between windows; bracket the dead
		// load with arena-generation checks (see the list engine's
		// protocol note).
		s := b.threads[tid].start
		if s.IsNil() || !b.ar.Live(s) {
			return root, false
		}
		if b.loadWord(tx, tid, s, &b.ar.At(s).dead) != 0 {
			return root, false
		}
		if !b.ar.Live(s) {
			return root, false
		}
		return s, true
	default:
		return root, false
	}
}

// windowHold attaches the traversal's hold to currH for resumption.
func (b *base) windowHold(tx *stm.Tx, tid int, held bool, currH arena.Handle) {
	ts := &b.threads[tid]
	switch b.mode {
	case ModeRR:
		if held {
			b.rr.Release(tx, tid)
		}
		b.rr.Reserve(tx, tid, uint64(currH))
	case ModeTMHP:
		slot := ts.parity & 1
		b.hp.Protect(tid, slot, currH)
		_ = b.loadWord(tx, tid, currH, &b.ar.At(currH).dead) // ordering re-check (see list)
		tx.OnCommit(func() {
			ts.start = currH
			b.hp.Protect(tid, slot^1, 0)
			ts.parity++
		})
	case ModeTMHE:
		slot := ts.parity & 1
		b.he.Protect(tid, slot, currH)
		_ = b.loadWord(tx, tid, currH, &b.ar.At(currH).dead) // ordering re-check (see list)
		tx.OnCommit(func() {
			ts.start = currH
			b.he.Protect(tid, slot^1, 0)
			ts.parity++
		})
	case ModeTMVBR:
		tx.OnCommit(func() { ts.start = currH })
	}
}

// windowTerminal drops the hold at operation end.
func (b *base) windowTerminal(tx *stm.Tx, tid int, held bool) {
	ts := &b.threads[tid]
	switch b.mode {
	case ModeRR:
		if held {
			b.rr.Release(tx, tid)
		}
	case ModeTMHP:
		tx.OnCommit(func() {
			ts.start = arena.Nil
			b.hp.ClearSlots(tid)
		})
	case ModeTMHE:
		tx.OnCommit(func() {
			ts.start = arena.Nil
			b.he.ClearSlots(tid)
		})
	case ModeTMVBR:
		tx.OnCommit(func() { ts.start = arena.Nil })
	}
}

// dropHold abandons a resumed position so the next window restarts from
// the root (used when a resumed window cannot learn the ancestors an
// update needs).
func (b *base) dropHold(tx *stm.Tx, tid int, held bool) {
	ts := &b.threads[tid]
	switch b.mode {
	case ModeRR:
		if held {
			b.rr.Release(tx, tid)
		}
	case ModeTMHP:
		tx.OnCommit(func() {
			ts.start = arena.Nil
			b.hp.ClearSlots(tid)
		})
	case ModeTMHE:
		tx.OnCommit(func() {
			ts.start = arena.Nil
			b.he.ClearSlots(tid)
		})
	case ModeTMVBR:
		tx.OnCommit(func() { ts.start = arena.Nil })
	}
}

// reclaimNode frees h per the tree's mode, revoking reservations first
// for ModeRR (precise reclamation) or marking and retiring for the
// deferred modes.
func (b *base) reclaimNode(tx *stm.Tx, tid int, h arena.Handle) {
	switch b.mode {
	case ModeRR:
		b.rr.Revoke(tx, uint64(h))
		tx.OnCommit(func() { b.ar.Free(tid, h) })
	case ModeHTM:
		tx.OnCommit(func() { b.ar.Free(tid, h) })
	case ModeTMHP:
		b.ar.At(h).dead.Store(tx, 1)
		stamp := b.threads[tid].ops
		tx.OnCommit(func() { b.hp.Retire(tid, h, stamp) })
	case ModeTMHE:
		b.ar.At(h).dead.Store(tx, 1)
		stamp := b.threads[tid].ops
		tx.OnCommit(func() { b.he.Retire(tid, h, stamp) })
	case ModeTMVBR:
		b.ar.At(h).dead.Store(tx, 1)
		stamp := b.threads[tid].ops
		tx.OnCommit(func() { b.vbr.Retire(tid, h, stamp) })
	}
}
