package stm

import (
	"testing"
	"testing/quick"
)

// Model-based property test: random single-threaded transaction scripts
// must behave exactly like plain sequential execution over a plain array —
// including aborted attempts leaving no trace and read-own-writes.

// txOp is one step of a scripted transaction.
type txOp struct {
	Cell  uint8 // which of the 8 cells
	Kind  uint8 // 0 read, 1 write, 2 add-read-to, 3 restart-once
	Value uint8
}

func TestQuickSequentialEquivalence(t *testing.T) {
	f := func(script [][]txOp) bool {
		rt := NewRuntime(Profile{})
		cells := make([]Word, 8)
		model := make([]uint64, 8)

		for _, txScript := range script {
			restarted := false
			shadow := make([]uint64, 8)
			rt.Atomic(func(tx *Tx) {
				copy(shadow, model) // model of this attempt's effects
				for _, op := range txScript {
					c := int(op.Cell) % 8
					switch op.Kind % 4 {
					case 0: // read must observe prior writes in-tx
						if got := cells[c].Load(tx); got != shadow[c] {
							// Fail the property via a detectable marker.
							shadow[0] = ^uint64(0)
							return
						}
					case 1:
						cells[c].Store(tx, uint64(op.Value))
						shadow[c] = uint64(op.Value)
					case 2:
						v := cells[c].Load(tx) + uint64(op.Value)
						cells[c].Store(tx, v)
						shadow[c] = shadow[c] + uint64(op.Value)
					case 3:
						if !restarted {
							restarted = true
							tx.Restart() // all effects so far must vanish
						}
					}
				}
			})
			if shadow[0] == ^uint64(0) {
				return false
			}
			copy(model, shadow) // committed: model takes the effects
		}
		for i := range cells {
			if cells[i].Raw() != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAbortPurity: a transaction that always restarts on its first
// attempt must leave exactly the same state as one that never restarts.
func TestQuickAbortPurity(t *testing.T) {
	f := func(writes []uint8) bool {
		rtA := NewRuntime(Profile{})
		rtB := NewRuntime(Profile{})
		a := make([]Word, 4)
		b := make([]Word, 4)
		runOn := func(rt *Runtime, cells []Word, restartFirst bool) {
			first := true
			rt.Atomic(func(tx *Tx) {
				for i, w := range writes {
					cells[(i+int(w))%4].Store(tx, uint64(w)+1)
				}
				if restartFirst && first {
					first = false
					tx.Restart()
				}
			})
		}
		runOn(rtA, a, true)
		runOn(rtB, b, false)
		for i := range a {
			if a[i].Raw() != b[i].Raw() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
