// Package stm implements the word-based software transactional memory that
// serves as this repository's substrate for hand-over-hand transactions and
// revocable reservations.
//
// The design follows TL2 (Dice, Shalev, Shavit, DISC 2006): every
// transactional cell carries its own version lock, a global version clock
// orders commits, reads are validated against the transaction's read
// version as they happen (giving opacity), and writes are buffered and
// applied at commit under per-cell locks. Two departures from classic TL2:
//
//   - Read-version extension (as in TinySTM): a read that observes a cell
//     newer than the transaction's snapshot revalidates the read set against
//     the current clock and, if the snapshot is still consistent, advances
//     it instead of aborting. This markedly reduces false aborts in the
//     lookup-heavy workloads of the paper's evaluation.
//
//   - An HTM simulation profile. The paper evaluates on Intel TSX through
//     GCC's language-level TM, which (a) bounds transactional state by the
//     L1 cache and (b) falls back to a global serial mode after a fixed
//     number of speculative failures. Profile.Capacity models (a) as a limit
//     on read-set plus write-set entries; Profile.MaxAttempts models (b);
//     the serial fallback runs under an exclusive lock that blocks all
//     concurrent commits, reproducing the program-wide serialization the
//     paper observes when tree transactions exceed hardware capacity (§5.4).
//
// The TM provides a total order on transactions and opaque reads, which is
// exactly the system model the paper's correctness arguments assume (§3,
// "System Model"). Strong isolation is not provided and not required.
//
// All cells must be used with a single Runtime; a cell's version words are
// meaningful only relative to the clock of the Runtime whose transactions
// access it.
package stm

import (
	"sync"
	"sync/atomic"

	"hohtx/internal/obs"
	"hohtx/internal/pad"
)

// AbortCause classifies why a speculative transaction attempt failed.
// Exposing abort causes to the data structure is the capability the paper
// names as future work ("GCC TM does not expose the fact of an abort, or
// its cause, to the programmer", §5.2); this repository uses it to build
// the adaptive window tuner exercised in examples/tuner.
type AbortCause uint8

const (
	// CauseNone means the attempt did not abort.
	CauseNone AbortCause = iota
	// CauseReadConflict: a read observed a cell that is locked or newer
	// than the snapshot and the snapshot could not be extended.
	CauseReadConflict
	// CauseValidation: commit-time read-set validation failed.
	CauseValidation
	// CauseWriteLock: commit could not acquire a write lock.
	CauseWriteLock
	// CauseCapacity: the transaction exceeded the profile's capacity limit
	// (the HTM-simulation analog of an L1 overflow).
	CauseCapacity
	// CauseExplicit: user code called Tx.Restart.
	CauseExplicit

	numCauses
)

// String returns the short human-readable name of the cause.
func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseReadConflict:
		return "read-conflict"
	case CauseValidation:
		return "validation"
	case CauseWriteLock:
		return "write-lock"
	case CauseCapacity:
		return "capacity"
	case CauseExplicit:
		return "explicit"
	default:
		return "unknown"
	}
}

// Profile configures the speculation policy of a Runtime. The zero value
// means "pure STM": unlimited capacity and practically unlimited speculative
// attempts before serializing.
type Profile struct {
	// Capacity bounds len(readSet)+len(writeSet) per transaction. Zero
	// means unlimited. A transaction that exceeds the bound aborts with
	// CauseCapacity and immediately falls back to serial mode (retrying a
	// deterministic overflow is pointless, which matches how GCC's HTM
	// fallback treats capacity aborts).
	Capacity int
	// MaxAttempts is the number of speculative attempts before the
	// transaction falls back to the global serial lock. Zero means a
	// large default (64). The paper's GCC setup uses 2 for the list
	// experiments and 8 for the trees.
	MaxAttempts int
	// SpinBase scales the bounded exponential backoff between attempts,
	// in iterations of a pause loop. Zero means a small default.
	SpinBase int
	// YieldShift, when nonzero, makes each transactional access yield the
	// processor with probability 1/(1<<YieldShift). This simulates
	// preemption-driven interleaving so that transactions overlap in
	// logical time even on a single-core host: without it, a 1-CPU box
	// runs every microsecond-scale transaction to completion between
	// scheduler quanta and the conflict dynamics the paper studies never
	// materialize. The benchmark harness enables it automatically when
	// GOMAXPROCS == 1 (see EXPERIMENTS.md); yields never occur while
	// commit-time locks are held.
	YieldShift uint8
	// ClockPolicy selects how writing commits interact with the global
	// version clock (see clock.go). The zero value is ClockGV1.
	ClockPolicy ClockPolicy
}

// HTMProfile returns the profile used to model the paper's hardware TM:
// capacity-limited speculation with fallback to serial mode after attempts
// failures (the paper uses 2 for lists, 8 for trees).
func HTMProfile(attempts int) Profile {
	return Profile{Capacity: 448, MaxAttempts: attempts}
}

// Runtime owns the global version clock, the serial-fallback lock and the
// abort statistics for one transactional domain. Data structures create one
// Runtime each so that benchmarks of different structures do not share
// clocks or serial locks.
type Runtime struct {
	// clock is the published version clock: the only value transactions
	// use as a snapshot bound. Even; under GV1 it advances by 2 per
	// writing commit, under GV5 it is advanced lazily by readers (see
	// clock.go).
	clock atomic.Uint64
	_     pad.Line
	// clockTarget is the GV5 version frontier: fast-path writers derive
	// write versions from it without modifying it; serial and slow-path
	// writers advance it with an Add. Unused (always 0) under GV1.
	clockTarget atomic.Uint64
	_           pad.Line
	prof        Profile
	// commitLock orders serial-mode transactions against speculative
	// commits: speculative writers commit under its distributed reader
	// side (one padded slot per transaction in the common case), serial
	// transactions run entirely under its exclusive side. Speculative
	// reads take no lock; they are protected by version validation alone.
	commitLock bravoLock
	stats      statCounters
	txPool     sync.Pool
	// obs, when non-nil, receives sampled latency/lifecycle observations
	// (see obs.go). Nil keeps the hot path at one pointer check.
	obs *obs.TxProbe
}

// NewRuntime returns a Runtime with the given speculation profile.
func NewRuntime(p Profile) *Runtime {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 64
	}
	if p.SpinBase == 0 {
		p.SpinBase = 16
	}
	rt := &Runtime{prof: p}
	rt.commitLock.arm()
	rt.txPool.New = func() any { return newTx(rt) }
	return rt
}

// Profile reports the runtime's speculation profile.
func (rt *Runtime) Profile() Profile { return rt.prof }

// now returns the current (even) value of the published version clock.
func (rt *Runtime) now() uint64 { return rt.clock.Load() }
