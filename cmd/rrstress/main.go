// Command rrstress is a long-running randomized invariant checker for
// every data structure variant in this repository. It repeatedly runs
// mixed concurrent workloads, then stops the world and verifies:
//
//   - op/state balance: |set| == successful inserts − successful removes
//   - structural invariants (sortedness; BST ordering; doubly links;
//     external-tree routing)
//   - memory books: live nodes == set size + sentinels + deferred nodes
//   - precision: reservation-based variants never defer a single free
//
// Any violation aborts with a nonzero exit. Use it to soak-test changes:
//
//	rrstress -rounds 50 -threads 8 -ops 5000
//	rrstress -variant RR-XO -family itree -rounds 0   # run forever
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/obs"
	"hohtx/internal/sets"
)

var (
	rounds  = flag.Int("rounds", 20, "verification rounds (0 = forever)")
	threads = flag.Int("threads", 8, "concurrent workers")
	ops     = flag.Int("ops", 4000, "operations per worker per round")
	keys    = flag.Uint64("keys", 512, "key-range size")
	family  = flag.String("family", "all", "structure family: singly, doubly, itree, etree, or all")
	variant = flag.String("variant", "all", "variant name (e.g. RR-XO) or all")
	seed    = flag.Int64("seed", 0, "base seed (0 = time-derived)")
	obsAddr = flag.String("obs", "", "serve live metrics (/metrics, /snapshot, pprof) on this address, e.g. :8372")
)

// registry is non-nil when -obs is set; each round's structure registers
// its observability domain for the duration of the round.
var registry *obs.Registry

// cell is one (family, variant) combination under stress.
type cell struct {
	fam  bench.Family
	name string
}

func cells() []cell {
	fams := map[bench.Family][]string{
		bench.FamilySingly:       append(bench.RRNames(), "HTM", "TMHP", "REF", "ER", "LFLeak", "LFHP"),
		bench.FamilyDoubly:       append(bench.RRNames(), "HTM", "TMHP"),
		bench.FamilyInternalTree: append(bench.RRNames(), "HTM"),
		bench.FamilyExternalTree: append(bench.RRNames(), "HTM", "TMHP", "LFLeak"),
		bench.FamilySkipList:     append(bench.RRNames(), "HTM"),
	}
	var out []cell
	for fam, names := range fams {
		if *family != "all" && string(fam) != *family {
			continue
		}
		for _, n := range names {
			if *variant != "all" && !strings.EqualFold(n, *variant) {
				continue
			}
			out = append(out, cell{fam: fam, name: n})
		}
	}
	return out
}

// stressOnce runs one round against a fresh structure and verifies it.
func stressOnce(c cell, roundSeed int64) error {
	spec := bench.VariantSpec{Name: c.name, Window: 2 + int(roundSeed%7), Observe: registry != nil}
	s, err := bench.Build(c.fam, spec, *threads)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if registry != nil {
		if or, ok := s.(bench.ObsReporter); ok {
			if d := or.ObsDomain(); d != nil {
				registry.Register(d)
				defer registry.Unregister(d)
			}
		}
	}
	var succIns, succRem atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < *threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Register(tid)
			rng := rand.New(rand.NewSource(roundSeed + int64(tid)*7919))
			for i := 0; i < *ops; i++ {
				key := uint64(rng.Int63())%*keys + 1
				switch rng.Intn(3) {
				case 0:
					if s.Insert(tid, key) {
						succIns.Add(1)
					}
				case 1:
					if s.Remove(tid, key) {
						succRem.Add(1)
					}
				default:
					s.Lookup(tid, key)
				}
			}
			s.Finish(tid)
		}(w)
	}
	wg.Wait()

	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			return fmt.Errorf("snapshot not strictly sorted at %d", i)
		}
	}
	if int64(len(snap)) != succIns.Load()-succRem.Load() {
		return fmt.Errorf("balance: |set|=%d inserts-removes=%d",
			len(snap), succIns.Load()-succRem.Load())
	}
	if v, ok := s.(interface{ ValidateLinks() bool }); ok && !v.ValidateLinks() {
		return fmt.Errorf("doubly links broken")
	}
	if v, ok := s.(interface{ ValidateBST() bool }); ok && !v.ValidateBST() {
		return fmt.Errorf("BST ordering broken")
	}
	if v, ok := s.(interface{ ValidateRouting() bool }); ok && !v.ValidateRouting() {
		return fmt.Errorf("external routing broken")
	}
	if v, ok := s.(interface{ ValidateLevels() bool }); ok && !v.ValidateLevels() {
		return fmt.Errorf("skiplist levels broken")
	}
	if m, ok := s.(sets.MemoryReporter); ok {
		perKey, sentinels := uint64(1), uint64(1)
		if c.fam == bench.FamilyExternalTree {
			perKey, sentinels = 2, 5
		}
		// Precision check: the reservation variants must never defer.
		if strings.HasPrefix(c.name, "RR-") || c.name == "HTM" {
			if d := m.DeferredNodes(); d != 0 {
				return fmt.Errorf("precise variant deferred %d nodes", d)
			}
		}
		want := uint64(len(snap))*perKey + sentinels + m.DeferredNodes()
		if live := m.LiveNodes(); live != want {
			return fmt.Errorf("memory books: live=%d want=%d (|set|=%d deferred=%d)",
				live, want, len(snap), m.DeferredNodes())
		}
	}
	return nil
}

func main() {
	flag.Parse()
	if *obsAddr != "" {
		registry = obs.NewRegistry()
		addr, err := obs.Serve(*obsAddr, registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rrstress: obs endpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("obs endpoint on http://%s (/metrics, /snapshot, /flight, /debug/pprof)\n", addr)
	}
	base := *seed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	all := cells()
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "rrstress: no matching family/variant")
		os.Exit(2)
	}
	fmt.Printf("rrstress: %d variant cells, %d threads, %d ops/worker, seed %d\n",
		len(all), *threads, *ops, base)
	start := time.Now()
	for round := 0; *rounds == 0 || round < *rounds; round++ {
		for _, c := range all {
			if err := stressOnce(c, base+int64(round)*104729); err != nil {
				fmt.Fprintf(os.Stderr, "rrstress: FAIL %s/%s round %d: %v\n",
					c.fam, c.name, round, err)
				os.Exit(1)
			}
		}
		fmt.Printf("round %3d ok (%d cells, %s elapsed)\n", round, len(all),
			time.Since(start).Truncate(time.Second))
	}
	fmt.Println("rrstress: PASS")
}
