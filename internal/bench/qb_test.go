package bench

import (
	"fmt"
	"os"
	"testing"

	"hohtx/internal/sets"
)

func TestQuickCompare(t *testing.T) {
	if os.Getenv("QB") == "" {
		t.Skip("set QB=1 to run the ad-hoc comparison")
	}
	wl := Workload{KeyBits: 8, LookupPct: 33, OpsPerThread: 20000}
	for _, name := range []string{"RR-V", "RR-XO", "RR-FA", "HTM", "TMHP", "REF", "LFLeak", "LFHP"} {
		res, err := Run(func(th int) sets.Set {
			s, err := Build(FamilySingly, VariantSpec{Name: name}, th)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, wl, RunConfig{Threads: 4, Trials: 1, Seed: 9, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%-8s %8.3f Mops/s aborts/op=%.3f serial/op=%.4f\n",
			name, res.MopsPerSec, res.AbortsPerOp, res.SerialPerOp)
	}
}
