// Command hohserver serves one of this repository's sets over TCP — the
// end-to-end demonstration that precise memory reclamation survives a
// real serving stack: any number of client connections multiplex onto the
// structure's fixed worker slots through the internal/serve lease pool,
// and the live-node gauge stays flat under sustained external churn.
//
// The protocol is one line per request, one line per reply, pipelined
// (see internal/serve): GET/SET/DEL <key>, LEN, INFO, MULTI <n> — n body
// ops executed as one batch transaction per shard touched — and
// ASCEND <lo> <n>, which streams up to n keys >= lo in ascending order
// as OK lines terminated by END. Scans run on the structure's Ascender
// reservation cursor (weakly consistent, sync.Map.Range-style; sharded
// servers merge one cursor per shard); variants without scan support
// advertise scan=none in INFO and answer ERR scan unsupported.
//
// Usage:
//
//	hohserver                                  # RR-V singly list on 127.0.0.1:7070
//	hohserver -family etree -variant TMHP      # any bench variant works
//	hohserver -family skip -variant TMVBR      # extended matrix (DESIGN.md §14)
//	hohserver -shards 4 -threads 2             # 4 independent STM instances
//	hohserver -addr :7070 -threads 8 -obs 127.0.0.1:6070
//	hohserver -maxbatch 512 -autobatch 64      # batch knobs (DESIGN.md §11)
//
// -maxbatch caps MULTI frame sizes (oversized frames get one ERR line and
// execute nothing). -autobatch N > 1 transparently coalesces pipelined
// bursts of plain GET/SET/DEL into batch transactions of at most N ops —
// the capacity-aware split threshold; replies are unchanged, only the
// transaction boundaries move.
//
// With -shards N the key space hash-partitions across N fully independent
// instances — each with its own global version clock, serial-fallback
// lock, arena, and lease pool — behind the unchanged wire protocol:
// GET/SET/DEL route by key, LEN and INFO aggregate exactly. -threads is
// then the per-shard worker-slot count, so total concurrency is
// threads × shards; when that product exceeds GOMAXPROCS the slots can
// only time-slice, so hohserver warns, and clamps the default -threads
// down to fit (an explicit -threads is respected, with the warning).
//
// With -obs the process also serves the observability endpoint
// (/metrics, /snapshot, /flight, /debug/pprof/) with the server's
// per-verb service-time histograms, each shard's pool domain
// ("server-pool-s<i>": lease-wait histogram, backpressure gauges), each
// shard's transaction-level domain, and per-shard commit/serial/lease
// roll-up gauges on the server domain next to shard_count.
// SIGINT/SIGTERM drain gracefully: accepting stops, in-flight pipelines
// finish, worker slots are flushed, and the final stats line prints.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hohtx"
	"hohtx/internal/bench"
	"hohtx/internal/obs"
	"hohtx/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "TCP listen address")
	family := flag.String("family", "singly", "structure family: singly, doubly, itree, etree, skip")
	variant := flag.String("variant", "RR-V", "variant: RR-V, RR-XO, RR-SO, RR-FA, RR-DM, RR-SA, HTM, TMHP, TMHE, TMVBR, REF, ER, LFLeak, LFHP")
	threads := flag.Int("threads", 8, "worker slots per shard (the set's Threads)")
	shards := flag.Int("shards", 1, "independent STM instances; keys hash-partition across them")
	window := flag.Int("window", 0, "hand-over-hand window W (0 = tuned default)")
	waiters := flag.Int("waiters", 0, "lease wait-queue bound per shard (0 = 16×slots, <0 = unbounded)")
	lazy := flag.Bool("lazy", false, "use the GV5 lazy global-clock policy")
	obsAddr := flag.String("obs", "", "observability endpoint address (empty = off)")
	maxBatch := flag.Int("maxbatch", 0, "max ops per MULTI frame (0 = default)")
	autoBatch := flag.Int("autobatch", 0, "coalesce pipelined single-key bursts into batches of at most N ops (0/1 = off)")
	flag.Parse()

	if *shards < 1 {
		*shards = 1
	}
	threadsExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threads" {
			threadsExplicit = true
		}
	})
	if procs := runtime.GOMAXPROCS(0); *threads**shards > procs {
		if threadsExplicit {
			fmt.Fprintf(os.Stderr,
				"hohserver: warning: %d slots (%d threads × %d shards) exceed GOMAXPROCS=%d; slots will time-slice\n",
				*threads**shards, *threads, *shards, procs)
		} else {
			clamped := procs / *shards
			if clamped < 1 {
				clamped = 1
			}
			fmt.Fprintf(os.Stderr,
				"hohserver: default %d threads × %d shards exceed GOMAXPROCS=%d; clamping to -threads %d (pass -threads to override)\n",
				*threads, *shards, procs, clamped)
			*threads = clamped
		}
	}

	spec := bench.VariantSpec{
		Name:      *variant,
		Window:    *window,
		LazyClock: *lazy,
		// The per-transaction domain is only worth its sampling cost when
		// someone can look at it.
		Observe: *obsAddr != "",
	}
	sharded, err := bench.BuildSharded(bench.Family(*family), spec, *threads, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohserver:", err)
		os.Exit(2)
	}

	// One observability domain for the server itself, one per shard for
	// that shard's lease pool — pools publish gauges by name, so they
	// cannot share a domain without clobbering each other.
	dom := obs.NewDomain(obs.DomainConfig{Name: "server", Threads: *threads})
	backends := make([]serve.Backend, *shards)
	pools := make([]*serve.Pool, *shards)
	var poolDoms []*obs.Domain
	for i := range backends {
		poolDom := dom
		if *shards > 1 {
			poolDom = obs.NewDomain(obs.DomainConfig{
				Name:    fmt.Sprintf("server-pool-s%d", i),
				Threads: *threads,
			})
			poolDoms = append(poolDoms, poolDom)
		}
		pools[i] = serve.NewPool(sharded.Shard(i), serve.PoolConfig{
			Slots: *threads, MaxWaiters: *waiters, Obs: poolDom,
		})
		backends[i] = serve.Backend{Set: sharded.Shard(i), Pool: pools[i]}
	}
	// Per-shard roll-ups on the server domain: one glance at /metrics
	// shows whether commits (and serial fallbacks, and lease traffic)
	// spread across shards or pile onto one.
	for i := range backends {
		i := i
		set, pool := backends[i].Set, pools[i]
		dom.Gauge(fmt.Sprintf("shard%d_commits", i), func() uint64 { return hohtx.StatsOf(set).Commits })
		dom.Gauge(fmt.Sprintf("shard%d_serial", i), func() uint64 { return hohtx.StatsOf(set).Serial })
		dom.Gauge(fmt.Sprintf("shard%d_leases", i), func() uint64 { return pool.Stats().Leases })
	}

	// Bind the observability endpoint before the server exists so the
	// bound address (the OS may pick the port) can be advertised to
	// clients through INFO obs=<addr> — hohload auto-discovers the
	// forensics endpoints that way.
	boundObs := ""
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(dom)
		for _, pd := range poolDoms {
			reg.Register(pd)
		}
		for i := 0; i < sharded.ShardCount(); i++ {
			if or, ok := sharded.Shard(i).(bench.ObsReporter); ok {
				reg.Register(or.ObsDomain())
			}
		}
		bound, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohserver: obs:", err)
			os.Exit(2)
		}
		boundObs = bound.String()
		fmt.Fprintf(os.Stderr, "hohserver: obs endpoint on http://%s/metrics\n", bound)
	}

	srv := serve.NewServer(serve.ServerConfig{
		Shards: backends, MaxKey: hohtx.MaxKey, Obs: dom,
		MaxBatch: *maxBatch, AutoBatch: *autoBatch,
		ObsAddr: boundObs,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hohserver:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "hohserver: %s/%s, %d shard(s) × %d worker slots, listening on %s\n",
		*family, sharded.Name(), *shards, *threads, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "hohserver: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hohserver: forced close:", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "hohserver:", err)
			os.Exit(1)
		}
	}

	var st serve.PoolStats
	for _, p := range pools {
		ps := p.Stats()
		st.Leases += ps.Leases
		st.Waits += ps.Waits
		st.WaitNs += ps.WaitNs
		st.AffinityHits += ps.AffinityHits
		st.Rejections += ps.Rejections
		st.PeakWaiters += ps.PeakWaiters // sum across shards: an upper bound
	}
	fmt.Fprintf(os.Stderr,
		"hohserver: drained; keys=%d leases=%d waits=%d avg_wait=%s affinity=%d rejections=%d peak_waiters=%d\n",
		srv.Len(), st.Leases, st.Waits, avgWait(st), st.AffinityHits, st.Rejections, st.PeakWaiters)
	if tx := hohtx.StatsOf(sharded); tx.Commits > 0 {
		fmt.Fprintf(os.Stderr, "hohserver: tx commits=%d aborts=%d serial=%d\n",
			tx.Commits, tx.Aborts, tx.Serial)
	}
}

func avgWait(st serve.PoolStats) time.Duration {
	if st.Waits == 0 {
		return 0
	}
	return time.Duration(st.WaitNs / st.Waits)
}
