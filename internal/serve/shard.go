package serve

import (
	"fmt"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/reclaim"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// ShardOf maps a key to one of n shards. The mapping is a pure function
// of (key, n) — the same key always lands on the same shard for a given
// shard count, on every front end and in every harness — and it mixes the
// key through a full 64-bit finalizer first, so dense key ranges (1..K,
// the common benchmark shape) spread uniformly instead of striping.
func ShardOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	// splitmix64 finalizer: full-avalanche, no state.
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// Sharded hash-partitions keys across N fully independent sets.Set
// instances. Each shard brings its own STM runtime (global version clock
// and serial-fallback lock), arena, and reclamation scheme, so writers on
// different shards never touch a shared cache line — the single-clock
// serialization the paper's evaluation turns on stops at the shard
// boundary.
//
// Sharded itself implements sets.Set: Register/Finish fan out to every
// shard (worker id t exists in each shard's per-thread state), and the
// key-indexed operations route through ShardOf. Aggregate views —
// Snapshot, LiveNodes, transaction and guard statistics — merge across
// shards, so everything that consumes a Set (the lease pool, the torture
// harness, the benchmarks, hohtx.StatsOf) works unchanged on a sharded
// instance.
type Sharded struct {
	shards []sets.Set
	name   string
}

// NewSharded builds the facade over the given shards, which must all be
// configured with the same thread count. It panics on an empty slice —
// there is no meaningful zero-shard set.
func NewSharded(shards []sets.Set) *Sharded {
	if len(shards) == 0 {
		panic("serve: NewSharded with no shards")
	}
	name := shards[0].Name()
	if len(shards) > 1 {
		name = fmt.Sprintf("%s×%d", name, len(shards))
	}
	return &Sharded{shards: shards, name: name}
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Shard returns shard i (front ends that run one lease pool per shard
// need the underlying sets).
func (s *Sharded) Shard(i int) sets.Set { return s.shards[i] }

// ShardFor returns the shard index serving key.
func (s *Sharded) ShardFor(key uint64) int { return ShardOf(key, len(s.shards)) }

// ArmSpan arms sp as tid's active request span on every shard's
// observability domain (and disarms with a nil sp). Library-level callers
// going through the facade — the torture harness, embedding applications
// — cannot know which shard an operation will route to, so the span is
// armed everywhere the tid might execute; shards without a domain are
// skipped. The serving layer does not use this (it arms exactly the shard
// it routes to); it exists so facade users get the same per-request
// stm/reclaim phase stamping the server gets.
func (s *Sharded) ArmSpan(tid int, sp *obs.Span) {
	for _, sh := range s.shards {
		if or, ok := sh.(interface{ ObsDomain() *obs.Domain }); ok {
			or.ObsDomain().SetSpan(tid, sp)
		}
	}
}

// Register registers tid with every shard: a worker id owns its slot of
// per-thread state (reservations, allocator magazines, commit slots) in
// each shard, because its keys may route anywhere.
func (s *Sharded) Register(tid int) {
	for _, sh := range s.shards {
		sh.Register(tid)
	}
}

// Lookup routes to the key's shard.
func (s *Sharded) Lookup(tid int, key uint64) bool {
	return s.shards[ShardOf(key, len(s.shards))].Lookup(tid, key)
}

// Insert routes to the key's shard.
func (s *Sharded) Insert(tid int, key uint64) bool {
	return s.shards[ShardOf(key, len(s.shards))].Insert(tid, key)
}

// Remove routes to the key's shard.
func (s *Sharded) Remove(tid int, key uint64) bool {
	return s.shards[ShardOf(key, len(s.shards))].Remove(tid, key)
}

// Apply routes each op to its key's shard and runs one batch transaction
// per shard touched, in ascending shard order, preserving per-shard op
// order. Atomicity is therefore PER SHARD, not across the whole batch: a
// reader may observe shard i's sub-transaction committed while shard j's
// has not yet run. Single-shard instances retain full batch atomicity.
// The server surfaces this weaker contract in its INFO reply
// (multi=per-shard); see DESIGN.md §11.
func (s *Sharded) Apply(tid int, ops []sets.Op) []sets.Result {
	if len(s.shards) == 1 {
		return s.shards[0].Apply(tid, ops)
	}
	out := make([]sets.Result, len(ops))
	subOps := make([][]sets.Op, len(s.shards))
	subIdx := make([][]int, len(s.shards))
	for i, op := range ops {
		sh := ShardOf(op.Key, len(s.shards))
		subOps[sh] = append(subOps[sh], op)
		subIdx[sh] = append(subIdx[sh], i)
	}
	for sh := range s.shards {
		if len(subOps[sh]) == 0 {
			continue
		}
		for j, r := range s.shards[sh].Apply(tid, subOps[sh]) {
			out[subIdx[sh][j]] = r
		}
	}
	return out
}

// Finish flushes tid's deferred work in every shard.
func (s *Sharded) Finish(tid int) {
	for _, sh := range s.shards {
		sh.Finish(tid)
	}
}

// Snapshot merges the shards' snapshots into one ascending key list. Like
// every Snapshot in this repository it requires quiescence; each shard's
// slice is already sorted, so this is an N-way merge.
func (s *Sharded) Snapshot() []uint64 {
	parts := make([][]uint64, len(s.shards))
	total := 0
	for i, sh := range s.shards {
		parts[i] = sh.Snapshot()
		total += len(parts[i])
	}
	out := make([]uint64, 0, total)
	for {
		best := -1
		for i, p := range parts {
			if len(p) == 0 {
				continue
			}
			if best < 0 || p[0] < parts[best][0] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, parts[best][0])
		parts[best] = parts[best][1:]
	}
}

// ascendChunk is the per-shard pull size for the streaming merge: each
// pull runs one bounded sub-scan whose reservation hold is dropped before
// the pull returns, so no cursor position is held while the merge is
// busy with other shards (or, in the server, while the shard's worker
// slot is released between pulls).
const ascendChunk = 64

// shardCursor is one shard's position in a streaming merge: the next key
// to pull from, the keys pulled but not yet emitted, and whether the
// shard is exhausted.
type shardCursor struct {
	next uint64
	buf  []uint64
	done bool
}

// pull refills the cursor with up to max keys from a, advancing next past
// the last key pulled. The sub-scan terminates itself (fn → false), so
// the underlying reservation hold is released before pull returns.
func (c *shardCursor) pull(a sets.Ascender, tid, max int) error {
	got := 0
	if err := a.Ascend(tid, c.next, func(k uint64) bool {
		c.buf = append(c.buf, k)
		got++
		return got < max
	}); err != nil {
		return err
	}
	if got < max {
		c.done = true
	}
	if got > 0 {
		c.next = c.buf[len(c.buf)-1] + 1
	}
	return nil
}

// Ascend implements sets.Ascender by interleaving one reservation cursor
// per shard through a streaming N-way merge — the online version of
// Snapshot, requiring no quiescence. Each shard is pulled one bounded
// chunk at a time; shards partition keys, so per-shard ascending order
// makes the merged stream strictly ascending and exactly-once. The
// result is weakly consistent per shard (the sync.Map.Range contract on
// sets.Ascender); cross-shard, a key inserted on one shard during the
// scan may be observed while an older key on another shard is not — no
// weaker than the single-shard contract's treatment of concurrent
// writers.
func (s *Sharded) Ascend(tid int, from uint64, fn func(key uint64) bool) error {
	if len(s.shards) == 1 {
		a, ok := s.shards[0].(sets.Ascender)
		if !ok {
			return sets.ErrScanUnsupported
		}
		return a.Ascend(tid, from, fn)
	}
	cursors := make([]shardCursor, len(s.shards))
	for i := range cursors {
		cursors[i].next = from
	}
	for {
		for i, sh := range s.shards {
			cur := &cursors[i]
			if cur.done || len(cur.buf) > 0 {
				continue
			}
			a, ok := sh.(sets.Ascender)
			if !ok {
				return sets.ErrScanUnsupported
			}
			if err := cur.pull(a, tid, ascendChunk); err != nil {
				return err
			}
		}
		best := -1
		for i := range cursors {
			if len(cursors[i].buf) == 0 {
				continue
			}
			if best < 0 || cursors[i].buf[0] < cursors[best].buf[0] {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		if !fn(cursors[best].buf[0]) {
			return nil
		}
		cursors[best].buf = cursors[best].buf[1:]
	}
}

// CanAscend reports whether every shard supports the reservation cursor
// (see the identically named methods on the structures; the serve layer
// advertises scan capability through it).
func (s *Sharded) CanAscend() bool {
	for _, sh := range s.shards {
		a, ok := sh.(sets.Ascender)
		if !ok {
			return false
		}
		if c, ok := a.(interface{ CanAscend() bool }); ok && !c.CanAscend() {
			return false
		}
	}
	return true
}

// Name labels the sharded instance, e.g. "RR-V×4".
func (s *Sharded) Name() string { return s.name }

// LiveNodes sums allocated-and-not-freed nodes across shards; zero if no
// shard reports memory.
func (s *Sharded) LiveNodes() uint64 {
	var n uint64
	for _, sh := range s.shards {
		if mr, ok := sh.(sets.MemoryReporter); ok {
			n += mr.LiveNodes()
		}
	}
	return n
}

// DeferredNodes sums logically-deleted-but-unreclaimed nodes across
// shards.
func (s *Sharded) DeferredNodes() uint64 {
	var n uint64
	for _, sh := range s.shards {
		if mr, ok := sh.(sets.MemoryReporter); ok {
			n += mr.DeferredNodes()
		}
	}
	return n
}

// SetWindow adjusts the hand-over-hand window on every shard (the
// hohtx.Tunable contract; examples/tuner drives it).
func (s *Sharded) SetWindow(w int) {
	for _, sh := range s.shards {
		if t, ok := sh.(interface{ SetWindow(int) }); ok {
			t.SetWindow(w)
		}
	}
}

// TxCommits sums committed transactions across shards.
func (s *Sharded) TxCommits() uint64 {
	var n uint64
	for _, sh := range s.shards {
		if r, ok := sh.(interface{ TxCommits() uint64 }); ok {
			n += r.TxCommits()
		}
	}
	return n
}

// TxAborts sums aborted speculative attempts across shards.
func (s *Sharded) TxAborts() uint64 {
	var n uint64
	for _, sh := range s.shards {
		if r, ok := sh.(interface{ TxAborts() uint64 }); ok {
			n += r.TxAborts()
		}
	}
	return n
}

// TxSerial sums serial-fallback commits across shards.
func (s *Sharded) TxSerial() uint64 {
	var n uint64
	for _, sh := range s.shards {
		if r, ok := sh.(interface{ TxSerial() uint64 }); ok {
			n += r.TxSerial()
		}
	}
	return n
}

// TMStats sums the shards' STM runtime counters field by field — each
// shard has its own clock and commit lock, so the aggregate is exactly
// "the traffic the instance generated", with no shared-counter double
// counting.
func (s *Sharded) TMStats() stm.Stats {
	var out stm.Stats
	for _, sh := range s.shards {
		r, ok := sh.(interface{ TMStats() stm.Stats })
		if !ok {
			continue
		}
		st := r.TMStats()
		out.Commits += st.Commits
		out.SerialCommits += st.SerialCommits
		out.Extensions += st.Extensions
		for c := range st.Aborts {
			out.Aborts[c] += st.Aborts[c]
		}
		out.ClockCASes += st.ClockCASes
		out.BiasRevocations += st.BiasRevocations
		out.WriterWaits += st.WriterWaits
		out.CommitSlowPath += st.CommitSlowPath
		for b := range st.Batch {
			out.Batch[b].Txs += st.Batch[b].Txs
			out.Batch[b].Ops += st.Batch[b].Ops
			out.Batch[b].Aborts += st.Batch[b].Aborts
			out.Batch[b].Serial += st.Batch[b].Serial
		}
	}
	return out
}

// ReclaimStats sums the shards' reclamation counters.
func (s *Sharded) ReclaimStats() reclaim.Stats {
	var out reclaim.Stats
	for _, sh := range s.shards {
		r, ok := sh.(interface{ ReclaimStats() reclaim.Stats })
		if !ok {
			continue
		}
		st := r.ReclaimStats()
		out.Retired += st.Retired
		out.Freed += st.Freed
		out.Deferred += st.Deferred
		out.PeakDeferred += st.PeakDeferred // upper bound: peaks need not align
		out.Scans += st.Scans
		out.DelayOpsSum += st.DelayOpsSum
		out.Leftover += st.Leftover
	}
	return out
}

// GuardStats sums the shards' use-after-free sanitizer counters.
func (s *Sharded) GuardStats() arena.GuardStats {
	var out arena.GuardStats
	for _, sh := range s.shards {
		if g, ok := sh.(interface{ GuardStats() arena.GuardStats }); ok {
			st := g.GuardStats()
			out.PoisonReads += st.PoisonReads
			out.Violations += st.Violations
		}
	}
	return out
}
