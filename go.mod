module hohtx

go 1.22
