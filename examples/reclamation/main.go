// Reclamation: watch precise and deferred reclamation diverge in real time.
//
// This example runs the same churn workload (insert/remove over a small
// key range) against three lists: the paper's contribution (RR-V:
// hand-over-hand transactions with revocable reservations), the deferred
// baseline (TMHP: hand-over-hand with hazard pointers, reclaiming in
// batches of 64), and the leaky lock-free list (LFLeak). Every 100ms it
// prints each structure's memory books.
//
// Expected output shape: the RR column's "deferred" is always 0 and its
// "live" hugs the true set size; TMHP's deferred sawtooths up to the scan
// threshold; LFLeak's live count only ever grows. This is Figure 1's
// moral — a removed node is immediately reusable only under revocable
// reservations — made observable.
//
// Run with: go run ./examples/reclamation
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hohtx"
	"hohtx/internal/bench"
	"hohtx/internal/sets"
)

const (
	threads  = 4
	keyRange = 256
	duration = 2 * time.Second
)

func churn(s sets.Set, stop *atomic.Bool, wg *sync.WaitGroup) {
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Register(tid)
			state := uint64(tid)*77 + 1
			for !stop.Load() {
				state += 0x9e3779b97f4a7c15
				z := state
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				key := (z^(z>>27))%keyRange + 1
				if z&(1<<40) == 0 {
					s.Insert(tid, key)
				} else {
					s.Remove(tid, key)
				}
			}
			s.Finish(tid)
		}(w)
	}
}

func main() {
	rr := hohtx.NewListSet(hohtx.Config{Threads: threads})
	tmhp, err := bench.Build(bench.FamilySingly, bench.VariantSpec{Name: "TMHP"}, threads)
	if err != nil {
		panic(err)
	}
	leak, err := bench.Build(bench.FamilySingly, bench.VariantSpec{Name: "LFLeak"}, threads)
	if err != nil {
		panic(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, s := range []sets.Set{rr, tmhp, leak} {
		churn(s, &stop, &wg)
	}

	fmt.Printf("%-8s %14s %14s %14s\n", "t(ms)", "RR-V live/def", "TMHP live/def", "LFLeak live/def")
	start := time.Now()
	for time.Since(start) < duration {
		time.Sleep(100 * time.Millisecond)
		r := rr.(sets.MemoryReporter)
		t := tmhp.(sets.MemoryReporter)
		l := leak.(sets.MemoryReporter)
		fmt.Printf("%-8d %8d/%-5d %8d/%-5d %8d/%-5d\n",
			time.Since(start).Milliseconds(),
			r.LiveNodes(), r.DeferredNodes(),
			t.LiveNodes(), t.DeferredNodes(),
			l.LiveNodes(), l.DeferredNodes())
	}
	stop.Store(true)
	wg.Wait()

	fmt.Println()
	fmt.Printf("final: RR-V deferred=%d (precise), TMHP deferred=%d (batched), LFLeak deferred=%d (unbounded)\n",
		rr.(sets.MemoryReporter).DeferredNodes(),
		tmhp.(sets.MemoryReporter).DeferredNodes(),
		leak.(sets.MemoryReporter).DeferredNodes())
}
