package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hohtx/internal/bench"
	"hohtx/internal/obs"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
)

// tracedServer is a loopback server with request tracing armed: an obs
// domain on the server, Observe-enabled structure domains per shard, and
// a live obs HTTP endpoint serving /slowlog and /hotkeys.
type tracedServer struct {
	srv   *serve.Server
	pools []*serve.Pool
	addr  string // wire protocol address
	obs   string // obs endpoint host:port (also advertised via INFO obs=)
}

func startTracedServer(t *testing.T, shards, slots int) *tracedServer {
	t.Helper()
	dom := obs.NewDomain(obs.DomainConfig{Name: "server", Threads: slots})
	reg := obs.NewRegistry()
	reg.Register(dom)
	bound, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("obs.Serve: %v", err)
	}

	spec := bench.VariantSpec{Name: "RR-V", Observe: true}
	backends := make([]serve.Backend, shards)
	pools := make([]*serve.Pool, shards)
	if shards <= 1 {
		set, err := bench.Build(bench.FamilySingly, spec, slots)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		pools[0] = serve.NewPool(set, serve.PoolConfig{Slots: slots})
		backends[0] = serve.Backend{Set: set, Pool: pools[0]}
	} else {
		sh, err := bench.BuildSharded(bench.FamilySingly, spec, slots, shards)
		if err != nil {
			t.Fatalf("build sharded: %v", err)
		}
		for i := 0; i < shards; i++ {
			pools[i] = serve.NewPool(sh.Shard(i), serve.PoolConfig{Slots: slots})
			backends[i] = serve.Backend{Set: sh.Shard(i), Pool: pools[i]}
		}
	}
	srv := serve.NewServer(serve.ServerConfig{
		Shards: backends, Obs: dom, ObsAddr: bound.String(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return &tracedServer{srv: srv, pools: pools, addr: ln.Addr().String(), obs: bound.String()}
}

// getJSON fetches a forensics endpoint and decodes it — the decode
// itself is the valid-JSON assertion.
func getJSON(t *testing.T, hostport, path string, v any) {
	t.Helper()
	resp, err := http.Get("http://" + hostport + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

// TestSlowlogCapturesWaitDominatedRequest is the acceptance path for the
// phase breakdown: with a single-slot pool whose only lease the test
// holds, a request must queue — and its slowlog entry must say so, with
// the wait phase dominating the breakdown.
func TestSlowlogCapturesWaitDominatedRequest(t *testing.T) {
	ts := startTracedServer(t, 1, 1)
	cl := dialClient(t, ts.addr)

	// Hold the only worker slot, then send a request that has to queue
	// behind us for its lease.
	slot, err := ts.pools[0].Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	const stall = 60 * time.Millisecond
	cl.bw.WriteString("SET 7\n")
	if err := cl.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	time.Sleep(stall)
	ts.pools[0].Release(slot)
	line, err := cl.br.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if got := strings.TrimRight(line, "\n"); got != "1" {
		t.Fatalf("SET 7 -> %q, want 1", got)
	}

	var dumps []obs.SlowlogDump
	getJSON(t, ts.obs, "/slowlog", &dumps)
	if len(dumps) != 1 || len(dumps[0].Entries) == 0 {
		t.Fatalf("/slowlog = %+v, want one domain with entries", dumps)
	}
	var found *obs.SlowEntry
	for i := range dumps[0].Entries {
		e := &dumps[0].Entries[i]
		if e.Verb == "SET" && len(e.Keys) == 1 && e.Keys[0] == 7 {
			found = e
			break
		}
	}
	if found == nil {
		t.Fatalf("no SET 7 entry in %+v", dumps[0].Entries)
	}
	if found.WorstPhase != "wait" {
		t.Errorf("worst phase = %q, want wait (breakdown: %+v)", found.WorstPhase, *found)
	}
	if found.WaitNs < uint64(stall/2) {
		t.Errorf("wait phase = %s, want >= %s", time.Duration(found.WaitNs), stall/2)
	}
	if found.TotalNs < found.WaitNs {
		t.Errorf("total %d < wait %d: phases exceed the request", found.TotalNs, found.WaitNs)
	}

	// The same forensics over the wire: SLOWLOG streams SLOW lines with
	// the breakdown as key=value fields, terminated by END.
	cl.bw.WriteString("SLOWLOG 8\n")
	if err := cl.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	sawWait := false
	for {
		line, err := cl.br.ReadString('\n')
		if err != nil {
			t.Fatalf("SLOWLOG read: %v", err)
		}
		l := strings.TrimRight(line, "\n")
		if l == "END" {
			break
		}
		if !strings.HasPrefix(l, "SLOW ") {
			t.Fatalf("SLOWLOG line %q, want SLOW …", l)
		}
		if strings.Contains(l, "verb=SET") && strings.Contains(l, "worst=wait") {
			sawWait = true
		}
	}
	if !sawWait {
		t.Error("SLOWLOG stream had no wait-dominated SET line")
	}
}

// pipeline round-trips requests on a raw client without touching
// testing.T — safe from worker goroutines.
func pipeline(cl *client, reqs []string) error {
	for _, r := range reqs {
		cl.bw.WriteString(r)
		cl.bw.WriteByte('\n')
	}
	if err := cl.bw.Flush(); err != nil {
		return err
	}
	for range reqs {
		line, err := cl.br.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.HasPrefix(line, "ERR") {
			return fmt.Errorf("server: %s", strings.TrimRight(line, "\n"))
		}
	}
	return nil
}

// TestHotKeysAbortAttribution is the acceptance path for hot-key
// forensics: concurrent writers hammering one key must surface that key
// at the top of /hotkeys' cross-shard abort rollup — on one shard and on
// two.
func TestHotKeysAbortAttribution(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				conns  = 4
				hotKey = 5
			)
			ts := startTracedServer(t, shards, 4)
			clients := make([]*client, conns)
			for c := range clients {
				clients[c] = dialClient(t, ts.addr)
			}

			// Churn in rounds until the contention shows up in the sketch:
			// every connection alternates SET/DEL on the hot key (write-write
			// conflicts on one word) with a few cold keys mixed in so topping
			// the ranking means something.
			deadline := time.Now().Add(10 * time.Second)
			var rollup obs.HotShard
			for {
				var wg sync.WaitGroup
				errs := make(chan error, conns)
				for c := 0; c < conns; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						reqs := make([]string, 0, 300)
						for i := 0; i < 140; i++ {
							reqs = append(reqs, fmt.Sprintf("SET %d", hotKey), fmt.Sprintf("DEL %d", hotKey))
							if i%20 == 0 {
								reqs = append(reqs, fmt.Sprintf("SET %d", 1000+c*10+i/20))
							}
						}
						errs <- pipeline(clients[c], reqs)
					}(c)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					if err != nil {
						t.Fatalf("churn: %v", err)
					}
				}

				var dumps []obs.HotKeysDump
				getJSON(t, ts.obs, "/hotkeys", &dumps)
				if len(dumps) != 1 {
					t.Fatalf("/hotkeys = %d domains, want 1", len(dumps))
				}
				if len(dumps[0].Shards) != shards {
					t.Fatalf("/hotkeys shards = %d, want %d", len(dumps[0].Shards), shards)
				}
				rollup = dumps[0].Rollup
				if len(rollup.ByAborts) > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no aborts attributed after 10s of single-key write churn")
				}
			}

			if rollup.Shard != -1 {
				t.Errorf("rollup shard = %d, want -1", rollup.Shard)
			}
			if rollup.ByAborts[0].Key != hotKey {
				t.Errorf("top key by aborts = %d (count %d), want %d; rollup %+v",
					rollup.ByAborts[0].Key, rollup.ByAborts[0].Count, hotKey, rollup.ByAborts)
			}
			// Latency attribution runs even without aborts; the hot key saw
			// the overwhelming majority of requests, so it must be tracked.
			foundLat := false
			for _, it := range rollup.ByLatency {
				if it.Key == hotKey {
					foundLat = true
				}
			}
			if !foundLat {
				t.Errorf("hot key absent from latency rollup %+v", rollup.ByLatency)
			}

			// The slowlog endpoint must be live and valid JSON on every shard
			// count; after hundreds of traced requests it cannot be empty.
			var slow []obs.SlowlogDump
			getJSON(t, ts.obs, "/slowlog", &slow)
			if len(slow) != 1 || len(slow[0].Entries) == 0 {
				t.Errorf("/slowlog = %+v, want a populated dump", slow)
			}
		})
	}
}

// TestInfoAdvertisesObs: a traced server advertises its obs endpoint in
// INFO as obs=<addr> (the hohload auto-discovery hook); an untraced one
// stays silent.
func TestInfoAdvertisesObs(t *testing.T) {
	ts := startTracedServer(t, 1, 2)
	cl := dialClient(t, ts.addr)
	info := cl.roundTrip(t, "INFO")[0]
	if want := "obs=" + ts.obs; !strings.Contains(info, want) {
		t.Errorf("INFO %q missing %q", info, want)
	}

	_, _, addr := startServer(t, 2)
	cl2 := dialClient(t, addr)
	if info := cl2.roundTrip(t, "INFO")[0]; strings.Contains(info, "obs=") {
		t.Errorf("untraced INFO %q advertises an obs endpoint", info)
	}
}

// TestSlowlogVerbErrors: SLOWLOG rejects malformed counts, and reports
// plainly when the server has no tracing to dump.
func TestSlowlogVerbErrors(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	if r := cl.roundTrip(t, "SLOWLOG 5")[0]; !strings.HasPrefix(r, "ERR") {
		t.Errorf("SLOWLOG on untraced server -> %q, want ERR", r)
	}

	ts := startTracedServer(t, 1, 2)
	cl2 := dialClient(t, ts.addr)
	if r := cl2.roundTrip(t, "SLOWLOG x")[0]; !strings.HasPrefix(r, "ERR") {
		t.Errorf("SLOWLOG x -> %q, want ERR", r)
	}
}

// TestAcquireSpanStampsWait: a queued lease stamps the span's Wait phase
// with the time spent behind other leaseholders; the uncontended fast
// path stamps nothing.
func TestAcquireSpanStampsWait(t *testing.T) {
	set := newSet(t, 1)
	p := serve.NewPool(set, serve.PoolConfig{Slots: 1})

	sp := obs.NewSpan("GET")
	h := p.Handle()
	if slot, err := h.AcquireSpan(context.Background(), sp); err != nil {
		t.Fatalf("fast-path AcquireSpan: %v", err)
	} else {
		defer p.Release(slot)
		if got := sp.Phase(obs.SpanWait); got != 0 {
			t.Errorf("uncontended acquire stamped wait=%d, want 0", got)
		}

		sp2 := obs.NewSpan("GET")
		const stall = 40 * time.Millisecond
		got := make(chan int, 1)
		go func() {
			h2 := p.Handle()
			s2, err := h2.AcquireSpan(context.Background(), sp2)
			if err != nil {
				s2 = -1
			}
			got <- s2
		}()
		time.Sleep(stall)
		p.Release(slot)
		s2 := <-got
		if s2 < 0 {
			t.Fatal("queued AcquireSpan failed")
		}
		slot = s2 // the deferred Release hands back the re-leased slot
		if w := sp2.Phase(obs.SpanWait); w < uint64(stall/2) {
			t.Errorf("queued acquire stamped wait=%s, want >= %s", time.Duration(w), stall/2)
		}
		sp2.Finish()
	}
	sp.Finish()
}

// TestStmStampsSpan drives the deterministic capacity cliff with a span
// armed: a batch over the simulated HTM capacity must abort with the
// capacity cause and fall back to serial, and the armed span must carry
// the whole story — attempt counts, the serial attempt, the cause tally,
// and nonzero attempt/serial phase time.
func TestStmStampsSpan(t *testing.T) {
	set, err := bench.Build(bench.FamilySingly, bench.VariantSpec{Name: "HTM", Capacity: 8, Observe: true}, 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	dom := set.(interface{ ObsDomain() *obs.Domain }).ObsDomain()
	p := serve.NewPool(set, serve.PoolConfig{Slots: 1})

	ops := make([]sets.Op, 32)
	for i := range ops {
		ops[i] = sets.Op{Kind: sets.OpInsert, Key: uint64(i + 1)}
	}
	sp := obs.NewSpan("MULTI")
	err = p.Do(context.Background(), func(tid int) {
		dom.SetSpan(tid, sp)
		defer dom.SetSpan(tid, nil)
		for i, ok := range set.Apply(tid, ops) {
			if !ok {
				t.Errorf("Apply op %d failed", i)
			}
		}
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	sp.Finish()

	total, serial := sp.Attempts()
	if total < 2 || serial < 1 {
		t.Errorf("attempts = %d (serial %d), want >= 2 with >= 1 serial (capacity cliff)", total, serial)
	}
	if sp.Phase(obs.SpanSerial) == 0 {
		t.Error("serial attempt left no serial phase time")
	}
	sawCapacity := false
	for _, c := range sp.Causes() {
		if c.Cause == "capacity" && c.Count > 0 {
			sawCapacity = true
		}
	}
	if !sawCapacity {
		t.Errorf("causes = %+v, want a capacity abort", sp.Causes())
	}
}
