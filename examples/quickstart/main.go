// Quickstart: the smallest useful program against the hohtx public API.
//
// It builds a hand-over-hand transactional set with RR-V reservations,
// runs a few concurrent workers, and prints the set contents, the exact
// node memory accounting (precise reclamation means LiveNodes always
// equals the set size plus one sentinel), and the transaction statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"hohtx"
)

func main() {
	const threads = 4
	set := hohtx.NewListSet(hohtx.Config{Threads: threads})

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			set.Register(tid) // once per worker, before the first op
			// Each worker owns a stripe of keys; everyone also pokes at a
			// shared key to create some conflicts.
			for i := 0; i < 100; i++ {
				key := uint64(tid*100+i) + 1
				set.Insert(tid, key)
				if i%2 == 0 {
					set.Remove(tid, key) // memory is reclaimed on return
				}
			}
			set.Insert(tid, 9999)
			set.Lookup(tid, 9999)
			set.Finish(tid)
		}(w)
	}
	wg.Wait()

	snapshot := set.Snapshot()
	fmt.Printf("set holds %d keys; first few: %v\n", len(snapshot), snapshot[:5])

	mem := set.(hohtx.MemoryReporter)
	fmt.Printf("live nodes: %d (= %d keys + 1 sentinel), deferred: %d\n",
		mem.LiveNodes(), len(snapshot), mem.DeferredNodes())
	if mem.LiveNodes() != uint64(len(snapshot))+1 {
		panic("precise reclamation violated") // never happens
	}

	st := hohtx.StatsOf(set)
	fmt.Printf("transactions: %d committed, %d aborted attempts, %d serialized\n",
		st.Commits, st.Aborts, st.Serial)
}
