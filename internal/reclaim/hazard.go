package reclaim

import (
	"sync/atomic"
	"time"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/pad"
)

// DefaultScanThreshold is the retired-list length that triggers a hazard
// scan. The paper reports hazard-pointer performance is best when threads
// "only reclaim after 64 deletions" and uses that setting; so do we.
const DefaultScanThreshold = 64

// retiree is one logically deleted node awaiting a safe free.
type retiree struct {
	h     arena.Handle
	stamp uint64
}

// hpThread is one thread's hazard-pointer state.
type hpThread struct {
	slots   []atomic.Uint64 // published hazards (arena.Handle bits)
	retired []retiree
	_       pad.Line
}

// HazardPointers implements Michael's hazard-pointer scheme over arena
// handles. Each of Threads threads owns SlotsPerThread hazard slots.
type HazardPointers struct {
	observer
	threads   []hpThread
	stats     []threadStats
	free      FreeFunc
	threshold int
	perThread int
}

// HPConfig parameterizes NewHazardPointers.
type HPConfig struct {
	Threads        int // number of participating threads (required)
	SlotsPerThread int // hazard slots per thread; default 3
	ScanThreshold  int // retired-list length that triggers a scan; default 64
	Free           FreeFunc
}

// NewHazardPointers creates a hazard-pointer domain.
func NewHazardPointers(cfg HPConfig) *HazardPointers {
	if cfg.SlotsPerThread <= 0 {
		cfg.SlotsPerThread = 3
	}
	if cfg.ScanThreshold <= 0 {
		cfg.ScanThreshold = DefaultScanThreshold
	}
	hp := &HazardPointers{
		threads:   make([]hpThread, cfg.Threads),
		stats:     make([]threadStats, cfg.Threads),
		free:      cfg.Free,
		threshold: cfg.ScanThreshold,
		perThread: cfg.SlotsPerThread,
	}
	for i := range hp.threads {
		hp.threads[i].slots = make([]atomic.Uint64, cfg.SlotsPerThread)
	}
	return hp
}

// Name implements Scheme.
func (hp *HazardPointers) Name() string { return "HP" }

// Protect publishes h in the caller's hazard slot. Publication uses a
// sequentially consistent store, so any thread that subsequently scans is
// guaranteed to observe it (or the node was already unreachable when the
// caller re-validates).
func (hp *HazardPointers) Protect(tid, slot int, h arena.Handle) arena.Handle {
	hp.threads[tid].slots[slot].Store(uint64(h))
	return h
}

// ClearSlots implements Scheme.
func (hp *HazardPointers) ClearSlots(tid int) {
	t := &hp.threads[tid]
	for i := range t.slots {
		t.slots[i].Store(0)
	}
}

// Retire implements Scheme: h is queued and a scan runs once the thread
// has accumulated ScanThreshold retirements.
func (hp *HazardPointers) Retire(tid int, h arena.Handle, stamp uint64) {
	t := &hp.threads[tid]
	t.retired = append(t.retired, retiree{h: h, stamp: stamp})
	hp.stats[tid].noteRetire()
	hp.noteRetireEv(tid, h)
	if len(t.retired) >= hp.threshold {
		hp.scan(tid, stamp)
	}
}

// Flush implements Scheme.
//
// A single scan is not enough at teardown: freeing one retiree can be what
// lets another thread's traversal move off a second retiree, and hazard
// slots published by threads that finished *after* this one may still cover
// entries in our list on the first pass. Rescanning until the retired list
// stops shrinking frees everything that can ever become free without
// further Retire traffic; whatever remains is still genuinely hazardous and
// shows up in Stats.Leftover for harnesses to assert on.
func (hp *HazardPointers) Flush(tid int, stamp uint64) {
	t := &hp.threads[tid]
	for len(t.retired) > 0 {
		before := len(t.retired)
		hp.scan(tid, stamp)
		if len(t.retired) == before {
			break
		}
	}
}

// scan frees every retired node no thread currently protects. This is the
// batched reclamation whose allocator interaction Figure 5 studies: up to
// ScanThreshold frees hit the allocator back to back.
func (hp *HazardPointers) scan(tid int, stamp uint64) {
	if sp := hp.reclaimSpan(tid); sp != nil {
		t0 := time.Now()
		defer func() { sp.Add(obs.SpanReclaim, uint64(time.Since(t0))) }()
	}
	st := &hp.stats[tid]
	st.scans.Add(1)
	hazards := make(map[arena.Handle]struct{}, len(hp.threads)*hp.perThread)
	for i := range hp.threads {
		for j := range hp.threads[i].slots {
			if v := hp.threads[i].slots[j].Load(); v != 0 {
				hazards[arena.Handle(v)] = struct{}{}
			}
		}
	}
	t := &hp.threads[tid]
	kept := t.retired[:0]
	for _, r := range t.retired {
		if _, hazardous := hazards[r.h]; hazardous {
			kept = append(kept, r)
			continue
		}
		hp.free(tid, r.h)
		st.noteFree(stamp - r.stamp)
		hp.noteFreeEv(tid, stamp-r.stamp)
	}
	t.retired = kept
	st.leftover.Store(uint64(len(kept)))
}

// Stats implements Scheme.
func (hp *HazardPointers) Stats() Stats { return sumStats(hp.stats) }

var _ Scheme = (*HazardPointers)(nil)
