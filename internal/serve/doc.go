// Package serve is the serving layer: it turns the in-process,
// fixed-thread-id sets of this repository into something a network server
// (or any program with more goroutines than worker slots) can use safely.
//
// The rigid contract everywhere else in the repo — "each concurrent worker
// must use a distinct id in [0, Threads)" — is exactly right for the
// paper's benchmarks, where the harness owns its goroutines, and exactly
// wrong for a server, where goroutines come and go with connections. The
// Pool in this package closes that gap: it treats the Threads worker ids
// as a fixed set of leasable slots and multiplexes any number of
// goroutines onto them with
//
//   - per-handle slot affinity (a connection that re-leases tends to get
//     its previous slot back, so per-slot allocator magazines and
//     reservation state stay warm),
//   - a bounded FIFO wait queue with context cancellation (backpressure
//     is explicit: beyond the bound, Acquire fails fast with
//     ErrSaturated), and
//   - lease/wait/backpressure statistics, exported through an optional
//     obs.Domain (lease_wait_ns histogram plus gauges).
//
// Server speaks a minimal pipelined text protocol (GET/SET/DEL/LEN/INFO,
// one line per request, one line per reply) over any sets.Set, leasing a
// slot per burst of buffered requests so an idle connection holds no
// slot. cmd/hohserver wraps it in a binary; cmd/hohload is the matching
// load generator. See DESIGN.md §9 for the protocol grammar and the
// backpressure semantics.
//
// Sharded lifts the single-instance bottleneck: every TL2-style set
// serializes writers through one global version clock, so one instance
// caps write throughput no matter how shard-friendly the key mix is.
// ShardOf hash-partitions keys across N fully independent instances (each
// with its own clock, serial-fallback lock, arena, and — behind Server —
// its own lease pool), the facade re-implements sets.Set by routing, and
// LEN/INFO aggregate. See DESIGN.md §10.
package serve
