// Command benchdiff is the bench trend gate: it joins two BENCH_<n>.json
// snapshots on cell identity (family/variant/clock/threads/window plus
// the server-mode dimensions conns/depth/read%/shards/rate/batch/scan)
// and fails when a cell's throughput dropped through its tolerance band.
// Outcome columns — the deferral depth and reclamation-delay percentiles
// BENCH_7 records for the extended reclamation matrix, the forensics
// block — never join the identity, so snapshots recorded before those
// columns existed still compare against snapshots recorded after. The band
// is the -tolerance floor widened by both snapshots' recorded relative
// standard deviations, so noisy cells don't gate on noise; cells present
// in only one snapshot are reported but never gate, because PRs add and
// retire workloads freely.
//
// Usage:
//
//	benchdiff OLD.json NEW.json          # explicit pair
//	benchdiff -auto .                    # the two highest-numbered BENCH_<n>.json
//	benchdiff -tolerance 0.35 -p99-tolerance 1.0 OLD.json NEW.json
//
// CI runs the -auto form in the docs-and-hygiene job: committing a new
// BENCH_<n>.json that records a hot-path regression against the previous
// snapshot fails the build. Fewer than two snapshots under the -auto
// directory is an error (exit 2) — a gate that silently passes because it
// found nothing to compare is a gate someone disabled by accident. Two
// snapshots with no overlapping cells still pass with a note, because PRs
// add and retire workloads freely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hohtx/internal/bench"
)

func main() {
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput drop before stddev widening")
	p99tol := flag.Float64("p99-tolerance", 0, "allowed fractional p99 latency growth (0 = latency not gated)")
	auto := flag.String("auto", "", "directory: compare the two highest-numbered BENCH_<n>.json in it")
	flag.Parse()

	var oldPath, newPath string
	switch {
	case *auto != "":
		if flag.NArg() != 0 {
			fatal("benchdiff: -auto takes no positional snapshots")
		}
		var err error
		oldPath, newPath, err = bench.LatestPair(*auto)
		if err != nil {
			fatal("benchdiff: " + err.Error())
		}
	case flag.NArg() == 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fatal("benchdiff: usage: benchdiff [-tolerance f] [-p99-tolerance f] OLD.json NEW.json | -auto DIR")
	}

	oldSum, newSum := load(oldPath), load(newPath)
	deltas := bench.Diff(oldSum, newSum, bench.DiffOptions{
		Tolerance:    *tolerance,
		P99Tolerance: *p99tol,
	})
	fmt.Printf("benchdiff: %s (bench %d) -> %s (bench %d): %d comparable cells, %d new-only\n",
		oldPath, oldSum.Bench, newPath, newSum.Bench, len(deltas), len(newSum.Cells)-len(deltas))
	if len(deltas) == 0 {
		fmt.Println("benchdiff: no overlapping cells; nothing to gate")
		return
	}
	regressions := 0
	for _, d := range deltas {
		mark := "ok  "
		if d.Regressed() {
			mark = "FAIL"
			regressions++
		}
		fmt.Printf("  %s %-70s %8.4f -> %8.4f Mops (%+6.1f%%, band -%.1f%%)\n",
			mark, d.Key, d.OldMops, d.NewMops, 100*d.Change, 100*d.Allowed)
		if d.Regressed() {
			fmt.Printf("       ^ %s\n", d.Why)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond tolerance\n", regressions)
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}

func load(path string) bench.Summary {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("benchdiff: " + err.Error())
	}
	var s bench.Summary
	if err := json.Unmarshal(data, &s); err != nil {
		fatal("benchdiff: " + path + ": " + err.Error())
	}
	return s
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(2)
}
