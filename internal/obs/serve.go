package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Registry is a mutable set of Domains for the HTTP export surface.
// Drivers that build structures on the fly (cmd/torture's sweep,
// cmd/rrstress's rounds) register each instance's domain for the duration
// of its run.
type Registry struct {
	mu      sync.Mutex
	domains map[*Domain]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{domains: make(map[*Domain]struct{})}
}

// Register adds d (nil-safe no-op).
func (r *Registry) Register(d *Domain) {
	if d == nil {
		return
	}
	r.mu.Lock()
	r.domains[d] = struct{}{}
	r.mu.Unlock()
}

// Unregister removes d.
func (r *Registry) Unregister(d *Domain) {
	if d == nil {
		return
	}
	r.mu.Lock()
	delete(r.domains, d)
	r.mu.Unlock()
}

// Snapshots returns every registered domain's snapshot, name-ordered.
func (r *Registry) Snapshots() []DomainSnapshot {
	r.mu.Lock()
	ds := make([]*Domain, 0, len(r.domains))
	for d := range r.domains {
		ds = append(ds, d)
	}
	r.mu.Unlock()
	out := make([]DomainSnapshot, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// promName sanitizes a label into a Prometheus metric-name segment.
func promName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders every registered domain in the Prometheus text
// exposition format (hand-written over the stdlib: no client library).
func (r *Registry) WriteProm(w *strings.Builder) {
	for _, s := range r.Snapshots() {
		dom := promName(s.Name)
		for _, h := range s.Histograms {
			m := fmt.Sprintf("hohtx_%s_%s", dom, promName(h.Name))
			fmt.Fprintf(w, "# TYPE %s histogram\n", m)
			var cum uint64
			for b, c := range h.Buckets {
				cum += c
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m, BucketUpper(b), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
			fmt.Fprintf(w, "%s_sum %d\n", m, h.Sum)
			fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
		}
		for _, g := range s.Gauges {
			m := fmt.Sprintf("hohtx_%s_%s", dom, promName(g.Name))
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, g.Value)
		}
		for _, e := range s.Aborts {
			m := fmt.Sprintf("hohtx_%s_aborted_by_total", dom)
			fmt.Fprintf(w, "%s{victim=\"%d\",owner=\"%d\"} %d\n", m, e.Victim, e.Owner, e.Count)
		}
	}
}

// Handler returns the registry's HTTP mux: /metrics (Prometheus text),
// /snapshot (the DomainSnapshot list as JSON), /flight (recorder dumps)
// and the net/http/pprof endpoints under /debug/pprof/.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteProm(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshots())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		r.mu.Lock()
		ds := make([]*Domain, 0, len(r.domains))
		for d := range r.domains {
			ds = append(ds, d)
		}
		r.mu.Unlock()
		sort.Slice(ds, func(i, j int) bool { return ds[i].name < ds[j].name })
		w.Header().Set("Content-Type", "text/plain")
		for _, d := range ds {
			d.DumpFlight(w, 200)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics/pprof endpoint on addr (e.g. "127.0.0.1:6070";
// port 0 picks a free one) and returns the bound address. The server runs
// until the process exits; drivers treat it as a debugging tap, not a
// managed component.
func Serve(addr string, r *Registry) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
