package list

import (
	"sync"
	"testing"

	"hohtx/internal/core"
)

// ER-specific behavior: early release keeps transactions' tracked read
// sets small but *cannot* reclaim precisely — removals defer through
// epochs until every thread active at retirement has quiesced.

func newER(threads, w int) *List {
	return New(Config{Mode: ModeER, Threads: threads, Window: core.Window{W: w}, ScanThreshold: 4})
}

func TestERDefersReclamation(t *testing.T) {
	l := newER(2, 4)
	l.Register(0)
	for k := uint64(1); k <= 40; k++ {
		l.Insert(0, k)
	}
	for k := uint64(1); k <= 40; k++ {
		l.Remove(0, k)
	}
	// Epoch reclamation frees only what is two epochs old; with ongoing
	// single-thread activity most retirements drain, but the most recent
	// ones must still be deferred (this is the imprecision the paper's
	// mechanism removes).
	if l.LiveNodes() == 1 && l.DeferredNodes() == 0 {
		t.Skip("epochs drained everything already (legal but unusual); nothing to assert")
	}
	l.Finish(0)
	l.Finish(0) // second flush advances past the final epoch
	if def := l.DeferredNodes(); def != 0 {
		t.Fatalf("deferred = %d after full quiescent flush", def)
	}
	if live := l.LiveNodes(); live != 1 {
		t.Fatalf("live = %d after flush, want 1", live)
	}
}

// TestERSmallReadFootprint: with the HTM-simulation capacity bound that
// would reject a whole-list traversal, ER operations must still commit
// speculatively (their tracked read suffix stays ~W), while a plain HTM
// traversal of the same list must overflow into serial mode.
func TestERSmallReadFootprint(t *testing.T) {
	const n = 300
	prof := profileWithCapacity(64)
	er := New(Config{Mode: ModeER, Threads: 1, Window: core.Window{W: 4}, Profile: prof, ScanThreshold: 8})
	htm := New(Config{Mode: ModeHTM, Threads: 1, Profile: prof})
	for _, l := range []*List{er, htm} {
		l.Register(0)
		for k := uint64(1); k <= n; k++ {
			l.Insert(0, k)
		}
		for i := 0; i < 50; i++ {
			l.Lookup(0, n) // full-length traversal
		}
	}
	if s := er.Runtime().Stats(); s.Aborts[capacityCause()] != 0 {
		t.Fatalf("ER hit %d capacity aborts; early release is not shrinking the read set", s.Aborts[capacityCause()])
	}
	if s := htm.Runtime().Stats(); s.SerialCommits == 0 {
		t.Fatal("HTM baseline never serialized despite capacity 64 over a 300-node traversal")
	}
}

// TestERConcurrentWriters exercises the version-bump-on-removed-node
// protocol: concurrent inserts and removes around the same region must
// keep the balance invariant despite released reads.
func TestERConcurrentWriters(t *testing.T) {
	const threads = 6
	l := newER(threads, 3)
	var wg sync.WaitGroup
	var ins, rem int64
	var mu sync.Mutex
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			l.Register(tid)
			li, lr := int64(0), int64(0)
			for i := 0; i < 2500; i++ {
				k := uint64((i*7+tid)%96) + 1
				if i&1 == 0 {
					if l.Insert(tid, k) {
						li++
					}
				} else {
					if l.Remove(tid, k) {
						lr++
					}
				}
			}
			l.Finish(tid)
			mu.Lock()
			ins += li
			rem += lr
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	snap := l.Snapshot()
	if int64(len(snap)) != ins-rem {
		t.Fatalf("balance violated: |set|=%d ins-rem=%d", len(snap), ins-rem)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatal("snapshot unsorted")
		}
	}
}
