package torture

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hohtx/internal/arena"
	"hohtx/internal/obs"
	"hohtx/internal/serve"
	"hohtx/internal/sets"
)

// Config fully determines one torture run; String() is the repro line.
type Config struct {
	Structure string       // see Structures()
	Variant   string       // see Variants(structure)
	Policy    arena.Policy // allocator free-list policy
	Threads   int          // concurrent worker count (default 4)
	Ops       int          // operations per worker (default 2000)
	Keys      uint64       // key-space size; keys are 1..Keys (default 128)
	LookupPct int          // % of ops that are lookups (default 20)
	Window    int          // hand-over-hand window size (default 4)
	Seed      uint64       // schedule seed; 0 means 1
	Guard     bool         // enable the arena use-after-free sanitizer
	// BatchOps, when > 1, drives each worker's op stream through Set.Apply
	// in groups of this many ops instead of one call per op — the exact
	// oracle then also pins Apply's per-op results. On transactional
	// structures the run additionally keeps a key pair beyond the oracle
	// range that one goroutine batch-inserts/batch-removes together while
	// another batch-looks-up both, asserting all-or-nothing visibility per
	// batch (both present or neither, never one).
	BatchOps int
	// Shards partitions the key space across this many fully independent
	// instances behind serve.Sharded (default 1 = unsharded). Every
	// invariant is then checked twice: in aggregate on the facade, and per
	// shard (each shard keeps its own exact memory book).
	Shards int
	// Registry, when non-nil, carries the run's observability domain for
	// the duration of the run so a live /metrics endpoint (cmd/torture's
	// -obs flag) can watch a long sweep. Not part of the repro string.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.Keys == 0 {
		c.Keys = 128
	}
	if c.LookupPct == 0 {
		c.LookupPct = 20
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// String renders the run as a reproducible `go run ./cmd/torture` command
// line; it is embedded in every failure.
func (c Config) String() string {
	g := ""
	if c.Guard {
		g = " -guard"
	}
	sh := ""
	if c.Shards > 1 {
		sh = fmt.Sprintf(" -shards=%d", c.Shards)
	}
	b := ""
	if c.BatchOps > 1 {
		b = fmt.Sprintf(" -batch=%d", c.BatchOps)
	}
	return fmt.Sprintf(
		"torture -structure=%s -variant=%s -policy=%d -threads=%d -ops=%d -keys=%d -lookup=%d -window=%d -seed=%d%s%s%s",
		c.Structure, c.Variant, c.Policy, c.Threads, c.Ops, c.Keys, c.LookupPct, c.Window, c.Seed, sh, b, g)
}

// Report summarizes a completed run.
type Report struct {
	Size        int     // final set cardinality
	Inserts     uint64  // successful inserts (workers, not prefill)
	Removes     uint64  // successful removes
	Live        uint64  // arena live nodes after quiesce
	Deferred    uint64  // retired-but-unfreed nodes after quiesce
	Leftover    uint64  // scheme leftovers after the final Finish round
	AvgDelayOps float64 // mean retire→free distance in op stamps (deferred schemes)
	PoisonReads uint64  // benign doomed-reader poison observations (guard)
	Violations  uint64  // committed use-after-free reads (guard; must be 0)
	PairChecks  uint64  // batch-atomicity observer transactions (BatchOps runs)
	ScanChecks  uint64  // concurrent scan-oracle iterations (Ascender variants)
}

// leaseBatch is how many operations a worker runs under one slot lease
// before releasing it — short enough that streams migrate across slots
// many times per run, long enough that the pool is not the bottleneck.
const leaseBatch = 64

// splitmix64 is the per-worker deterministic RNG step.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// workerTally is one worker's contribution to the exact oracle.
type workerTally struct {
	ins []int64 // successful inserts per key
	rem []int64 // successful removes per key
	err error   // recovered panic, if any
}

// Run executes one torture configuration and checks every invariant.
// The returned error (if any) embeds cfg.String() for reproduction.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	inst, err := build(cfg)
	if err != nil {
		return Report{}, err
	}
	return runOn(cfg, inst)
}

// runOn drives a pre-built instance (split out so tests can inspect the
// structure after the run).
func runOn(cfg Config, inst *instance) (Report, error) {
	var rep Report
	s := inst.set
	if cfg.Registry != nil {
		for _, d := range inst.domains() {
			cfg.Registry.Register(d)
			defer cfg.Registry.Unregister(d)
		}
	}

	// All worker-id traffic goes through a lease pool: it registers every
	// slot up front, and each logical worker leases slots in short batches,
	// so one op stream migrates across worker ids mid-run. That is a
	// torture dimension the fixed-tid harness could not reach — per-slot
	// state (reservations, hazard slots, allocator magazines) must not
	// leak between the streams that share a slot over time.
	pool := serve.NewPool(s, serve.PoolConfig{Slots: cfg.Threads, Obs: inst.obs})

	// Span arming: the serving layer threads an obs.Span through every
	// stamping site (stm attempt loop, serial fallback, reclamation
	// scans, abort attribution). The harness arms a pooled span around
	// every lease batch so those exact paths run under the race detector
	// with tracing live, and so span lifecycle bugs become panics: Reset
	// panics on a span the previous batch leaked, Finish on a double
	// finish. Lock-free baselines carry no domain; their workers still
	// cycle the spans, pinning the lifecycle discipline itself.
	armSpan := func(tid int, sp *obs.Span) {}
	if sh, ok := s.(*serve.Sharded); ok && len(inst.obsAll) > 0 {
		armSpan = sh.ArmSpan
	} else if inst.obs != nil {
		armSpan = inst.obs.SetSpan
	}

	// Prefill about half the key space single-threaded so removals have
	// something to chew on from the first operation.
	presence := make([]int64, cfg.Keys+1)
	seed := cfg.Seed
	_ = pool.Do(context.Background(), func(tid int) {
		for i := uint64(0); i < cfg.Keys/2; i++ {
			k := 1 + splitmix64(&seed)%cfg.Keys
			if s.Insert(tid, k) {
				presence[k] = 1
			}
		}
	})

	// Scan oracle: while the workers churn, a scanner drives the Ascender
	// reservation cursor end to end and checks the weak-consistency
	// contract the wire ASCEND verb inherits. Fixture keys parked above
	// both the oracle's key range and the pair pin's stay present for the
	// whole churn phase, so every scan must deliver each fixture at or
	// beyond its start key — and strictly ascending delivery makes that
	// exactly-once. Everything else a scan observes must be an oracle key
	// (in-flight churn is fine) or an in-flight pair-pin key; any other
	// key is a phantom.
	var scanChecks atomic.Uint64
	var scanMu sync.Mutex
	var scanFails []string
	stopScan := make(chan struct{})
	var scanWg sync.WaitGroup
	var fixtures []uint64
	if inst.canScan {
		a := s.(sets.Ascender)
		fixBase := cfg.Keys + 64
		fixSet := make(map[uint64]bool, 8)
		for i := uint64(0); i < 8; i++ {
			k := fixBase + i*5
			fixtures = append(fixtures, k)
			fixSet[k] = true
		}
		_ = pool.Do(context.Background(), func(tid int) {
			for _, k := range fixtures {
				if !s.Insert(tid, k) {
					scanFails = append(scanFails, fmt.Sprintf("scan oracle: fixture %d insert failed", k))
				}
			}
		})
		scanFail := func(format string, args ...any) {
			scanMu.Lock()
			if len(scanFails) < 8 { // a broken cursor would flood the report
				scanFails = append(scanFails, fmt.Sprintf(format, args...))
			}
			scanMu.Unlock()
		}
		scanWg.Add(1)
		go func() {
			defer scanWg.Done()
			h := pool.Handle()
			sp := new(obs.Span) // pooled: one span object, re-armed per scan
			rng := cfg.Seed ^ 0x5ca9
			for round := 0; ; round++ {
				select {
				case <-stopScan:
					return
				default:
				}
				var lo uint64
				switch round % 3 {
				case 0:
					lo = 0 // full scan
				case 1:
					lo = 1 + splitmix64(&rng)%cfg.Keys // mid-range start
				default:
					lo = fixBase // fixture suffix only
				}
				last, seenFix := uint64(0), 0
				_ = h.Do(context.Background(), func(tid int) {
					sp.Reset("ASCEND")
					armSpan(tid, sp)
					defer func() { armSpan(tid, nil); sp.Finish() }()
					err := a.Ascend(tid, lo, func(k uint64) bool {
						if k <= last && last != 0 {
							scanFail("scan oracle: round %d from %d: %d after %d (order/duplicate)", round, lo, k, last)
							return false
						}
						last = k
						switch {
						case k <= cfg.Keys: // oracle key, churned freely
						case fixSet[k]:
							seenFix++
						case k < fixBase: // in-flight pair-pin key
						default:
							scanFail("scan oracle: round %d: phantom key %d", round, k)
							return false
						}
						return true
					})
					if err != nil {
						scanFail("scan oracle: round %d: Ascend: %v", round, err)
					} else if seenFix != len(fixtures) {
						scanFail("scan oracle: round %d from %d: %d of %d present-throughout fixtures delivered",
							round, lo, seenFix, len(fixtures))
					}
				})
				scanChecks.Add(1)
			}
		}()
	}

	// Concurrent phase: every worker runs a deterministic op stream drawn
	// from its own seed and tallies its successful mutations per key. The
	// op stream is keyed to the worker index; which slot executes each
	// batch is schedule-dependent and irrelevant to the oracle.
	tallies := make([]workerTally, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := &tallies[w]
			t.ins = make([]int64, cfg.Keys+1)
			t.rem = make([]int64, cfg.Keys+1)
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 8<<10)
					buf = buf[:runtime.Stack(buf, false)]
					t.err = fmt.Errorf("worker %d panicked: %v\n%s", w, r, buf)
				}
			}()
			h := pool.Handle()
			sp := new(obs.Span) // pooled: one span object, re-armed per lease batch
			rng := cfg.Seed*0x2545f4914f6cdd1d + uint64(w+1)
			var batch []sets.Op
			if cfg.BatchOps > 1 {
				batch = make([]sets.Op, 0, cfg.BatchOps)
			}
			for i := 0; i < cfg.Ops; {
				_ = h.Do(context.Background(), func(tid int) {
					sp.Reset("torture")
					armSpan(tid, sp)
					defer func() { armSpan(tid, nil); sp.Finish() }()
					for b := 0; b < leaseBatch && i < cfg.Ops; i = i + 1 {
						r := splitmix64(&rng)
						k := 1 + (r>>16)%cfg.Keys
						var kind sets.OpKind
						switch {
						case int(r%100) < cfg.LookupPct:
							kind = sets.OpLookup
						case r&(1<<40) == 0:
							kind = sets.OpInsert
						default:
							kind = sets.OpRemove
						}
						if cfg.BatchOps > 1 {
							// Same op stream, grouped through Apply: the exact
							// oracle below then also pins Apply's per-op results
							// against the sequential semantics.
							batch = append(batch, sets.Op{Kind: kind, Key: k})
							if len(batch) == cfg.BatchOps || i+1 == cfg.Ops {
								for j, got := range s.Apply(tid, batch) {
									if got {
										switch batch[j].Kind {
										case sets.OpInsert:
											t.ins[batch[j].Key]++
										case sets.OpRemove:
											t.rem[batch[j].Key]++
										}
									}
								}
								b += len(batch)
								batch = batch[:0]
							}
							continue
						}
						b++
						switch kind {
						case sets.OpLookup:
							s.Lookup(tid, k)
						case sets.OpInsert:
							if s.Insert(tid, k) {
								t.ins[k]++
							}
						default:
							if s.Remove(tid, k) {
								t.rem[k]++
							}
						}
					}
				})
			}
		}(w)
	}

	// Batch-atomicity pin: while the workers churn, a toggler flips a key
	// pair (outside the oracle's key range, co-resident on one shard) with
	// two-op batches — insert both, then remove both — and an observer
	// batch-looks-up both. Each lookup batch is one transaction, so it must
	// see the pair together or not at all; one-of-two is a torn batch.
	// The lock-free baselines document Apply as per-op (non-atomic), so the
	// pin only runs where the contract holds.
	var pairChecks, pairTorn atomic.Uint64
	if cfg.BatchOps > 1 && inst.atomicBatch {
		pA := cfg.Keys + 1
		pB := pA + 1
		for serve.ShardOf(pB, cfg.Shards) != serve.ShardOf(pA, cfg.Shards) {
			pB++
		}
		stopPairs := make(chan struct{})
		var pairWg sync.WaitGroup
		pairWg.Add(2)
		go func() { // toggler
			defer pairWg.Done()
			h := pool.Handle()
			ins := []sets.Op{{Kind: sets.OpInsert, Key: pA}, {Kind: sets.OpInsert, Key: pB}}
			del := []sets.Op{{Kind: sets.OpRemove, Key: pA}, {Kind: sets.OpRemove, Key: pB}}
			for on := false; ; on = !on {
				select {
				case <-stopPairs:
					// Leave the pair absent so the oracle, snapshot range and
					// memory books below are untouched by the pin.
					_ = h.Do(context.Background(), func(tid int) { s.Apply(tid, del) })
					return
				default:
				}
				ops := ins
				if on {
					ops = del
				}
				_ = h.Do(context.Background(), func(tid int) { s.Apply(tid, ops) })
			}
		}()
		go func() { // observer
			defer pairWg.Done()
			h := pool.Handle()
			look := []sets.Op{{Kind: sets.OpLookup, Key: pA}, {Kind: sets.OpLookup, Key: pB}}
			// Check-then-poll order: on a single-CPU box the workers can
			// finish before this goroutine is first scheduled, and the pin
			// must still record at least one check.
			for {
				_ = h.Do(context.Background(), func(tid int) {
					res := s.Apply(tid, look)
					pairChecks.Add(1)
					if res[0] != res[1] {
						pairTorn.Add(1)
					}
				})
				select {
				case <-stopPairs:
					return
				default:
				}
			}
		}()
		wg.Wait()
		close(stopPairs)
		pairWg.Wait()
	} else {
		wg.Wait()
	}
	rep.PairChecks = pairChecks.Load()

	if inst.canScan {
		close(stopScan)
		scanWg.Wait()
		// Retire the fixtures before quiesce so the exact oracle, snapshot
		// range and memory books below see only the run's own key space.
		_ = pool.Do(context.Background(), func(tid int) {
			for _, k := range fixtures {
				if !s.Remove(tid, k) {
					scanFails = append(scanFails, fmt.Sprintf("scan oracle: fixture %d missing at teardown", k))
				}
			}
		})
	}
	rep.ScanChecks = scanChecks.Load()

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	for i := range tallies {
		if tallies[i].err != nil {
			fail("%v", tallies[i].err)
		}
	}
	failures = append(failures, scanFails...)
	if torn := pairTorn.Load(); torn > 0 {
		fail("batch atomicity: %d of %d pair lookups saw a torn batch (one key of an atomically toggled pair)",
			torn, pairChecks.Load())
	}
	if len(failures) > 0 {
		// A worker died mid-transaction; the structure may hold locks, so
		// post-quiesce checks would only add noise.
		return rep, runError(cfg, inst, failures)
	}

	// Quiesce and drain deferred reclamation. A sequential Finish sweep
	// (pool.FinishAll) can leave a slot's retirees pinned by hazards that
	// slots with higher ids only clear in their own (later) Finish; after
	// round one the leftovers must be bounded by the published-slot count,
	// and a second round — with every slot cleared — must free them all.
	pool.FinishAll()
	if inst.rounds > 1 {
		if inst.strandBound {
			// Every shard holds the full slot complement (the facade registers
			// each tid everywhere), so the hazard bound scales with the shard
			// count. Hazard Eras takes round 2 but skips this bound: a single
			// stale era reservation strands every retiree whose lifetime
			// interval contains it, which the slot count does not cap.
			bound := uint64(cfg.Threads) * 3 * uint64(cfg.Shards)
			if left := inst.reclaim().Leftover; left > bound {
				fail("after Finish round 1: %d leftover retirees exceeds the hazard-slot bound %d", left, bound)
			}
		}
		pool.FinishAll()
	}

	// Exact oracle: presence after quiesce is prefill presence plus the
	// net successful mutations, key by key, in any interleaving.
	for k := uint64(1); k <= cfg.Keys; k++ {
		for i := range tallies {
			presence[k] += tallies[i].ins[k] - tallies[i].rem[k]
			rep.Inserts += uint64(tallies[i].ins[k])
			rep.Removes += uint64(tallies[i].rem[k])
		}
		if presence[k] != 0 && presence[k] != 1 {
			fail("key %d: net presence %d (duplicate insert or phantom remove)", k, presence[k])
		}
	}

	snap := s.Snapshot()
	rep.Size = len(snap)
	for i, k := range snap {
		if k < 1 || k > cfg.Keys {
			fail("snapshot[%d] = %d outside key range [1, %d]", i, k, cfg.Keys)
		}
		if i > 0 && snap[i-1] >= k {
			fail("snapshot not strictly sorted at %d: %d then %d", i-1, snap[i-1], k)
		}
	}
	want := 0
	for k := uint64(1); k <= cfg.Keys; k++ {
		if presence[k] == 1 {
			want++
			if !contains(snap, k) {
				fail("oracle says key %d present, snapshot disagrees", k)
			}
		}
	}
	if want != len(snap) {
		fail("oracle size %d != snapshot size %d", want, len(snap))
	}

	// Memory books. Precise modes must balance exactly — that is the
	// paper's claim; deferred modes balance once the deferred remainder is
	// added back, and non-leaky deferred modes must have drained to zero.
	if mr, ok := s.(sets.MemoryReporter); ok {
		rep.Live = mr.LiveNodes()
		rep.Deferred = mr.DeferredNodes()
		rs := inst.reclaim()
		rep.Leftover = rs.Leftover
		rep.AvgDelayOps = rs.AvgDelayOps()
		expect := inst.baseLive + inst.perKey*uint64(len(snap))
		switch {
		case !inst.deferred:
			if rep.Live != expect {
				fail("precise mode: live %d != sentinels %d + %d per key × size %d = %d",
					rep.Live, inst.baseLive, inst.perKey, len(snap), expect)
			}
			if rep.Deferred != 0 {
				fail("precise mode: %d deferred nodes", rep.Deferred)
			}
		case inst.leak:
			if rep.Live != expect+rep.Deferred {
				fail("leak mode: live %d != %d expected + %d leaked", rep.Live, expect, rep.Deferred)
			}
		default:
			if rep.Deferred != 0 {
				fail("deferred mode: %d nodes still deferred after full drain", rep.Deferred)
			}
			if rep.Leftover != 0 {
				fail("deferred mode: %d leftover retirees after full drain", rep.Leftover)
			}
			if rep.Live != expect {
				fail("deferred mode after drain: live %d != expected %d", rep.Live, expect)
			}
		}
	}

	if inst.validate != nil {
		if err := inst.validate(); err != nil {
			fail("%v", err)
		}
	}

	if inst.guard != nil {
		gs := guardStatsOf(s)
		rep.PoisonReads = gs.PoisonReads
		rep.Violations = gs.Violations
		for _, ev := range inst.guard.take() {
			fail("guard: %s", ev)
		}
		if rep.Violations != 0 && len(inst.guard.take()) == 0 {
			fail("guard: %d violations counted", rep.Violations)
		}
	}

	if len(failures) > 0 {
		return rep, runError(cfg, inst, failures)
	}
	return rep, nil
}

// guardStatsOf fetches the sanitizer counters from any guarded structure.
func guardStatsOf(s sets.Set) arena.GuardStats {
	if g, ok := s.(interface{ GuardStats() arena.GuardStats }); ok {
		return g.GuardStats()
	}
	return arena.GuardStats{}
}

func contains(sorted []uint64, k uint64) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
	return i < len(sorted) && sorted[i] == k
}

// flightDumpTail bounds how much of the flight recorder a failure embeds.
const flightDumpTail = 200

func runError(cfg Config, inst *instance, failures []string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "torture run failed (repro: %s):\n  - %s",
		cfg, strings.Join(failures, "\n  - "))
	if inst != nil {
		// Dump the flight recorder(s) right next to the repro line: the last
		// few hundred lifecycle events plus the who-aborted-whom matrix are
		// usually enough to localize a schedule-dependent bug without
		// rerunning the seed under a debugger. A sharded run dumps every
		// shard's recorder — the failing transaction lives in exactly one.
		for _, d := range inst.domains() {
			b.WriteString("\n")
			d.DumpFlight(&b, flightDumpTail)
		}
	}
	return fmt.Errorf("%s", b.String())
}
