package stm

import (
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hohtx/internal/obs"
)

// pokeAllStats drives every counter Stats reports to a nonzero value by
// writing the underlying shards directly (the workload needed to make all
// of them nonzero organically — e.g. ClockCASes under GV1 — does not
// exist). Adding a field to statShard or the lock counters without
// extending this list fails TestResetStatsParity's nonzero phase, which is
// the reminder to keep Stats, ResetStats and this test in sync.
func pokeAllStats(rt *Runtime) {
	for i := range rt.stats.shards {
		sh := &rt.stats.shards[i]
		sh.commits.Store(1)
		sh.serialCommits.Store(1)
		sh.extensions.Store(1)
		sh.clockCASes.Store(1)
		sh.commitSlow.Store(1)
		for c := 0; c < int(numCauses); c++ {
			sh.aborts[c].Store(1)
		}
		for b := 0; b < BatchBuckets; b++ {
			sh.batch[b].txs.Store(1)
			sh.batch[b].ops.Store(1)
			sh.batch[b].aborts.Store(1)
			sh.batch[b].serial.Store(1)
		}
	}
	rt.commitLock.revocations.Store(1)
	rt.commitLock.writerWaits.Store(1)
}

// walkStatsFields visits every leaf uint64 of a Stats value by reflection,
// so the parity check automatically covers fields added later.
func walkStatsFields(t *testing.T, s Stats, visit func(path string, v uint64)) {
	t.Helper()
	rv := reflect.ValueOf(s)
	rt := rv.Type()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		name := rt.Field(i).Name
		switch f.Kind() {
		case reflect.Uint64:
			visit(name, f.Uint())
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				e := f.Index(j)
				switch e.Kind() {
				case reflect.Uint64:
					visit(name+"["+AbortCause(j).String()+"]", e.Uint())
				case reflect.Struct:
					et := e.Type()
					for k := 0; k < e.NumField(); k++ {
						visit(name+"["+BatchBucketLabel(j)+"]."+et.Field(k).Name, e.Field(k).Uint())
					}
				default:
					t.Fatalf("Stats field %s element has kind %v; extend the parity test", name, e.Kind())
				}
			}
		default:
			t.Fatalf("Stats field %s has kind %v; extend the parity test", name, f.Kind())
		}
	}
}

// TestResetStatsParity asserts, by reflection over Stats, that ResetStats
// zeroes every field Stats reports — no counter can be added to the
// snapshot without also being added to the reset path.
func TestResetStatsParity(t *testing.T) {
	rt := NewRuntime(Profile{})
	pokeAllStats(rt)
	walkStatsFields(t, rt.Stats(), func(path string, v uint64) {
		if v == 0 {
			t.Errorf("poked runtime reports %s = 0; pokeAllStats misses it", path)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	rt.ResetStats()
	walkStatsFields(t, rt.Stats(), func(path string, v uint64) {
		if v != 0 {
			t.Errorf("after ResetStats, %s = %d; reset does not cover it", path, v)
		}
	})
}

// TestObserverTrace attaches a probe at full sampling and checks that the
// flight recorder, histograms and attribution table all see a transaction
// that aborts once (explicitly) and then commits.
func TestObserverTrace(t *testing.T) {
	rt := NewRuntime(Profile{})
	d := obs.NewDomain(obs.DomainConfig{Name: "stm-test", Threads: 4})
	rt.SetObserver(d.TxProbe())

	var w Word
	first := true
	rt.AtomicT(2, func(tx *Tx) {
		w.Store(tx, w.Load(tx)+1)
		if first {
			first = false
			tx.Restart()
		}
	})
	if w.Raw() != 1 {
		t.Fatalf("counter = %d", w.Raw())
	}

	ev := d.Recorder().Events()
	var kinds []obs.EventKind
	for _, e := range ev {
		if e.Tid != 2 {
			t.Fatalf("event carries tid %d, want 2: %+v", e.Tid, e)
		}
		kinds = append(kinds, e.Kind)
	}
	want := []obs.EventKind{obs.EvBegin, obs.EvAbort, obs.EvBegin, obs.EvCommit}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}
	abortEv := ev[1]
	if AbortCause(abortEv.Cause) != CauseExplicit {
		t.Fatalf("abort cause %d, want explicit", abortEv.Cause)
	}

	s := d.Snapshot()
	if h, ok := s.Hist(obs.HistCommitNs); !ok || h.Count != 1 {
		t.Fatalf("commit hist: %+v ok=%v", h, ok)
	}
	if len(s.Aborts) != 1 || s.Aborts[0].Victim != 2 || s.Aborts[0].Owner != -1 {
		t.Fatalf("attribution edges: %+v", s.Aborts)
	}
}

// TestObserverAttribution drives a real write-write conflict and checks
// the abort is attributed to the owning thread via the conflicting cell.
func TestObserverAttribution(t *testing.T) {
	rt := NewRuntime(Profile{})
	d := obs.NewDomain(obs.DomainConfig{Name: "attr-test", Threads: 4})
	rt.SetObserver(d.TxProbe())

	var w Word
	// Thread 1 commits a write so the attribution table records it as the
	// cell's owner.
	rt.AtomicT(1, func(tx *Tx) { w.Store(tx, 7) })

	// Thread 3 reads the cell, then thread 1 commits again underneath it
	// before thread 3 reaches commit — a deterministic validation abort.
	// (The nested Atomic is against the documented contract but safe in
	// this schedule: the enclosing attempt is speculative, so it holds no
	// locks while fn runs, and the nesting happens on the first attempt
	// only — far from the serial-fallback threshold.)
	aborted := false
	rt.AtomicT(3, func(tx *Tx) {
		v := w.Load(tx)
		if !aborted {
			aborted = true
			rt.AtomicT(1, func(inner *Tx) { w.Store(inner, v+1) })
		}
		w.Store(tx, v+100)
	})

	edges := d.Attr().Edges()
	found := false
	for _, e := range edges {
		if e.Victim == 3 && e.Owner == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no victim=3 owner=1 edge: %+v", edges)
	}
}

// TestObserverSamplingDisabled checks that a probe with sampling off
// records nothing (the configuration the overhead bound is stated for).
func TestObserverSamplingDisabled(t *testing.T) {
	rt := NewRuntime(Profile{})
	d := obs.NewDomain(obs.DomainConfig{Name: "off", Threads: 2, SampleShift: -1})
	rt.SetObserver(d.TxProbe())
	var w Word
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt.AtomicT(g, func(tx *Tx) { w.Store(tx, w.Load(tx)+1) })
			}
		}(g)
	}
	wg.Wait()
	if w.Raw() != 800 {
		t.Fatalf("counter = %d", w.Raw())
	}
	s := d.Snapshot()
	if s.Events != 0 {
		t.Fatalf("disabled sampling recorded %d events", s.Events)
	}
	if h, ok := s.Hist(obs.HistCommitNs); ok && h.Count != 0 {
		t.Fatalf("disabled sampling recorded %d commit latencies", h.Count)
	}
}

// BenchmarkParallelWriteTxObs is the before/after overhead microbenchmark
// for the observability layer on the headline contended commit path
// (compare against BenchmarkParallelWriteTx/gv1, which has no probe):
//
//	go test ./internal/stm -run xx -cpu 4 -count 10 \
//	    -bench 'ParallelWriteTx(/gv1|Obs/)' | benchstat -
//
// The acceptance bound is ≤ 2% delta for the "disabled" case, which —
// since request spans sit outside the sampling gate — also pays the
// per-transaction SpanOf lookup that returns nil when no span is armed.
// The "span-armed" case is the other end: every attempt stamped onto a
// live request span, the cost a traced outlier pays.
func BenchmarkParallelWriteTxObs(b *testing.B) {
	cases := []struct {
		name  string
		shift int
		probe bool
		span  bool
	}{
		{"detached", 0, false, false},      // no probe at all: one nil check
		{"disabled", -1, true, false},      // probe attached, sampling off, no span
		{"sampled-1in256", 8, true, false}, // probe attached, 1-in-256 sampling
		{"span-armed", -1, true, true},     // sampling off, request span armed
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			runWriteTxBench(b, c.shift, c.probe, c.span)
		})
	}
}

// runWriteTxBench is the shared body of BenchmarkParallelWriteTxObs and
// TestSpanOverheadPaired: the contended multi-cell write transaction with
// the observability layer in the requested state.
func runWriteTxBench(b *testing.B, shift int, probe, span bool) {
	rt := NewRuntime(Profile{})
	var d *obs.Domain
	if probe {
		d = obs.NewDomain(obs.DomainConfig{Name: "bench", Threads: 64, SampleShift: shift})
		rt.SetObserver(d.TxProbe())
	}
	groups := make([]benchCells, 64)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := int(benchGoroutineID.Add(1) % uint64(len(groups)))
		g := &groups[id]
		if span {
			sp := new(obs.Span)
			sp.Reset("bench")
			d.SetSpan(id, sp)
			defer d.SetSpan(id, nil)
		}
		i := uint64(0)
		for pb.Next() {
			i++
			rt.AtomicT(id, func(tx *Tx) {
				for j := range g.cells {
					g.cells[j].Store(tx, i)
				}
			})
		}
	})
}

// TestSpanOverheadPaired is the acceptance measurement for the tracing
// overhead budget: probe attached but sampling disabled and no span armed
// (the production steady state, which now also pays the per-transaction
// SpanOf lookup) must stay within 2% of the fully detached runtime.
//
// `go test -count` runs each benchmark's repetitions consecutively, and on
// this class of VM consecutive blocks drift by >10% between invocations —
// so this test interleaves detached/disabled pairs itself, inside one
// process, and compares medians. It needs a quiet machine and ~5 s of
// wall clock, so it is opt-in:
//
//	HOHTX_OVERHEAD=1 go test ./internal/stm -run SpanOverheadPaired \
//	    -v -benchtime 0.5s
func TestSpanOverheadPaired(t *testing.T) {
	if os.Getenv("HOHTX_OVERHEAD") == "" {
		t.Skip("set HOHTX_OVERHEAD=1 to run the paired overhead measurement")
	}
	const pairs = 5
	nsPerOp := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	var det, dis, armed []float64
	for i := 0; i < pairs; i++ {
		d := nsPerOp(testing.Benchmark(func(b *testing.B) { runWriteTxBench(b, 0, false, false) }))
		p := nsPerOp(testing.Benchmark(func(b *testing.B) { runWriteTxBench(b, -1, true, false) }))
		a := nsPerOp(testing.Benchmark(func(b *testing.B) { runWriteTxBench(b, -1, true, true) }))
		det, dis, armed = append(det, d), append(dis, p), append(armed, a)
		t.Logf("pair %d: detached %.1f ns/op, disabled %.1f (%+.1f%%), span-armed %.1f",
			i, d, p, 100*(p-d)/d, a)
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	md, mp, ma := median(det), median(dis), median(armed)
	delta := 100 * (mp - md) / md
	t.Logf("medians: detached %.1f ns/op, disabled %.1f (%+.1f%%), span-armed %.1f (%+.1f%%)",
		md, mp, delta, ma, 100*(ma-md)/md)
	if delta > 2.0 {
		t.Errorf("tracing-disabled median overhead %.1f%% exceeds the 2%% budget", delta)
	}
}
