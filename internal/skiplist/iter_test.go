package skiplist

import (
	"sync"
	"sync/atomic"
	"testing"

	"hohtx/internal/core"
	"hohtx/internal/obs"
)

func TestSkipAscendSequential(t *testing.T) {
	for _, k := range core.Kinds() {
		s := New(Config{Mode: ModeRR, RRKind: k, Threads: 1, Window: core.Window{W: 3}})
		t.Run(s.Name(), func(t *testing.T) {
			s.Register(0)
			for key := uint64(2); key <= 80; key += 2 {
				s.Insert(0, key)
			}
			var got []uint64
			if err := s.Ascend(0, 0, func(key uint64) bool {
				got = append(got, key)
				return true
			}); err != nil {
				t.Fatalf("Ascend: %v", err)
			}
			if len(got) != 40 {
				t.Fatalf("ascend yielded %d keys, want 40: %v", len(got), got)
			}
			for i, key := range got {
				if key != uint64(2*(i+1)) {
					t.Fatalf("key[%d] = %d", i, key)
				}
			}
			// From a midpoint.
			got = got[:0]
			if err := s.Ascend(0, 41, func(key uint64) bool {
				got = append(got, key)
				return true
			}); err != nil {
				t.Fatalf("Ascend from 41: %v", err)
			}
			if len(got) != 20 || got[0] != 42 {
				t.Fatalf("ascend from 41: %v", got)
			}
			// Early stop must not leak a hold into the next op.
			count := 0
			if err := s.Ascend(0, 0, func(uint64) bool {
				count++
				return count < 5
			}); err != nil {
				t.Fatalf("early-stop Ascend: %v", err)
			}
			if count != 5 {
				t.Fatalf("early stop delivered %d", count)
			}
			if !s.Lookup(0, 2) {
				t.Fatal("lookup broken after early-stopped ascend")
			}
			if !s.CanAscend() {
				t.Fatal("CanAscend = false for RR skiplist")
			}
		})
	}
}

func TestSkipAscendHTMMode(t *testing.T) {
	s := New(Config{Mode: ModeHTM, Threads: 1})
	s.Register(0)
	for key := uint64(1); key <= 10; key++ {
		s.Insert(0, key)
	}
	var n int
	if err := s.Ascend(0, 0, func(uint64) bool { n++; return true }); err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	if n != 10 {
		t.Fatalf("HTM ascend yielded %d", n)
	}
}

// TestSkipAscendPanicReleasesHold mirrors the list regression: a
// panicking consumer must not leave the cursor's reservation behind.
func TestSkipAscendPanicReleasesHold(t *testing.T) {
	s := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 2,
		Window: core.Window{W: 2, NoScatter: true}})
	s.Register(0)
	s.Register(1)
	baseline := s.LiveNodes()
	for k := uint64(1); k <= 20; k++ {
		s.Insert(0, k)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the consumer panic to propagate")
			}
		}()
		_ = s.Ascend(0, 0, func(k uint64) bool {
			if k == 6 {
				panic("consumer bug")
			}
			return true
		})
	}()
	if !s.Lookup(0, 1) {
		t.Fatal("Lookup(1) false after panicking scan: reservation hold leaked")
	}
	for k := uint64(1); k <= 20; k++ {
		if !s.Remove(1, k) {
			t.Fatalf("Remove(%d) failed after panicking scan", k)
		}
	}
	if live := s.LiveNodes(); live != baseline {
		t.Fatalf("live nodes = %d after removing all, want baseline %d", live, baseline)
	}
}

// TestSkipAscendRenavigation removes held nodes behind the cursor's back
// and checks the scan both survives (complete, ascending, exactly-once
// for present-throughout keys) and counts at least one re-navigation.
func TestSkipAscendRenavigation(t *testing.T) {
	dom := obs.NewDomain(obs.DomainConfig{Name: "skip-iter-test", Threads: 2, SampleShift: 0})
	s := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 2,
		Window: core.Window{W: 2, NoScatter: true}, Obs: dom})
	s.Register(0)
	s.Register(1)
	for k := uint64(1); k <= 30; k++ {
		s.Insert(0, k)
	}
	// Remove the key right after each delivered key: whichever node the
	// cursor reserved at a cut, some removal will hit it.
	removed := map[uint64]bool{}
	var got []uint64
	if err := s.Ascend(0, 0, func(k uint64) bool {
		if k+1 <= 30 && !removed[k+1] {
			removed[k+1] = true
			s.Remove(1, k+1)
		}
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	last := uint64(0)
	for _, k := range got {
		if k <= last {
			t.Fatalf("out of order / duplicate at %d: %v", k, got)
		}
		last = k
	}
	if got[0] != 1 {
		t.Fatalf("first delivered key = %d, want 1", got[0])
	}
	snap := dom.Snapshot()
	if h, ok := snap.Hist(obs.HistAscendRenavs); !ok || h.Sum < 1 {
		t.Fatalf("ascend_renavigations = %+v, want sum >= 1", h)
	}
}

// TestSkipAscendConcurrent checks the weak-consistency contract under
// churn with immediate reclamation recycling nodes mid-scan.
func TestSkipAscendConcurrent(t *testing.T) {
	const stable = 50 // odd keys 1..99 stay put
	s := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 4, Window: core.Window{W: 4}})
	s.Register(0)
	for k := uint64(1); k <= 99; k += 2 {
		s.Insert(0, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= 3; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Register(tid)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64((i*2+tid*4)%100) + 100 // churn keys 100..199
				s.Insert(tid, k)
				s.Remove(tid, k)
			}
		}(w)
	}
	var violations atomic.Int64
	for round := 0; round < 30; round++ {
		var got []uint64
		if err := s.Ascend(0, 0, func(key uint64) bool {
			got = append(got, key)
			return true
		}); err != nil {
			t.Fatalf("round %d: Ascend: %v", round, err)
		}
		seen := 0
		lastKey := uint64(0)
		for _, k := range got {
			if k <= lastKey {
				violations.Add(1) // out of order or duplicate
			}
			lastKey = k
			if k <= 99 && k%2 == 1 {
				seen++
			}
		}
		if seen != stable {
			t.Fatalf("round %d: saw %d of %d stable keys", round, seen, stable)
		}
	}
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d ordering violations", violations.Load())
	}
}

// TestSkipAscendDeferredModes runs the cursor protocol over the deferred
// schemes: sequential correctness including early stop, then the
// weak-consistency contract under concurrent churn (covering the
// dead-checked resume path where RR uses revocation).
func TestSkipAscendDeferredModes(t *testing.T) {
	for _, mode := range []Mode{ModeTMHE, ModeTMVBR} {
		s := New(Config{Mode: mode, Threads: 4, Window: core.Window{W: 4}, ScanThreshold: 8})
		t.Run(s.Name(), func(t *testing.T) {
			if !s.CanAscend() {
				t.Fatal("CanAscend = false")
			}
			s.Register(0)
			for k := uint64(1); k <= 99; k += 2 {
				s.Insert(0, k)
			}
			var got []uint64
			if err := s.Ascend(0, 0, func(key uint64) bool {
				got = append(got, key)
				return true
			}); err != nil {
				t.Fatalf("Ascend: %v", err)
			}
			if len(got) != 50 || got[0] != 1 || got[49] != 99 {
				t.Fatalf("sequential ascend: %v", got)
			}
			// Early stop must not leak the start handle into the next op.
			count := 0
			if err := s.Ascend(0, 0, func(uint64) bool { count++; return count < 5 }); err != nil {
				t.Fatalf("early-stop Ascend: %v", err)
			}
			if !s.Lookup(0, 1) {
				t.Fatal("lookup broken after early-stopped ascend")
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 1; w <= 3; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					s.Register(tid)
					for i := 0; ; i++ {
						select {
						case <-stop:
							s.Finish(tid)
							return
						default:
						}
						k := uint64((i*2+tid*4)%100) + 100
						s.Insert(tid, k)
						s.Remove(tid, k)
					}
				}(w)
			}
			for round := 0; round < 30; round++ {
				got = got[:0]
				if err := s.Ascend(0, 0, func(key uint64) bool {
					got = append(got, key)
					return true
				}); err != nil {
					t.Fatalf("round %d: Ascend: %v", round, err)
				}
				seen := 0
				lastKey := uint64(0)
				for _, k := range got {
					if k <= lastKey {
						t.Fatalf("round %d: ordering violation at %d", round, k)
					}
					lastKey = k
					if k <= 99 && k%2 == 1 {
						seen++
					}
				}
				if seen != 50 {
					t.Fatalf("round %d: saw %d of 50 stable keys", round, seen)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
