package arena

import (
	"testing"

	"hohtx/internal/obs"
)

// TestFreeReuseDistance pins the op-clock arithmetic: free at clock c,
// reuse at clock c+k after k-1 intervening ops → recorded distance k.
func TestFreeReuseDistance(t *testing.T) {
	a := New[uint64](Config{Threads: 2, Policy: PolicyLocal})
	d := obs.NewDomain(obs.DomainConfig{Name: "arena-test", Threads: 2})
	a.SetObserver(d.AllocProbe())

	h := a.Alloc(0) // clock 1
	a.Free(0, h)    // clock 2: slot stamped 2
	_ = a.Alloc(0)  // clock 3: reuses the slot (LIFO magazine), distance 1

	s := d.Snapshot()
	hs, ok := s.Hist(obs.HistReuseOps)
	if !ok || hs.Count != 1 {
		t.Fatalf("reuse hist: %+v ok=%v", hs, ok)
	}
	if hs.Sum != 1 || hs.Max != 1 {
		t.Fatalf("distance sum=%d max=%d, want 1/1", hs.Sum, hs.Max)
	}

	// A second cycle with an intervening op stretches the distance.
	h2 := a.Alloc(0) // clock 4 (fresh slot, no distance recorded)
	h3 := a.Alloc(1) // clock 5 (fresh)
	a.Free(0, h2)    // clock 6: stamped 6
	a.Free(1, h3)    // clock 7: stamped 7
	_ = a.Alloc(0)   // clock 8: reuses h2's slot, distance 2
	hs, _ = d.Snapshot().Hist(obs.HistReuseOps)
	if hs.Count != 2 || hs.Sum != 3 {
		t.Fatalf("after second cycle count=%d sum=%d, want 2/3", hs.Count, hs.Sum)
	}

	// Free and reuse events are in the flight recorder.
	var frees, reuses int
	for _, e := range d.Recorder().Events() {
		switch e.Kind {
		case obs.EvFree:
			frees++
		case obs.EvReuse:
			reuses++
		}
	}
	if frees != 3 || reuses != 2 {
		t.Fatalf("recorder saw %d frees / %d reuses, want 3/2", frees, reuses)
	}
}

// TestObserverDisabledRecordsNothing checks the sampling-off path.
func TestObserverDisabledRecordsNothing(t *testing.T) {
	a := New[uint64](Config{Threads: 1})
	d := obs.NewDomain(obs.DomainConfig{Name: "arena-off", Threads: 1, SampleShift: -1})
	a.SetObserver(d.AllocProbe())
	h := a.Alloc(0)
	a.Free(0, h)
	_ = a.Alloc(0)
	s := d.Snapshot()
	if hs, ok := s.Hist(obs.HistReuseOps); ok && hs.Count != 0 {
		t.Fatalf("disabled observer recorded %d distances", hs.Count)
	}
	if s.Events != 0 {
		t.Fatalf("disabled observer recorded %d events", s.Events)
	}
}

// TestObserverBackfillAfterGrowth attaches the observer after pages exist
// and checks stamps still work (and growth keeps the shadow in lockstep).
func TestObserverBackfillAfterGrowth(t *testing.T) {
	a := New[uint64](Config{Threads: 1})
	pre := a.Alloc(0) // grows page 0 before the observer exists
	d := obs.NewDomain(obs.DomainConfig{Name: "arena-late", Threads: 1})
	a.SetObserver(d.AllocProbe())
	a.Free(0, pre)
	_ = a.Alloc(0) // recycles pre's slot
	hs, ok := d.Snapshot().Hist(obs.HistReuseOps)
	if !ok || hs.Count != 1 {
		t.Fatalf("backfilled stamps missed the reuse: %+v ok=%v", hs, ok)
	}
	// Force growth past page 0 with the observer attached.
	for i := 0; i < pageSize+8; i++ {
		_ = a.Alloc(0)
	}
	stamps := *a.obsv.stamps.Load()
	pages := *a.pages.Load()
	if len(stamps) != len(pages) {
		t.Fatalf("stamp shadow has %d pages, slots have %d", len(stamps), len(pages))
	}
}
