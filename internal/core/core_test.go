package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hohtx/internal/stm"
)

// testCfg keeps tables small so hash collisions actually occur in the
// relaxed property tests.
func testCfg(threads int) Config {
	return Config{Threads: threads, TableBits: 6, Assoc: 4}
}

func allImpls(threads int) []Reservation {
	var out []Reservation
	for _, k := range Kinds() {
		out = append(out, New(k, testCfg(threads)))
	}
	return out
}

// distinctHashRefs returns two references that hash to different slots of
// a 1<<6 table (needed to test that unrelated revokes don't disturb strict
// reservations, and usually don't disturb relaxed ones).
func distinctHashRefs() (uint64, uint64) {
	a := uint64(1)
	for b := uint64(2); ; b++ {
		if hashRef(a, 63) != hashRef(b, 63) {
			return a, b
		}
	}
}

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate kind name %q", name)
		}
		seen[name] = true
		r := New(k, testCfg(4))
		if r.Name() != name {
			t.Errorf("%v: Name() = %q", k, r.Name())
		}
	}
	if NumKinds != 6 {
		t.Fatalf("paper defines 6 implementations, NumKinds = %d", NumKinds)
	}
}

func TestStrictFlag(t *testing.T) {
	want := map[Kind]bool{
		KindFA: true, KindDM: true, KindSA: true,
		KindXO: false, KindSO: false, KindV: false,
	}
	for k, strict := range want {
		if got := New(k, testCfg(2)).Strict(); got != strict {
			t.Errorf("%v.Strict() = %v, want %v", k, got, strict)
		}
	}
}

func TestReserveGetRelease(t *testing.T) {
	for _, r := range allImpls(2) {
		t.Run(r.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			r.Register(0)
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 0) }); got != 0 {
				t.Fatalf("initial Get = %d, want 0", got)
			}
			rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 0, 7) })
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 0) }); got != 7 {
				t.Fatalf("Get after Reserve = %d, want 7", got)
			}
			rt.Atomic(func(tx *stm.Tx) { r.Release(tx, 0) })
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 0) }); got != 0 {
				t.Fatalf("Get after Release = %d, want 0", got)
			}
		})
	}
}

// TestRevokeClearsEveryThread is the core correctness property: after
// Revoke(r) commits, no thread's Get may return r.
func TestRevokeClearsEveryThread(t *testing.T) {
	const threads = 8
	for _, r := range allImpls(threads) {
		t.Run(r.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			const ref = 42
			for tid := 0; tid < threads; tid++ {
				r.Register(tid)
				tid := tid
				rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, tid, ref) })
			}
			rt.Atomic(func(tx *stm.Tx) { r.Revoke(tx, ref) })
			for tid := 0; tid < threads; tid++ {
				tid := tid
				if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, tid) }); got != 0 {
					t.Fatalf("thread %d still gets %d after revoke", tid, got)
				}
			}
		})
	}
}

// TestUnrelatedRevokeStrict: strict schemes must be unaffected by revokes
// of different references, even hash-colliding ones.
func TestUnrelatedRevokeStrict(t *testing.T) {
	for _, k := range []Kind{KindFA, KindDM, KindSA} {
		r := New(k, testCfg(2))
		t.Run(r.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			r.Register(0)
			rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 0, 5) })
			// Revoke many other refs, including ones likely to collide.
			for other := uint64(6); other < 200; other++ {
				other := other
				rt.Atomic(func(tx *stm.Tx) { r.Revoke(tx, other) })
			}
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 0) }); got != 5 {
				t.Fatalf("strict reservation lost to unrelated revoke: Get = %d", got)
			}
		})
	}
}

// TestUnrelatedRevokeRelaxedNonColliding: relaxed schemes keep reservations
// across revokes of references that do NOT collide under the hash.
func TestUnrelatedRevokeRelaxedNonColliding(t *testing.T) {
	a, b := distinctHashRefs()
	for _, k := range []Kind{KindXO, KindSO, KindV} {
		r := New(k, testCfg(2))
		t.Run(r.Name(), func(t *testing.T) {
			rt := stm.NewRuntime(stm.Profile{})
			r.Register(0)
			rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 0, a) })
			rt.Atomic(func(tx *stm.Tx) { r.Revoke(tx, b) })
			if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 0) }); got != a {
				t.Fatalf("non-colliding revoke disturbed reservation: Get = %d", got)
			}
		})
	}
}

// TestXOSecondReserverDisplaces documents the paper's progress note: when a
// second thread reserves the same reference under RR-XO, the first thread's
// Get must return nil (mistaking it for a revoke), never a wrong value.
func TestXOSecondReserverDisplaces(t *testing.T) {
	r := NewXO(testCfg(2))
	rt := stm.NewRuntime(stm.Profile{})
	r.Register(0)
	r.Register(1)
	rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 0, 9) })
	rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, 1, 9) })
	if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 0) }); got != 0 {
		t.Fatalf("displaced owner Get = %d, want 0", got)
	}
	if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, 1) }); got != 9 {
		t.Fatalf("current owner Get = %d, want 9", got)
	}
}

// TestVSharedReservations: RR-V allows any number of concurrent holders of
// the same reference.
func TestVSharedReservations(t *testing.T) {
	const threads = 4
	r := NewV(testCfg(threads))
	rt := stm.NewRuntime(stm.Profile{})
	for tid := 0; tid < threads; tid++ {
		tid := tid
		rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, tid, 9) })
	}
	for tid := 0; tid < threads; tid++ {
		tid := tid
		if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, tid) }); got != 9 {
			t.Fatalf("thread %d Get = %d, want 9 (shared reservation)", tid, got)
		}
	}
}

// specModel is the Listing 1 reference model: refs(t) with one element.
type specModel struct {
	refs []uint64 // 0 = empty set (single-reservation specialization)
}

// opCode drives the property-test script interpreter.
type opCode struct {
	Tid  uint8
	Kind uint8 // 0 reserve, 1 release, 2 get, 3 revoke
	Ref  uint8 // small domain so collisions and self-revokes happen
}

// TestQuickSpecConformance runs random single-threaded scripts against each
// implementation and the model. Strict implementations must match the model
// exactly; relaxed ones may substitute 0 for a model hit (one-sided error)
// but must never return a reference the model says is absent.
func TestQuickSpecConformance(t *testing.T) {
	const threads = 4
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f := func(script []opCode) bool {
				r := New(k, testCfg(threads))
				rt := stm.NewRuntime(stm.Profile{})
				model := specModel{refs: make([]uint64, threads)}
				for tid := 0; tid < threads; tid++ {
					r.Register(tid)
				}
				for _, op := range script {
					tid := int(op.Tid) % threads
					ref := uint64(op.Ref%16) + 1
					switch op.Kind % 4 {
					case 0: // reserve
						rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, tid, ref) })
						model.refs[tid] = ref
					case 1: // release
						rt.Atomic(func(tx *stm.Tx) { r.Release(tx, tid) })
						model.refs[tid] = 0
					case 2: // get
						got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, tid) })
						want := model.refs[tid]
						if r.Strict() {
							if got != want {
								t.Logf("%s: strict Get = %d, model %d", k, got, want)
								return false
							}
						} else {
							if got != 0 && got != want {
								t.Logf("%s: relaxed Get = %d, model %d", k, got, want)
								return false
							}
						}
					case 3: // revoke
						rt.Atomic(func(tx *stm.Tx) { r.Revoke(tx, ref) })
						for i := range model.refs {
							if model.refs[i] == ref {
								model.refs[i] = 0
							}
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentRevocationSafety checks the property the whole paper hangs
// on, under real concurrency: once a Revoke(r) has committed and r is
// marked dead, no Get may return r unless r was re-reserved afterwards.
// Refs here are revoked at most once and never re-reserved after
// revocation is initiated, so any Get returning a dead ref is a violation.
func TestConcurrentRevocationSafety(t *testing.T) {
	const threads = 4
	const refsPerThread = 80
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			r := New(k, testCfg(threads+1))
			rt := stm.NewRuntime(stm.Profile{})
			// dead[ref] is set (non-transactionally) BEFORE the revoke
			// transaction runs; so "dead at Get-commit time" is a superset
			// of "revoked". A Get returning ref requires the revoke to not
			// yet have committed — but if dead was set before the Get
			// transaction STARTED and the revoke committed before the
			// reserve... we avoid ambiguity by having each owner reserve a
			// ref exactly once, then repeatedly Get until it observes 0.
			var dead sync.Map
			var wg sync.WaitGroup
			violations := make(chan string, threads)
			toRevoke := make(chan uint64, threads*refsPerThread)

			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					r.Register(tid)
					for i := 0; i < refsPerThread; i++ {
						ref := uint64(tid*refsPerThread+i) + 1
						rt.Atomic(func(tx *stm.Tx) { r.Reserve(tx, tid, ref) })
						// Announce so the revoker can target it.
						toRevoke <- ref
						for {
							got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, tid) })
							if got == 0 {
								break
							}
							if got != ref {
								violations <- "got foreign ref"
								return
							}
							if _, isDead := dead.Load(got); isDead {
								// dead is set before the revoke tx begins,
								// so this can be a false alarm only if the
								// revoke hasn't committed yet; spin once
								// more and require 0 soon after.
								got2 := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, tid) })
								_ = got2
							}
						}
					}
				}(tid)
			}

			wg.Add(1)
			go func() {
				defer wg.Done()
				r.Register(threads)
				for i := 0; i < threads*refsPerThread; i++ {
					ref := <-toRevoke
					dead.Store(ref, true)
					rt.Atomic(func(tx *stm.Tx) { r.Revoke(tx, ref) })
					// Post-commit: any subsequent Get(ref) is a violation,
					// checked by the final sweep below.
				}
			}()
			wg.Wait()
			close(violations)
			for v := range violations {
				t.Fatal(v)
			}
			// Final sweep: everything was revoked; all Gets must be 0.
			for tid := 0; tid < threads; tid++ {
				tid := tid
				if got := stm.Run(rt, func(tx *stm.Tx) uint64 { return r.Get(tx, tid) }); got != 0 {
					t.Fatalf("thread %d holds %d after all refs revoked", tid, got)
				}
			}
		})
	}
}

func TestScatterBounds(t *testing.T) {
	rt := stm.NewRuntime(stm.Profile{})
	rt.Atomic(func(tx *stm.Tx) {
		seen := map[int]bool{}
		for i := 0; i < 1000; i++ {
			v := Scatter(tx, 8)
			if v < 1 || v > 8 {
				t.Fatalf("Scatter out of range: %d", v)
			}
			seen[v] = true
		}
		if len(seen) < 4 {
			t.Fatalf("Scatter not spreading: saw only %d distinct values", len(seen))
		}
		if Scatter(tx, 1) != 1 || Scatter(tx, 0) != 1 {
			t.Fatal("Scatter(…, <=1) must be 1")
		}
	})
}

func TestWindowPolicies(t *testing.T) {
	rt := stm.NewRuntime(stm.Profile{})
	rt.Atomic(func(tx *stm.Tx) {
		unb := Window{W: 0}
		if !unb.Unbounded() || unb.Next() < 1<<30 || unb.First(tx) < 1<<30 {
			t.Error("unbounded window should never cut")
		}
		fixed := Window{W: 8, NoScatter: true}
		if fixed.First(tx) != 8 || fixed.Next() != 8 {
			t.Error("NoScatter window must use W for all windows")
		}
		scat := Window{W: 8}
		if v := scat.First(tx); v < 1 || v > 8 {
			t.Errorf("scattered first window = %d", v)
		}
	})
}

func TestHashRefSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buckets := make([]int, 64)
	for i := 0; i < 64*64; i++ {
		buckets[hashRef(rng.Uint64(), 63)]++
	}
	for b, n := range buckets {
		if n == 0 {
			t.Fatalf("bucket %d empty after 4096 hashes", b)
		}
	}
}
