package stm

import (
	"sync"
	"testing"
)

// TestBravoFastPathClaimsSlot checks the common case: with reader bias
// armed and no serial writers, a speculative commit claims a table slot and
// never touches the underlying rwlock.
func TestBravoFastPathClaimsSlot(t *testing.T) {
	rt := newTestRuntime()
	var w Word
	for i := 0; i < 50; i++ {
		rt.Atomic(func(tx *Tx) { w.Store(tx, uint64(i)) })
	}
	st := rt.Stats()
	if st.CommitSlowPath != 0 {
		t.Fatalf("uncontended commits took the slow path %d times", st.CommitSlowPath)
	}
	if st.BiasRevocations != 0 {
		t.Fatalf("no serial writer ran, yet %d revocations", st.BiasRevocations)
	}
}

// TestBravoRevocationAndRearm forces serial commits and checks the
// writer-side protocol: the first serial writer revokes the bias (counted
// in stats), and later speculative commits still succeed — either through
// the rwlock or after a slow-path reader re-arms the bias.
func TestBravoRevocationAndRearm(t *testing.T) {
	rt := NewRuntime(Profile{Capacity: 4, MaxAttempts: 2})
	cells := make([]Word, 16)
	// Capacity overflow -> serial mode -> revocation.
	rt.Atomic(func(tx *Tx) {
		for i := range cells {
			cells[i].Store(tx, 1)
		}
	})
	st := rt.Stats()
	if st.SerialCommits == 0 {
		t.Fatal("expected a serial commit")
	}
	if st.BiasRevocations == 0 {
		t.Fatal("serial writer did not revoke the reader bias")
	}
	// Speculative commits must keep working after revocation.
	for i := 0; i < 50; i++ {
		rt.Atomic(func(tx *Tx) { cells[0].Store(tx, cells[0].Load(tx)+1) })
	}
	if got := cells[0].Raw(); got != 51 {
		t.Fatalf("cells[0] = %d, want 51", got)
	}
}

// TestBravoSerialSpeculativeHammer interleaves serial and fast-path writers
// on shared cells under both clock policies; any lost update means the
// revocation/drain handshake let a serial writer overlap a speculative
// commit.
func TestBravoSerialSpeculativeHammer(t *testing.T) {
	for _, pol := range []ClockPolicy{ClockGV1, ClockGV5} {
		t.Run(pol.String(), func(t *testing.T) {
			rt := NewRuntime(Profile{Capacity: 6, MaxAttempts: 3, ClockPolicy: pol})
			var counter Word
			big := make([]Word, 24)
			const workers = 6
			const perWorker = 400
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						if i%8 == 0 {
							// Serial (capacity overflow): bump counter and
							// sweep the big array.
							rt.Atomic(func(tx *Tx) {
								counter.Store(tx, counter.Load(tx)+1)
								for j := range big {
									big[j].Store(tx, big[j].Load(tx)+1)
								}
							})
						} else {
							rt.Atomic(func(tx *Tx) {
								counter.Store(tx, counter.Load(tx)+1)
							})
						}
					}
				}(g)
			}
			wg.Wait()
			if got := counter.Raw(); got != workers*perWorker {
				t.Fatalf("counter = %d, want %d", got, workers*perWorker)
			}
			want := uint64(workers * perWorker / 8)
			for j := range big {
				if got := big[j].Raw(); got != want {
					t.Fatalf("big[%d] = %d, want %d", j, got, want)
				}
			}
			st := rt.Stats()
			if st.BiasRevocations == 0 {
				t.Errorf("%s: expected revocations, stats %v", pol, st)
			}
		})
	}
}
