package hohtx

import (
	"sync"
	"testing"
)

func constructors() map[string]func(Config) Set {
	return map[string]func(Config) Set{
		"list":  NewListSet,
		"dlist": NewDoublyListSet,
		"itree": NewInternalTreeSet,
		"etree": NewExternalTreeSet,
		"hash":  func(c Config) Set { return NewHashSet(c, 32) },
		"skip":  NewSkipListSet,
	}
}

func TestFacadeBasics(t *testing.T) {
	for name, mk := range constructors() {
		for r := RRVersioned; r <= RRSetAssoc; r++ {
			s := mk(Config{Threads: 2, Reservation: r})
			s.Register(0)
			if !s.Insert(0, 10) || !s.Lookup(0, 10) || s.Insert(0, 10) {
				t.Fatalf("%s/%s: insert/lookup broken", name, r)
			}
			if !s.Remove(0, 10) || s.Lookup(0, 10) {
				t.Fatalf("%s/%s: remove broken", name, r)
			}
			st := StatsOf(s)
			if st.Commits == 0 {
				t.Fatalf("%s/%s: no commits recorded", name, r)
			}
		}
	}
}

func TestFacadeMemoryReporting(t *testing.T) {
	s := NewListSet(Config{Threads: 1})
	mem, ok := s.(MemoryReporter)
	if !ok {
		t.Fatal("facade set does not report memory")
	}
	s.Register(0)
	base := mem.LiveNodes()
	s.Insert(0, 5)
	if mem.LiveNodes() != base+1 {
		t.Fatal("insert not visible in LiveNodes")
	}
	s.Remove(0, 5)
	if mem.LiveNodes() != base {
		t.Fatal("remove did not reclaim immediately")
	}
	if mem.DeferredNodes() != 0 {
		t.Fatal("precise variant reported deferred nodes")
	}
}

func TestFacadeConcurrent(t *testing.T) {
	const threads = 4
	for name, mk := range constructors() {
		t.Run(name, func(t *testing.T) {
			s := mk(Config{Threads: threads, Reservation: RRExclusive, Window: 4})
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					s.Register(tid)
					for i := 0; i < 2000; i++ {
						k := uint64(i%64) + 1
						s.Insert(tid, k)
						s.Lookup(tid, k)
						s.Remove(tid, k)
					}
					s.Finish(tid)
				}(w)
			}
			wg.Wait()
			snap := s.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i-1] >= snap[i] {
					t.Fatal("snapshot not sorted")
				}
			}
		})
	}
}

func TestReservationNames(t *testing.T) {
	want := map[Reservation]string{
		RRVersioned:    "RR-V",
		RRExclusive:    "RR-XO",
		RRSharedOwner:  "RR-SO",
		RRFullyAssoc:   "RR-FA",
		RRDirectMapped: "RR-DM",
		RRSetAssoc:     "RR-SA",
	}
	for r, name := range want {
		if r.String() != name {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), name)
		}
	}
}
