// Command figtable renders benchfig TSV output as markdown tables, one per
// (figure, panel): variants as rows, thread counts as columns, throughput
// in Mops/s. EXPERIMENTS.md's recorded-results sections are generated with
// it:
//
//	benchfig -fig 2 > fig2.tsv
//	figtable fig2.tsv
//	figtable -metric aborts fig2.tsv   # aborts/op instead of throughput
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type rowKey struct {
	figure, panel, variant string
}

type table struct {
	figure, panel string
	variants      []string // insertion order
	threads       []int
	cells         map[string]map[int]string
}

func main() {
	metric := flag.String("metric", "mops", "column to tabulate: mops, aborts, serial, deferred, read, valid, wlock, cap, delay, rp50, rp99, rmax")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "figtable:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	col := map[string]int{
		"mops": 5, "aborts": 7, "serial": 8, "deferred": 9,
		"read": 10, "valid": 11, "wlock": 12, "cap": 13,
		"delay": 14, "rp50": 15, "rp99": 16, "rmax": 17,
	}[*metric]
	if col == 0 {
		fmt.Fprintf(os.Stderr, "figtable: unknown metric %q\n", *metric)
		os.Exit(2)
	}

	var order []string
	tables := map[string]*table{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "figure\t") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) <= col {
			continue
		}
		th, err := strconv.Atoi(f[3])
		if err != nil {
			continue
		}
		key := f[0] + "|" + f[1]
		t, ok := tables[key]
		if !ok {
			t = &table{figure: f[0], panel: f[1], cells: map[string]map[int]string{}}
			tables[key] = t
			order = append(order, key)
		}
		if t.cells[f[2]] == nil {
			t.cells[f[2]] = map[int]string{}
			t.variants = append(t.variants, f[2])
		}
		t.cells[f[2]][th] = f[col]
		found := false
		for _, have := range t.threads {
			if have == th {
				found = true
				break
			}
		}
		if !found {
			t.threads = append(t.threads, th)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "figtable:", err)
		os.Exit(1)
	}

	label := map[string]string{
		"mops": "Mops/s", "aborts": "aborts/op", "serial": "serial/op", "deferred": "peak deferred",
		"read": "read-conflict aborts/op", "valid": "validation aborts/op",
		"wlock": "write-lock aborts/op", "cap": "capacity aborts/op",
		"delay": "mean reclamation delay (ops)", "rp50": "p50 reclamation delay (ops)",
		"rp99": "p99 reclamation delay (ops)", "rmax": "max reclamation delay (ops)",
	}[*metric]
	for _, key := range order {
		t := tables[key]
		sort.Ints(t.threads)
		fmt.Printf("### %s — %s (%s)\n\n", t.figure, t.panel, label)
		fmt.Print("| variant |")
		for _, th := range t.threads {
			fmt.Printf(" %dT |", th)
		}
		fmt.Print("\n|---|")
		for range t.threads {
			fmt.Print("---|")
		}
		fmt.Println()
		for _, v := range t.variants {
			fmt.Printf("| %s |", v)
			for _, th := range t.threads {
				cell := t.cells[v][th]
				if cell == "" {
					cell = "—"
				}
				fmt.Printf(" %s |", cell)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
