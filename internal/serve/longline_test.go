package serve_test

import (
	"strings"
	"testing"
)

// Request lines longer than the server's 4 KiB reader buffer must parse
// identically through the scanner's grow-and-retry path. ParseUint
// accepts leading zeros, so an oversized line can still be a VALID
// request — the padding below keeps the key the same while forcing the
// line across several buffer refills.
const longPad = 5000 // zeros; line length > 4<<10 reader buffer

func TestLongLineValidRequest(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	padded := "SET " + strings.Repeat("0", longPad) + "42"
	got := cl.roundTrip(t, padded, "GET 42", "DEL 42")
	for i, want := range []string{"1", "1", "1"} {
		if got[i] != want {
			t.Fatalf("reply %d = %q, want %q (replies %v)", i, got[i], want, got)
		}
	}
}

func TestLongLineGarbage(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	garbage := "GET " + strings.Repeat("x", longPad)
	got := cl.roundTrip(t, garbage, "SET 7", "GET 7")
	if !strings.HasPrefix(got[0], `ERR bad key "xxx`) {
		t.Fatalf("garbage reply = %.40q, want ERR bad key", got[0])
	}
	// The connection survives an oversized garbage line.
	if got[1] != "1" || got[2] != "1" {
		t.Fatalf("post-garbage replies = %v, want [_, 1, 1]", got)
	}
}

// TestLongLineMultiBody drives an oversized-but-valid line through the
// MULTI body reader (a different scan loop than the top-level dispatch)
// and an oversized garbage body line through the drain path.
func TestLongLineMultiBody(t *testing.T) {
	_, _, addr := startServer(t, 2)
	cl := dialClient(t, addr)
	pad := strings.Repeat("0", longPad)
	cl.send(t, "MULTI 3", "SET "+pad+"9", "GET "+pad+"9", "DEL 9")
	for i, want := range []string{"1", "1", "1"} {
		if got := cl.readLine(t); got != want {
			t.Fatalf("multi reply %d = %q, want %q", i, got, want)
		}
	}
	// Garbage body line: single ERR, body drained, connection intact.
	cl.send(t, "MULTI 2", "GET "+strings.Repeat("y", longPad), "GET 1")
	if got := cl.readLine(t); !strings.HasPrefix(got, `ERR multi: op 0: bad key "yyy`) {
		t.Fatalf("multi garbage reply = %.48q", got)
	}
	if got := cl.roundTrip(t, "LEN"); got[0] != "0" {
		t.Fatalf("post-multi LEN = %q, want 0", got[0])
	}
}
