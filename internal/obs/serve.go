package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Registry is a mutable set of Domains for the HTTP export surface.
// Drivers that build structures on the fly (cmd/torture's sweep,
// cmd/rrstress's rounds) register each instance's domain for the duration
// of its run.
type Registry struct {
	mu      sync.Mutex
	domains map[*Domain]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{domains: make(map[*Domain]struct{})}
}

// Register adds d (nil-safe no-op).
func (r *Registry) Register(d *Domain) {
	if d == nil {
		return
	}
	r.mu.Lock()
	r.domains[d] = struct{}{}
	r.mu.Unlock()
}

// Unregister removes d.
func (r *Registry) Unregister(d *Domain) {
	if d == nil {
		return
	}
	r.mu.Lock()
	delete(r.domains, d)
	r.mu.Unlock()
}

// Snapshots returns every registered domain's snapshot, name-ordered,
// plus the synthetic "runtime-gc" panel (see gc.go) — every export
// surface built on Snapshots gets the GC telemetry for free.
func (r *Registry) Snapshots() []DomainSnapshot {
	r.mu.Lock()
	ds := make([]*Domain, 0, len(r.domains))
	for d := range r.domains {
		ds = append(ds, d)
	}
	r.mu.Unlock()
	out := make([]DomainSnapshot, 0, len(ds)+1)
	for _, d := range ds {
		out = append(out, d.Snapshot())
	}
	out = append(out, GCSnapshot())
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// promName sanitizes a label into a Prometheus metric-name segment.
func promName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders every registered domain in the Prometheus text
// exposition format (hand-written over the stdlib: no client library).
func (r *Registry) WriteProm(w *strings.Builder) {
	for _, s := range r.Snapshots() {
		dom := promName(s.Name)
		for _, h := range s.Histograms {
			m := fmt.Sprintf("hohtx_%s_%s", dom, promName(h.Name))
			fmt.Fprintf(w, "# TYPE %s histogram\n", m)
			var cum uint64
			for b, c := range h.Buckets {
				cum += c
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m, BucketUpper(b), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
			fmt.Fprintf(w, "%s_sum %d\n", m, h.Sum)
			fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
		}
		for _, g := range s.Gauges {
			m := fmt.Sprintf("hohtx_%s_%s", dom, promName(g.Name))
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, g.Value)
		}
		for _, e := range s.Aborts {
			m := fmt.Sprintf("hohtx_%s_aborted_by_total", dom)
			fmt.Fprintf(w, "%s{victim=\"%d\",owner=\"%d\"} %d\n", m, e.Victim, e.Owner, e.Count)
		}
	}
}

// sortedDomains returns the registered domains, name-ordered.
func (r *Registry) sortedDomains() []*Domain {
	r.mu.Lock()
	ds := make([]*Domain, 0, len(r.domains))
	for d := range r.domains {
		ds = append(ds, d)
	}
	r.mu.Unlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].name < ds[j].name })
	return ds
}

// SlowlogDump is one domain's /slowlog JSON element.
type SlowlogDump struct {
	Domain   string      `json:"domain"`
	WindowMs int64       `json:"window_ms"`
	Cap      int         `json:"cap"`
	Entries  []SlowEntry `json:"entries"`
}

// SlowlogDumps collects every registered domain's attached slowlog (n
// bounds entries per domain; ≤ 0 = all retained).
func (r *Registry) SlowlogDumps(n int) []SlowlogDump {
	out := []SlowlogDump{}
	for _, d := range r.sortedDomains() {
		sl := d.SlowlogOf()
		if sl == nil {
			continue
		}
		entries := sl.Entries(n)
		if entries == nil {
			entries = []SlowEntry{}
		}
		out = append(out, SlowlogDump{
			Domain:   d.name,
			WindowMs: sl.Window().Milliseconds(),
			Cap:      sl.Cap(),
			Entries:  entries,
		})
	}
	return out
}

// HotKeysDump is one domain's /hotkeys JSON element: each shard's
// sketches plus the cross-shard rollup.
type HotKeysDump struct {
	Domain string     `json:"domain"`
	Shards []HotShard `json:"shards"`
	Rollup HotShard   `json:"rollup"`
}

// HotKeysDumps collects every registered domain's attached sketches.
func (r *Registry) HotKeysDumps() []HotKeysDump {
	out := []HotKeysDump{}
	for _, d := range r.sortedDomains() {
		hot := d.HotKeysOf()
		if len(hot) == 0 {
			continue
		}
		dump := HotKeysDump{Domain: d.name, Rollup: RollupHot(hot)}
		for i, h := range hot {
			if h != nil {
				dump.Shards = append(dump.Shards, h.Snapshot(i))
			}
		}
		out = append(out, dump)
	}
	return out
}

// Handler returns the registry's HTTP mux: /metrics (Prometheus text),
// /snapshot (the DomainSnapshot list as JSON), /flight (recorder dumps),
// /slowlog and /hotkeys (the request-forensics surfaces, JSON) and the
// net/http/pprof endpoints under /debug/pprof/.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteProm(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshots())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		for _, d := range r.sortedDomains() {
			d.DumpFlight(w, 200)
		}
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if v := req.URL.Query().Get("n"); v != "" {
			fmt.Sscanf(v, "%d", &n)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.SlowlogDumps(n))
	})
	mux.HandleFunc("/hotkeys", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.HotKeysDumps())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics/pprof endpoint on addr (e.g. "127.0.0.1:6070";
// port 0 picks a free one) and returns the bound address. The server runs
// until the process exits; drivers treat it as a debugging tap, not a
// managed component.
func Serve(addr string, r *Registry) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
