package list

import (
	"hohtx/internal/arena"
	"hohtx/internal/stm"
)

// Reclamation-safety hooks: version retirement (every mode) and the
// guard-mode use-after-free sanitizer.
//
// Every Free first retires the node's cell versions (retireNode, installed
// unconditionally via arena.SetRetire): a transaction that read its way to
// the node before the unlinking commit's write-back cannot then take a
// fresh read of the dead cells — the lifted versions force a snapshot
// extension, which fails on the rewritten link and aborts the attempt.
// Real HTM gets this for free from hardware conflict detection; without
// the retire step a read-only window (which never revalidates at commit)
// could assemble a zombie snapshot from a recycled node. The torture
// harness's sanitizer is what caught that gap, on singly/TMHP under a
// loaded scheduler.
//
// With Config.Guard additionally set, freed nodes' value words are
// overwritten with arena.PoisonWord before the slot can be reallocated,
// and every transactional load on the traversal paths goes through the
// wrappers below. After retirement, a doomed (pre-free snapshot) reader
// cannot validate a load of the sentinel at all, so any observed poison
// read comes from a transaction whose snapshot postdates the free — a
// handle used after its node was reclaimed. Reporting is still
// commit-gated: the wrappers register an OnCommit hook, and since commit
// hooks are discarded on abort, ReportUAF fires precisely for attempts
// that dereferenced a dead handle and then passed validation. That is the
// checkable meaning of "precise reclamation": no committed transaction
// ever observes freed memory.

// retireNode lifts every cell version of a freed node to the fence; see
// stm.Word.Retire. Installed for every mode, not just guard runs.
func retireNode(n *node, ver uint64) {
	n.key.Retire(ver)
	n.next.Retire(ver)
	n.prev.Retire(ver)
	n.dead.Retire(ver)
	n.rc.Retire(ver)
}

// poisonNode overwrites every value word of a freed node with the poison
// sentinel. Stores are atomic (stm.Word.Poison), so racing doomed readers
// stay race-detector clean.
func poisonNode(n *node) {
	n.key.Poison(arena.PoisonWord)
	n.next.Poison(arena.PoisonWord)
	n.prev.Poison(arena.PoisonWord)
	n.dead.Poison(arena.PoisonWord)
	n.rc.Poison(arena.PoisonWord)
}

// notePoison records a poison read on h and arms commit-gated violation
// reporting for the current attempt.
func (l *List) notePoison(tx *stm.Tx, tid int, h arena.Handle) {
	l.ar.NotePoisonRead(h)
	tx.OnCommit(func() { l.ar.ReportUAF(tid, h) })
}

// loadWord transactionally loads a value word of the node named by h,
// checking for the poison sentinel in guard mode.
func (l *List) loadWord(tx *stm.Tx, tid int, h arena.Handle, w *stm.Word) uint64 {
	v := w.Load(tx)
	if l.guard && v == arena.PoisonWord {
		l.notePoison(tx, tid, h)
	}
	return v
}

// loadLink is loadWord for handle-bearing cells. The sentinel is defused
// to Nil so that a benign doomed reader stops traversing instead of
// panicking in arena.At (the sentinel carries the reserved user bits);
// the attempt still aborts at validation, and a committing attempt still
// reports.
func (l *List) loadLink(tx *stm.Tx, tid int, h arena.Handle, w *stm.Word) arena.Handle {
	v := w.Load(tx)
	if l.guard && v == arena.PoisonWord {
		l.notePoison(tx, tid, h)
		return arena.Nil
	}
	return arena.Handle(v)
}

// GuardStats exposes the arena sanitizer counters (zero when guard is off).
func (l *List) GuardStats() arena.GuardStats { return l.ar.GuardStats() }
