package tree

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Batch execution: Apply runs the whole op slice inside ONE transaction.
// Each op performs a full, unbounded descent from the root — the window
// machinery exists to split transactions, and a batch is the opposite
// trade — so no holds or resumptions are involved; the single-op removal
// logic (including the internal tree's successor-path revokes) is reused
// verbatim, which keeps precise reclamation intact for batches. Oversized
// batches overflow the transaction capacity and fall back to serial mode;
// stm.Stats.Batch records that per batch-size bucket.

// Apply implements sets.Set for the internal tree.
func (t *Internal) Apply(tid int, ops []sets.Op) []sets.Result {
	out := make([]sets.Result, len(ops))
	if len(ops) == 0 {
		return out
	}
	t.threads[tid].ops += uint64(len(ops))
	t.rt.AtomicBatchT(tid, len(ops), func(tx *stm.Tx) {
		for i, op := range ops {
			out[i] = t.applyOneInTx(tx, tid, op)
		}
	})
	return out
}

// applyOneInTx is one full descent inside the batch transaction. The root
// sentinel's key is +∞, so a match always has a known parent.
func (t *Internal) applyOneInTx(tx *stm.Tx, tid int, op sets.Op) bool {
	if op.Kind == sets.OpInsert && op.Key > MaxKey {
		panic("tree: key out of range")
	}
	prevH, currH := arena.Nil, t.root
	dir := 0
	for {
		if currH.IsNil() {
			if op.Kind == sets.OpInsert {
				nh := t.allocNode(tx, tid, op.Key, arena.Nil, arena.Nil)
				child(t.ar.At(prevH), dir).Store(tx, uint64(nh))
				return true
			}
			return false
		}
		n := t.ar.At(currH)
		ck := t.loadWord(tx, tid, currH, &n.key)
		if ck == op.Key {
			switch op.Kind {
			case sets.OpLookup:
				return true
			case sets.OpInsert:
				return false
			default:
				t.removeFound(tx, tid, prevH, currH, dir)
				return true
			}
		}
		prevH = currH
		if op.Key < ck {
			currH = t.loadLink(tx, tid, currH, &n.left)
			dir = 0
		} else {
			currH = t.loadLink(tx, tid, currH, &n.right)
			dir = 1
		}
	}
}

// Apply implements sets.Set for the external tree.
func (t *External) Apply(tid int, ops []sets.Op) []sets.Result {
	out := make([]sets.Result, len(ops))
	if len(ops) == 0 {
		return out
	}
	t.threads[tid].ops += uint64(len(ops))
	t.rt.AtomicBatchT(tid, len(ops), func(tx *stm.Tx) {
		for i, op := range ops {
			out[i] = t.applyOneInTx(tx, tid, op)
		}
	})
	return out
}

// applyOneInTx descends from the root to the leaf covering op.Key. A full
// descent always reaches real leaves through a parent router and (for real
// keys) a grandparent, so the depth restarts of the windowed engine cannot
// arise; a poisoned link (guard mode, doomed snapshot) restarts the whole
// batch instead.
func (t *External) applyOneInTx(tx *stm.Tx, tid int, op sets.Op) bool {
	if op.Kind == sets.OpInsert && op.Key > MaxKey {
		panic("tree: key out of range")
	}
	gH, pH := arena.Nil, arena.Nil
	pDir, cDir := 0, 0
	currH := t.root
	for {
		n := t.ar.At(currH)
		if t.loadLink(tx, tid, currH, &n.left).IsNil() {
			leafKey := t.loadWord(tx, tid, currH, &n.key)
			switch op.Kind {
			case sets.OpLookup:
				return leafKey == op.Key
			case sets.OpInsert:
				if leafKey == op.Key {
					return false
				}
				newLeaf := t.allocNode(tx, tid, op.Key, arena.Nil, arena.Nil)
				var router arena.Handle
				if op.Key < leafKey {
					router = t.allocNode(tx, tid, leafKey, newLeaf, currH)
				} else {
					router = t.allocNode(tx, tid, op.Key, currH, newLeaf)
				}
				child(t.ar.At(pH), cDir).Store(tx, uint64(router))
				return true
			default:
				if leafKey != op.Key {
					return false
				}
				sibling := uint64(t.loadLink(tx, tid, pH, child(t.ar.At(pH), 1-cDir)))
				child(t.ar.At(gH), pDir).Store(tx, sibling)
				t.reclaimNode(tx, tid, pH)
				t.reclaimNode(tx, tid, currH)
				return true
			}
		}
		gH, pDir = pH, cDir
		pH = currH
		if op.Key < t.loadWord(tx, tid, currH, &n.key) {
			currH = t.loadLink(tx, tid, currH, &n.left)
			cDir = 0
		} else {
			currH = t.loadLink(tx, tid, currH, &n.right)
			cDir = 1
		}
		if currH.IsNil() {
			// Routers never have Nil children; only a poisoned link
			// defuses to Nil. The attempt is doomed — abort and re-run.
			tx.Restart()
		}
	}
}
