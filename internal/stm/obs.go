package stm

import (
	"time"

	"hohtx/internal/obs"
)

// Observability hooks. The runtime's aggregate counters (stats.go) answer
// "how many"; the obs probe answers "how long" and "who": commit latency
// and backoff histograms, a flight recorder of sampled transaction
// lifecycles, and a who-aborted-whom attribution table keyed by the
// conflicting cell's version word.
//
// The sampling decision is made once per Atomic call, not per event, so
// each sampled transaction contributes a complete begin→(abort|serial)*→
// commit trace to the recorder. tx.slotHash doubles as the sampling and
// shard hint: it is fixed per pooled Tx and well distributed (Fibonacci
// hashing), so sampled transactions spread across histogram shards without
// another random draw — and, unlike drawing from tx.rng, sampling does not
// perturb the backoff-jitter sequence of unsampled runs.

// SetObserver attaches an obs probe to the runtime (nil detaches). Not
// synchronized with in-flight transactions: wire it before the runtime is
// shared, as the data structure constructors do.
func (rt *Runtime) SetObserver(p *obs.TxProbe) { rt.obs = p }

// Observer returns the attached probe (nil when observability is off).
func (rt *Runtime) Observer() *obs.TxProbe { return rt.obs }

// noteCommit records a sampled transaction's whole-call latency, claims
// the written cells in the attribution table and logs the commit.
func (tx *Tx) noteCommit(p *obs.TxProbe, t0 time.Time) {
	p.CommitNs.RecordAt(tx.slotHash, uint64(time.Since(t0)))
	tid := int(tx.tid)
	for i := range tx.ws {
		p.Attr.NoteWrite(tx.ws[i].m, tid)
	}
	p.Rec.Emit(tid, obs.EvCommit, 0, 0, uint64(len(tx.ws)))
}

// noteAbort attributes a sampled abort to the last sampled writer of the
// conflicting cell (when one was captured) and logs it.
func (tx *Tx) noteAbort(p *obs.TxProbe) {
	tid := int(tx.tid)
	owner := -1
	var ref uint64
	if tx.conflict != nil {
		owner = p.Attr.Owner(tx.conflict)
		ref = obs.CellRef(tx.conflict)
	}
	p.Attr.NoteAbort(tid, owner)
	p.Rec.Emit(tid, obs.EvAbort, uint8(tx.cause), ref, uint64(int64(owner)))
}
