package bench

import (
	"strconv"
	"strings"

	"hohtx/internal/obs"
)

// Cell is one measured point in a BENCH_<n>.json snapshot. Two producers
// share the shape so trend tooling can diff any pair of snapshots: the
// in-process suite (cmd/benchjson) fills the transactional fields, and
// the network load generator (cmd/hohload against cmd/hohserver) fills
// the server-mode fields — a server cell's Threads is the worker-slot
// count and its concurrency lives in Conns/Depth.
type Cell struct {
	Family    string  `json:"family"`
	Variant   string  `json:"variant"`
	Clock     string  `json:"clock,omitempty"`
	Threads   int     `json:"threads"`
	Window    int     `json:"window,omitempty"`
	Mops      float64 `json:"mops"`
	RelStddev float64 `json:"rel_stddev,omitempty"`

	AbortsPerOp float64 `json:"aborts_per_op,omitempty"`
	SerialPerOp float64 `json:"serial_per_op,omitempty"`
	Aborts      struct {
		ReadConflict float64 `json:"read_conflict"`
		Validation   float64 `json:"validation"`
		WriteLock    float64 `json:"write_lock"`
		Capacity     float64 `json:"capacity"`
	} `json:"aborts,omitempty"`

	ClockCASPerOp   float64 `json:"clock_cas_per_op,omitempty"`
	BiasRevocations uint64  `json:"bias_revocations,omitempty"`
	PeakDeferred    uint64  `json:"peak_deferred,omitempty"`

	// Sampled observability percentiles (1 in 2^BenchSampleShift
	// transactions traced): commit latency, allocator free→reuse distance,
	// and — for the deferred schemes — retire→free reclamation delay.
	CommitP50Ns   uint64 `json:"commit_p50_ns,omitempty"`
	CommitP99Ns   uint64 `json:"commit_p99_ns,omitempty"`
	ReuseP50Ops   uint64 `json:"reuse_p50_ops,omitempty"`
	ReuseP99Ops   uint64 `json:"reuse_p99_ops,omitempty"`
	ReclaimP50Ops uint64 `json:"reclaim_p50_ops,omitempty"`
	ReclaimP99Ops uint64 `json:"reclaim_p99_ops,omitempty"`
	ReclaimMaxOps uint64 `json:"reclaim_max_ops,omitempty"`

	// Server-mode fields (cmd/hohload): client-observed request latency
	// under Conns pipelined connections of the given Depth and read
	// ratio, plus the live-node envelope sampled over the run — flat
	// (LiveMax−LiveMin bounded by the working set, no growth) is the
	// precise-reclamation property surviving a network front end.
	// Shards is the server's shard count (0/1 = unsharded); a cell's
	// Threads is then the per-shard worker-slot count. In open-loop runs
	// OfferedRps is the -rate target and AchievedRps what the generator
	// actually sustained; latency percentiles are then measured from each
	// request's intended send time (coordinated-omission-safe), not from
	// the moment it reached the socket.
	Conns       int     `json:"conns,omitempty"`
	Depth       int     `json:"depth,omitempty"`
	ReadPct     int     `json:"read_pct,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	OfferedRps  float64 `json:"offered_rps,omitempty"`
	AchievedRps float64 `json:"achieved_rps,omitempty"`
	OpP50Ns     uint64  `json:"op_p50_ns,omitempty"`
	OpP99Ns     uint64  `json:"op_p99_ns,omitempty"`
	LiveMin     uint64  `json:"live_min,omitempty"`
	LiveMax     uint64  `json:"live_max,omitempty"`
	Deferred    uint64  `json:"deferred_end,omitempty"`

	// Batch-mode fields (cmd/hohload -batch): ops per MULTI frame (0/1 =
	// plain single-key verbs), whole-batch client-observed latency, and —
	// from the server's INFO deltas — serial fallbacks and aborts per op
	// over the run, the measured face of the capacity cliff. Mops and the
	// per-op latency percentiles above stay per-operation either way, so
	// batch sizes compare directly; in open-loop runs per-op latency is
	// measured against each op's own intended send time (the batch's
	// intended send spacing divided across its ops), keeping the numbers
	// coordinated-omission-safe at every batch size.
	Batch      int    `json:"batch,omitempty"`
	BatchP50Ns uint64 `json:"batch_p50_ns,omitempty"`
	BatchP99Ns uint64 `json:"batch_p99_ns,omitempty"`

	// Scan-mode fields (cmd/hohload -scanfrac): the percentage of the
	// request stream that ran as ASCEND range scans of up to ScanLen keys,
	// and the client-observed whole-scan latency (intended send time to
	// the END terminator — coordinated-omission-safe in both loop modes).
	// Zero values mean a point-op-only run.
	ScanPct   int    `json:"scan_pct,omitempty"`
	ScanLen   int    `json:"scan_len,omitempty"`
	ScanP50Ns uint64 `json:"scan_p50_ns,omitempty"`
	ScanP99Ns uint64 `json:"scan_p99_ns,omitempty"`

	// Forensics fields (cmd/hohload -obsaddr, or auto-discovered from
	// INFO obs=): a summary of the server's slowlog and hot-key sketches
	// at the end of the run — how many slow entries the window held, the
	// worst entry's total and dominant phase, and the key topping the
	// abort-attribution sketch. Outcome fields only: none participate in
	// the diff join key, so cells recorded before these columns existed
	// still compare against cells recorded after.
	SlowCount      int    `json:"slow_count,omitempty"`
	SlowWorstNs    uint64 `json:"slow_worst_ns,omitempty"`
	SlowWorstPhase string `json:"slow_worst_phase,omitempty"`
	HotKey         uint64 `json:"hot_key,omitempty"`
	HotKeyAborts   uint64 `json:"hot_key_aborts,omitempty"`

	// GC-pressure fields (DESIGN.md §15): the server process's heap
	// allocations per served op and completed GC cycles over the measured
	// run, deltas of the runtime-gc panel sampled from /snapshot before
	// and after. The wire codec pins the steady state at zero allocations
	// per op in CI; these columns put the same budget in every recorded
	// cell, where a regression shows up as GC cycles smeared over the
	// latency histograms. Outcome fields only — never join keys.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	GCCycles    uint64  `json:"gc_cycles,omitempty"`

	// Obs is the final trial's full domain snapshot (log₂-bucket
	// histograms, gauges, abort-attribution edges); nil when detached.
	Obs *obs.DomainSnapshot `json:"obs,omitempty"`
}

// Summary is a BENCH_<n>.json file's top-level shape.
type Summary struct {
	Bench      int    `json:"bench"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workload   string `json:"workload"`
	Ops        int    `json:"ops_per_thread"`
	Trials     int    `json:"trials"`
	Cells      []Cell `json:"cells"`
}

// BenchNumber extracts the <n> from a BENCH_<n>.json path, defaulting
// to 1.
func BenchNumber(path string) int {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
	if n, err := strconv.Atoi(base); err == nil && n > 0 {
		return n
	}
	return 1
}

// CellFromResult lifts a runner Result into the snapshot schema.
func CellFromResult(family Family, clock string, res Result) Cell {
	c := Cell{
		Family:          string(family),
		Variant:         res.Variant,
		Clock:           clock,
		Threads:         res.Threads,
		Window:          res.Window,
		Mops:            res.MopsPerSec,
		RelStddev:       res.RelStddev,
		AbortsPerOp:     res.AbortsPerOp,
		SerialPerOp:     res.SerialPerOp,
		ClockCASPerOp:   res.ClockCASPerOp,
		BiasRevocations: res.BiasRevocations,
		PeakDeferred:    res.DeferredPeak,
		CommitP50Ns:     res.CommitP50Ns,
		CommitP99Ns:     res.CommitP99Ns,
		ReuseP50Ops:     res.ReuseP50Ops,
		ReuseP99Ops:     res.ReuseP99Ops,
		ReclaimP50Ops:   res.ReclaimP50Ops,
		ReclaimP99Ops:   res.ReclaimP99Ops,
		ReclaimMaxOps:   res.ReclaimMaxOps,
		Obs:             res.Obs,
	}
	c.Aborts.ReadConflict = res.ReadConflictsPerOp
	c.Aborts.Validation = res.ValidationsPerOp
	c.Aborts.WriteLock = res.WriteLocksPerOp
	c.Aborts.Capacity = res.CapacityPerOp
	return c
}
