package list

import (
	"sort"

	"hohtx/internal/arena"
	"hohtx/internal/reclaim"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// HashTable is a concurrent hash set built from bucketed hand-over-hand
// lists. The paper's conclusion names hash tables (with balanced trees) as
// the structures it expects revocable reservations to serve next, "for
// which existing scalable algorithms rely on deferred memory reclamation"
// (§6); this is that construction. Every bucket is an independent sorted
// chain rooted at its own sentinel, but all buckets share one transactional
// runtime, one arena, and one reservation object — a thread operates in one
// bucket at a time, so the single reservation per thread the paper's
// structures need still suffices.
//
// Compared to the plain list, traversals are short (load factor) and
// conflicts only arise within a bucket; the reservation mechanism is
// exercised exactly as in the list (window cuts near the end of long
// buckets, revocation on remove, immediate reclamation).
type HashTable struct {
	l     *List
	heads []arena.Handle
	mask  uint64
}

var _ sets.Set = (*HashTable)(nil)
var _ sets.MemoryReporter = (*HashTable)(nil)

// NewHashTable constructs a hash set with the given bucket count (rounded
// up to a power of two). All Config fields mean what they do for New; REF
// and ER modes are supported too, since buckets are ordinary chains.
func NewHashTable(cfg Config, buckets int) *HashTable {
	if buckets < 1 {
		buckets = 1
	}
	b := 1
	for b < buckets {
		b <<= 1
	}
	l := New(cfg)
	heads := make([]arena.Handle, b)
	heads[0] = l.head
	for i := 1; i < b; i++ {
		// Bucket sentinels are construction-time only (never shared
		// before return), so non-transactional Init is safe.
		h := l.ar.Alloc(0)
		n := l.ar.At(h)
		n.key.Init(0)
		n.next.Init(0)
		n.prev.Init(0)
		n.dead.Init(0)
		n.rc.Init(0)
		heads[i] = h
	}
	return &HashTable{l: l, heads: heads, mask: uint64(b - 1)}
}

// bucketIndex returns the bucket number for a key.
func (h *HashTable) bucketIndex(key uint64) int {
	x := key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & h.mask)
}

// bucket returns the chain root for a key.
func (h *HashTable) bucket(key uint64) arena.Handle {
	return h.heads[h.bucketIndex(key)]
}

// Buckets reports the bucket count.
func (h *HashTable) Buckets() int { return len(h.heads) }

// Name implements sets.Set.
func (h *HashTable) Name() string { return h.l.Name() + "/hash" }

// Register implements sets.Set.
func (h *HashTable) Register(tid int) { h.l.Register(tid) }

// Finish implements sets.Set.
func (h *HashTable) Finish(tid int) { h.l.Finish(tid) }

// Lookup implements sets.Set.
func (h *HashTable) Lookup(tid int, key uint64) bool {
	res, _ := h.l.applyAt(tid, key, h.bucket(key), false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return true },
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
	)
	return res
}

// Insert implements sets.Set.
func (h *HashTable) Insert(tid int, key uint64) bool {
	res, _ := h.l.applyAt(tid, key, h.bucket(key), false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
		func(tx *stm.Tx, prevH, currH arena.Handle) bool {
			nh := h.l.allocNode(tx, tid, key, currH, arena.Nil)
			h.l.ar.At(prevH).next.Store(tx, uint64(nh))
			return true
		},
	)
	return res
}

// Remove implements sets.Set: unlink, revoke, reclaim immediately — the
// bucket chain behaves exactly like Listing 5's list.
func (h *HashTable) Remove(tid int, key uint64) bool {
	res, _ := h.l.applyAt(tid, key, h.bucket(key), false,
		func(tx *stm.Tx, prevH, currH arena.Handle) bool {
			h.l.unlinkAndReclaim(tx, tid, prevH, currH)
			return true
		},
		func(tx *stm.Tx, prevH, currH arena.Handle) bool { return false },
	)
	return res
}

// Snapshot implements sets.Set (quiescence required): the union of all
// buckets, sorted.
func (h *HashTable) Snapshot() []uint64 {
	var out []uint64
	for _, head := range h.heads {
		for n := arena.Handle(h.l.ar.At(head).next.Raw()); !n.IsNil(); {
			nd := h.l.ar.At(n)
			out = append(out, nd.key.Raw())
			n = arena.Handle(nd.next.Raw())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveNodes implements sets.MemoryReporter (includes one sentinel per
// bucket).
func (h *HashTable) LiveNodes() uint64 { return h.l.LiveNodes() }

// DeferredNodes implements sets.MemoryReporter.
func (h *HashTable) DeferredNodes() uint64 { return h.l.DeferredNodes() }

// TxCommits, TxAborts, TxSerial and PeakDeferred delegate to the shared
// runtime for benchmark statistics.
func (h *HashTable) TxCommits() uint64    { return h.l.TxCommits() }
func (h *HashTable) TxAborts() uint64     { return h.l.TxAborts() }
func (h *HashTable) TxSerial() uint64     { return h.l.TxSerial() }
func (h *HashTable) TMStats() stm.Stats   { return h.l.TMStats() }
func (h *HashTable) PeakDeferred() uint64 { return h.l.PeakDeferred() }

// GuardStats exposes the arena sanitizer counters (zero when guard is off).
func (h *HashTable) GuardStats() arena.GuardStats { return h.l.GuardStats() }

// ReclaimStats exposes the deferred-reclamation counters (ModeTMHP).
func (h *HashTable) ReclaimStats() reclaim.Stats { return h.l.ReclaimStats() }

// SetWindow implements the runtime window knob.
func (h *HashTable) SetWindow(w int) { h.l.SetWindow(w) }

// BucketSizes returns each bucket's current length (diagnostics and tests;
// quiescence required).
func (h *HashTable) BucketSizes() []int {
	out := make([]int, len(h.heads))
	for i, head := range h.heads {
		for n := arena.Handle(h.l.ar.At(head).next.Raw()); !n.IsNil(); {
			out[i]++
			n = arena.Handle(h.l.ar.At(n).next.Raw())
		}
	}
	return out
}
