package serve

import (
	"bufio"
	"strconv"
)

// Zero-allocation wire codec. The protocol is newline-framed decimal text
// (see Server), and both sides of it — this server and cmd/hohload — move
// every request and reply through the helpers in this file so the steady
// state costs no heap allocations: lines are scanned into reused buffers,
// keys are parsed straight off those bytes without materializing strings,
// and replies are rendered with strconv.Append* into per-connection
// scratch. The paper's own argument motivates the discipline: its repro
// names GC interference as the central obstacle to measuring *precise*
// reclamation (PAPER.md §1), so the serving layer must not smear Go GC
// cycles over the arena's exact books. testing.AllocsPerRun pins the
// budget at zero in alloc_test.go, and CI runs those pins as a gate.

// LineScanner reads newline-terminated lines from a bufio.Reader into a
// reused buffer. The common case returns a slice of the reader's internal
// buffer (zero copies, zero allocations); lines longer than that buffer
// take the grow-and-retry path through the scanner's own scratch, which
// grows once and is reused for every later long line.
type LineScanner struct {
	br  *bufio.Reader
	buf []byte // overflow scratch; grow-only
}

// NewLineScanner returns a scanner over br.
func NewLineScanner(br *bufio.Reader) *LineScanner {
	return &LineScanner{br: br}
}

// Line returns the next line with every trailing '\r' and '\n' trimmed
// (the strings.TrimRight(line, "\r\n") framing the protocol has always
// used). The returned slice aliases either the reader's internal buffer
// or the scanner's scratch: it is valid only until the next Line call.
// On error the partial line read so far is returned alongside it, so a
// final unterminated request is still servable — callers distinguish a
// clean EOF (len(line) == 0) from a truncated request exactly as they
// would with bufio.ReadString.
func (ls *LineScanner) Line() ([]byte, error) {
	frag, err := ls.br.ReadSlice('\n')
	if err == nil {
		return trimEOL(frag), nil
	}
	ls.buf = ls.buf[:0]
	for {
		ls.buf = append(ls.buf, frag...)
		if err != bufio.ErrBufferFull {
			if len(ls.buf) == 0 {
				return nil, err
			}
			return trimEOL(ls.buf), err
		}
		frag, err = ls.br.ReadSlice('\n')
		if err == nil {
			ls.buf = append(ls.buf, frag...)
			return trimEOL(ls.buf), nil
		}
	}
}

// trimEOL drops every trailing '\r' and '\n'.
func trimEOL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// cutSpace splits at the first space: "SET 42" → ("SET", "42"). A line
// with no space returns (line, nil) — the bytes analogue of strings.Cut.
func cutSpace(b []byte) (verb, rest []byte) {
	for i, c := range b {
		if c == ' ' {
			return b[:i], b[i+1:]
		}
	}
	return b, nil
}

// parseUintBytes is strconv.ParseUint(string(b), 10, 64) without the
// string: digits only (no signs, leading zeros fine), overflow rejected.
func parseUintBytes(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	const cutoff = ^uint64(0)/10 + 1
	var v uint64
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		if v >= cutoff {
			return 0, false
		}
		v = v*10 + uint64(d)
		if v < uint64(d) {
			return 0, false
		}
	}
	return v, true
}

// parseIntBytes is strconv.Atoi without the string: an optional sign,
// then digits. Counts on the wire are small, so the int64 range check is
// only about rejecting garbage consistently with the old parser.
func parseIntBytes(b []byte) (int, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	v, ok := parseUintBytes(b)
	if !ok || v > 1<<62 {
		return 0, false
	}
	if neg {
		return -int(v), true
	}
	return int(v), true
}

// wireErr is a malformed-request diagnosis carried as a value, not an
// error: the old fmt.Errorf path built 2+ heap objects per bad line,
// which let a garbage flood allocate its way past the budget. The code
// selects one of a fixed set of messages; arg (aliasing the request
// line — render before the next read) and key/max feed its formatter.
// The zero value means no error.
type wireErr struct {
	code uint8
	arg  []byte // errBadKey, errBadCount: the offending token
	key  uint64 // errKeyRange: the out-of-range key
}

const (
	wireOK uint8 = iota
	errMissingKey
	errBadKey
	errKeyRange
	errNotKeyOp
)

// appendWireErr renders the diagnosis (message only, no "ERR " prefix —
// MULTI nests these inside its own error line) into dst. The messages
// are byte-for-byte what the fmt.Errorf calls used to produce, so wire
// tests and clients keep matching.
func appendWireErr(dst []byte, we wireErr, maxKey uint64) []byte {
	switch we.code {
	case errMissingKey:
		return append(dst, "missing key"...)
	case errBadKey:
		dst = append(dst, "bad key "...)
		return appendQuoted(dst, we.arg)
	case errKeyRange:
		dst = append(dst, "key "...)
		dst = strconv.AppendUint(dst, we.key, 10)
		dst = append(dst, " out of range [1, "...)
		dst = strconv.AppendUint(dst, maxKey, 10)
		return append(dst, ']')
	case errNotKeyOp:
		return append(dst, "not a key op"...)
	}
	return dst
}

// appendQuoted renders b as a double-quoted Go string the way %q would.
// AppendQuote wants a string; for the short tokens that reach this path
// the conversion stays on the stack (it is a read-only argument), so the
// quoting itself is what bounds the cost.
func appendQuoted(dst, b []byte) []byte {
	return strconv.AppendQuote(dst, string(b))
}
