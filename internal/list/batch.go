package list

import (
	"hohtx/internal/arena"
	"hohtx/internal/sets"
	"hohtx/internal/stm"
)

// Batch execution: Apply runs a whole slice of operations inside ONE
// transaction — one snapshot, one commit — so the batch is atomic and pays
// the clock/commit cost once instead of per key.
//
// The hand-over-hand window machinery is deliberately bypassed: windows
// exist so a transaction can be split and resumed, and a batch is the
// opposite trade (merge many operations into one transaction). The batch
// therefore traverses each chain in ONE unbounded pass: ops are sorted by
// (chain, key, arrival order) and applied against a single advancing
// (prev, curr) cursor, so the read footprint is one pass over the chain
// regardless of batch size. What remains from the single-op paths is the
// reclamation contract: removals still Revoke (other threads' reservations
// on the victim must die) and still free/retire per the list's mode, so
// precise reclamation holds for batches too. A batch whose footprint
// exceeds the transaction capacity aborts with CauseCapacity and re-runs
// in serial mode — that fallback is the capacity cliff the batch-size
// statistics (stm.Stats.Batch) make measurable.

// applyBatch is the shared batch engine. chainOf/chainHead factor out the
// hash table's bucketing (the plain lists are one chain); insertAt and
// removeAt supply the structure-specific link maintenance.
func (l *List) applyBatch(tid int, ops []sets.Op,
	chainOf func(key uint64) int,
	chainHead func(chain int) arena.Handle,
	insertAt func(tx *stm.Tx, tid int, key uint64, prevH, currH arena.Handle) arena.Handle,
	removeAt func(tx *stm.Tx, tid int, prevH, currH arena.Handle),
) []sets.Result {
	if len(ops) == 0 {
		return nil
	}
	ts := &l.threads[tid]
	ts.ops += uint64(len(ops))
	if l.ep != nil {
		// ModeER: the batch is one epoch-protected critical section.
		l.ep.Enter(tid)
		defer l.ep.Exit(tid)
	}
	// Result and visit-order buffers live in per-thread state and are
	// reused across batches (grow-only): the returned slice is valid until
	// the same thread's next Apply, which every caller respects — the
	// serving layer copies per-shard results out before the next shard
	// runs. A fresh pair of slices per batch was measurable GC pressure
	// at wire speed.
	if cap(ts.batchOut) < len(ops) {
		ts.batchOut = make([]sets.Result, len(ops))
		ts.batchOrder = make([]int, len(ops))
	}
	out := ts.batchOut[:len(ops)]
	// Visit order: chain, then key, then arrival order — one monotone
	// cursor pass per chain, with same-key ops applied in program order.
	// Sorted by hand (shellsort) rather than sort.Slice: the latter boxes
	// the slice into an interface and heap-allocates its closure on every
	// batch.
	order := ts.batchOrder[:len(ops)]
	for i := range order {
		order[i] = i
	}
	sortOrder(order, ops, chainOf)
	l.rt.AtomicBatchT(tid, len(ops), func(tx *stm.Tx) {
		pos := 0
		for pos < len(order) {
			chain := chainOf(ops[order[pos]].Key)
			prevH := chainHead(chain)
			currH := l.loadLink(tx, tid, prevH, &l.ar.At(prevH).next)
			var ck uint64
			ckKnown := false
			for pos < len(order) && chainOf(ops[order[pos]].Key) == chain {
				key := ops[order[pos]].Key
				for !currH.IsNil() {
					if !ckKnown {
						ck = l.loadWord(tx, tid, currH, &l.ar.At(currH).key)
						ckKnown = true
					}
					if ck >= key {
						break
					}
					prevH = currH
					currH = l.loadLink(tx, tid, currH, &l.ar.At(currH).next)
					ckKnown = false
				}
				present := !currH.IsNil() && ck == key
				for pos < len(order) && ops[order[pos]].Key == key {
					i := order[pos]
					switch ops[i].Kind {
					case sets.OpInsert:
						if present {
							out[i] = false
						} else {
							currH = insertAt(tx, tid, key, prevH, currH)
							ck, ckKnown = key, true
							present = true
							out[i] = true
						}
					case sets.OpRemove:
						if !present {
							out[i] = false
						} else {
							nxt := l.loadLink(tx, tid, currH, &l.ar.At(currH).next)
							removeAt(tx, tid, prevH, currH)
							currH = nxt
							ckKnown = false
							present = false
							out[i] = true
						}
					default:
						out[i] = present
					}
					pos++
				}
			}
		}
	})
	return out
}

// insertSingly links a new node after prevH (no back link); it is the
// batch form of the singly linked Insert's not-found callback.
func (l *List) insertSingly(tx *stm.Tx, tid int, key uint64, prevH, currH arena.Handle) arena.Handle {
	nh := l.allocNode(tx, tid, key, currH, arena.Nil)
	l.ar.At(prevH).next.Store(tx, uint64(nh))
	return nh
}

// Apply implements sets.Set: one transaction, one sorted pass.
func (l *List) Apply(tid int, ops []sets.Op) []sets.Result {
	return l.applyBatch(tid, ops,
		func(uint64) int { return 0 },
		func(int) arena.Handle { return l.head },
		l.insertSingly,
		l.unlinkAndReclaim,
	)
}

// Apply implements sets.Set for the doubly linked list. The two-phase
// reserve-then-unlink removal of the single-op path collapses back into
// the enclosing transaction (as in its ModeHTM path): traversal and unlink
// commit together, so no reservation phase is needed; ModeRR still revokes
// the victim for other threads' reservations.
func (d *DList) Apply(tid int, ops []sets.Op) []sets.Result {
	return d.applyBatch(tid, ops,
		func(uint64) int { return 0 },
		func(int) arena.Handle { return d.head },
		d.insertDoubly,
		d.removeDoublyInTx,
	)
}

func (d *DList) insertDoubly(tx *stm.Tx, tid int, key uint64, prevH, currH arena.Handle) arena.Handle {
	nh := d.allocNode(tx, tid, key, currH, prevH)
	d.ar.At(prevH).next.Store(tx, uint64(nh))
	if !currH.IsNil() {
		d.ar.At(currH).prev.Store(tx, uint64(nh))
	}
	return nh
}

func (d *DList) removeDoublyInTx(tx *stm.Tx, tid int, prevH, currH arena.Handle) {
	d.unlinkDoubly(tx, tid, currH)
	switch d.mode {
	case ModeRR:
		d.rr.Revoke(tx, uint64(currH))
		tx.OnCommitCall(d.freeHook, uint64(int64(tid)), uint64(currH), 0)
	case ModeHTM:
		tx.OnCommitCall(d.freeHook, uint64(int64(tid)), uint64(currH), 0)
	case ModeTMHP, ModeTMHE, ModeTMVBR:
		d.ar.At(currH).dead.Store(tx, 1)
		tx.OnCommitCall(d.retireHook, uint64(int64(tid)), uint64(currH), d.threads[tid].ops)
	}
}

// Apply implements sets.Set for the hash table: ops are grouped by bucket
// and each bucket gets one sorted cursor pass, all inside one transaction.
func (h *HashTable) Apply(tid int, ops []sets.Op) []sets.Result {
	return h.l.applyBatch(tid, ops,
		h.bucketIndex,
		func(c int) arena.Handle { return h.heads[c] },
		h.l.insertSingly,
		h.l.unlinkAndReclaim,
	)
}

// sortOrder sorts the visit order by (chain, key, arrival index) with a
// gapped insertion sort (Ciura's shellsort gaps). It exists instead of
// sort.Slice because this runs once per batch on the serving hot path and
// must not allocate; batches are small (the server caps them at a few
// thousand ops), where shellsort is competitive anyway.
func sortOrder(order []int, ops []sets.Op, chainOf func(key uint64) int) {
	for _, gap := range shellGaps {
		if gap >= len(order) {
			continue
		}
		for i := gap; i < len(order); i++ {
			v := order[i]
			cv := chainOf(ops[v].Key)
			j := i
			for j >= gap {
				u := order[j-gap]
				cu := chainOf(ops[u].Key)
				if cu < cv || (cu == cv && (ops[u].Key < ops[v].Key || (ops[u].Key == ops[v].Key && u < v))) {
					break
				}
				order[j] = u
				j -= gap
			}
			order[j] = v
		}
	}
}

var shellGaps = [...]int{8929, 3905, 2161, 929, 505, 209, 109, 41, 19, 5, 1}
