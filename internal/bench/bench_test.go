package bench

import (
	"bytes"
	"strings"
	"testing"

	"hohtx/internal/sets"
)

func tinyWorkload() Workload {
	return Workload{KeyBits: 6, LookupPct: 33, OpsPerThread: 2000}
}

func TestPrefillFillsHalf(t *testing.T) {
	s, err := Build(FamilySingly, VariantSpec{Name: "RR-XO"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := tinyWorkload()
	Prefill(s, w, 2, 1)
	if got, want := len(s.Snapshot()), int(w.KeyRange()/2); got != want {
		t.Fatalf("prefill size = %d, want %d", got, want)
	}
}

func TestNextOpMix(t *testing.T) {
	w := Workload{KeyBits: 8, LookupPct: 80}
	state := uint64(99)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op, key := nextOp(w, &state)
		if key < 1 || key > w.KeyRange() {
			t.Fatalf("key %d out of range", key)
		}
		counts[op]++
	}
	lookPct := float64(counts[opLookup]) / n * 100
	if lookPct < 78 || lookPct > 82 {
		t.Fatalf("lookup fraction %.1f%%, want ~80%%", lookPct)
	}
	insRemRatio := float64(counts[opInsert]) / float64(counts[opRemove])
	if insRemRatio < 0.9 || insRemRatio > 1.1 {
		t.Fatalf("insert/remove ratio %.2f, want ~1", insRemRatio)
	}
}

func TestRunProducesThroughput(t *testing.T) {
	mk := func(threads int) sets.Set {
		s, err := Build(FamilySingly, VariantSpec{Name: "RR-V", Window: 8}, threads)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	res, err := Run(mk, tinyWorkload(), RunConfig{Threads: 4, Trials: 2, Seed: 5, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MopsPerSec <= 0 {
		t.Fatal("no throughput measured")
	}
	if res.Variant != "RR-V" {
		t.Fatalf("variant = %q", res.Variant)
	}
}

func TestBuildEveryPaperVariant(t *testing.T) {
	cases := map[Family][]string{
		FamilySingly:       append(RRNames(), "HTM", "TMHP", "TMHE", "TMVBR", "REF", "LFLeak", "LFHP"),
		FamilyDoubly:       append(RRNames(), "HTM", "TMHP", "TMHE", "TMVBR"),
		FamilyInternalTree: append(RRNames(), "HTM"),
		FamilyExternalTree: append(RRNames(), "HTM", "TMHP", "TMHE", "TMVBR", "LFLeak"),
		FamilySkipList:     append(RRNames(), "HTM", "TMHE", "TMVBR"),
	}
	for fam, names := range cases {
		for _, name := range names {
			s, err := Build(fam, VariantSpec{Name: name}, 2)
			if err != nil {
				t.Fatalf("Build(%s, %s): %v", fam, name, err)
			}
			s.Register(0)
			if !s.Insert(0, 11) || !s.Lookup(0, 11) || !s.Remove(0, 11) {
				t.Fatalf("%s/%s basic ops failed", fam, name)
			}
			s.Finish(0)
		}
	}
}

func TestBuildRejectsUndefinedCombos(t *testing.T) {
	undefined := []struct {
		f    Family
		name string
	}{
		{FamilyDoubly, "REF"},
		{FamilyDoubly, "LFLeak"},
		{FamilyInternalTree, "TMHP"},
		{FamilyInternalTree, "TMHE"},
		{FamilyInternalTree, "TMVBR"},
		{FamilyInternalTree, "LFLeak"},
		{FamilySingly, "bogus"},
	}
	for _, c := range undefined {
		if _, err := Build(c.f, VariantSpec{Name: c.name}, 1); err == nil {
			t.Errorf("Build(%s, %s) should have failed", c.f, c.name)
		}
	}
}

func TestBestWindowMatchesPaperTuning(t *testing.T) {
	if BestWindow(FamilySingly, 4) != 16 || BestWindow(FamilySingly, 8) != 8 {
		t.Fatal("list windows do not match the paper's tuning (16 up to 4 threads, 8 at 8)")
	}
	if BestWindow(FamilyInternalTree, 1) < BestWindow(FamilyInternalTree, 8) {
		t.Fatal("tree windows should shrink with thread count")
	}
}

// TestFigureSmoke runs a minimal version of every figure driver end to end
// (1 thread count, tiny ops) and sanity-checks the emitted series.
func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke is seconds-long")
	}
	for fig := 2; fig <= 7; fig++ {
		fig := fig
		t.Run(string(rune('0'+fig)), func(t *testing.T) {
			var buf bytes.Buffer
			// Tiny settings: this exercises plumbing, not performance, and
			// must stay fast under the race detector on one core.
			opts := Opts{
				Quick: true, Threads: []int{2}, Trials: 1,
				OpsPerThread: 1500, TreeBits: 10, Out: &buf,
			}
			if err := Figure(fig, opts); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) < 3 {
				t.Fatalf("figure %d produced %d lines", fig, len(lines))
			}
			if !strings.HasPrefix(lines[0], "figure\t") {
				t.Fatal("missing header")
			}
			for _, ln := range lines[1:] {
				if !strings.HasPrefix(ln, "fig") {
					t.Fatalf("bad row: %q", ln)
				}
			}
		})
	}
}

func TestFigureRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure(1, Opts{Out: &buf}); err == nil {
		t.Fatal("figure 1 (an illustration, not data) should be rejected")
	}
	if err := Figure(9, Opts{Out: &buf}); err == nil {
		t.Fatal("figure 9 does not exist")
	}
}
