#!/bin/sh
cd /root/repo/results
for f in 3 4 5 6 7 8; do
  /tmp/benchfig2 -fig $f -ops 12000 -trials 2 -treebits 17 -threads 1,4,8 > fig$f.tsv 2> fig$f.err
  echo "fig$f done $(date +%H:%M:%S)" >> progress.log
done
echo ALLDONE >> progress.log
