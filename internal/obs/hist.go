package obs

import (
	"math/bits"
	"sync/atomic"

	"hohtx/internal/pad"
)

// NumBuckets is the number of log₂ buckets: bucket 0 holds exactly the
// value 0 and bucket i (1 ≤ i ≤ 64) holds values in [2^(i-1), 2^i - 1].
// Every uint64 lands in exactly one bucket.
const NumBuckets = 65

// histShards spreads recording across cache lines, mirroring the
// statShards pattern in internal/stm. Must stay a power of two.
const histShards = 16

// BucketOf returns the bucket index for a value.
func BucketOf(v uint64) int { return bits.Len64(v) }

// BucketLower returns the smallest value in bucket i.
func BucketLower(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// BucketUpper returns the largest value in bucket i (the value quantile
// estimates report, so the estimate errs upward by at most one bucket).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// histShard is one padded slice of the histogram. max is maintained with a
// CAS loop so the true maximum survives concurrent recording.
type histShard struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	_       pad.Line
}

// Histogram is a lock-free fixed-bucket log₂ histogram. Record sites pass
// a per-thread hint so concurrent recorders land on different shards; the
// zero value is NOT ready to use — obtain histograms from Domain.Hist so
// they carry a name and unit for export.
type Histogram struct {
	name   string
	unit   string
	shards [histShards]histShard
}

// NewHistogram creates a standalone histogram (tests; Domain.Hist is the
// normal constructor and registers the histogram for snapshot/export).
func NewHistogram(name, unit string) *Histogram {
	return &Histogram{name: name, unit: unit}
}

// Name returns the histogram's export name.
func (h *Histogram) Name() string { return h.name }

// Record adds v on shard 0. Single-threaded callers only; concurrent
// recorders should use RecordAt with a per-thread hint.
func (h *Histogram) Record(v uint64) { h.RecordAt(0, v) }

// RecordAt adds v to the histogram, using hint (any per-thread value: a
// tid, a slot hash) to pick a shard.
func (h *Histogram) RecordAt(hint uint64, v uint64) {
	sh := &h.shards[hint&(histShards-1)]
	sh.buckets[BucketOf(v)].Add(1)
	sh.count.Add(1)
	sh.sum.Add(v)
	for {
		cur := sh.max.Load()
		if v <= cur || sh.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistSnapshot is a merged point-in-time copy of a histogram. Counts are
// read without mutual exclusion and may lag in-flight recordings.
type HistSnapshot struct {
	Name    string   `json:"name"`
	Unit    string   `json:"unit"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	P50     uint64   `json:"p50"`
	P90     uint64   `json:"p90"`
	P99     uint64   `json:"p99"`
	Buckets []uint64 `json:"buckets"` // trailing zero buckets trimmed
}

// Snapshot merges the shards and precomputes the standard quantiles.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Unit: h.unit, Buckets: make([]uint64, NumBuckets)}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumBuckets; b++ {
			s.Buckets[b] += sh.buckets[b].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	last := 0
	for b := 0; b < NumBuckets; b++ {
		if s.Buckets[b] != 0 {
			last = b + 1
		}
	}
	s.Buckets = s.Buckets[:last]
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the bucket containing the ceil(q·Count)-th smallest
// recorded value. The estimate is exact to within one log₂ bucket; the top
// bucket reports the true recorded maximum instead of its (2^64-1) edge.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	// Clamp q before the float→uint64 conversion: converting a negative
	// or NaN float64 to uint64 is implementation-specific in Go, so an
	// out-of-range q must never reach it. q ≤ 0 (and NaN, which fails
	// every comparison) degrades to the minimum rank; q ≥ 1 to the max.
	var rank uint64
	switch {
	case q > 0 && q < 1:
		rank = uint64(q * float64(s.Count))
	case q >= 1:
		rank = s.Count
	default:
		rank = 1
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	top := -1
	for b := range s.Buckets {
		if s.Buckets[b] != 0 {
			top = b
		}
	}
	var cum uint64
	for b := 0; b <= top; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			if b == top && s.Max != 0 {
				return s.Max
			}
			return BucketUpper(b)
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of recorded values (exact, not
// bucketed: Sum and Count are tracked directly).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds o into s (same bucket layout by construction).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(o.Buckets) > len(s.Buckets) {
		s.Buckets = append(s.Buckets, make([]uint64, len(o.Buckets)-len(s.Buckets))...)
	}
	for b := range o.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}
