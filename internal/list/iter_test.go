package list

import (
	"sync"
	"sync/atomic"
	"testing"

	"hohtx/internal/core"
)

func TestAscendSequential(t *testing.T) {
	for _, k := range core.Kinds() {
		l := New(Config{Mode: ModeRR, RRKind: k, Threads: 1, Window: core.Window{W: 3}})
		t.Run(l.Name(), func(t *testing.T) {
			l.Register(0)
			for key := uint64(2); key <= 40; key += 2 {
				l.Insert(0, key)
			}
			var got []uint64
			l.Ascend(0, 0, func(key uint64) bool {
				got = append(got, key)
				return true
			})
			if len(got) != 20 {
				t.Fatalf("ascend yielded %d keys, want 20", len(got))
			}
			for i, key := range got {
				if key != uint64(2*(i+1)) {
					t.Fatalf("key[%d] = %d", i, key)
				}
			}
			// From a midpoint.
			got = got[:0]
			l.Ascend(0, 21, func(key uint64) bool {
				got = append(got, key)
				return true
			})
			if len(got) != 10 || got[0] != 22 {
				t.Fatalf("ascend from 21: %v", got)
			}
			// Early stop.
			count := 0
			l.Ascend(0, 0, func(key uint64) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Fatalf("early stop delivered %d", count)
			}
			// The early stop must not leak a hold into the next op.
			if !l.Lookup(0, 2) {
				t.Fatal("lookup broken after early-stopped ascend")
			}
		})
	}
}

func TestAscendHTMMode(t *testing.T) {
	l := New(Config{Mode: ModeHTM, Threads: 1})
	l.Register(0)
	for key := uint64(1); key <= 10; key++ {
		l.Insert(0, key)
	}
	var n int
	l.Ascend(0, 0, func(uint64) bool { n++; return true })
	if n != 10 {
		t.Fatalf("HTM ascend yielded %d", n)
	}
}

// TestAscendConcurrent checks the weak-consistency contract: keys present
// for the whole iteration are delivered exactly once, in order, while
// concurrent churn removes and reinserts other keys (with immediate
// reclamation putting their nodes back into circulation).
func TestAscendConcurrent(t *testing.T) {
	const stable = 50 // odd keys 1..99 stay put
	l := New(Config{Mode: ModeRR, RRKind: core.KindV, Threads: 4, Window: core.Window{W: 2}})
	l.Register(0)
	for k := uint64(1); k <= 99; k += 2 {
		l.Insert(0, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= 3; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			l.Register(tid)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64((i*2+tid*4)%100) + 100 // churn keys 100..199
				l.Insert(tid, k)
				l.Remove(tid, k)
			}
		}(w)
	}
	var violations atomic.Int64
	for round := 0; round < 30; round++ {
		var got []uint64
		l.Ascend(0, 0, func(key uint64) bool {
			got = append(got, key)
			return true
		})
		seen := 0
		lastKey := uint64(0)
		for _, k := range got {
			if k <= lastKey {
				violations.Add(1) // out of order or duplicate
			}
			lastKey = k
			if k <= 99 && k%2 == 1 {
				seen++
			}
		}
		if seen != stable {
			t.Fatalf("round %d: saw %d of %d stable keys", round, seen, stable)
		}
	}
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d ordering violations", violations.Load())
	}
}
