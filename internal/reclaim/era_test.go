package reclaim

import (
	"sync"
	"testing"

	"hohtx/internal/arena"
)

// heHarness wires a HazardEras domain to a real arena so frees are
// observable, with a scan threshold high enough that reclamation only
// runs when a test flushes.
func heHarness(threads int) (*arena.Arena[node], *HazardEras) {
	a := arena.New[node](arena.Config{Threads: threads})
	he := NewHazardEras(HEConfig{
		Threads: threads, ScanThreshold: 1000,
		Free: func(tid int, h arena.Handle) { a.Free(tid, h) },
	})
	return a, he
}

// heAlloc allocates and birth-stamps a node the way structures do.
func heAlloc(a *arena.Arena[node], he *HazardEras, tid int) arena.Handle {
	h := a.Alloc(tid)
	he.StampAlloc(h)
	return h
}

func TestHEDefersWhileEraReserved(t *testing.T) {
	a, he := heHarness(2)
	h := heAlloc(a, he, 0)
	he.Protect(1, 0, h) // thread 1 reserves the current era
	he.Retire(0, h, 10) // delete era == reserved era: must defer
	he.Flush(0, 11)
	if !a.Live(h) {
		t.Fatal("node freed while its lifetime interval was reserved")
	}
	if st := he.Stats(); st.Deferred != 1 || st.Leftover != 1 {
		t.Fatalf("deferred=%d leftover=%d, want 1/1", st.Deferred, st.Leftover)
	}
	he.ClearSlots(1)
	he.Flush(0, 12)
	if a.Live(h) {
		t.Fatal("node survived Flush after the reservation cleared")
	}
	st := he.Stats()
	if st.Freed != 1 || st.Deferred != 0 || st.Leftover != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
	if st.DelayOpsSum != 2 {
		t.Fatalf("delay = %d, want 2 (stamp 12 - 10)", st.DelayOpsSum)
	}
}

// TestHEFlushExposesLeftover mirrors the HazardPointers.Flush stranding
// regression: a retiree whose interval stays reserved through the whole
// Flush is kept (correct) and must be visible in Stats.Leftover, and a
// free that clears a foreign reservation mid-Flush must un-strand the
// retirees that reservation covered (the rescan loop).
func TestHEFlushExposesLeftover(t *testing.T) {
	a, he := heHarness(2)
	hA := heAlloc(a, he, 0)
	he.Protect(1, 0, hA)    // reservation at era 1 covers hA's lifetime
	he.Retire(0, hA, 1)     // interval [1,1]; era advances to 2
	hB := heAlloc(a, he, 0) // born at era 2
	he.Retire(0, hB, 2)     // interval [2,2]

	he.Flush(0, 3)
	if a.Live(hB) {
		t.Fatal("retiree born after the stale reservation was not freed")
	}
	if !a.Live(hA) {
		t.Fatal("retiree was freed under a live era reservation")
	}
	if left := he.Stats().Leftover; left != 1 {
		t.Fatalf("Leftover = %d with one stranded retiree, want 1", left)
	}

	he.ClearSlots(1)
	he.Flush(0, 4)
	if a.Live(hA) {
		t.Fatal("retiree survived Flush after the reservation cleared")
	}
	if left := he.Stats().Leftover; left != 0 {
		t.Fatalf("Leftover = %d after full drain, want 0", left)
	}
}

// TestHEFlushRescansAfterReservationMoves is the era version of
// TestFlushRescansAfterHazardMoves: freeing one retiree clears the
// foreign reservation covering a second, and a single-scan Flush would
// strand that second node forever.
func TestHEFlushRescansAfterReservationMoves(t *testing.T) {
	a := arena.New[node](arena.Config{Threads: 2})
	var he *HazardEras
	var hA, hB arena.Handle
	he = NewHazardEras(HEConfig{
		Threads: 2, ScanThreshold: 1000,
		Free: func(tid int, h arena.Handle) {
			if h == hB {
				he.ClearSlots(1) // thread 1's traversal moves off A
			}
			a.Free(tid, h)
		},
	})
	hA = a.Alloc(0)
	he.StampAlloc(hA) // born era 1
	he.Protect(1, 0, hA)
	he.Retire(0, hA, 1) // [1,1], reserved; era -> 2
	hB = a.Alloc(0)
	he.StampAlloc(hB)   // born era 2
	he.Retire(0, hB, 2) // [2,2], unreserved

	he.Flush(0, 3)
	if a.Live(hA) || a.Live(hB) {
		t.Fatalf("Flush stranded retirees: Live(A)=%v Live(B)=%v", a.Live(hA), a.Live(hB))
	}
	st := he.Stats()
	if st.Deferred != 0 || st.Leftover != 0 {
		t.Fatalf("after full drain: deferred=%d leftover=%d, want 0/0", st.Deferred, st.Leftover)
	}
}

// TestHEBirthRestampOnReuse pins the birth-table reuse behavior behind
// the arena's wrapping {index, generation} handles: when a slot index
// is recycled, StampAlloc overwrites the birth entry, so an old-era
// reservation no longer covers the slot's new incarnation.
func TestHEBirthRestampOnReuse(t *testing.T) {
	a, he := heHarness(2)
	h1 := heAlloc(a, he, 0) // born era 1
	he.Protect(1, 0, h1)    // stale reservation at era 1
	he.Retire(0, h1, 1)     // era -> 2
	he.ClearSlots(1)
	he.Flush(0, 2) // frees h1; its slot index returns to the free list
	if a.Live(h1) {
		t.Fatal("setup: h1 not freed")
	}

	he.Protect(1, 0, arena.Handle(1)) // re-publish: reservation now at era 2
	old := he.Era()
	for he.Era() == old {
		// Advance the era so the next incarnation is born strictly later
		// than the published reservation.
		he.Retire(0, heAlloc(a, he, 0), 3)
	}
	he.ClearSlots(1)
	he.Flush(0, 3)

	he.Protect(1, 0, arena.Handle(1)) // park a reservation at the current era
	h2 := heAlloc(a, he, 0)           // may reuse h1's index; born at the reserved era
	if h2.Index() != h1.Index() {
		t.Logf("allocator did not reuse index %d (got %d); birth table still exercised", h1.Index(), h2.Index())
	}
	he.Retire(0, h2, 4) // interval [resEra, resEra+?]: must stay deferred
	he.Flush(0, 5)
	if !a.Live(h2) {
		t.Fatal("reused slot freed under a reservation covering its new birth era")
	}
	he.ClearSlots(1)
	he.Flush(0, 6)
	if a.Live(h2) {
		t.Fatal("reused slot survived the final drain")
	}
}

func TestHEConcurrentChurn(t *testing.T) {
	const workers = 4
	const iters = 3000
	a := arena.New[node](arena.Config{Threads: workers})
	he := NewHazardEras(HEConfig{
		Threads: workers, ScanThreshold: 16,
		Free: func(tid int, h arena.Handle) { a.Free(tid, h) },
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := a.Alloc(tid)
				he.StampAlloc(h)
				he.Protect(tid, 0, h)
				he.ClearSlots(tid)
				he.Retire(tid, h, uint64(i))
			}
			he.Flush(tid, iters)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		he.Flush(w, iters+1)
	}
	st := he.Stats()
	if st.Retired != workers*iters {
		t.Fatalf("retired = %d, want %d", st.Retired, workers*iters)
	}
	if st.Freed != st.Retired {
		t.Fatalf("freed = %d, retired = %d (leak after flush with no reservations)", st.Freed, st.Retired)
	}
	if got := a.Stats().Live; got != 0 {
		t.Fatalf("arena live = %d after full reclamation", got)
	}
}

// fakeClock is a test stand-in for the STM version fence.
type fakeClock struct{ v uint64 }

func (c *fakeClock) read() uint64 { return c.v }
func (c *fakeClock) tick()        { c.v += 2 }

func vbrHarness(threads int, clk *fakeClock) (*arena.Arena[node], *VBR) {
	a := arena.New[node](arena.Config{Threads: threads})
	v := NewVBR(VBRConfig{
		Threads: threads, Clock: clk.read, Tick: clk.tick, TickEvery: 1000,
		Free: func(tid int, h arena.Handle) { a.Free(tid, h) },
	})
	return a, v
}

func TestVBRDefersUntilFenceAdvances(t *testing.T) {
	clk := &fakeClock{v: 100}
	a, v := vbrHarness(1, clk)
	h := a.Alloc(0)
	v.Retire(0, h, 10) // rv = 100; clock has not advanced past it
	if !a.Live(h) {
		t.Fatal("node freed in its retirement fence window")
	}
	if st := v.Stats(); st.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", st.Deferred)
	}
	clk.tick()
	v.Retire(0, a.Alloc(0), 11) // drain runs: 102 > 100 frees h
	if a.Live(h) {
		t.Fatal("node survived a fence advance past its retire version")
	}
	v.Flush(0, 12)
	st := v.Stats()
	if st.Freed != 2 || st.Deferred != 0 || st.Leftover != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if st.DelayOpsSum != 1+1 {
		t.Fatalf("delay sum = %d, want 2 (11-10 + 12-11)", st.DelayOpsSum)
	}
}

// TestVBRFlushDrainsCompletely pins the property the torture harness
// relies on (rounds=1, exact books after one FinishAll): Flush ticks
// the fence itself, so it always empties the pending queue.
func TestVBRFlushDrainsCompletely(t *testing.T) {
	clk := &fakeClock{v: 0}
	a, v := vbrHarness(1, clk)
	var hs []arena.Handle
	for i := 0; i < 50; i++ {
		h := a.Alloc(0)
		hs = append(hs, h)
		v.Retire(0, h, uint64(i))
	}
	v.Flush(0, 50)
	for _, h := range hs {
		if a.Live(h) {
			t.Fatal("retiree survived Flush")
		}
	}
	st := v.Stats()
	if st.Deferred != 0 || st.Leftover != 0 || st.Freed != 50 {
		t.Fatalf("stats after flush = %+v", st)
	}
}

// TestVBRClockWraparound pins the signed-difference ordering: retire
// versions taken just below the 64-bit boundary still drain once the
// clock wraps past zero.
func TestVBRClockWraparound(t *testing.T) {
	clk := &fakeClock{v: ^uint64(0) - 3}
	a, v := vbrHarness(1, clk)
	h := a.Alloc(0)
	v.Retire(0, h, 1) // rv = 2^64 - 4
	if !a.Live(h) {
		t.Fatal("node freed before the clock passed its retire version")
	}
	clk.tick() // 2^64 - 2
	clk.tick() // wraps to 0
	if clk.read() >= ^uint64(0)-3 {
		t.Fatalf("test setup: clock %d did not wrap", clk.read())
	}
	clk.tick() // 2
	v.drain(0, 2)
	if a.Live(h) {
		t.Fatal("wrapped clock failed to free a pre-wrap retiree")
	}
	if st := v.Stats(); st.Deferred != 0 {
		t.Fatalf("deferred = %d after wraparound drain, want 0", st.Deferred)
	}
}

func TestVBRSelfTickBoundsDeferral(t *testing.T) {
	clk := &fakeClock{v: 0}
	a := arena.New[node](arena.Config{Threads: 1})
	v := NewVBR(VBRConfig{
		Threads: 1, Clock: clk.read, Tick: clk.tick, TickEvery: 8,
		Free: func(tid int, h arena.Handle) { a.Free(tid, h) },
	})
	// No external writer advances the clock; the scheme must tick it
	// itself so deferral stays bounded by TickEvery.
	for i := 0; i < 64; i++ {
		v.Retire(0, a.Alloc(0), uint64(i))
	}
	if st := v.Stats(); st.Deferred > 8 || st.Freed == 0 {
		t.Fatalf("self-tick failed to bound deferral: %+v", st)
	}
}

// TestStalledThreadDeferralBound is the robustness contract of
// DESIGN.md §14 in one test: with one reader stalled forever, plain
// epochs stop freeing anything, while hazard eras still free every node
// born after the stalled reservation and VBR (whose readers pin nothing)
// frees everything.
func TestStalledThreadDeferralBound(t *testing.T) {
	const churn = 40

	// Epochs: the stalled reader pins every subsequent retirement.
	ae := arena.New[node](arena.Config{Threads: 2})
	ep := NewEpochs(2, 1, func(tid int, h arena.Handle) { ae.Free(tid, h) })
	ep.Enter(1) // stalled reader, never exits
	ep.Enter(0)
	for i := 0; i < churn; i++ {
		ep.Retire(0, ae.Alloc(0), uint64(i))
	}
	ep.Exit(0)
	ep.Flush(0, churn)
	if st := ep.Stats(); st.Freed != 0 || st.Deferred != churn {
		t.Fatalf("epochs under a stalled reader: %+v, want all %d deferred", st, churn)
	}

	// Hazard eras: the stalled reservation covers only the nodes whose
	// lifetime interval contains it; everything born later is freed.
	ah, he := heHarness(2)
	hold := heAlloc(ah, he, 0)
	he.Protect(1, 0, hold) // stalled: era reserved, never cleared
	he.Retire(0, hold, 0)  // the one node the reservation covers
	for i := 0; i < churn; i++ {
		he.Retire(0, heAlloc(ah, he, 0), uint64(i+1))
	}
	he.Flush(0, churn+1)
	st := he.Stats()
	if st.Freed != churn {
		t.Fatalf("hazard eras under a stalled reader: freed=%d of %d later-born nodes", st.Freed, churn)
	}
	if st.Deferred != 1 || st.Leftover != 1 || !ah.Live(hold) {
		t.Fatalf("hazard eras stranding not bounded to the covered node: %+v", st)
	}

	// VBR: a stalled reader publishes nothing; ticking the fence frees
	// every retiree.
	clk := &fakeClock{v: 0}
	av, vb := vbrHarness(2, clk)
	for i := 0; i < churn; i++ {
		vb.Retire(0, av.Alloc(0), uint64(i))
	}
	vb.Flush(0, churn)
	if st := vb.Stats(); st.Freed != churn || st.Deferred != 0 {
		t.Fatalf("vbr under a stalled reader: %+v, want all %d freed", st, churn)
	}
}
