package stm

import (
	"runtime"
	"sync/atomic"
)

// readLockSpins bounds how long a read spins on a cell that is locked by a
// committing writer before aborting. Commits hold cell locks only for the
// short write-back window, so a small bound suffices.
const readLockSpins = 64

// wsMapThreshold is the write-set size beyond which read-own-writes lookup
// switches from linear scan to a map. Hand-over-hand transactions write a
// handful of cells; only whole-operation (HTM-baseline) transactions on big
// structures ever cross this.
const wsMapThreshold = 24

// abortSig is the panic sentinel used internally to unwind an aborting
// transaction out of user code. It never escapes Atomic.
type abortSig struct{}

// rentry is one read-set record: the cell's version word and the version
// observed when the value was read.
type rentry struct {
	m   *atomic.Uint64
	ver uint64
}

// applier is a deferred write-back action for non-Word cells.
type applier interface{ apply() }

// wentry is one write-set record. Exactly one of dst (Word write) or obj
// (typed cell write) is set. prev caches the pre-lock version during commit
// so locks can be released on failure and self-locks recognized during
// read-set validation.
type wentry struct {
	m    *atomic.Uint64
	dst  *atomic.Uint64
	val  uint64
	obj  applier
	prev uint64
}

// Tx is one transaction attempt's context. A Tx is only valid inside the
// closure passed to Runtime.Atomic and must not be retained, shared between
// goroutines, or used after the closure returns.
type Tx struct {
	rt     *Runtime
	rv     uint64 // snapshot (read) version; even
	serial bool   // true when running under the exclusive serial lock
	cause  AbortCause

	rs     []rentry
	rsHead int    // entries below this index are early-released
	rsBase uint64 // logical index of rs[0] (survives compaction)
	ws     []wentry
	wmap   map[*atomic.Uint64]int // lazily built past wsMapThreshold

	commitHooks []txHook
	abortHooks  []txHook

	rng        uint64 // xorshift state for backoff jitter
	extensions uint64 // snapshot extensions performed (stats)
	clockCASes uint64 // clock-advance CAS attempts performed (stats)
	slowPaths  uint64 // commit-lock slow-path acquisitions (stats)
	slotHash   uint64 // per-Tx BRAVO commit-slot hash (fixed at creation)

	tid      int32          // caller's thread id for observability (-1 unknown)
	conflict *atomic.Uint64 // version word that caused the last abort, if known
}

// txSeq hands out distinct slot hashes to pooled transactions; consecutive
// values multiplied by the golden-ratio constant spread across the BRAVO
// table's index bits (Fibonacci hashing).
var txSeq atomic.Uint64

func newTx(rt *Runtime) *Tx {
	return &Tx{
		rt:       rt,
		rs:       make([]rentry, 0, 256),
		ws:       make([]wentry, 0, 32),
		rng:      0x9e3779b97f4a7c15,
		slotHash: txSeq.Add(1) * 0x9e3779b97f4a7c15,
	}
}

// reset prepares the Tx for a fresh attempt.
func (tx *Tx) reset(serial bool) {
	tx.rv = tx.rt.now()
	tx.serial = serial
	tx.cause = CauseNone
	tx.conflict = nil
	tx.rs = tx.rs[:0]
	tx.rsHead = 0
	tx.rsBase = 0
	tx.ws = tx.ws[:0]
	if tx.wmap != nil {
		clear(tx.wmap)
	}
	tx.commitHooks = tx.commitHooks[:0]
	tx.abortHooks = tx.abortHooks[:0]
}

// Serial reports whether this attempt runs in the serialized fallback mode.
// Data structure code can consult it to skip contention-avoidance work that
// only matters under speculation.
func (tx *Tx) Serial() bool { return tx.serial }

// Runtime returns the runtime this transaction belongs to.
func (tx *Tx) Runtime() *Runtime { return tx.rt }

// Restart aborts the current attempt and re-executes the transaction from
// the beginning (possibly in serial mode, per the runtime's profile).
func (tx *Tx) Restart() {
	tx.abort(CauseExplicit)
}

// txHook is one deferred effect. Two shapes share the queue: a plain
// closure (fn) and an argument-carrying call fn3(a, b, c). The latter
// exists so per-operation hot paths can register reclamation work against
// a function value bound once at construction time — a closure capturing
// the operation's (tid, handle, stamp) heap-allocates on every removal,
// while fn3 carries them inline and allocates nothing.
type txHook struct {
	fn      func()
	fn3     func(a, b, c uint64)
	a, b, c uint64
}

func (h *txHook) run() {
	if h.fn != nil {
		h.fn()
		return
	}
	h.fn3(h.a, h.b, h.c)
}

// OnCommit registers fn to run exactly once, after this transaction has
// committed and released all commit-time locks. The paper observes that
// memory management inside transactions hurts performance; the data
// structures in this repository queue node frees here, which keeps
// reclamation *immediate* (it happens at the commit point, before the
// enclosing operation returns) while staying outside speculation.
func (tx *Tx) OnCommit(fn func()) {
	tx.commitHooks = append(tx.commitHooks, txHook{fn: fn})
}

// OnCommitCall is OnCommit's zero-allocation form: fn(a, b, c) runs at
// the commit point. Pass a function value bound once (a struct field, a
// method value hoisted out of the hot path), not a fresh closure — the
// arguments travel inline, so nothing escapes per call.
func (tx *Tx) OnCommitCall(fn func(a, b, c uint64), a, b, c uint64) {
	tx.commitHooks = append(tx.commitHooks, txHook{fn3: fn, a: a, b: b, c: c})
}

// OnAbort registers fn to run if this attempt aborts (it is discarded on
// commit). Used to return speculatively allocated nodes to the allocator.
func (tx *Tx) OnAbort(fn func()) {
	tx.abortHooks = append(tx.abortHooks, txHook{fn: fn})
}

// OnAbortCall is OnAbort's zero-allocation form (see OnCommitCall).
func (tx *Tx) OnAbortCall(fn func(a, b, c uint64), a, b, c uint64) {
	tx.abortHooks = append(tx.abortHooks, txHook{fn3: fn, a: a, b: b, c: c})
}

// abort unwinds the attempt with the given cause.
func (tx *Tx) abort(c AbortCause) {
	tx.cause = c
	panic(abortSig{})
}

// checkCapacity enforces the HTM-simulation footprint bound. Early-released
// reads no longer occupy tracked state (in real HTM early release is
// impossible, which is precisely the paper's motivation — callers using
// ReadMark/ForgetReadsBefore have opted out of the HTM model).
func (tx *Tx) checkCapacity() {
	if c := tx.rt.prof.Capacity; c > 0 && !tx.serial && len(tx.rs)-tx.rsHead+len(tx.ws) >= c {
		tx.abort(CauseCapacity)
	}
}

// ReadMark returns a position in the transaction's read history for use
// with ForgetReadsBefore.
func (tx *Tx) ReadMark() uint64 { return tx.rsBase + uint64(len(tx.rs)) }

// ForgetReadsBefore early-releases every read recorded before mark: those
// locations are dropped from conflict detection, so later writers to them
// no longer abort this transaction (Herlihy et al.'s early release [17],
// the software-only alternative to hand-over-hand windows that §1 of the
// paper contrasts revocable reservations with). Releasing a read weakens
// opacity for the released prefix — callers own the correctness argument,
// exactly as they do with hand-over-hand windows.
func (tx *Tx) ForgetReadsBefore(mark uint64) {
	if mark <= tx.rsBase {
		return
	}
	h := int(mark - tx.rsBase)
	if h > len(tx.rs) {
		h = len(tx.rs)
	}
	if h > tx.rsHead {
		tx.rsHead = h
	}
	// Amortized compaction keeps the slice from growing without bound on
	// long traversals.
	if tx.rsHead >= 256 && tx.rsHead*2 >= len(tx.rs) {
		n := copy(tx.rs, tx.rs[tx.rsHead:])
		tx.rs = tx.rs[:n]
		tx.rsBase += uint64(tx.rsHead)
		tx.rsHead = 0
	}
}

// maybeYield simulates a preemption point per the profile's YieldShift.
func (tx *Tx) maybeYield() {
	if s := tx.rt.prof.YieldShift; s != 0 && tx.nextRand()&(1<<s-1) == 0 {
		runtime.Gosched()
	}
}

// recordRead appends a validated read to the read set.
func (tx *Tx) recordRead(m *atomic.Uint64, ver uint64) {
	tx.checkCapacity()
	tx.rs = append(tx.rs, rentry{m: m, ver: ver})
	tx.maybeYield()
}

// extend slides the snapshot forward past the observed cell version,
// aborting if any prior read has been overwritten (which would make the
// extended snapshot inconsistent). On success subsequent reads accept
// versions up to the new snapshot. Under GV1 the published clock already
// covers every committed version, so the lazy-clock advance never fires;
// the advance call is hoisted here so extendTo stays inlinable at the
// read-path call sites.
func (tx *Tx) extend(observed uint64) {
	newRv := tx.rt.now()
	if newRv < observed {
		newRv = tx.advanceClock(observed)
	}
	tx.extendTo(newRv)
}

// extendTo validates the read set against the new snapshot bound newRv and
// adopts it. newRv must be at or above every version the caller has
// observed (extend establishes that; see clock.go for why it matters).
func (tx *Tx) extendTo(newRv uint64) {
	for i := tx.rsHead; i < len(tx.rs); i++ {
		if tx.rs[i].m.Load() != tx.rs[i].ver {
			tx.conflict = tx.rs[i].m
			tx.abort(CauseReadConflict)
		}
	}
	tx.rv = newRv
	tx.extensions++
}

// findWrite looks up a pending Word write to the cell with version word m.
func (tx *Tx) findWrite(m *atomic.Uint64) (uint64, bool) {
	if i, ok := tx.lookupWrite(m); ok {
		return tx.ws[i].val, true
	}
	return 0, false
}

// findWriteObj looks up a pending typed-cell write.
func (tx *Tx) findWriteObj(m *atomic.Uint64) (applier, bool) {
	if i, ok := tx.lookupWrite(m); ok {
		return tx.ws[i].obj, true
	}
	return nil, false
}

func (tx *Tx) lookupWrite(m *atomic.Uint64) (int, bool) {
	if len(tx.ws) == 0 {
		return 0, false
	}
	if tx.wmap != nil && len(tx.ws) > wsMapThreshold {
		i, ok := tx.wmap[m]
		return i, ok
	}
	// Scan backwards: recently written cells are the likeliest re-reads.
	for i := len(tx.ws) - 1; i >= 0; i-- {
		if tx.ws[i].m == m {
			return i, true
		}
	}
	return 0, false
}

// addWrite records a write-set entry, deduplicating by cell so commit never
// tries to lock the same cell twice.
func (tx *Tx) addWrite(e wentry) {
	if i, ok := tx.lookupWrite(e.m); ok {
		e.prev = tx.ws[i].prev
		tx.ws[i] = e
		return
	}
	tx.checkCapacity()
	tx.maybeYield()
	tx.ws = append(tx.ws, e)
	if len(tx.ws) > wsMapThreshold {
		if tx.wmap == nil {
			tx.wmap = make(map[*atomic.Uint64]int, 4*wsMapThreshold)
		}
		if len(tx.wmap) == 0 {
			for i := range tx.ws {
				tx.wmap[tx.ws[i].m] = i
			}
		} else {
			tx.wmap[e.m] = len(tx.ws) - 1
		}
	}
}

func (tx *Tx) writeWord(m, dst *atomic.Uint64, val uint64) {
	tx.addWrite(wentry{m: m, dst: dst, val: val})
}

func (tx *Tx) writeObj(m *atomic.Uint64, obj applier) {
	tx.addWrite(wentry{m: m, obj: obj})
}

// commit attempts to make the transaction's writes visible atomically.
// It returns false (with tx.cause set) if the transaction must be retried.
// Serial-mode commits cannot fail: the exclusive serial lock guarantees no
// concurrent commit has interleaved since the snapshot was taken.
func (tx *Tx) commit() bool {
	if len(tx.ws) == 0 {
		// Read-only: every read was validated against a consistent
		// snapshot when it happened, so there is nothing left to check.
		return true
	}
	rt := tx.rt
	slot := -1
	if !tx.serial {
		// Exclude serial transactions for the duration of the commit. The
		// common case claims one padded slot in the distributed lock's
		// visible-readers table (see biaslock.go).
		if slot = rt.commitLock.rlockFast(tx.slotHash); slot < 0 {
			rt.commitLock.rlockSlow(&tx.slowPaths)
		}
		defer rt.commitLock.runlock(slot)
	}

	// Phase 1: lock the write set (bounded: CAS-or-fail, so no deadlock).
	for i := range tx.ws {
		e := &tx.ws[i]
		cur := e.m.Load()
		if cur&lockedBit != 0 || !e.m.CompareAndSwap(cur, cur|lockedBit) {
			tx.releaseLocks(i)
			tx.cause = CauseWriteLock
			tx.conflict = e.m
			return false
		}
		e.prev = cur
	}

	// GV1's unique-version fetch stays inline; the lazy policy's
	// publication dance lives in writeVersion (clock.go).
	var wv uint64
	if rt.prof.ClockPolicy == ClockGV1 {
		wv = rt.clock.Add(2)
	} else {
		wv = tx.writeVersion(slot)
	}

	// Phase 2: validate the read set, unless no other transaction can have
	// committed since our snapshot (TL2's rv+2 == wv fast path — valid
	// only under GV1, where write versions are unique).
	if rt.prof.ClockPolicy != ClockGV1 || wv != tx.rv+2 {
		for i := tx.rsHead; i < len(tx.rs); i++ {
			r := &tx.rs[i]
			cur := r.m.Load()
			if cur == r.ver {
				continue
			}
			if cur == r.ver|lockedBit && tx.ownsLock(r.m, r.ver) {
				continue
			}
			tx.releaseLocks(len(tx.ws))
			tx.cause = CauseValidation
			tx.conflict = r.m
			return false
		}
	}

	// Phase 3: write back and release each lock with the new version. GV5
	// write versions are not unique, so keep each cell's version strictly
	// increasing by bumping past the pre-lock version on collision (never
	// fires under GV1).
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.obj != nil {
			e.obj.apply()
		} else {
			e.dst.Store(e.val)
		}
		nv := wv
		if nv <= e.prev {
			nv = e.prev + 2
		}
		e.m.Store(nv)
	}
	return true
}

// ownsLock reports whether the locked cell m is locked by this transaction
// with pre-lock version prev.
func (tx *Tx) ownsLock(m *atomic.Uint64, prev uint64) bool {
	if i, ok := tx.lookupWrite(m); ok {
		return tx.ws[i].prev == prev
	}
	return false
}

// releaseLocks restores the pre-lock versions of ws[0:n].
func (tx *Tx) releaseLocks(n int) {
	for i := 0; i < n; i++ {
		tx.ws[i].m.Store(tx.ws[i].prev)
	}
}

// Rand returns a cheap pseudo-random value from the transaction's private
// generator. It is not a transactional effect (it advances even if the
// transaction aborts), which is exactly what contention-randomization
// helpers like scatter want.
func (tx *Tx) Rand() uint64 { return tx.nextRand() }

// nextRand steps the transaction's xorshift generator (backoff jitter and
// the scatter helper both draw from it).
func (tx *Tx) nextRand() uint64 {
	x := tx.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	tx.rng = x
	return x
}

// pauseSink absorbs the spin loop's accumulator so the compiler cannot
// prove the loop effect-free and eliminate it. The store is unreachable in
// practice (the accumulator never hits all-ones), so pause never writes a
// shared cache line.
var pauseSink atomic.Uint64

// pause burns a few cycles proportional to the spin count, yielding the
// processor occasionally so single-core runs make progress.
func pause(spins int) {
	if spins&7 == 7 {
		runtime.Gosched()
		return
	}
	s := pauseSink.Load()
	for i := 0; i < 4<<uint(spins&7); i++ {
		s += s<<1 | uint64(i)
	}
	if s == ^uint64(0) {
		pauseSink.Store(s)
	}
}
